// Storage round trip: store a real array under the optimized layout on
// the data-bearing PVFS model, show where its bytes land, and verify the
// §4.3 import/export conversion is lossless.
//
// Run with:
//
//	go run ./examples/storage
package main

import (
	"fmt"
	"log"

	"flopt"
	"flopt/internal/layout"
	"flopt/internal/linalg"
	"flopt/internal/pfs"
)

const src = `
array B[64][64];
parallel(i) for i = 0 to 63 { for j = 0 to 63 { read B[j][i]; } }
`

func main() {
	p, err := flopt.Compile("storage-demo", src)
	if err != nil {
		log.Fatal(err)
	}
	cfg := flopt.DefaultConfig()
	res, err := flopt.Optimize(p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	b := p.Array("B")
	ol := res.Layouts["B"]
	fmt.Printf("array %s under layout %q (file: %d elements)\n\n", b, ol.Name(), ol.SizeElems())

	// A 4-storage-node PVFS with 64-element (512-byte) stripes.
	fs, err := pfs.New(cfg.StorageNodes, cfg.BlockElems*8)
	if err != nil {
		log.Fatal(err)
	}
	af, err := fs.CreateArray("B.dat", b.Dims, ol)
	if err != nil {
		log.Fatal(err)
	}

	// Import canonical (row-major) data — the §4.3 input conversion.
	canonical := make([]float64, b.Size())
	for i := range canonical {
		canonical[i] = float64(i)
	}
	if err := af.Import(canonical); err != nil {
		log.Fatal(err)
	}

	// Indexed access goes straight to the right bytes.
	v, err := af.Get(linalg.Vec{10, 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("B[10][20] read back as %.0f (expect %d)\n", v, 10*64+20)

	// Show which storage node holds each thread's first element.
	f, err := fs.Open("B.dat")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstorage node of the first element of threads 0..7:")
	tr := res.Transforms["B"]
	for th := 0; th < 8; th++ {
		// Thread th owns column band th (under the transposed partition);
		// its first element is B[0][th].
		idx := linalg.Vec{0, int64(th)}
		off := ol.Offset(idx) * 8
		fmt.Printf("  thread %d (owns col %d): byte %6d on storage node %d\n",
			tr.ThreadOf(idx), th, off, f.NodeOfOffset(off))
	}

	// Export back to canonical order — the §4.3 output conversion — and
	// verify losslessness.
	back, err := af.Export()
	if err != nil {
		log.Fatal(err)
	}
	for i := range canonical {
		if back[i] != canonical[i] {
			log.Fatalf("export mismatch at %d", i)
		}
	}
	fmt.Printf("\nexport: all %d elements round-tripped losslessly\n", len(back))

	// And the conversion cost, as the compiler would report it.
	plan, err := layout.NewRemapPlan(layout.RowMajor(b), ol, b.Dims, b.Name, cfg.BlockElems)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("import pass cost: %d element moves, %d source blocks read, %d destination blocks written\n",
		plan.Moves, plan.SrcBlocks, plan.DstBlocks)
}
