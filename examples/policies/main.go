// Cache-policy comparison: run one benchmark under the three cache
// hierarchy management policies — inclusive LRU (the default), KARMA, and
// DEMOTE-LRU — with and without the layout optimization, reproducing the
// shape of the paper's Fig. 7(h) on a single application: the optimization
// is more effective under the exclusive policies.
//
// Run with:
//
//	go run ./examples/policies [workload]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"flopt"
)

func main() {
	name := "mgrid"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, err := flopt.WorkloadByName(name)
	if err != nil {
		log.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %12s %12s %12s\n", name, "default(s)", "optimized(s)", "improvement")
	for _, policy := range []string{"lru", "karma", "demote"} {
		cfg := flopt.DefaultConfig()
		cfg.Policy = policy
		res, err := flopt.Optimize(p, cfg)
		if err != nil {
			log.Fatal(err)
		}
		before, err := flopt.Run(context.Background(), p, cfg)
		if err != nil {
			log.Fatal(err)
		}
		after, err := flopt.Run(context.Background(), p, cfg, flopt.WithResult(res))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %12.3f %12.3f %11.1f%%\n",
			before.PolicyName,
			float64(before.ExecTimeUS)/1e6,
			float64(after.ExecTimeUS)/1e6,
			100*flopt.Improvement(before, after))
	}
}
