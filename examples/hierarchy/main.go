// Hierarchy sensitivity: run one benchmark across cache-capacity scales
// and node-count configurations, reproducing the shape of the paper's
// Fig. 7(c) and 7(d) on a single application.
//
// Run with:
//
//	go run ./examples/hierarchy [workload]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"flopt"
)

func main() {
	name := "swim"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, err := flopt.WorkloadByName(name)
	if err != nil {
		log.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		log.Fatal(err)
	}

	base := flopt.DefaultConfig()

	fmt.Printf("cache-capacity sensitivity for %s (Fig. 7(c) shape):\n", name)
	for _, scale := range []struct {
		label    string
		num, den int
	}{{"x1/4", 1, 4}, {"x1/2", 1, 2}, {"x1", 1, 1}, {"x2", 2, 1}, {"x4", 4, 1}} {
		cfg := base
		cfg.IOCacheBlocks = base.IOCacheBlocks * scale.num / scale.den
		cfg.StorageCacheBlocks = base.StorageCacheBlocks * scale.num / scale.den
		fmt.Printf("  caches %-4s  improvement %5.1f%%\n", scale.label, improvement(p, cfg))
	}

	fmt.Printf("\nnode-count sensitivity for %s (Fig. 7(d) shape):\n", name)
	for _, nc := range []struct{ io, st int }{{32, 8}, {16, 4}, {8, 4}, {8, 2}} {
		cfg := base
		cfg.IONodes, cfg.StorageNodes = nc.io, nc.st
		fmt.Printf("  (64,%2d,%d)    improvement %5.1f%%\n", nc.io, nc.st, improvement(p, cfg))
	}
}

func improvement(p *flopt.Program, cfg flopt.Config) float64 {
	res, err := flopt.Optimize(p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	before, err := flopt.Run(context.Background(), p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	after, err := flopt.Run(context.Background(), p, cfg, flopt.WithResult(res))
	if err != nil {
		log.Fatal(err)
	}
	return 100 * flopt.Improvement(before, after)
}
