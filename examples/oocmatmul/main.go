// Out-of-core matrix multiply — the paper's running example (Fig. 3).
//
// W[i][j] += X[i][k] · Y[k][j] over disk-resident matrices, parallelized
// over the j loop (columns of W distributed across threads). The example
// shows exactly what the paper's §4.1 predicts: W and Y admit a
// partitioning transformation — each thread's elements land on its own
// hyperplanes after a unimodular remapping — while X, swept entirely by
// every thread through the two free iterators, cannot be partitioned and
// keeps its default layout.
//
// Run with:
//
//	go run ./examples/oocmatmul
package main

import (
	"context"
	"fmt"
	"log"

	"flopt"
)

const src = `
array W[256][256];
array X[256][256];
array Y[256][256];

parallel(j) for i = 0 to 255 {
    for j = 0 to 255 {
        for k = 0 to 63 {
            write W[i][j];
            read X[i][k];
            read Y[k][j];
        }
    }
}
`

func main() {
	p, err := flopt.Compile("oocmatmul", src)
	if err != nil {
		log.Fatal(err)
	}
	cfg := flopt.DefaultConfig()
	res, err := flopt.Optimize(p, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-array optimization decisions:")
	for _, a := range p.Arrays {
		tr := res.Transforms[a.Name]
		status := "kept row-major (not partitionable)"
		if tr.Optimized() {
			status = fmt.Sprintf("inter-node layout, D=%v", tr.D)
		}
		fmt.Printf("  %-12s %s\n", a.String(), status)
	}
	opt, total := res.OptimizedCount()
	fmt.Printf("optimized %d/%d arrays\n\n", opt, total)

	before, err := flopt.Run(context.Background(), p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	after, err := flopt.Run(context.Background(), p, cfg, flopt.WithResult(res))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("default:   %8.3f s   disk reads %d\n", float64(before.ExecTimeUS)/1e6, before.DiskReads)
	fmt.Printf("optimized: %8.3f s   disk reads %d\n", float64(after.ExecTimeUS)/1e6, after.DiskReads)
	fmt.Printf("improvement: %.1f%%\n", 100*flopt.Improvement(before, after))
}
