// Quickstart: compile a tiny two-array program, optimize its file layouts
// for the default storage hierarchy, and compare the simulated execution
// against the row-major default.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"flopt"
)

// The program reads A row-wise (friendly to the default layout) and
// writes B transposed — the access pattern that scatters each thread's
// data across the whole file under row-major storage.
const src = `
array A[256][256];
array B[256][256];

parallel(i) for i = 0 to 255 {
    for j = 0 to 255 {
        read A[i][j];
        write B[j][i];
    }
}
`

func main() {
	p, err := flopt.Compile("quickstart", src)
	if err != nil {
		log.Fatal(err)
	}
	cfg := flopt.DefaultConfig()

	res, err := flopt.Optimize(p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Step I — array partitioning:")
	for _, a := range p.Arrays {
		fmt.Printf("  %s\n", res.Transforms[a.Name])
	}
	fmt.Printf("Step II — layout pattern: %s\n\n", res.Pattern)

	before, err := flopt.Run(context.Background(), p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	after, err := flopt.Run(context.Background(), p, cfg, flopt.WithResult(res), flopt.WithMetrics())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("default execution:   %8.3f s  (io miss %5.1f%%, storage miss %5.1f%%)\n",
		float64(before.ExecTimeUS)/1e6, 100*before.IOMissRate(), 100*before.StorageMissRate())
	fmt.Printf("optimized execution: %8.3f s  (io miss %5.1f%%, storage miss %5.1f%%)\n",
		float64(after.ExecTimeUS)/1e6, 100*after.IOMissRate(), 100*after.StorageMissRate())
	fmt.Printf("improvement: %.1f%%\n\n", 100*flopt.Improvement(before, after))

	// WithMetrics put a per-array, per-layer snapshot on the report: see
	// which array the optimization actually moved off the disk.
	fmt.Println("optimized run, per array (from Report.Metrics):")
	for _, name := range []string{"A", "B"} {
		b := after.Metrics.Arrays[name]
		fmt.Printf("  %s: io hit %5.1f%%, storage hit %5.1f%%, disk %5.1f%%, avg latency %.0f µs\n",
			name, b.IOHitPct, b.StorageHitPct, b.DiskPct, b.AvgLatencyUS)
	}
}
