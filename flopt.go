// Package flopt is a compiler-directed file layout optimizer for
// hierarchical storage systems — a from-scratch reproduction of Ding,
// Zhang, Kandemir & Son, "Compiler-directed file layout optimization for
// hierarchical storage systems" (SC 2012).
//
// The package bundles three things:
//
//   - A small compiler front end for affine loop-nest programs
//     (Compile), producing the polyhedral representation the optimizer
//     consumes.
//   - The optimizer itself (Optimize): Step I computes a unimodular data
//     transformation per disk-resident array that isolates each thread's
//     elements (Eq. 3/4 of the paper, with Eq. 5 weighted conflict
//     resolution), and Step II linearizes the partitioned arrays with a
//     thread-interleaved, storage-hierarchy-aware layout pattern
//     (Algorithm 1).
//   - A deterministic trace-driven simulator of the paper's evaluation
//     platform (RunDefault / RunOptimized / RunWithLayouts): compute
//     nodes, I/O-node and storage-node block caches (LRU-inclusive,
//     KARMA, DEMOTE-LRU), PVFS-style striping, and a seek/rotation disk
//     model.
//
// A minimal end-to-end use:
//
//	p, _ := flopt.Compile("example", src)
//	cfg := flopt.DefaultConfig()
//	res, _ := flopt.Optimize(p, cfg)
//	before, _ := flopt.RunDefault(p, cfg)
//	after, _ := flopt.RunOptimized(p, cfg, res)
//	fmt.Printf("%.1f%% faster\n", 100*(1-float64(after.ExecTimeUS)/float64(before.ExecTimeUS)))
//
// The cmd/ directory provides the same functionality as executables
// (floptc, runsim, exptab), and internal/exp regenerates every table and
// figure of the paper's evaluation (see EXPERIMENTS.md).
package flopt

import (
	"fmt"

	"flopt/internal/lang"
	"flopt/internal/layout"
	"flopt/internal/parallel"
	"flopt/internal/poly"
	"flopt/internal/sim"
	"flopt/internal/storage/cache"
	"flopt/internal/trace"
	"flopt/internal/workloads"
)

// Program is a parsed affine loop-nest program.
type Program = poly.Program

// Config describes the simulated platform (node counts, cache capacities,
// block size, latencies, cache policy).
type Config = sim.Config

// Report summarizes one simulated execution.
type Report = sim.Report

// Result carries the optimizer's output: per-array transforms and layouts
// plus the parallelization plans.
type Result = layout.Result

// Layout maps array elements to linear file offsets.
type Layout = layout.Layout

// Workload is one of the 16 benchmark applications of the evaluation.
type Workload = workloads.Workload

// Compile parses mini-language source into a Program. The language
// declares disk-resident arrays and parallelized affine loop nests; see
// the internal/lang package documentation for the grammar.
func Compile(name, source string) (*Program, error) {
	return lang.Parse(name, source)
}

// DefaultConfig returns the paper's Table 1 platform at the simulator's
// element scale: 64 compute nodes, 16 I/O nodes, 4 storage nodes,
// LRU-inclusive caches at the I/O and storage layers.
func DefaultConfig() Config { return sim.DefaultConfig() }

// Optimize runs the full inter-node file layout optimization of the paper
// against the cache hierarchy described by cfg (both layers targeted).
func Optimize(p *Program, cfg Config) (*Result, error) {
	h, err := cfg.LayoutHierarchy(true, true)
	if err != nil {
		return nil, err
	}
	return layout.Optimize(p, layout.Options{Hierarchy: h, BlockElems: cfg.BlockElems})
}

// RunDefault simulates p under cfg with the default row-major file
// layouts (the paper's "default execution").
func RunDefault(p *Program, cfg Config) (*Report, error) {
	return RunWithLayouts(p, cfg, layout.DefaultLayouts(p), nil)
}

// RunOptimized simulates p under cfg with the layouts chosen by Optimize.
func RunOptimized(p *Program, cfg Config, res *Result) (*Report, error) {
	return RunWithLayouts(p, cfg, res.Layouts, res)
}

// RunWithLayouts simulates p under cfg with an arbitrary layout per array
// (keyed by array name). If res is non-nil its parallelization plans are
// reused; otherwise fresh default plans are built. For cfg.Policy ==
// "karma" the KARMA hints are generated automatically from the traces.
func RunWithLayouts(p *Program, cfg Config, layouts map[string]Layout, res *Result) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plans := map[*poly.LoopNest]*parallel.Plan{}
	if res != nil {
		plans = res.Plans
	} else {
		for _, n := range p.Nests {
			plan, err := parallel.NewPlan(n, cfg.Threads(), 1)
			if err != nil {
				return nil, err
			}
			plans[n] = plan
		}
	}
	ft, err := trace.NewFileTable(p, layouts)
	if err != nil {
		return nil, err
	}
	traces, err := trace.Generate(p, plans, ft, cfg.BlockElems, cfg.Threads())
	if err != nil {
		return nil, err
	}
	var hints []cache.RangeHint
	if cfg.Policy == "karma" {
		hints = sim.GenerateHints(cfg, ft, traces)
	}
	machine, err := sim.NewMachine(cfg, hints)
	if err != nil {
		return nil, err
	}
	fileBlocks := make([]int64, len(ft.Names))
	for f := range fileBlocks {
		fileBlocks[f] = ft.Blocks(int32(f), cfg.BlockElems)
	}
	machine.SetFileBlocks(fileBlocks)
	return machine.Run(traces)
}

// Workloads returns the 16 benchmark applications of the paper's Table 2.
func Workloads() []Workload { return workloads.All() }

// WorkloadByName returns one benchmark application by name.
func WorkloadByName(name string) (Workload, error) {
	w, ok := workloads.ByName(name)
	if !ok {
		return Workload{}, fmt.Errorf("flopt: unknown workload %q (have %v)", name, workloads.Names())
	}
	return w, nil
}

// Improvement returns the fractional execution-time improvement of after
// over before (e.g. 0.237 for the paper's headline 23.7 %).
func Improvement(before, after *Report) float64 {
	if before.ExecTimeUS == 0 {
		return 0
	}
	return 1 - float64(after.ExecTimeUS)/float64(before.ExecTimeUS)
}
