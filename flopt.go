// Package flopt is a compiler-directed file layout optimizer for
// hierarchical storage systems — a from-scratch reproduction of Ding,
// Zhang, Kandemir & Son, "Compiler-directed file layout optimization for
// hierarchical storage systems" (SC 2012).
//
// The package bundles three things:
//
//   - A small compiler front end for affine loop-nest programs
//     (Compile), producing the polyhedral representation the optimizer
//     consumes.
//   - The optimizer itself (Optimize): Step I computes a unimodular data
//     transformation per disk-resident array that isolates each thread's
//     elements (Eq. 3/4 of the paper, with Eq. 5 weighted conflict
//     resolution), and Step II linearizes the partitioned arrays with a
//     thread-interleaved, storage-hierarchy-aware layout pattern
//     (Algorithm 1).
//   - A deterministic trace-driven simulator of the paper's evaluation
//     platform (Run): compute nodes, I/O-node and storage-node block
//     caches (LRU-inclusive, KARMA, DEMOTE-LRU), PVFS-style striping,
//     and a seek/rotation disk model, with a pluggable observability
//     layer (Observer, Metrics) explaining per-layer behavior.
//
// A minimal end-to-end use:
//
//	p, _ := flopt.Compile("example", src)
//	cfg := flopt.DefaultConfig()
//	res, _ := flopt.Optimize(p, cfg)
//	before, _ := flopt.Run(ctx, p, cfg)
//	after, _ := flopt.Run(ctx, p, cfg, flopt.WithResult(res))
//	fmt.Printf("%.1f%% faster\n", 100*(1-float64(after.ExecTimeUS)/float64(before.ExecTimeUS)))
//
// Run takes functional options: WithResult simulates the optimizer's
// output, WithLayouts an arbitrary layout per array, WithMetrics attaches
// the metrics collector (snapshot on Report.Metrics), WithObserver a
// custom profiling hook, and WithFaults deterministic fault injection.
// The pre-options entry points (RunDefault, RunOptimized, RunWithLayouts)
// remain as deprecated wrappers.
//
// The cmd/ directory provides the same functionality as executables
// (floptc, runsim, exptab), and internal/exp regenerates every table and
// figure of the paper's evaluation (see EXPERIMENTS.md).
package flopt

import (
	"context"
	"fmt"

	"flopt/internal/lang"
	"flopt/internal/layout"
	"flopt/internal/poly"
	"flopt/internal/sim"
	"flopt/internal/workloads"
)

// Program is a parsed affine loop-nest program.
type Program = poly.Program

// Config describes the simulated platform (node counts, cache capacities,
// block size, latencies, cache policy).
type Config = sim.Config

// Report summarizes one simulated execution.
type Report = sim.Report

// Result carries the optimizer's output: per-array transforms and layouts
// plus the parallelization plans.
type Result = layout.Result

// Layout maps array elements to linear file offsets.
type Layout = layout.Layout

// Workload is one of the 16 benchmark applications of the evaluation.
type Workload = workloads.Workload

// Compile parses mini-language source into a Program. The language
// declares disk-resident arrays and parallelized affine loop nests; see
// the internal/lang package documentation for the grammar.
func Compile(name, source string) (*Program, error) {
	return lang.Parse(name, source)
}

// DefaultConfig returns the paper's Table 1 platform at the simulator's
// element scale: 64 compute nodes, 16 I/O nodes, 4 storage nodes,
// LRU-inclusive caches at the I/O and storage layers.
func DefaultConfig() Config { return sim.DefaultConfig() }

// Optimize runs the full inter-node file layout optimization of the paper
// against the cache hierarchy described by cfg (both layers targeted).
func Optimize(p *Program, cfg Config) (*Result, error) {
	h, err := cfg.LayoutHierarchy(true, true)
	if err != nil {
		return nil, err
	}
	return layout.Optimize(p, layout.Options{Hierarchy: h, BlockElems: cfg.BlockElems})
}

// RunDefault simulates p under cfg with the default row-major file
// layouts (the paper's "default execution").
//
// Deprecated: use Run(ctx, p, cfg).
func RunDefault(p *Program, cfg Config) (*Report, error) {
	return Run(context.Background(), p, cfg)
}

// RunOptimized simulates p under cfg with the layouts chosen by Optimize.
//
// Deprecated: use Run(ctx, p, cfg, WithResult(res)).
func RunOptimized(p *Program, cfg Config, res *Result) (*Report, error) {
	return Run(context.Background(), p, cfg, WithResult(res))
}

// RunWithLayouts simulates p under cfg with an arbitrary layout per array
// (keyed by array name). If res is non-nil its parallelization plans are
// reused; otherwise fresh default plans are built.
//
// Deprecated: use Run(ctx, p, cfg, WithLayouts(layouts), WithResult(res)).
func RunWithLayouts(p *Program, cfg Config, layouts map[string]Layout, res *Result) (*Report, error) {
	return Run(context.Background(), p, cfg, WithLayouts(layouts), WithResult(res))
}

// Workloads returns the 16 benchmark applications of the paper's Table 2.
func Workloads() []Workload { return workloads.All() }

// WorkloadByName returns one benchmark application by name.
func WorkloadByName(name string) (Workload, error) {
	w, ok := workloads.ByName(name)
	if !ok {
		return Workload{}, fmt.Errorf("flopt: unknown workload %q (have %v)", name, workloads.Names())
	}
	return w, nil
}

// Improvement returns the fractional execution-time improvement of after
// over before (e.g. 0.237 for the paper's headline 23.7 %).
func Improvement(before, after *Report) float64 {
	if before.ExecTimeUS == 0 {
		return 0
	}
	return 1 - float64(after.ExecTimeUS)/float64(before.ExecTimeUS)
}
