package flopt

// Cross-module integration tests: the full pipeline (parse → optimize →
// layout → trace → simulate) over every benchmark workload, checking the
// invariants that hold regardless of calibration.

import (
	"testing"

	"flopt/internal/layout"
	"flopt/internal/linalg"
)

// TestAllWorkloadLayoutsBijective verifies, for every array of every
// workload under the default platform, that the chosen layout maps the
// data space injectively into [0, SizeElems()) — data written under the
// layout can never collide or fall outside the file.
func TestAllWorkloadLayoutsBijective(t *testing.T) {
	cfg := DefaultConfig()
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := w.Program()
			if err != nil {
				t.Fatal(err)
			}
			res, err := Optimize(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range p.Arrays {
				l := res.Layouts[a.Name]
				seen := make(map[int64]struct{}, a.Size())
				idx := make(linalg.Vec, a.Rank())
				var walk func(k int)
				collision := false
				var bad linalg.Vec
				walk = func(k int) {
					if collision {
						return
					}
					if k == a.Rank() {
						off := l.Offset(idx)
						if off < 0 || off >= l.SizeElems() {
							collision = true
							bad = idx.Clone()
							return
						}
						if _, dup := seen[off]; dup {
							collision = true
							bad = idx.Clone()
							return
						}
						seen[off] = struct{}{}
						return
					}
					for v := int64(0); v < a.Dims[k]; v++ {
						idx[k] = v
						walk(k + 1)
					}
				}
				walk(0)
				if collision {
					t.Errorf("%s/%s (%s): offset collision or out-of-range at %v",
						w.Name, a.Name, l.Name(), bad)
				}
				// File overhead must stay bounded: the layout may leave
				// alignment holes but not balloon the file.
				if l.SizeElems() > 2*a.Size()+int64(cfg.BlockElems)*int64(cfg.Threads()) {
					t.Errorf("%s/%s: file size %d elements for a %d-element array",
						w.Name, a.Name, l.SizeElems(), a.Size())
				}
			}
		})
	}
}

// TestTransformsSatisfyEq3 re-verifies Step I's defining property directly
// from the definition: for every satisfied reference group of every
// optimized array, any two iterations on the same iteration hyperplane
// access elements on the same data hyperplane (h_A·D·Q·E_u = 0).
func TestTransformsSatisfyEq3(t *testing.T) {
	cfg := DefaultConfig()
	for _, w := range Workloads() {
		p, err := w.Program()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Optimize(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range p.Arrays {
			tr := res.Transforms[a.Name]
			if tr == nil || !tr.Optimized() {
				continue
			}
			for _, g := range tr.Satisfied {
				for _, rn := range g.Refs {
					plan := res.Plans[rn.Nest]
					n := rn.Nest.Depth()
					if n < 2 {
						continue
					}
					// w·Q·Δ must vanish for every Δ with Δ[u] = 0.
					for k := 0; k < n; k++ {
						if k == plan.U {
							continue
						}
						delta := make(linalg.Vec, n)
						delta[k] = 1
						moved := tr.W.Dot(rn.Ref.Q.MulVec(delta))
						if moved != 0 {
							t.Errorf("%s/%s: Eq.3 violated for %s along loop %d (moved %d)",
								w.Name, a.Name, rn.Ref, k, moved)
						}
					}
				}
			}
			if !tr.D.IsUnimodular() {
				t.Errorf("%s/%s: D not unimodular", w.Name, a.Name)
			}
		}
	}
}

// TestThreadOwnershipConsistent checks that Transform.ThreadOf agrees with
// the layout's chunk placement: an element owned by thread t must land in
// a file region whose pattern position belongs to t.
func TestThreadOwnershipConsistent(t *testing.T) {
	cfg := DefaultConfig()
	w, err := WorkloadByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := p.Array("UU")
	tr := res.Transforms[a.Name]
	ol, ok := res.Layouts[a.Name].(*layout.OptimizedLayout)
	if !ok {
		t.Fatal("UU should be optimized")
	}
	// Group offsets by owner; each owner's offsets must be disjoint
	// chunk-aligned regions (no offset shared between owners is already
	// guaranteed by bijectivity; here we check region granularity).
	chunk := ol.P.ChunkElems
	ownerOfChunk := map[int64]int{}
	idx := make(linalg.Vec, a.Rank())
	for i := int64(0); i < a.Dims[0]; i++ {
		for j := int64(0); j < a.Dims[1]; j++ {
			idx[0], idx[1] = i, j
			th := tr.ThreadOf(idx)
			c := ol.Offset(idx) / chunk
			if prev, ok := ownerOfChunk[c]; ok && prev != th {
				t.Fatalf("chunk %d shared by threads %d and %d", c, prev, th)
			}
			ownerOfChunk[c] = th
		}
	}
}

// TestPipelineDeterministicAcrossRuns runs one workload end-to-end twice
// and requires identical reports (the whole pipeline is deterministic).
func TestPipelineDeterministicAcrossRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ComputeNodes, cfg.IONodes, cfg.StorageNodes = 8, 4, 2
	w, err := WorkloadByName("cc-ver-1")
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Report {
		p, err := w.Program()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Optimize(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := RunOptimized(p, cfg, res)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	r1, r2 := run(), run()
	if r1.ExecTimeUS != r2.ExecTimeUS || r1.IO != r2.IO || r1.Storage != r2.Storage || r1.DiskReads != r2.DiskReads {
		t.Error("pipeline is not deterministic across fresh runs")
	}
}

// TestGroup1Neutrality: the optimization must never hurt the three
// group-1 applications by more than 6 % (the paper shows them flat).
func TestGroup1Neutrality(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale simulation")
	}
	cfg := DefaultConfig()
	for _, name := range []string{"cc-ver-1", "s3asim", "twer"} {
		w, _ := WorkloadByName(name)
		p, err := w.Program()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Optimize(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		before, err := RunDefault(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		after, err := RunOptimized(p, cfg, res)
		if err != nil {
			t.Fatal(err)
		}
		if imp := Improvement(before, after); imp < -0.06 {
			t.Errorf("%s: optimization hurt by %.1f%%", name, -100*imp)
		}
	}
}
