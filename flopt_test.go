package flopt

import "testing"

const testSrc = `
array B[64][64];
parallel(i) for i = 0 to 63 { for j = 0 to 63 { read B[j][i]; } }
`

// smallTestConfig shrinks the platform for fast API tests.
func smallTestConfig() Config {
	cfg := DefaultConfig()
	cfg.ComputeNodes = 8
	cfg.IONodes = 4
	cfg.StorageNodes = 2
	cfg.BlockElems = 8
	cfg.IOCacheBlocks = 8
	cfg.StorageCacheBlocks = 16
	return cfg
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("bad", "not a program"); err == nil {
		t.Error("invalid source accepted")
	}
	p, err := Compile("ok", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "ok" || len(p.Arrays) != 1 {
		t.Errorf("program = %+v", p)
	}
}

func TestEndToEnd(t *testing.T) {
	p, err := Compile("t", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallTestConfig()
	res, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt, total := res.OptimizedCount()
	if opt != 1 || total != 1 {
		t.Errorf("optimized %d/%d", opt, total)
	}
	before, err := RunDefault(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	after, err := RunOptimized(p, cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	if Improvement(before, after) <= 0 {
		t.Errorf("no improvement on a transposed scan: before %d µs, after %d µs",
			before.ExecTimeUS, after.ExecTimeUS)
	}
}

func TestRunWithKarmaPolicy(t *testing.T) {
	p, err := Compile("t", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallTestConfig()
	cfg.Policy = "karma"
	rep, err := RunDefault(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PolicyName != "KARMA" {
		t.Errorf("policy = %s", rep.PolicyName)
	}
}

func TestWorkloadsAccessors(t *testing.T) {
	if len(Workloads()) != 16 {
		t.Errorf("workloads = %d", len(Workloads()))
	}
	if _, err := WorkloadByName("swim"); err != nil {
		t.Error(err)
	}
	if _, err := WorkloadByName("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestImprovementZeroBase(t *testing.T) {
	if Improvement(&Report{}, &Report{}) != 0 {
		t.Error("zero baseline should give 0")
	}
}

func TestRunValidatesConfig(t *testing.T) {
	p, _ := Compile("t", testSrc)
	cfg := smallTestConfig()
	cfg.ComputeNodes = 0
	if _, err := RunDefault(p, cfg); err == nil {
		t.Error("invalid config accepted")
	}
}
