# Verify tiers for the flopt reproduction.
#
#   make verify        — tier-1 (build + test) plus vet and the race tier
#                        that keeps the parallel harness race-clean
#   make bench-harness — measure the headline harness benchmarks and emit
#                        their wall-clock as JSON (see BENCH_harness.json)

GO ?= go

.PHONY: build vet test race verify bench bench-harness

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

verify: build vet test race

bench:
	$(GO) test -run '^$$' -bench=. -benchmem .

bench-harness:
	./scripts/bench_harness.sh
