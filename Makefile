# Verify tiers for the flopt reproduction.
#
#   make verify        — tier-1 (build + test) plus lint (vet + gofmt) and
#                        the race tier that keeps the parallel harness and
#                        the fault-injection paths race-clean
#   make bench-harness — measure the headline harness benchmarks and emit
#                        their wall-clock as JSON (see BENCH_harness.json)
#   make bench-compare — rerun the harness benchmarks and diff against the
#                        recorded BENCH_harness.json entry (non-zero exit
#                        on regression beyond BENCH_TOLERANCE)
#   make serve-smoke   — boot floptd, drive one compile/offsets/simulate
#                        round trip, verify /healthz + /metrics and the
#                        graceful SIGTERM drain
#   make chaos         — crash-recovery drill: kill -9 floptd under seeded
#                        fault injection and assert the restarted daemon
#                        lost zero accepted jobs and zero compiled layouts
#   make cluster       — 3-node cluster drill: ring routing, distributed
#                        compile singleflight, peer cache fill, cross-node
#                        job polls, and kill -9 degradation to local compute
#   make workload-smoke — record→replay drill: drive a two-class workload
#                        spec against a recording floptd, replay the trace,
#                        and assert bit-identical reproduction through the
#                        loadgen and the exptab workload sweep
#   make loadtest      — measure the floptd offsets hot path and print the
#                        RPS / latency-quantile JSON (see BENCH_service.json);
#                        pass -cluster via scripts/loadtest_service.sh to
#                        spread the load over a 3-node cluster

GO ?= go
GOFMT ?= gofmt

.PHONY: build vet fmt-check deprecations lint test race chaos cluster workload-smoke verify bench bench-harness bench-compare serve-smoke loadtest

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$($(GOFMT) -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

# The deprecated pre-options entry points survive for external callers
# only; nothing in this repo may use them.
deprecations:
	@out=$$(grep -rnE 'flopt\.(RunDefault|RunOptimized|RunWithLayouts)\(' cmd internal examples 2>/dev/null); \
	if [ -n "$$out" ]; then \
		echo "deprecated Run wrappers still called (use flopt.Run with options):" >&2; \
		echo "$$out" >&2; exit 1; \
	fi

lint: vet fmt-check deprecations

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
	GOMAXPROCS=8 $(GO) test -race -count=1 -run 'Sharded' ./internal/sim

chaos:
	./scripts/chaos_smoke.sh

cluster:
	./scripts/cluster_smoke.sh

workload-smoke:
	./scripts/workload_smoke.sh

verify: build lint test race chaos cluster workload-smoke

bench:
	$(GO) test -run '^$$' -bench=. -benchmem .

bench-harness:
	./scripts/bench_harness.sh

bench-compare:
	./scripts/bench_compare.sh

serve-smoke:
	./scripts/serve_smoke.sh

loadtest:
	./scripts/loadtest_service.sh
