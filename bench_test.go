package flopt

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§5). Each benchmark regenerates its table on the
// simulated platform and reports the headline aggregate as a custom
// metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. The reported metrics:
//
//	avg_norm_exec — mean normalized execution time (Fig 7a/f/g/h columns)
//	avg_improv_%  — mean improvement percentage (Fig 7c/d/e sweeps)
//	*_miss_%      — mean miss rates (Table 2) / normalized misses (Table 3)
//
// See EXPERIMENTS.md for the paper-vs-measured comparison of every row.

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"testing"

	"flopt/internal/exp"
	"flopt/internal/layout"
	"flopt/internal/parallel"
	"flopt/internal/poly"
	"flopt/internal/sim"
	"flopt/internal/trace"
)

// benchRunner is shared across benchmarks so trace/layout preparation is
// reused between related experiments (exactly like exptab -exp all).
var (
	benchRunnerOnce sync.Once
	benchRunner     *exp.Runner
)

func runner() *exp.Runner {
	benchRunnerOnce.Do(func() { benchRunner = exp.NewRunner() })
	return benchRunner
}

func benchTable(b *testing.B, fn func(context.Context, *exp.Runner, sim.Config) (*exp.Table, error), metrics func(*exp.Table, *testing.B)) {
	b.Helper()
	cfg := sim.DefaultConfig()
	for i := 0; i < b.N; i++ {
		t, err := fn(context.Background(), runner(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			metrics(t, b)
		}
	}
}

// reportAverages reports every aggregate column of the table.
func reportAverages(unit string) func(*exp.Table, *testing.B) {
	return func(t *exp.Table, b *testing.B) {
		for c := range t.Columns {
			// testing.B metric units must not contain whitespace.
			name := strings.ReplaceAll(t.Columns[c], " ", "-") + "_" + unit
			b.ReportMetric(t.ColumnAverage(c), name)
		}
	}
}

// BenchmarkTable2Default regenerates Table 2: the default execution of all
// 16 applications (miss rates and execution times).
func BenchmarkTable2Default(b *testing.B) {
	benchTable(b, exp.Table2, reportAverages("avg"))
}

// BenchmarkTable3Optimized regenerates Table 3: normalized cache misses
// after the inter-node optimization.
func BenchmarkTable3Optimized(b *testing.B) {
	benchTable(b, exp.Table3, reportAverages("norm_miss"))
}

// BenchmarkFig7aPerApp regenerates Fig 7(a): normalized execution times.
// The paper's headline: average 0.763 (23.7 % improvement).
func BenchmarkFig7aPerApp(b *testing.B) {
	benchTable(b, exp.Fig7a, reportAverages("norm_exec"))
}

// BenchmarkFig7bMappings regenerates Fig 7(b): thread mappings I–IV.
func BenchmarkFig7bMappings(b *testing.B) {
	benchTable(b, exp.Fig7b, reportAverages("norm_exec"))
}

// BenchmarkFig7cCapacity regenerates Fig 7(c): cache-capacity sweep.
func BenchmarkFig7cCapacity(b *testing.B) {
	benchTable(b, exp.Fig7c, reportAverages("improv_%"))
}

// BenchmarkFig7dNodes regenerates Fig 7(d): node-count sweep.
func BenchmarkFig7dNodes(b *testing.B) {
	benchTable(b, exp.Fig7d, reportAverages("improv_%"))
}

// BenchmarkFig7eBlock regenerates Fig 7(e): block-size sweep.
func BenchmarkFig7eBlock(b *testing.B) {
	benchTable(b, exp.Fig7e, reportAverages("improv_%"))
}

// BenchmarkFig7fLayers regenerates Fig 7(f): targeted-layer comparison.
// Paper averages: io-only 9.1 %, storage-only 13.0 %, both 23.7 %.
func BenchmarkFig7fLayers(b *testing.B) {
	benchTable(b, exp.Fig7f, reportAverages("norm_exec"))
}

// BenchmarkFig7gBaselines regenerates Fig 7(g): computation mapping [26]
// and dimension reindexing [27] vs the inter-node optimization. Paper
// averages: 7.6 %, 7.1 %, 23.7 % improvements.
func BenchmarkFig7gBaselines(b *testing.B) {
	benchTable(b, exp.Fig7g, reportAverages("norm_exec"))
}

// BenchmarkFig7hPolicies regenerates Fig 7(h): the optimization under
// LRU, KARMA and DEMOTE-LRU. Paper averages: 23.7 %, 30.1 %, 28.6 %.
func BenchmarkFig7hPolicies(b *testing.B) {
	benchTable(b, exp.Fig7h, reportAverages("norm_exec"))
}

// BenchmarkOptStats regenerates the §5.1 static statistic: the fraction of
// arrays receiving optimized layouts (paper: ≈ 72 %).
func BenchmarkOptStats(b *testing.B) {
	benchTable(b, exp.OptStats, func(t *exp.Table, b *testing.B) {
		b.ReportMetric(100*t.ColumnAverage(2), "optimized_%")
	})
}

// BenchmarkCompilePass measures the pure compile-time cost of the
// optimization pass (parse + Step I + Step II) across all 16 workloads —
// the paper reports a ~36 % compilation-time overhead, up to 50 s.
func BenchmarkCompilePass(b *testing.B) {
	cfg := sim.DefaultConfig()
	ws := Workloads()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range ws {
			p, err := Compile(w.Name, w.Source)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := Optimize(p, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed (block
// requests per second) on one mid-size workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, err := WorkloadByName("swim")
	if err != nil {
		b.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	b.ResetTimer()
	var accesses int64
	for i := 0; i < b.N; i++ {
		rep, err := Run(context.Background(), p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		accesses = rep.Accesses
	}
	b.ReportMetric(float64(accesses), "requests/run")
}

// BenchmarkTraceGeneration measures trace generation alone (no simulation)
// on the swim workload: the closed-form span emitter produces each stream
// in O(blocks touched) rather than O(iterations). entries/run is the
// compressed stream length, blocks/run its run-expanded block count (equal
// for swim — its nests interleave several arrays per iteration, which
// defeats run merging; single-ref nests compress further). The inter
// sub-benchmark is faster than default because the optimized layout makes
// each thread's sweep contiguous: 64 iterations share a block, so the
// emitter takes one step where the default layout's scattered scan takes
// one per iteration.
func BenchmarkTraceGeneration(b *testing.B) {
	w, err := WorkloadByName("swim")
	if err != nil {
		b.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	bench := func(b *testing.B, layouts map[string]layout.Layout, plans map[*poly.LoopNest]*parallel.Plan) {
		ft, err := trace.NewFileTable(p, layouts)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var entries, blocks int64
		for i := 0; i < b.N; i++ {
			traces, err := trace.GenerateWorkers(p, plans, ft, cfg.BlockElems, cfg.Threads(), 1)
			if err != nil {
				b.Fatal(err)
			}
			entries, blocks = 0, 0
			for _, nt := range traces {
				for _, s := range nt.Streams {
					entries += int64(len(s))
					for _, a := range s {
						blocks += int64(a.Run) + 1
					}
				}
			}
		}
		b.ReportMetric(float64(entries), "entries/run")
		b.ReportMetric(float64(blocks), "blocks/run")
	}
	b.Run("default", func(b *testing.B) {
		plans := make(map[*poly.LoopNest]*parallel.Plan, len(p.Nests))
		for _, n := range p.Nests {
			plan, err := parallel.NewPlan(n, cfg.Threads(), 1)
			if err != nil {
				b.Fatal(err)
			}
			plans[n] = plan
		}
		bench(b, layout.DefaultLayouts(p), plans)
	})
	b.Run("inter", func(b *testing.B) {
		h, err := cfg.LayoutHierarchy(true, true)
		if err != nil {
			b.Fatal(err)
		}
		res, err := layout.Optimize(p, layout.Options{Hierarchy: h, BlockElems: cfg.BlockElems})
		if err != nil {
			b.Fatal(err)
		}
		bench(b, res.Layouts, res.Plans)
	})
}

// BenchmarkSingleCellSharded measures one simulation (one experiment
// cell) at increasing intra-cell shard counts through the node-sharded
// epoch engine. shards=1 is the serial engine (the baseline the sharded
// reports are byte-identical to); the speedup of the higher shard counts
// is bounded by min(GOMAXPROCS, storage/io node count). On a single-CPU
// host every sub-benchmark degrades to the serial path (newShardedRun
// caps shards by GOMAXPROCS), so all four land within noise of shards=1
// and multi-core speedups must be measured on a multi-core host
// (scripts/bench_harness.sh records GOMAXPROCS alongside the sweep).
func BenchmarkSingleCellSharded(b *testing.B) {
	w, err := WorkloadByName("swim")
	if err != nil {
		b.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(strconv.Itoa(shards), func(b *testing.B) {
			var accesses int64
			for i := 0; i < b.N; i++ {
				rep, err := Run(context.Background(), p, cfg, WithSimWorkers(shards))
				if err != nil {
					b.Fatal(err)
				}
				accesses = rep.Accesses
			}
			b.ReportMetric(float64(accesses), "requests/run")
		})
	}
}

// BenchmarkSimulatorThroughputMetrics is BenchmarkSimulatorThroughput with
// the metrics collector attached; the delta between the two is the
// observability overhead bench_harness.sh tracks (budget: ≤ a few percent).
func BenchmarkSimulatorThroughputMetrics(b *testing.B) {
	w, err := WorkloadByName("swim")
	if err != nil {
		b.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	b.ResetTimer()
	var accesses int64
	for i := 0; i < b.N; i++ {
		rep, err := Run(context.Background(), p, cfg, WithMetrics())
		if err != nil {
			b.Fatal(err)
		}
		if rep.Metrics == nil {
			b.Fatal("metrics not collected")
		}
		accesses = rep.Accesses
	}
	b.ReportMetric(float64(accesses), "requests/run")
}
