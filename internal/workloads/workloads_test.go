package workloads

import (
	"testing"

	"flopt/internal/layout"
	"flopt/internal/sim"
)

func TestAllSixteen(t *testing.T) {
	ws := All()
	if len(ws) != 16 {
		t.Fatalf("got %d workloads, want 16", len(ws))
	}
	wantOrder := []string{
		"cc-ver-1", "s3asim", "twer", "bt", "cc-ver-2", "astro", "wupwise",
		"contour", "mgrid", "swim", "afores", "sar", "hf", "qio", "applu", "sp",
	}
	for i, w := range ws {
		if w.Name != wantOrder[i] {
			t.Errorf("workload %d = %s, want %s (Table 2 order)", i, w.Name, wantOrder[i])
		}
	}
}

func TestAllParseAndValidate(t *testing.T) {
	for _, w := range All() {
		p, err := w.Program()
		if err != nil {
			t.Errorf("%s: %v", w.Name, err)
			continue
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if len(p.Nests) == 0 || len(p.Arrays) == 0 {
			t.Errorf("%s: empty program", w.Name)
		}
	}
}

func TestArrayCountRange(t *testing.T) {
	// Paper §5.1: array counts range from 3 (afores) to 17 (twer).
	counts := map[string]int{}
	min, max := 1<<30, 0
	for _, w := range All() {
		p, err := w.Program()
		if err != nil {
			t.Fatal(err)
		}
		counts[w.Name] = len(p.Arrays)
		if len(p.Arrays) < min {
			min = len(p.Arrays)
		}
		if len(p.Arrays) > max {
			max = len(p.Arrays)
		}
	}
	if min != 3 || counts["afores"] != 3 {
		t.Errorf("min arrays = %d, afores = %d; want 3 and 3", min, counts["afores"])
	}
	if max != 17 || counts["twer"] != 17 {
		t.Errorf("max arrays = %d, twer = %d; want 17 and 17", max, counts["twer"])
	}
}

func TestByName(t *testing.T) {
	if w, ok := ByName("swim"); !ok || w.Group != 3 {
		t.Error("ByName(swim) wrong")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown name found")
	}
	if len(Names()) != 16 {
		t.Error("Names() wrong")
	}
}

func TestGroupsAndMasterSlave(t *testing.T) {
	groups := map[int][]string{}
	var ms []string
	for _, w := range All() {
		groups[w.Group] = append(groups[w.Group], w.Name)
		if w.MasterSlave {
			ms = append(ms, w.Name)
		}
	}
	if len(groups[1]) != 3 || len(groups[2]) != 6 || len(groups[3]) != 7 {
		t.Errorf("group sizes = %d/%d/%d, want 3/6/7",
			len(groups[1]), len(groups[2]), len(groups[3]))
	}
	// Fig. 7(b): exactly cc-ver-2, afores, sar are mapping-sensitive.
	want := map[string]bool{"cc-ver-2": true, "afores": true, "sar": true}
	if len(ms) != 3 {
		t.Fatalf("master-slave apps = %v", ms)
	}
	for _, n := range ms {
		if !want[n] {
			t.Errorf("unexpected master-slave app %s", n)
		}
	}
}

// Every workload must be optimizable end-to-end: the full pass runs and
// optimizes at least one array except for pathological cases; across all
// apps roughly 72 % of arrays get optimized layouts (paper §5.1).
func TestOptimizationCoverage(t *testing.T) {
	cfg := sim.DefaultConfig()
	h, err := cfg.LayoutHierarchy(true, true)
	if err != nil {
		t.Fatal(err)
	}
	optTotal, arrTotal := 0, 0
	perApp := map[string]float64{}
	for _, w := range All() {
		p, err := w.Program()
		if err != nil {
			t.Fatal(err)
		}
		res, err := layout.Optimize(p, layout.Options{Hierarchy: h, BlockElems: cfg.BlockElems})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		opt, total := res.OptimizedCount()
		optTotal += opt
		arrTotal += total
		perApp[w.Name] = float64(opt) / float64(total)
	}
	frac := float64(optTotal) / float64(arrTotal)
	if frac < 0.55 || frac > 0.92 {
		t.Errorf("optimized fraction = %.2f (%d/%d), want near the paper's 0.72",
			frac, optTotal, arrTotal)
	}
	// s3asim: all arrays optimized (paper §5.1).
	if perApp["s3asim"] != 1.0 {
		t.Errorf("s3asim optimized fraction = %.2f, want 1.0", perApp["s3asim"])
	}
	// twer: conflicting accesses leave most arrays unoptimized.
	if perApp["twer"] > 0.5 {
		t.Errorf("twer optimized fraction = %.2f, want < 0.5", perApp["twer"])
	}
}

// Golden structure: the per-application optimization decisions are pinned
// so that solver or workload regressions surface immediately. (Counts from
// EXPERIMENTS.md §5.1; update deliberately if workloads change.)
func TestOptimizedCountsGolden(t *testing.T) {
	want := map[string]struct{ opt, total int }{
		"cc-ver-1": {3, 4},
		"s3asim":   {4, 4},
		"twer":     {5, 17},
		"bt":       {5, 5},
		"cc-ver-2": {4, 4},
		"astro":    {4, 4},
		"wupwise":  {3, 3},
		"contour":  {3, 3},
		"mgrid":    {3, 3},
		"swim":     {4, 4},
		"afores":   {3, 3},
		"sar":      {3, 3},
		"hf":       {2, 3},
		"qio":      {3, 3},
		"applu":    {3, 3},
		"sp":       {5, 5},
	}
	cfg := sim.DefaultConfig()
	h, err := cfg.LayoutHierarchy(true, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range All() {
		p, err := w.Program()
		if err != nil {
			t.Fatal(err)
		}
		res, err := layout.Optimize(p, layout.Options{Hierarchy: h, BlockElems: cfg.BlockElems})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		opt, total := res.OptimizedCount()
		g := want[w.Name]
		if opt != g.opt || total != g.total {
			t.Errorf("%s: optimized %d/%d, golden %d/%d", w.Name, opt, total, g.opt, g.total)
		}
	}
}
