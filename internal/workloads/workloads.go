// Package workloads defines the 16 I/O-intensive applications of the
// paper's evaluation (Table 2) as mini-language programs. The originals
// are proprietary or locally-maintained codes; each synthetic program
// reproduces the documented access-pattern class of its namesake — which
// is the only property the optimization (and therefore the evaluation)
// depends on:
//
//   - Group 1 (no benefit): cc-ver-1 and s3asim already enjoy high hit
//     rates; twer's threads issue overly-conflicting requests that leave
//     most of its 17 arrays unoptimizable.
//   - Group 2 (8–13 %): bt, cc-ver-2, astro, wupwise, contour, mgrid mix
//     row-friendly traffic with fixable transposed/strided traffic.
//   - Group 3 (21–26 %): swim, afores, sar, hf, qio, applu, sp are
//     dominated by transposed or strided sweeps the optimizer fully fixes.
//
// cc-ver-2, afores and sar implement master–slave-style neighbor sharing,
// making them (and only them) sensitive to the thread-to-compute-node
// mapping, as in Fig. 7(b).
package workloads

import (
	"fmt"

	"flopt/internal/lang"
	"flopt/internal/poly"
)

// Workload is one benchmark application.
type Workload struct {
	Name        string
	Description string
	// Group is the paper's improvement group (1 = no benefit, 2 =
	// moderate, 3 = large).
	Group int
	// MasterSlave marks the mapping-sensitive applications of Fig. 7(b).
	MasterSlave bool
	// Source is the mini-language program.
	Source string
}

// Program parses the workload's source.
func (w Workload) Program() (*poly.Program, error) {
	p, err := lang.Parse(w.Name, w.Source)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	return p, nil
}

// All returns the 16 applications in the paper's Table 2 order.
func All() []Workload {
	return []Workload{
		ccVer1, s3asim, twer, bt, ccVer2, astro, wupwise, contour,
		mgrid, swim, afores, sar, hf, qio, applu, sp,
	}
}

// ByName returns the workload with the given name.
func ByName(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// Names lists all workload names in order.
func Names() []string {
	var out []string
	for _, w := range All() {
		out = append(out, w.Name)
	}
	return out
}

// ---------------------------------------------------------------------------
// Group 1: applications that do not benefit from the optimization.
// ---------------------------------------------------------------------------

// cc-ver-1: protein structure prediction, version 1. Row-major-friendly
// scans with a hot profile matrix that fits the I/O caches: the default
// execution already hits well (Table 2: 6.1 % / 4.4 % misses).
var ccVer1 = Workload{
	Name:        "cc-ver-1",
	Description: "protein structure prediction v1: row scans + hot profile",
	Group:       1,
	Source: `
array SEQ[256][64];
array PROF[64][64];
array CMAP[256][64];
array SCORE[256][64];

parallel(i) for i = 0 to 255 {
    for j = 0 to 63 {
        for k = 0 to 15 {
            read SEQ[i][j];
            read PROF[j][k];
            write CMAP[i][j];
        }
    }
}
parallel(i) for i = 0 to 255 {
    for j = 0 to 63 {
        for k = 0 to 15 {
            read CMAP[i][j];
            read PROF[j][k];
            write SCORE[i][j];
        }
    }
}
`,
}

// s3asim: sequence-similarity search I/O benchmark. Streaming database
// scan against hot query fragments; every array is optimizable (the paper
// singles s3asim out for exactly that).
var s3asim = Workload{
	Name:        "s3asim",
	Description: "sequence similarity search: streaming scans, hot queries",
	Group:       1,
	Source: `
array DB[256][64];
array QRY[256][16];
array HIT[256][64];
array BEST[256][8];

parallel(i) for i = 0 to 255 {
    for j = 0 to 63 {
        for k = 0 to 15 {
            read DB[i][j];
            read QRY[i][k];
            write HIT[i][j];
        }
    }
}
parallel(i) for i = 0 to 255 {
    for j = 0 to 7 {
        for k = 0 to 63 {
            read HIT[i][k];
            write BEST[i][j];
        }
    }
}
`,
}

// twer: twister (tornado) simulation kernel, 17 disk-resident field
// arrays. Every thread gathers whole planes of most fields through the
// free iterators of 3-deep nests — requests from different threads
// overlap everywhere and no unimodular transformation can isolate a
// thread's data (the paper: "overly-conflicting requests from different
// threads ... prevent the compiler from choosing a good file layout";
// Table 2: misses stay at 29 % / 44.9 %).
var twer = Workload{
	Name:        "twer",
	Description: "twister simulation: 17 fields, conflicting whole-plane gathers",
	Group:       1,
	Source: `
array U0[64][64];
array U1[64][64];
array U2[64][64];
array U3[64][64];
array U4[64][64];
array U5[64][64];
array U6[64][64];
array V0[64][64];
array V1[64][64];
array V2[64][64];
array V3[64][64];
array V4[64][64];
array W0[64][64];
array W1[64][64];
array W2[64][64];
array P0[64][64];
array P1[64][64];

parallel(i) for i = 0 to 63 {
    for j = 0 to 63 {
        for k = 0 to 63 {
            read U0[j][k]; read U1[j][k]; read U2[j][k]; read U3[j][k];
            read U4[k][j]; read U5[k][j]; read U6[k][j];
            write W0[i][j];
        }
    }
}
parallel(i) for i = 0 to 63 {
    for j = 0 to 63 {
        for k = 0 to 63 {
            read V0[j][k]; read V1[j][k]; read V2[k][j];
            read V3[k][j]; read V4[j][k];
            write W1[i][j];
        }
    }
}
parallel(i) for i = 0 to 63 {
    for j = 0 to 63 {
        read W0[i][j];
        read W1[i][j];
        read P0[i][j];
        write W2[i][j];
        write P1[i][j];
    }
}
`,
}

// ---------------------------------------------------------------------------
// Group 2: moderate improvements (8–13 %).
// ---------------------------------------------------------------------------

// bt: out-of-core NAS BT. Row-dominant solves plus one transposed factor
// sweep the optimizer fixes; U is traversed both ways (row pass heavier).
var bt = Workload{
	Name:        "bt",
	Description: "NAS BT out-of-core: row solves + one transposed factor",
	Group:       2,
	Source: `
array U[256][256];
array RHS[256][256];
array LHSX[256][256];
array LHSY[256][256];
array Q[256][256];

parallel(i) for i = 0 to 255 {
    for j = 0 to 255 {
        read U[i][j];
        read RHS[i][j];
        write LHSX[j][i];
    }
}
parallel(i) for i = 0 to 255 {
    for j = 0 to 255 {
        read LHSX[j][i];
        read LHSY[i][j];
        write RHS[i][j];
    }
}
parallel(i) for i = 0 to 255 {
    for j = 0 to 255 {
        for k = 0 to 15 {
            read U[j][k];
            read Q[i][j];
        }
    }
}
`,
}

// cc-ver-2: protein structure prediction, version 2 — a master–slave
// decomposition with halo rows shared between neighboring threads, making
// it sensitive to the thread mapping; a transposed energy sweep gives the
// optimizer something to fix.
var ccVer2 = Workload{
	Name:        "cc-ver-2",
	Description: "protein structure prediction v2: halo sharing, master-slave",
	Group:       2,
	MasterSlave: true,
	Source: `
array POS[256][256];
array ENER[256][256];
array FRC[256][256];
array TAB[64][64];

parallel(i) for i = 0 to 254 {
    for j = 0 to 255 {
        for k = 0 to 3 {
            read POS[i][j];
            read POS[i+1][j];
            read POS[-i+255][j];
            write FRC[i][j];
        }
    }
}
parallel(i) for i = 0 to 255 {
    for j = 0 to 255 {
        read ENER[j][i];
        read FRC[i][j];
        write POS[i][j];
    }
}
parallel(i) for i = 0 to 63 {
    for j = 0 to 63 {
        read TAB[i][j];
        write TAB[j][i];
    }
}
`,
}

// astro: astrophysics grid code with large fields and heavy transposed
// traffic; a gather through a 3-deep nest stays unoptimizable, keeping
// absolute miss rates high (Table 2: 52.2 % / 61.3 %).
var astro = Workload{
	Name:        "astro",
	Description: "astrophysics grid: transposed fields + unoptimizable gather",
	Group:       2,
	Source: `
array RHO[192][192];
array PHI[192][192];
array VEL[384][384];
array G[384][384];

parallel(i) for i = 0 to 191 {
    for j = 0 to 191 {
        read RHO[j][i];
        write PHI[j][i];
    }
}
parallel(i) for i = 0 to 191 {
    for j = 0 to 191 {
        read PHI[j][i];
        write VEL[i][j];
    }
}
parallel(i) for i = 0 to 383 {
    for j = 0 to 383 {
        read G[i][j];
        write VEL[i][j];
    }
}
parallel(i) for i = 0 to 383 {
    for j = 0 to 383 {
        read G[j][i];
        read VEL[j][i];
    }
}
`,
}

// wupwise: lattice QCD with 4-strided spinor accesses the optimizer can
// partition, plus a row-friendly gauge sweep.
var wupwise = Workload{
	Name:        "wupwise",
	Description: "lattice QCD: strided spinors + transposed gauge links",
	Group:       2,
	Source: `
array PSI[256][256];
array GAUGE[256][256];
array CHI[256][256];

parallel(i) for i = 0 to 63 {
    for j = 0 to 255 {
        read PSI[4*i][j];
        read PSI[4*i+2][j];
        read GAUGE[j][i];
        write CHI[4*i][j];
    }
}
parallel(i) for i = 0 to 255 {
    for j = 0 to 255 {
        read CHI[i][j];
        read GAUGE[j][i];
        write PSI[i][j];
    }
}
parallel(i) for i = 0 to 255 {
    for j = 0 to 255 {
        for k = 0 to 7 {
            read PSI[j][k];
            read CHI[i][j];
        }
    }
}
`,
}

// contour: contour display — column walks over the sampled field with
// storage-heavy reuse (the field exceeds the I/O caches but mostly fits
// the storage layer: Table 2 shows 31.9 % vs 64.2 %).
var contour = Workload{
	Name:        "contour",
	Description: "contour display: column walks over a sampled field",
	Group:       2,
	Source: `
array FIELD[256][256];
array LINES[256][256];
array LVL[320][320];

parallel(i) for i = 0 to 255 {
    for j = 0 to 255 {
        read FIELD[j][i];
        write LINES[i][j];
    }
}
parallel(i) for i = 0 to 319 {
    for j = 0 to 319 {
        read LVL[i][j];
        write LVL[i][j];
    }
}
parallel(i) for i = 0 to 319 {
    for j = 0 to 319 {
        read LVL[j][i];
    }
}
`,
}

// mgrid: out-of-core SPEC multigrid. Fine-grid strided smoothing (step 2)
// plus a transposed restriction; the coarse grid stays hot.
var mgrid = Workload{
	Name:        "mgrid",
	Description: "multigrid: strided smoothing + transposed restriction",
	Group:       2,
	Source: `
array FINE[256][256];
array COARSE[128][128];
array RES[256][256];

parallel(i) for i = 0 to 255 {
    for j = 0 to 254 step 2 {
        read FINE[i][j];
        read FINE[i][j+1];
        write RES[i][j];
    }
}
parallel(i) for i = 0 to 127 {
    for j = 0 to 127 {
        read RES[2*j][2*i];
        write COARSE[i][j];
    }
}
parallel(i) for i = 0 to 255 {
    for j = 0 to 255 {
        read RES[j][i];
        write FINE[i][j];
    }
}
`,
}

// ---------------------------------------------------------------------------
// Group 3: large improvements (21–26 %).
// ---------------------------------------------------------------------------

// swim: out-of-core SPEC shallow-water. The U/V/P sweeps run along
// columns, the worst case for the default row-major files and exactly
// what the optimizer repairs.
var swim = Workload{
	Name:        "swim",
	Description: "shallow water: column sweeps over U, V, P",
	Group:       3,
	Source: `
array UU[256][256];
array VV[256][256];
array PP[256][256];
array NEW[256][256];

parallel(i) for i = 0 to 255 {
    for j = 0 to 255 {
        read UU[j][i];
        read VV[j][i];
        read PP[j][i];
        write NEW[j][i];
    }
}
parallel(i) for i = 0 to 255 {
    for j = 0 to 255 {
        read NEW[j][i];
        write PP[j][i];
    }
}
`,
}

// afores: alternative-fuel combustion I/O template — only 3 disk-resident
// arrays (the paper's minimum), master–slave work distribution with
// neighbor halos, dominated by transposed flux sweeps.
var afores = Workload{
	Name:        "afores",
	Description: "combustion I/O template: 3 arrays, transposed fluxes, master-slave",
	Group:       3,
	MasterSlave: true,
	Source: `
array FUEL[256][256];
array FLUX[256][256];
array TEMP[256][256];

parallel(i) for i = 0 to 254 {
    for j = 0 to 255 {
        read FUEL[j][i];
        read FUEL[j][i+1];
        read FUEL[j][-i+255];
        write FLUX[j][i];
    }
}
parallel(i) for i = 0 to 255 {
    for j = 0 to 255 {
        read FLUX[j][i];
        write TEMP[j][i];
    }
}
parallel(i) for i = 0 to 255 {
    for j = 0 to 255 {
        read TEMP[j][i];
        write FUEL[j][i];
    }
}
`,
}

// sar: synthetic aperture radar kernel — the classic corner turn: range
// compression writes the image transposed, azimuth compression reads the
// transposed image again. The range lines overlap between neighboring
// pulses (master–slave style work sharing), so sar is one of the three
// mapping-sensitive applications of Fig. 7(b).
var sar = Workload{
	Name:        "sar",
	Description: "synthetic aperture radar: corner turn + azimuth pass",
	Group:       3,
	MasterSlave: true,
	Source: `
array RAW[256][256];
array IMG[256][256];
array AZ[511][256];

parallel(i) for i = 0 to 254 {
    for j = 0 to 255 {
        read RAW[i][j];
        read RAW[i+1][j];
        write IMG[j][i];
    }
}
parallel(i) for i = 0 to 255 {
    for j = 0 to 127 {
        read IMG[j][i];
        write AZ[i+j][j];
    }
}
parallel(i) for i = 0 to 255 {
    for j = 0 to 127 {
        read AZ[i+j][j];
        read RAW[i][j];
        write IMG[j][i];
    }
}
`,
}

// hf: Hartree–Fock method — the integral file is traversed along the
// symmetry diagonals (a skewed access no dimension permutation can pack),
// while the Fock updates run transposed; a density tile stays hot.
var hf = Workload{
	Name:        "hf",
	Description: "Hartree-Fock: diagonal integral traversal, transposed Fock updates",
	Group:       3,
	Source: `
array ERI[511][256];
array FOCK[256][256];
array DENS[64][64];

parallel(i) for i = 0 to 255 {
    for j = 0 to 127 {
        read ERI[i+j][j];
        write FOCK[j][i];
    }
}
parallel(i) for i = 0 to 255 {
    for j = 0 to 63 {
        for k = 0 to 63 {
            read DENS[j][k];
            read FOCK[j][i];
        }
    }
}
parallel(i) for i = 0 to 255 {
    for j = 0 to 127 {
        read FOCK[j][i];
        write ERI[i+j][j];
    }
}
`,
}

// qio: parallel I/O benchmark issuing interleaved strided writes — each
// thread's records land far apart under the default layout.
var qio = Workload{
	Name:        "qio",
	Description: "parallel I/O benchmark: interleaved strided records",
	Group:       3,
	Source: `
array REC[256][256];
array IDX[256][256];
array SUM[256][64];

parallel(i) for i = 0 to 255 {
    for j = 0 to 255 {
        write REC[j][i];
        read IDX[j][i];
    }
}
parallel(i) for i = 0 to 255 {
    for j = 0 to 255 {
        read REC[j][i];
        write IDX[j][i];
    }
}
parallel(i) for i = 0 to 255 {
    for j = 0 to 63 {
        read REC[i][j];
        write SUM[i][j];
    }
}
`,
}

// applu: out-of-core SPEC LU solver — skewed wavefront updates (diagonal
// data-space partitioning) plus transposed back-substitution.
var applu = Workload{
	Name:        "applu",
	Description: "LU solver: skewed wavefront + transposed back-substitution",
	Group:       3,
	Source: `
array A[192][192];
array L[383][192];
array UX[192][192];

parallel(i) for i = 0 to 191 {
    for j = 0 to 191 {
        read A[j][i];
        write L[i+j][j];
    }
}
parallel(i) for i = 0 to 191 {
    for j = 0 to 191 {
        read L[i+j][j];
        write UX[j][i];
    }
}
parallel(i) for i = 0 to 191 {
    for j = 0 to 191 {
        for k = 0 to 3 {
            read UX[j][i];
            write A[j][i];
        }
    }
}
parallel(i) for i = 0 to 191 {
    for j = 0 to 191 {
        read A[i][j];
        read L[i+j][j];
    }
}
`,
}

// sp: out-of-core NAS SP — five field arrays swept along columns in each
// pentadiagonal line solve.
var sp = Workload{
	Name:        "sp",
	Description: "NAS SP out-of-core: pentadiagonal column line solves",
	Group:       3,
	Source: `
array S1[256][256];
array S2[256][256];
array S3[256][256];
array S4[256][256];
array S5[256][256];

parallel(i) for i = 0 to 255 {
    for j = 0 to 255 {
        read S1[j][i];
        read S2[j][i];
        read S3[j][i];
        write S4[j][i];
    }
}
parallel(i) for i = 0 to 255 {
    for j = 0 to 255 {
        read S4[j][i];
        read S5[j][i];
        write S1[j][i];
    }
}
`,
}
