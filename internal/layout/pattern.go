package layout

import "fmt"

// Level describes one storage-cache layer of the hierarchy, bottom-up: the
// first level is SC1 (the caches closest to the compute nodes, e.g. I/O
// node caches), the last is SCn (e.g. storage node caches).
type Level struct {
	Name string
	// CapacityElems is the per-cache capacity S_i expressed in array
	// elements (block count × elements per block).
	CapacityElems int64
	// Fanout is N_i: how many caches (or, for the first level, threads)
	// of the layer below connect to one cache of this level. For level 0
	// the fanout is the number of threads per SC1 cache (the paper's l).
	Fanout int
}

// Hierarchy is the storage-cache topology Step II targets.
type Hierarchy struct {
	Levels []Level
}

// Validate checks the hierarchy is usable for pattern construction.
func (h Hierarchy) Validate() error {
	if len(h.Levels) == 0 {
		return fmt.Errorf("layout: hierarchy has no cache levels")
	}
	for i, l := range h.Levels {
		if l.CapacityElems < 1 {
			return fmt.Errorf("layout: level %d (%s) has non-positive capacity", i, l.Name)
		}
		if l.Fanout < 1 {
			return fmt.Errorf("layout: level %d (%s) has non-positive fanout", i, l.Name)
		}
	}
	return nil
}

// Threads returns the total thread count the hierarchy serves: the product
// of all fanouts.
func (h Hierarchy) Threads() int {
	n := 1
	for _, l := range h.Levels {
		n *= l.Fanout
	}
	return n
}

// Pattern is the compiled thread-interleaved layout pattern of §4.2 /
// Algorithm 1. It maps (thread, chunk index) pairs to file addresses in
// closed form:
//
//	addr(t, x) = base_t + b_n + b_{n-1} + … + b_1
//	b_i = ((x / (t_1⋯t_{i-1})) mod t_i) · P_i   (i < n)
//	b_n = (x / (t_1⋯t_{n-1})) · P_n
//
// where P_i is the constructed size of the SCi pattern and t_i the number
// of times an SCi pattern repeats inside an SC(i+1) pattern.
type Pattern struct {
	// ChunkElems is the contiguous per-thread chunk size (the paper's
	// S_1/l), in elements.
	ChunkElems int64
	// Threads is the number of threads the pattern interleaves.
	Threads int
	// fanout[i] is N_{i+1} for level i (fanout[0] = l).
	fanout []int
	// repeat[i] is t_{i+1}: repetitions of the level-i pattern inside the
	// level-(i+1) pattern; len(repeat) = levels-1.
	repeat []int64
	// size[i] is P_{i+1}: the constructed size of the level-i pattern.
	size []int64
	// threadsBelow[i] is the number of threads under one level-i cache.
	threadsBelow []int
}

// NewPattern compiles a hierarchy into an addressing pattern. chunkAlign
// forces the per-thread chunk size to a multiple of the given element count
// (callers pass the data block size so chunks stay block-aligned); pass 1
// for no alignment.
func NewPattern(h Hierarchy, chunkAlign int64) (*Pattern, error) {
	return NewPatternSized(h, chunkAlign, 0)
}

// NewPatternSized is NewPattern with a cap on the per-thread chunk size
// (0 = uncapped). Capping matters when a thread's entire share of an array
// is smaller than its SC1 cache share: an uncapped chunk would leave holes
// in the file, scattering the data and destroying disk sequentiality, so
// the whole-program optimizer caps each array's chunk at the array's
// per-thread share.
func NewPatternSized(h Hierarchy, chunkAlign, chunkCap int64) (*Pattern, error) {
	return NewPatternFor(h, chunkAlign, chunkCap, 0)
}

// NewPatternFor additionally caps the pattern's repetition counts so that
// the cumulative repeats never exceed maxChunksPerThread (0 = uncapped):
// building an SC(i+1) pattern with room for eight chunk repetitions is
// pure file inflation when every thread only ever has one chunk.
func NewPatternFor(h Hierarchy, chunkAlign, chunkCap, maxChunksPerThread int64) (*Pattern, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if chunkAlign < 1 {
		chunkAlign = 1
	}
	l := h.Levels[0].Fanout
	chunk := h.Levels[0].CapacityElems / int64(l)
	if chunkCap > 0 && chunk > chunkCap {
		chunk = chunkCap
		if rem := chunk % chunkAlign; rem != 0 {
			chunk += chunkAlign - rem // round the cap up to stay aligned
		}
	}
	chunk -= chunk % chunkAlign
	if chunk < chunkAlign {
		chunk = chunkAlign // degenerate cache: one aligned unit per thread
	}
	p := &Pattern{ChunkElems: chunk, Threads: h.Threads()}
	p.fanout = make([]int, len(h.Levels))
	p.threadsBelow = make([]int, len(h.Levels))
	tb := 1
	for i, lv := range h.Levels {
		p.fanout[i] = lv.Fanout
		tb *= lv.Fanout
		p.threadsBelow[i] = tb
	}
	p.size = make([]int64, len(h.Levels))
	p.size[0] = chunk * int64(l)
	p.repeat = make([]int64, len(h.Levels)-1)
	repeatsSoFar := int64(1)
	for i := 1; i < len(h.Levels); i++ {
		// t_i = S_{i+1} / (N_{i+1}·S_i), clamped to ≥ 1 so degenerate
		// capacity ratios still yield a valid interleaving.
		t := h.Levels[i].CapacityElems / (int64(h.Levels[i].Fanout) * p.size[i-1])
		if t < 1 {
			t = 1
		}
		if maxChunksPerThread > 0 {
			// Never build room for more chunk repetitions than any thread
			// will produce.
			if lim := (maxChunksPerThread + repeatsSoFar - 1) / repeatsSoFar; t > lim {
				t = lim
			}
			if t < 1 {
				t = 1
			}
		}
		p.repeat[i-1] = t
		repeatsSoFar *= t
		p.size[i] = int64(h.Levels[i].Fanout) * t * p.size[i-1]
	}
	return p, nil
}

// Levels returns the number of cache levels the pattern interleaves for.
func (p *Pattern) Levels() int { return len(p.size) }

// PatternSize returns P_i, the constructed size in elements of the level-i
// (0-based) pattern.
func (p *Pattern) PatternSize(i int) int64 { return p.size[i] }

// Repeat returns t_{i+1}, the repetitions of the level-i pattern inside the
// level-(i+1) pattern.
func (p *Pattern) Repeat(i int) int64 { return p.repeat[i] }

// ThreadBase returns base_t: the file address of thread t's chunk 0.
func (p *Pattern) ThreadBase(t int) int64 {
	if t < 0 || t >= p.Threads {
		panic(fmt.Sprintf("layout: thread %d outside [0, %d)", t, p.Threads))
	}
	base := int64(t%p.fanout[0]) * p.ChunkElems
	for i := 1; i < len(p.size); i++ {
		// Index of the thread's level-(i-1) cache among the children of
		// its level-i cache.
		child := (t / p.threadsBelow[i-1]) % p.fanout[i]
		base += int64(child) * p.repeat[i-1] * p.size[i-1]
	}
	return base
}

// ChunkAddr returns the file address of the xth chunk (x ≥ 0) of thread t —
// the closed form of Algorithm 1.
func (p *Pattern) ChunkAddr(t int, x int64) int64 {
	if x < 0 {
		panic("layout: negative chunk index")
	}
	addr := p.ThreadBase(t)
	rem := x
	for i := 0; i < len(p.repeat); i++ {
		addr += (rem % p.repeat[i]) * p.size[i]
		rem /= p.repeat[i]
	}
	addr += rem * p.size[len(p.size)-1]
	return addr
}

// Addr maps the eth element (0-based) of thread t's access sequence to its
// file address: chunk e/ChunkElems at offset e%ChunkElems.
func (p *Pattern) Addr(t int, e int64) int64 {
	return p.ChunkAddr(t, e/p.ChunkElems) + e%p.ChunkElems
}

// String summarizes the compiled pattern.
func (p *Pattern) String() string {
	return fmt.Sprintf("pattern{threads=%d chunk=%d sizes=%v repeats=%v}",
		p.Threads, p.ChunkElems, p.size, p.repeat)
}
