package layout

import (
	"testing"

	"flopt/internal/linalg"
)

func benchLayout(b *testing.B) (*OptimizedLayout, linalg.Vec) {
	b.Helper()
	ol := optimizedFor(b, rowSrc, "A")
	return ol, make(linalg.Vec, 2)
}

// BenchmarkOptimizedOffsetFast measures the closed-form address path.
func BenchmarkOptimizedOffsetFast(b *testing.B) {
	ol, idx := benchLayout(b)
	dims := ol.Array.Dims
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx[0] = int64(i) % dims[0]
		idx[1] = int64(i*7) % dims[1]
		_ = ol.Offset(idx)
	}
}

// BenchmarkOptimizedOffsetTable measures the table-fallback path (skewed
// partitioning vector).
func BenchmarkOptimizedOffsetTable(b *testing.B) {
	ol := optimizedFor(b, diagSrc, "A")
	idx := make(linalg.Vec, 2)
	dims := ol.Array.Dims
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx[0] = int64(i) % dims[0]
		idx[1] = int64(i*5) % dims[1]
		_ = ol.Offset(idx)
	}
}

// BenchmarkSolveTransform measures Step I on the matmul program.
func BenchmarkSolveTransform(b *testing.B) {
	p, plans := parseProg(b, `
array W[256][256];
array X[256][256];
array Y[256][256];
parallel(i) for i = 0 to 255 { for j = 0 to 255 { for k = 0 to 255 {
    write W[i][j]; read X[i][k]; read Y[k][j];
} } }
`, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range p.Arrays {
			if _, err := SolveTransform(p, a, plans); err != nil {
				b.Fatal(err)
			}
		}
	}
}
