package layout

import (
	"testing"

	"flopt/internal/linalg"
	"flopt/internal/poly"
)

func TestRemapPlanRowToCol(t *testing.T) {
	a := &poly.Array{Name: "A", Dims: []int64{8, 8}}
	plan, err := NewRemapPlan(RowMajor(a), ColMajor(a), a.Dims, "A", 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Moves != 64 {
		t.Errorf("moves = %d", plan.Moves)
	}
	// 64 elements over 4-element blocks: 16 blocks touched on each side.
	if plan.SrcBlocks != 16 || plan.DstBlocks != 16 {
		t.Errorf("blocks = %d/%d", plan.SrcBlocks, plan.DstBlocks)
	}
}

func TestRemapPlanApply(t *testing.T) {
	a := &poly.Array{Name: "A", Dims: []int64{4, 4}}
	rm, cm := RowMajor(a), ColMajor(a)
	plan, err := NewRemapPlan(rm, cm, a.Dims, "A", 2)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]float64, 16)
	for i := range src {
		src[i] = float64(i)
	}
	dst, err := plan.Apply(src, a.Dims)
	if err != nil {
		t.Fatal(err)
	}
	// A[1][2] is src[6] and must land at the col-major offset 2·4+1 = 9.
	if dst[9] != 6 {
		t.Errorf("dst[9] = %f, want 6", dst[9])
	}
	// Round trip restores the original.
	back, err := NewRemapPlan(cm, rm, a.Dims, "A", 2)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := back.Apply(dst, a.Dims)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if orig[i] != src[i] {
			t.Fatalf("round trip broke at %d: %f != %f", i, orig[i], src[i])
		}
	}
}

func TestRemapPlanCanonicalToOptimized(t *testing.T) {
	// The §4.3 import pass: canonical row-major on disk → inter-node.
	ol := optimizedFor(t, transposeSrc, "B")
	a := ol.Array
	plan, err := NewRemapPlan(RowMajor(a), ol, a.Dims, a.Name, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Moves != a.Size() {
		t.Errorf("moves = %d, want %d", plan.Moves, a.Size())
	}
	src := make([]float64, a.Size())
	for i := range src {
		src[i] = float64(i + 1)
	}
	dst, err := plan.Apply(src, a.Dims)
	if err != nil {
		t.Fatal(err)
	}
	// Every element must be findable at its optimized offset.
	idx := make(linalg.Vec, a.Rank())
	forEachIndex(a.Dims, idx, func(lin int64) {
		want := src[RowMajor(a).Offset(idx)]
		if got := dst[ol.Offset(idx)]; got != want {
			t.Fatalf("element %v: got %f want %f", idx, got, want)
		}
	})
}

func TestRemapPlanErrors(t *testing.T) {
	a := &poly.Array{Name: "A", Dims: []int64{4, 4}}
	if _, err := NewRemapPlan(RowMajor(a), ColMajor(a), a.Dims, "A", 0); err == nil {
		t.Error("zero block size accepted")
	}
	plan, _ := NewRemapPlan(RowMajor(a), ColMajor(a), a.Dims, "A", 2)
	if _, err := plan.Apply(make([]float64, 3), a.Dims); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestTemplateInstantiate(t *testing.T) {
	p, _ := parseProg(t, `
array W[64][64];
array X[64][64];
array Y[64][64];
parallel(i) for i = 0 to 63 { for j = 0 to 63 { for k = 0 to 63 {
    write W[i][j]; read X[i][k]; read Y[k][j];
} } }
`, 4)
	seed := smallHierarchy()
	opts := Options{Hierarchy: seed, BlockElems: 4}
	res, err := Optimize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := NewTemplate(res, opts)
	if len(tmpl.Fanouts) != 2 || tmpl.Fanouts[0] != 2 || tmpl.Fanouts[1] != 2 {
		t.Fatalf("fanouts = %v", tmpl.Fanouts)
	}

	// Same shape, four times the capacities: instantiation must succeed
	// and produce bijective layouts without re-running Step I.
	big := Hierarchy{Levels: []Level{
		{Name: "SC1", CapacityElems: 32, Fanout: 2},
		{Name: "SC2", CapacityElems: 256, Fanout: 2},
	}}
	if !tmpl.Matches(big) {
		t.Fatal("same-shape hierarchy rejected")
	}
	layouts, err := tmpl.Instantiate(big)
	if err != nil {
		t.Fatal(err)
	}
	if len(layouts) != 3 {
		t.Fatalf("layouts = %d", len(layouts))
	}
	if layouts["Y"].Name() != "row-major" {
		t.Error("unoptimizable array should stay row-major")
	}
	ol, ok := layouts["W"].(*OptimizedLayout)
	if !ok {
		t.Fatal("W should get an inter-node layout")
	}
	checkBijective(t, ol)

	// A different shape must be rejected.
	other := Hierarchy{Levels: []Level{{Name: "SC1", CapacityElems: 8, Fanout: 4}}}
	if tmpl.Matches(other) {
		t.Error("different shape matched")
	}
	if _, err := tmpl.Instantiate(other); err == nil {
		t.Error("different shape instantiated")
	}
}

// Instantiating the template at the seed capacities must agree exactly
// with the direct optimization.
func TestTemplateConsistentWithDirect(t *testing.T) {
	p, _ := parseProg(t, transposeSrc, 4)
	opts := Options{Hierarchy: smallHierarchy(), BlockElems: 4}
	res, err := Optimize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := NewTemplate(res, opts)
	layouts, err := tmpl.Instantiate(smallHierarchy())
	if err != nil {
		t.Fatal(err)
	}
	direct := res.Layouts["B"]
	viaTmpl := layouts["B"]
	a := p.Array("B")
	idx := make(linalg.Vec, a.Rank())
	forEachIndex(a.Dims, idx, func(lin int64) {
		if direct.Offset(idx) != viaTmpl.Offset(idx) {
			t.Fatalf("offset mismatch at %v: %d vs %d", idx, direct.Offset(idx), viaTmpl.Offset(idx))
		}
	})
}
