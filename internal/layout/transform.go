// Package layout implements the paper's core contribution: the two-step
// inter-node file layout optimization.
//
// Step I (array partitioning, §4.1) finds, for each disk-resident array, a
// unimodular data transformation D such that in the transformed data space
// every thread's elements fall on the thread's own set of parallel
// hyperplanes: h_A·D·Q·E_u = 0 (Eq. 3) for each access matrix Q, with
// conflicting references arbitrated by the Eq. 5 weights.
//
// Step II (storage-hierarchy-aware layout, §4.2) linearizes the partitioned
// array with a thread-interleaved pattern built top-down from the cache
// capacities of the target hierarchy (Algorithm 1).
package layout

import (
	"fmt"
	"strings"

	"flopt/internal/linalg"
	"flopt/internal/parallel"
	"flopt/internal/poly"
)

// Transform is the result of Step I for one array.
type Transform struct {
	Array *poly.Array
	// D is the unimodular data transformation (a' = D·a), nil when the
	// array could not be optimized (no nontrivial partitioning vector
	// exists for even its heaviest access matrix).
	D *linalg.Mat
	// W is row V of D — the data-space hyperplane vector h_A·D expressed
	// in original coordinates, normalized so that the primary reference
	// group's a'_V increases with the parallel iterator.
	W linalg.Vec
	// V is the partitioned dimension in the transformed space (always 0:
	// the optimizer partitions along the outermost transformed dimension).
	V int
	// Plan is the parallelization plan of the nest holding the primary
	// (heaviest) satisfied reference group; its iteration blocks
	// correspond 1:1 to the data blocks along dimension V.
	Plan *parallel.Plan
	// Satisfied lists the reference groups whose Eq. 3 constraint D
	// satisfies, in decreasing weight order.
	Satisfied []*poly.AccessGroup
	// TotalWeight and SatisfiedWeight summarize how much of the array's
	// dynamic access weight the transformation covers.
	TotalWeight, SatisfiedWeight int64
}

// Optimized reports whether Step I found a usable transformation.
func (t *Transform) Optimized() bool { return t.D != nil }

// String summarizes the transform for compiler diagnostics.
func (t *Transform) String() string {
	if !t.Optimized() {
		return fmt.Sprintf("%s: not optimized (no consistent partitioning)", t.Array.Name)
	}
	var names []string
	for _, g := range t.Satisfied {
		names = append(names, fmt.Sprintf("Q=%v(w=%d)", g.Q, g.Weight))
	}
	return fmt.Sprintf("%s: D=%v partition dim %d, satisfies %d/%d weight [%s]",
		t.Array.Name, t.D, t.V, t.SatisfiedWeight, t.TotalWeight, strings.Join(names, ", "))
}

// ThreadOf returns the thread that owns data element idx under the Step I
// partition: the element's hyperplane value w·idx falls into a data block
// along dimension V, and data blocks are assigned round-robin like the
// iteration blocks. It panics on an unoptimized transform.
func (t *Transform) ThreadOf(idx linalg.Vec) int {
	if !t.Optimized() {
		panic("layout: ThreadOf on unoptimized transform")
	}
	lo := int64(0)
	hi := int64(0)
	for k, wk := range t.W {
		span := wk * (t.Array.Dims[k] - 1)
		if span < 0 {
			lo += span
		} else {
			hi += span
		}
	}
	hyCount := hi - lo + 1
	x := int64(t.Plan.NumBlocks)
	dbs := (hyCount + x - 1) / x
	d := (t.W.Dot(idx) - lo) / dbs
	return int(d % int64(t.Plan.Threads))
}

// SolveTransform runs Step I for one array: it gathers the array's access
// groups, greedily selects the maximal-weight consistent subset (heaviest
// first, per Eq. 5), solves the homogeneous system of Eq. 4 for the
// partitioning vector w, and completes w to a unimodular transformation.
// plans must contain the parallelization plan of every nest referencing
// the array.
func SolveTransform(p *poly.Program, a *poly.Array, plans map[*poly.LoopNest]*parallel.Plan) (*Transform, error) {
	return solveTransform(p, a, plans, true)
}

// solveTransform implements SolveTransform; weighted=false disables the
// Eq. 5 ordering (groups are considered in first-reference order), which
// the ablation study uses to quantify the value of weighted conflict
// resolution.
func solveTransform(p *poly.Program, a *poly.Array, plans map[*poly.LoopNest]*parallel.Plan, weighted bool) (*Transform, error) {
	groups := poly.AccessGroups(p, a)
	if !weighted {
		groups = poly.AccessGroupsInOrder(p, a)
	}
	t := &Transform{Array: a, V: 0}
	for _, g := range groups {
		t.TotalWeight += g.Weight
	}
	if len(groups) == 0 {
		return t, nil // array never referenced; leave default layout
	}

	// Constraint columns for a group: M = Q·E_uᵀ per referencing nest. A
	// candidate w must satisfy w·M = 0 (Eq. 3) for every selected group.
	constraintCols := func(g *poly.AccessGroup) (*linalg.Mat, error) {
		var m *linalg.Mat
		for _, rn := range g.Refs {
			plan := plans[rn.Nest]
			if plan == nil {
				return nil, fmt.Errorf("layout: no parallelization plan for a nest referencing %s", a.Name)
			}
			if rn.Nest.Depth() < 2 {
				continue // single loop: E_u is empty, no constraint
			}
			eu := poly.DeleteRow(rn.Nest.Depth(), plan.U)
			cols := rn.Ref.Q.Mul(eu.Transpose()) // m×(n-1)
			if m == nil {
				m = cols
			} else {
				m = m.HCat(cols)
			}
		}
		if m == nil {
			m = linalg.NewMat(a.Rank(), 0)
		}
		return m, nil
	}

	// primaryDir is Q·e_u of a group's first reference: w·primaryDir is
	// the rate α at which a'_V moves per parallel-loop iteration. The
	// primary group must have α ≠ 0 or the partition cannot separate
	// threads.
	primaryDir := func(g *poly.AccessGroup) linalg.Vec {
		rn := g.Refs[0]
		return rn.Ref.Q.Col(plans[rn.Nest].U)
	}

	var accepted *linalg.Mat
	var primary *poly.AccessGroup
	for _, g := range groups {
		cols, err := constraintCols(g)
		if err != nil {
			return nil, err
		}
		cand := cols
		if accepted != nil {
			cand = accepted.HCat(cols)
		}
		var w linalg.Vec
		if primary == nil {
			w = pickW(linalg.LeftNullspace(cand), primaryDir(g))
		} else {
			w = pickW(linalg.LeftNullspace(cand), primaryDir(primary))
		}
		if w == nil {
			continue // inconsistent with current selection; skip (Eq. 5 greedy)
		}
		accepted = cand
		if primary == nil {
			primary = g
		}
		t.Satisfied = append(t.Satisfied, g)
		t.SatisfiedWeight += g.Weight
	}
	if primary == nil {
		return t, nil // not optimizable
	}

	w := pickW(linalg.LeftNullspace(accepted), primaryDir(primary))
	if w == nil {
		// Cannot happen: every acceptance re-verified this condition.
		return nil, fmt.Errorf("layout: internal error: lost partitioning vector for %s", a.Name)
	}
	// Normalize the sign so a'_V increases with the parallel iterator of
	// the primary group, aligning data-block order with iteration-block
	// order.
	if w.Dot(primaryDir(primary)) < 0 {
		w = w.Neg()
	}
	d, ok := linalg.CompleteToUnimodular(w, t.V)
	if !ok {
		return nil, fmt.Errorf("layout: cannot complete %v to a unimodular matrix for %s", w, a.Name)
	}
	t.D = d
	t.W = w
	t.Plan = plans[primary.Refs[0].Nest]
	return t, nil
}

// pickW selects a partitioning vector from a nullspace basis: a vector w
// with w·dir ≠ 0 (so the partition actually separates iteration blocks),
// preferring small L1 norm. If no single basis vector qualifies, pairwise
// sums and differences are tried. Returns nil when the basis is empty or
// every candidate is orthogonal to dir.
func pickW(basis []linalg.Vec, dir linalg.Vec) linalg.Vec {
	var best linalg.Vec
	var bestNorm int64
	consider := func(w linalg.Vec) {
		if w.IsZero() || w.Dot(dir) == 0 {
			return
		}
		n := l1(w)
		if best == nil || n < bestNorm {
			best = linalg.Primitive(w)
			bestNorm = n
		}
	}
	for _, w := range basis {
		consider(w)
	}
	if best != nil {
		return best
	}
	for i := 0; i < len(basis); i++ {
		for j := i + 1; j < len(basis); j++ {
			sum := make(linalg.Vec, len(basis[i]))
			diff := make(linalg.Vec, len(basis[i]))
			for k := range sum {
				sum[k] = basis[i][k] + basis[j][k]
				diff[k] = basis[i][k] - basis[j][k]
			}
			consider(sum)
			consider(diff)
		}
	}
	return best
}

func l1(v linalg.Vec) int64 {
	var n int64
	for _, x := range v {
		if x < 0 {
			n -= x
		} else {
			n += x
		}
	}
	return n
}

// TransformedRef returns the reference r rewritten into the transformed
// data space: Q' = D·Q, offset' = D·q. Used by the compiler driver to emit
// the updated array index functions.
func TransformedRef(r *poly.Reference, d *linalg.Mat) *poly.Reference {
	return &poly.Reference{
		Array:  r.Array,
		Q:      d.Mul(r.Q),
		Offset: d.MulVec(r.Offset),
		Write:  r.Write,
	}
}
