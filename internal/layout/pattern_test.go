package layout

import "testing"

// paperHierarchy mirrors Fig. 6(c): 4 threads, 2 SC1 caches (l = 2 threads
// each), 1 SC2 cache over both (N_2 = 2). S_1 = 4 elements, S_2 = 16
// elements ⇒ chunk = 2, t_1 = 16/(2·4) = 2.
func paperHierarchy() Hierarchy {
	return Hierarchy{Levels: []Level{
		{Name: "SC1", CapacityElems: 4, Fanout: 2},
		{Name: "SC2", CapacityElems: 16, Fanout: 2},
	}}
}

func TestNewPatternPaperExample(t *testing.T) {
	p, err := NewPattern(paperHierarchy(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Threads != 4 || p.ChunkElems != 2 {
		t.Fatalf("threads=%d chunk=%d, want 4/2", p.Threads, p.ChunkElems)
	}
	if p.PatternSize(0) != 4 || p.PatternSize(1) != 16 || p.Repeat(0) != 2 {
		t.Fatalf("P1=%d P2=%d t1=%d, want 4/16/2", p.PatternSize(0), p.PatternSize(1), p.Repeat(0))
	}
}

func TestThreadBasePaperExample(t *testing.T) {
	p, _ := NewPattern(paperHierarchy(), 1)
	// SC2 pattern: <P1 P2 P1 P2 | P3 P4 P3 P4> with chunks of 2 elements.
	wantBase := []int64{0, 2, 8, 10}
	for th, want := range wantBase {
		if got := p.ThreadBase(th); got != want {
			t.Errorf("base of thread %d = %d, want %d", th, got, want)
		}
	}
}

func TestChunkAddrPaperExample(t *testing.T) {
	p, _ := NewPattern(paperHierarchy(), 1)
	// Thread 0 (P1): chunk 0 at 0, chunk 1 at 4 (second repetition of
	// <P1,P2>), chunk 2 at 16 (next SC2 period), chunk 3 at 20.
	want := []int64{0, 4, 16, 20}
	for x, w := range want {
		if got := p.ChunkAddr(0, int64(x)); got != w {
			t.Errorf("chunk %d of thread 0 at %d, want %d", x, got, w)
		}
	}
	// Thread 2 (P3): starts in the second half of the SC2 pattern.
	want = []int64{8, 12, 24, 28}
	for x, w := range want {
		if got := p.ChunkAddr(2, int64(x)); got != w {
			t.Errorf("chunk %d of thread 2 at %d, want %d", x, got, w)
		}
	}
}

// All chunks across threads must tile the file with no gaps or overlaps:
// within one top-level pattern period, the union of chunk intervals is
// exactly [0, P_n).
func TestPatternTilesPeriod(t *testing.T) {
	hierarchies := []Hierarchy{
		paperHierarchy(),
		{Levels: []Level{{Name: "SC1", CapacityElems: 8, Fanout: 4}}},
		{Levels: []Level{
			{Name: "SC1", CapacityElems: 6, Fanout: 3},
			{Name: "SC2", CapacityElems: 36, Fanout: 2},
		}},
		{Levels: []Level{
			{Name: "SC1", CapacityElems: 4, Fanout: 2},
			{Name: "SC2", CapacityElems: 16, Fanout: 2},
			{Name: "SC3", CapacityElems: 64, Fanout: 2},
		}},
	}
	for hi, h := range hierarchies {
		p, err := NewPattern(h, 1)
		if err != nil {
			t.Fatalf("hierarchy %d: %v", hi, err)
		}
		chunksPerThread := int64(1)
		for i := 0; i < p.Levels()-1; i++ {
			chunksPerThread *= p.Repeat(i)
		}
		period := p.PatternSize(p.Levels() - 1)
		covered := make([]bool, period)
		for th := 0; th < p.Threads; th++ {
			for x := int64(0); x < chunksPerThread; x++ {
				addr := p.ChunkAddr(th, x)
				for e := addr; e < addr+p.ChunkElems; e++ {
					if e >= period {
						t.Fatalf("hierarchy %d: chunk (%d,%d) spills past period: %d ≥ %d", hi, th, x, e, period)
					}
					if covered[e] {
						t.Fatalf("hierarchy %d: overlap at element %d", hi, e)
					}
					covered[e] = true
				}
			}
		}
		for e, ok := range covered {
			if !ok {
				t.Fatalf("hierarchy %d: gap at element %d", hi, e)
			}
		}
	}
}

// The second period must be a pure translation of the first by P_n.
func TestPatternPeriodicity(t *testing.T) {
	p, _ := NewPattern(paperHierarchy(), 1)
	chunksPerPeriod := p.Repeat(0)
	period := p.PatternSize(1)
	for th := 0; th < p.Threads; th++ {
		for x := int64(0); x < chunksPerPeriod; x++ {
			a := p.ChunkAddr(th, x)
			b := p.ChunkAddr(th, x+chunksPerPeriod)
			if b != a+period {
				t.Fatalf("thread %d chunk %d: period broken: %d vs %d+%d", th, x, b, a, period)
			}
		}
	}
}

func TestPatternChunkAlignment(t *testing.T) {
	h := Hierarchy{Levels: []Level{
		{Name: "SC1", CapacityElems: 100, Fanout: 3}, // 100/3 = 33 → aligned down to 32
		{Name: "SC2", CapacityElems: 1000, Fanout: 2},
	}}
	p, err := NewPattern(h, 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.ChunkElems != 32 {
		t.Errorf("chunk = %d, want 32", p.ChunkElems)
	}
}

func TestPatternDegenerateRatios(t *testing.T) {
	// Aggregate SC1 capacity exceeds SC2 (the paper's own default: 16×1 GB
	// I/O caches over 4×2 GB storage caches): t_1 clamps to 1.
	h := Hierarchy{Levels: []Level{
		{Name: "io", CapacityElems: 1024, Fanout: 4},
		{Name: "storage", CapacityElems: 2048, Fanout: 4},
	}}
	p, err := NewPattern(h, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Repeat(0) != 1 {
		t.Errorf("t1 = %d, want clamp to 1", p.Repeat(0))
	}
	if p.PatternSize(1) != 4*1024 {
		t.Errorf("P2 = %d, want 4096", p.PatternSize(1))
	}
}

func TestPatternAddr(t *testing.T) {
	p, _ := NewPattern(paperHierarchy(), 1)
	// Element sequence of thread 0: e=0,1 in chunk 0 (addr 0,1), e=2,3 in
	// chunk 1 (addr 4,5), e=4 in chunk 2 (addr 16).
	want := []int64{0, 1, 4, 5, 16}
	for e, wantAddr := range want {
		if got := p.Addr(0, int64(e)); got != wantAddr {
			t.Errorf("Addr(0, %d) = %d, want %d", e, got, wantAddr)
		}
	}
}

func TestHierarchyValidate(t *testing.T) {
	if (Hierarchy{}).Validate() == nil {
		t.Error("empty hierarchy accepted")
	}
	bad := Hierarchy{Levels: []Level{{CapacityElems: 0, Fanout: 2}}}
	if bad.Validate() == nil {
		t.Error("zero capacity accepted")
	}
	bad = Hierarchy{Levels: []Level{{CapacityElems: 8, Fanout: 0}}}
	if bad.Validate() == nil {
		t.Error("zero fanout accepted")
	}
	if paperHierarchy().Threads() != 4 {
		t.Error("Threads() wrong")
	}
}

func TestThreadBasePanics(t *testing.T) {
	p, _ := NewPattern(paperHierarchy(), 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p.ThreadBase(99)
}
