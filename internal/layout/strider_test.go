package layout

import (
	"testing"

	"flopt/internal/linalg"
	"flopt/internal/poly"
)

// checkSegs verifies a Strider decomposition against the layout's own
// Offset map: walking start, start+dir, … start+(count-1)·dir through the
// returned segments must reproduce every per-element offset exactly, and
// the segments must cover exactly count iterations.
func checkSegs(t *testing.T, l Layout, s Strider, start, dir linalg.Vec, count int64) {
	t.Helper()
	if !s.CanStride(dir) {
		t.Fatalf("%s: CanStride(%v) = false for a strideable walk", l.Name(), dir)
	}
	segs := s.AppendSegs(nil, start, dir, count)
	idx := start.Clone()
	k := int64(0)
	for si, seg := range segs {
		if seg.Count < 1 {
			t.Fatalf("%s: segment %d has count %d", l.Name(), si, seg.Count)
		}
		for j := int64(0); j < seg.Count; j++ {
			want := l.Offset(idx)
			if got := seg.Start + j*seg.Stride; got != want {
				t.Fatalf("%s: dir %v iteration %d: segment offset %d, Offset() %d",
					l.Name(), dir, k, got, want)
			}
			for d := range idx {
				idx[d] += dir[d]
			}
			k++
		}
	}
	if k != count {
		t.Fatalf("%s: segments cover %d iterations, want %d", l.Name(), k, count)
	}
}

func TestPermutedStriderMatchesOffsets(t *testing.T) {
	a := &poly.Array{Name: "A", Dims: []int64{4, 3, 5}}
	for _, l := range []*PermutedLayout{RowMajor(a), ColMajor(a), Permuted(a, []int{1, 0, 2})} {
		// Single-dimension walks in both directions, including a non-unit
		// step, and a diagonal walk: affine layouts stride along any dir.
		checkSegs(t, l, l, linalg.Vec{0, 0, 0}, linalg.Vec{0, 0, 1}, 5)
		checkSegs(t, l, l, linalg.Vec{3, 2, 4}, linalg.Vec{0, 0, -1}, 5)
		checkSegs(t, l, l, linalg.Vec{0, 1, 0}, linalg.Vec{1, 0, 0}, 4)
		checkSegs(t, l, l, linalg.Vec{0, 0, 0}, linalg.Vec{0, 0, 2}, 3)
		checkSegs(t, l, l, linalg.Vec{0, 0, 0}, linalg.Vec{1, 1, 1}, 3)
		checkSegs(t, l, l, linalg.Vec{2, 1, 2}, linalg.Vec{0, 0, 0}, 4)
	}
}

func TestOptimizedStriderMatchesOffsets(t *testing.T) {
	for _, tc := range []struct {
		src, arr string
	}{{rowSrc, "A"}, {transposeSrc, "B"}} {
		ol := optimizedFor(t, tc.src, tc.arr)
		if ol.table != nil {
			t.Fatalf("%s: expected the fast path", tc.arr)
		}
		// Strideable directions are exactly those inside the partition
		// hyperplane (w·dir = 0).
		for d := 0; d < 2; d++ {
			dir := linalg.Vec{0, 0}
			dir[d] = 1
			if got, want := ol.CanStride(dir), ol.T.W.Dot(dir) == 0; got != want {
				t.Errorf("%s: CanStride(%v) = %v, want %v", tc.arr, dir, got, want)
			}
		}
		free := 0 // dimension with w component zero
		if ol.T.W[0] == 0 {
			free = 0
		} else {
			free = 1
		}
		for _, row := range []int64{0, 3, 7, 15} {
			start := linalg.Vec{0, 0}
			start[1-free] = row
			dir := linalg.Vec{0, 0}
			dir[free] = 1
			checkSegs(t, ol, ol, start, dir, 16)
			// Reverse walk from the far end, and a strided one.
			start[free], dir[free] = 15, -1
			checkSegs(t, ol, ol, start, dir, 16)
			start[free], dir[free] = 1, 2
			checkSegs(t, ol, ol, start, dir, 8)
		}
		// The zero direction is a constant walk.
		checkSegs(t, ol, ol, linalg.Vec{2, 2}, linalg.Vec{0, 0}, 6)
	}
}

func TestOptimizedStriderRejectsTablePath(t *testing.T) {
	ol := optimizedFor(t, diagSrc, "A")
	if ol.table == nil {
		t.Fatal("expected the table fallback")
	}
	for _, dir := range []linalg.Vec{{0, 1}, {1, 0}, {1, -1}, {0, 0}} {
		if ol.CanStride(dir) {
			t.Errorf("table-path layout claims CanStride(%v)", dir)
		}
	}
}
