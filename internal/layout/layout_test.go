package layout

import (
	"fmt"
	"testing"

	"flopt/internal/lang"
	"flopt/internal/linalg"
	"flopt/internal/poly"
)

func TestPermutedLayouts(t *testing.T) {
	a := &poly.Array{Name: "A", Dims: []int64{3, 4}}
	rm := RowMajor(a)
	if rm.Offset(linalg.Vec{1, 2}) != 6 {
		t.Errorf("row-major offset = %d, want 6", rm.Offset(linalg.Vec{1, 2}))
	}
	cm := ColMajor(a)
	if cm.Offset(linalg.Vec{1, 2}) != 2*3+1 {
		t.Errorf("col-major offset = %d, want 7", cm.Offset(linalg.Vec{1, 2}))
	}
	if rm.SizeElems() != 12 || cm.SizeElems() != 12 {
		t.Error("size wrong")
	}
	if rm.Name() != "row-major" || cm.Name() != "col-major" {
		t.Error("names wrong")
	}
}

func TestPermutedLayoutBijective(t *testing.T) {
	a := &poly.Array{Name: "A", Dims: []int64{4, 3, 5}}
	for _, l := range []Layout{RowMajor(a), ColMajor(a), Permuted(a, []int{1, 0, 2})} {
		seen := make(map[int64]bool, a.Size())
		idx := make(linalg.Vec, 3)
		forEachIndex(a.Dims, idx, func(lin int64) {
			off := l.Offset(idx)
			if off < 0 || off >= l.SizeElems() {
				t.Fatalf("%s: offset %d outside [0, %d)", l.Name(), off, l.SizeElems())
			}
			if seen[off] {
				t.Fatalf("%s: duplicate offset %d", l.Name(), off)
			}
			seen[off] = true
		})
	}
}

func TestPermutedPanics(t *testing.T) {
	a := &poly.Array{Name: "A", Dims: []int64{4, 4}}
	for _, perm := range [][]int{{0}, {0, 0}, {0, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("perm %v accepted", perm)
				}
			}()
			Permuted(a, perm)
		}()
	}
}

// smallHierarchy: 4 threads, 2 per SC1 cache, chunk 4 elements.
func smallHierarchy() Hierarchy {
	return Hierarchy{Levels: []Level{
		{Name: "SC1", CapacityElems: 8, Fanout: 2},
		{Name: "SC2", CapacityElems: 64, Fanout: 2},
	}}
}

func optimizedFor(t testing.TB, src, arr string) *OptimizedLayout {
	t.Helper()
	p, plans := parseProg(t, src, 4)
	tr, err := SolveTransform(p, p.Array(arr), plans)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Optimized() {
		t.Fatalf("%s not optimized", arr)
	}
	pat, err := NewPattern(smallHierarchy(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ol, err := NewOptimizedLayout(tr, pat)
	if err != nil {
		t.Fatal(err)
	}
	return ol
}

const rowSrc = `
array A[16][16];
parallel(i) for i = 0 to 15 { for j = 0 to 15 { read A[i][j]; } }
`

const transposeSrc = `
array B[16][16];
parallel(i) for i = 0 to 15 { for j = 0 to 15 { read B[j][i]; } }
`

const diagSrc = `
array A[12][12];
parallel(i) for i = 0 to 11 { for j = 0 to 11 { read A[i+j][j]; } }
`

func checkBijective(t testing.TB, ol *OptimizedLayout) {
	t.Helper()
	seen := make(map[int64]linalg.Vec, ol.Array.Size())
	idx := make(linalg.Vec, ol.Array.Rank())
	forEachIndex(ol.Array.Dims, idx, func(lin int64) {
		off := ol.Offset(idx)
		if off < 0 || off >= ol.SizeElems() {
			t.Fatalf("offset %d of %v outside [0, %d)", off, idx, ol.SizeElems())
		}
		if prev, dup := seen[off]; dup {
			t.Fatalf("offset %d assigned to both %v and %v", off, prev, idx)
		}
		seen[off] = idx.Clone()
	})
}

func TestOptimizedLayoutBijectiveFastPath(t *testing.T) {
	checkBijective(t, optimizedFor(t, rowSrc, "A"))
	checkBijective(t, optimizedFor(t, transposeSrc, "B"))
}

func TestOptimizedLayoutBijectiveTablePath(t *testing.T) {
	ol := optimizedFor(t, diagSrc, "A")
	if ol.table == nil {
		t.Fatal("diagonal transform should use the table path")
	}
	checkBijective(t, ol)
}

// The defining property of the optimized layout: each thread's elements
// occupy whole chunks — within any chunk-sized aligned window of that
// thread's region, all elements belong to the same thread.
func TestOptimizedLayoutGroupsThreadData(t *testing.T) {
	ol := optimizedFor(t, rowSrc, "A")
	// Reconstruct the owning thread of each file offset.
	owner := make(map[int64]int)
	idx := make(linalg.Vec, 2)
	forEachIndex(ol.Array.Dims, idx, func(lin int64) {
		h := ol.hIndex(idx)
		th := ol.threadOf(ol.dblockOf(h))
		owner[ol.Offset(idx)] = th
	})
	chunk := ol.P.ChunkElems
	for off, th := range owner {
		base := off - off%chunk
		for e := base; e < base+chunk; e++ {
			if other, ok := owner[e]; ok && other != th {
				t.Fatalf("chunk at %d mixes threads %d and %d", base, th, other)
			}
		}
	}
}

// Row-access case: thread 0's first elements must be contiguous from its
// pattern base, in increasing (i, j) order.
func TestOptimizedLayoutSequencing(t *testing.T) {
	ol := optimizedFor(t, rowSrc, "A")
	base := ol.P.ThreadBase(0)
	// Thread 0 owns data block 0: rows 0..3 of the 16×16 array. Its first
	// chunk (4 elements) is A[0][0..3].
	for j := int64(0); j < 4; j++ {
		if got := ol.Offset(linalg.Vec{0, j}); got != base+j {
			t.Errorf("A[0][%d] at %d, want %d", j, got, base+j)
		}
	}
}

// The fast path and the table fallback must agree exactly.
func TestFastPathMatchesTable(t *testing.T) {
	for _, src := range []string{rowSrc, transposeSrc} {
		arr := "A"
		if src == transposeSrc {
			arr = "B"
		}
		fast := optimizedFor(t, src, arr)
		if fast.table != nil {
			t.Fatal("expected fast path")
		}
		forced := *fast
		forced.table = nil
		forced.buildTable()
		idx := make(linalg.Vec, 2)
		forEachIndex(fast.Array.Dims, idx, func(lin int64) {
			a, b := fast.Offset(idx), forced.table[lin]
			if a != b {
				t.Fatalf("%s %v: fast %d ≠ table %d", arr, idx, a, b)
			}
		})
	}
}

func TestNewOptimizedLayoutRejects(t *testing.T) {
	p, plans := parseProg(t, `
array Y[8][8];
parallel(i) for i = 0 to 7 { for j = 0 to 7 { for k = 0 to 7 { read Y[k][j]; } } }
`, 4)
	tr, err := SolveTransform(p, p.Array("Y"), plans)
	if err != nil {
		t.Fatal(err)
	}
	pat, _ := NewPattern(smallHierarchy(), 1)
	if _, err := NewOptimizedLayout(tr, pat); err == nil {
		t.Error("unoptimized transform accepted")
	}
}

func TestOptimizeEndToEnd(t *testing.T) {
	src := `
array W[16][16];
array X[16][16];
array Y[16][16];
parallel(i) for i = 0 to 15 { for j = 0 to 15 { for k = 0 to 15 {
    write W[i][j]; read X[i][k]; read Y[k][j];
} } }
`
	p, _ := parseProg(t, src, 4)
	res, err := Optimize(p, Options{Hierarchy: smallHierarchy(), BlockElems: 4})
	if err != nil {
		t.Fatal(err)
	}
	opt, total := res.OptimizedCount()
	if opt != 2 || total != 3 {
		t.Errorf("optimized %d/%d, want 2/3", opt, total)
	}
	if _, ok := res.Layouts["W"].(*OptimizedLayout); !ok {
		t.Error("W should get the inter-node layout")
	}
	if res.Layouts["Y"].Name() != "row-major" {
		t.Error("Y should fall back to row-major")
	}
	if res.Pattern == nil || len(res.Plans) != 1 {
		t.Error("missing pattern or plans")
	}
}

func TestOptimizeValidations(t *testing.T) {
	p, _ := parseProg(t, rowSrc, 4)
	if _, err := Optimize(p, Options{Hierarchy: smallHierarchy(), BlockElems: 0}); err == nil {
		t.Error("zero BlockElems accepted")
	}
	if _, err := Optimize(p, Options{Hierarchy: Hierarchy{}, BlockElems: 4}); err == nil {
		t.Error("empty hierarchy accepted")
	}
}

func TestDefaultLayouts(t *testing.T) {
	p, _ := parseProg(t, rowSrc, 4)
	m := DefaultLayouts(p)
	if len(m) != 1 || m["A"].Name() != "row-major" {
		t.Errorf("DefaultLayouts = %v", m)
	}
}

func TestOptimizedLayoutSizeCoversOffsets(t *testing.T) {
	for _, tc := range []struct{ src, arr string }{
		{rowSrc, "A"}, {transposeSrc, "B"}, {diagSrc, "A"},
	} {
		ol := optimizedFor(t, tc.src, tc.arr)
		max := int64(-1)
		idx := make(linalg.Vec, 2)
		forEachIndex(ol.Array.Dims, idx, func(lin int64) {
			if off := ol.Offset(idx); off > max {
				max = off
			}
		})
		if ol.SizeElems() != max+1 {
			t.Errorf("%s/%s: SizeElems = %d, want %d", tc.src[:10], tc.arr, ol.SizeElems(), max+1)
		}
	}
}

// 3-D coverage: a rank-3 array accessed as a plane transpose must get a
// bijective optimized layout through both steps.
func TestOptimizedLayout3D(t *testing.T) {
	src := `
array V[8][6][10];
parallel(i) for i = 0 to 7 { for j = 0 to 5 { for k = 0 to 9 { read V[i][j][k]; } } }
`
	ol := optimizedFor(t, src, "V")
	checkBijective(t, ol)

	src2 := `
array V[6][8][10];
parallel(i) for i = 0 to 7 { for j = 0 to 5 { for k = 0 to 9 { read V[j][i][k]; } } }
`
	ol2 := optimizedFor(t, src2, "V")
	checkBijective(t, ol2)
	// The partition must run along the dimension indexed by i (dim 1).
	if !ol2.T.W.Equal(linalg.Vec{0, 1, 0}) {
		t.Errorf("w = %v, want (0, 1, 0)", ol2.T.W)
	}
}

// Property test: for random small hierarchies and array shapes, the
// optimized layout is always a bijection into a bounded file.
func TestOptimizedLayoutQuick(t *testing.T) {
	cases := []struct {
		d1, d2  int64
		l, n2   int
		s1, s2  int64
		blockSz int64
		srcKind int // 0 row, 1 transpose, 2 diagonal
	}{
		{12, 16, 2, 2, 8, 64, 2, 0},
		{16, 12, 2, 2, 8, 64, 4, 1},
		{9, 9, 3, 2, 6, 72, 3, 2},
		{20, 8, 2, 3, 16, 128, 4, 1},
		{7, 13, 2, 2, 10, 50, 2, 2},
	}
	srcs := []string{
		"array A[%d][%d];\nparallel(i) for i = 0 to %d { for j = 0 to %d { read A[i][j]; } }",
		"array A[%d][%d];\nparallel(i) for i = 0 to %d { for j = 0 to %d { read A[j][i]; } }",
	}
	for ci, c := range cases {
		var src string
		if c.srcKind == 2 {
			// diagonal: A[(i+j)][j] with first dim large enough
			src = sprintf("array A[%d][%d];\nparallel(i) for i = 0 to %d { for j = 0 to %d { read A[i+j][j]; } }",
				c.d1+c.d2, c.d2, c.d1-1, c.d2-1)
		} else if c.srcKind == 1 {
			src = sprintf(srcs[1], c.d1, c.d2, c.d2-1, c.d1-1)
		} else {
			src = sprintf(srcs[0], c.d1, c.d2, c.d1-1, c.d2-1)
		}
		p, err := parseQuick(src)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		h := Hierarchy{Levels: []Level{
			{Name: "SC1", CapacityElems: c.s1 * int64(c.l), Fanout: c.l},
			{Name: "SC2", CapacityElems: c.s2, Fanout: c.n2},
		}}
		res, err := Optimize(p, Options{Hierarchy: h, BlockElems: c.blockSz})
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		for name, l := range res.Layouts {
			ol, ok := l.(*OptimizedLayout)
			if !ok {
				continue
			}
			checkBijective(t, ol)
			a := p.Array(name)
			if l.SizeElems() > 4*a.Size()+c.blockSz*int64(h.Threads()) {
				t.Errorf("case %d %s: file ballooned to %d for %d elements", ci, name, l.SizeElems(), a.Size())
			}
		}
	}
}

// sprintf is a tiny local alias keeping the table-driven quick test terse.
func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// parseQuick compiles source without a testing.TB.
func parseQuick(src string) (*poly.Program, error) { return lang.Parse("quick", src) }
