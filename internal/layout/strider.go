package layout

import "flopt/internal/linalg"

// Seg is one maximal affine piece of an innermost-loop walk: the file
// offsets of the iterations k = 0 … Count-1 covered by the segment are
// Start + k·Stride. Segments partition the walk; Count ≥ 1.
type Seg struct {
	Start  int64
	Stride int64
	Count  int64
}

// Strider is the closed-form capability of layouts whose Offset function
// is (piecewise) affine along a fixed per-iteration index direction. The
// trace generator uses it to emit whole block runs per innermost-loop span
// instead of evaluating Offset once per element.
//
// CanStride reports whether the decomposition is available for direction
// dir (the per-iteration delta of the data index vector). AppendSegs
// decomposes the walk start, start+dir, …, start+(count-1)·dir — every
// point of which must lie inside the array — into maximal affine segments,
// appending them to segs and returning the extended slice. Callers must
// fall back to per-element Offset evaluation when CanStride is false.
type Strider interface {
	CanStride(dir linalg.Vec) bool
	AppendSegs(segs []Seg, start, dir linalg.Vec, count int64) []Seg
}

// CanStride implements Strider: a permuted row-major order is affine in
// every index, so any direction strides.
func (l *PermutedLayout) CanStride(dir linalg.Vec) bool { return true }

// AppendSegs implements Strider. Offset is globally affine, so the whole
// walk is a single segment with stride Σ_d dimStride(d)·dir[d].
func (l *PermutedLayout) AppendSegs(segs []Seg, start, dir linalg.Vec, count int64) []Seg {
	strides := l.strides
	if strides == nil {
		strides = permStrides(l.Array.Dims, l.Perm)
	}
	var stride int64
	for d, s := range strides {
		stride += s * dir[d]
	}
	return append(segs, Seg{Start: l.Offset(start), Stride: stride, Count: count})
}

// permStrides returns the per-dimension offset stride of the permuted
// order: Perm[len-1] varies fastest (stride 1).
func permStrides(dims []int64, perm []int) []int64 {
	s := make([]int64, len(dims))
	acc := int64(1)
	for i := len(perm) - 1; i >= 0; i-- {
		s[perm[i]] = acc
		acc *= dims[perm[i]]
	}
	return s
}

// CanStride implements Strider. The fast-path geometry (w = ±e_p) is
// affine in the thread-local sequence index e as long as the direction
// stays inside one hyperplane (w·dir = 0): then the data block, thread and
// earlier-hyperplane count are constant across the walk and only the
// row-major rest-rank moves. A direction that crosses hyperplanes changes
// threads/data blocks non-affinely, and the table fallback has no closed
// form at all — both fall back to per-element evaluation.
func (l *OptimizedLayout) CanStride(dir linalg.Vec) bool {
	return l.table == nil && l.T.W.Dot(dir) == 0
}

// AppendSegs implements Strider. Within the walk e advances by a constant
// eStride per iteration, and Pattern.Addr(t, e) is affine in e between
// chunk boundaries (multiples of ChunkElems), so the walk splits into one
// segment per pattern chunk touched.
func (l *OptimizedLayout) AppendSegs(segs []Seg, start, dir linalg.Vec, count int64) []Seg {
	h := l.hIndex(start)
	d := l.dblockOf(h)
	t := l.threadOf(d)
	earlier := d / int64(l.T.Plan.Threads)
	e0 := (earlier*l.dbs+h%l.dbs)*l.perH + l.restRank(start)
	var eStride int64
	for k, s := range l.stride {
		eStride += dir[k] * s
	}
	if eStride == 0 {
		// The walk revisits one element; one constant segment.
		return append(segs, Seg{Start: l.P.Addr(t, e0), Stride: eStride, Count: count})
	}
	c := l.P.ChunkElems
	for k := int64(0); k < count; {
		e := e0 + k*eStride
		x := e / c // chunk index; e ≥ 0 for every in-array element
		// Last k of this chunk: the largest k' with x·c ≤ e0+k'·eStride < (x+1)·c.
		var kEnd int64
		if eStride > 0 {
			kEnd = ((x+1)*c - 1 - e0) / eStride
		} else {
			kEnd = (e0 - x*c) / -eStride
		}
		if kEnd > count-1 {
			kEnd = count - 1
		}
		segs = append(segs, Seg{Start: l.P.ChunkAddr(t, x) + (e - x*c), Stride: eStride, Count: kEnd - k + 1})
		k = kEnd + 1
	}
	return segs
}

var (
	_ Strider = (*PermutedLayout)(nil)
	_ Strider = (*OptimizedLayout)(nil)
)
