package layout

import (
	"fmt"

	"flopt/internal/parallel"
	"flopt/internal/poly"
)

// Options configures the whole-program optimization.
type Options struct {
	// Hierarchy is the storage-cache topology to target. Its fanout
	// product determines the thread count.
	Hierarchy Hierarchy
	// BlockElems is the cache-management/stripe unit in elements; thread
	// chunks are aligned to it. Must be ≥ 1.
	BlockElems int64
	// BlocksPerThread scales the iteration-block count per thread
	// (default 1: one iteration block per thread, as in the paper's
	// default distribution).
	BlocksPerThread int
	// UnweightedEq5 disables the Eq. 5 weighted conflict resolution
	// (ablation study): conflicting reference groups are then considered
	// in first-reference order instead of heaviest-first.
	UnweightedEq5 bool
	// FlatPattern disables the hierarchy-aware Step II interleaving
	// (ablation study): each array is laid out as plain per-thread slabs
	// with no capacity-aware pattern nesting.
	FlatPattern bool
}

// Result carries the outcome of the whole-program pass: the plans chosen
// for each nest, the Step I transform and final layout per array, and the
// compiled Step II pattern.
type Result struct {
	Program *poly.Program
	// Pattern is the platform-level Step II pattern (uncapped chunk). The
	// per-array patterns actually used by the layouts cap the chunk at
	// each array's per-thread share; see the OptimizedLayout values in
	// Layouts.
	Pattern    *Pattern
	Plans      map[*poly.LoopNest]*parallel.Plan
	Transforms map[string]*Transform
	Layouts    map[string]Layout
}

// Optimize runs the full inter-node file layout optimization over a
// program: parallelization plans per nest, Step I per array, Step II
// pattern construction, and layout selection (arrays whose Step I fails
// keep their default row-major layout, as in the paper).
func Optimize(p *poly.Program, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.BlockElems < 1 {
		return nil, fmt.Errorf("layout: BlockElems must be ≥ 1")
	}
	threads := opts.Hierarchy.Threads()
	pattern, err := NewPattern(opts.Hierarchy, opts.BlockElems)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Program:    p,
		Pattern:    pattern,
		Plans:      make(map[*poly.LoopNest]*parallel.Plan, len(p.Nests)),
		Transforms: make(map[string]*Transform, len(p.Arrays)),
		Layouts:    make(map[string]Layout, len(p.Arrays)),
	}
	for _, n := range p.Nests {
		plan, err := parallel.NewPlan(n, threads, opts.BlocksPerThread)
		if err != nil {
			return nil, fmt.Errorf("layout: nest parallelization: %w", err)
		}
		res.Plans[n] = plan
	}
	for _, a := range p.Arrays {
		tr, err := solveTransform(p, a, res.Plans, !opts.UnweightedEq5)
		if err != nil {
			return nil, err
		}
		res.Transforms[a.Name] = tr
		if tr.Optimized() {
			// Cap the chunk at the array's per-thread share so small
			// arrays are packed tightly instead of scattered across a
			// mostly-empty pattern period, and prefer a chunk that tiles
			// the share exactly (no partial-chunk holes).
			perThread := (a.Size() + int64(threads) - 1) / int64(threads)
			hier := opts.Hierarchy
			platformChunk := pattern.ChunkElems
			if opts.FlatPattern {
				// Flat ablation: one level spanning all threads with a
				// per-thread slab chunk — no capacity-aware nesting.
				hier = Hierarchy{Levels: []Level{{
					Name:          "flat",
					CapacityElems: perThread * int64(threads),
					Fanout:        threads,
				}}}
				platformChunk = perThread
			}
			chunk := chunkCapFor(perThread, platformChunk, opts.BlockElems)
			maxChunks := (perThread + chunk - 1) / chunk
			apat, err := NewPatternFor(hier, opts.BlockElems, chunk, maxChunks)
			if err != nil {
				return nil, err
			}
			ol, err := NewOptimizedLayout(tr, apat)
			if err != nil {
				return nil, err
			}
			res.Layouts[a.Name] = ol
		} else {
			res.Layouts[a.Name] = RowMajor(a)
		}
	}
	return res, nil
}

// chunkCapFor picks the per-thread chunk size for one array: the largest
// block-aligned divisor of the thread's share that does not exceed the
// platform chunk (the SC1 cache share). Exact division avoids file holes;
// when no aligned divisor exists the share itself is used (NewPatternSized
// still aligns and caps it).
func chunkCapFor(perThread, platformChunk, blockElems int64) int64 {
	limit := platformChunk
	if perThread < limit {
		limit = perThread
	}
	limit -= limit % blockElems
	for c := limit; c >= blockElems; c -= blockElems {
		if perThread%c == 0 {
			return c
		}
	}
	return perThread
}

// OptimizedCount returns how many referenced arrays received an optimized
// layout and how many arrays the program declares (the §5.1 "72 % of
// arrays" statistic).
func (r *Result) OptimizedCount() (optimized, total int) {
	for _, a := range r.Program.Arrays {
		total++
		if tr := r.Transforms[a.Name]; tr != nil && tr.Optimized() {
			optimized++
		}
	}
	return optimized, total
}

// DefaultLayouts returns the row-major layout for every array of p — the
// paper's "default execution" configuration.
func DefaultLayouts(p *poly.Program) map[string]Layout {
	m := make(map[string]Layout, len(p.Arrays))
	for _, a := range p.Arrays {
		m[a.Name] = RowMajor(a)
	}
	return m
}
