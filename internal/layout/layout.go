package layout

import (
	"fmt"

	"flopt/internal/linalg"
	"flopt/internal/poly"
)

// Layout maps multi-dimensional array elements to linear file offsets
// (in elements). Implementations must be bijections from the array's data
// space into [0, SizeElems()); SizeElems may exceed the element count when
// the mapping leaves alignment holes.
type Layout interface {
	// Offset returns the file offset (in elements) of the given index
	// vector, which must lie inside the array.
	Offset(idx linalg.Vec) int64
	// SizeElems returns the file length in elements.
	SizeElems() int64
	// Name identifies the layout scheme for reports.
	Name() string
}

// PermutedLayout stores the array canonically with its dimensions ordered
// by Perm: Perm[0] varies slowest, Perm[len-1] fastest. The identity
// permutation is row-major; the reversed permutation is column-major. This
// is the dimension-reindexing family of layouts used by the baseline [27].
type PermutedLayout struct {
	Array *poly.Array
	Perm  []int
	label string

	// strides caches the per-dimension offset stride for AppendSegs. The
	// constructors fill it; zero-value literals get a local recompute.
	strides []int64
}

// RowMajor returns the default row-major layout of a.
func RowMajor(a *poly.Array) *PermutedLayout {
	perm := make([]int, a.Rank())
	for i := range perm {
		perm[i] = i
	}
	return &PermutedLayout{Array: a, Perm: perm, label: "row-major", strides: permStrides(a.Dims, perm)}
}

// ColMajor returns the column-major layout of a.
func ColMajor(a *poly.Array) *PermutedLayout {
	perm := make([]int, a.Rank())
	for i := range perm {
		perm[i] = a.Rank() - 1 - i
	}
	return &PermutedLayout{Array: a, Perm: perm, label: "col-major", strides: permStrides(a.Dims, perm)}
}

// Permuted returns the layout with the given dimension order (slowest
// first). It panics if perm is not a permutation of the array dimensions.
func Permuted(a *poly.Array, perm []int) *PermutedLayout {
	if len(perm) != a.Rank() {
		panic("layout: permutation length mismatch")
	}
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			panic("layout: not a permutation")
		}
		seen[p] = true
	}
	return &PermutedLayout{Array: a, Perm: perm, label: fmt.Sprintf("permuted%v", perm), strides: permStrides(a.Dims, perm)}
}

// Offset implements Layout.
func (l *PermutedLayout) Offset(idx linalg.Vec) int64 {
	var off int64
	for _, d := range l.Perm {
		off = off*l.Array.Dims[d] + idx[d]
	}
	return off
}

// SizeElems implements Layout.
func (l *PermutedLayout) SizeElems() int64 { return l.Array.Size() }

// Name implements Layout.
func (l *PermutedLayout) Name() string { return l.label }

// OptimizedLayout is the paper's inter-node file layout: the array is
// partitioned by the Step I transform into per-thread data blocks along
// transformed dimension V, each thread's elements are sequenced in
// increasing hyperplane order, and the sequence is placed by the Step II
// pattern (Algorithm 1).
type OptimizedLayout struct {
	Array   *poly.Array
	T       *Transform
	P       *Pattern
	loV     int64 // minimum of w·a over the data space
	hyCount int64 // number of distinct hyperplane values H = U-L+1
	dbs     int64 // data-block size along V, ceil(H / plan.NumBlocks)
	size    int64 // file size in elements

	// Fast path (w = ±e_p): slab geometry.
	axis   int   // p, or -1 when the table fallback is active
	perH   int64 // elements per hyperplane (slab area)
	stride []int64

	// Table fallback for skewed w: row-major linear index → file offset.
	table []int64
}

// NewOptimizedLayout builds the optimized layout of t.Array for pattern p.
// The transform must be optimized (t.D non-nil).
func NewOptimizedLayout(t *Transform, p *Pattern) (*OptimizedLayout, error) {
	if !t.Optimized() {
		return nil, fmt.Errorf("layout: array %s has no transform", t.Array.Name)
	}
	if t.Plan.Threads != p.Threads {
		return nil, fmt.Errorf("layout: plan has %d threads but pattern interleaves %d", t.Plan.Threads, p.Threads)
	}
	ol := &OptimizedLayout{Array: t.Array, T: t, P: p, axis: -1}
	lo, hi := int64(0), int64(0)
	for k, wk := range t.W {
		span := wk * (t.Array.Dims[k] - 1)
		if span < 0 {
			lo += span
		} else {
			hi += span
		}
	}
	ol.loV = lo
	ol.hyCount = hi - lo + 1
	x := int64(t.Plan.NumBlocks)
	ol.dbs = (ol.hyCount + x - 1) / x
	if nz, p := singleAxis(t.W); nz {
		ol.axis = p
		ol.perH = t.Array.Size() / t.Array.Dims[p]
		ol.stride = restStrides(t.Array.Dims, p)
	} else {
		ol.buildTable()
	}
	ol.size = ol.computeSize()
	return ol, nil
}

// singleAxis reports whether w has exactly one nonzero component of
// magnitude 1, returning its position.
func singleAxis(w linalg.Vec) (bool, int) {
	pos := -1
	for k, x := range w {
		if x == 0 {
			continue
		}
		if pos >= 0 || (x != 1 && x != -1) {
			return false, -1
		}
		pos = k
	}
	return pos >= 0, pos
}

// restStrides returns row-major strides over all dimensions except skip.
func restStrides(dims []int64, skip int) []int64 {
	s := make([]int64, len(dims))
	acc := int64(1)
	for k := len(dims) - 1; k >= 0; k-- {
		if k == skip {
			s[k] = 0
			continue
		}
		s[k] = acc
		acc *= dims[k]
	}
	return s
}

// hIndex returns w·a - L for element a.
func (l *OptimizedLayout) hIndex(idx linalg.Vec) int64 { return l.T.W.Dot(idx) - l.loV }

// dblockOf returns the data-block index along V of hyperplane index h.
func (l *OptimizedLayout) dblockOf(h int64) int64 { return h / l.dbs }

// threadOf returns the owning thread of data block d (round-robin,
// mirroring the iteration-block assignment).
func (l *OptimizedLayout) threadOf(d int64) int { return int(d % int64(l.T.Plan.Threads)) }

// Offset implements Layout.
func (l *OptimizedLayout) Offset(idx linalg.Vec) int64 {
	if l.table != nil {
		lin := int64(0)
		for k, d := range l.Array.Dims {
			lin = lin*d + idx[k]
		}
		return l.table[lin]
	}
	h := l.hIndex(idx)
	d := l.dblockOf(h)
	t := l.threadOf(d)
	threads := int64(l.T.Plan.Threads)
	// Hyperplanes in the thread's earlier data blocks are all full (only
	// the globally last block can be short, and it is never earlier).
	earlier := d / threads
	e := (earlier*l.dbs+h%l.dbs)*l.perH + l.restRank(idx)
	return l.P.Addr(t, e)
}

// restRank is the row-major rank of idx over all dimensions except the
// partition axis.
func (l *OptimizedLayout) restRank(idx linalg.Vec) int64 {
	var r int64
	for k, s := range l.stride {
		r += idx[k] * s
	}
	return r
}

// buildTable constructs the full offset table for skewed partitioning
// vectors: elements are bucketed by hyperplane value (preserving row-major
// order inside a bucket), then each thread's buckets are concatenated in
// increasing hyperplane order and placed by the pattern.
func (l *OptimizedLayout) buildTable() {
	a := l.Array
	size := a.Size()
	l.table = make([]int64, size)

	counts := make([]int64, l.hyCount)
	idx := make(linalg.Vec, a.Rank())
	forEachIndex(a.Dims, idx, func(lin int64) {
		counts[l.hIndex(idx)]++
	})
	// bucketStart[h] = first slot of hyperplane h in a global ordering by
	// hyperplane value.
	bucketStart := make([]int64, l.hyCount+1)
	for h := int64(0); h < l.hyCount; h++ {
		bucketStart[h+1] = bucketStart[h] + counts[h]
	}
	// byH holds the row-major linear indices ordered by (h, lex).
	byH := make([]int64, size)
	fill := make([]int64, l.hyCount)
	copy(fill, bucketStart[:l.hyCount])
	forEachIndex(a.Dims, idx, func(lin int64) {
		h := l.hIndex(idx)
		byH[fill[h]] = lin
		fill[h]++
	})
	// Walk each thread's data blocks in order, assigning sequence numbers.
	threads := int64(l.T.Plan.Threads)
	nblocks := (l.hyCount + l.dbs - 1) / l.dbs
	for t := int64(0); t < threads; t++ {
		var e int64
		for d := t; d < nblocks; d += threads {
			hLo := d * l.dbs
			hHi := hLo + l.dbs
			if hHi > l.hyCount {
				hHi = l.hyCount
			}
			for s := bucketStart[hLo]; s < bucketStart[hHi]; s++ {
				l.table[byH[s]] = l.P.Addr(int(t), e)
				e++
			}
		}
	}
}

// forEachIndex enumerates the box [0,dims) in row-major order, reusing idx
// and passing the row-major linear index.
func forEachIndex(dims []int64, idx linalg.Vec, f func(lin int64)) {
	var rec func(k int, lin int64)
	rec = func(k int, lin int64) {
		if k == len(dims) {
			f(lin)
			return
		}
		for v := int64(0); v < dims[k]; v++ {
			idx[k] = v
			rec(k+1, lin*dims[k]+v)
		}
	}
	rec(0, 0)
}

// computeSize returns 1 + the maximum file offset the layout can produce.
func (l *OptimizedLayout) computeSize() int64 {
	if l.table != nil {
		max := int64(0)
		for _, off := range l.table {
			if off > max {
				max = off
			}
		}
		return max + 1
	}
	threads := int64(l.T.Plan.Threads)
	nblocks := (l.hyCount + l.dbs - 1) / l.dbs
	max := int64(0)
	for t := int64(0); t < threads && t < nblocks; t++ {
		// Count the hyperplanes thread t owns.
		var hs int64
		for d := t; d < nblocks; d += threads {
			hLo := d * l.dbs
			hHi := hLo + l.dbs
			if hHi > l.hyCount {
				hHi = l.hyCount
			}
			hs += hHi - hLo
		}
		if hs == 0 {
			continue
		}
		if end := l.P.Addr(int(t), hs*l.perH-1) + 1; end > max {
			max = end
		}
	}
	return max
}

// SizeElems implements Layout.
func (l *OptimizedLayout) SizeElems() int64 { return l.size }

// Name implements Layout.
func (l *OptimizedLayout) Name() string { return "inter-node" }
