package layout

import (
	"testing"

	"flopt/internal/lang"
	"flopt/internal/linalg"
	"flopt/internal/parallel"
	"flopt/internal/poly"
)

// parseProg compiles mini-language source and builds plans for all nests.
func parseProg(t testing.TB, src string, threads int) (*poly.Program, map[*poly.LoopNest]*parallel.Plan) {
	t.Helper()
	p, err := lang.Parse("test", src)
	if err != nil {
		t.Fatal(err)
	}
	plans := make(map[*poly.LoopNest]*parallel.Plan)
	for _, n := range p.Nests {
		plan, err := parallel.NewPlan(n, threads, 1)
		if err != nil {
			t.Fatal(err)
		}
		plans[n] = plan
	}
	return p, plans
}

func solve(t testing.TB, src, arr string, threads int) *Transform {
	t.Helper()
	p, plans := parseProg(t, src, threads)
	tr, err := SolveTransform(p, p.Array(arr), plans)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTransformRowAccess(t *testing.T) {
	tr := solve(t, `
array A[64][64];
parallel(i) for i = 0 to 63 { for j = 0 to 63 { read A[i][j]; } }
`, "A", 4)
	if !tr.Optimized() {
		t.Fatal("row access should be optimizable")
	}
	if !tr.W.Equal(linalg.Vec{1, 0}) {
		t.Errorf("w = %v, want (1, 0)", tr.W)
	}
	if !tr.D.IsUnimodular() {
		t.Error("D not unimodular")
	}
}

func TestTransformTransposedAccess(t *testing.T) {
	tr := solve(t, `
array B[64][64];
parallel(i) for i = 0 to 63 { for j = 0 to 63 { read B[j][i]; } }
`, "B", 4)
	if !tr.Optimized() {
		t.Fatal("transposed access should be optimizable")
	}
	if !tr.W.Equal(linalg.Vec{0, 1}) {
		t.Errorf("w = %v, want (0, 1)", tr.W)
	}
}

func TestTransformDiagonalAccess(t *testing.T) {
	tr := solve(t, `
array A[64][64];
parallel(i) for i = 0 to 31 { for j = 0 to 31 { read A[i+j][j]; } }
`, "A", 4)
	if !tr.Optimized() {
		t.Fatal("diagonal access should be optimizable")
	}
	// Constraint: w ⊥ Q·e_j = (1, 1) ⇒ w ∝ (1, -1); α = w·Q·e_i = w·(1,0) = 1 > 0.
	if !tr.W.Equal(linalg.Vec{1, -1}) {
		t.Errorf("w = %v, want (1, -1)", tr.W)
	}
	if !tr.D.IsUnimodular() || !tr.D.Row(0).Equal(tr.W) {
		t.Errorf("D = %v does not carry w in row 0", tr.D)
	}
}

func TestTransformUnoptimizableFullRank(t *testing.T) {
	// Y[k][j] in an (i,j,k) nest parallel on i: both free iterators map
	// onto the array, leaving no nonzero w.
	tr := solve(t, `
array Y[64][64];
parallel(i) for i = 0 to 63 { for j = 0 to 63 { for k = 0 to 63 { read Y[k][j]; } } }
`, "Y", 4)
	if tr.Optimized() {
		t.Fatalf("Y should not be optimizable, got %v", tr)
	}
	if tr.SatisfiedWeight != 0 || tr.TotalWeight == 0 {
		t.Errorf("weights = %d/%d", tr.SatisfiedWeight, tr.TotalWeight)
	}
}

func TestTransformMatmul(t *testing.T) {
	src := `
array W[64][64];
array X[64][64];
array Y[64][64];
parallel(i) for i = 0 to 63 { for j = 0 to 63 { for k = 0 to 63 {
    write W[i][j]; read X[i][k]; read Y[k][j];
} } }
`
	for name, wantOpt := range map[string]bool{"W": true, "X": true, "Y": false} {
		tr := solve(t, src, name, 4)
		if tr.Optimized() != wantOpt {
			t.Errorf("%s optimized = %v, want %v", name, tr.Optimized(), wantOpt)
		}
		if wantOpt && !tr.W.Equal(linalg.Vec{1, 0}) {
			t.Errorf("%s: w = %v, want (1, 0)", name, tr.W)
		}
	}
}

func TestTransformWeightedConflict(t *testing.T) {
	// Two conflicting access patterns to A; the 64×64 nest outweighs the
	// 8×8 nest, so the row-style partition must win.
	src := `
array A[64][64];
parallel(i) for i = 0 to 63 { for j = 0 to 63 { read A[i][j]; } }
parallel(i) for i = 0 to 7 { for j = 0 to 7 { read A[j][i]; } }
`
	tr := solve(t, src, "A", 4)
	if !tr.Optimized() {
		t.Fatal("should be optimizable")
	}
	if !tr.W.Equal(linalg.Vec{1, 0}) {
		t.Errorf("w = %v, want (1, 0) (heavier group wins)", tr.W)
	}
	if len(tr.Satisfied) != 1 {
		t.Errorf("satisfied groups = %d, want 1", len(tr.Satisfied))
	}
	if tr.SatisfiedWeight >= tr.TotalWeight {
		t.Error("conflicting group should remain unsatisfied")
	}
}

func TestTransformCompatibleGroups(t *testing.T) {
	// A[i][j] and A[i][j+1] share Q (one group); A[i][2*j] has a different
	// Q but a compatible constraint ⇒ both groups satisfiable by w = (1, 0).
	src := `
array A[64][64];
parallel(i) for i = 0 to 31 { for j = 0 to 31 {
    read A[i][j]; write A[i][j+1]; read A[i][2*j];
} }
`
	tr := solve(t, src, "A", 4)
	if !tr.Optimized() {
		t.Fatal("should be optimizable")
	}
	if tr.SatisfiedWeight != tr.TotalWeight {
		t.Errorf("all groups should be satisfied: %d/%d", tr.SatisfiedWeight, tr.TotalWeight)
	}
	if len(tr.Satisfied) != 2 {
		t.Errorf("groups = %d, want 2", len(tr.Satisfied))
	}
}

func TestTransformSignNormalization(t *testing.T) {
	// A[-i+63][j]: α for w=(1,0) would be -1, so w must flip to keep
	// data-block order aligned with iteration-block order.
	tr := solve(t, `
array A[64][64];
parallel(i) for i = 0 to 63 { for j = 0 to 63 { read A[-i+63][j]; } }
`, "A", 4)
	if !tr.Optimized() {
		t.Fatal("should be optimizable")
	}
	q := tr.Satisfied[0].Refs[0].Ref.Q
	if tr.W.Dot(q.Col(0)) <= 0 {
		t.Errorf("α = %d, want > 0 after normalization", tr.W.Dot(q.Col(0)))
	}
}

func TestTransform1D(t *testing.T) {
	tr := solve(t, `
array A[256];
parallel(i) for i = 0 to 255 { read A[i]; }
`, "A", 4)
	if !tr.Optimized() || !tr.W.Equal(linalg.Vec{1}) {
		t.Fatalf("1-D parallel access should partition trivially: %v", tr)
	}

	// A 1-D array indexed only by a non-parallel iterator cannot be
	// partitioned.
	tr = solve(t, `
array A[64];
parallel(i) for i = 0 to 63 { for j = 0 to 63 { read A[j]; } }
`, "A", 4)
	if tr.Optimized() {
		t.Errorf("A[j] under parallel(i) should not be optimizable: %v", tr)
	}
}

func TestTransformUnreferencedArray(t *testing.T) {
	src := `
array A[16];
array Ghost[16];
for i = 0 to 15 { read A[i]; }
`
	tr := solve(t, src, "Ghost", 2)
	if tr.Optimized() {
		t.Error("unreferenced array should keep default layout")
	}
}

func TestTransformedRef(t *testing.T) {
	p, _ := parseProg(t, `
array A[8][8];
parallel(i) for i = 0 to 7 { for j = 0 to 7 { read A[j][i]; } }
`, 2)
	d := linalg.MatFromRows([][]int64{{0, 1}, {1, 0}})
	r2 := TransformedRef(p.Nests[0].Refs[0], d)
	want := linalg.MatFromRows([][]int64{{1, 0}, {0, 1}})
	if !r2.Q.Equal(want) {
		t.Errorf("Q' = %v, want %v", r2.Q, want)
	}
	if !r2.Offset.Equal(linalg.Vec{0, 0}) {
		t.Errorf("offset' = %v", r2.Offset)
	}
}

func TestTransformString(t *testing.T) {
	tr := solve(t, `
array A[16][16];
parallel(i) for i = 0 to 15 { for j = 0 to 15 { read A[i][j]; } }
`, "A", 2)
	if s := tr.String(); s == "" {
		t.Error("empty description")
	}
	tr = solve(t, `
array Y[16][16];
parallel(i) for i = 0 to 15 { for j = 0 to 15 { for k = 0 to 15 { read Y[k][j]; } } }
`, "Y", 2)
	if s := tr.String(); s == "" {
		t.Error("empty description for unoptimized transform")
	}
}
