package layout

import (
	"fmt"

	"flopt/internal/linalg"
)

// This file implements the two extensions the paper sketches in its
// Discussion (§4.3):
//
//  1. Layout transformers. The optimized file layout is private to one
//     compiled binary; to interoperate with other applications the input
//     arrays can be converted from a canonical layout at program start and
//     the outputs converted back at program end. RemapPlan computes that
//     conversion and its estimated I/O cost.
//
//  2. Template hierarchies. Step I is independent of cache capacities, so
//     a program can be compiled once per hierarchy *shape* (the fanout
//     vector) and instantiated cheaply for any concrete capacities.
//     Template captures exactly the capacity-independent part.

// RemapPlan describes the one-time conversion of an array between two
// layouts (e.g. canonical row-major on disk ↔ the optimized inter-node
// layout), as performed by the import/export passes of §4.3.
type RemapPlan struct {
	Array string
	From  Layout
	To    Layout
	// Moves is the number of elements to move (the array size).
	Moves int64
	// SrcBlocks and DstBlocks are the distinct source blocks read and
	// destination blocks written at the given block granularity — the
	// I/O cost of the conversion pass.
	SrcBlocks, DstBlocks int64
}

// NewRemapPlan analyzes the conversion of array a from one layout to
// another with the given block size. Both layouts must belong to the same
// array.
func NewRemapPlan(from, to Layout, dims []int64, name string, blockElems int64) (*RemapPlan, error) {
	if blockElems < 1 {
		return nil, fmt.Errorf("layout: block size must be ≥ 1")
	}
	plan := &RemapPlan{Array: name, From: from, To: to}
	srcSeen := map[int64]struct{}{}
	dstSeen := map[int64]struct{}{}
	idx := make(linalg.Vec, len(dims))
	forEachIndex(dims, idx, func(lin int64) {
		plan.Moves++
		srcSeen[from.Offset(idx)/blockElems] = struct{}{}
		dstSeen[to.Offset(idx)/blockElems] = struct{}{}
	})
	plan.SrcBlocks = int64(len(srcSeen))
	plan.DstBlocks = int64(len(dstSeen))
	return plan, nil
}

// Apply converts an element-indexed buffer from the source to the
// destination layout: dst[to.Offset(i)] = src[from.Offset(i)] for every
// index i. src must have at least From.SizeElems() entries; the returned
// slice has To.SizeElems() entries (holes keep the zero value).
func (rp *RemapPlan) Apply(src []float64, dims []int64) ([]float64, error) {
	if int64(len(src)) < rp.From.SizeElems() {
		return nil, fmt.Errorf("layout: source buffer has %d elements, layout needs %d",
			len(src), rp.From.SizeElems())
	}
	dst := make([]float64, rp.To.SizeElems())
	idx := make(linalg.Vec, len(dims))
	forEachIndex(dims, idx, func(lin int64) {
		dst[rp.To.Offset(idx)] = src[rp.From.Offset(idx)]
	})
	return dst, nil
}

// Template is the capacity-independent result of Step I for a whole
// program, specialized to one hierarchy shape (the fanout vector). All
// hierarchies with the same fanouts share the template (§4.3: "a single
// compilation for all architectures that belong to the same template");
// Instantiate builds the concrete layouts for given capacities without
// re-running the transform solver.
type Template struct {
	program *programShape
	// Fanouts is the hierarchy shape this template was compiled for.
	Fanouts []int
	// Transforms are the Step I results, keyed by array name.
	Transforms map[string]*Transform
	blockElems int64
	opts       Options
}

// programShape retains what Instantiate needs from the program.
type programShape struct {
	arrays []*arrayShape
}

type arrayShape struct {
	name string
	size int64
}

// NewTemplate compiles the program once for a hierarchy shape. The
// capacities in opts.Hierarchy are used only to seed Step I's plans (which
// depend on thread counts, not capacities), so any concrete member of the
// template family works as the seed.
func NewTemplate(res *Result, opts Options) *Template {
	t := &Template{
		Transforms: res.Transforms,
		blockElems: opts.BlockElems,
		opts:       opts,
		program:    &programShape{},
	}
	for _, l := range opts.Hierarchy.Levels {
		t.Fanouts = append(t.Fanouts, l.Fanout)
	}
	for _, a := range res.Program.Arrays {
		t.program.arrays = append(t.program.arrays, &arrayShape{name: a.Name, size: a.Size()})
	}
	return t
}

// Matches reports whether a concrete hierarchy belongs to this template's
// family (same level count and fanouts).
func (t *Template) Matches(h Hierarchy) bool {
	if len(h.Levels) != len(t.Fanouts) {
		return false
	}
	for i, l := range h.Levels {
		if l.Fanout != t.Fanouts[i] {
			return false
		}
	}
	return true
}

// Instantiate builds the concrete layouts for a hierarchy of the
// template's shape, reusing the Step I transforms and re-deriving only the
// (cheap) Step II patterns. It fails if the hierarchy has a different
// shape.
func (t *Template) Instantiate(h Hierarchy) (map[string]Layout, error) {
	if !t.Matches(h) {
		return nil, fmt.Errorf("layout: hierarchy shape %v does not match template %v", h, t.Fanouts)
	}
	threads := h.Threads()
	platform, err := NewPattern(h, t.blockElems)
	if err != nil {
		return nil, err
	}
	out := make(map[string]Layout, len(t.program.arrays))
	for _, a := range t.program.arrays {
		tr := t.Transforms[a.name]
		if tr == nil || !tr.Optimized() {
			// Reconstruct the default layout from the transform record.
			if tr != nil {
				out[a.name] = RowMajor(tr.Array)
			}
			continue
		}
		perThread := (a.size + int64(threads) - 1) / int64(threads)
		chunk := chunkCapFor(perThread, platform.ChunkElems, t.blockElems)
		maxChunks := (perThread + chunk - 1) / chunk
		apat, err := NewPatternFor(h, t.blockElems, chunk, maxChunks)
		if err != nil {
			return nil, err
		}
		ol, err := NewOptimizedLayout(tr, apat)
		if err != nil {
			return nil, err
		}
		out[a.name] = ol
	}
	return out, nil
}
