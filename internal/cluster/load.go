package cluster

import (
	"sort"
	"sync"
	"time"
)

// Load is one node's gossiped load snapshot: the simulate queue depth,
// jobs currently running, the job-latency EWMA in microseconds, and the
// number of resident compiled layouts. UpdatedAt stamps when the
// snapshot was taken locally (self) or fetched (peer) so placement can
// discount stale entries.
type Load struct {
	QueueDepth int
	Running    int
	JobEWMAUS  float64
	Layouts    int
	UpdatedAt  time.Time
}

// Backlog is the placement signal: work accepted but not finished.
func (l Load) Backlog() int { return l.QueueDepth + l.Running }

// Table is a thread-safe map of node ID → last-known Load, fed by the
// gossip loop and read by job placement and /v1/cluster/status.
type Table struct {
	mu    sync.Mutex
	loads map[string]Load
}

func NewTable() *Table { return &Table{loads: map[string]Load{}} }

// Update records a fresh snapshot for id.
func (t *Table) Update(id string, l Load) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.loads[id] = l
}

// Forget drops id's entry (peer marked down — its last load no longer
// describes anything reachable).
func (t *Table) Forget(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.loads, id)
}

// Get returns the last snapshot for id, if any.
func (t *Table) Get(id string) (Load, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.loads[id]
	return l, ok
}

// Snapshot copies the whole table.
func (t *Table) Snapshot() map[string]Load {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]Load, len(t.loads))
	for id, l := range t.loads {
		out[id] = l
	}
	return out
}

// LeastLoaded picks the node with the smallest backlog from loads.
// Ties break toward self — an idle cluster never forwards, which gives
// placement hysteresis for free — then to the lexicographically
// smallest ID so every node resolves the same tie the same way. Nodes
// absent from loads are not candidates; if loads is empty (or self is
// the only entry), self wins.
func LeastLoaded(self string, loads map[string]Load) string {
	ids := make([]string, 0, len(loads))
	for id := range loads {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	best, bestBacklog := self, int(^uint(0)>>1)
	if l, ok := loads[self]; ok {
		bestBacklog = l.Backlog()
	}
	for _, id := range ids {
		if id == self {
			continue
		}
		if b := loads[id].Backlog(); b < bestBacklog {
			best, bestBacklog = id, b
		}
	}
	return best
}
