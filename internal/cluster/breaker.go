package cluster

import (
	"sync"
	"time"
)

// Breaker is a per-peer consecutive-failure circuit breaker: after
// threshold transport-level failures in a row the peer is considered
// down and Allow returns false until cooldown elapses, at which point
// one probe is let through (half-open). A success anywhere resets the
// count. Only transport/5xx outcomes should be recorded as failures —
// a peer answering 400 or 404 is healthy, just unhelpful.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	failures  int
	openedAt  time.Time
	open      bool
	now       func() time.Time // injectable clock for tests
}

// NewBreaker builds a breaker; threshold ≤ 0 defaults to 3 and
// cooldown ≤ 0 to 5 s.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a call to the peer may proceed. While open,
// only the first caller after cooldown gets through (the probe); the
// breaker stays open until that probe's Record(true).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.now().Sub(b.openedAt) >= b.cooldown {
		// Half-open: admit one probe and push the next window out so a
		// failing probe doesn't unleash a thundering herd.
		b.openedAt = b.now()
		return true
	}
	return false
}

// Record feeds a call outcome. ok=true closes the breaker and clears
// the failure count; ok=false increments it and opens at threshold.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.failures = 0
		b.open = false
		return
	}
	b.failures++
	if b.failures >= b.threshold {
		b.open = true
		b.openedAt = b.now()
	}
}

// Open reports whether the breaker is currently open (for /v1/cluster
// status and the per-peer up gauge).
func (b *Breaker) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}
