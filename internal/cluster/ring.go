// Package cluster provides the static-membership primitives floptd's
// cluster mode is built from: a roster of named nodes, a consistent-hash
// ring with replicated virtual nodes mapping layout IDs to owners, a
// gossiped per-node load table, and a per-peer consecutive-failure
// circuit breaker. Everything is stdlib-only and deterministic — the
// ring's ownership function depends only on the roster, so every node
// computes the same owner for every key without coordination.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"net/url"
	"sort"
	"strings"
)

// Node is one roster entry: a stable ID and the base URL peers reach it
// at.
type Node struct {
	ID  string
	URL string
}

// ParseRoster parses a static membership spec of comma-separated id=url
// pairs ("a=http://10.0.0.1:8080,b=http://10.0.0.2:8080"). IDs must be
// unique and free of the characters the job-ID scheme reserves ('-',
// '=', ',', whitespace); URLs must be absolute http(s). The returned
// roster preserves spec order.
func ParseRoster(spec string) ([]Node, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("cluster: empty roster")
	}
	seen := map[string]bool{}
	var nodes []Node
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, rawURL, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("cluster: roster entry %q is not id=url", part)
		}
		id = strings.TrimSpace(id)
		if id == "" || strings.ContainsAny(id, "-=, \t") {
			return nil, fmt.Errorf("cluster: invalid node ID %q (need non-empty, no '-', '=', ',' or whitespace)", id)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", id)
		}
		seen[id] = true
		u, err := url.Parse(strings.TrimSpace(rawURL))
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("cluster: node %q has invalid URL %q (need absolute http(s))", id, rawURL)
		}
		nodes = append(nodes, Node{ID: id, URL: strings.TrimRight(u.String(), "/")})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: empty roster")
	}
	return nodes, nil
}

// DefaultVNodes is the virtual-node replication factor: enough points
// that a three-node roster's shares land within a few percent of 1/3,
// cheap enough that ring construction stays microseconds.
const DefaultVNodes = 64

// Ring is a consistent-hash ring over node IDs. Each node contributes
// vnodes points hashed from "id#k"; a key is owned by the node whose
// point is the first at or clockwise after the key's hash. Ownership is
// a pure function of the sorted roster and vnodes, so all cluster
// members agree without talking to each other, and adding or removing a
// node moves only the keys adjacent to its points (~1/n of the space).
type Ring struct {
	points []ringPoint // sorted by hash
	ids    []string    // sorted roster
	vnodes int
}

type ringPoint struct {
	hash uint64
	node string
}

// hash64 maps a string to a point on the ring: the first 8 bytes of its
// SHA-256, the same stable primitive the content-addressed layout IDs
// use — no seed, no process-dependent state.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds the ring for the given node IDs. vnodes ≤ 0 selects
// DefaultVNodes. An empty ID set is allowed (Owner then returns "").
func NewRing(ids []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{ids: append([]string(nil), ids...), vnodes: vnodes}
	sort.Strings(r.ids)
	r.points = make([]ringPoint, 0, len(r.ids)*vnodes)
	for _, id := range r.ids {
		for k := 0; k < vnodes; k++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", id, k)), node: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node // full determinism on (vanishingly rare) hash ties
	})
	return r
}

// Owner returns the node owning key, or "" for an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.points[i].node
}

// Share returns the fraction of the 64-bit hash space id owns — the arc
// length preceding each of its points. Shares over the roster sum to 1.
func (r *Ring) Share(id string) float64 {
	if len(r.points) == 0 {
		return 0
	}
	// Accumulate in float64: a single-node ring owns the entire 2^64
	// space, which a uint64 sum would wrap to zero.
	var owned float64
	prev := r.points[len(r.points)-1].hash // arc wraps from the last point
	wrap := float64(^uint64(0)-prev) + float64(r.points[0].hash) + 1
	for i, pt := range r.points {
		var arc float64
		if i == 0 {
			arc = wrap
		} else {
			arc = float64(pt.hash - prev)
		}
		if pt.node == id {
			owned += arc
		}
		prev = pt.hash
	}
	return owned / math.Exp2(64)
}

// Nodes returns the sorted roster IDs the ring was built over.
func (r *Ring) Nodes() []string { return append([]string(nil), r.ids...) }
