package cluster

import (
	"fmt"
	"math"
	"testing"
	"time"
)

func TestParseRoster(t *testing.T) {
	nodes, err := ParseRoster("a=http://10.0.0.1:8080, b=http://10.0.0.2:8080 ,c=https://h3/")
	if err != nil {
		t.Fatalf("ParseRoster: %v", err)
	}
	want := []Node{
		{ID: "a", URL: "http://10.0.0.1:8080"},
		{ID: "b", URL: "http://10.0.0.2:8080"},
		{ID: "c", URL: "https://h3"},
	}
	if len(nodes) != len(want) {
		t.Fatalf("got %d nodes, want %d", len(nodes), len(want))
	}
	for i, n := range nodes {
		if n != want[i] {
			t.Errorf("node %d = %+v, want %+v", i, n, want[i])
		}
	}

	bad := []string{
		"",
		"a=http://x,a=http://y", // duplicate ID
		"a http://x",            // no '='
		"no-dash=http://x",      // '-' reserved by job IDs
		"a=ftp://x",             // non-http scheme
		"a=http://",             // no host
		"=http://x",             // empty ID
	}
	for _, spec := range bad {
		if _, err := ParseRoster(spec); err == nil {
			t.Errorf("ParseRoster(%q) accepted, want error", spec)
		}
	}
}

// TestRingGoldenOwnership pins the ring's ownership function for a
// fixed three-node roster at the default vnode count. The assignments
// below were captured from the implementation and must never drift:
// every cluster member routes by this table, so a change here is a
// routing-compatibility break, not a refactor.
func TestRingGoldenOwnership(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, DefaultVNodes)
	golden := map[string]string{
		"ly0000000000000000": "c",
		"ly1111111111111111": "b",
		"ly2222222222222222": "c",
		"ly3333333333333333": "a",
		"ly4444444444444444": "a",
		"ly5555555555555555": "a",
		"ly6666666666666666": "a",
		"ly7777777777777777": "b",
		"ly8888888888888888": "c",
		"ly9999999999999999": "c",
		"lyaaaaaaaaaaaaaaaa": "b",
		"lybbbbbbbbbbbbbbbb": "c",
		"lycccccccccccccccc": "a",
		"lydddddddddddddddd": "c",
		"lyeeeeeeeeeeeeeeee": "a",
		"lyffffffffffffffff": "c",
	}
	for key, want := range golden {
		if got := r.Owner(key); got != want {
			t.Errorf("Owner(%q) = %q, want %q", key, got, want)
		}
	}
}

func TestRingDeterministicAcrossConstruction(t *testing.T) {
	// Roster order must not matter: every permutation yields the same
	// ownership function.
	r1 := NewRing([]string{"a", "b", "c"}, 16)
	r2 := NewRing([]string{"c", "a", "b"}, 16)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("ly%016x", i*2654435761)
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("owner of %q differs across roster orderings", key)
		}
	}
}

func TestRingSharesBalancedAndSumToOne(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, DefaultVNodes)
	var sum float64
	for _, id := range r.Nodes() {
		s := r.Share(id)
		sum += s
		// With 64 vnodes each share should be within ~0.15 of 1/3.
		if math.Abs(s-1.0/3.0) > 0.15 {
			t.Errorf("Share(%q) = %.3f, want within 0.15 of 1/3", id, s)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %.9f, want 1", sum)
	}
}

func TestRingSingleNodeOwnsEverything(t *testing.T) {
	r := NewRing([]string{"solo"}, 8)
	for i := 0; i < 50; i++ {
		if got := r.Owner(fmt.Sprintf("key%d", i)); got != "solo" {
			t.Fatalf("Owner = %q, want solo", got)
		}
	}
	if s := r.Share("solo"); math.Abs(s-1) > 1e-9 {
		t.Errorf("Share(solo) = %v, want 1", s)
	}
	if empty := NewRing(nil, 8); empty.Owner("x") != "" {
		t.Errorf("empty ring Owner = %q, want \"\"", empty.Owner("x"))
	}
}

func TestRingRemovalMovesOnlyVictimKeys(t *testing.T) {
	// Consistent hashing's contract: dropping a node must not reassign
	// keys between the survivors.
	full := NewRing([]string{"a", "b", "c"}, DefaultVNodes)
	reduced := NewRing([]string{"a", "b"}, DefaultVNodes)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("ly%016x", i*7919)
		before := full.Owner(key)
		after := reduced.Owner(key)
		if before != "c" && after != before {
			t.Fatalf("key %q moved %s→%s though its owner survived", key, before, after)
		}
	}
}

func TestLeastLoaded(t *testing.T) {
	loads := map[string]Load{
		"a": {QueueDepth: 3, Running: 1},
		"b": {QueueDepth: 0, Running: 1},
		"c": {QueueDepth: 2, Running: 0},
	}
	if got := LeastLoaded("a", loads); got != "b" {
		t.Errorf("LeastLoaded = %q, want b", got)
	}
	// Tie between self and a peer → self (no pointless forwarding).
	loads["a"] = Load{QueueDepth: 1, Running: 0}
	if got := LeastLoaded("a", loads); got != "a" {
		t.Errorf("tie with self: LeastLoaded = %q, want a", got)
	}
	// Tie between two peers → lexicographically smallest, on every node.
	loads = map[string]Load{
		"a": {QueueDepth: 9},
		"b": {QueueDepth: 1},
		"c": {QueueDepth: 1},
	}
	if got := LeastLoaded("a", loads); got != "b" {
		t.Errorf("peer tie: LeastLoaded = %q, want b", got)
	}
	// Empty table → self.
	if got := LeastLoaded("a", nil); got != "a" {
		t.Errorf("empty table: LeastLoaded = %q, want a", got)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable()
	tb.Update("a", Load{QueueDepth: 2, UpdatedAt: time.Unix(100, 0)})
	if l, ok := tb.Get("a"); !ok || l.QueueDepth != 2 {
		t.Fatalf("Get(a) = %+v, %v", l, ok)
	}
	tb.Update("b", Load{Running: 1})
	snap := tb.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot has %d entries, want 2", len(snap))
	}
	tb.Forget("a")
	if _, ok := tb.Get("a"); ok {
		t.Error("Get(a) after Forget still present")
	}
}

func TestBreaker(t *testing.T) {
	clock := time.Unix(1000, 0)
	b := NewBreaker(3, 5*time.Second)
	b.now = func() time.Time { return clock }

	for i := 0; i < 2; i++ {
		b.Record(false)
	}
	if !b.Allow() || b.Open() {
		t.Fatal("breaker opened before threshold")
	}
	b.Record(false) // third consecutive failure
	if b.Allow() || !b.Open() {
		t.Fatal("breaker not open at threshold")
	}

	clock = clock.Add(4 * time.Second)
	if b.Allow() {
		t.Fatal("breaker admitted a call before cooldown")
	}
	clock = clock.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe")
	}
	if b.Allow() {
		t.Fatal("breaker admitted a second call during half-open")
	}
	b.Record(true)
	if !b.Allow() || b.Open() {
		t.Fatal("breaker not closed after successful probe")
	}

	// Success resets the consecutive count: two failures, a success,
	// then two more failures must not open.
	b.Record(false)
	b.Record(false)
	b.Record(true)
	b.Record(false)
	b.Record(false)
	if b.Open() {
		t.Fatal("breaker opened though failures were not consecutive")
	}
}
