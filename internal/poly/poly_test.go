package poly

import (
	"testing"

	"flopt/internal/linalg"
)

// matmulProgram builds the paper's Fig. 3 example: W[i,j] += X[i,k]*Y[k,j]
// over an n×n×n nest parallelized on loop i.
func matmulProgram(n int64) *Program {
	w := &Array{Name: "W", Dims: []int64{n, n}}
	x := &Array{Name: "X", Dims: []int64{n, n}}
	y := &Array{Name: "Y", Dims: []int64{n, n}}
	nest := &LoopNest{
		Loops: []Loop{
			{Name: "i", Lower: Constant(0), Upper: Constant(n - 1)},
			{Name: "j", Lower: Constant(0), Upper: Constant(n - 1)},
			{Name: "k", Lower: Constant(0), Upper: Constant(n - 1)},
		},
		ParallelLoop: 0,
	}
	nest.Refs = []*Reference{
		{Array: w, Q: linalg.MatFromRows([][]int64{{1, 0, 0}, {0, 1, 0}}), Offset: linalg.Vec{0, 0}, Write: true},
		{Array: x, Q: linalg.MatFromRows([][]int64{{1, 0, 0}, {0, 0, 1}}), Offset: linalg.Vec{0, 0}},
		{Array: y, Q: linalg.MatFromRows([][]int64{{0, 0, 1}, {0, 1, 0}}), Offset: linalg.Vec{0, 0}},
	}
	return &Program{Name: "matmul", Arrays: []*Array{w, x, y}, Nests: []*LoopNest{nest}}
}

func TestAffineEval(t *testing.T) {
	a := Affine{Coeffs: linalg.Vec{2, -1}, Const: 3}
	if got := a.Eval(linalg.Vec{5, 4}); got != 9 {
		t.Errorf("Eval = %d, want 9", got)
	}
	if got := a.Eval(linalg.Vec{5, 4, 100}); got != 9 {
		t.Errorf("Eval with extra iterators = %d, want 9", got)
	}
	if !Constant(7).IsConstant() || a.IsConstant() {
		t.Error("IsConstant wrong")
	}
}

func TestAffineString(t *testing.T) {
	cases := []struct {
		a    Affine
		want string
	}{
		{Constant(0), "0"},
		{Constant(-3), "-3"},
		{Affine{Coeffs: linalg.Vec{1}, Const: 0}, "i1"},
		{Affine{Coeffs: linalg.Vec{0, -1}, Const: 2}, "-i2+2"},
		{Affine{Coeffs: linalg.Vec{3}, Const: 0}, "3*i1"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.a, got, c.want)
		}
	}
}

func TestArrayBasics(t *testing.T) {
	a := &Array{Name: "A", Dims: []int64{4, 6}}
	if a.Rank() != 2 || a.Size() != 24 {
		t.Errorf("rank/size = %d/%d", a.Rank(), a.Size())
	}
	if !a.Contains(linalg.Vec{3, 5}) || a.Contains(linalg.Vec{4, 0}) || a.Contains(linalg.Vec{0, -1}) {
		t.Error("Contains wrong")
	}
	if a.Contains(linalg.Vec{1}) {
		t.Error("Contains accepted wrong rank")
	}
	if a.String() != "A[4][6]" {
		t.Errorf("String = %q", a.String())
	}
}

func TestReferenceEval(t *testing.T) {
	p := matmulProgram(8)
	nest := p.Nests[0]
	iv := linalg.Vec{2, 3, 5}
	if got := nest.Refs[0].Eval(iv); !got.Equal(linalg.Vec{2, 3}) {
		t.Errorf("W ref eval = %v, want (2, 3)", got)
	}
	if got := nest.Refs[1].Eval(iv); !got.Equal(linalg.Vec{2, 5}) {
		t.Errorf("X ref eval = %v, want (2, 5)", got)
	}
	if got := nest.Refs[2].Eval(iv); !got.Equal(linalg.Vec{5, 3}) {
		t.Errorf("Y ref eval = %v, want (5, 3)", got)
	}
}

func TestReferenceString(t *testing.T) {
	p := matmulProgram(8)
	if got := p.Nests[0].Refs[1].String(); got != "X[i1][i3]" {
		t.Errorf("String = %q, want X[i1][i3]", got)
	}
}

func TestTripCountRectangular(t *testing.T) {
	p := matmulProgram(10)
	if got := p.Nests[0].TripCount(); got != 1000 {
		t.Errorf("trip count = %d, want 1000", got)
	}
}

func TestTripCountTriangular(t *testing.T) {
	// for i = 0..9 { for j = i..9 } has 55 iterations; midpoint estimate
	// uses i=4 ⇒ 10·6 = 60, close to exact.
	nest := &LoopNest{
		Loops: []Loop{
			{Name: "i", Lower: Constant(0), Upper: Constant(9)},
			{Name: "j", Lower: Affine{Coeffs: linalg.Vec{1}}, Upper: Constant(9)},
		},
	}
	if got := nest.TripCount(); got != 60 {
		t.Errorf("triangular trip estimate = %d, want 60", got)
	}
	count := 0
	nest.ForEach(func(iv linalg.Vec) { count++ })
	if count != 55 {
		t.Errorf("exact enumeration = %d, want 55", count)
	}
}

func TestForEachOrderAndBounds(t *testing.T) {
	nest := &LoopNest{
		Loops: []Loop{
			{Name: "i", Lower: Constant(0), Upper: Constant(1)},
			{Name: "j", Lower: Constant(2), Upper: Constant(3)},
		},
	}
	var seen []linalg.Vec
	nest.ForEach(func(iv linalg.Vec) { seen = append(seen, iv.Clone()) })
	want := []linalg.Vec{{0, 2}, {0, 3}, {1, 2}, {1, 3}}
	if len(seen) != len(want) {
		t.Fatalf("got %d points, want %d", len(seen), len(want))
	}
	for i := range want {
		if !seen[i].Equal(want[i]) {
			t.Errorf("point %d = %v, want %v", i, seen[i], want[i])
		}
	}
	if lo, hi := nest.Bounds(1, linalg.Vec{0}); lo != 2 || hi != 3 {
		t.Errorf("Bounds = (%d, %d), want (2, 3)", lo, hi)
	}
}

func TestForEachStep(t *testing.T) {
	nest := &LoopNest{
		Loops: []Loop{{Name: "i", Lower: Constant(0), Upper: Constant(9), Step: 3}},
	}
	var vals []int64
	nest.ForEach(func(iv linalg.Vec) { vals = append(vals, iv[0]) })
	want := []int64{0, 3, 6, 9}
	if len(vals) != len(want) {
		t.Fatalf("got %v, want %v", vals, want)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("got %v, want %v", vals, want)
		}
	}
}

func TestProgramLookupAndRefs(t *testing.T) {
	p := matmulProgram(8)
	if p.Array("X") == nil || p.Array("Z") != nil {
		t.Error("Array lookup wrong")
	}
	refs := p.RefsTo(p.Array("W"))
	if len(refs) != 1 || !refs[0].Ref.Write {
		t.Errorf("RefsTo(W) = %v", refs)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	p := matmulProgram(8)
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}

	bad := matmulProgram(8)
	bad.Nests[0].ParallelLoop = 9
	if bad.Validate() == nil {
		t.Error("out-of-range parallel loop accepted")
	}

	bad = matmulProgram(8)
	bad.Nests[0].Refs[0].Q = linalg.NewMat(2, 2) // wrong column count
	if bad.Validate() == nil {
		t.Error("mis-shaped access matrix accepted")
	}

	bad = matmulProgram(8)
	bad.Nests[0].Refs[0].Offset = linalg.Vec{0}
	if bad.Validate() == nil {
		t.Error("mis-sized offset accepted")
	}

	bad = matmulProgram(8)
	bad.Nests[0].Loops[0].Lower = Affine{Coeffs: linalg.Vec{1}} // self-dependent bound
	if bad.Validate() == nil {
		t.Error("forward-dependent bound accepted")
	}
}

func TestHyperplane(t *testing.T) {
	h := Hyperplane{Normal: linalg.Vec{1, -1}, C: 0}
	if !h.Contains(linalg.Vec{3, 3}) || h.Contains(linalg.Vec{3, 4}) {
		t.Error("Contains wrong")
	}
	if got := UnitNormal(4, 2); !got.Equal(linalg.Vec{0, 0, 1, 0}) {
		t.Errorf("UnitNormal = %v", got)
	}
}

func TestDeleteRow(t *testing.T) {
	e := DeleteRow(3, 1)
	want := linalg.MatFromRows([][]int64{{1, 0, 0}, {0, 0, 1}})
	if !e.Equal(want) {
		t.Errorf("DeleteRow = %v, want %v", e, want)
	}
	// Every row must satisfy h_I·row = 0 for h_I = e_u.
	h := UnitNormal(3, 1)
	for i := 0; i < e.R; i++ {
		if h.Dot(e.Row(i)) != 0 {
			t.Errorf("row %d not orthogonal to h_I", i)
		}
	}
}

func TestAccessGroups(t *testing.T) {
	p := matmulProgram(10)
	// Add a second nest reusing X with the same Q but only 100 iterations,
	// plus a transposed X access in that nest.
	x := p.Array("X")
	nest2 := &LoopNest{
		Loops: []Loop{
			{Name: "i", Lower: Constant(0), Upper: Constant(9)},
			{Name: "j", Lower: Constant(0), Upper: Constant(9)},
		},
		ParallelLoop: 0,
		Refs: []*Reference{
			{Array: x, Q: linalg.MatFromRows([][]int64{{1, 0}, {0, 1}}), Offset: linalg.Vec{0, 0}},
			{Array: x, Q: linalg.MatFromRows([][]int64{{0, 1}, {1, 0}}), Offset: linalg.Vec{0, 0}},
		},
	}
	p.Nests = append(p.Nests, nest2)

	groups := AccessGroups(p, x)
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(groups))
	}
	// The 3-deep nest access dominates with weight 1000.
	if groups[0].Weight != 1000 {
		t.Errorf("top group weight = %d, want 1000", groups[0].Weight)
	}
	if groups[1].Weight != 100 || groups[2].Weight != 100 {
		t.Errorf("tail group weights = %d, %d, want 100, 100", groups[1].Weight, groups[2].Weight)
	}
}

func TestAccessGroupsMergesEqualQ(t *testing.T) {
	p := matmulProgram(10)
	nest := p.Nests[0]
	x := p.Array("X")
	// Duplicate the X reference (same Q, different offset): same group.
	nest.Refs = append(nest.Refs, &Reference{
		Array:  x,
		Q:      linalg.MatFromRows([][]int64{{1, 0, 0}, {0, 0, 1}}),
		Offset: linalg.Vec{0, 1},
	})
	groups := AccessGroups(p, x)
	if len(groups) != 1 {
		t.Fatalf("got %d groups, want 1", len(groups))
	}
	if groups[0].Weight != 2000 {
		t.Errorf("weight = %d, want 2000", groups[0].Weight)
	}
	if len(groups[0].Refs) != 2 {
		t.Errorf("refs in group = %d, want 2", len(groups[0].Refs))
	}
}

func TestEvalIntoMatchesEval(t *testing.T) {
	p := matmulProgram(8)
	nest := p.Nests[0]
	dst := make(linalg.Vec, 2)
	for _, r := range nest.Refs {
		for i := int64(0); i < 8; i += 3 {
			for j := int64(0); j < 8; j += 2 {
				for k := int64(0); k < 8; k += 5 {
					iv := linalg.Vec{i, j, k}
					r.EvalInto(iv, dst)
					if !dst.Equal(r.Eval(iv)) {
						t.Fatalf("%s at %v: EvalInto %v ≠ Eval %v", r, iv, dst, r.Eval(iv))
					}
				}
			}
		}
	}
}

func TestAccessGroupsInOrderKeepsAppearance(t *testing.T) {
	p := matmulProgram(4)
	x := p.Array("X")
	// Add a heavier later group; InOrder must still list the original
	// group first while AccessGroups reorders by weight.
	nest2 := &LoopNest{
		Loops: []Loop{
			{Name: "i", Lower: Constant(0), Upper: Constant(63)},
			{Name: "j", Lower: Constant(0), Upper: Constant(63)},
			{Name: "k", Lower: Constant(0), Upper: Constant(63)},
		},
		ParallelLoop: 0,
		Refs: []*Reference{{
			Array: x, Q: linalg.MatFromRows([][]int64{{0, 1, 0}, {1, 0, 0}}), Offset: linalg.Vec{0, 0},
		}},
	}
	p.Nests = append(p.Nests, nest2)
	inOrder := AccessGroupsInOrder(p, x)
	byWeight := AccessGroups(p, x)
	if len(inOrder) != 2 || len(byWeight) != 2 {
		t.Fatalf("groups = %d/%d", len(inOrder), len(byWeight))
	}
	if inOrder[0].Weight >= inOrder[1].Weight {
		t.Fatalf("test needs the later group heavier: %d vs %d", inOrder[0].Weight, inOrder[1].Weight)
	}
	if byWeight[0].Weight < byWeight[1].Weight {
		t.Error("AccessGroups did not order by weight")
	}
}
