package poly

import (
	"sort"

	"flopt/internal/linalg"
)

// AccessGroup aggregates every reference to one array that shares the same
// access matrix Q, along with its Eq. (5) weight: the summed estimated
// dynamic access counts of the member references.
type AccessGroup struct {
	Q      *linalg.Mat
	Refs   []RefInNest
	Weight int64
}

// AccessGroups partitions the references to array a by access matrix and
// computes each group's weight (Eq. 5), with n_j estimated as the trip
// count of the enclosing nest. Groups are returned in decreasing weight
// order (ties broken deterministically by first appearance).
func AccessGroups(p *Program, a *Array) []*AccessGroup {
	groups := AccessGroupsInOrder(p, a)
	order := make(map[*AccessGroup]int, len(groups))
	for i, g := range groups {
		order[g] = i
	}
	sort.SliceStable(groups, func(i, j int) bool {
		if groups[i].Weight != groups[j].Weight {
			return groups[i].Weight > groups[j].Weight
		}
		return order[groups[i]] < order[groups[j]]
	})
	return groups
}

// AccessGroupsInOrder is AccessGroups without the Eq. 5 weight ordering:
// groups appear in first-reference order. Used by the ablation study that
// measures what the weighted conflict resolution buys.
func AccessGroupsInOrder(p *Program, a *Array) []*AccessGroup {
	var groups []*AccessGroup
	for _, rn := range p.RefsTo(a) {
		var g *AccessGroup
		for _, cand := range groups {
			if cand.Q.Equal(rn.Ref.Q) {
				g = cand
				break
			}
		}
		if g == nil {
			g = &AccessGroup{Q: rn.Ref.Q}
			groups = append(groups, g)
		}
		g.Refs = append(g.Refs, rn)
		g.Weight += rn.Nest.TripCount()
	}
	return groups
}
