// Package poly implements the polyhedral program representation used by the
// file-layout optimizer (paper §3): rectangular-with-affine-bounds loop
// nests, disk-resident arrays, and affine array references a = Q·i + q.
package poly

import (
	"fmt"
	"strings"

	"flopt/internal/linalg"
)

// Affine is an affine expression over the iterators of the enclosing loops:
// value(i) = Coeffs·i + Const. Coeffs has one entry per enclosing loop, from
// outermost to innermost; a shorter Coeffs slice is implicitly
// zero-extended, so purely constant bounds may use a nil Coeffs.
type Affine struct {
	Coeffs linalg.Vec
	Const  int64
}

// Constant returns an Affine holding the constant c.
func Constant(c int64) Affine { return Affine{Const: c} }

// Eval evaluates the expression at iteration point iv (outer iterators
// first). iv may be longer than Coeffs; extra iterators have coefficient 0.
func (a Affine) Eval(iv linalg.Vec) int64 {
	v := a.Const
	for k, c := range a.Coeffs {
		if k >= len(iv) {
			break
		}
		v += c * iv[k]
	}
	return v
}

// IsConstant reports whether the expression has no iterator dependence.
func (a Affine) IsConstant() bool {
	for _, c := range a.Coeffs {
		if c != 0 {
			return false
		}
	}
	return true
}

// String renders the expression using iterator names i1, i2, ….
func (a Affine) String() string {
	var parts []string
	for k, c := range a.Coeffs {
		if c == 0 {
			continue
		}
		switch c {
		case 1:
			parts = append(parts, fmt.Sprintf("i%d", k+1))
		case -1:
			parts = append(parts, fmt.Sprintf("-i%d", k+1))
		default:
			parts = append(parts, fmt.Sprintf("%d*i%d", c, k+1))
		}
	}
	if a.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", a.Const))
	}
	return strings.Join(parts, "+")
}

// Loop is one level of a loop nest with inclusive bounds.
type Loop struct {
	Name  string
	Lower Affine
	Upper Affine
	Step  int64 // must be ≥ 1; 0 is normalized to 1
}

func (l Loop) step() int64 {
	if l.Step <= 0 {
		return 1
	}
	return l.Step
}

// Array is a disk-resident multi-dimensional array. Extents are per
// dimension; the data space is [0, Dims[k]) in each dimension k.
type Array struct {
	Name string
	Dims []int64
}

// Rank returns the dimensionality of the array.
func (a *Array) Rank() int { return len(a.Dims) }

// Size returns the total number of elements.
func (a *Array) Size() int64 {
	n := int64(1)
	for _, d := range a.Dims {
		n *= d
	}
	return n
}

// Contains reports whether index vector v lies inside the data space.
func (a *Array) Contains(v linalg.Vec) bool {
	if len(v) != len(a.Dims) {
		return false
	}
	for k, x := range v {
		if x < 0 || x >= a.Dims[k] {
			return false
		}
	}
	return true
}

func (a *Array) String() string {
	var b strings.Builder
	b.WriteString(a.Name)
	for _, d := range a.Dims {
		fmt.Fprintf(&b, "[%d]", d)
	}
	return b.String()
}

// Reference is an affine array reference a = Q·i + Offset appearing in a
// loop nest. Q has one row per array dimension and one column per loop of
// the enclosing nest.
type Reference struct {
	Array  *Array
	Q      *linalg.Mat
	Offset linalg.Vec
	Write  bool
}

// Eval returns the data index vector accessed at iteration point iv.
func (r *Reference) Eval(iv linalg.Vec) linalg.Vec {
	v := r.Q.MulVec(iv)
	for k := range v {
		v[k] += r.Offset[k]
	}
	return v
}

// EvalInto evaluates the reference at iv, writing the data index vector
// into dst (which must have length equal to the array rank). It avoids the
// per-call allocation of Eval for trace-generation hot loops.
func (r *Reference) EvalInto(iv, dst linalg.Vec) {
	for d := 0; d < r.Q.R; d++ {
		v := r.Offset[d]
		for k := 0; k < r.Q.C; k++ {
			if c := r.Q.At(d, k); c != 0 {
				v += c * iv[k]
			}
		}
		dst[d] = v
	}
}

// String renders the reference like A[i1+1][i2].
func (r *Reference) String() string {
	var b strings.Builder
	b.WriteString(r.Array.Name)
	for d := 0; d < r.Q.R; d++ {
		b.WriteString("[")
		b.WriteString(Affine{Coeffs: r.Q.Row(d), Const: r.Offset[d]}.String())
		b.WriteString("]")
	}
	return b.String()
}

// LoopNest is a perfectly nested affine loop nest with a set of array
// references in its body. ParallelLoop is the index (0-based, outermost
// first) of the loop whose iterations are blocked and distributed across
// threads — the loop `u` of paper §3.
type LoopNest struct {
	Loops        []Loop
	Refs         []*Reference
	ParallelLoop int
}

// Depth returns the nesting depth.
func (n *LoopNest) Depth() int { return len(n.Loops) }

// TripCount estimates the total number of iterations of the nest, the n_j
// quantity of Eq. (5). Affine bounds are estimated by evaluating at the
// midpoint of the enclosing loops, which is exact for rectangular nests and
// a good estimate for triangular ones.
func (n *LoopNest) TripCount() int64 {
	total := int64(1)
	mid := make(linalg.Vec, 0, len(n.Loops))
	for _, l := range n.Loops {
		lo, hi := l.Lower.Eval(mid), l.Upper.Eval(mid)
		trip := (hi-lo)/l.step() + 1
		if trip < 1 {
			trip = 1
		}
		total *= trip
		mid = append(mid, (lo+hi)/2)
	}
	return total
}

// ForEach enumerates every iteration point of the nest in lexicographic
// order, invoking f with a reused iteration vector (outermost iterator
// first). f must not retain the vector across calls.
func (n *LoopNest) ForEach(f func(iv linalg.Vec)) {
	iv := make(linalg.Vec, len(n.Loops))
	n.forEachFrom(0, iv, f)
}

func (n *LoopNest) forEachFrom(depth int, iv linalg.Vec, f func(iv linalg.Vec)) {
	if depth == len(n.Loops) {
		f(iv)
		return
	}
	l := n.Loops[depth]
	lo, hi := l.Lower.Eval(iv[:depth]), l.Upper.Eval(iv[:depth])
	for v := lo; v <= hi; v += l.step() {
		iv[depth] = v
		n.forEachFrom(depth+1, iv, f)
	}
}

// Bounds returns the (constant-evaluated) inclusive bounds of loop k with
// outer iterators fixed at outer.
func (n *LoopNest) Bounds(k int, outer linalg.Vec) (lo, hi int64) {
	return n.Loops[k].Lower.Eval(outer), n.Loops[k].Upper.Eval(outer)
}

// Program is a whole application: its disk-resident arrays and the
// parallelized loop nests that access them.
type Program struct {
	Name   string
	Arrays []*Array
	Nests  []*LoopNest
}

// Array returns the array with the given name, or nil.
func (p *Program) Array(name string) *Array {
	for _, a := range p.Arrays {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RefsTo returns every reference to array a across all nests, paired with
// the nest that contains it.
func (p *Program) RefsTo(a *Array) []RefInNest {
	var out []RefInNest
	for _, n := range p.Nests {
		for _, r := range n.Refs {
			if r.Array == a {
				out = append(out, RefInNest{Ref: r, Nest: n})
			}
		}
	}
	return out
}

// RefInNest pairs a reference with its enclosing nest.
type RefInNest struct {
	Ref  *Reference
	Nest *LoopNest
}

// Validate checks structural invariants: reference shapes match their nest
// and array, parallel loop indices are in range, bounds coefficient vectors
// do not reach forward. It returns the first problem found.
func (p *Program) Validate() error {
	for ni, n := range p.Nests {
		if n.Depth() == 0 {
			return fmt.Errorf("nest %d: empty loop nest", ni)
		}
		if n.ParallelLoop < 0 || n.ParallelLoop >= n.Depth() {
			return fmt.Errorf("nest %d: parallel loop %d out of range [0,%d)", ni, n.ParallelLoop, n.Depth())
		}
		for k, l := range n.Loops {
			if len(l.Lower.Coeffs) > k || len(l.Upper.Coeffs) > k {
				return fmt.Errorf("nest %d loop %d (%s): bound depends on non-enclosing iterator", ni, k, l.Name)
			}
		}
		for ri, r := range n.Refs {
			if r.Array == nil {
				return fmt.Errorf("nest %d ref %d: nil array", ni, ri)
			}
			if r.Q.R != r.Array.Rank() {
				return fmt.Errorf("nest %d ref %d (%s): access matrix has %d rows, array rank %d",
					ni, ri, r.Array.Name, r.Q.R, r.Array.Rank())
			}
			if r.Q.C != n.Depth() {
				return fmt.Errorf("nest %d ref %d (%s): access matrix has %d cols, nest depth %d",
					ni, ri, r.Array.Name, r.Q.C, n.Depth())
			}
			if len(r.Offset) != r.Array.Rank() {
				return fmt.Errorf("nest %d ref %d (%s): offset length %d, array rank %d",
					ni, ri, r.Array.Name, len(r.Offset), r.Array.Rank())
			}
		}
	}
	return nil
}

// Hyperplane is an affine hyperplane g·b = c in an iteration or data space.
type Hyperplane struct {
	Normal linalg.Vec
	C      int64
}

// Contains reports whether point b lies on the hyperplane.
func (h Hyperplane) Contains(b linalg.Vec) bool { return h.Normal.Dot(b) == h.C }

// UnitNormal returns the 1×n unit hyperplane vector with 1 at position k —
// the h_I / h_A form used throughout the paper.
func UnitNormal(n, k int) linalg.Vec {
	v := make(linalg.Vec, n)
	v[k] = 1
	return v
}

// DeleteRow returns the (n-1)×n matrix E_u obtained from the n×n identity
// by deleting row u (paper §4.1): its rows span the solutions of h_I·Δ = 0
// for h_I the u-th unit normal.
func DeleteRow(n, u int) *linalg.Mat {
	e := linalg.NewMat(n-1, n)
	row := 0
	for i := 0; i < n; i++ {
		if i == u {
			continue
		}
		e.Set(row, i, 1)
		row++
	}
	return e
}
