package disk

import "testing"

func TestParamsDerived(t *testing.T) {
	p := DefaultParams()
	if p.RotationalNS() != 3_000_000 {
		t.Errorf("rotational = %d, want 3 ms at 10k RPM", p.RotationalNS())
	}
	if p.PositionedServiceNS() != 5_000_000+3_000_000+1_280_000 {
		t.Errorf("positioned service = %d", p.PositionedServiceNS())
	}
	if (Params{RPM: 0, TransferNSPerBlock: 1}).RotationalNS() != 0 {
		t.Error("zero RPM should yield zero rotational delay")
	}
}

func TestReadRandomThenSequential(t *testing.T) {
	d := New(DefaultParams())
	pos := DefaultParams().PositionedServiceNS()
	xfer := DefaultParams().TransferNSPerBlock

	done := d.Read(0, 0, 10)
	if done != pos {
		t.Errorf("first read done at %d, want %d", done, pos)
	}
	// Next block of the same file: sequential.
	done = d.Read(done, 0, 11)
	if done != pos+xfer {
		t.Errorf("sequential read done at %d, want %d", done, pos+xfer)
	}
	if d.SeqReads() != 1 || d.Reads() != 2 {
		t.Errorf("reads=%d seq=%d", d.Reads(), d.SeqReads())
	}
	// Jump: positioned again.
	done2 := d.Read(done, 0, 99)
	if done2 != done+pos {
		t.Errorf("random read done at %d, want %d", done2, done+pos)
	}
	// Same next-block number but different file: positioned.
	done3 := d.Read(done2, 1, 100)
	if done3 != done2+pos {
		t.Error("cross-file read must not take the sequential path")
	}
}

func TestReadQueueing(t *testing.T) {
	d := New(DefaultParams())
	pos := DefaultParams().PositionedServiceNS()
	// Two requests arriving at time 0 serialize.
	d1 := d.Read(0, 0, 1)
	d2 := d.Read(0, 0, 50)
	if d1 != pos || d2 != 2*pos {
		t.Errorf("done times %d, %d; want %d, %d", d1, d2, pos, 2*pos)
	}
	// A late arrival after the queue drains starts immediately.
	d3 := d.Read(10*pos, 0, 99)
	if d3 != 11*pos {
		t.Errorf("late arrival done at %d, want %d", d3, 11*pos)
	}
	if d.BusyNS() != 3*pos {
		t.Errorf("busy = %d, want %d", d.BusyNS(), 3*pos)
	}
}

func TestReset(t *testing.T) {
	d := New(DefaultParams())
	d.Read(0, 0, 1)
	d.Reset()
	if d.Reads() != 0 || d.BusyNS() != 0 {
		t.Error("reset incomplete")
	}
	if done := d.Read(0, 0, 2); done != DefaultParams().PositionedServiceNS() {
		t.Error("sequential state survived reset")
	}
}

func TestReadScaled(t *testing.T) {
	d := New(DefaultParams())
	pos := DefaultParams().PositionedServiceNS()
	// A 4x fail-slow read takes four times the positioned service time.
	done, seq := d.ReadScaled(0, 0, 10, 4)
	if done != 4*pos || seq {
		t.Errorf("scaled read done at %d (seq=%v), want %d", done, seq, 4*pos)
	}
	// Sequential detection still works under scaling, applied to the
	// transfer-only service.
	xfer := DefaultParams().TransferNSPerBlock
	done2, seq := d.ReadScaled(done, 0, 11, 4)
	if !seq || done2 != done+4*xfer {
		t.Errorf("scaled sequential read done at %d (seq=%v), want %d", done2, seq, done+4*xfer)
	}
	// Scale ≤ 1 is nominal speed.
	if done3, _ := d.ReadScaled(done2, 0, 12, 0.5); done3 != done2+xfer {
		t.Error("scale below 1 altered nominal service time")
	}
	if d.BusyNS() != 4*pos+4*xfer+xfer {
		t.Errorf("busy = %d", d.BusyNS())
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []Params{
		{AvgSeekNS: 0, RPM: 10000, TransferNSPerBlock: 1},
		{AvgSeekNS: 1, RPM: 0, TransferNSPerBlock: 1},
		{AvgSeekNS: 1, RPM: 10000, TransferNSPerBlock: 0},
		{AvgSeekNS: -1, RPM: -1, TransferNSPerBlock: -1},
	} {
		if p.Validate() == nil {
			t.Errorf("%+v accepted", p)
		}
	}
}

func TestNewPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Params{})
}
