// Package disk models the storage devices behind the storage nodes: a
// simple but faithful rotating-disk service-time model (average seek +
// rotational delay from RPM + transfer from sustained bandwidth) with
// per-disk FIFO queueing and a sequential-access fast path (consecutive
// blocks of the same file skip the positioning cost, which is what rewards
// the sequential file layouts the optimizer produces). All times are in
// nanoseconds.
package disk

import "fmt"

// Params describes one disk.
type Params struct {
	// AvgSeekNS is the average seek time in nanoseconds.
	AvgSeekNS int64
	// RPM is the spindle speed; rotational delay is modeled as half a
	// revolution.
	RPM int64
	// TransferNSPerBlock is the media transfer time of one block.
	TransferNSPerBlock int64
}

// DefaultParams models the paper's 10 000 RPM disks with 128 kB blocks at
// ~100 MB/s sustained transfer: 5 ms seek, 3 ms half-rotation, 1.28 ms
// transfer.
func DefaultParams() Params {
	return Params{AvgSeekNS: 5_000_000, RPM: 10000, TransferNSPerBlock: 1_280_000}
}

// Validate rejects parameters that would silently model a physically
// impossible device (zero rotational delay, free seeks, instant
// transfers).
func (p Params) Validate() error {
	if p.AvgSeekNS <= 0 {
		return fmt.Errorf("disk: non-positive average seek time %d ns", p.AvgSeekNS)
	}
	if p.RPM <= 0 {
		return fmt.Errorf("disk: non-positive spindle speed %d RPM", p.RPM)
	}
	if p.TransferNSPerBlock <= 0 {
		return fmt.Errorf("disk: non-positive transfer time %d ns/block", p.TransferNSPerBlock)
	}
	return nil
}

// RotationalNS returns the modeled rotational delay (half a revolution).
func (p Params) RotationalNS() int64 {
	if p.RPM <= 0 {
		return 0
	}
	// Full revolution in ns = 60e9 / RPM; average wait is half.
	return 60_000_000_000 / p.RPM / 2
}

// PositionedServiceNS is the service time of a random (non-sequential)
// block read.
func (p Params) PositionedServiceNS() int64 {
	return p.AvgSeekNS + p.RotationalNS() + p.TransferNSPerBlock
}

// Disk is a single device with a FIFO queue.
type Disk struct {
	params Params
	// busyUntil is the virtual time at which the head becomes free.
	busyUntil int64
	// lastFile/lastBlock track the head position for sequential detection.
	lastFile  int32
	lastBlock int64
	hasLast   bool

	reads      int64
	seqReads   int64
	busyTimeNS int64

	// svcHook, when set, observes every read's charged service time (the
	// observability layer's per-device latency histograms). The nil
	// default keeps the uninstrumented path a single predictable branch.
	svcHook func(serviceNS int64, sequential bool)
}

// SetServiceHook registers a callback invoked with each read's service
// time and whether it took the sequential fast path. Pass nil to detach.
func (d *Disk) SetServiceHook(f func(serviceNS int64, sequential bool)) { d.svcHook = f }

// New returns an idle disk.
func New(p Params) *Disk {
	if p.TransferNSPerBlock <= 0 {
		panic(fmt.Sprintf("disk: non-positive transfer time %d", p.TransferNSPerBlock))
	}
	return &Disk{params: p}
}

// Read services a one-block read of (file, block) arriving at time
// arrivalNS and returns the completion time. Requests queue FIFO: service
// starts at max(arrival, busyUntil). A read that continues the previous
// read (same file, next block) pays only the transfer time.
func (d *Disk) Read(arrivalNS int64, file int32, block int64) (doneNS int64) {
	done, _ := d.ReadSeq(arrivalNS, file, block)
	return done
}

// ReadSeq is Read, additionally reporting whether the request took the
// sequential fast path (used by the storage nodes' stream-detecting
// readahead).
func (d *Disk) ReadSeq(arrivalNS int64, file int32, block int64) (doneNS int64, seq bool) {
	return d.ReadScaled(arrivalNS, file, block, 1)
}

// ReadScaled is ReadSeq with the service time multiplied by scale — the
// fail-slow injection point: a degraded device serves the same requests,
// only slower. Scales ≤ 1 leave the device at nominal speed.
func (d *Disk) ReadScaled(arrivalNS int64, file int32, block int64, scale float64) (doneNS int64, seq bool) {
	start := arrivalNS
	if d.busyUntil > start {
		start = d.busyUntil
	}
	svc := d.params.PositionedServiceNS()
	if d.hasLast && d.lastFile == file && block == d.lastBlock+1 {
		svc = d.params.TransferNSPerBlock
		d.seqReads++
		seq = true
	}
	if scale > 1 {
		svc = int64(float64(svc) * scale)
	}
	d.reads++
	d.busyTimeNS += svc
	d.busyUntil = start + svc
	d.lastFile, d.lastBlock, d.hasLast = file, block, true
	if d.svcHook != nil {
		d.svcHook(svc, seq)
	}
	return d.busyUntil, seq
}

// Reads returns the total block reads serviced.
func (d *Disk) Reads() int64 { return d.reads }

// SeqReads returns how many reads took the sequential fast path.
func (d *Disk) SeqReads() int64 { return d.seqReads }

// BusyNS returns the accumulated service time.
func (d *Disk) BusyNS() int64 { return d.busyTimeNS }

// Reset returns the disk to idle and clears counters.
func (d *Disk) Reset() {
	d.busyUntil = 0
	d.hasLast = false
	d.reads, d.seqReads, d.busyTimeNS = 0, 0, 0
}
