package stripe

import "testing"

func TestRoundRobin(t *testing.T) {
	s := New(4)
	if s.Nodes() != 4 {
		t.Errorf("Nodes = %d", s.Nodes())
	}
	for b := int64(0); b < 16; b++ {
		if got := s.NodeOf(b); got != int(b%4) {
			t.Errorf("NodeOf(%d) = %d, want %d", b, got, b%4)
		}
	}
	if s.LocalIndex(9) != 2 {
		t.Errorf("LocalIndex(9) = %d, want 2", s.LocalIndex(9))
	}
}

func TestSingleNode(t *testing.T) {
	s := New(1)
	for b := int64(0); b < 5; b++ {
		if s.NodeOf(b) != 0 || s.LocalIndex(b) != b {
			t.Error("single-node striping wrong")
		}
	}
}

func TestPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New(0) should panic")
			}
		}()
		New(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative block should panic")
			}
		}()
		New(2).NodeOf(-1)
	}()
}
