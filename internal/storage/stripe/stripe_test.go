package stripe

import "testing"

func TestRoundRobin(t *testing.T) {
	s := New(4)
	if s.Nodes() != 4 {
		t.Errorf("Nodes = %d", s.Nodes())
	}
	for b := int64(0); b < 16; b++ {
		if got := s.NodeOf(b); got != int(b%4) {
			t.Errorf("NodeOf(%d) = %d, want %d", b, got, b%4)
		}
	}
	if s.LocalIndex(9) != 2 {
		t.Errorf("LocalIndex(9) = %d, want 2", s.LocalIndex(9))
	}
}

func TestSingleNode(t *testing.T) {
	s := New(1)
	for b := int64(0); b < 5; b++ {
		if s.NodeOf(b) != 0 || s.LocalIndex(b) != b {
			t.Error("single-node striping wrong")
		}
	}
}

func TestReplicaOf(t *testing.T) {
	s := New(4)
	for b := int64(0); b < 8; b++ {
		if s.ReplicaOf(b, 0) != s.NodeOf(b) {
			t.Errorf("copy 0 of block %d not on primary", b)
		}
		if got, want := s.ReplicaOf(b, 1), (s.NodeOf(b)+1)%4; got != want {
			t.Errorf("ReplicaOf(%d, 1) = %d, want %d", b, got, want)
		}
	}
	// Single-node striping: every copy is the one node.
	if New(1).ReplicaOf(3, 1) != 0 {
		t.Error("single-node replica should be node 0")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative replica index should panic")
			}
		}()
		s.ReplicaOf(0, -1)
	}()
}

func TestSpread(t *testing.T) {
	s := New(4)
	// 10 blocks round-robin over 4 nodes: nodes 0 and 1 hold 3, 2 and 3
	// hold 2.
	got := s.Spread(10)
	want := []int64{3, 3, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Spread(10) = %v, want %v", got, want)
		}
	}
	// The spread always sums to the block count and agrees with NodeOf.
	for _, n := range []int64{0, 1, 4, 7, 101} {
		counts := make([]int64, s.Nodes())
		for b := int64(0); b < n; b++ {
			counts[s.NodeOf(b)]++
		}
		var sum int64
		for i, c := range s.Spread(n) {
			sum += c
			if c != counts[i] {
				t.Fatalf("Spread(%d)[%d] = %d, want %d", n, i, c, counts[i])
			}
		}
		if sum != n {
			t.Fatalf("Spread(%d) sums to %d", n, sum)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative block count should panic")
			}
		}()
		s.Spread(-1)
	}()
}

func TestPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New(0) should panic")
			}
		}()
		New(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative block should panic")
			}
		}()
		New(2).NodeOf(-1)
	}()
}
