// Package stripe models the PVFS-style parallel file system of the
// evaluation platform: each file's blocks are striped round-robin across
// all storage nodes, with the stripe unit equal to the cache data block
// (as in the paper's setup, Table 1).
package stripe

import "fmt"

// Striping maps file blocks to storage nodes.
type Striping struct {
	nodes int
}

// New returns a round-robin striping over n storage nodes.
func New(n int) Striping {
	if n < 1 {
		panic(fmt.Sprintf("stripe: need at least one storage node, got %d", n))
	}
	return Striping{nodes: n}
}

// Nodes returns the storage node count.
func (s Striping) Nodes() int { return s.nodes }

// NodeOf returns the storage node owning block b of any file.
func (s Striping) NodeOf(block int64) int {
	if block < 0 {
		panic("stripe: negative block")
	}
	return int(block % int64(s.nodes))
}

// LocalIndex returns the block's index within its storage node's local
// sequence, useful for modeling on-node contiguity: consecutive blocks of
// the same stripe column are adjacent on the node's disk.
func (s Striping) LocalIndex(block int64) int64 {
	return block / int64(s.nodes)
}

// Spread returns how many of a file's first nblocks blocks have their
// primary copy on each storage node — the stripe-balance view the
// observability layer reports. Round-robin placement spreads blocks
// evenly, with the first nblocks mod nodes nodes holding one extra.
func (s Striping) Spread(nblocks int64) []int64 {
	if nblocks < 0 {
		panic(fmt.Sprintf("stripe: negative block count %d", nblocks))
	}
	out := make([]int64, s.nodes)
	base, rem := nblocks/int64(s.nodes), nblocks%int64(s.nodes)
	for i := range out {
		out[i] = base
		if int64(i) < rem {
			out[i]++
		}
	}
	return out
}

// ReplicaOf returns the storage node holding copy r of the block: copies
// are placed on consecutive nodes after the primary (chained
// declustering), so copy 0 is NodeOf(block) and copy 1 is the failover
// target when the primary node is unreachable.
func (s Striping) ReplicaOf(block int64, r int) int {
	if r < 0 {
		panic(fmt.Sprintf("stripe: negative replica index %d", r))
	}
	return (s.NodeOf(block) + r) % s.nodes
}
