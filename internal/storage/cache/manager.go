package cache

import "fmt"

// HitLevel tells the simulator where a read was satisfied.
type HitLevel int

const (
	// HitIO: satisfied by the I/O node cache.
	HitIO HitLevel = iota
	// HitStorage: satisfied by the storage node cache.
	HitStorage
	// HitDisk: both levels missed; the block came from disk.
	HitDisk
)

func (h HitLevel) String() string {
	switch h {
	case HitIO:
		return "io"
	case HitStorage:
		return "storage"
	default:
		return "disk"
	}
}

// Outcome describes one block read through the cache hierarchy.
type Outcome struct {
	Level HitLevel
	// Demoted reports that the read triggered a demotion transfer from
	// the I/O level to the storage level (DEMOTE-LRU), which the
	// simulator charges network time for.
	Demoted bool
}

// Manager is a multi-level cache management policy covering all I/O node
// caches and all storage node caches of the platform. Read simulates a
// block read arriving at I/O cache io whose miss path leads to storage
// cache st.
type Manager interface {
	Read(io, st int, b BlockID) Outcome
	Name() string
	// IOStats and StorageStats aggregate counters across the caches of
	// each level.
	IOStats() Stats
	StorageStats() Stats
	// Reset clears all cache contents and counters.
	Reset()
}

// NodeStatsReporter is implemented by policies that can break their
// aggregate counters down per cache instance — the observability layer
// uses it for per-node hit/miss/eviction breakdowns. Every built-in
// policy implements it.
type NodeStatsReporter interface {
	// IONodeStats returns one Stats per I/O-node cache, in node order.
	IONodeStats() []Stats
	// StorageNodeStats returns one Stats per storage-node cache.
	StorageNodeStats() []Stats
}

// Prefetcher is implemented by policies that accept readahead insertions
// at the storage level.
type Prefetcher interface {
	// PrefetchStorage inserts b into storage cache st without counting an
	// access (the block arrived by readahead, not by demand). It reports
	// whether the block was newly inserted (false: it was already cached,
	// so no device read is needed).
	PrefetchStorage(st int, b BlockID) bool
}

// aggregate sums stats over a set of LRU caches.
func aggregate(cs []*LRU) Stats {
	var s Stats
	for _, c := range cs {
		s.Add(c.Stats())
	}
	return s
}

// perNode snapshots each LRU cache's stats in node order.
func perNode(cs []*LRU) []Stats {
	out := make([]Stats, len(cs))
	for i, c := range cs {
		out[i] = c.Stats()
	}
	return out
}

// InclusiveLRU is the paper's default policy: independent LRU caches at
// both levels; a block read from disk is inserted at both levels
// (inclusive).
type InclusiveLRU struct {
	io, st []*LRU
}

// NewInclusiveLRU builds the default policy with nIO I/O caches of capIO
// blocks and nStorage storage caches of capStorage blocks.
func NewInclusiveLRU(nIO, nStorage, capIO, capStorage int) *InclusiveLRU {
	m := &InclusiveLRU{}
	for i := 0; i < nIO; i++ {
		m.io = append(m.io, NewLRU(capIO))
	}
	for i := 0; i < nStorage; i++ {
		m.st = append(m.st, NewLRU(capStorage))
	}
	return m
}

// Read implements Manager.
func (m *InclusiveLRU) Read(io, st int, b BlockID) Outcome {
	if m.io[io].Access(b) {
		return Outcome{Level: HitIO}
	}
	if m.st[st].Access(b) {
		return Outcome{Level: HitStorage}
	}
	return Outcome{Level: HitDisk}
}

// PrefetchStorage implements Prefetcher.
func (m *InclusiveLRU) PrefetchStorage(st int, b BlockID) bool {
	if m.st[st].Contains(b) {
		return false
	}
	m.st[st].Insert(b)
	return true
}

// Name implements Manager.
func (m *InclusiveLRU) Name() string { return "LRU-inclusive" }

// IOStats implements Manager.
func (m *InclusiveLRU) IOStats() Stats { return aggregate(m.io) }

// StorageStats implements Manager.
func (m *InclusiveLRU) StorageStats() Stats { return aggregate(m.st) }

// IONodeStats implements NodeStatsReporter.
func (m *InclusiveLRU) IONodeStats() []Stats { return perNode(m.io) }

// StorageNodeStats implements NodeStatsReporter.
func (m *InclusiveLRU) StorageNodeStats() []Stats { return perNode(m.st) }

// Reset implements Manager.
func (m *InclusiveLRU) Reset() {
	for _, c := range m.io {
		c.Reset()
	}
	for _, c := range m.st {
		c.Reset()
	}
}

// DemoteLRU implements the exclusive policy of Wong & Wilkes: on an I/O
// cache eviction the victim is demoted into the storage cache below; on a
// storage cache hit the block moves up (it is removed from the storage
// level and inserted at the I/O level); disk fills go only to the I/O
// level. The storage caches run plain LRU over demoted and read blocks.
type DemoteLRU struct {
	io, st []*LRU
	// demoteTo routes an eviction from an I/O cache to the storage cache
	// of the current request path.
	pendingStorage int
	lastDemoted    bool
	// Staged-read victim capture, one slot per I/O cache: while
	// capture[i] is set, cache i's eviction callback records the victim
	// here instead of inserting it into a storage cache, so the staged
	// I/O stage never touches another shard's state (see ReadIO).
	capture   []bool
	hasVictim []bool
	victim    []BlockID
}

// NewDemoteLRU builds the DEMOTE policy with the given cache counts and
// capacities.
func NewDemoteLRU(nIO, nStorage, capIO, capStorage int) *DemoteLRU {
	m := &DemoteLRU{
		capture:   make([]bool, nIO),
		hasVictim: make([]bool, nIO),
		victim:    make([]BlockID, nIO),
	}
	for i := 0; i < nIO; i++ {
		c := NewLRU(capIO)
		m.io = append(m.io, c)
	}
	for i := 0; i < nStorage; i++ {
		m.st = append(m.st, NewLRU(capStorage))
	}
	for i, c := range m.io {
		i := i
		c.SetEvictCallback(func(b BlockID) {
			if m.capture[i] {
				m.hasVictim[i], m.victim[i] = true, b
				return
			}
			// The victim travels down to the storage cache handling the
			// current request path (an approximation of the original
			// client→array demotion: victims follow the open channel).
			m.st[m.pendingStorage].Insert(b)
			m.st[m.pendingStorage].stats.Demotions++
			m.lastDemoted = true
		})
	}
	return m
}

// Read implements Manager.
func (m *DemoteLRU) Read(io, st int, b BlockID) Outcome {
	m.pendingStorage = st
	m.lastDemoted = false
	if m.io[io].Access(b) { // hit: no insert happened, no demotion
		return Outcome{Level: HitIO}
	}
	// Access() inserted b into the I/O cache and may have demoted a
	// victim. Now resolve where the data actually came from.
	if m.st[st].Probe(b) {
		m.st[st].Remove(b) // exclusive: reading up removes the lower copy
		return Outcome{Level: HitStorage, Demoted: m.lastDemoted}
	}
	return Outcome{Level: HitDisk, Demoted: m.lastDemoted}
}

// PrefetchStorage implements Prefetcher: readahead fills go to the
// storage level (they were not demand-promoted to a client).
func (m *DemoteLRU) PrefetchStorage(st int, b BlockID) bool {
	if m.st[st].Contains(b) {
		return false
	}
	m.st[st].Insert(b)
	return true
}

// Name implements Manager.
func (m *DemoteLRU) Name() string { return "DEMOTE-LRU" }

// IOStats implements Manager.
func (m *DemoteLRU) IOStats() Stats { return aggregate(m.io) }

// StorageStats implements Manager.
func (m *DemoteLRU) StorageStats() Stats { return aggregate(m.st) }

// IONodeStats implements NodeStatsReporter.
func (m *DemoteLRU) IONodeStats() []Stats { return perNode(m.io) }

// StorageNodeStats implements NodeStatsReporter.
func (m *DemoteLRU) StorageNodeStats() []Stats { return perNode(m.st) }

// Demotions returns the total number of demotion transfers, summed from
// the per-storage-cache counters (every demotion lands in exactly one
// storage cache, so the sum equals the old shared counter — and unlike a
// shared counter it needs no synchronization under staged reads).
func (m *DemoteLRU) Demotions() int64 {
	var n int64
	for _, c := range m.st {
		n += c.stats.Demotions
	}
	return n
}

// Reset implements Manager.
func (m *DemoteLRU) Reset() {
	for _, c := range m.io {
		c.Reset()
	}
	for _, c := range m.st {
		c.Reset()
	}
}

var (
	_ Manager           = (*InclusiveLRU)(nil)
	_ Manager           = (*DemoteLRU)(nil)
	_ NodeStatsReporter = (*InclusiveLRU)(nil)
	_ NodeStatsReporter = (*DemoteLRU)(nil)
	_ NodeStatsReporter = (*KARMA)(nil)
	_ NodeStatsReporter = (*InclusiveMQ)(nil)
)

// NewByName constructs a policy by its report name; see Names.
func NewByName(name string, nIO, nStorage, capIO, capStorage int, hints []RangeHint) (Manager, error) {
	switch name {
	case "lru", "LRU", "LRU-inclusive":
		return NewInclusiveLRU(nIO, nStorage, capIO, capStorage), nil
	case "demote", "DEMOTE-LRU":
		return NewDemoteLRU(nIO, nStorage, capIO, capStorage), nil
	case "karma", "KARMA":
		return NewKARMA(nIO, nStorage, capIO, capStorage, hints), nil
	case "mq", "MQ":
		return NewInclusiveMQ(nIO, nStorage, capIO, capStorage), nil
	default:
		return nil, fmt.Errorf("cache: unknown policy %q", name)
	}
}

// Names lists the selectable policy names.
func Names() []string { return []string{"lru", "demote", "karma", "mq"} }
