package cache

import (
	"math/rand"
	"testing"
)

func b(f int32, n int64) BlockID { return BlockID{File: f, Block: n} }

func TestLRUBasics(t *testing.T) {
	c := NewLRU(2)
	if c.Access(b(0, 1)) {
		t.Error("cold access hit")
	}
	if !c.Access(b(0, 1)) {
		t.Error("warm access missed")
	}
	c.Access(b(0, 2))
	c.Access(b(0, 3)) // evicts 1 (LRU after 1,2 accessed, 1 is... order: 1 warm, 2, so LRU is 1)
	if c.Contains(b(0, 1)) {
		t.Error("block 1 should be evicted")
	}
	if !c.Contains(b(0, 2)) || !c.Contains(b(0, 3)) {
		t.Error("blocks 2, 3 should be cached")
	}
	if c.Len() != 2 || c.Capacity() != 2 {
		t.Errorf("len=%d cap=%d", c.Len(), c.Capacity())
	}
}

func TestLRURecencyOrder(t *testing.T) {
	c := NewLRU(3)
	c.Access(b(0, 1))
	c.Access(b(0, 2))
	c.Access(b(0, 3))
	c.Access(b(0, 1)) // 1 becomes MRU; LRU order now 2,3,1
	c.Access(b(0, 4)) // evicts 2
	if c.Contains(b(0, 2)) {
		t.Error("2 should be the victim")
	}
	if !c.Contains(b(0, 1)) || !c.Contains(b(0, 3)) || !c.Contains(b(0, 4)) {
		t.Error("wrong survivors")
	}
}

func TestLRUStats(t *testing.T) {
	c := NewLRU(2)
	c.Access(b(0, 1))
	c.Access(b(0, 1))
	c.Access(b(0, 2))
	c.Access(b(0, 3))
	s := c.Stats()
	if s.Accesses != 4 || s.Hits != 1 || s.Misses != 3 || s.Evictions != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.HitRate() != 0.25 || s.MissRate() != 0.75 {
		t.Errorf("rates = %f/%f", s.HitRate(), s.MissRate())
	}
	if (Stats{}).HitRate() != 0 || (Stats{}).MissRate() != 0 {
		t.Error("zero-access rates should be 0")
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	c := NewLRU(0)
	for i := 0; i < 5; i++ {
		if c.Access(b(0, int64(i%2))) {
			t.Error("zero-capacity cache hit")
		}
	}
	if c.Len() != 0 {
		t.Error("zero-capacity cache stored a block")
	}
}

func TestLRUNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewLRU(-1)
}

func TestLRUEvictCallback(t *testing.T) {
	c := NewLRU(1)
	var evicted []BlockID
	c.SetEvictCallback(func(id BlockID) { evicted = append(evicted, id) })
	c.Access(b(0, 1))
	c.Access(b(0, 2))
	c.Remove(b(0, 2)) // Remove must not fire the callback
	if len(evicted) != 1 || evicted[0] != b(0, 1) {
		t.Errorf("evicted = %v", evicted)
	}
}

func TestLRURemoveAndProbe(t *testing.T) {
	c := NewLRU(2)
	c.Access(b(0, 1))
	if !c.Remove(b(0, 1)) || c.Remove(b(0, 1)) {
		t.Error("Remove return values wrong")
	}
	if c.Probe(b(0, 1)) {
		t.Error("probe hit after remove")
	}
	if c.Contains(b(0, 1)) {
		t.Error("Contains after remove")
	}
	// Probe must not insert.
	if c.Contains(b(0, 9)) {
		t.Error("probe inserted")
	}
	c.Probe(b(0, 9))
	if c.Contains(b(0, 9)) {
		t.Error("probe inserted")
	}
}

func TestLRUReset(t *testing.T) {
	c := NewLRU(2)
	c.Access(b(0, 1))
	c.Reset()
	if c.Len() != 0 || c.Stats().Accesses != 0 {
		t.Error("reset incomplete")
	}
	if c.Access(b(0, 1)) {
		t.Error("hit after reset")
	}
}

func TestLRUFilesAreDistinct(t *testing.T) {
	c := NewLRU(4)
	c.Access(b(0, 7))
	if c.Access(b(1, 7)) {
		t.Error("blocks of different files must not collide")
	}
}

// Capacity monotonicity: on any fixed trace, a larger LRU cache never has
// fewer hits (LRU has the stack property).
func TestLRUStackProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trace := make([]BlockID, 4000)
	for i := range trace {
		// Skewed workload over 64 blocks.
		trace[i] = b(0, int64(rng.Intn(8)*rng.Intn(8)))
	}
	prevHits := int64(-1)
	for _, capacity := range []int{1, 2, 4, 8, 16, 32, 64} {
		c := NewLRU(capacity)
		for _, id := range trace {
			c.Access(id)
		}
		if h := c.Stats().Hits; h < prevHits {
			t.Fatalf("capacity %d has fewer hits (%d) than smaller cache (%d)", capacity, h, prevHits)
		} else {
			prevHits = h
		}
	}
}

// The cache never exceeds capacity, and Len equals the number of distinct
// retained blocks.
func TestLRUCapacityInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewLRU(16)
	for i := 0; i < 10000; i++ {
		c.Access(b(int32(rng.Intn(3)), int64(rng.Intn(100))))
		if c.Len() > 16 {
			t.Fatalf("cache exceeded capacity: %d", c.Len())
		}
	}
	if c.Len() != 16 {
		t.Errorf("steady-state len = %d, want 16", c.Len())
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Accesses: 1, Hits: 2, Misses: 3, Evictions: 4, Demotions: 5}
	a.Add(Stats{Accesses: 10, Hits: 20, Misses: 30, Evictions: 40, Demotions: 50})
	if a != (Stats{Accesses: 11, Hits: 22, Misses: 33, Evictions: 44, Demotions: 55}) {
		t.Errorf("Add = %+v", a)
	}
}
