package cache

import (
	"math/rand"
	"testing"
)

func TestMQBasics(t *testing.T) {
	m := NewMQ(2)
	if m.Access(b(0, 1)) {
		t.Error("cold hit")
	}
	if !m.Access(b(0, 1)) {
		t.Error("warm miss")
	}
	if m.Len() != 1 || m.Capacity() != 2 {
		t.Errorf("len=%d cap=%d", m.Len(), m.Capacity())
	}
	s := m.Stats()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestMQFrequencyProtectsHotBlocks(t *testing.T) {
	// A hot block referenced many times must survive a burst of one-shot
	// blocks that would evict it under plain LRU.
	m := NewMQ(4)
	hot := b(0, 99)
	for i := 0; i < 8; i++ {
		m.Access(hot)
	}
	for i := 0; i < 6; i++ {
		m.Access(b(0, int64(i)))
	}
	if !m.Contains(hot) {
		t.Error("hot block evicted by one-shot scan (LRU behaviour, not MQ)")
	}
}

func TestMQHistoryRestoresFrequency(t *testing.T) {
	m := NewMQ(2)
	hot := b(0, 7)
	for i := 0; i < 8; i++ {
		m.Access(hot) // refs = 8 → high queue
	}
	// Evict it with a long scan.
	for i := 0; i < 4; i++ {
		m.Access(b(0, int64(i)))
	}
	if m.Contains(hot) {
		t.Skip("hot block survived the scan; history path not exercised")
	}
	// Re-access: Qout must restore its frequency class so it re-enters a
	// high queue and survives the next scan.
	m.Access(hot)
	m.Access(b(0, 50))
	m.Access(b(0, 51))
	if !m.Contains(hot) {
		t.Error("history queue did not restore the hot block's frequency")
	}
}

func TestMQExpiryDemotes(t *testing.T) {
	m := NewMQ(4) // lifetime = 9 accesses
	hot := b(0, 1)
	for i := 0; i < 4; i++ {
		m.Access(hot) // queue 2
	}
	// Let it expire: many accesses to other blocks without touching it.
	for i := 0; i < 30; i++ {
		m.Access(b(0, int64(2+i%3)))
	}
	// The hot block must have been demoted toward Q0 (it may even have
	// been evicted); either way it no longer outranks active blocks.
	if e, ok := m.items[packBlockID(hot)]; ok && e.level >= 2 {
		t.Errorf("expired block still at level %d", e.level)
	}
}

func TestMQZeroCapacity(t *testing.T) {
	m := NewMQ(0)
	for i := 0; i < 4; i++ {
		if m.Access(b(0, int64(i%2))) {
			t.Error("zero-capacity hit")
		}
	}
}

func TestMQCapacityInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := NewMQ(16)
	for i := 0; i < 20000; i++ {
		m.Access(b(int32(rng.Intn(2)), int64(rng.Intn(200))))
		if m.Len() > 16 {
			t.Fatalf("over capacity: %d", m.Len())
		}
	}
}

func TestMQReset(t *testing.T) {
	m := NewMQ(4)
	m.Access(b(0, 1))
	m.Reset()
	if m.Len() != 0 || m.Stats().Accesses != 0 {
		t.Error("reset incomplete")
	}
	if m.Access(b(0, 1)) {
		t.Error("content survived reset")
	}
}

func TestInclusiveMQManager(t *testing.T) {
	m := NewInclusiveMQ(2, 1, 2, 8)
	if out := m.Read(0, 0, b(0, 1)); out.Level != HitDisk {
		t.Errorf("cold = %v", out.Level)
	}
	if out := m.Read(0, 0, b(0, 1)); out.Level != HitIO {
		t.Errorf("warm = %v", out.Level)
	}
	if out := m.Read(1, 0, b(0, 1)); out.Level != HitStorage {
		t.Errorf("cross-io = %v", out.Level)
	}
	if m.Name() != "MQ" {
		t.Error("name wrong")
	}
	if m.IOStats().Accesses != 3 || m.StorageStats().Accesses != 2 {
		t.Errorf("stats: io=%+v st=%+v", m.IOStats(), m.StorageStats())
	}
	if !m.PrefetchStorage(0, b(0, 9)) || m.PrefetchStorage(0, b(0, 9)) {
		t.Error("prefetch semantics wrong")
	}
	m.Reset()
	if m.IOStats().Accesses != 0 {
		t.Error("reset incomplete")
	}
}

// MQ must beat LRU at the storage level on a mixed hot/scan workload —
// the scenario the MQ paper targets.
func TestMQBeatsLRUOnMixedWorkload(t *testing.T) {
	run := func(mgr Manager) int64 {
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 30000; i++ {
			var blk BlockID
			if rng.Intn(2) == 0 {
				blk = b(0, int64(rng.Intn(8))) // hot set
			} else {
				blk = b(1, int64(i)) // one-shot scan
			}
			// io cache tiny so the storage level sees the filtered stream
			mgr.Read(0, 0, blk)
		}
		return mgr.StorageStats().Hits
	}
	lru := run(NewInclusiveLRU(1, 1, 2, 16))
	mq := run(NewInclusiveMQ(1, 1, 2, 16))
	if mq <= lru {
		t.Errorf("MQ storage hits (%d) should exceed LRU's (%d)", mq, lru)
	}
}
