package cache

import (
	"fmt"
	"sort"
)

// RangeHint is the compiler/application hint KARMA consumes: one contiguous
// block range of a file plus the expected access frequency arriving at each
// I/O cache. Hints for one file must not overlap.
type RangeHint struct {
	File  int32
	Start int64 // first block (inclusive)
	End   int64 // past-the-end block
	// FreqPerIO[i] is the expected number of accesses to this range routed
	// through I/O cache i.
	FreqPerIO []float64
}

// Blocks returns the range size in blocks.
func (h RangeHint) Blocks() int64 { return h.End - h.Start }

// TotalFreq returns the summed expected accesses across all I/O caches.
func (h RangeHint) TotalFreq() float64 {
	var s float64
	for _, f := range h.FreqPerIO {
		s += f
	}
	return s
}

// KARMA implements the exclusive, hint-driven multi-level policy of Yadgar,
// Factor & Schuster (FAST'07): the hinted ranges are classified by marginal
// benefit (access density) and each range is placed at exactly one level —
// the greedy allocation fills each I/O cache with its densest ranges, then
// fills each storage cache with the densest leftovers (scaled by the
// striping share it sees). Each placed range receives its own LRU-managed
// cache partition; blocks of unplaced ranges bypass the caches entirely.
type KARMA struct {
	nIO, nStorage int
	hints         []RangeHint
	byFile        map[int32][]int // hint indices sorted by Start

	// allocIO[i][h] / allocST[s][h] = blocks of hint h granted at that cache.
	allocIO []map[int]int64
	allocST []map[int]int64
	// partIO[i][h] / partST[s][h] = the partition caches.
	partIO []map[int]*LRU
	partST []map[int]*LRU
	// streamIO[i] / streamST[s] are small reserved LRU partitions for
	// blocks of ranges placed at no level, modeling KARMA's residual
	// partition: without them, actively-streamed but unplaced blocks
	// would pay a disk access on every touch.
	streamIO []*LRU
	streamST []*LRU
}

// NewKARMA builds the policy. Capacities are per-cache block counts; hints
// describe the expected workload (see RangeHint). Blocks outside every hint
// are never cached.
func NewKARMA(nIO, nStorage, capIO, capStorage int, hints []RangeHint) *KARMA {
	k := &KARMA{nIO: nIO, nStorage: nStorage, hints: hints, byFile: map[int32][]int{}}
	for idx, h := range hints {
		k.byFile[h.File] = append(k.byFile[h.File], idx)
	}
	for _, idxs := range k.byFile {
		sort.Slice(idxs, func(a, b int) bool { return hints[idxs[a]].Start < hints[idxs[b]].Start })
	}

	// Reserve a slice of each cache for unplaced traffic (the residual
	// partition); the rest is allocated to hinted ranges.
	reserve := func(capacity int) (stream, rest int) {
		stream = capacity / 4
		if stream < 2 {
			stream = 2
		}
		if stream > capacity {
			stream = capacity
		}
		return stream, capacity - stream
	}
	var streamIO, streamST int
	streamIO, capIO = reserve(capIO)
	streamST, capStorage = reserve(capStorage)
	k.streamIO = make([]*LRU, nIO)
	for i := 0; i < nIO; i++ {
		k.streamIO[i] = NewLRU(streamIO)
	}
	k.streamST = make([]*LRU, nStorage)
	for s := 0; s < nStorage; s++ {
		k.streamST[s] = NewLRU(streamST)
	}

	// Level 1: every I/O cache independently takes its densest ranges.
	k.allocIO = make([]map[int]int64, nIO)
	k.partIO = make([]map[int]*LRU, nIO)
	for i := 0; i < nIO; i++ {
		k.allocIO[i] = map[int]int64{}
		k.partIO[i] = map[int]*LRU{}
		type cand struct {
			idx     int
			density float64
		}
		var cs []cand
		for idx, h := range hints {
			if i < len(h.FreqPerIO) && h.FreqPerIO[i] > 0 && h.Blocks() > 0 {
				cs = append(cs, cand{idx, h.FreqPerIO[i] / float64(h.Blocks())})
			}
		}
		sort.Slice(cs, func(a, b int) bool {
			if cs[a].density != cs[b].density {
				return cs[a].density > cs[b].density
			}
			return cs[a].idx < cs[b].idx
		})
		remaining := int64(capIO)
		for _, c := range cs {
			if remaining <= 0 {
				break
			}
			grant := hints[c.idx].Blocks()
			if grant > remaining {
				grant = remaining
			}
			k.allocIO[i][c.idx] = grant
			k.partIO[i][c.idx] = NewLRU(int(grant))
			remaining -= grant
		}
	}

	// Residual demand per range: frequency not absorbed by I/O-level
	// placements (weighted by the granted fraction).
	residual := make([]float64, len(hints))
	for idx, h := range hints {
		for i := 0; i < nIO && i < len(h.FreqPerIO); i++ {
			frac := 0.0
			if g := k.allocIO[i][idx]; h.Blocks() > 0 {
				frac = float64(g) / float64(h.Blocks())
			}
			residual[idx] += h.FreqPerIO[i] * (1 - frac)
		}
	}

	// Level 2: each storage cache takes the densest leftovers; it only
	// ever sees ~1/nStorage of a range's blocks (striping).
	k.allocST = make([]map[int]int64, nStorage)
	k.partST = make([]map[int]*LRU, nStorage)
	for s := 0; s < nStorage; s++ {
		k.allocST[s] = map[int]int64{}
		k.partST[s] = map[int]*LRU{}
		type cand struct {
			idx     int
			density float64
		}
		var cs []cand
		for idx, h := range hints {
			if residual[idx] > 0 && h.Blocks() > 0 {
				cs = append(cs, cand{idx, residual[idx] / float64(h.Blocks())})
			}
		}
		sort.Slice(cs, func(a, b int) bool {
			if cs[a].density != cs[b].density {
				return cs[a].density > cs[b].density
			}
			return cs[a].idx < cs[b].idx
		})
		remaining := int64(capStorage)
		for _, c := range cs {
			if remaining <= 0 {
				break
			}
			share := (hints[c.idx].Blocks() + int64(nStorage) - 1) / int64(nStorage)
			if share > remaining {
				share = remaining
			}
			k.allocST[s][c.idx] = share
			k.partST[s][c.idx] = NewLRU(int(share))
			remaining -= share
		}
	}
	return k
}

// rangeOf returns the hint index covering b, or -1.
func (k *KARMA) rangeOf(b BlockID) int {
	idxs := k.byFile[b.File]
	lo, hi := 0, len(idxs)
	for lo < hi {
		mid := (lo + hi) / 2
		h := k.hints[idxs[mid]]
		switch {
		case b.Block < h.Start:
			hi = mid
		case b.Block >= h.End:
			lo = mid + 1
		default:
			return idxs[mid]
		}
	}
	return -1
}

// Read implements Manager.
func (k *KARMA) Read(io, st int, b BlockID) Outcome {
	r := k.rangeOf(b)
	if r >= 0 {
		if p, ok := k.partIO[io][r]; ok {
			if p.Access(b) {
				return Outcome{Level: HitIO}
			}
			// Exclusive: a range placed at the I/O level is never cached
			// at the storage level, so the miss goes straight to disk.
			return Outcome{Level: HitDisk}
		}
		if p, ok := k.partST[st][r]; ok {
			if p.Access(b) {
				return Outcome{Level: HitStorage}
			}
			return Outcome{Level: HitDisk}
		}
	}
	// Unplaced (or unhinted) traffic flows through the residual
	// partitions at both levels.
	if k.streamIO[io].Access(b) {
		return Outcome{Level: HitIO}
	}
	if k.streamST[st].Access(b) {
		return Outcome{Level: HitStorage}
	}
	return Outcome{Level: HitDisk}
}

// Name implements Manager.
func (k *KARMA) Name() string { return "KARMA" }

// IOStats implements Manager.
func (k *KARMA) IOStats() Stats {
	var s Stats
	for _, parts := range k.partIO {
		for _, p := range parts {
			s.Add(p.Stats())
		}
	}
	for _, p := range k.streamIO {
		s.Add(p.Stats())
	}
	return s
}

// StorageStats implements Manager.
func (k *KARMA) StorageStats() Stats {
	var s Stats
	for _, parts := range k.partST {
		for _, p := range parts {
			s.Add(p.Stats())
		}
	}
	for _, p := range k.streamST {
		s.Add(p.Stats())
	}
	return s
}

// IONodeStats implements NodeStatsReporter: each I/O node's counters sum
// its range partitions and its residual stream partition.
func (k *KARMA) IONodeStats() []Stats {
	out := make([]Stats, len(k.streamIO))
	for i := range out {
		for _, p := range k.partIO[i] {
			out[i].Add(p.Stats())
		}
		out[i].Add(k.streamIO[i].Stats())
	}
	return out
}

// StorageNodeStats implements NodeStatsReporter.
func (k *KARMA) StorageNodeStats() []Stats {
	out := make([]Stats, len(k.streamST))
	for i := range out {
		for _, p := range k.partST[i] {
			out[i].Add(p.Stats())
		}
		out[i].Add(k.streamST[i].Stats())
	}
	return out
}

// Reset implements Manager.
func (k *KARMA) Reset() {
	for _, parts := range k.partIO {
		for _, p := range parts {
			p.Reset()
		}
	}
	for _, parts := range k.partST {
		for _, p := range parts {
			p.Reset()
		}
	}
	for _, p := range k.streamIO {
		p.Reset()
	}
	for _, p := range k.streamST {
		p.Reset()
	}
}

// Describe summarizes the allocation for diagnostics.
func (k *KARMA) Describe() string {
	nio, nst := 0, 0
	for _, m := range k.partIO {
		nio += len(m)
	}
	for _, m := range k.partST {
		nst += len(m)
	}
	return fmt.Sprintf("KARMA{%d hints, %d io partitions, %d storage partitions}", len(k.hints), nio, nst)
}

var _ Manager = (*KARMA)(nil)
