// Package cache implements the block-granular storage caches of the
// evaluation platform: a core LRU cache plus the three multi-level
// management policies the paper tests — inclusive LRU (the default),
// DEMOTE-LRU [Wong & Wilkes, USENIX ATC'02], and KARMA [Yadgar, Factor &
// Schuster, FAST'07].
package cache

import "fmt"

// BlockID identifies one cache-management unit: block Block of file File.
type BlockID struct {
	File  int32
	Block int64
}

// packBlockID packs b into a single uint64 map key — 24 bits of file id
// above 40 bits of block index — so the policies' hot lookup maps use the
// runtime's fast uint64 path instead of hashing a 16-byte struct. The
// guard panics on ids outside that domain (including negatives, which the
// unsigned conversions turn into huge values) rather than silently
// colliding.
func packBlockID(b BlockID) uint64 {
	if uint64(b.Block) >= 1<<40 || uint64(uint32(b.File)) >= 1<<24 {
		panic(fmt.Sprintf("cache: block id %+v outside the packed 24+40 bit key domain", b))
	}
	return uint64(uint32(b.File))<<40 | uint64(b.Block)
}

// Stats counts cache events.
type Stats struct {
	Accesses  int64
	Hits      int64
	Misses    int64
	Evictions int64
	Demotions int64 // blocks received by demotion (DEMOTE-LRU lower level)
}

// HitRate returns Hits/Accesses, or 0 for an idle cache.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// MissRate returns Misses/Accesses, or 0 for an idle cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Demotions += o.Demotions
}

// entry is an intrusive doubly-linked LRU list node.
type entry struct {
	id         BlockID
	prev, next *entry
}

// LRU is a fixed-capacity block cache with least-recently-used replacement.
// The zero value is not usable; construct with NewLRU.
type LRU struct {
	cap     int
	items   map[uint64]*entry
	head    *entry // most recently used
	tail    *entry // least recently used
	free    *entry // single-slot pool recycling evicted/removed nodes
	stats   Stats
	onEvict func(BlockID)
}

// NewLRU returns an empty cache holding at most capacity blocks.
// A capacity of 0 produces a cache that misses every access.
func NewLRU(capacity int) *LRU {
	if capacity < 0 {
		panic(fmt.Sprintf("cache: negative capacity %d", capacity))
	}
	return &LRU{cap: capacity, items: make(map[uint64]*entry, capacity)}
}

// SetEvictCallback registers a function invoked with each block evicted by
// capacity pressure (not by Remove). Used by DEMOTE-LRU to demote victims.
func (c *LRU) SetEvictCallback(f func(BlockID)) { c.onEvict = f }

// Capacity returns the maximum block count.
func (c *LRU) Capacity() int { return c.cap }

// Len returns the current block count.
func (c *LRU) Len() int { return len(c.items) }

// Stats returns the counters accumulated so far.
func (c *LRU) Stats() Stats { return c.stats }

// Contains reports whether b is cached, without touching recency or stats.
func (c *LRU) Contains(b BlockID) bool {
	_, ok := c.items[packBlockID(b)]
	return ok
}

// Access looks up block b, counting a hit or miss. On a hit the block
// becomes most recently used. On a miss the block is inserted, evicting
// the LRU victim if the cache is full. Returns whether the access hit.
func (c *LRU) Access(b BlockID) bool {
	key := packBlockID(b)
	c.stats.Accesses++
	if e, ok := c.items[key]; ok {
		c.stats.Hits++
		c.moveToFront(e)
		return true
	}
	c.stats.Misses++
	c.insert(b, key)
	return false
}

// Probe looks up block b counting a hit or miss but never inserts.
func (c *LRU) Probe(b BlockID) bool {
	c.stats.Accesses++
	if e, ok := c.items[packBlockID(b)]; ok {
		c.stats.Hits++
		c.moveToFront(e)
		return true
	}
	c.stats.Misses++
	return false
}

// Insert places b at the MRU position (inserting it if absent), evicting
// the LRU victim when full. No hit/miss is counted.
func (c *LRU) Insert(b BlockID) { c.insert(b, packBlockID(b)) }

func (c *LRU) insert(b BlockID, key uint64) {
	if e, ok := c.items[key]; ok {
		c.moveToFront(e)
		return
	}
	if c.cap == 0 {
		return
	}
	if len(c.items) >= c.cap {
		c.evictLRU()
	}
	e := c.free
	if e != nil {
		c.free = nil
		e.id = b
	} else {
		e = &entry{id: b}
	}
	c.items[key] = e
	c.pushFront(e)
}

// Remove deletes b from the cache if present (no eviction callback).
// Returns whether the block was present.
func (c *LRU) Remove(b BlockID) bool {
	key := packBlockID(b)
	e, ok := c.items[key]
	if !ok {
		return false
	}
	c.unlink(e)
	delete(c.items, key)
	c.free = e
	return true
}

// Reset clears contents and counters.
func (c *LRU) Reset() {
	c.items = make(map[uint64]*entry, c.cap)
	c.head, c.tail = nil, nil
	c.free = nil
	c.stats = Stats{}
}

func (c *LRU) evictLRU() {
	v := c.tail
	if v == nil {
		return
	}
	c.unlink(v)
	delete(c.items, packBlockID(v.id))
	c.stats.Evictions++
	id := v.id
	// Recycle the node before the callback runs: DEMOTE-LRU's demotion
	// path may immediately Insert into another (or this) cache.
	c.free = v
	if c.onEvict != nil {
		c.onEvict(id)
	}
}

func (c *LRU) moveToFront(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *LRU) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *LRU) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
