package cache

import (
	"math/rand"
	"testing"
)

func TestInclusiveLRUPath(t *testing.T) {
	m := NewInclusiveLRU(2, 1, 2, 4)
	// Cold read: disk; block now at both levels.
	if out := m.Read(0, 0, b(0, 1)); out.Level != HitDisk {
		t.Errorf("cold read level = %v", out.Level)
	}
	// Same I/O cache: io hit.
	if out := m.Read(0, 0, b(0, 1)); out.Level != HitIO {
		t.Errorf("warm read level = %v", out.Level)
	}
	// Different I/O cache, same storage: storage hit (inclusive keeps it).
	if out := m.Read(1, 0, b(0, 1)); out.Level != HitStorage {
		t.Errorf("cross-io read level = %v", out.Level)
	}
	io, st := m.IOStats(), m.StorageStats()
	if io.Accesses != 3 || io.Hits != 1 {
		t.Errorf("io stats = %+v", io)
	}
	if st.Accesses != 2 || st.Hits != 1 {
		t.Errorf("storage stats = %+v", st)
	}
}

func TestInclusiveLRUReset(t *testing.T) {
	m := NewInclusiveLRU(1, 1, 2, 2)
	m.Read(0, 0, b(0, 1))
	m.Reset()
	if m.IOStats().Accesses != 0 {
		t.Error("reset incomplete")
	}
	if out := m.Read(0, 0, b(0, 1)); out.Level != HitDisk {
		t.Error("cache content survived reset")
	}
}

func TestDemoteLRUExclusivity(t *testing.T) {
	m := NewDemoteLRU(1, 1, 2, 2)
	// Disk fill goes only to the I/O level.
	if out := m.Read(0, 0, b(0, 1)); out.Level != HitDisk {
		t.Error("cold read should be a disk read")
	}
	// Storage must NOT hold block 1 (exclusive).
	if m.st[0].Contains(b(0, 1)) {
		t.Error("disk fill leaked into the storage level")
	}
	// Fill the I/O cache; evictions demote.
	m.Read(0, 0, b(0, 2))
	m.Read(0, 0, b(0, 3)) // io holds {2,3}; 1 demoted to storage
	if !m.st[0].Contains(b(0, 1)) {
		t.Error("victim was not demoted")
	}
	if m.Demotions() != 1 {
		t.Errorf("demotions = %d, want 1", m.Demotions())
	}
	// Reading block 1 again: storage hit, block moves up (removed below).
	out := m.Read(0, 0, b(0, 1))
	if out.Level != HitStorage {
		t.Errorf("re-read level = %v, want storage", out.Level)
	}
	if m.st[0].Contains(b(0, 1)) {
		t.Error("block stayed in storage after promotion (not exclusive)")
	}
	if !m.io[0].Contains(b(0, 1)) {
		t.Error("promoted block missing from the I/O level")
	}
}

func TestDemoteLRUDemotionFlag(t *testing.T) {
	m := NewDemoteLRU(1, 1, 1, 4)
	m.Read(0, 0, b(0, 1))
	out := m.Read(0, 0, b(0, 2)) // io full ⇒ insert of 2 demotes 1
	if !out.Demoted {
		t.Error("demotion not reported in outcome")
	}
	if m.StorageStats().Demotions != 1 {
		t.Errorf("storage demotion count = %d", m.StorageStats().Demotions)
	}
}

// Aggregate effective capacity of DEMOTE exceeds inclusive: a cyclic trace
// slightly larger than one level but no larger than both levels combined
// hits more under DEMOTE.
func TestDemoteBeatsInclusiveOnLargeLoop(t *testing.T) {
	const capIO, capST, blocks, rounds = 8, 8, 14, 30
	run := func(m Manager) int64 {
		for r := 0; r < rounds; r++ {
			for i := 0; i < blocks; i++ {
				m.Read(0, 0, b(0, int64(i)))
			}
		}
		return m.IOStats().Hits + m.StorageStats().Hits
	}
	inc := run(NewInclusiveLRU(1, 1, capIO, capST))
	dem := run(NewDemoteLRU(1, 1, capIO, capST))
	if dem <= inc {
		t.Errorf("DEMOTE hits (%d) should exceed inclusive hits (%d) on a loop of %d blocks", dem, inc, blocks)
	}
}

func TestDemoteLRUReset(t *testing.T) {
	m := NewDemoteLRU(1, 1, 1, 1)
	m.Read(0, 0, b(0, 1))
	m.Read(0, 0, b(0, 2))
	m.Reset()
	if m.Demotions() != 0 || m.IOStats().Accesses != 0 {
		t.Error("reset incomplete")
	}
}

func karmaHints() []RangeHint {
	return []RangeHint{
		{File: 0, Start: 0, End: 4, FreqPerIO: []float64{100, 0}}, // hot at io 0
		{File: 0, Start: 4, End: 8, FreqPerIO: []float64{0, 100}}, // hot at io 1
		{File: 1, Start: 0, End: 16, FreqPerIO: []float64{5, 5}},  // lukewarm, large
		{File: 2, Start: 0, End: 64, FreqPerIO: []float64{1, 1}},  // cold, huge
	}
}

func TestKARMAPlacement(t *testing.T) {
	k := NewKARMA(2, 1, 8, 24, karmaHints())
	// io 0 should host range 0 (density 25), io 1 range 1.
	if k.allocIO[0][0] != 4 {
		t.Errorf("io0 allocation of range 0 = %d, want 4", k.allocIO[0][0])
	}
	if k.allocIO[1][1] != 4 {
		t.Errorf("io1 allocation of range 1 = %d, want 4", k.allocIO[1][1])
	}
	// Residual demand for range 2 (density 10/16) beats range 3; storage
	// cache should host it.
	if k.allocST[0][2] == 0 {
		t.Error("storage should host range 2")
	}
}

func TestKARMAReadPath(t *testing.T) {
	// io capacity 8 → 2 reserved for the residual partition, 6 for
	// ranges: the hot range fills the io partition exactly, so the cold
	// large range lands only at the storage level.
	k := NewKARMA(2, 1, 8, 24, []RangeHint{
		{File: 0, Start: 0, End: 6, FreqPerIO: []float64{100, 100}},
		{File: 1, Start: 0, End: 16, FreqPerIO: []float64{1, 1}},
	})
	// Block in range 0 through io 0: first read disk, then io hits.
	if out := k.Read(0, 0, b(0, 1)); out.Level != HitDisk {
		t.Errorf("cold = %v", out.Level)
	}
	if out := k.Read(0, 0, b(0, 1)); out.Level != HitIO {
		t.Errorf("warm = %v", out.Level)
	}
	// Block in range 1 (storage-placed): second access hits storage even
	// from a different I/O node.
	k.Read(0, 0, b(1, 3))
	if out := k.Read(1, 0, b(1, 3)); out.Level != HitStorage {
		t.Errorf("range-1 warm = %v", out.Level)
	}
	// Block outside every hint: served through the residual partition —
	// first touch goes to disk, the repeat hits the I/O-level stream
	// partition.
	if out := k.Read(0, 0, b(9, 0)); out.Level != HitDisk {
		t.Errorf("unhinted = %v", out.Level)
	}
	if out := k.Read(0, 0, b(9, 0)); out.Level != HitIO {
		t.Errorf("unhinted repeat = %v", out.Level)
	}
}

func TestKARMAExclusive(t *testing.T) {
	k := NewKARMA(1, 1, 4, 64, []RangeHint{
		{File: 0, Start: 0, End: 4, FreqPerIO: []float64{100}},
	})
	k.Read(0, 0, b(0, 0))
	// An io-placed range must never occupy storage partitions.
	for _, p := range k.partST[0] {
		if p.Contains(b(0, 0)) {
			t.Error("io-placed block cached at storage level")
		}
	}
}

func TestKARMARangeLookup(t *testing.T) {
	k := NewKARMA(1, 1, 8, 8, karmaHints())
	cases := []struct {
		blk  BlockID
		want int
	}{
		{b(0, 0), 0}, {b(0, 3), 0}, {b(0, 4), 1}, {b(0, 7), 1},
		{b(0, 8), -1}, {b(1, 15), 2}, {b(2, 63), 3}, {b(5, 0), -1},
	}
	for _, c := range cases {
		if got := k.rangeOf(c.blk); got != c.want {
			t.Errorf("rangeOf(%v) = %d, want %d", c.blk, got, c.want)
		}
	}
}

func TestKARMAStatsAndReset(t *testing.T) {
	k := NewKARMA(1, 1, 8, 8, karmaHints())
	k.Read(0, 0, b(0, 0))
	k.Read(0, 0, b(0, 0))
	s := k.IOStats()
	if s.Accesses != 2 || s.Hits != 1 {
		t.Errorf("io stats = %+v", s)
	}
	k.Reset()
	if k.IOStats().Accesses != 0 {
		t.Error("reset incomplete")
	}
	if k.Describe() == "" {
		t.Error("empty description")
	}
}

func TestNewByName(t *testing.T) {
	for _, name := range Names() {
		m, err := NewByName(name, 2, 2, 4, 4, karmaHints())
		if err != nil || m == nil {
			t.Errorf("NewByName(%q) failed: %v", name, err)
		}
	}
	if _, err := NewByName("bogus", 1, 1, 1, 1, nil); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestHitLevelString(t *testing.T) {
	if HitIO.String() != "io" || HitStorage.String() != "storage" || HitDisk.String() != "disk" {
		t.Error("HitLevel strings wrong")
	}
}

func TestRangeHintHelpers(t *testing.T) {
	h := RangeHint{Start: 2, End: 10, FreqPerIO: []float64{1, 2, 3}}
	if h.Blocks() != 8 || h.TotalFreq() != 6 {
		t.Errorf("Blocks=%d TotalFreq=%f", h.Blocks(), h.TotalFreq())
	}
}

// Randomized cross-check: under any interleaving, InclusiveLRU's storage
// cache sees exactly the io-level misses.
func TestInclusiveMissFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := NewInclusiveLRU(4, 2, 8, 16)
	for i := 0; i < 5000; i++ {
		m.Read(rng.Intn(4), rng.Intn(2), b(int32(rng.Intn(2)), int64(rng.Intn(200))))
	}
	if m.IOStats().Misses != m.StorageStats().Accesses {
		t.Errorf("storage accesses (%d) ≠ io misses (%d)",
			m.StorageStats().Accesses, m.IOStats().Misses)
	}
}
