package cache

import (
	"math/rand"
	"testing"
)

func benchTrace(n int) []BlockID {
	rng := rand.New(rand.NewSource(1))
	out := make([]BlockID, n)
	for i := range out {
		out[i] = BlockID{File: int32(rng.Intn(4)), Block: int64(rng.Intn(4096))}
	}
	return out
}

func BenchmarkLRUAccess(b *testing.B) {
	trace := benchTrace(1 << 16)
	c := NewLRU(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(trace[i%len(trace)])
	}
}

func BenchmarkMQAccess(b *testing.B) {
	trace := benchTrace(1 << 16)
	c := NewMQ(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(trace[i%len(trace)])
	}
}

func BenchmarkInclusiveLRURead(b *testing.B) {
	trace := benchTrace(1 << 16)
	m := NewInclusiveLRU(16, 4, 64, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Read(i%16, i%4, trace[i%len(trace)])
	}
}

func BenchmarkDemoteLRURead(b *testing.B) {
	trace := benchTrace(1 << 16)
	m := NewDemoteLRU(16, 4, 64, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Read(i%16, i%4, trace[i%len(trace)])
	}
}

func BenchmarkKARMARead(b *testing.B) {
	trace := benchTrace(1 << 16)
	var hints []RangeHint
	for f := int32(0); f < 4; f++ {
		for r := int64(0); r < 4096; r += 256 {
			freq := make([]float64, 16)
			for i := range freq {
				freq[i] = float64((int(f)*7 + int(r/256) + i) % 13)
			}
			hints = append(hints, RangeHint{File: f, Start: r, End: r + 256, FreqPerIO: freq})
		}
	}
	m := NewKARMA(16, 4, 64, 128, hints)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Read(i%16, i%4, trace[i%len(trace)])
	}
}
