package cache

import "container/list"

// MQ implements the Multi-Queue replacement algorithm of Zhou, Philbin &
// Li (USENIX ATC'01) — cited by the paper as the classic second-level
// buffer-cache policy (its related work [50]). MQ maintains m LRU queues
// Q0…Qm−1 partitioned by reference frequency (a block with 2^i ≤ refs <
// 2^(i+1) lives in Qi), an expiry mechanism that demotes blocks whose
// temporal distance has passed, and a history queue Qout remembering the
// reference counts of recently evicted blocks so that re-fetched blocks
// regain their frequency class.
type MQ struct {
	cap      int
	numQ     int
	lifeTime int64

	queues []*list.List // queues[i] front = LRU end
	items  map[uint64]*mqEntry
	out    *list.List // history (front = oldest)
	outMap map[uint64]*list.Element
	outCap int

	now   int64
	stats Stats
}

type mqEntry struct {
	id     BlockID
	refs   int64
	expire int64
	level  int
	elem   *list.Element
}

// NewMQ returns an MQ cache with the given capacity in blocks. numQueues
// and lifeTime follow the original paper's recommendations (8 queues;
// lifetime on the order of the cache's temporal distance — we use
// 2×capacity accesses). The history queue remembers 4×capacity evicted
// blocks.
func NewMQ(capacity int) *MQ {
	if capacity < 0 {
		panic("cache: negative capacity")
	}
	m := &MQ{
		cap:      capacity,
		numQ:     8,
		lifeTime: int64(2*capacity) + 1,
		items:    make(map[uint64]*mqEntry, capacity),
		out:      list.New(),
		outMap:   map[uint64]*list.Element{},
		outCap:   4 * capacity,
	}
	m.queues = make([]*list.List, m.numQ)
	for i := range m.queues {
		m.queues[i] = list.New()
	}
	return m
}

// queueFor returns the queue index for a reference count: floor(log2(refs))
// clamped to the top queue.
func (m *MQ) queueFor(refs int64) int {
	q := 0
	for refs > 1 && q < m.numQ-1 {
		refs >>= 1
		q++
	}
	return q
}

// adjust demotes expired blocks: any queue head whose expire time passed
// moves to the tail of the next lower queue with a fresh lifetime.
func (m *MQ) adjust() {
	for i := 1; i < m.numQ; i++ {
		for m.queues[i].Len() > 0 {
			e := m.queues[i].Front().Value.(*mqEntry)
			if e.expire > m.now {
				break
			}
			m.queues[i].Remove(e.elem)
			e.level = i - 1
			e.expire = m.now + m.lifeTime
			e.elem = m.queues[i-1].PushBack(e)
		}
	}
}

// Access looks up block b; on a miss the block is inserted (restoring any
// remembered reference count), evicting from the lowest non-empty queue
// when full. Returns whether the access hit.
func (m *MQ) Access(b BlockID) bool {
	key := packBlockID(b)
	m.now++
	m.adjust()
	m.stats.Accesses++
	if e, ok := m.items[key]; ok {
		m.stats.Hits++
		e.refs++
		m.queues[e.level].Remove(e.elem)
		e.level = m.queueFor(e.refs)
		e.expire = m.now + m.lifeTime
		e.elem = m.queues[e.level].PushBack(e)
		return true
	}
	m.stats.Misses++
	m.insertKey(b, key)
	return false
}

// Contains reports residency without touching state.
func (m *MQ) Contains(b BlockID) bool {
	_, ok := m.items[packBlockID(b)]
	return ok
}

func (m *MQ) insert(b BlockID) { m.insertKey(b, packBlockID(b)) }

func (m *MQ) insertKey(b BlockID, key uint64) {
	if m.cap == 0 {
		return
	}
	refs := int64(1)
	if el, ok := m.outMap[key]; ok {
		refs = el.Value.(*mqHist).refs + 1
		m.out.Remove(el)
		delete(m.outMap, key)
	}
	if len(m.items) >= m.cap {
		m.evict()
	}
	e := &mqEntry{id: b, refs: refs, expire: m.now + m.lifeTime}
	e.level = m.queueFor(refs)
	e.elem = m.queues[e.level].PushBack(e)
	m.items[key] = e
}

type mqHist struct {
	id   BlockID
	refs int64
}

func (m *MQ) evict() {
	for i := 0; i < m.numQ; i++ {
		if m.queues[i].Len() == 0 {
			continue
		}
		e := m.queues[i].Front().Value.(*mqEntry)
		m.queues[i].Remove(e.elem)
		key := packBlockID(e.id)
		delete(m.items, key)
		m.stats.Evictions++
		// Remember the evicted block's frequency in Qout.
		if m.outCap > 0 {
			if m.out.Len() >= m.outCap {
				old := m.out.Front()
				delete(m.outMap, packBlockID(old.Value.(*mqHist).id))
				m.out.Remove(old)
			}
			m.outMap[key] = m.out.PushBack(&mqHist{id: e.id, refs: e.refs})
		}
		return
	}
}

// Len returns the resident block count.
func (m *MQ) Len() int { return len(m.items) }

// Capacity returns the maximum block count.
func (m *MQ) Capacity() int { return m.cap }

// Stats returns the accumulated counters.
func (m *MQ) Stats() Stats { return m.stats }

// Reset clears contents, history and counters.
func (m *MQ) Reset() {
	for i := range m.queues {
		m.queues[i] = list.New()
	}
	m.items = make(map[uint64]*mqEntry, m.cap)
	m.out = list.New()
	m.outMap = map[uint64]*list.Element{}
	m.now = 0
	m.stats = Stats{}
}

// InclusiveMQ pairs LRU I/O caches with MQ storage caches — the
// configuration the MQ paper targets (MQ at the second level, where
// temporal locality is filtered by the level above).
type InclusiveMQ struct {
	io []*LRU
	st []*MQ
}

// NewInclusiveMQ builds the policy.
func NewInclusiveMQ(nIO, nStorage, capIO, capStorage int) *InclusiveMQ {
	m := &InclusiveMQ{}
	for i := 0; i < nIO; i++ {
		m.io = append(m.io, NewLRU(capIO))
	}
	for i := 0; i < nStorage; i++ {
		m.st = append(m.st, NewMQ(capStorage))
	}
	return m
}

// Read implements Manager.
func (m *InclusiveMQ) Read(io, st int, b BlockID) Outcome {
	if m.io[io].Access(b) {
		return Outcome{Level: HitIO}
	}
	if m.st[st].Access(b) {
		return Outcome{Level: HitStorage}
	}
	return Outcome{Level: HitDisk}
}

// PrefetchStorage implements Prefetcher.
func (m *InclusiveMQ) PrefetchStorage(st int, b BlockID) bool {
	if m.st[st].Contains(b) {
		return false
	}
	m.st[st].insert(b)
	return true
}

// Name implements Manager.
func (m *InclusiveMQ) Name() string { return "MQ" }

// IOStats implements Manager.
func (m *InclusiveMQ) IOStats() Stats { return aggregate(m.io) }

// StorageStats implements Manager.
func (m *InclusiveMQ) StorageStats() Stats {
	var s Stats
	for _, c := range m.st {
		s.Add(c.Stats())
	}
	return s
}

// IONodeStats implements NodeStatsReporter.
func (m *InclusiveMQ) IONodeStats() []Stats { return perNode(m.io) }

// StorageNodeStats implements NodeStatsReporter.
func (m *InclusiveMQ) StorageNodeStats() []Stats {
	out := make([]Stats, len(m.st))
	for i, c := range m.st {
		out[i] = c.Stats()
	}
	return out
}

// Reset implements Manager.
func (m *InclusiveMQ) Reset() {
	for _, c := range m.io {
		c.Reset()
	}
	for _, c := range m.st {
		c.Reset()
	}
}

var _ Manager = (*InclusiveMQ)(nil)
