package cache

// This file splits Manager.Read into its two per-level halves so the
// simulator's sharded engine can run them on different workers: the I/O
// stage touches only the caches of one I/O node, the storage stage only
// the caches of one storage node. The contract is exact equivalence: for
// any request, ReadIO followed by ReadStorage (when the I/O stage neither
// hit nor bypassed the storage cache) performs the same operations on the
// same caches in the same order as one Read call, so a schedule that
// drives every cache in the same per-cache operation order as the serial
// engine reproduces its state and statistics bit for bit.

// StageIO is the I/O-node stage result of a staged read.
type StageIO struct {
	// HitIO: the request was served at the I/O cache; the storage stage
	// is skipped entirely.
	HitIO bool
	// SkipStorage: the block's range is placed at the I/O level (KARMA's
	// exclusive placement), so the miss bypasses the storage cache and
	// goes straight to the device.
	SkipStorage bool
	// Demoted/Victim: the I/O-level insertion evicted a victim that must
	// be demoted into the storage cache on the request path (DEMOTE-LRU).
	// The storage stage applies the demotion before its own lookup,
	// matching the serial eviction-callback order.
	Demoted bool
	Victim  BlockID
	// Route carries policy-private routing from the I/O stage to the
	// storage stage (KARMA's hint-range index; -1 = residual partition).
	Route int
	// Evictions counts capacity evictions this stage performed, so the
	// sharded engine can replay the eviction-storm detector exactly.
	Evictions int64
}

// StageStorage is the storage-node stage result of a staged read.
type StageStorage struct {
	// Hit: the storage cache served the block (HitStorage); otherwise the
	// request goes to the device (HitDisk).
	Hit bool
	// Evictions counts capacity evictions this stage performed, including
	// any demotion insert.
	Evictions int64
}

// StagedManager is implemented by policies whose Read decomposes into
// node-local stages. All built-in policies implement it. The staged
// methods may be called concurrently as long as no two concurrent ReadIO
// calls share an I/O node and no two concurrent ReadStorage calls share a
// storage node — the partition the sharded engine maintains.
type StagedManager interface {
	Manager
	// ReadIO performs the I/O-cache half of Read(io, st, b). st is the
	// effective storage node of the request path (after any failover);
	// policies with static placement use it to decide routing only — they
	// must not touch storage-node state.
	ReadIO(io, st int, b BlockID) StageIO
	// ReadStorage performs the storage-cache half, given the I/O stage's
	// result. Never called when s.HitIO or s.SkipStorage.
	ReadStorage(st int, b BlockID, s StageIO) StageStorage
}

// ---- InclusiveLRU ----

// ReadIO implements StagedManager.
func (m *InclusiveLRU) ReadIO(io, st int, b BlockID) StageIO {
	c := m.io[io]
	ev := c.stats.Evictions
	hit := c.Access(b)
	return StageIO{HitIO: hit, Evictions: c.stats.Evictions - ev}
}

// ReadStorage implements StagedManager.
func (m *InclusiveLRU) ReadStorage(st int, b BlockID, s StageIO) StageStorage {
	c := m.st[st]
	ev := c.stats.Evictions
	hit := c.Access(b)
	return StageStorage{Hit: hit, Evictions: c.stats.Evictions - ev}
}

// ---- DemoteLRU ----

// ReadIO implements StagedManager. The I/O cache's eviction callback runs
// in capture mode: instead of inserting the victim into a storage cache
// (which belongs to another worker's shard), it is recorded in the
// per-I/O-node slot and carried to the storage stage in the StageIO.
func (m *DemoteLRU) ReadIO(io, st int, b BlockID) StageIO {
	c := m.io[io]
	ev := c.stats.Evictions
	m.capture[io], m.hasVictim[io] = true, false
	hit := c.Access(b)
	m.capture[io] = false
	s := StageIO{HitIO: hit, Evictions: c.stats.Evictions - ev}
	if m.hasVictim[io] {
		s.Demoted, s.Victim = true, m.victim[io]
	}
	return s
}

// ReadStorage implements StagedManager: the demotion insert lands before
// the probe, exactly as the serial eviction callback fires before
// Read's storage lookup — the victim can evict the probed block itself,
// and that order is part of the policy's observable behavior.
func (m *DemoteLRU) ReadStorage(st int, b BlockID, s StageIO) StageStorage {
	c := m.st[st]
	ev := c.stats.Evictions
	if s.Demoted {
		c.Insert(s.Victim)
		c.stats.Demotions++
	}
	hit := c.Probe(b)
	if hit {
		c.Remove(b) // exclusive: reading up removes the lower copy
	}
	return StageStorage{Hit: hit, Evictions: c.stats.Evictions - ev}
}

// ---- KARMA ----

// ReadIO implements StagedManager. Placement is static, so the stage can
// decide from read-only allocation state whether the storage level will
// be involved at all: ranges placed at this I/O cache bypass it
// (SkipStorage), ranges placed at storage cache st route to their
// partition (Route ≥ 0, no I/O-level state touched — matching serial
// Read, which consults the residual I/O partition only for unplaced
// traffic), and everything else flows through the residual partitions.
func (k *KARMA) ReadIO(io, st int, b BlockID) StageIO {
	if r := k.rangeOf(b); r >= 0 {
		if p, ok := k.partIO[io][r]; ok {
			ev := p.stats.Evictions
			hit := p.Access(b)
			return StageIO{HitIO: hit, SkipStorage: true, Route: r, Evictions: p.stats.Evictions - ev}
		}
		if _, ok := k.partST[st][r]; ok {
			return StageIO{Route: r}
		}
	}
	c := k.streamIO[io]
	ev := c.stats.Evictions
	hit := c.Access(b)
	return StageIO{HitIO: hit, Route: -1, Evictions: c.stats.Evictions - ev}
}

// ReadStorage implements StagedManager.
func (k *KARMA) ReadStorage(st int, b BlockID, s StageIO) StageStorage {
	c := k.streamST[st]
	if s.Route >= 0 {
		c = k.partST[st][s.Route] // present: ReadIO routed here
	}
	ev := c.stats.Evictions
	hit := c.Access(b)
	return StageStorage{Hit: hit, Evictions: c.stats.Evictions - ev}
}

// ---- InclusiveMQ ----

// ReadIO implements StagedManager.
func (m *InclusiveMQ) ReadIO(io, st int, b BlockID) StageIO {
	c := m.io[io]
	ev := c.stats.Evictions
	hit := c.Access(b)
	return StageIO{HitIO: hit, Evictions: c.stats.Evictions - ev}
}

// ReadStorage implements StagedManager.
func (m *InclusiveMQ) ReadStorage(st int, b BlockID, s StageIO) StageStorage {
	c := m.st[st]
	ev := c.stats.Evictions
	hit := c.Access(b)
	return StageStorage{Hit: hit, Evictions: c.stats.Evictions - ev}
}

var (
	_ StagedManager = (*InclusiveLRU)(nil)
	_ StagedManager = (*DemoteLRU)(nil)
	_ StagedManager = (*KARMA)(nil)
	_ StagedManager = (*InclusiveMQ)(nil)
)
