// Package parallel implements the loop parallelization and distribution
// strategy of paper §3: the iteration space of each nest is evenly cut into
// iteration blocks by hyperplanes orthogonal to a chosen loop u, and the
// blocks are assigned to threads round-robin in thread order. It also
// provides the thread→compute-node mappings evaluated in Fig. 7(b).
package parallel

import (
	"fmt"

	"flopt/internal/linalg"
	"flopt/internal/poly"
)

// Plan is the parallelization of a single loop nest for a given thread
// count: `x = NumBlocks` iteration blocks along loop U, block b handled by
// thread b mod Threads.
type Plan struct {
	Nest      *poly.LoopNest
	U         int   // parallelized loop (index into Nest.Loops)
	Lo, Hi    int64 // inclusive bounds of loop U (evaluated rectangularly)
	Threads   int
	NumBlocks int
	BlockSize int64 // iterations of loop U per block (last block may be short)
}

// NewPlan builds the parallelization plan for nest with the given thread
// count. blocksPerThread scales the number of iteration blocks
// (x = threads·blocksPerThread); the paper's default distribution uses one
// block per thread. The bounds of loop U are evaluated with enclosing
// iterators at their own lower bounds, which is exact for rectangular
// nests.
func NewPlan(nest *poly.LoopNest, threads, blocksPerThread int) (*Plan, error) {
	if threads < 1 {
		return nil, fmt.Errorf("parallel: thread count %d < 1", threads)
	}
	if blocksPerThread < 1 {
		blocksPerThread = 1
	}
	u := nest.ParallelLoop
	outer := make(linalg.Vec, 0, u)
	for k := 0; k < u; k++ {
		lo, _ := nest.Bounds(k, outer)
		outer = append(outer, lo)
	}
	lo, hi := nest.Bounds(u, outer)
	if hi < lo {
		return nil, fmt.Errorf("parallel: loop %d has empty range [%d, %d]", u, lo, hi)
	}
	span := hi - lo + 1
	x := threads * blocksPerThread
	if int64(x) > span {
		x = int(span)
	}
	bs := (span + int64(x) - 1) / int64(x)
	// Recompute the effective block count: ceil division may leave trailing
	// blocks empty (e.g. span 10, x 8 ⇒ bs 2 ⇒ only 5 blocks used).
	x = int((span + bs - 1) / bs)
	return &Plan{Nest: nest, U: u, Lo: lo, Hi: hi, Threads: threads, NumBlocks: x, BlockSize: bs}, nil
}

// BlockOf returns the iteration-block index (0-based) of a value of the
// parallelized iterator.
func (p *Plan) BlockOf(uVal int64) int {
	if uVal < p.Lo || uVal > p.Hi {
		panic(fmt.Sprintf("parallel: iterator value %d outside [%d, %d]", uVal, p.Lo, p.Hi))
	}
	return int((uVal - p.Lo) / p.BlockSize)
}

// ThreadOfBlock returns the thread that executes iteration block b
// (round-robin assignment in thread order, paper §3).
func (p *Plan) ThreadOfBlock(b int) int { return b % p.Threads }

// ThreadOf returns the thread that executes the iteration with the given
// value of the parallelized iterator.
func (p *Plan) ThreadOf(uVal int64) int { return p.ThreadOfBlock(p.BlockOf(uVal)) }

// IterationHyperplane returns the iteration-space hyperplane vector h_I: the
// unit normal selecting loop U.
func (p *Plan) IterationHyperplane() linalg.Vec {
	return poly.UnitNormal(p.Nest.Depth(), p.U)
}

// BlocksOfThread returns the iteration-block indices owned by thread t, in
// execution order.
func (p *Plan) BlocksOfThread(t int) []int {
	var out []int
	for b := t; b < p.NumBlocks; b += p.Threads {
		out = append(out, b)
	}
	return out
}

// Mapping is a thread→compute-node assignment. The paper's Mapping I is the
// identity; Mappings II–IV are fixed pseudo-random permutations.
type Mapping struct {
	Name string
	perm []int
}

// IdentityMapping returns the default mapping (thread t on node t).
func IdentityMapping(n int) Mapping {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	return Mapping{Name: "Mapping I", perm: perm}
}

// PermutedMapping returns a deterministic pseudo-random permutation mapping
// derived from seed. Distinct seeds give distinct (but reproducible)
// permutations; seed 0 returns the identity.
func PermutedMapping(name string, n int, seed uint64) Mapping {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	if seed != 0 {
		s := seed
		for i := n - 1; i > 0; i-- {
			// xorshift64* step; cheap, deterministic, dependency-free.
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			j := int(s % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	return Mapping{Name: name, perm: perm}
}

// StandardMappings returns the four thread-to-compute-node mappings of
// Fig. 7(b) for n threads.
func StandardMappings(n int) []Mapping {
	return []Mapping{
		IdentityMapping(n),
		PermutedMapping("Mapping II", n, 0x9E3779B97F4A7C15),
		PermutedMapping("Mapping III", n, 0xD1B54A32D192ED03),
		PermutedMapping("Mapping IV", n, 0x2545F4914F6CDD1D),
	}
}

// MappingFromPerm builds a mapping from an explicit thread→slot
// permutation, validating it.
func MappingFromPerm(name string, perm []int) (Mapping, error) {
	m := Mapping{Name: name, perm: append([]int(nil), perm...)}
	if err := m.Validate(); err != nil {
		return Mapping{}, err
	}
	return m, nil
}

// Node returns the compute node that runs thread t.
func (m Mapping) Node(t int) int { return m.perm[t] }

// Len returns the number of threads covered by the mapping.
func (m Mapping) Len() int { return len(m.perm) }

// Validate checks that the mapping is a permutation.
func (m Mapping) Validate() error {
	seen := make([]bool, len(m.perm))
	for _, p := range m.perm {
		if p < 0 || p >= len(m.perm) || seen[p] {
			return fmt.Errorf("parallel: mapping %q is not a permutation", m.Name)
		}
		seen[p] = true
	}
	return nil
}
