package parallel

import (
	"testing"
	"testing/quick"

	"flopt/internal/linalg"
	"flopt/internal/poly"
)

func nest2d(n int64, u int) *poly.LoopNest {
	a := &poly.Array{Name: "A", Dims: []int64{n, n}}
	return &poly.LoopNest{
		Loops: []poly.Loop{
			{Name: "i", Lower: poly.Constant(0), Upper: poly.Constant(n - 1)},
			{Name: "j", Lower: poly.Constant(0), Upper: poly.Constant(n - 1)},
		},
		ParallelLoop: u,
		Refs: []*poly.Reference{{
			Array: a, Q: linalg.Identity(2), Offset: linalg.Vec{0, 0},
		}},
	}
}

func TestNewPlanEvenSplit(t *testing.T) {
	p, err := NewPlan(nest2d(64, 0), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBlocks != 4 || p.BlockSize != 16 {
		t.Fatalf("blocks=%d size=%d, want 4/16", p.NumBlocks, p.BlockSize)
	}
	if p.ThreadOf(0) != 0 || p.ThreadOf(15) != 0 || p.ThreadOf(16) != 1 || p.ThreadOf(63) != 3 {
		t.Error("thread assignment wrong")
	}
}

func TestNewPlanRoundRobin(t *testing.T) {
	p, err := NewPlan(nest2d(64, 0), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBlocks != 16 || p.BlockSize != 4 {
		t.Fatalf("blocks=%d size=%d, want 16/4", p.NumBlocks, p.BlockSize)
	}
	// Block b → thread b%4; iterator 4..7 is block 1 → thread 1,
	// iterator 16..19 is block 4 → thread 0 again.
	if p.ThreadOf(5) != 1 || p.ThreadOf(17) != 0 || p.ThreadOf(63) != 3 {
		t.Error("round-robin assignment wrong")
	}
	if got := p.BlocksOfThread(2); len(got) != 4 || got[0] != 2 || got[3] != 14 {
		t.Errorf("BlocksOfThread(2) = %v", got)
	}
}

func TestNewPlanUnevenLastBlock(t *testing.T) {
	p, err := NewPlan(nest2d(10, 0), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// span 10 over 4 blocks ⇒ block size 3, so only 4 blocks (last short).
	if p.BlockSize != 3 || p.NumBlocks != 4 {
		t.Fatalf("size=%d blocks=%d", p.BlockSize, p.NumBlocks)
	}
	if p.ThreadOf(9) != 3 {
		t.Errorf("last iteration on thread %d, want 3", p.ThreadOf(9))
	}
}

func TestNewPlanMoreThreadsThanIterations(t *testing.T) {
	p, err := NewPlan(nest2d(3, 0), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBlocks != 3 || p.BlockSize != 1 {
		t.Fatalf("blocks=%d size=%d, want 3/1", p.NumBlocks, p.BlockSize)
	}
}

func TestNewPlanInnerParallelLoop(t *testing.T) {
	p, err := NewPlan(nest2d(32, 1), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.U != 1 {
		t.Errorf("U = %d, want 1", p.U)
	}
	h := p.IterationHyperplane()
	if !h.Equal(linalg.Vec{0, 1}) {
		t.Errorf("h_I = %v, want (0, 1)", h)
	}
}

func TestNewPlanErrors(t *testing.T) {
	if _, err := NewPlan(nest2d(8, 0), 0, 1); err == nil {
		t.Error("zero threads accepted")
	}
	bad := nest2d(8, 0)
	bad.Loops[0].Upper = poly.Constant(-1)
	if _, err := NewPlan(bad, 2, 1); err == nil {
		t.Error("empty range accepted")
	}
}

func TestBlockOfPanicsOutOfRange(t *testing.T) {
	p, _ := NewPlan(nest2d(8, 0), 2, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p.BlockOf(99)
}

// Every iteration must land on exactly one thread, and each thread's share
// must be within one block of even.
func TestPlanCoversAllIterations(t *testing.T) {
	f := func(nSeed, tSeed, bSeed uint8) bool {
		n := int64(nSeed%60) + 4
		threads := int(tSeed%7) + 1
		bpt := int(bSeed%3) + 1
		p, err := NewPlan(nest2d(n, 0), threads, bpt)
		if err != nil {
			return false
		}
		counts := make([]int64, threads)
		for v := p.Lo; v <= p.Hi; v++ {
			th := p.ThreadOf(v)
			if th < 0 || th >= threads {
				return false
			}
			counts[th]++
		}
		var total int64
		maxShare := int64(0)
		for _, c := range counts {
			total += c
			if c > maxShare {
				maxShare = c
			}
		}
		if total != n {
			return false
		}
		// No thread may own more than ceil(blocksOwned)·blockSize iterations.
		blocksPerThread := int64((p.NumBlocks + threads - 1) / threads)
		return maxShare <= blocksPerThread*p.BlockSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIdentityMapping(t *testing.T) {
	m := IdentityMapping(8)
	for i := 0; i < 8; i++ {
		if m.Node(i) != i {
			t.Fatalf("identity mapping moved thread %d to %d", i, m.Node(i))
		}
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}

func TestStandardMappings(t *testing.T) {
	ms := StandardMappings(64)
	if len(ms) != 4 {
		t.Fatalf("got %d mappings", len(ms))
	}
	for _, m := range ms {
		if m.Len() != 64 {
			t.Errorf("%s has length %d", m.Name, m.Len())
		}
		if err := m.Validate(); err != nil {
			t.Error(err)
		}
	}
	// Mappings II–IV must differ from identity and from each other.
	for a := 1; a < 4; a++ {
		same := true
		for i := 0; i < 64; i++ {
			if ms[a].Node(i) != i {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s equals identity", ms[a].Name)
		}
		for b := a + 1; b < 4; b++ {
			same := true
			for i := 0; i < 64; i++ {
				if ms[a].Node(i) != ms[b].Node(i) {
					same = false
					break
				}
			}
			if same {
				t.Errorf("%s equals %s", ms[a].Name, ms[b].Name)
			}
		}
	}
}

func TestPermutedMappingDeterministic(t *testing.T) {
	a := PermutedMapping("x", 32, 12345)
	b := PermutedMapping("x", 32, 12345)
	for i := 0; i < 32; i++ {
		if a.Node(i) != b.Node(i) {
			t.Fatal("same seed gave different permutations")
		}
	}
}
