package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"flopt/internal/service/api"
)

// Durability layer: floptd's state — the compiled-layout catalog and the
// accepted-simulate-job ledger — survives crashes through two journals
// rooted at Config.DataDir:
//
//	layouts.snap  snapshot: one api.LayoutRecord per resident layout (JSONL)
//	layouts.wal   write-ahead journal of compiles since the snapshot
//	jobs.wal      job journal: accept / start / done records (JSONL)
//
// Compiled layouts are content-addressed (the ID is a hash of source +
// layout-relevant config), so a layout record needs only the inputs:
// replay is recompilation, and the recomputed ID cross-checks the
// recorded one. Jobs follow a classic accepted/started/completed ledger:
// any accept without a terminal done record is re-enqueued on recovery,
// which is exactly the "zero accepted-job loss" invariant — a job ID
// handed to a client always reaches a terminal state, crash or not.
//
// Write ordering is what makes the invariants hold: a compile enters the
// cache only after its record is journaled (journal failure fails the
// build, so clients are never handed an ID that could vanish), and a
// simulate submission is journaled before its 202 is written. Records
// are single write(2) calls of complete JSON lines — a kill -9 can lose
// at most a torn final line, which replay skips. fsync is deliberately
// omitted: the drill's crash model is process death, not power loss.

const (
	layoutSnapFile = "layouts.snap"
	layoutWALFile  = "layouts.wal"
	jobWALFile     = "jobs.wal"
)

// Layout records are journaled in their wire form (api.LayoutRecord):
// the inputs only. Config holds every field the optimizer (and the
// content hash) consults; replay applies it over the daemon's base
// platform and recompiles — the same record a cluster peer fetches over
// GET /v1/layouts/{id} for a cache fill.

// Job journal ops, in lifecycle order. "start" records are forensic
// (they distinguish lost-from-queue from lost-mid-run in a post-mortem);
// recovery keys only on accept-without-done.
const (
	jobOpAccept = "accept"
	jobOpStart  = "start"
	jobOpDone   = "done"
)

// jobRecord is one job-journal line.
type jobRecord struct {
	Op     string               `json:"op"`
	ID     string               `json:"id"`
	Layout string               `json:"layout,omitempty"`
	Req    *api.SimulateRequest `json:"req,omitempty"`
	State  string               `json:"state,omitempty"` // done | failed, op=done only
	Err    string               `json:"err,omitempty"`
}

// errJournal marks journal write failures (including chaos-injected disk
// faults); callers map it to kindUnavailable.
var errJournal = errors.New("service: journal write failed")

// persister owns the journal files. All writes serialize on mu; reads
// (recovery) happen before the server accepts traffic.
type persister struct {
	dir string
	met *metrics

	// failWrite, when set, is consulted before every append — the chaos
	// harness injects deterministic disk-write failures through it.
	failWrite func() error

	mu         sync.Mutex
	layoutW    *os.File
	jobW       *os.File
	walRecords int // layout WAL records since the last snapshot
	replaying  bool
	closed     bool
}

// newPersister opens (creating if needed) the data directory and its
// journal files for appending.
func newPersister(dir string, met *metrics) (*persister, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: data dir: %w", err)
	}
	p := &persister{dir: dir, met: met}
	var err error
	if p.layoutW, err = openAppend(filepath.Join(dir, layoutWALFile)); err != nil {
		return nil, err
	}
	if p.jobW, err = openAppend(filepath.Join(dir, jobWALFile)); err != nil {
		p.layoutW.Close()
		return nil, err
	}
	p.walRecords = countLines(filepath.Join(dir, layoutWALFile))
	return p, nil
}

func openAppend(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: journal %s: %w", filepath.Base(path), err)
	}
	return f, nil
}

func countLines(path string) int {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	n := 0
	for _, c := range b {
		if c == '\n' {
			n++
		}
	}
	return n
}

// appendRecord writes one JSON line to f. A complete line lands in a
// single write(2) call, so concurrent appenders (serialized by mu
// anyway) and crashes can tear at most the final record.
func (p *persister) appendRecord(f *os.File, v any) error {
	if p.failWrite != nil {
		if err := p.failWrite(); err != nil {
			p.met.inc(mJournalErrors)
			return fmt.Errorf("%w: %v", errJournal, err)
		}
	}
	line, err := json.Marshal(v)
	if err != nil {
		p.met.inc(mJournalErrors)
		return fmt.Errorf("%w: %v", errJournal, err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		p.met.inc(mJournalErrors)
		return fmt.Errorf("%w: %v", errJournal, err)
	}
	p.met.inc(mJournalRecords)
	return nil
}

// appendLayout journals one compiled layout. No-ops while replaying
// (recovery re-runs the same build path that journals live compiles).
func (p *persister) appendLayout(rec api.LayoutRecord) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.replaying || p.closed {
		return nil
	}
	if err := p.appendRecord(p.layoutW, rec); err != nil {
		return err
	}
	p.walRecords++
	return nil
}

// appendJob journals one job-lifecycle record.
func (p *persister) appendJob(rec jobRecord) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("%w: persister closed", errJournal)
	}
	return p.appendRecord(p.jobW, rec)
}

// setFailWrite swaps the write-failure hook under the journal lock
// (tests inject targeted failures after construction; New wires the
// chaos hook before any appender goroutine exists).
func (p *persister) setFailWrite(f func() error) {
	p.mu.Lock()
	p.failWrite = f
	p.mu.Unlock()
}

// setReplaying toggles replay mode, during which appendLayout no-ops.
func (p *persister) setReplaying(on bool) {
	p.mu.Lock()
	p.replaying = on
	p.mu.Unlock()
}

// walSize returns the layout-WAL record count since the last snapshot
// (the snapshot trigger).
func (p *persister) walSize() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.walRecords
}

// readRecords decodes a JSONL file into out-typed records, skipping a
// torn (unparseable) final line; a torn line anywhere else is also
// skipped rather than aborting replay.
func readJSONL[T any](path string) ([]T, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	var out []T
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec T
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // torn or corrupt record: skip, keep replaying
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

// loadLayouts returns the journaled layout set: snapshot then WAL,
// deduplicated by ID with first-occurrence order preserved (order
// matters: the LRU replays oldest-first so recency survives restarts).
func (p *persister) loadLayouts() ([]api.LayoutRecord, error) {
	snap, err := readJSONL[api.LayoutRecord](filepath.Join(p.dir, layoutSnapFile))
	if err != nil {
		return nil, err
	}
	wal, err := readJSONL[api.LayoutRecord](filepath.Join(p.dir, layoutWALFile))
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(snap)+len(wal))
	out := make([]api.LayoutRecord, 0, len(snap)+len(wal))
	for _, rec := range append(snap, wal...) {
		if rec.ID == "" || seen[rec.ID] {
			continue
		}
		seen[rec.ID] = true
		out = append(out, rec)
	}
	return out, nil
}

// loadJobs returns every job-journal record in append order.
func (p *persister) loadJobs() ([]jobRecord, error) {
	return readJSONL[jobRecord](filepath.Join(p.dir, jobWALFile))
}

// snapshotLayouts compacts the layout journal: the current record set,
// filtered by keep (residency in the compile cache), becomes the new
// snapshot — written to a temp file and atomically renamed — and the WAL
// is truncated. On any error the WAL is left untouched, so no record is
// ever lost to a failed snapshot.
func (p *persister) snapshotLayouts(keep func(id string) bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	recs, err := p.loadLayouts()
	if err != nil {
		return err
	}
	tmp := filepath.Join(p.dir, layoutSnapFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, rec := range recs {
		if keep != nil && !keep(rec.ID) {
			continue
		}
		if err := enc.Encode(rec); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(p.dir, layoutSnapFile)); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := p.layoutW.Truncate(0); err != nil {
		return err
	}
	if _, err := p.layoutW.Seek(0, 0); err != nil {
		return err
	}
	p.walRecords = 0
	p.met.inc(mJournalSnapshots)
	return nil
}

// compactJobs atomically rewrites the job journal to the given record
// set (the live ledger: an accept per retained job plus a done per
// terminal one), dropping the full lifecycle history.
func (p *persister) compactJobs(recs []jobRecord) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	path := filepath.Join(p.dir, jobWALFile)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Reopen the appender on the new inode; the old one points at the
	// renamed-over file.
	p.jobW.Close()
	p.jobW, err = openAppend(path)
	return err
}

// close flushes nothing (writes are unbuffered) and closes the files.
// Idempotent: the test harness and floptd both close defensively.
func (p *persister) close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	err1 := p.layoutW.Close()
	err2 := p.jobW.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
