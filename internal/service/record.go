package service

import (
	"net/http"

	"flopt/internal/service/api"
	"flopt/internal/workload"
	"flopt/internal/workloads"
)

// sourceProgram maps built-in workload sources back to their names, so
// the offsets and simulate handlers — which see only a layout's source —
// can record the program a request exercised. Built once: the workload
// catalog is immutable.
var sourceProgram = func() map[string]string {
	m := make(map[string]string)
	for _, wl := range workloads.All() {
		m[wl.Source] = wl.Name
	}
	return m
}()

// sloClass extracts and sanitizes the request's SLO class: empty when
// the header is absent, "other" when it fails the identifier rules that
// keep classes embeddable in flat metric names.
func sloClass(r *http.Request) string {
	class := r.Header.Get(api.HeaderSLOClass)
	if class == "" {
		return ""
	}
	if !validClass(class) {
		return "other"
	}
	return class
}

// validClass mirrors the workload spec's identifier charset:
// [a-z0-9_-], 1–32 chars.
func validClass(s string) bool {
	if len(s) == 0 || len(s) > 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_' || c == '-' {
			continue
		}
		return false
	}
	return true
}

// record appends one served request to the -record trace. Recording is
// a per-node account of executed traffic: a cluster node records what it
// served, including peer-forwarded requests (whose workload headers the
// forward propagated), while the entry node that forwarded them away
// does not. Requests marked api.HeaderNoRecord (the load generator's
// setup compiles) are skipped, as are requests whose program has no
// built-in name — a trace line must name a replayable program.
func (s *Server) record(r *http.Request, kind, program string) {
	if s.rec == nil || r.Header.Get(api.HeaderNoRecord) != "" {
		return
	}
	if program == "" {
		s.met.inc(mTraceSkipped)
		return
	}
	class := sloClass(r)
	if err := s.rec.Append(kind, r.Header.Get(api.HeaderClient), class, program); err != nil {
		s.met.inc(mTraceErrors)
		return
	}
	s.met.inc(mTraceRecords)
}

// recordLayout is record for the handlers that hold a layout entry
// rather than a request's program name.
func (s *Server) recordLayout(r *http.Request, kind string, ent *compiled) {
	if s.rec == nil {
		return
	}
	s.record(r, kind, programName(ent.Source))
}

// programName returns the built-in name for a workload source ("" for
// custom programs).
func programName(source string) string { return sourceProgram[source] }

// kindOf keeps the trace kinds aligned with the workload package's
// constants without importing it at every call site.
const (
	kindCompile  = workload.KindCompile
	kindOffsets  = workload.KindOffsets
	kindSimulate = workload.KindSimulate
)
