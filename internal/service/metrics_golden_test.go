package service

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestMetricsExpositionGolden pins the Prometheus text exposition format
// byte for byte: dashboards and the chaos drill scrape these exact
// sample names, so a rename or format drift must be a deliberate,
// reviewed change. Regenerate with:
//
//	UPDATE_GOLDEN=1 go test ./internal/service/ -run Golden
func TestMetricsExpositionGolden(t *testing.T) {
	m := newMetrics()
	counters := []string{
		mCompileRequests, mCompileBuilds, mCompileCacheHits, mCompileJoined,
		mCompileEvictions, mCompileErrors,
		mOffsetsRequests, mOffsetsQueries, mOffsetsSegments, mOffsetsStrided,
		mOffsetsWalked, mOffsetsErrors,
		mJobsSubmitted, mJobsRejected, mJobsCompleted, mJobsFailed,
		mHTTPRequests, mHTTPErrors,
		mJournalRecords, mJournalErrors, mJournalSnapshots,
		mLayoutsRecovered, mJobsRecovered, mRecoverySkipped,
		mPanics, mShedRequests, mRetryShed, mBreakerOpens,
		mChaosDelays, mChaosErrors, mChaosDrops, mChaosDiskFaults,
		mClusterForwardCompile, mClusterJobsPlaced, mClusterJobsProxied,
		mClusterFills, mClusterFillBuilds, mClusterFillMismatch,
		mClusterLocalFallback,
		mPeerRequests("nb"), mPeerErrors("nb"),
	}
	for i, name := range counters {
		m.add(name, int64(i+1))
	}
	m.gauge(mQueueDepth, 3)
	m.gauge(mJobsRunning, 2)
	m.gauge(mSimShards, 4)
	m.gauge(mLayoutsResident, 5)
	m.gauge(mBreakerState, breakerOpen)
	m.gauge(mPeerUp("nb"), 1)
	m.gauge(mRingShare("nb"), 0.34)
	for _, us := range []int64{30, 75, 800, 30000, 2000000} {
		m.observe("compile", us)
	}
	for _, us := range []int64{40, 90} {
		m.observe("offsets", us)
	}

	var buf bytes.Buffer
	m.writeExposition(&buf)

	golden := filepath.Join("testdata", "metrics.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition format drifted from %s:\n--- got ---\n%s--- want ---\n%s",
			golden, buf.String(), want)
	}
}
