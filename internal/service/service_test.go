package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"flopt/internal/layout"
	"flopt/internal/linalg"
	"flopt/internal/poly"
	"flopt/internal/service/api"
)

// testProg reads A transposed (optimizable) and B row-friendly; small
// enough that compile + simulate stay fast under -race.
const testProg = `
array A[64][64];
array B[64][64];

parallel(i) for i = 0 to 63 {
    for j = 0 to 63 {
        read A[j][i];
        write B[i][j];
    }
}
`

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := DefaultServerConfig()
	cfg.Workers = 2
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any, out any) (int, string) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decode %s: %v (body %q)", url, err, buf.String())
		}
	}
	return resp.StatusCode, buf.String()
}

func compileTestProg(t *testing.T, ts *httptest.Server) api.CompileResponse {
	t.Helper()
	var resp api.CompileResponse
	code, body := postJSON(t, ts.URL+"/v1/compile", api.CompileRequest{Source: testProg}, &resp)
	if code != http.StatusOK {
		t.Fatalf("compile: status %d: %s", code, body)
	}
	return resp
}

func TestCompileDedupAndShape(t *testing.T) {
	s, ts := newTestServer(t, nil)
	first := compileTestProg(t, ts)
	if first.Cached {
		t.Error("first compile reported cached")
	}
	if first.TotalArrays != 2 || len(first.Arrays) != 2 {
		t.Errorf("arrays = %d/%v", first.TotalArrays, first.Arrays)
	}
	if first.Optimized < 1 {
		t.Errorf("expected at least one optimized array, got %d", first.Optimized)
	}
	if !strings.HasPrefix(first.LayoutID, "ly") {
		t.Errorf("layout id %q", first.LayoutID)
	}
	second := compileTestProg(t, ts)
	if !second.Cached || second.LayoutID != first.LayoutID {
		t.Errorf("resubmission: cached=%v id=%q (want cached id %q)", second.Cached, second.LayoutID, first.LayoutID)
	}
	if got := s.Metrics().counter(mCompileBuilds); got != 1 {
		t.Errorf("compile builds = %d, want 1", got)
	}
	// A different platform must yield a different layout set.
	var other api.CompileResponse
	code, body := postJSON(t, ts.URL+"/v1/compile",
		api.CompileRequest{Source: testProg, Config: &api.PlatformConfig{IOCacheBlocks: 32}}, &other)
	if code != http.StatusOK {
		t.Fatalf("compile with overrides: %d: %s", code, body)
	}
	if other.LayoutID == first.LayoutID {
		t.Error("different cache capacity produced the same layout ID")
	}
}

func TestCompileByWorkloadName(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var resp api.CompileResponse
	code, body := postJSON(t, ts.URL+"/v1/compile", api.CompileRequest{Workload: "swim"}, &resp)
	if code != http.StatusOK {
		t.Fatalf("workload compile: %d: %s", code, body)
	}
	if len(resp.Arrays) == 0 {
		t.Error("workload compile returned no arrays")
	}
}

func TestCompileErrors(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		name string
		req  api.CompileRequest
		want int
	}{
		{"empty", api.CompileRequest{}, http.StatusBadRequest},
		{"both", api.CompileRequest{Source: testProg, Workload: "swim"}, http.StatusBadRequest},
		{"unknown workload", api.CompileRequest{Workload: "nonesuch"}, http.StatusBadRequest},
		{"parse error", api.CompileRequest{Source: "array A[4]; garbage"}, http.StatusBadRequest},
		{"semantic error", api.CompileRequest{Source: "array A[4];\nparallel(i) for i = 0 to 3 { read A[i][i]; }"}, http.StatusBadRequest},
		{"bad config", api.CompileRequest{Source: testProg, Config: &api.PlatformConfig{ComputeNodes: 7}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code, body := postJSON(t, ts.URL+"/v1/compile", tc.req, nil); code != tc.want {
			t.Errorf("%s: status %d want %d (%s)", tc.name, code, tc.want, body)
		}
	}
	// Malformed JSON body.
	resp, err := http.Post(ts.URL+"/v1/compile", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", resp.StatusCode)
	}
}

func expandSegs(r api.OffsetResult) []int64 {
	var out []int64
	for _, s := range r.Segs {
		for k := int64(0); k < s.Count; k++ {
			out = append(out, s.Start+k*s.Stride)
		}
	}
	return out
}

func TestOffsetsBatchMatchesPointQueries(t *testing.T) {
	_, ts := newTestServer(t, nil)
	comp := compileTestProg(t, ts)
	url := ts.URL + "/v1/layouts/" + comp.LayoutID + "/offsets"
	for _, array := range []string{"A", "B"} {
		for _, dir := range [][]int64{{0, 1}, {1, 0}} {
			batch := api.OffsetsRequest{Array: array, Queries: []api.OffsetQuery{{Start: []int64{0, 0}, Dir: dir, Count: 64}}}
			var batchResp api.OffsetsResponse
			if code, body := postJSON(t, url, batch, &batchResp); code != http.StatusOK {
				t.Fatalf("%s dir %v: %d: %s", array, dir, code, body)
			}
			points := api.OffsetsRequest{Array: array}
			for k := int64(0); k < 64; k++ {
				points.Queries = append(points.Queries,
					api.OffsetQuery{Start: []int64{dir[0] * k, dir[1] * k}})
			}
			var pointResp api.OffsetsResponse
			if code, body := postJSON(t, url, points, &pointResp); code != http.StatusOK {
				t.Fatalf("%s points: %d: %s", array, code, body)
			}
			got := expandSegs(batchResp.Results[0])
			if len(got) != 64 {
				t.Fatalf("%s dir %v: run covers %d offsets, want 64", array, dir, len(got))
			}
			for k, off := range got {
				want := pointResp.Results[k].Segs[0].Start
				if off != want {
					t.Fatalf("%s dir %v offset %d: run says %d, point query says %d", array, dir, k, off, want)
				}
			}
		}
	}
}

func TestOffsetsErrors(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.WalkBudget = 16 })
	comp := compileTestProg(t, ts)
	url := ts.URL + "/v1/layouts/" + comp.LayoutID + "/offsets"

	if code, _ := postJSON(t, ts.URL+"/v1/layouts/ly0000000000000000/offsets",
		api.OffsetsRequest{Array: "A", Queries: []api.OffsetQuery{{Start: []int64{0, 0}}}}, nil); code != http.StatusNotFound {
		t.Errorf("unknown layout: status %d", code)
	}
	cases := []struct {
		name string
		req  api.OffsetsRequest
	}{
		{"unknown array", api.OffsetsRequest{Array: "Z", Queries: []api.OffsetQuery{{Start: []int64{0, 0}}}}},
		{"empty batch", api.OffsetsRequest{Array: "A"}},
		{"rank mismatch", api.OffsetsRequest{Array: "A", Queries: []api.OffsetQuery{{Start: []int64{0}}}}},
		{"out of bounds", api.OffsetsRequest{Array: "A", Queries: []api.OffsetQuery{{Start: []int64{0, 64}}}}},
		{"walk escapes", api.OffsetsRequest{Array: "A", Queries: []api.OffsetQuery{{Start: []int64{0, 60}, Dir: []int64{0, 1}, Count: 8}}}},
		{"count without dir", api.OffsetsRequest{Array: "A", Queries: []api.OffsetQuery{{Start: []int64{0, 0}, Count: 8}}}},
		{"negative count", api.OffsetsRequest{Array: "A", Queries: []api.OffsetQuery{{Start: []int64{0, 0}, Dir: []int64{0, 1}, Count: -2}}}},
	}
	for _, tc := range cases {
		if code, body := postJSON(t, url, tc.req, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s)", tc.name, code, body)
		}
	}
	if errs := s.Metrics().counter(mOffsetsErrors); errs < int64(len(cases)) {
		t.Errorf("offsets errors counter = %d, want ≥ %d", errs, len(cases))
	}
}

// flatLayout is a Layout without the Strider capability, forcing the
// per-element fallback.
type flatLayout struct{ dims []int64 }

func (f flatLayout) Offset(idx linalg.Vec) int64 {
	var off int64
	for k, d := range f.dims {
		off = off*d + idx[k]
	}
	return off
}
func (f flatLayout) SizeElems() int64 {
	size := int64(1)
	for _, d := range f.dims {
		size *= d
	}
	return size
}
func (f flatLayout) Name() string { return "flat-test" }

func TestResolveQueryFallbackAndBudget(t *testing.T) {
	a := &poly.Array{Name: "A", Dims: []int64{8, 8}}
	l := flatLayout{dims: a.Dims}

	res, used, err := resolveQuery(l, a, api.OffsetQuery{Start: []int64{2, 0}, Dir: []int64{0, 1}, Count: 8}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strided {
		t.Error("non-Strider layout reported strided")
	}
	if used != 8 {
		t.Errorf("walk budget used = %d, want 8", used)
	}
	if len(res.Segs) != 1 || res.Segs[0].Start != 16 || res.Segs[0].Stride != 1 || res.Segs[0].Count != 8 {
		t.Errorf("merged segs = %+v", res.Segs)
	}
	// Column walk: stride 8 per step, still one merged segment.
	res, _, err = resolveQuery(l, a, api.OffsetQuery{Start: []int64{0, 3}, Dir: []int64{1, 0}, Count: 8}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segs) != 1 || res.Segs[0].Stride != 8 {
		t.Errorf("column segs = %+v", res.Segs)
	}
	// Budget exhaustion.
	if _, _, err := resolveQuery(l, a, api.OffsetQuery{Start: []int64{0, 0}, Dir: []int64{0, 1}, Count: 8}, 4); err == nil {
		t.Error("walk beyond budget accepted")
	}
	// The Strider path is exempt from the budget.
	rm := layout.RowMajor(a)
	if _, used, err := resolveQuery(rm, a, api.OffsetQuery{Start: []int64{0, 0}, Dir: []int64{0, 1}, Count: 8}, 0); err != nil || used != 0 {
		t.Errorf("strided path consumed budget: used=%d err=%v", used, err)
	}
}

func TestSimulateJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, nil)
	comp := compileTestProg(t, ts)

	var sub api.JobResponse
	code, body := postJSON(t, ts.URL+"/v1/simulate", api.SimulateRequest{LayoutID: comp.LayoutID}, &sub)
	if code != http.StatusAccepted {
		t.Fatalf("simulate: %d: %s", code, body)
	}
	job := waitJob(t, ts, sub.JobID)
	if job.State != api.JobDone || job.Report == nil {
		t.Fatalf("job = %+v", job)
	}
	if job.Report.ExecTimeUS <= 0 || job.Report.Accesses <= 0 {
		t.Errorf("report = %+v", job.Report)
	}

	if code, _ := postJSON(t, ts.URL+"/v1/simulate", api.SimulateRequest{LayoutID: "nope"}, nil); code != http.StatusNotFound {
		t.Errorf("unknown layout: status %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/simulate",
		api.SimulateRequest{LayoutID: comp.LayoutID, Policy: "bogus"}, nil); code != http.StatusBadRequest {
		t.Errorf("bad policy: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d", resp.StatusCode)
	}
}

// TestSimulateOptimizedBeatsDefault serves the paper's headline claim
// online: for a group-3 workload the compiled layouts must beat the
// row-major default execution.
func TestSimulateOptimizedBeatsDefault(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var comp api.CompileResponse
	if code, body := postJSON(t, ts.URL+"/v1/compile", api.CompileRequest{Workload: "swim"}, &comp); code != http.StatusOK {
		t.Fatalf("compile swim: %d: %s", code, body)
	}
	runOne := func(optimized bool) *api.SimReport {
		var sub api.JobResponse
		code, body := postJSON(t, ts.URL+"/v1/simulate",
			api.SimulateRequest{LayoutID: comp.LayoutID, Optimized: &optimized}, &sub)
		if code != http.StatusAccepted {
			t.Fatalf("simulate optimized=%v: %d: %s", optimized, code, body)
		}
		j := waitJob(t, ts, sub.JobID)
		if j.State != api.JobDone || j.Report == nil {
			t.Fatalf("job optimized=%v = %+v", optimized, j)
		}
		return j.Report
	}
	opt, def := runOne(true), runOne(false)
	if opt.ExecTimeUS >= def.ExecTimeUS {
		t.Errorf("optimized (%d µs) not faster than default (%d µs)", opt.ExecTimeUS, def.ExecTimeUS)
	}
}

func waitJob(t *testing.T, ts *httptest.Server, id string) api.JobResponse {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var jr api.JobResponse
		err = json.NewDecoder(resp.Body).Decode(&jr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if jr.State == api.JobDone || jr.State == api.JobFailed {
			return jr
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return api.JobResponse{}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, nil)
	compileTestProg(t, ts)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || health["layouts_resident"].(float64) != 1 {
		t.Errorf("healthz = %v", health)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		"floptd_compile_builds_total 1",
		"floptd_compile_requests_total 1",
		"floptd_http_requests_total",
		"floptd_layouts_resident 1",
		`floptd_latency_us_count{route="compile"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, text)
		}
	}
}

func TestSimWorkersDefaultAndGauge(t *testing.T) {
	// An explicit shard count is honored and exposed on /metrics.
	s, ts := newTestServer(t, func(c *Config) { c.SimWorkers = 3 })
	if s.simWorkers != 3 {
		t.Errorf("simWorkers = %d, want 3", s.simWorkers)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), "floptd_sim_shards 3") {
		t.Errorf("metrics exposition missing floptd_sim_shards 3:\n%s", buf.String())
	}

	// The default auto-sizes so pool workers × intra-cell shards never
	// oversubscribes the host.
	auto, _ := newTestServer(t, func(c *Config) { c.Workers = 2; c.SimWorkers = 0 })
	want := runtime.GOMAXPROCS(0) / 2
	if want < 1 {
		want = 1
	}
	if auto.simWorkers != want {
		t.Errorf("auto simWorkers = %d, want %d (GOMAXPROCS=%d, 2 pool workers)",
			auto.simWorkers, want, runtime.GOMAXPROCS(0))
	}
}

// stubbedPool builds a jobPool whose run function is the given stub.
func stubbedPool(workers, depth int, run func(context.Context, *job) (*api.SimReport, error)) *jobPool {
	return newJobPool(jobPoolConfig{
		workers: workers, queueDepth: depth, maxJobs: 16,
		timeout: time.Minute, met: newMetrics(), run: run,
	})
}

func TestJobQueueBackpressure(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	p := stubbedPool(1, 1, func(ctx context.Context, j *job) (*api.SimReport, error) {
		started <- struct{}{}
		<-block
		return &api.SimReport{}, nil
	})
	// First job occupies the worker, second the queue slot, third must be
	// rejected with errQueueFull.
	if _, err := p.submit(nil, api.SimulateRequest{}); err != nil {
		t.Fatal(err)
	}
	<-started // worker has taken job 1 off the queue
	if _, err := p.submit(nil, api.SimulateRequest{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.submit(nil, api.SimulateRequest{}); !errors.Is(err, errQueueFull) {
		t.Fatalf("third submit: %v, want errQueueFull", err)
	}
	close(block)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := p.submit(nil, api.SimulateRequest{}); !errors.Is(err, errDraining) {
		t.Fatalf("post-drain submit: %v, want errDraining", err)
	}
}

func TestDrainLosesNoAcceptedJobs(t *testing.T) {
	var done int64
	p := stubbedPool(2, 32, func(ctx context.Context, j *job) (*api.SimReport, error) {
		time.Sleep(time.Millisecond)
		return &api.SimReport{ExecTimeUS: 1}, nil
	})
	var ids []string
	for i := 0; i < 16; i++ {
		id, err := p.submit(nil, api.SimulateRequest{})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.drain(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		j, ok := p.status(id)
		if !ok || j.state != api.JobDone {
			t.Errorf("job %s state %q after drain", id, j.state)
			continue
		}
		done++
	}
	if done != 16 {
		t.Errorf("%d/16 accepted jobs completed across drain", done)
	}
}

func TestJobRecordPruning(t *testing.T) {
	p := newJobPool(jobPoolConfig{
		workers: 1, queueDepth: 64, maxJobs: 4, timeout: time.Minute, met: newMetrics(),
		run: func(ctx context.Context, j *job) (*api.SimReport, error) {
			return &api.SimReport{}, nil
		},
	})
	var last string
	for i := 0; i < 12; i++ {
		id, err := p.submit(nil, api.SimulateRequest{})
		if err != nil {
			t.Fatal(err)
		}
		last = id
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.drain(ctx); err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	n := len(p.jobs)
	p.mu.Unlock()
	if n > 8 {
		t.Errorf("%d job records retained, want bounded", n)
	}
	if _, ok := p.status(last); !ok {
		t.Error("most recent job was pruned")
	}
}

func TestJobFailureSurfacesError(t *testing.T) {
	p := stubbedPool(1, 4, func(ctx context.Context, j *job) (*api.SimReport, error) {
		return nil, fmt.Errorf("boom")
	})
	id, err := p.submit(nil, api.SimulateRequest{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.drain(ctx); err != nil {
		t.Fatal(err)
	}
	j, ok := p.status(id)
	if !ok || j.state != api.JobFailed || !strings.Contains(j.errMsg, "boom") {
		t.Errorf("failed job = %+v", j)
	}
}
