package service

import (
	"net/http"
	"testing"
	"time"
)

func TestChaosDeterministicStream(t *testing.T) {
	type decision struct {
		action chaosAction
		delay  time.Duration
	}
	draw := func(seed int64) []decision {
		c := newChaos(seed, 1, newMetrics())
		out := make([]decision, 300)
		for i := range out {
			out[i].action, out[i].delay = c.decide()
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged under the same seed: %+v vs %+v", i, a[i], b[i])
		}
	}
	other := draw(43)
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical decision streams")
	}

	if newChaos(1, 0, newMetrics()) != nil {
		t.Error("zero intensity should disable chaos")
	}
}

func TestChaosDiskFaultSeeded(t *testing.T) {
	met := newMetrics()
	c := newChaos(3, 1, met)
	failed := 0
	for i := 0; i < 200; i++ {
		if err := c.diskFault(); err != nil {
			failed++
		}
	}
	// At intensity 1 the disk coin fails ~10% of appends; 200 draws
	// producing zero or all failures means the partition is broken.
	if failed == 0 || failed == 200 {
		t.Errorf("disk faults = %d/200, want a seeded fraction", failed)
	}
	if got := met.counter(mChaosDiskFaults); got != int64(failed) {
		t.Errorf("disk fault counter = %d, want %d", got, failed)
	}
}

func TestChaosMiddlewareInjectsFaults(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.ChaosIntensity = 1
		c.ChaosSeed = 7
	})
	// Hammer a cheap route; at intensity 1 the seeded stream must hit
	// every traffic fault class well within a few hundred requests.
	// Dropped requests abort the connection, so client errors are part
	// of the expected outcome set.
	for i := 0; i < 300; i++ {
		resp, err := http.Get(ts.URL + "/v1/jobs/absent")
		if err != nil {
			continue // dropped: connection aborted mid-request
		}
		resp.Body.Close()
	}
	for _, c := range []string{mChaosDelays, mChaosErrors, mChaosDrops} {
		if got := s.Metrics().counter(c); got == 0 {
			t.Errorf("%s = 0 after 300 requests at intensity 1", c)
		}
	}
	// The observation channel stays clear: /healthz is never faulted.
	for i := 0; i < 50; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatalf("healthz request %d under chaos: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz request %d under chaos: status %d", i, resp.StatusCode)
		}
	}
}
