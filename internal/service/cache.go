package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"flopt/internal/layout"
	"flopt/internal/poly"
	"flopt/internal/sim"
)

// layoutID derives the stable public identifier of a compiled layout set:
// a content hash over the program source and every configuration field
// the optimizer consults (the same fields exp.Runner keys its prep cache
// on). Identical submissions — byte-identical source under an equivalent
// platform — always map to the same ID, across restarts and replicas.
func layoutID(source string, cfg sim.Config) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%d\x00%d\x00%d\x00%d\x00%d\x00%d\x00%d",
		source, cfg.BlockElems, cfg.ComputeNodes, cfg.ThreadsPerCompute,
		cfg.IONodes, cfg.StorageNodes, cfg.IOCacheBlocks, cfg.StorageCacheBlocks)
	return "ly" + hex.EncodeToString(h.Sum(nil))[:16]
}

// compiled is one immutable cache entry: the parsed program, the
// optimizer's result, and the platform it was compiled for. Entries are
// never mutated after construction, so readers share them without locks;
// eviction only drops the cache's reference (in-flight queries and jobs
// keep theirs).
type compiled struct {
	ID      string
	Source  string
	Program *poly.Program
	Result  *layout.Result
	Cfg     sim.Config

	arrays map[string]*poly.Array // name → array, for offset-query lookups
}

// layoutFor returns the layout and geometry of one array.
func (c *compiled) layoutFor(name string) (layout.Layout, *poly.Array, bool) {
	a, ok := c.arrays[name]
	if !ok {
		return nil, nil, false
	}
	return c.Result.Layouts[name], a, true
}

// compileCall is a singleflight slot for one layout ID: the first request
// to present an ID compiles it, later ones wait on done. lastUse is the
// cache's recency clock at the most recent request, driving LRU eviction
// (all fields but ent/err guarded by compileCache.mu; ent and err are
// written once before done closes).
type compileCall struct {
	done     chan struct{}
	ent      *compiled
	err      error
	lastUse  uint64
	finished bool
}

// compileCache deduplicates compilation work: identical submissions share
// one build (singleflight), completed builds are kept in a bounded LRU.
// It is the service twin of exp.Runner's prep cache — entries here are
// immutable, so there is no refcounted buffer recycling to mirror.
type compileCache struct {
	mu      sync.Mutex
	calls   map[string]*compileCall
	seq     uint64
	max     int
	met     *metrics
	compile func(source string, cfg sim.Config) (*compiled, error)
}

func newCompileCache(max int, met *metrics, compile func(string, sim.Config) (*compiled, error)) *compileCache {
	return &compileCache{calls: map[string]*compileCall{}, max: max, met: met, compile: compile}
}

// get returns the compiled entry for (source, cfg), building it at most
// once per ID regardless of how many requests race. The build runs on the
// first caller's goroutine but is never abandoned on ctx cancellation —
// joined waiters (and future requests) still receive the result; only
// this caller's wait is cut short.
func (cc *compileCache) get(ctx context.Context, source string, cfg sim.Config) (*compiled, bool, error) {
	return cc.getCounted(ctx, source, cfg, mCompileBuilds)
}

// getCounted is get with the build charged to an explicit counter:
// client-driven compiles count in compile_builds_total, cluster peer
// fills in cluster_fill_builds_total — keeping compile_builds_total the
// exact count of authoritative builds, which is what makes the
// distributed-singleflight property observable. When a fill and a
// compile race on one ID, whichever starts the build picks the counter.
func (cc *compileCache) getCounted(ctx context.Context, source string, cfg sim.Config, buildCounter string) (*compiled, bool, error) {
	id := layoutID(source, cfg)
	cc.mu.Lock()
	cc.seq++
	if c, ok := cc.calls[id]; ok {
		c.lastUse = cc.seq
		if c.finished {
			cc.met.inc(mCompileCacheHits)
		} else {
			cc.met.inc(mCompileJoined)
		}
		cc.mu.Unlock()
		select {
		case <-c.done:
			return c.ent, true, c.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	c := &compileCall{done: make(chan struct{}), lastUse: cc.seq}
	cc.evictLocked()
	cc.calls[id] = c
	cc.mu.Unlock()

	cc.met.inc(buildCounter)
	ent, err := cc.compile(source, cfg)
	if ent != nil {
		ent.ID = id
	}
	c.ent, c.err = ent, err

	cc.mu.Lock()
	c.finished = true
	if err != nil && cc.calls[id] == c {
		// Failed builds do not occupy a slot; the error still reaches
		// every joined waiter through the call itself.
		delete(cc.calls, id)
	}
	cc.met.gauge(mLayoutsResident, float64(len(cc.calls)))
	cc.mu.Unlock()
	close(c.done)
	return c.ent, false, c.err
}

// lookup returns the resident entry for id without compiling, refreshing
// its recency. The second result reports whether the ID is resident and
// finished (an in-flight build is reported as absent: offset queries
// against it would otherwise block the hot path on compilation).
func (cc *compileCache) lookup(id string) (*compiled, bool) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	c, ok := cc.calls[id]
	if !ok || !c.finished || c.err != nil {
		return nil, false
	}
	cc.seq++
	c.lastUse = cc.seq
	return c.ent, true
}

// evictLocked makes room for one more entry by dropping the least
// recently used completed builds; in-flight builds are never evicted
// (waiters deduplicate against them). Caller holds cc.mu.
func (cc *compileCache) evictLocked() {
	for len(cc.calls) >= cc.max {
		var victim string
		var victimCall *compileCall
		for id, c := range cc.calls {
			if !c.finished {
				continue
			}
			if victimCall == nil || c.lastUse < victimCall.lastUse {
				victim, victimCall = id, c
			}
		}
		if victimCall == nil {
			return
		}
		delete(cc.calls, victim)
		cc.met.inc(mCompileEvictions)
	}
}

// resident returns the number of resident entries (tests and /healthz).
func (cc *compileCache) resident() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return len(cc.calls)
}

// has reports whether id is resident — as a finished entry or an
// in-flight build. Layout-journal snapshots filter on it, queried live
// per record: a call slot is registered before its WAL record is
// appended, so any record a snapshot can see already answers true here,
// and a journaled layout is never dropped while it is (or is becoming)
// resident.
func (cc *compileCache) has(id string) bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	_, ok := cc.calls[id]
	return ok
}
