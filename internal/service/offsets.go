package service

import (
	"fmt"

	"flopt/internal/layout"
	"flopt/internal/linalg"
	"flopt/internal/poly"
	"flopt/internal/service/api"
)

// resolveQuery validates q against array a and answers it under l.
// walkBudget is the remaining per-request element budget for non-strided
// layouts; the returned int64 is the budget consumed.
func resolveQuery(l layout.Layout, a *poly.Array, q api.OffsetQuery, walkBudget int64) (api.OffsetResult, int64, error) {
	count := q.Count
	if count == 0 {
		count = 1
	}
	if count < 0 {
		return api.OffsetResult{}, 0, fmt.Errorf("count %d is negative", count)
	}
	if len(q.Start) != a.Rank() {
		return api.OffsetResult{}, 0, fmt.Errorf("start has %d coordinates, array %s has rank %d", len(q.Start), a.Name, a.Rank())
	}
	if q.Dir != nil && len(q.Dir) != a.Rank() {
		return api.OffsetResult{}, 0, fmt.Errorf("dir has %d coordinates, array %s has rank %d", len(q.Dir), a.Name, a.Rank())
	}
	if count > 1 && q.Dir == nil {
		return api.OffsetResult{}, 0, fmt.Errorf("count %d needs a dir", count)
	}
	start := linalg.Vec(q.Start)
	dir := make(linalg.Vec, a.Rank())
	copy(dir, q.Dir)
	// Each coordinate moves monotonically along the walk, so both
	// endpoints inside the box means every point is.
	for d := 0; d < a.Rank(); d++ {
		end := start[d] + (count-1)*dir[d]
		if start[d] < 0 || start[d] >= a.Dims[d] || end < 0 || end >= a.Dims[d] {
			return api.OffsetResult{}, 0, fmt.Errorf("walk leaves array %s on dimension %d: %d..%d outside [0,%d)",
				a.Name, d, start[d], end, a.Dims[d])
		}
	}

	if s, ok := l.(layout.Strider); ok && s.CanStride(dir) {
		segs := s.AppendSegs(nil, start, dir, count)
		return api.OffsetResult{Segs: toAPISegs(segs), Strided: true}, 0, nil
	}
	if count > walkBudget {
		return api.OffsetResult{}, 0, fmt.Errorf("layout %s has no closed form along dir %v and count %d exceeds the remaining walk budget %d",
			l.Name(), q.Dir, count, walkBudget)
	}
	return api.OffsetResult{Segs: toAPISegs(walkSegs(l, start, dir, count))}, count, nil
}

// walkSegs is the per-element fallback: it evaluates Offset along the
// walk and merges consecutive equal strides into maximal segments, so a
// non-strideable but locally affine walk still compresses.
func walkSegs(l layout.Layout, start, dir linalg.Vec, count int64) []layout.Seg {
	idx := make(linalg.Vec, len(start))
	copy(idx, start)
	cur := layout.Seg{Start: l.Offset(idx), Count: 1}
	var segs []layout.Seg
	prev := cur.Start
	for k := int64(1); k < count; k++ {
		for d := range idx {
			idx[d] += dir[d]
		}
		off := l.Offset(idx)
		stride := off - prev
		switch {
		case cur.Count == 1:
			cur.Stride, cur.Count = stride, 2
		case stride == cur.Stride:
			cur.Count++
		default:
			segs = append(segs, cur)
			cur = layout.Seg{Start: off, Count: 1}
		}
		prev = off
	}
	return append(segs, cur)
}

func toAPISegs(segs []layout.Seg) []api.Seg {
	out := make([]api.Seg, len(segs))
	for i, s := range segs {
		out[i] = api.Seg{Start: s.Start, Stride: s.Stride, Count: s.Count}
	}
	return out
}
