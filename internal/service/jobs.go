package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Job states, in lifecycle order. A job is accepted the moment submit
// returns its ID: from then on it is guaranteed to reach done or failed,
// even across a graceful drain.
const (
	jobQueued  = "queued"
	jobRunning = "running"
	jobDone    = "done"
	jobFailed  = "failed"
)

// errQueueFull rejects a submission when the bounded queue has no room;
// the handler maps it to 429 + Retry-After. errDraining rejects
// submissions after shutdown began (503).
var (
	errQueueFull = errors.New("service: simulate queue full")
	errDraining  = errors.New("service: draining, not accepting jobs")
)

// job is one asynchronous simulation. All mutable fields are guarded by
// the owning pool's mu; the request fields are immutable after submit.
type job struct {
	id  string
	ent *compiled
	req simulateRequest

	state    string
	report   *simReport
	errMsg   string
	queuedAt time.Time
	doneAt   time.Time
}

// jobPool runs simulations on a fixed set of workers fed by a bounded
// queue — the service reuses the harness's worker-pool discipline
// (internal/exp/pool.go) with a channel in place of the index counter,
// because jobs arrive over time instead of as a fixed grid.
type jobPool struct {
	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for pruning finished jobs
	queue    chan *job
	wg       sync.WaitGroup
	draining bool
	running  int
	seq      uint64
	met      *metrics
	run      func(ctx context.Context, j *job) (*simReport, error)
	timeout  time.Duration
	maxJobs  int
}

func newJobPool(workers, queueDepth, maxJobs int, timeout time.Duration, met *metrics,
	run func(context.Context, *job) (*simReport, error)) *jobPool {
	p := &jobPool{
		jobs:    map[string]*job{},
		queue:   make(chan *job, queueDepth),
		met:     met,
		run:     run,
		timeout: timeout,
		maxJobs: maxJobs,
	}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

// submit accepts a job for asynchronous execution, returning its ID. A
// full queue returns errQueueFull without registering anything; a
// draining pool returns errDraining.
func (p *jobPool) submit(ent *compiled, req simulateRequest) (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return "", errDraining
	}
	p.seq++
	j := &job{
		id:       fmt.Sprintf("job-%d", p.seq),
		ent:      ent,
		req:      req,
		state:    jobQueued,
		queuedAt: time.Now(),
	}
	select {
	case p.queue <- j:
	default:
		p.seq-- // unused ID; keeps job numbering dense
		return "", errQueueFull
	}
	p.jobs[j.id] = j
	p.order = append(p.order, j.id)
	p.pruneLocked()
	p.met.gauge(mQueueDepth, float64(len(p.queue)))
	return j.id, nil
}

// pruneLocked bounds the retained job records: beyond maxJobs, the oldest
// finished jobs are forgotten (their IDs then 404). Unfinished jobs are
// always retained. Caller holds p.mu.
func (p *jobPool) pruneLocked() {
	excess := len(p.jobs) - p.maxJobs
	if excess <= 0 {
		return
	}
	kept := p.order[:0]
	for _, id := range p.order {
		j := p.jobs[id]
		if excess > 0 && (j.state == jobDone || j.state == jobFailed) {
			delete(p.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	p.order = kept
}

// status returns a point-in-time copy of the job record.
func (p *jobPool) status(id string) (job, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok {
		return job{}, false
	}
	return *j, true
}

func (p *jobPool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		p.mu.Lock()
		j.state = jobRunning
		p.running++
		running := p.running
		p.mu.Unlock()
		p.met.gauge(mQueueDepth, float64(len(p.queue)))
		p.met.gauge(mJobsRunning, float64(running))

		ctx, cancel := context.WithTimeout(context.Background(), p.timeout)
		rep, err := p.run(ctx, j)
		cancel()

		p.mu.Lock()
		j.doneAt = time.Now()
		if err != nil {
			j.state, j.errMsg = jobFailed, err.Error()
		} else {
			j.state, j.report = jobDone, rep
		}
		p.running--
		running = p.running
		p.pruneLocked()
		p.mu.Unlock()
		if err != nil {
			p.met.inc(mJobsFailed)
		} else {
			p.met.inc(mJobsCompleted)
		}
		p.met.gauge(mJobsRunning, float64(running))
	}
}

// drain stops accepting new jobs and waits for every accepted job —
// queued or running — to finish, or for ctx to expire. Zero accepted
// jobs are lost: workers run the closed queue dry before exiting.
func (p *jobPool) drain(ctx context.Context) error {
	p.mu.Lock()
	if !p.draining {
		p.draining = true
		close(p.queue)
	}
	p.mu.Unlock()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted: %w", ctx.Err())
	}
}

// depth returns the current queue length (healthz).
func (p *jobPool) depth() int { return len(p.queue) }
