package service

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"flopt/internal/service/api"
)

// Job states live in the api package (api.JobQueued … api.JobFailed): a
// job is accepted the moment submit returns its ID, and from then on it
// is guaranteed to reach done or failed — even across a graceful drain
// and, when a job journal is configured, across a crash (recovery
// re-enqueues accepted-but-unfinished jobs).

// errQueueFull rejects a submission when the bounded queue has no room;
// the handler maps it to 429 + Retry-After. errDraining rejects
// submissions after shutdown began (503).
var (
	errQueueFull = errors.New("service: simulate queue full")
	errDraining  = errors.New("service: draining, not accepting jobs")
)

// job is one asynchronous simulation. All mutable fields are guarded by
// the owning pool's mu; the request fields are immutable after submit.
type job struct {
	id       string
	ent      *compiled
	layoutID string
	req      api.SimulateRequest

	state    string
	report   *api.SimReport
	errMsg   string
	queuedAt time.Time
	doneAt   time.Time
}

// jobPoolConfig wires a jobPool. journal and onResult are optional
// hooks: journal persists the accepted/started/completed ledger (its
// error on the accept record vetoes the submission — accepted must mean
// durable), onResult feeds job outcomes to the circuit breaker.
type jobPoolConfig struct {
	workers    int
	queueDepth int
	maxJobs    int
	// idPrefix namespaces job IDs ("job-<prefix><n>"): cluster mode sets
	// it to "<nodeID>-" so IDs are globally unique and any node can route
	// a status poll to the node that owns the job.
	idPrefix string
	timeout  time.Duration
	met      *metrics
	run      func(context.Context, *job) (*api.SimReport, error)
	journal  func(jobRecord) error
	onResult func(error)
}

// jobPool runs simulations on a fixed set of workers fed by a bounded
// queue — the service reuses the harness's worker-pool discipline
// (internal/exp/pool.go) with a channel in place of the index counter,
// because jobs arrive over time instead of as a fixed grid.
type jobPool struct {
	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for pruning finished jobs
	queue    chan *job
	wg       sync.WaitGroup
	draining bool
	running  int
	seq      uint64
	ewmaUS   float64 // job-latency EWMA (queue wait + run), µs
	cfg      jobPoolConfig
}

func newJobPool(cfg jobPoolConfig) *jobPool {
	p := &jobPool{
		jobs:  map[string]*job{},
		queue: make(chan *job, cfg.queueDepth),
		cfg:   cfg,
	}
	p.wg.Add(cfg.workers)
	for w := 0; w < cfg.workers; w++ {
		go p.worker()
	}
	return p
}

// submit accepts a job for asynchronous execution, returning its ID. A
// full queue returns errQueueFull without registering anything; a
// draining pool returns errDraining; a failed accept-record journal
// write returns the journal error (the job is NOT accepted — clients
// must never hold an ID that a crash could lose).
func (p *jobPool) submit(ent *compiled, req api.SimulateRequest) (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return "", errDraining
	}
	// Reserve the queue slot before journaling: submitters serialize on
	// mu and workers only drain, so space cannot shrink between this
	// check and the send below.
	if len(p.queue) == cap(p.queue) {
		return "", errQueueFull
	}
	p.seq++
	j := &job{
		id:       fmt.Sprintf("job-%s%d", p.cfg.idPrefix, p.seq),
		ent:      ent,
		req:      req,
		state:    api.JobQueued,
		queuedAt: time.Now(),
	}
	if ent != nil {
		j.layoutID = ent.ID
	}
	if p.cfg.journal != nil {
		if err := p.cfg.journal(jobRecord{Op: jobOpAccept, ID: j.id, Layout: j.layoutID, Req: &j.req}); err != nil {
			p.seq-- // unused ID; keeps job numbering dense
			return "", err
		}
	}
	p.queue <- j
	p.jobs[j.id] = j
	p.order = append(p.order, j.id)
	p.pruneLocked()
	p.cfg.met.gauge(mQueueDepth, float64(len(p.queue)))
	return j.id, nil
}

// restore registers a recovered job record without enqueueing it —
// terminal jobs from the journal, so their IDs still answer status
// queries after a restart (reports are not persisted; state and error
// are).
func (p *jobPool) restore(j *job) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.jobs[j.id] = j
	p.order = append(p.order, j.id)
	p.bumpSeqLocked(j.id)
	p.pruneLocked()
}

// resubmit re-enqueues a recovered accepted-but-unfinished job. The send
// blocks when the recovered backlog exceeds the queue depth — recovery
// runs before the server accepts traffic, and the workers are already
// draining, so the backlog clears without deadlock.
func (p *jobPool) resubmit(j *job) {
	p.mu.Lock()
	j.state = api.JobQueued
	j.queuedAt = time.Now()
	p.jobs[j.id] = j
	p.order = append(p.order, j.id)
	p.bumpSeqLocked(j.id)
	p.mu.Unlock()
	p.queue <- j
	p.cfg.met.gauge(mQueueDepth, float64(len(p.queue)))
}

// bumpSeqLocked advances the ID sequence past a recovered job's number
// so post-restart submissions never collide. Caller holds p.mu.
func (p *jobPool) bumpSeqLocked(id string) {
	num := strings.TrimPrefix(strings.TrimPrefix(id, "job-"), p.cfg.idPrefix)
	if n, err := strconv.ParseUint(num, 10, 64); err == nil && n > p.seq {
		p.seq = n
	}
}

// pruneLocked bounds the retained job records: beyond maxJobs, the oldest
// finished jobs are forgotten (their IDs then 404). Unfinished jobs are
// always retained. Caller holds p.mu.
func (p *jobPool) pruneLocked() {
	excess := len(p.jobs) - p.cfg.maxJobs
	if excess <= 0 {
		return
	}
	kept := p.order[:0]
	for _, id := range p.order {
		j := p.jobs[id]
		if excess > 0 && (j.state == api.JobDone || j.state == api.JobFailed) {
			delete(p.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	p.order = kept
}

// status returns a point-in-time copy of the job record.
func (p *jobPool) status(id string) (job, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok {
		return job{}, false
	}
	return *j, true
}

// records rebuilds the compacted job ledger for journal compaction: one
// accept per retained job, plus a done for each terminal one. Unfinished
// jobs stay accept-only, so a restart re-runs them.
func (p *jobPool) records() []jobRecord {
	p.mu.Lock()
	defer p.mu.Unlock()
	recs := make([]jobRecord, 0, 2*len(p.order))
	for _, id := range p.order {
		j := p.jobs[id]
		req := j.req
		recs = append(recs, jobRecord{Op: jobOpAccept, ID: j.id, Layout: j.layoutID, Req: &req})
		if j.state == api.JobDone || j.state == api.JobFailed {
			recs = append(recs, jobRecord{Op: jobOpDone, ID: j.id, State: j.state, Err: j.errMsg})
		}
	}
	return recs
}

func (p *jobPool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		p.mu.Lock()
		j.state = api.JobRunning
		p.running++
		running := p.running
		p.mu.Unlock()
		p.cfg.met.gauge(mQueueDepth, float64(len(p.queue)))
		p.cfg.met.gauge(mJobsRunning, float64(running))
		if p.cfg.journal != nil {
			// Best-effort forensics: a lost start record only blurs
			// whether a re-run job died queued or mid-flight.
			p.cfg.journal(jobRecord{Op: jobOpStart, ID: j.id})
		}

		ctx, cancel := context.WithTimeout(context.Background(), p.cfg.timeout)
		rep, err := p.cfg.run(ctx, j)
		cancel()

		p.mu.Lock()
		j.doneAt = time.Now()
		if err != nil {
			j.state, j.errMsg = api.JobFailed, err.Error()
		} else {
			j.state, j.report = api.JobDone, rep
		}
		// Latency EWMA over accept→terminal, feeding Retry-After.
		latUS := float64(j.doneAt.Sub(j.queuedAt).Microseconds())
		if p.ewmaUS == 0 {
			p.ewmaUS = latUS
		} else {
			p.ewmaUS = 0.7*p.ewmaUS + 0.3*latUS
		}
		p.running--
		running = p.running
		p.pruneLocked()
		p.mu.Unlock()
		if p.cfg.journal != nil {
			// A lost done record re-runs the job after a crash; wasted
			// work, never lost work.
			p.cfg.journal(jobRecord{Op: jobOpDone, ID: j.id, State: j.state, Err: j.errMsg})
		}
		if p.cfg.onResult != nil {
			p.cfg.onResult(err)
		}
		if err != nil {
			p.cfg.met.inc(mJobsFailed)
		} else {
			p.cfg.met.inc(mJobsCompleted)
		}
		p.cfg.met.gauge(mJobsRunning, float64(running))
	}
}

// drain stops accepting new jobs and waits for every accepted job —
// queued or running — to finish, or for ctx to expire. Zero accepted
// jobs are lost: workers run the closed queue dry before exiting.
func (p *jobPool) drain(ctx context.Context) error {
	p.mu.Lock()
	if !p.draining {
		p.draining = true
		close(p.queue)
	}
	p.mu.Unlock()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted: %w", ctx.Err())
	}
}

// depth returns the current queue length (healthz).
func (p *jobPool) depth() int { return len(p.queue) }

// loadStats snapshots the pool's load — queue depth, running jobs, and
// the job-latency EWMA — for cluster status gossip and job placement.
func (p *jobPool) loadStats() (depth, running int, ewmaUS float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue), p.running, p.ewmaUS
}

// retryAfterSeconds estimates when queue room will exist: the current
// backlog (queued + running) times the job-latency EWMA, divided across
// the workers, clamped to [1, 60] s. Replaces the hard-coded constant a
// 429 used to carry — a deep queue of slow jobs now tells clients to
// stay away proportionally longer.
func (p *jobPool) retryAfterSeconds() int {
	p.mu.Lock()
	backlog := len(p.queue) + p.running
	ewma := p.ewmaUS
	p.mu.Unlock()
	workers := p.cfg.workers
	if workers < 1 {
		workers = 1
	}
	secs := int(ewma*float64(backlog)/float64(workers)/1e6 + 0.999)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}
