package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flopt/internal/service/api"
)

func TestBreakerStateMachine(t *testing.T) {
	met := newMetrics()
	b := newBreaker(3, time.Minute, met)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }

	boom := errors.New("boom")
	if !b.allow() {
		t.Fatal("closed breaker rejected")
	}
	b.record(boom)
	b.record(boom)
	if !b.allow() {
		t.Fatal("breaker opened below threshold")
	}
	b.record(boom) // third consecutive failure: opens
	if b.allow() {
		t.Fatal("open breaker admitted")
	}
	if got := met.counter(mBreakerOpens); got != 1 {
		t.Errorf("breaker opens = %d, want 1", got)
	}
	if got := met.snapshot().Gauges[mBreakerState]; got != breakerOpen {
		t.Errorf("breaker_state gauge = %g, want %d", got, breakerOpen)
	}

	// Cooldown elapses: exactly one probe is admitted.
	now = now.Add(time.Minute)
	if !b.allow() {
		t.Fatal("half-open breaker rejected the probe")
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second probe")
	}
	b.record(nil) // probe succeeds: closed
	if !b.allow() || met.snapshot().Gauges[mBreakerState] != breakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}

	// A failed probe re-opens immediately and restarts the cooldown.
	b.record(boom)
	b.record(boom)
	b.record(boom)
	now = now.Add(time.Minute)
	if !b.allow() {
		t.Fatal("second probe rejected")
	}
	b.record(boom)
	if b.allow() {
		t.Fatal("breaker admitted right after a failed probe")
	}
	if got := met.counter(mBreakerOpens); got != 3 {
		t.Errorf("breaker opens = %d, want 3 (threshold, then failed probe)", got)
	}
}

func TestBreakerShedsSimulateNotOffsets(t *testing.T) {
	s, ts := newTestServer(t, nil)
	comp := compileTestProg(t, ts)

	// Trip the breaker the way real traffic would: consecutive job
	// failures reported through the pool's onResult hook.
	for i := 0; i < s.cfg.BreakerThreshold; i++ {
		s.breaker.record(errors.New("job failed"))
	}
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json",
		strings.NewReader(`{"layout_id":"`+comp.LayoutID+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("simulate with open breaker: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if got := s.Metrics().counter(mShedRequests); got != 1 {
		t.Errorf("shed requests = %d, want 1", got)
	}
	// The cheap path keeps flowing while the expensive one is shed.
	code, body := postJSON(t, ts.URL+"/v1/layouts/"+comp.LayoutID+"/offsets",
		api.OffsetsRequest{Array: "A", Queries: []api.OffsetQuery{{Start: []int64{0, 0}}}}, nil)
	if code != http.StatusOK {
		t.Errorf("offsets with open breaker: %d: %s", code, body)
	}
	if got := s.Metrics().snapshot().Gauges[mBreakerState]; got != breakerOpen {
		t.Errorf("breaker_state gauge = %g, want %d", got, breakerOpen)
	}
	// A success (probe or otherwise) closes it; simulate flows again.
	s.breaker.record(nil)
	var sub api.JobResponse
	if code, body := postJSON(t, ts.URL+"/v1/simulate", api.SimulateRequest{LayoutID: comp.LayoutID}, &sub); code != http.StatusAccepted {
		t.Errorf("simulate after close: %d: %s", code, body)
	} else {
		waitJob(t, ts, sub.JobID)
	}
}

func TestRetryBudgetSheds(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.RetryBudget = 2 })

	doRetry := func() *http.Response {
		req, err := http.NewRequest("GET", ts.URL+"/v1/jobs/absent", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Retry-Attempt", "1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	// Two tokens: two declared retries pass through (404 from the mux),
	// the third is shed with 429 before reaching any handler.
	for i := 0; i < 2; i++ {
		if resp := doRetry(); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("retry %d: status %d, want 404", i, resp.StatusCode)
		}
	}
	resp := doRetry()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("exhausted budget: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed retry missing Retry-After")
	}
	if got := s.Metrics().counter(mRetryShed); got != 1 {
		t.Errorf("retry shed counter = %d, want 1", got)
	}
	// First-attempt traffic refills the bucket at the deposit ratio
	// (twelve deposits of 0.1 — not ten, since the float sum creeps up
	// just shy of 1.0 — buy one more retry).
	for i := 0; i < 12; i++ {
		r, err := http.Get(ts.URL + "/v1/jobs/absent")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	if resp := doRetry(); resp.StatusCode != http.StatusNotFound {
		t.Errorf("retry after refill: status %d, want 404", resp.StatusCode)
	}
}

func TestRecoverWareConvertsPanics(t *testing.T) {
	s, _ := newTestServer(t, nil)
	h := s.recoverWare(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("panicking handler: status %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "internal error") {
		t.Errorf("panic body = %q", rec.Body.String())
	}
	if got := s.Metrics().counter(mPanics); got != 1 {
		t.Errorf("panics recovered = %d, want 1", got)
	}

	// http.ErrAbortHandler must propagate: net/http uses it to abort the
	// connection, and the chaos drop fault depends on that.
	aborting := s.recoverWare(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if r := recover(); r != http.ErrAbortHandler { //nolint:errorlint // sentinel, compared by identity
			t.Errorf("recovered %v, want http.ErrAbortHandler to propagate", r)
		}
	}()
	aborting.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/jobs/x", nil))
}

func TestRequestDeadlineAbortsOffsets(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.RequestTimeout = time.Nanosecond })
	// Compile out of band: the deadline middleware would expire any HTTP
	// compile before it could answer, and the test targets the offsets
	// mid-batch abort specifically.
	ent, _, err := s.cache.get(context.Background(), testProg, s.cfg.Platform)
	if err != nil {
		t.Fatal(err)
	}
	code, body := postJSON(t, ts.URL+"/v1/layouts/"+ent.ID+"/offsets",
		api.OffsetsRequest{Array: "A", Queries: []api.OffsetQuery{{Start: []int64{0, 0}, Dir: []int64{0, 1}, Count: 8}}}, nil)
	if code != http.StatusServiceUnavailable {
		t.Errorf("expired deadline: status %d, want 503 (%s)", code, body)
	}
	if !strings.Contains(body, "deadline exceeded") {
		t.Errorf("expired deadline body = %q", body)
	}
}

func TestRetryAfterScalesWithBacklog(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	p := stubbedPool(1, 8, func(ctx context.Context, j *job) (*api.SimReport, error) {
		started <- struct{}{}
		<-block
		return &api.SimReport{}, nil
	})
	p.mu.Lock()
	p.ewmaUS = 2e6 // 2 s per job
	p.mu.Unlock()

	if got := p.retryAfterSeconds(); got != 1 {
		t.Errorf("idle Retry-After = %d, want floor 1", got)
	}
	if _, err := p.submit(nil, api.SimulateRequest{}); err != nil {
		t.Fatal(err)
	}
	<-started // worker holds job 1: backlog 1
	if got := p.retryAfterSeconds(); got != 2 {
		t.Errorf("backlog 1 Retry-After = %d, want 2", got)
	}
	for i := 0; i < 4; i++ {
		if _, err := p.submit(nil, api.SimulateRequest{}); err != nil {
			t.Fatal(err)
		}
	}
	// Backlog 5 × 2 s / 1 worker: tell clients to stay away ~10 s.
	if got := p.retryAfterSeconds(); got != 10 {
		t.Errorf("backlog 5 Retry-After = %d, want 10", got)
	}
	p.mu.Lock()
	p.ewmaUS = 120e6
	p.mu.Unlock()
	if got := p.retryAfterSeconds(); got != 60 {
		t.Errorf("slow-job Retry-After = %d, want 60 (clamped)", got)
	}
	close(block)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.drain(ctx); err != nil {
		t.Fatal(err)
	}
}
