package service

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"flopt/internal/obs"
)

// Metric names registered by the service. Counters and gauges are flat;
// request-latency histograms are per route (latency_us_<route>).
const (
	mCompileRequests  = "compile_requests_total"
	mCompileBuilds    = "compile_builds_total"
	mCompileCacheHits = "compile_cache_hits_total"
	mCompileJoined    = "compile_singleflight_joined_total"
	mCompileEvictions = "compile_evictions_total"
	mCompileErrors    = "compile_errors_total"
	mOffsetsRequests  = "offsets_requests_total"
	mOffsetsQueries   = "offsets_queries_total"
	mOffsetsSegments  = "offsets_segments_total"
	mOffsetsStrided   = "offsets_strided_total"
	mOffsetsWalked    = "offsets_walked_elems_total"
	mOffsetsErrors    = "offsets_errors_total"
	mJobsSubmitted    = "jobs_submitted_total"
	mJobsRejected     = "jobs_rejected_total"
	mJobsCompleted    = "jobs_completed_total"
	mJobsFailed       = "jobs_failed_total"
	mQueueDepth       = "queue_depth"
	mJobsRunning      = "jobs_running"
	mSimShards        = "sim_shards"
	mLayoutsResident  = "layouts_resident"
	mHTTPRequests     = "http_requests_total"
	mHTTPErrors       = "http_errors_total"

	// Durability: journal traffic and crash recovery.
	mJournalRecords   = "journal_records_total"
	mJournalErrors    = "journal_errors_total"
	mJournalSnapshots = "journal_snapshots_total"
	mLayoutsRecovered = "layouts_recovered_total"
	mJobsRecovered    = "jobs_recovered_total"
	mRecoverySkipped  = "recovery_skipped_total"

	// Admission control and degradation.
	mPanics       = "panics_recovered_total"
	mShedRequests = "shed_requests_total"
	mRetryShed    = "retry_budget_exhausted_total"
	mBreakerState = "breaker_state"
	mBreakerOpens = "breaker_opens_total"

	// Workload trace recording (-record).
	mTraceRecords = "trace_records_total"
	mTraceSkipped = "trace_skipped_total"
	mTraceErrors  = "trace_errors_total"

	// Chaos injection.
	mChaosDelays     = "chaos_delays_total"
	mChaosErrors     = "chaos_errors_total"
	mChaosDrops      = "chaos_drops_total"
	mChaosDiskFaults = "chaos_disk_faults_total"

	// Cluster mode. Per-peer counters and gauges additionally exist as
	// cluster_peer_requests_total_<id>, cluster_peer_errors_total_<id>,
	// cluster_peer_up_<id> and cluster_ring_share_<id> — flat names with
	// the peer ID suffixed, built at runtime from the roster.
	mClusterForwardCompile = "cluster_compile_forwarded_total"
	mClusterJobsPlaced     = "cluster_jobs_placed_remote_total"
	mClusterJobsProxied    = "cluster_jobs_proxied_total"
	mClusterFills          = "cluster_peer_fills_total"
	mClusterFillBuilds     = "cluster_fill_builds_total"
	mClusterFillMismatch   = "cluster_fill_mismatch_total"
	mClusterLocalFallback  = "cluster_peer_fallback_local_total"
)

// Per-peer metric names (the flat-name convention above).
func mPeerRequests(id string) string { return "cluster_peer_requests_total_" + id }
func mPeerErrors(id string) string   { return "cluster_peer_errors_total_" + id }
func mPeerUp(id string) string       { return "cluster_peer_up_" + id }
func mRingShare(id string) string    { return "cluster_ring_share_" + id }

// latencyBucketsUS are the request-latency buckets of the service's
// histograms: loopback API calls sit in the tens-to-hundreds of
// microseconds, simulate submissions in the low milliseconds, and the
// overflow bucket catches anything past one second.
func latencyBucketsUS() []int64 {
	return []int64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 1000000}
}

// metrics is the service-wide metric set: an obs.Registry behind a mutex.
// The obs package is deliberately single-owner (the simulator drives it
// from one goroutine); the service shares one registry across every
// request goroutine, so all access funnels through these locked helpers.
type metrics struct {
	mu  sync.Mutex
	reg *obs.Registry
}

func newMetrics() *metrics {
	return &metrics{reg: obs.NewRegistry()}
}

func (m *metrics) inc(name string) { m.add(name, 1) }

func (m *metrics) add(name string, d int64) {
	m.mu.Lock()
	m.reg.Counter(name).Add(d)
	m.mu.Unlock()
}

func (m *metrics) gauge(name string, v float64) {
	m.mu.Lock()
	m.reg.Gauge(name).Set(v)
	m.mu.Unlock()
}

// observe records one request latency (µs) for the given route.
func (m *metrics) observe(route string, us int64) {
	m.mu.Lock()
	m.reg.Histogram("latency_us_"+route, latencyBucketsUS()...).Observe(us)
	m.mu.Unlock()
}

// sloHistPrefix namespaces the per-SLO-class latency histograms; the
// exposition renders them as floptd_slo_latency_us_* series with an
// slo_class label instead of the per-route family.
const sloHistPrefix = "latency_us_slo_"

// observeSLO records one request latency (µs) for an SLO class.
func (m *metrics) observeSLO(class string, us int64) {
	m.mu.Lock()
	m.reg.Histogram(sloHistPrefix+class, latencyBucketsUS()...).Observe(us)
	m.mu.Unlock()
}

// counter reads one counter value (tests and /healthz).
func (m *metrics) counter(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reg.Counter(name).Value()
}

func (m *metrics) snapshot() obs.RegistrySnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reg.Snapshot()
}

// writeExposition renders the registry in the Prometheus text format:
// counters and gauges as flat floptd_-prefixed samples, histograms as
// cumulative le-labelled bucket series plus _sum and _count. Keys are
// emitted in sorted order so the output is deterministic.
func (m *metrics) writeExposition(w io.Writer) {
	s := m.snapshot()
	names := make([]string, 0, len(s.Counters)+len(s.Gauges))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "floptd_%s %d\n", name, s.Counters[name])
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "floptd_%s %g\n", name, s.Gauges[name])
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		// Per-SLO-class histograms render as their own family with an
		// slo_class label; everything else is the per-route family.
		family, label, key := "latency_us", "route", strings.TrimPrefix(name, "latency_us_")
		if class, ok := strings.CutPrefix(name, sloHistPrefix); ok {
			family, label, key = "slo_latency_us", "slo_class", class
		}
		var cum int64
		for _, b := range h.Buckets {
			cum += b.N
			le := "+Inf"
			if b.Le >= 0 {
				le = fmt.Sprint(b.Le)
			}
			fmt.Fprintf(w, "floptd_%s_bucket{%s=%q,le=%q} %d\n", family, label, key, le, cum)
		}
		if len(h.Buckets) == 0 || h.Buckets[len(h.Buckets)-1].Le >= 0 {
			fmt.Fprintf(w, "floptd_%s_bucket{%s=%q,le=\"+Inf\"} %d\n", family, label, key, h.Count)
		}
		fmt.Fprintf(w, "floptd_%s_sum{%s=%q} %d\n", family, label, key, h.Sum)
		fmt.Fprintf(w, "floptd_%s_count{%s=%q} %d\n", family, label, key, h.Count)
	}
}
