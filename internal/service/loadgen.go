package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"flopt/internal/exp"
)

// LoadOptions configures one load-generation run against a running
// daemon. The generator compiles Workload once, then hammers the
// offset-query hot path from Concurrency keep-alive connections for
// Duration, measuring client-side latency.
type LoadOptions struct {
	BaseURL     string
	Workload    string
	Duration    time.Duration
	Concurrency int
	// Batch is the number of queries per request body.
	Batch int
	// Count is the per-query run length (contiguous innermost-loop walk).
	Count int64
}

// DefaultLoadOptions returns the BENCH_service.json measurement shape.
func DefaultLoadOptions() LoadOptions {
	return LoadOptions{
		BaseURL:     "http://127.0.0.1:8080",
		Workload:    "swim",
		Duration:    10 * time.Second,
		Concurrency: 32,
		Batch:       4,
		Count:       512,
	}
}

// LoadResult is the measurement: request throughput and latency
// quantiles (µs) over every completed request.
type LoadResult struct {
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	DurationS float64 `json:"duration_s"`
	RPS       float64 `json:"rps"`
	P50US     int64   `json:"p50_us"`
	P90US     int64   `json:"p90_us"`
	P99US     int64   `json:"p99_us"`
	MaxUS     int64   `json:"max_us"`
}

// RunLoad executes the load test. It returns an error only when the
// target cannot be reached or compiled against; per-request failures
// during the measured window are counted in Errors.
func RunLoad(ctx context.Context, opt LoadOptions) (*LoadResult, error) {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        opt.Concurrency * 2,
		MaxIdleConnsPerHost: opt.Concurrency * 2,
	}}

	// Compile once; every worker queries the resulting layout.
	body, _ := json.Marshal(compileRequest{Workload: opt.Workload})
	resp, err := client.Post(opt.BaseURL+"/v1/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("loadgen: compile: %w", err)
	}
	var comp compileResponse
	err = json.NewDecoder(resp.Body).Decode(&comp)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: compile: status %d (%v)", resp.StatusCode, err)
	}
	// Query the largest array along its innermost dimension — the
	// contiguous-run case the Strider fast path serves in O(segments).
	var array string
	var dims []int64
	for name, info := range comp.Arrays {
		if array == "" || info.FileElems > comp.Arrays[array].FileElems {
			array, dims = name, info.Dims
		}
	}
	if array == "" {
		return nil, fmt.Errorf("loadgen: compiled program has no arrays")
	}
	count := opt.Count
	if last := dims[len(dims)-1]; count > last {
		count = last
	}
	dir := make([]int64, len(dims))
	dir[len(dims)-1] = 1
	queries := make([]offsetQuery, opt.Batch)
	for i := range queries {
		start := make([]int64, len(dims))
		start[0] = int64(i) % dims[0] // spread batches across rows
		queries[i] = offsetQuery{Start: start, Dir: dir, Count: count}
	}
	qbody, _ := json.Marshal(offsetsRequest{Array: array, Queries: queries})
	url := opt.BaseURL + "/v1/layouts/" + comp.LayoutID + "/offsets"

	var mu sync.Mutex
	latencies := make([][]int64, opt.Concurrency)
	var errs int64
	start := time.Now()
	deadline := start.Add(opt.Duration)
	err = exp.ForEachIndex(ctx, opt.Concurrency, opt.Concurrency, func(w int) error {
		var lats []int64
		var myErrs int64
		for time.Now().Before(deadline) && ctx.Err() == nil {
			t0 := time.Now()
			resp, err := client.Post(url, "application/json", bytes.NewReader(qbody))
			if err != nil {
				myErrs++
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				myErrs++
				continue
			}
			lats = append(lats, time.Since(t0).Microseconds())
		}
		mu.Lock()
		latencies[w] = lats
		errs += myErrs
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	var all []int64
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := &LoadResult{
		Requests:  int64(len(all)),
		Errors:    errs,
		DurationS: elapsed.Seconds(),
		RPS:       float64(len(all)) / elapsed.Seconds(),
	}
	if len(all) > 0 {
		res.P50US = all[len(all)*50/100]
		res.P90US = all[len(all)*90/100]
		res.P99US = all[len(all)*99/100]
		res.MaxUS = all[len(all)-1]
	}
	return res, nil
}
