package service

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"flopt/internal/exp"
	"flopt/internal/service/api"
	"flopt/internal/service/client"
)

// LoadOptions configures one load-generation run against a running
// daemon (or a cluster of them). The generator compiles Workload once,
// warms every target, then hammers the offset-query hot path from
// Concurrency keep-alive connections for Duration, measuring
// client-side latency. All traffic goes through the typed v1 client —
// the generator holds no wire-format knowledge of its own.
type LoadOptions struct {
	// BaseURL is one node URL, or a comma-separated list for cluster
	// mode; workers round-robin across the targets.
	BaseURL     string
	Workload    string
	Duration    time.Duration
	Concurrency int
	// Batch is the number of queries per request body.
	Batch int
	// Count is the per-query run length (contiguous innermost-loop walk).
	Count int64
}

// DefaultLoadOptions returns the BENCH_service.json measurement shape.
func DefaultLoadOptions() LoadOptions {
	return LoadOptions{
		BaseURL:     "http://127.0.0.1:8080",
		Workload:    "swim",
		Duration:    10 * time.Second,
		Concurrency: 32,
		Batch:       4,
		Count:       512,
	}
}

// LoadResult is the measurement: request throughput and latency
// quantiles (µs) over every completed request.
type LoadResult struct {
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	DurationS float64 `json:"duration_s"`
	RPS       float64 `json:"rps"`
	P50US     int64   `json:"p50_us"`
	P90US     int64   `json:"p90_us"`
	P99US     int64   `json:"p99_us"`
	MaxUS     int64   `json:"max_us"`
	// Targets is the number of nodes traffic was spread over.
	Targets int `json:"targets,omitempty"`
}

// RunLoad executes the load test. It returns an error only when no
// target can be reached or compiled against; per-request failures
// during the measured window are counted in Errors.
func RunLoad(ctx context.Context, opt LoadOptions) (*LoadResult, error) {
	hc := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        opt.Concurrency * 2,
			MaxIdleConnsPerHost: opt.Concurrency * 2,
		},
	}
	var targets []*client.Client
	for _, u := range strings.Split(opt.BaseURL, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		targets = append(targets, client.New(u, client.WithHTTPClient(hc)))
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("loadgen: no target URLs in %q", opt.BaseURL)
	}

	// Compile once via the first target; in cluster mode the routing
	// layer forwards it to the ring owner either way. Then warm every
	// other target with one offsets probe so peer cache fills happen
	// before the measured window, not during it.
	comp, err := targets[0].Compile(ctx, &api.CompileRequest{Workload: opt.Workload})
	if err != nil {
		return nil, fmt.Errorf("loadgen: compile: %w", err)
	}
	// Query the largest array along its innermost dimension — the
	// contiguous-run case the Strider fast path serves in O(segments).
	var array string
	var dims []int64
	for name, info := range comp.Arrays {
		if array == "" || info.FileElems > comp.Arrays[array].FileElems {
			array, dims = name, info.Dims
		}
	}
	if array == "" {
		return nil, fmt.Errorf("loadgen: compiled program has no arrays")
	}
	count := opt.Count
	if last := dims[len(dims)-1]; count > last {
		count = last
	}
	dir := make([]int64, len(dims))
	dir[len(dims)-1] = 1
	queries := make([]api.OffsetQuery, opt.Batch)
	for i := range queries {
		start := make([]int64, len(dims))
		start[0] = int64(i) % dims[0] // spread batches across rows
		queries[i] = api.OffsetQuery{Start: start, Dir: dir, Count: count}
	}
	req := &api.OffsetsRequest{Array: array, Queries: queries}
	for i, tgt := range targets {
		if _, err := tgt.Offsets(ctx, comp.LayoutID, req); err != nil {
			return nil, fmt.Errorf("loadgen: warmup target %d (%s): %w", i, tgt.BaseURL(), err)
		}
	}

	var mu sync.Mutex
	latencies := make([][]int64, opt.Concurrency)
	var errs int64
	start := time.Now()
	deadline := start.Add(opt.Duration)
	err = exp.ForEachIndex(ctx, opt.Concurrency, opt.Concurrency, func(w int) error {
		tgt := targets[w%len(targets)]
		var lats []int64
		var myErrs int64
		for time.Now().Before(deadline) && ctx.Err() == nil {
			t0 := time.Now()
			if _, err := tgt.Offsets(ctx, comp.LayoutID, req); err != nil {
				myErrs++
				continue
			}
			lats = append(lats, time.Since(t0).Microseconds())
		}
		mu.Lock()
		latencies[w] = lats
		errs += myErrs
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	var all []int64
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := &LoadResult{
		Requests:  int64(len(all)),
		Errors:    errs,
		DurationS: elapsed.Seconds(),
		RPS:       float64(len(all)) / elapsed.Seconds(),
		Targets:   len(targets),
	}
	if len(all) > 0 {
		res.P50US = all[len(all)*50/100]
		res.P90US = all[len(all)*90/100]
		res.P99US = all[len(all)*99/100]
		res.MaxUS = all[len(all)-1]
	}
	return res, nil
}
