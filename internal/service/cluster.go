package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"flopt/internal/cluster"
	"flopt/internal/service/api"
	"flopt/internal/service/client"
	"flopt/internal/sim"
)

// peerHeader marks a request as peer-originated. A node receiving it
// serves locally — no routing, no placement, no re-forwarding — which
// makes forwarding loops structurally impossible: every request crosses
// the cluster at most once.
const peerHeader = "X-Floptd-Peer"

// ClusterConfig turns the daemon into one member of a static-membership
// cluster. The roster must list every member including this node (Self
// names which entry we are); all members must be started with the same
// roster, or they will disagree about ring ownership.
type ClusterConfig struct {
	// Self is this node's roster ID.
	Self string
	// Roster is the full membership, self included.
	Roster []cluster.Node
	// VNodes is the ring's virtual-node factor (0 = cluster.DefaultVNodes).
	VNodes int
	// GossipInterval is how often peers' load snapshots are refreshed
	// (0 = 1 s). Load older than 3 intervals is treated as unknown.
	GossipInterval time.Duration
	// PeerTimeout bounds every peer call (0 = 2 s) — the deadline
	// discipline that keeps a slow peer from consuming a local request's
	// entire budget before the local fallback gets its turn.
	PeerTimeout time.Duration
	// BreakerThreshold consecutive transport failures open a peer's
	// circuit breaker for BreakerCooldown (0 = 3 failures, 5 s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

func (c *ClusterConfig) validate() error {
	if c.Self == "" {
		return fmt.Errorf("cluster: Self not set")
	}
	for _, n := range c.Roster {
		if n.ID == c.Self {
			return nil
		}
	}
	return fmt.Errorf("cluster: self %q not in roster", c.Self)
}

// peerConn is one remote roster member: its typed client (stamped with
// the peer header) and its circuit breaker.
type peerConn struct {
	node    cluster.Node
	client  *client.Client
	breaker *cluster.Breaker
}

// clusterNode is the Server's cluster brain: the ring, the peer
// connections, the gossiped load table, and the bounded store of
// replica layout records picked up from forwarded compiles.
type clusterNode struct {
	cfg   ClusterConfig
	self  cluster.Node
	ring  *cluster.Ring
	peers map[string]*peerConn // roster minus self
	loads *cluster.Table
	met   *metrics

	mu       sync.Mutex
	replicas map[string]api.LayoutRecord // layout ID → record, FIFO-bounded
	order    []string
	maxRecs  int

	stop chan struct{}
	wg   sync.WaitGroup
}

// errPeerDown reports a peer call that never reached the peer: breaker
// open, transport failure, or deadline. The caller falls back to local
// compute; it is never surfaced to clients directly.
var errPeerDown = errors.New("service: peer unreachable")

func newClusterNode(cfg ClusterConfig, maxRecs int, met *metrics) (*clusterNode, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.GossipInterval <= 0 {
		cfg.GossipInterval = time.Second
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = 2 * time.Second
	}
	ids := make([]string, 0, len(cfg.Roster))
	cn := &clusterNode{
		cfg:      cfg,
		peers:    map[string]*peerConn{},
		loads:    cluster.NewTable(),
		met:      met,
		replicas: map[string]api.LayoutRecord{},
		maxRecs:  maxRecs,
		stop:     make(chan struct{}),
	}
	for _, n := range cfg.Roster {
		ids = append(ids, n.ID)
		if n.ID == cfg.Self {
			cn.self = n
			continue
		}
		cn.peers[n.ID] = &peerConn{
			node: n,
			client: client.New(n.URL,
				client.WithHTTPClient(&http.Client{Timeout: cfg.PeerTimeout}),
				client.WithHeader(peerHeader, cfg.Self)),
			breaker: cluster.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		}
	}
	cn.ring = cluster.NewRing(ids, cfg.VNodes)
	for _, id := range ids {
		met.gauge(mRingShare(id), cn.ring.Share(id))
	}
	return cn, nil
}

// owner returns the roster ID owning a layout.
func (cn *clusterNode) owner(layoutID string) string { return cn.ring.Owner(layoutID) }

// call runs fn against peer id under the deadline and breaker
// discipline, maintaining the per-peer request/error counters. A 4xx
// from the peer is a healthy peer giving a semantic answer: it closes
// the breaker and is returned as-is for pass-through. Transport errors
// and 5xx trip the breaker and come back wrapped in errPeerDown so
// callers fall back to local compute.
func (cn *clusterNode) call(ctx context.Context, id string, fn func(context.Context, *client.Client) error) error {
	p, ok := cn.peers[id]
	if !ok {
		return fmt.Errorf("%w: unknown peer %q", errPeerDown, id)
	}
	if !p.breaker.Allow() {
		return fmt.Errorf("%w: %s breaker open", errPeerDown, id)
	}
	cn.met.inc(mPeerRequests(id))
	cctx, cancel := context.WithTimeout(ctx, cn.cfg.PeerTimeout)
	defer cancel()
	err := fn(cctx, p.client)
	var ae *client.APIError
	if err == nil || (errors.As(err, &ae) && ae.Status < 500) {
		p.breaker.Record(true)
		cn.met.gauge(mPeerUp(id), 1)
		return err
	}
	p.breaker.Record(false)
	cn.met.inc(mPeerErrors(id))
	if p.breaker.Open() {
		cn.met.gauge(mPeerUp(id), 0)
	}
	return fmt.Errorf("%w: %s: %v", errPeerDown, id, err)
}

// rememberRecord stores a replica layout record (FIFO-bounded) so a
// later offsets/simulate miss can materialize the layout without
// another owner round-trip.
func (cn *clusterNode) rememberRecord(rec api.LayoutRecord) {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if _, ok := cn.replicas[rec.ID]; ok {
		return
	}
	cn.replicas[rec.ID] = rec
	cn.order = append(cn.order, rec.ID)
	for cn.maxRecs > 0 && len(cn.order) > cn.maxRecs {
		delete(cn.replicas, cn.order[0])
		cn.order = cn.order[1:]
	}
}

func (cn *clusterNode) record(id string) (api.LayoutRecord, bool) {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	rec, ok := cn.replicas[id]
	return rec, ok
}

// startGossip launches the load-refresh loop. The first sweep runs
// immediately so placement has data as soon as the node is up.
func (cn *clusterNode) startGossip(selfLoad func() cluster.Load) {
	cn.wg.Add(1)
	go func() {
		defer cn.wg.Done()
		t := time.NewTicker(cn.cfg.GossipInterval)
		defer t.Stop()
		for {
			cn.sweep(selfLoad)
			select {
			case <-cn.stop:
				return
			case <-t.C:
			}
		}
	}()
}

func (cn *clusterNode) stopGossip() {
	select {
	case <-cn.stop:
	default:
		close(cn.stop)
	}
	cn.wg.Wait()
}

// sweep refreshes the local load entry and polls every peer's
// /v1/cluster/status, adopting each peer's self-reported load.
func (cn *clusterNode) sweep(selfLoad func() cluster.Load) {
	cn.loads.Update(cn.cfg.Self, selfLoad())
	ids := make([]string, 0, len(cn.peers))
	for id := range cn.peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		var st *api.ClusterStatusResponse
		err := cn.call(context.Background(), id, func(ctx context.Context, c *client.Client) error {
			var err error
			st, err = c.ClusterStatus(ctx)
			return err
		})
		if err != nil {
			// A peer that cannot answer status has no current load; its
			// stale entry must not attract job placements.
			cn.loads.Forget(id)
			continue
		}
		for _, n := range st.Nodes {
			if n.ID == id && n.Self {
				cn.loads.Update(id, cluster.Load{
					QueueDepth: n.QueueDepth,
					Running:    n.RunningJobs,
					JobEWMAUS:  n.JobEWMAUS,
					Layouts:    n.LayoutsResident,
					UpdatedAt:  time.Now(),
				})
			}
		}
	}
}

// placeJob picks the node a new simulation job should run on: the
// least-backlogged member, with ties toward self. Peers with open
// breakers or load older than three gossip intervals are not
// candidates.
func (cn *clusterNode) placeJob(selfLoad cluster.Load) string {
	candidates := map[string]cluster.Load{cn.cfg.Self: selfLoad}
	staleAfter := 3 * cn.cfg.GossipInterval
	for id, p := range cn.peers {
		if p.breaker.Open() {
			continue
		}
		l, ok := cn.loads.Get(id)
		if !ok || time.Since(l.UpdatedAt) > staleAfter {
			continue
		}
		candidates[id] = l
	}
	return cluster.LeastLoaded(cn.cfg.Self, candidates)
}

// ---- Server integration ----

// clusterEnabled reports whether this Server is a cluster member.
func (s *Server) clusterEnabled() bool { return s.clu != nil }

// forwarded reports whether r arrived from a peer (and from whom).
func forwarded(r *http.Request) (string, bool) {
	peer := r.Header.Get(peerHeader)
	return peer, peer != ""
}

// propagateHeaders copies the workload headers (SLO class, client
// identity, no-record) from r onto ctx so a peer call carries them:
// the executing node's per-class histograms and -record trace then see
// the classification the client declared, not a blank.
func propagateHeaders(ctx context.Context, r *http.Request) context.Context {
	for _, h := range []string{api.HeaderSLOClass, api.HeaderClient, api.HeaderNoRecord} {
		if v := r.Header.Get(h); v != "" {
			ctx = client.ContextWithHeader(ctx, h, v)
		}
	}
	return ctx
}

// selfLoad snapshots this node's load for gossip and placement.
func (s *Server) selfLoad() cluster.Load {
	depth, running, ewma := s.jobs.loadStats()
	return cluster.Load{
		QueueDepth: depth,
		Running:    running,
		JobEWMAUS:  ewma,
		Layouts:    s.cache.resident(),
		UpdatedAt:  time.Now(),
	}
}

// fillLayout materializes a non-resident layout from the cluster: a
// locally remembered replica record, or the owner's GET /v1/layouts/{id}.
// The record is never trusted — the layout is recompiled locally and its
// content-addressed ID must reproduce the requested one, the same
// verification the crash-recovery replay applies to the journal. Fill
// builds count in cluster_fill_builds_total, not compile_builds_total.
func (s *Server) fillLayout(ctx context.Context, id string) (*compiled, error) {
	rec, ok := s.clu.record(id)
	if !ok {
		owner := s.clu.owner(id)
		if owner == s.clu.cfg.Self {
			// We ARE the owner and it is not resident: nothing to fetch.
			return nil, errf(kindNotFound, "unknown layout %q (evicted or never compiled: re-POST /v1/compile — identical programs get identical IDs)", id)
		}
		var fetched *api.LayoutRecord
		err := s.clu.call(ctx, owner, func(cctx context.Context, c *client.Client) error {
			var err error
			fetched, err = c.LayoutRecord(cctx, id)
			return err
		})
		if err != nil {
			return nil, errf(kindNotFound, "unknown layout %q (owner %s: %v)", id, owner, err)
		}
		rec = *fetched
	}
	cfg := rec.Config.Apply(s.cfg.Platform)
	if err := cfg.Validate(); err != nil {
		s.met.inc(mClusterFillMismatch)
		return nil, errf(kindNotFound, "layout %q record invalid under local platform: %v", id, err)
	}
	if got := layoutID(rec.Source, cfg); got != id {
		// The record does not reproduce the requested ID: stale roster,
		// diverged base platform, or a corrupt peer. Refuse — serving it
		// would answer queries for id with a different layout's geometry.
		s.met.inc(mClusterFillMismatch)
		return nil, errf(kindNotFound, "layout %q record failed verification (recompiles to %s)", id, got)
	}
	ent, _, err := s.cache.getCounted(ctx, rec.Source, cfg, mClusterFillBuilds)
	if err != nil {
		return nil, errf(kindUnprocessable, "layout %q fill failed: %v", id, err)
	}
	s.clu.rememberRecord(rec)
	s.met.inc(mClusterFills)
	return ent, nil
}

// lookupOrFill is the cluster-aware cache lookup: resident entries win;
// a miss on a cluster member tries a peer fill. The bool reports whether
// a fill produced the entry.
func (s *Server) lookupOrFill(ctx context.Context, id string) (*compiled, bool, error) {
	if ent, ok := s.cache.lookup(id); ok {
		return ent, false, nil
	}
	if !s.clusterEnabled() {
		return nil, false, errf(kindNotFound, "unknown layout %q (evicted or never compiled: re-POST /v1/compile — identical programs get identical IDs)", id)
	}
	ent, err := s.fillLayout(ctx, id)
	if err != nil {
		return nil, false, err
	}
	return ent, true, nil
}

// writeClientError re-renders a peer's 4xx as this node's response —
// status, code, message, and retry hint pass through unchanged.
func (s *Server) writeClientError(w http.ResponseWriter, ae *client.APIError) {
	s.failEnvelope(w, ae.Status, ae.RetryAfterS, ae.Message)
}

// nodeID returns this node's roster ID, or "" outside cluster mode
// (the Node response fields then stay omitted).
func (s *Server) nodeID() string {
	if s.clu != nil {
		return s.clu.cfg.Self
	}
	return ""
}

// forwardCompile routes a compile to the layout's ring owner — the
// cluster-wide singleflight: every member forwards a given program to
// the same owner, whose local singleflight then builds it exactly once.
// Returns true when the response was written (forward succeeded, or a
// healthy owner's 4xx passed through); false sends the caller down the
// local-compile path (we own the layout, it is already resident here,
// or the owner is unreachable and we degrade to local compute).
func (s *Server) forwardCompile(ctx context.Context, w http.ResponseWriter, source string, overrides *api.PlatformConfig, cfg sim.Config) bool {
	id := layoutID(source, cfg)
	owner := s.clu.owner(id)
	if owner == s.clu.cfg.Self {
		return false
	}
	if _, ok := s.cache.lookup(id); ok {
		return false // read-through replica already resident: serve locally
	}
	var resp *api.CompileResponse
	err := s.clu.call(ctx, owner, func(cctx context.Context, c *client.Client) error {
		var err error
		resp, err = c.Compile(cctx, &api.CompileRequest{Source: source, Config: overrides})
		return err
	})
	var ae *client.APIError
	if errors.As(err, &ae) {
		// A healthy owner rejected the program; ours would say the same.
		s.met.inc(mCompileErrors)
		s.writeClientError(w, ae)
		return true
	}
	if err != nil {
		s.met.inc(mClusterLocalFallback)
		return false
	}
	s.met.inc(mClusterForwardCompile)
	// Remember the inputs as a replica record: a later offsets miss here
	// materializes the layout locally without asking the owner again.
	s.clu.rememberRecord(api.LayoutRecord{ID: resp.LayoutID, Source: source, Config: api.FromConfig(cfg)})
	if resp.Node == "" {
		resp.Node = owner
	}
	s.writeJSON(w, http.StatusOK, resp)
	return true
}

// forwardSimulate places a job onto the least-loaded member. Returns
// true when the response was written; false runs the job locally (we
// are the least loaded, or the chosen peer is unreachable).
func (s *Server) forwardSimulate(w http.ResponseWriter, r *http.Request, req *api.SimulateRequest) bool {
	target := s.clu.placeJob(s.selfLoad())
	if target == s.clu.cfg.Self {
		return false
	}
	var resp *api.JobResponse
	err := s.clu.call(propagateHeaders(r.Context(), r), target, func(cctx context.Context, c *client.Client) error {
		var err error
		resp, err = c.Simulate(cctx, req)
		return err
	})
	var ae *client.APIError
	if errors.As(err, &ae) {
		s.writeClientError(w, ae)
		return true
	}
	if err != nil {
		s.met.inc(mClusterLocalFallback)
		return false
	}
	s.met.inc(mClusterJobsPlaced)
	if resp.Node == "" {
		resp.Node = target
	}
	w.Header().Set("Location", "/v1/jobs/"+resp.JobID)
	s.writeJSON(w, http.StatusAccepted, resp)
	return true
}

// proxyJobStatus serves a poll for a job running on another member,
// resolved from the node name embedded in the job ID. Returns false
// when the ID does not parse to a known peer (the caller 404s).
func (s *Server) proxyJobStatus(w http.ResponseWriter, r *http.Request, id string) bool {
	node, _, ok := strings.Cut(strings.TrimPrefix(id, "job-"), "-")
	if !ok || node == s.clu.cfg.Self {
		return false
	}
	if _, isPeer := s.clu.peers[node]; !isPeer {
		return false
	}
	var resp *api.JobResponse
	err := s.clu.call(propagateHeaders(r.Context(), r), node, func(cctx context.Context, c *client.Client) error {
		var err error
		resp, err = c.JobStatus(cctx, id)
		return err
	})
	var ae *client.APIError
	if errors.As(err, &ae) {
		s.writeClientError(w, ae)
		return true
	}
	if err != nil {
		s.failErr(w, unavailablef(1, "job %q lives on %s, which is unreachable", id, node))
		return true
	}
	s.met.inc(mClusterJobsProxied)
	if resp.Node == "" {
		resp.Node = node
	}
	s.writeJSON(w, http.StatusOK, resp)
	return true
}

// handleLayoutRecord serves GET /v1/layouts/{id}: the portable record of
// a resident layout — what a peer fill (or an auditing client) fetches.
func (s *Server) handleLayoutRecord(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ent, ok := s.cache.lookup(id)
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown layout %q", id)
		return
	}
	s.writeJSON(w, http.StatusOK, api.LayoutRecord{
		ID:     ent.ID,
		Source: ent.Source,
		Config: api.FromConfig(ent.Cfg),
	})
}

// handleClusterStatus serves GET /v1/cluster/status: this node's view of
// the roster. A single-node daemon answers with one self entry, so the
// endpoint (and the client method) work identically either way.
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	self := s.selfLoad()
	if !s.clusterEnabled() {
		s.writeJSON(w, http.StatusOK, api.ClusterStatusResponse{
			Self: "self",
			Nodes: []api.NodeStatus{{
				ID: "self", Self: true, Healthy: true, RingShare: 1,
				QueueDepth: self.QueueDepth, RunningJobs: self.Running,
				JobEWMAUS: self.JobEWMAUS, LayoutsResident: self.Layouts,
			}},
		})
		return
	}
	cn := s.clu
	resp := api.ClusterStatusResponse{Self: cn.cfg.Self}
	staleAfter := 3 * cn.cfg.GossipInterval
	for _, n := range cn.cfg.Roster {
		st := api.NodeStatus{ID: n.ID, URL: n.URL, RingShare: cn.ring.Share(n.ID)}
		if n.ID == cn.cfg.Self {
			st.Self, st.Healthy = true, true
			st.QueueDepth, st.RunningJobs = self.QueueDepth, self.Running
			st.JobEWMAUS, st.LayoutsResident = self.JobEWMAUS, self.Layouts
		} else if l, ok := cn.loads.Get(n.ID); ok && time.Since(l.UpdatedAt) <= staleAfter {
			st.Healthy = !cn.peers[n.ID].breaker.Open()
			st.QueueDepth, st.RunningJobs = l.QueueDepth, l.Running
			st.JobEWMAUS, st.LayoutsResident = l.JobEWMAUS, l.Layouts
		}
		resp.Nodes = append(resp.Nodes, st)
	}
	sort.Slice(resp.Nodes, func(i, j int) bool { return resp.Nodes[i].ID < resp.Nodes[j].ID })
	s.writeJSON(w, http.StatusOK, resp)
}
