package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"flopt/internal/service/api"
)

func TestTypedErrors(t *testing.T) {
	cases := []struct {
		status int
		env    api.Error
		want   error
	}{
		{400, api.Error{Message: "bad", Code: api.CodeBadRequest}, ErrBadRequest},
		{404, api.Error{Message: "gone", Code: api.CodeNotFound}, ErrNotFound},
		{422, api.Error{Message: "nope", Code: api.CodeUnprocessable}, ErrUnprocessable},
		{429, api.Error{Message: "slow down", Code: api.CodeOverload, RetryAfterS: 7}, ErrThrottled},
		{503, api.Error{Message: "draining", Code: api.CodeUnavailable}, ErrUnavailable},
		{500, api.Error{Message: "boom", Code: api.CodeInternal}, ErrInternal},
	}
	for _, tc := range cases {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(tc.status)
			json.NewEncoder(w).Encode(tc.env)
		}))
		c := New(srv.URL)
		_, err := c.JobStatus(context.Background(), "job-1")
		srv.Close()
		if !errors.Is(err, tc.want) {
			t.Errorf("status %d: errors.Is(%v, %v) = false", tc.status, err, tc.want)
		}
		var ae *APIError
		if !errors.As(err, &ae) {
			t.Fatalf("status %d: error %T is not *APIError", tc.status, err)
		}
		if ae.Message != tc.env.Message || ae.Status != tc.status {
			t.Errorf("status %d: APIError = %+v", tc.status, ae)
		}
		if tc.status == 429 && ae.RetryAfterS != 7 {
			t.Errorf("RetryAfterS = %d, want 7", ae.RetryAfterS)
		}
	}
}

func TestNonJSONErrorBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "plain text panic", http.StatusInternalServerError)
	}))
	defer srv.Close()
	_, err := New(srv.URL).JobStatus(context.Background(), "j")
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("errors.Is(ErrInternal) = false for %v", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Message != "plain text panic" {
		t.Fatalf("APIError = %+v", ae)
	}
}

func TestRetriesCarryAttemptHeaderAndStopOn4xx(t *testing.T) {
	var calls int32
	var attempts []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts = append(attempts, r.Header.Get("X-Retry-Attempt"))
		if atomic.AddInt32(&calls, 1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(api.Error{Message: "warming up", Code: api.CodeUnavailable})
			return
		}
		json.NewEncoder(w).Encode(api.JobResponse{JobID: "job-9", State: api.JobDone})
	}))
	defer srv.Close()

	c := New(srv.URL, WithRetries(3), WithMaxRetryWait(10*time.Millisecond))
	job, err := c.JobStatus(context.Background(), "job-9")
	if err != nil {
		t.Fatalf("JobStatus: %v", err)
	}
	if job.JobID != "job-9" || job.State != api.JobDone {
		t.Fatalf("job = %+v", job)
	}
	wantAttempts := []string{"", "1", "2"}
	if len(attempts) != len(wantAttempts) {
		t.Fatalf("attempts = %v", attempts)
	}
	for i, a := range attempts {
		if a != wantAttempts[i] {
			t.Errorf("attempt %d header = %q, want %q", i, a, wantAttempts[i])
		}
	}

	// A 404 must not be retried even with budget left.
	atomic.StoreInt32(&calls, 0)
	srv2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(api.Error{Message: "no such job", Code: api.CodeNotFound})
	}))
	defer srv2.Close()
	if _, err := New(srv2.URL, WithRetries(5)).JobStatus(context.Background(), "j"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Fatalf("404 was retried: %d calls", n)
	}
}

func TestStaticHeaderAndRoutes(t *testing.T) {
	type seen struct {
		method, path, peer string
	}
	var got []seen
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = append(got, seen{r.Method, r.URL.Path, r.Header.Get("X-Floptd-Peer")})
		switch {
		case r.URL.Path == "/v1/compile":
			json.NewEncoder(w).Encode(api.CompileResponse{LayoutID: "ly0"})
		case r.URL.Path == "/v1/layouts/ly0/offsets":
			json.NewEncoder(w).Encode(api.OffsetsResponse{LayoutID: "ly0"})
		case r.URL.Path == "/v1/layouts/ly0":
			json.NewEncoder(w).Encode(api.LayoutRecord{ID: "ly0"})
		case r.URL.Path == "/v1/simulate":
			json.NewEncoder(w).Encode(api.JobResponse{JobID: "job-1"})
		case r.URL.Path == "/v1/cluster/status":
			json.NewEncoder(w).Encode(api.ClusterStatusResponse{Self: "a"})
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	c := New(srv.URL, WithHeader("X-Floptd-Peer", "b"))
	ctx := context.Background()
	if _, err := c.Compile(ctx, &api.CompileRequest{Source: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Offsets(ctx, "ly0", &api.OffsetsRequest{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LayoutRecord(ctx, "ly0"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Simulate(ctx, &api.SimulateRequest{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ClusterStatus(ctx); err != nil {
		t.Fatal(err)
	}
	want := []seen{
		{"POST", "/v1/compile", "b"},
		{"POST", "/v1/layouts/ly0/offsets", "b"},
		{"GET", "/v1/layouts/ly0", "b"},
		{"POST", "/v1/simulate", "b"},
		{"GET", "/v1/cluster/status", "b"},
	}
	if len(got) != len(want) {
		t.Fatalf("saw %d requests, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("request %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestContextCancellationStopsRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(api.Error{Message: "down", Code: api.CodeUnavailable, RetryAfterS: 30})
	}))
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := New(srv.URL, WithRetries(10), WithMaxRetryWait(10*time.Second)).JobStatus(ctx, "j")
	if err == nil {
		t.Fatal("expected error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop ignored context: ran %v", elapsed)
	}
}
