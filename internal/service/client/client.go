// Package client is the Go client for floptd's v1 HTTP API. It is the
// only sanctioned HTTP path to a floptd node — the bundled load
// generator and the cluster's peer-to-peer calls both go through it —
// so wire-format knowledge (routes, envelopes, retry headers) lives
// here and in internal/service/api, nowhere else.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"flopt/internal/service/api"
)

// Sentinel errors, one per api error code. Every non-2xx response
// decodes to an *APIError that wraps the matching sentinel, so callers
// branch with errors.Is(err, client.ErrThrottled) instead of matching
// status integers.
var (
	ErrBadRequest    = errors.New("floptd: bad request")
	ErrNotFound      = errors.New("floptd: not found")
	ErrUnprocessable = errors.New("floptd: unprocessable program")
	ErrThrottled     = errors.New("floptd: throttled")
	ErrUnavailable   = errors.New("floptd: unavailable")
	ErrInternal      = errors.New("floptd: internal server error")
)

// APIError is a decoded error envelope plus its HTTP status. It wraps
// the sentinel for its code, so errors.Is works through it.
type APIError struct {
	Status      int
	Code        string
	Message     string
	RetryAfterS int
}

func (e *APIError) Error() string {
	return fmt.Sprintf("floptd: %s (%d %s)", e.Message, e.Status, e.Code)
}

// Is matches the sentinel corresponding to the error's code, falling
// back to the status class when the envelope carried no code.
func (e *APIError) Is(target error) bool {
	return target == e.sentinel()
}

func (e *APIError) sentinel() error {
	switch e.Code {
	case api.CodeBadRequest:
		return ErrBadRequest
	case api.CodeNotFound:
		return ErrNotFound
	case api.CodeUnprocessable:
		return ErrUnprocessable
	case api.CodeOverload:
		return ErrThrottled
	case api.CodeUnavailable:
		return ErrUnavailable
	case api.CodeInternal:
		return ErrInternal
	}
	switch {
	case e.Status == http.StatusTooManyRequests:
		return ErrThrottled
	case e.Status == http.StatusNotFound:
		return ErrNotFound
	case e.Status >= 500:
		return ErrUnavailable
	default:
		return ErrBadRequest
	}
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times a retryable request (429/503 with no
// body consumed, or a transport error) is re-sent. 0 disables retries.
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithMaxRetryWait caps how long a single Retry-After hint can hold a
// retry (defaults to 2 s — peer calls would rather fall back to local
// compute than sleep out a long hint).
func WithMaxRetryWait(d time.Duration) Option { return func(c *Client) { c.maxRetryWait = d } }

// WithHeader attaches a static header to every request — cluster peers
// use it to mark forwarded traffic so the receiving node never
// re-forwards (loop prevention).
func WithHeader(key, value string) Option {
	return func(c *Client) { c.headers[key] = value }
}

// ctxHeaderKey carries per-request headers through a context.
type ctxHeaderKey struct{}

// ContextWithHeader returns a context that makes every client request
// carried under it send the given header. Calls stack: each adds one
// header on top of those already in ctx. The load generator stamps SLO
// class and client identity this way, and the cluster forward paths use
// it to propagate those headers to the executing node without widening
// every client method's signature.
func ContextWithHeader(ctx context.Context, key, value string) context.Context {
	prev, _ := ctx.Value(ctxHeaderKey{}).(map[string]string)
	m := make(map[string]string, len(prev)+1)
	for k, v := range prev {
		m[k] = v
	}
	m[key] = value
	return context.WithValue(ctx, ctxHeaderKey{}, m)
}

// Client talks to one floptd node.
type Client struct {
	base         string
	hc           *http.Client
	retries      int
	maxRetryWait time.Duration
	headers      map[string]string
}

// New builds a client for the node at baseURL (scheme://host[:port],
// no trailing path).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:         strings.TrimRight(baseURL, "/"),
		hc:           &http.Client{Timeout: 30 * time.Second},
		retries:      0,
		maxRetryWait: 2 * time.Second,
		headers:      map[string]string{},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL returns the node URL the client was built for.
func (c *Client) BaseURL() string { return c.base }

// Compile submits a program for layout compilation and returns the
// compile summary (content-addressed layout ID, per-array placements).
func (c *Client) Compile(ctx context.Context, req *api.CompileRequest) (*api.CompileResponse, error) {
	var out api.CompileResponse
	if err := c.do(ctx, http.MethodPost, "/"+api.V1+"/compile", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Offsets resolves element coordinates to device offsets under a
// compiled layout.
func (c *Client) Offsets(ctx context.Context, layoutID string, req *api.OffsetsRequest) (*api.OffsetsResponse, error) {
	var out api.OffsetsResponse
	path := "/" + api.V1 + "/layouts/" + url.PathEscape(layoutID) + "/offsets"
	if err := c.do(ctx, http.MethodPost, path, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Simulate enqueues an asynchronous simulation job and returns its
// accepted job record (poll with JobStatus).
func (c *Client) Simulate(ctx context.Context, req *api.SimulateRequest) (*api.JobResponse, error) {
	var out api.JobResponse
	if err := c.do(ctx, http.MethodPost, "/"+api.V1+"/simulate", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// JobStatus fetches the current state of an asynchronous job.
func (c *Client) JobStatus(ctx context.Context, jobID string) (*api.JobResponse, error) {
	var out api.JobResponse
	path := "/" + api.V1 + "/jobs/" + url.PathEscape(jobID)
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// LayoutRecord fetches the compiled-layout record (source + config) a
// peer needs to rebuild and verify the layout locally.
func (c *Client) LayoutRecord(ctx context.Context, layoutID string) (*api.LayoutRecord, error) {
	var out api.LayoutRecord
	path := "/" + api.V1 + "/layouts/" + url.PathEscape(layoutID)
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ClusterStatus fetches the node's view of the cluster: roster, ring
// shares, health, and per-node load.
func (c *Client) ClusterStatus(ctx context.Context) (*api.ClusterStatusResponse, error) {
	var out api.ClusterStatusResponse
	if err := c.do(ctx, http.MethodGet, "/"+api.V1+"/cluster/status", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// do runs one logical request: marshal, send, decode — retrying
// transport errors and 429/503 envelopes up to the configured budget.
// Retries carry X-Retry-Attempt so the server's retry-budget middleware
// can account for them, and they honor the server's Retry-After hint up
// to maxRetryWait.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("floptd: encode request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		lastErr = c.once(ctx, method, path, body, attempt, out)
		if lastErr == nil {
			return nil
		}
		if attempt >= c.retries || !retryable(lastErr) {
			return lastErr
		}
		wait := retryWait(lastErr, attempt)
		if wait > c.maxRetryWait {
			wait = c.maxRetryWait
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func (c *Client) once(ctx context.Context, method, path string, body []byte, attempt int, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("floptd: build request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range c.headers {
		req.Header.Set(k, v)
	}
	if m, ok := ctx.Value(ctxHeaderKey{}).(map[string]string); ok {
		for k, v := range m {
			req.Header.Set(k, v)
		}
	}
	if attempt > 0 {
		req.Header.Set("X-Retry-Attempt", strconv.Itoa(attempt))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("floptd: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("floptd: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// decodeError turns a non-2xx response into an *APIError, preferring
// the JSON envelope but surviving non-JSON bodies (proxies, panics).
func decodeError(resp *http.Response) error {
	ae := &APIError{Status: resp.StatusCode, Code: api.CodeForStatus(resp.StatusCode)}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var env api.Error
	if json.Unmarshal(raw, &env) == nil && env.Message != "" {
		ae.Message = env.Message
		if env.Code != "" {
			ae.Code = env.Code
		}
		ae.RetryAfterS = env.RetryAfterS
	} else {
		ae.Message = strings.TrimSpace(string(raw))
		if ae.Message == "" {
			ae.Message = resp.Status
		}
	}
	if ae.RetryAfterS == 0 {
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			ae.RetryAfterS = s
		}
	}
	return ae
}

// retryable reports whether err is worth re-sending: transport errors
// and the two shed-load statuses. 4xx semantic errors never retry.
func retryable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status == http.StatusTooManyRequests || ae.Status == http.StatusServiceUnavailable
	}
	// Transport-level failure (conn refused, reset, timeout): retryable
	// unless the context itself is done.
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// retryWait derives the pause before the next attempt: the server's
// Retry-After hint when present, else exponential backoff from 50 ms.
func retryWait(err error, attempt int) time.Duration {
	var ae *APIError
	if errors.As(err, &ae) && ae.RetryAfterS > 0 {
		return time.Duration(ae.RetryAfterS) * time.Second
	}
	return 50 * time.Millisecond << attempt
}
