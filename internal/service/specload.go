package service

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"flopt/internal/obs"
	"flopt/internal/service/api"
	"flopt/internal/service/client"
	"flopt/internal/workload"
)

// SpecLoadOptions configures one workload-driven run against a daemon
// (or cluster): the events come from a spec expansion or a recorded
// trace, and are issued strictly in sequence order — which is what makes
// a -record trace of the run reproduce the event sequence exactly, and
// a replay of that trace issue the same requests again.
type SpecLoadOptions struct {
	// BaseURL is one node URL, or a comma-separated list; events
	// round-robin across the targets by sequence number.
	BaseURL string
	Events  []workload.Event
	// Pace replays events on their modeled timeline scaled by this
	// factor (1 = real time, 2 = twice as fast). 0 issues back to back —
	// the mode the determinism tests and the smoke script use, since it
	// keeps the request sequence exact without waiting out the clock.
	Pace float64
}

// ClassStats is the client-side account of one SLO class.
type ClassStats struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	P50US    int64 `json:"p50_us"`
	P99US    int64 `json:"p99_us"`
}

// SpecLoadResult is the measurement of a spec or replay run.
type SpecLoadResult struct {
	Events    int64                  `json:"events"`
	Errors    int64                  `json:"errors"`
	DurationS float64                `json:"duration_s"`
	RPS       float64                `json:"rps"`
	Targets   int                    `json:"targets,omitempty"`
	Classes   map[string]*ClassStats `json:"classes"`
	Kinds     map[string]int64       `json:"kinds"`
}

// specTarget is one compiled program as seen through a target: the
// layout ID, the query geometry the offsets events use, and prebuilt
// request bodies reused across events (the client marshals them at call
// time and retains nothing, so mutating Start[0] per event is safe).
// Keeping the per-event path allocation-free is what holds the spec
// generator's client-side overhead within noise of the hammer loadgen
// (see BENCH_service.json's workload_spec entry).
type specProgram struct {
	layoutID string
	array    string
	dims     []int64
	count    int64
	offReq   *api.OffsetsRequest
	compReq  *api.CompileRequest
	simReq   *api.SimulateRequest
}

// RunSpecLoad issues opt.Events in order and reports per-class counts
// and latency quantiles. Setup compiles (learning each program's layout
// ID and array geometry) are marked api.HeaderNoRecord so a -record
// trace on the server holds exactly the issued events. It returns an
// error when no target can be reached or a program cannot be compiled;
// per-event failures during the run are counted, not fatal.
func RunSpecLoad(ctx context.Context, opt SpecLoadOptions) (*SpecLoadResult, error) {
	if len(opt.Events) == 0 {
		return nil, fmt.Errorf("loadgen: no events to issue")
	}
	hc := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        8,
			MaxIdleConnsPerHost: 8,
		},
	}
	var targets []*client.Client
	for _, u := range strings.Split(opt.BaseURL, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		targets = append(targets, client.New(u, client.WithHTTPClient(hc)))
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("loadgen: no target URLs in %q", opt.BaseURL)
	}

	// Setup pass: compile every program the stream names once per run
	// (no-record), and warm every target so peer fills happen before the
	// measured window. The offsets geometry mirrors the hammer loadgen:
	// the largest array, walked along its innermost dimension.
	setupCtx := client.ContextWithHeader(ctx, api.HeaderNoRecord, "1")
	programs := map[string]*specProgram{}
	for _, name := range workload.Programs(opt.Events) {
		comp, err := targets[0].Compile(setupCtx, &api.CompileRequest{Workload: name})
		if err != nil {
			return nil, fmt.Errorf("loadgen: setup compile %s: %w", name, err)
		}
		sp := &specProgram{layoutID: comp.LayoutID}
		for arr, info := range comp.Arrays {
			if sp.array == "" || info.FileElems > comp.Arrays[sp.array].FileElems {
				sp.array, sp.dims = arr, info.Dims
			}
		}
		if sp.array == "" {
			return nil, fmt.Errorf("loadgen: program %s has no arrays", name)
		}
		sp.count = 512
		if last := sp.dims[len(sp.dims)-1]; sp.count > last {
			sp.count = last
		}
		dir := make([]int64, len(sp.dims))
		dir[len(sp.dims)-1] = 1
		sp.offReq = &api.OffsetsRequest{
			Array:   sp.array,
			Queries: []api.OffsetQuery{{Start: make([]int64, len(sp.dims)), Dir: dir, Count: sp.count}},
		}
		sp.compReq = &api.CompileRequest{Workload: name}
		sp.simReq = &api.SimulateRequest{LayoutID: comp.LayoutID}
		for i, tgt := range targets[1:] {
			if _, err := tgt.Compile(setupCtx, &api.CompileRequest{Workload: name}); err != nil {
				return nil, fmt.Errorf("loadgen: warmup target %d (%s): %w", i+1, tgt.BaseURL(), err)
			}
		}
		programs[name] = sp
	}

	res := &SpecLoadResult{
		Targets: len(targets),
		Classes: map[string]*ClassStats{},
		Kinds:   map[string]int64{},
	}
	hists := map[string]*obs.Histogram{}
	// The distinct (SLO, client) pairs are few; caching their header
	// contexts keeps the per-event path allocation-free.
	ctxCache := map[[2]string]context.Context{}
	start := time.Now()
	for _, ev := range opt.Events {
		if ctx.Err() != nil {
			break
		}
		if opt.Pace > 0 {
			due := start.Add(time.Duration(float64(ev.TimeUS)/opt.Pace) * time.Microsecond)
			if d := time.Until(due); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
				}
				if ctx.Err() != nil {
					break
				}
			}
		}
		cs := res.Classes[ev.SLO]
		if cs == nil {
			cs = &ClassStats{}
			res.Classes[ev.SLO] = cs
			hists[ev.SLO] = obs.NewHistogram(latencyBucketsUS()...)
		}
		res.Events++
		res.Kinds[ev.Kind]++
		cs.Requests++
		tgt := targets[int(ev.Seq)%len(targets)]
		ckey := [2]string{ev.SLO, ev.Client}
		ectx, ok := ctxCache[ckey]
		if !ok {
			ectx = client.ContextWithHeader(ctx, api.HeaderSLOClass, ev.SLO)
			if ev.Client != "" {
				ectx = client.ContextWithHeader(ectx, api.HeaderClient, ev.Client)
			}
			ctxCache[ckey] = ectx
		}
		sp := programs[ev.Program]
		t0 := time.Now()
		var err error
		switch ev.Kind {
		case workload.KindCompile:
			_, err = tgt.Compile(ectx, sp.compReq)
		case workload.KindOffsets:
			// A deterministic walk derived from the event's sequence
			// number: replays issue byte-identical query bodies.
			sp.offReq.Queries[0].Start[0] = ev.Seq % sp.dims[0]
			_, err = tgt.Offsets(ectx, sp.layoutID, sp.offReq)
		case workload.KindSimulate:
			// Fire and forget: the 202 acceptance is the event; jobs are
			// not polled (exp.WorkloadSweep is the offline analogue that
			// actually runs them).
			_, err = tgt.Simulate(ectx, sp.simReq)
		default:
			err = fmt.Errorf("unknown event kind %q", ev.Kind)
		}
		if err != nil {
			res.Errors++
			cs.Errors++
			continue
		}
		hists[ev.SLO].Observe(time.Since(t0).Microseconds())
	}
	res.DurationS = time.Since(start).Seconds()
	if res.DurationS > 0 {
		res.RPS = float64(res.Events-res.Errors) / res.DurationS
	}
	for class, h := range hists {
		res.Classes[class].P50US = h.Quantile(0.5)
		res.Classes[class].P99US = h.Quantile(0.99)
	}
	return res, nil
}

// ClassNames returns the result's SLO classes, sorted (stable output
// for logs and the smoke script).
func (r *SpecLoadResult) ClassNames() []string {
	names := make([]string, 0, len(r.Classes))
	for c := range r.Classes {
		names = append(names, c)
	}
	sort.Strings(names)
	return names
}
