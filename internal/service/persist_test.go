package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"flopt/internal/service/api"
)

// startDurable builds a server rooted at dir without the automatic
// cleanup newTestServer registers — restart tests manage the lifecycle
// explicitly so they can stop and reopen the same data directory.
func startDurable(t *testing.T, dir string, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := DefaultServerConfig()
	cfg.Workers = 2
	cfg.DataDir = dir
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, httptest.NewServer(s.Handler())
}

// stopDurable is the graceful-shutdown sequence floptd runs on SIGTERM:
// stop accepting, drain accepted jobs, compact and close the journals.
func stopDurable(t *testing.T, s *Server, ts *httptest.Server) {
	t.Helper()
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestLayoutRecoveryAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	a, tsA := startDurable(t, dir, nil)
	first := compileTestProg(t, tsA)
	var swim api.CompileResponse
	if code, body := postJSON(t, tsA.URL+"/v1/compile", api.CompileRequest{Workload: "swim"}, &swim); code != http.StatusOK {
		t.Fatalf("compile swim: %d: %s", code, body)
	}
	stopDurable(t, a, tsA)

	b, tsB := startDurable(t, dir, nil)
	defer stopDurable(t, b, tsB)
	if got := b.Metrics().counter(mLayoutsRecovered); got != 2 {
		t.Errorf("layouts recovered = %d, want 2", got)
	}
	if got := b.Metrics().counter(mRecoverySkipped); got != 0 {
		t.Errorf("recovery skipped = %d, want 0", got)
	}
	if got := b.cache.resident(); got != 2 {
		t.Errorf("resident after restart = %d, want 2", got)
	}
	// Identical resubmission hits the recovered catalog: same ID, cached.
	again := compileTestProg(t, tsB)
	if !again.Cached || again.LayoutID != first.LayoutID {
		t.Errorf("post-restart compile: cached=%v id=%q (want cached id %q)",
			again.Cached, again.LayoutID, first.LayoutID)
	}
	// The recovered layout answers offset queries without recompiling.
	var off api.OffsetsResponse
	code, body := postJSON(t, tsB.URL+"/v1/layouts/"+first.LayoutID+"/offsets",
		api.OffsetsRequest{Array: "A", Queries: []api.OffsetQuery{{Start: []int64{0, 0}, Dir: []int64{0, 1}, Count: 8}}}, &off)
	if code != http.StatusOK {
		t.Fatalf("offsets against recovered layout: %d: %s", code, body)
	}
	if got := b.Metrics().counter(mCompileBuilds); got != 2 {
		t.Errorf("builds on restarted server = %d, want 2 (replay only)", got)
	}
}

func TestUnfinishedJobRerunsAfterRestart(t *testing.T) {
	dir := t.TempDir()
	a, tsA := startDurable(t, dir, nil)
	comp := compileTestProg(t, tsA)
	var sub api.JobResponse
	if code, body := postJSON(t, tsA.URL+"/v1/simulate", api.SimulateRequest{LayoutID: comp.LayoutID}, &sub); code != http.StatusAccepted {
		t.Fatalf("simulate: %d: %s", code, body)
	}
	if j := waitJob(t, tsA, sub.JobID); j.State != api.JobDone {
		t.Fatalf("job = %+v", j)
	}
	stopDurable(t, a, tsA)

	// Simulate a crash between accept and completion: strip the terminal
	// records from the job journal, leaving an accept with no done — the
	// exact on-disk state a kill -9 mid-job leaves behind.
	path := filepath.Join(dir, jobWALFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var kept [][]byte
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("journal line %q: %v", line, err)
		}
		if rec.Op != jobOpDone {
			kept = append(kept, line)
		}
	}
	if err := os.WriteFile(path, append(bytes.Join(kept, []byte("\n")), '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	b, tsB := startDurable(t, dir, nil)
	defer stopDurable(t, b, tsB)
	if got := b.Metrics().counter(mJobsRecovered); got != 1 {
		t.Errorf("jobs recovered = %d, want 1", got)
	}
	j := waitJob(t, tsB, sub.JobID)
	if j.State != api.JobDone || j.Report == nil {
		t.Fatalf("re-run job = %+v", j)
	}
}

func TestJournalWriteFailureRejects(t *testing.T) {
	dir := t.TempDir()
	s, ts := startDurable(t, dir, nil)
	defer stopDurable(t, s, ts)
	comp := compileTestProg(t, ts)

	s.persist.setFailWrite(func() error { return fmt.Errorf("disk on fire") })

	// A compile whose record cannot be journaled is rejected and NOT
	// cached: clients must never hold an ID a crash could lose.
	code, body := postJSON(t, ts.URL+"/v1/compile", api.CompileRequest{Workload: "mgrid"}, nil)
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "not durable") {
		t.Errorf("compile under journal failure: %d %s", code, body)
	}
	if got := s.cache.resident(); got != 1 {
		t.Errorf("resident after rejected compile = %d, want 1", got)
	}
	// A simulate whose accept record cannot be journaled is not accepted.
	code, body = postJSON(t, ts.URL+"/v1/simulate", api.SimulateRequest{LayoutID: comp.LayoutID}, nil)
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "not durable") {
		t.Errorf("simulate under journal failure: %d %s", code, body)
	}
	if got := s.Metrics().counter(mJobsSubmitted); got != 0 {
		t.Errorf("jobs submitted under journal failure = %d, want 0", got)
	}
	if got := s.Metrics().counter(mJournalErrors); got < 2 {
		t.Errorf("journal errors = %d, want ≥ 2", got)
	}

	// Journal heals: both paths flow again.
	s.persist.setFailWrite(nil)
	if code, body := postJSON(t, ts.URL+"/v1/compile", api.CompileRequest{Workload: "mgrid"}, nil); code != http.StatusOK {
		t.Errorf("compile after heal: %d %s", code, body)
	}
	var sub api.JobResponse
	if code, body := postJSON(t, ts.URL+"/v1/simulate", api.SimulateRequest{LayoutID: comp.LayoutID}, &sub); code != http.StatusAccepted {
		t.Errorf("simulate after heal: %d %s", code, body)
	} else {
		waitJob(t, ts, sub.JobID)
	}
}

// TestDrainThenRestartReachesTerminalStates is the SIGTERM story end to
// end: accept a batch of jobs, drain (floptd's signal handler), restart
// on the same data dir, and require every accepted job ID to answer a
// terminal status on the new process — zero accepted-job loss across the
// restart boundary.
func TestDrainThenRestartReachesTerminalStates(t *testing.T) {
	dir := t.TempDir()
	a, tsA := startDurable(t, dir, nil)
	comp := compileTestProg(t, tsA)
	var ids []string
	for i := 0; i < 6; i++ {
		var sub api.JobResponse
		code, body := postJSON(t, tsA.URL+"/v1/simulate", api.SimulateRequest{LayoutID: comp.LayoutID}, &sub)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d: %s", i, code, body)
		}
		ids = append(ids, sub.JobID)
	}
	// Drain with jobs still in flight; every accepted job must finish.
	stopDurable(t, a, tsA)

	b, tsB := startDurable(t, dir, nil)
	defer stopDurable(t, b, tsB)
	for _, id := range ids {
		resp, err := http.Get(tsB.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var jr api.JobResponse
		err = json.NewDecoder(resp.Body).Decode(&jr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || jr.State != api.JobDone {
			t.Errorf("job %s after restart: status %d state %q, want done", id, resp.StatusCode, jr.State)
		}
	}
	if got := b.Metrics().counter(mJobsRecovered); got != 0 {
		t.Errorf("jobs re-run after clean drain = %d, want 0", got)
	}
	// The ID sequence resumes past the recovered records: a new
	// submission must not collide with a pre-restart ID.
	var sub api.JobResponse
	if code, body := postJSON(t, tsB.URL+"/v1/simulate", api.SimulateRequest{LayoutID: comp.LayoutID}, &sub); code != http.StatusAccepted {
		t.Fatalf("post-restart submit: %d: %s", code, body)
	}
	for _, id := range ids {
		if sub.JobID == id {
			t.Fatalf("post-restart job ID %s collides with a recovered job", sub.JobID)
		}
	}
	waitJob(t, tsB, sub.JobID)
}

func TestRecoverySkipsStaleRecords(t *testing.T) {
	dir := t.TempDir()
	// Hand-craft a journal a newer daemon cannot fully replay: a corrupt
	// (torn) line, a record whose source no longer compiles, and a record
	// whose content hash does not match its payload.
	wal := strings.Join([]string{
		`{{{ torn`,
		`{"id":"lybadbadbadbadbad","source":"array A[4]; garbage"}`,
		fmt.Sprintf(`{"id":"ly0000000000000000","source":%q}`, testProg),
	}, "\n") + "\n"
	if err := os.WriteFile(filepath.Join(dir, layoutWALFile), []byte(wal), 0o644); err != nil {
		t.Fatal(err)
	}
	// And a job accepted against a layout that will not be recovered.
	jwal := `{"op":"accept","id":"job-5","layout":"lydeadbeefdeadbe","req":{"layout_id":"lydeadbeefdeadbe"}}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, jobWALFile), []byte(jwal), 0o644); err != nil {
		t.Fatal(err)
	}

	s, ts := startDurable(t, dir, nil)
	defer stopDurable(t, s, ts)
	// The mismatched-ID record still compiled a valid layout (resident
	// under its true ID); the uncompilable record is skipped outright.
	if got := s.cache.resident(); got != 1 {
		t.Errorf("resident = %d, want 1", got)
	}
	// Skips: uncompilable source, ID mismatch, and the orphaned job.
	if got := s.Metrics().counter(mRecoverySkipped); got != 3 {
		t.Errorf("recovery skipped = %d, want 3", got)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/job-5")
	if err != nil {
		t.Fatal(err)
	}
	var jr api.JobResponse
	err = json.NewDecoder(resp.Body).Decode(&jr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if jr.State != api.JobFailed || !strings.Contains(jr.Error, "not recovered") {
		t.Errorf("orphaned job = %+v, want failed/not recovered", jr)
	}
}

func TestPersisterSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	p, err := newPersister(dir, newMetrics())
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range []string{"ly1", "ly2", "ly3", "ly1", "ly4"} {
		if err := p.appendLayout(api.LayoutRecord{ID: id, Source: fmt.Sprintf("s%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := p.loadLayouts()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || recs[0].ID != "ly1" || recs[0].Source != "s0" {
		t.Fatalf("loadLayouts = %+v, want 4 unique first-occurrence records", recs)
	}
	// Snapshot keeping all but ly3: WAL empties, snapshot holds the rest.
	if err := p.snapshotLayouts(func(id string) bool { return id != "ly3" }); err != nil {
		t.Fatal(err)
	}
	if p.walSize() != 0 {
		t.Errorf("walSize after snapshot = %d, want 0", p.walSize())
	}
	recs, err = p.loadLayouts()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("post-snapshot records = %+v, want 3", recs)
	}
	// New appends land in the WAL on top of the snapshot, and a reopened
	// persister counts them toward the next snapshot trigger.
	if err := p.appendLayout(api.LayoutRecord{ID: "ly5", Source: "s5"}); err != nil {
		t.Fatal(err)
	}
	if err := p.close(); err != nil {
		t.Fatal(err)
	}
	q, err := newPersister(dir, newMetrics())
	if err != nil {
		t.Fatal(err)
	}
	defer q.close()
	if q.walSize() != 1 {
		t.Errorf("reopened walSize = %d, want 1", q.walSize())
	}
	recs, err = q.loadLayouts()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Errorf("reopened records = %d, want 4", len(recs))
	}
}
