package service

import (
	"errors"
	"fmt"
	"net/http"
)

// errKind is the service's error taxonomy: every failure a handler can
// produce falls into one of these classes, and each class maps to
// exactly one HTTP status. Handlers build *svcError values through the
// constructors below and route them through Server.failErr, so the
// status mapping lives in one place instead of being re-derived per
// handler.
type errKind int

const (
	// kindBadRequest: the request is malformed or semantically invalid;
	// resubmitting it unchanged will always fail (400).
	kindBadRequest errKind = iota
	// kindNotFound: the referenced layout or job does not exist (404).
	kindNotFound
	// kindUnprocessable: well-formed but uncompilable — e.g. the
	// optimizer rejects the program under this platform (422).
	kindUnprocessable
	// kindOverload: the service is shedding load (full queue, exhausted
	// retry budget); retry after the advertised delay (429).
	kindOverload
	// kindUnavailable: a transient server-side condition — draining,
	// open circuit breaker, journal write failure, expired deadline —
	// that a later identical request may not hit (503).
	kindUnavailable
	// kindInternal: a bug (recovered panic, impossible state) (500).
	kindInternal
)

// status maps a kind to its HTTP status code.
func (k errKind) status() int {
	switch k {
	case kindBadRequest:
		return http.StatusBadRequest
	case kindNotFound:
		return http.StatusNotFound
	case kindUnprocessable:
		return http.StatusUnprocessableEntity
	case kindOverload:
		return http.StatusTooManyRequests
	case kindUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// svcError is a classified service error. RetryAfter > 0 is surfaced as
// a Retry-After header on the overload and unavailable kinds.
type svcError struct {
	kind       errKind
	retryAfter int // seconds; 0 = no header
	msg        string
}

func (e *svcError) Error() string { return e.msg }

// errf builds a classified error.
func errf(k errKind, format string, args ...any) *svcError {
	return &svcError{kind: k, msg: fmt.Sprintf(format, args...)}
}

// overloadf builds a 429 with a Retry-After hint.
func overloadf(retryAfter int, format string, args ...any) *svcError {
	return &svcError{kind: kindOverload, retryAfter: retryAfter, msg: fmt.Sprintf(format, args...)}
}

// unavailablef builds a 503 with a Retry-After hint.
func unavailablef(retryAfter int, format string, args ...any) *svcError {
	return &svcError{kind: kindUnavailable, retryAfter: retryAfter, msg: fmt.Sprintf(format, args...)}
}

// failErr classifies err and writes the mapped HTTP error response.
// Unclassified errors are internal by definition.
func (s *Server) failErr(w http.ResponseWriter, err error) {
	var se *svcError
	if !errors.As(err, &se) {
		se = &svcError{kind: kindInternal, msg: err.Error()}
	}
	s.failEnvelope(w, se.kind.status(), se.retryAfter, se.msg)
}
