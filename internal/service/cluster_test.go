package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flopt/internal/cluster"
	"flopt/internal/service/api"
)

// newTestCluster brings up n in-process cluster members sharing one
// roster. Each member's httptest server delegates through an
// atomic.Value so the roster URLs exist before the Servers do (peers
// hitting a not-yet-started member get 503, a transport-class failure).
func newTestCluster(t *testing.T, n int, mutate func(i int, cfg *Config)) ([]*Server, []*httptest.Server) {
	t.Helper()
	names := []string{"na", "nb", "nc", "nd", "ne"}[:n]
	boxes := make([]*atomic.Value, n)
	https := make([]*httptest.Server, n)
	roster := make([]cluster.Node, n)
	notReady := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "starting", http.StatusServiceUnavailable)
	})
	for i := 0; i < n; i++ {
		box := &atomic.Value{}
		box.Store(http.Handler(notReady))
		boxes[i] = box
		https[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			box.Load().(http.Handler).ServeHTTP(w, r)
		}))
		roster[i] = cluster.Node{ID: names[i], URL: https[i].URL}
	}
	servers := make([]*Server, n)
	for i := 0; i < n; i++ {
		cfg := DefaultServerConfig()
		cfg.Workers = 1
		cfg.Cluster = &ClusterConfig{
			Self:           names[i],
			Roster:         roster,
			GossipInterval: 50 * time.Millisecond,
			PeerTimeout:    2 * time.Second,
			// Short cooldown so breakers tripped by startup 503s recover
			// within the test's patience.
			BreakerThreshold: 3,
			BreakerCooldown:  100 * time.Millisecond,
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("New(node %d): %v", i, err)
		}
		servers[i] = s
		boxes[i].Store(s.Handler())
	}
	t.Cleanup(func() {
		for _, ts := range https {
			ts.Close()
		}
		for _, s := range servers {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			s.Drain(ctx)
			cancel()
			s.Close()
		}
	})
	return servers, https
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// sumCounter totals one counter across cluster members.
func sumCounter(servers []*Server, name string) int64 {
	var sum int64
	for _, s := range servers {
		sum += s.met.counter(name)
	}
	return sum
}

// TestClusterDistributedSingleflight is the tentpole property: 24
// concurrent submissions of one program, spread over three nodes,
// produce exactly one authoritative build cluster-wide. Non-owners
// forward to the ring owner, whose local singleflight collapses the
// rest; peer fills are charged to a separate counter.
func TestClusterDistributedSingleflight(t *testing.T) {
	servers, https := newTestCluster(t, 3, nil)

	const calls = 24
	var wg sync.WaitGroup
	errs := make(chan string, calls)
	ids := make(chan string, calls)
	for i := 0; i < calls; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(api.CompileRequest{Source: testProg})
			resp, err := http.Post(https[i%3].URL+"/v1/compile", "application/json", strings.NewReader(string(body)))
			if err != nil {
				errs <- err.Error()
				return
			}
			defer resp.Body.Close()
			var out api.CompileResponse
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Sprintf("status %d", resp.StatusCode)
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err.Error()
				return
			}
			ids <- out.LayoutID
		}()
	}
	wg.Wait()
	close(errs)
	close(ids)
	for e := range errs {
		t.Fatalf("compile failed: %s", e)
	}
	first := ""
	for id := range ids {
		if first == "" {
			first = id
		}
		if id != first {
			t.Fatalf("divergent layout IDs: %s vs %s", first, id)
		}
	}
	if builds := sumCounter(servers, mCompileBuilds); builds != 1 {
		t.Errorf("compile_builds_total sums to %d across the cluster, want 1", builds)
	}
	if fwd := sumCounter(servers, mClusterForwardCompile); fwd == 0 {
		t.Error("no compile was forwarded — all 24 landed on the owner?")
	}
}

// TestClusterPeerFillOnOffsets: compile lands the layout on its owner;
// an offsets query on a different member fetches the record, rebuilds
// locally, verifies the content address, and serves — flagged Filled,
// echoing the layout ID, without touching compile_builds_total.
func TestClusterPeerFillOnOffsets(t *testing.T) {
	servers, https := newTestCluster(t, 3, nil)

	var comp api.CompileResponse
	status, body := postJSON(t, https[0].URL+"/v1/compile", api.CompileRequest{Source: testProg}, &comp)
	if status != http.StatusOK {
		t.Fatalf("compile: %d %s", status, body)
	}
	owner := comp.Node
	ownerIdx := -1
	for i, s := range servers {
		if s.clu.cfg.Self == owner {
			ownerIdx = i
		}
	}
	if ownerIdx < 0 {
		t.Fatalf("compile response node %q not in roster", owner)
	}
	// Pick a member that is neither the owner nor holds a replica from
	// forwarding (node 0 remembered the record when it forwarded), so the
	// fill exercises the owner round-trip.
	fillIdx := -1
	for i, s := range servers {
		if i != 0 && i != ownerIdx {
			fillIdx = i
			_ = s
		}
	}
	if fillIdx < 0 {
		fillIdx = ownerIdx // owner built it; can't happen with 3 nodes
	}

	var off api.OffsetsResponse
	req := api.OffsetsRequest{Array: "A", Queries: []api.OffsetQuery{{Start: []int64{0, 0}, Dir: []int64{0, 1}, Count: 64}}}
	status, body = postJSON(t, https[fillIdx].URL+"/v1/layouts/"+comp.LayoutID+"/offsets", req, &off)
	if status != http.StatusOK {
		t.Fatalf("offsets via non-owner: %d %s", status, body)
	}
	if !off.Filled {
		t.Error("offsets response not flagged filled")
	}
	if off.LayoutID != comp.LayoutID {
		t.Errorf("offsets echoed layout %q, want %q", off.LayoutID, comp.LayoutID)
	}
	if len(off.Results) != 1 || len(off.Results[0].Segs) == 0 {
		t.Fatalf("fill served empty results: %+v", off)
	}
	if fills := servers[fillIdx].met.counter(mClusterFills); fills != 1 {
		t.Errorf("fill node cluster_peer_fills_total = %d, want 1", fills)
	}
	if builds := sumCounter(servers, mCompileBuilds); builds != 1 {
		t.Errorf("fill inflated compile_builds_total to %d", builds)
	}
	if fb := servers[fillIdx].met.counter(mClusterFillBuilds); fb != 1 {
		t.Errorf("cluster_fill_builds_total = %d, want 1", fb)
	}

	// Second query on the same node is a plain resident hit: not filled.
	var off2 api.OffsetsResponse
	status, body = postJSON(t, https[fillIdx].URL+"/v1/layouts/"+comp.LayoutID+"/offsets", req, &off2)
	if status != http.StatusOK {
		t.Fatalf("second offsets: %d %s", status, body)
	}
	if off2.Filled {
		t.Error("resident re-query still flagged filled")
	}
	if off2.LayoutID != comp.LayoutID {
		t.Errorf("resident re-query layout ID %q, want %q", off2.LayoutID, comp.LayoutID)
	}
}

// TestClusterFillVerifiesContentAddress: a replica record whose inputs
// do not reproduce the requested ID is refused, not served — content
// addressing is the trust boundary between peers.
func TestClusterFillVerifiesContentAddress(t *testing.T) {
	servers, https := newTestCluster(t, 3, nil)

	// A doctored record: valid program, but filed under an ID it does not
	// hash to.
	fake := "ly00000000deadbeef"
	servers[1].clu.rememberRecord(api.LayoutRecord{
		ID:     fake,
		Source: testProg,
		Config: api.FromConfig(servers[1].cfg.Platform),
	})
	req := api.OffsetsRequest{Array: "A", Queries: []api.OffsetQuery{{Start: []int64{0, 0}}}}
	status, body := postJSON(t, https[1].URL+"/v1/layouts/"+fake+"/offsets", req, nil)
	if status != http.StatusNotFound {
		t.Fatalf("doctored record served: %d %s", status, body)
	}
	if !strings.Contains(body, "verification") {
		t.Errorf("error does not mention verification: %s", body)
	}
	if mm := servers[1].met.counter(mClusterFillMismatch); mm != 1 {
		t.Errorf("cluster_fill_mismatch_total = %d, want 1", mm)
	}
	if servers[1].met.counter(mClusterFills) != 0 {
		t.Error("mismatched record counted as a successful fill")
	}
}

// TestClusterDeadPeerFallsBackLocal: with the ring owner of a program
// unreachable, a live member compiles locally instead of failing the
// request — degraded (no dedup against the dead owner) but serving.
func TestClusterDeadPeerFallsBackLocal(t *testing.T) {
	servers, https := newTestCluster(t, 3, nil)

	// Kill node nc outright.
	https[2].Close()
	deadID := servers[2].clu.cfg.Self

	// Find a variant of testProg owned by the dead node: trailing
	// newlines change the content hash without changing the program.
	ring := servers[0].clu.ring
	cfg := servers[0].cfg.Platform
	source := ""
	for i := 0; i < 64; i++ {
		cand := testProg + strings.Repeat("\n", i)
		if ring.Owner(layoutID(cand, cfg)) == deadID {
			source = cand
			break
		}
	}
	if source == "" {
		t.Fatal("no variant hashed to the dead node in 64 tries")
	}

	var comp api.CompileResponse
	status, body := postJSON(t, https[0].URL+"/v1/compile", api.CompileRequest{Source: source}, &comp)
	if status != http.StatusOK {
		t.Fatalf("compile with dead owner: %d %s", status, body)
	}
	if comp.Node != servers[0].clu.cfg.Self {
		t.Errorf("fallback compile attributed to %q, want local node", comp.Node)
	}
	if fb := servers[0].met.counter(mClusterLocalFallback); fb == 0 {
		t.Error("local fallback not counted")
	}
	// The layout serves locally afterwards.
	req := api.OffsetsRequest{Array: "A", Queries: []api.OffsetQuery{{Start: []int64{0, 0}}}}
	var off api.OffsetsResponse
	status, body = postJSON(t, https[0].URL+"/v1/layouts/"+comp.LayoutID+"/offsets", req, &off)
	if status != http.StatusOK {
		t.Fatalf("offsets after fallback: %d %s", status, body)
	}
	if off.LayoutID != comp.LayoutID {
		t.Errorf("offsets layout ID %q, want %q", off.LayoutID, comp.LayoutID)
	}
}

// TestClusterJobPlacementAndProxyPoll: a submission on a backlogged
// member places onto the least-loaded peer (which fills the layout on
// demand), and the job is pollable from any member via ID-routed proxy.
func TestClusterJobPlacementAndProxyPoll(t *testing.T) {
	servers, https := newTestCluster(t, 3, nil)

	var comp api.CompileResponse
	status, body := postJSON(t, https[0].URL+"/v1/compile", api.CompileRequest{Source: testProg}, &comp)
	if status != http.StatusOK {
		t.Fatalf("compile: %d %s", status, body)
	}

	// Wait until node na has fresh load for both peers (gossip interval
	// 50 ms), then make na look backlogged so placement forwards.
	waitFor(t, 5*time.Second, "gossip to populate na's load table", func() bool {
		_, okB := servers[0].clu.loads.Get("nb")
		_, okC := servers[0].clu.loads.Get("nc")
		return okB && okC
	})
	servers[0].jobs.mu.Lock()
	servers[0].jobs.running = 5
	servers[0].jobs.mu.Unlock()

	var job api.JobResponse
	status, body = postJSON(t, https[0].URL+"/v1/simulate", api.SimulateRequest{LayoutID: comp.LayoutID}, &job)
	if status != http.StatusAccepted {
		t.Fatalf("simulate: %d %s", status, body)
	}
	if job.Node == "na" || job.Node == "" {
		t.Fatalf("job placed on %q, want a peer of the backlogged na", job.Node)
	}
	if !strings.HasPrefix(job.JobID, "job-"+job.Node+"-") {
		t.Errorf("job ID %q does not embed its node %q", job.JobID, job.Node)
	}
	if placed := servers[0].met.counter(mClusterJobsPlaced); placed != 1 {
		t.Errorf("cluster_jobs_placed_remote_total = %d, want 1", placed)
	}

	servers[0].jobs.mu.Lock()
	servers[0].jobs.running = 0
	servers[0].jobs.mu.Unlock()

	// Poll through a member that does NOT run the job.
	pollIdx := 0
	waitFor(t, 60*time.Second, "proxied job to finish", func() bool {
		var st api.JobResponse
		code, _ := getJSON(t, https[pollIdx].URL+"/v1/jobs/"+job.JobID, &st)
		if code != http.StatusOK {
			return false
		}
		if st.State == api.JobFailed {
			t.Fatalf("job failed: %s", st.Error)
		}
		return st.State == api.JobDone && st.Report != nil && st.Node == job.Node
	})
	if proxied := servers[0].met.counter(mClusterJobsProxied); proxied == 0 {
		t.Error("no poll was proxied")
	}
}

// TestClusterStatusEndpoint: every member reports the full roster with
// ring shares summing to one; a single-node daemon answers with one
// self entry so the endpoint is uniform.
func TestClusterStatusEndpoint(t *testing.T) {
	servers, https := newTestCluster(t, 3, nil)
	waitFor(t, 5*time.Second, "gossip to mark peers healthy", func() bool {
		var st api.ClusterStatusResponse
		code, _ := getJSON(t, https[0].URL+"/v1/cluster/status", &st)
		if code != http.StatusOK || len(st.Nodes) != 3 {
			return false
		}
		healthy := 0
		for _, n := range st.Nodes {
			if n.Healthy {
				healthy++
			}
		}
		return healthy == 3
	})
	var st api.ClusterStatusResponse
	code, body := getJSON(t, https[1].URL+"/v1/cluster/status", &st)
	if code != http.StatusOK {
		t.Fatalf("cluster status: %d %s", code, body)
	}
	if st.Self != "nb" {
		t.Errorf("self = %q, want nb", st.Self)
	}
	var share float64
	for i, n := range st.Nodes {
		share += n.RingShare
		if i > 0 && st.Nodes[i-1].ID >= n.ID {
			t.Errorf("nodes not sorted: %q before %q", st.Nodes[i-1].ID, n.ID)
		}
		if n.ID == "nb" && !n.Self {
			t.Error("nb entry not marked self")
		}
	}
	if share < 0.999 || share > 1.001 {
		t.Errorf("ring shares sum to %v, want 1", share)
	}
	_ = servers

	// Single-node daemon: one self entry, full ring share.
	_, solo := newTestServer(t, nil)
	code, body = getJSON(t, solo.URL+"/v1/cluster/status", &st)
	if code != http.StatusOK {
		t.Fatalf("single-node cluster status: %d %s", code, body)
	}
	if len(st.Nodes) != 1 || !st.Nodes[0].Self || st.Nodes[0].RingShare != 1 {
		t.Errorf("single-node status = %+v", st)
	}
}

// TestOffsetsResponseCarriesLayoutID pins the satellite fix: the layout
// ID is echoed on every offsets response, resident or filled (the old
// wire shape omitted it on recompile paths, breaking client-side result
// attribution).
func TestOffsetsResponseCarriesLayoutID(t *testing.T) {
	_, ts := newTestServer(t, nil)
	id := compileTestProg(t, ts).LayoutID
	var off api.OffsetsResponse
	req := api.OffsetsRequest{Array: "A", Queries: []api.OffsetQuery{{Start: []int64{0, 0}}}}
	status, body := postJSON(t, ts.URL+"/v1/layouts/"+id+"/offsets", req, &off)
	if status != http.StatusOK {
		t.Fatalf("offsets: %d %s", status, body)
	}
	if off.LayoutID != id {
		t.Errorf("offsets response layout_id = %q, want %q", off.LayoutID, id)
	}
	// The raw wire body must carry the field (not rely on client-side
	// defaulting).
	if !strings.Contains(body, `"layout_id":"`+id+`"`) {
		t.Errorf("wire body missing layout_id echo: %s", body)
	}
}

// TestLayoutRecordEndpoint: GET /v1/layouts/{id} serves the portable
// record, and its inputs reproduce the ID (the property peer fills
// stand on).
func TestLayoutRecordEndpoint(t *testing.T) {
	s, ts := newTestServer(t, nil)
	id := compileTestProg(t, ts).LayoutID
	var rec api.LayoutRecord
	code, body := getJSON(t, ts.URL+"/v1/layouts/"+id, &rec)
	if code != http.StatusOK {
		t.Fatalf("layout record: %d %s", code, body)
	}
	if rec.ID != id || rec.Source == "" {
		t.Fatalf("record = %+v", rec)
	}
	if got := layoutID(rec.Source, rec.Config.Apply(s.cfg.Platform)); got != id {
		t.Errorf("record recompiles to %q, want %q", got, id)
	}
	if code, _ := getJSON(t, ts.URL+"/v1/layouts/nope", nil); code != http.StatusNotFound {
		t.Errorf("missing layout record returned %d", code)
	}
}

// getJSON is postJSON's GET sibling.
func getJSON(t *testing.T, url string, out any) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal([]byte(sb.String()), out); err != nil {
			t.Fatalf("decode %s: %v (body %q)", url, err, sb.String())
		}
	}
	return resp.StatusCode, sb.String()
}
