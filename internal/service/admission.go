package service

import (
	"context"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Admission control and graceful degradation: the middleware chain and
// the two stateful admission primitives — a circuit breaker over the
// simulate pipeline and a token-style retry budget — that keep floptd
// answering cheap traffic while expensive traffic is shed.
//
// Middleware order (outermost first): panic recovery, chaos injection,
// retry budget, per-request deadline, then the route mux. Recovery is
// outermost so a panic anywhere — including one injected by chaos —
// becomes a 500 and a counter instead of a dead connection.

// Breaker states, exported through the breaker_state gauge.
const (
	breakerClosed   = 0 // normal operation
	breakerHalfOpen = 1 // cooled down; one probe in flight decides
	breakerOpen     = 2 // shedding /v1/simulate
)

// breaker is a consecutive-failure circuit breaker over simulate job
// outcomes. Threshold consecutive failures open it; while open,
// /v1/simulate is shed with 503 (offset and compile traffic is never
// gated — the breaker protects the expensive pipeline, not the cheap
// one). After cooldown it half-opens and admits a single probe job whose
// outcome closes or re-opens it. Any success closes it from any state.
type breaker struct {
	mu        sync.Mutex
	now       func() time.Time // injectable clock for tests
	threshold int
	cooldown  time.Duration
	met       *metrics

	state    int
	failures int
	openedAt time.Time
	probing  bool
}

func newBreaker(threshold int, cooldown time.Duration, met *metrics) *breaker {
	b := &breaker{now: time.Now, threshold: threshold, cooldown: cooldown, met: met}
	met.gauge(mBreakerState, breakerClosed)
	return b
}

// allow reports whether a simulate submission may proceed.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		b.met.gauge(mBreakerState, breakerHalfOpen)
		return true // the probe
	default: // half-open: one probe outstanding decides
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// record feeds one job outcome into the breaker.
func (b *breaker) record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if err == nil {
		b.failures = 0
		if b.state != breakerClosed {
			b.state = breakerClosed
			b.met.gauge(mBreakerState, breakerClosed)
		}
		return
	}
	b.failures++
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.failures >= b.threshold) {
		b.state = breakerOpen
		b.openedAt = b.now()
		b.met.inc(mBreakerOpens)
		b.met.gauge(mBreakerState, breakerOpen)
	}
}

// retryBudget is a token bucket that bounds how much service capacity
// retried requests may consume: every first-attempt request deposits
// ratio tokens (capped at max), and a request declaring itself a retry
// (X-Retry-Attempt ≥ 1) withdraws one whole token or is shed with 429.
// Under healthy traffic the bucket stays full and retries are free;
// during an outage the deposit stream dries up and retry storms are
// capped at ratio × the surviving request rate, which is what keeps a
// recovering daemon from being re-flattened by its own backlog.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	ratio  float64
}

func newRetryBudget(max float64) *retryBudget {
	return &retryBudget{tokens: max, max: max, ratio: 0.1}
}

// onFirstAttempt deposits for a non-retry request.
func (rb *retryBudget) onFirstAttempt() {
	rb.mu.Lock()
	if rb.tokens += rb.ratio; rb.tokens > rb.max {
		rb.tokens = rb.max
	}
	rb.mu.Unlock()
}

// allowRetry withdraws one token, reporting whether the retry may run.
func (rb *retryBudget) allowRetry() bool {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.tokens < 1 {
		return false
	}
	rb.tokens--
	return true
}

// ---- middleware ----

// withMiddleware wraps the route mux in the service-wide middleware
// chain: recover(chaos(retryBudget(deadline(mux)))).
func (s *Server) withMiddleware(h http.Handler) http.Handler {
	h = s.deadlineWare(h)
	h = s.retryWare(h)
	if s.chaos != nil {
		h = s.chaos.middleware(h)
	}
	return s.recoverWare(h)
}

// recoverWare converts handler panics into 500s and a counter. The
// sentinel http.ErrAbortHandler is re-panicked so net/http aborts the
// connection silently (the chaos middleware's dropped-request fault and
// deliberate aborts depend on this).
func (s *Server) recoverWare(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler { //nolint:errorlint // sentinel, compared by identity
				panic(rec)
			}
			s.met.inc(mPanics)
			s.failErr(w, errf(kindInternal, "internal error: %v", rec))
		}()
		next.ServeHTTP(w, r)
	})
}

// retryWare enforces the retry budget on /v1/ routes: requests declaring
// a retry attempt must withdraw a token; first attempts deposit.
func (s *Server) retryWare(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			if attempt, _ := strconv.Atoi(r.Header.Get("X-Retry-Attempt")); attempt > 0 {
				if !s.retry.allowRetry() {
					s.met.inc(mRetryShed)
					s.failErr(w, overloadf(s.jobs.retryAfterSeconds(), "retry budget exhausted, back off"))
					return
				}
			} else {
				s.retry.onFirstAttempt()
			}
		}
		next.ServeHTTP(w, r)
	})
}

// deadlineWare plumbs the per-request deadline as a context timeout.
// Handlers observe it through r.Context(): compile waits are cut short,
// offset batches abort between queries, and the HTTP server's timeouts
// bound what the context cannot (header and body reads).
func (s *Server) deadlineWare(next http.Handler) http.Handler {
	if s.cfg.RequestTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}
