// Package service implements floptd: a long-running HTTP daemon that
// turns the offline compilation pipeline into an online layout service.
// It compiles submitted DSL programs once per content hash (singleflight
// + LRU, the exp.Runner cache discipline applied to a server), answers
// batch element→file-offset queries on the hot path through the
// layout.Strider closed form, and runs simulations as asynchronous jobs
// on a bounded worker pool with queue backpressure and graceful drain.
// Everything is stdlib-only; /metrics is backed by internal/obs.
//
// Routes:
//
//	POST /v1/compile               compile (or dedup) a program, returns a stable layout ID
//	POST /v1/layouts/{id}/offsets  batch element→offset queries as affine segments
//	POST /v1/simulate              enqueue an async simulation job (202, or 429 when full)
//	GET  /v1/jobs/{id}             poll job status and the finished report
//	GET  /healthz                  liveness + queue/cache occupancy
//	GET  /metrics                  Prometheus-format counters, gauges, latency histograms
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"flopt"
	"flopt/internal/poly"
	"flopt/internal/service/api"
	"flopt/internal/sim"
	"flopt/internal/version"
	"flopt/internal/workload"
	"flopt/internal/workloads"
)

// Config sizes the service. The zero value is not runnable; start from
// DefaultServerConfig.
type Config struct {
	// CacheEntries bounds the compiled-layout LRU.
	CacheEntries int
	// Workers is the simulate worker-pool width.
	Workers int
	// SimWorkers shards each simulation job across up to this many
	// intra-cell workers (reports are byte-identical at every value). 0
	// auto-sizes so that the two parallelism axes compose without
	// oversubscription: Workers jobs × SimWorkers shards ≤ GOMAXPROCS.
	SimWorkers int
	// QueueDepth bounds the pending-job queue; a full queue answers 429.
	QueueDepth int
	// RetainedJobs bounds the finished-job records kept for polling.
	RetainedJobs int
	// CompileWait is how long a compile request waits for an in-flight
	// build before answering 503 (the build itself continues).
	CompileWait time.Duration
	// SimTimeout is the per-job simulation deadline.
	SimTimeout time.Duration
	// WalkBudget caps the per-request element count offset queries may
	// resolve through the per-element fallback (the Strider closed form
	// is exempt: it is O(segments) regardless of count).
	WalkBudget int64
	// MaxBodyBytes caps request bodies.
	MaxBodyBytes int64
	// Platform is the base platform compiled against; per-request config
	// overrides apply on top of it.
	Platform sim.Config
	// DataDir roots the durability journals (layout snapshot + WAL, job
	// ledger). Empty disables persistence: state is memory-only, as it
	// was before the journals existed.
	DataDir string
	// RecordPath, when set, makes the daemon write every successfully
	// served compile/offsets/simulate request as one line of a
	// schema-versioned JSONL workload trace (internal/workload), which
	// `floptd -loadgen -replay` and exptab replay bit-identically.
	// Requests marked api.HeaderNoRecord are excluded.
	RecordPath string
	// RequestTimeout is the per-request deadline plumbed into every
	// handler's context; 0 disables it.
	RequestTimeout time.Duration
	// BreakerThreshold is the consecutive simulate-job failure count
	// that opens the circuit breaker; BreakerCooldown is how long it
	// stays open before admitting a half-open probe.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// RetryBudget is the retry token-bucket capacity: requests declaring
	// X-Retry-Attempt ≥ 1 each consume a token, refilled at a fraction
	// of first-attempt traffic.
	RetryBudget float64
	// ChaosIntensity > 0 enables the seeded fault-injection middleware
	// (delays, errors, drops, journal disk faults) at that intensity in
	// (0, 1]; ChaosSeed fixes its decision stream.
	ChaosIntensity float64
	ChaosSeed      int64
	// Cluster, when set, makes this daemon one member of a static
	// roster: layout IDs route to owners over a consistent-hash ring,
	// offset misses fill from peers, and simulate jobs place onto the
	// least-loaded member. Nil runs the classic single-node daemon.
	Cluster *ClusterConfig
}

// DefaultServerConfig returns the sizing floptd starts with.
func DefaultServerConfig() Config {
	return Config{
		CacheEntries:     128,
		Workers:          2,
		QueueDepth:       64,
		RetainedJobs:     1024,
		CompileWait:      30 * time.Second,
		SimTimeout:       120 * time.Second,
		WalkBudget:       1 << 20,
		MaxBodyBytes:     1 << 20,
		Platform:         sim.DefaultConfig(),
		RequestTimeout:   30 * time.Second,
		BreakerThreshold: 5,
		BreakerCooldown:  5 * time.Second,
		RetryBudget:      64,
	}
}

// Server is the service instance: compile cache, job pool, durability
// journals, admission control, metrics, and the HTTP surface over them.
// Create with New, serve Handler, call Drain then Close on shutdown.
type Server struct {
	cfg        Config
	simWorkers int
	met        *metrics
	cache      *compileCache
	jobs       *jobPool
	persist    *persister
	chaos      *chaos
	breaker    *breaker
	retry      *retryBudget
	clu        *clusterNode // nil outside cluster mode
	rec        *workload.TraceWriter
	mux        *http.ServeMux
	handler    http.Handler
	start      time.Time
}

// New builds a Server, recovers journaled state when cfg.DataDir is set,
// and starts the worker pool. Recovered accepted-but-unfinished jobs are
// already re-enqueued when New returns.
func New(cfg Config) (*Server, error) {
	s := &Server{cfg: cfg, met: newMetrics(), start: time.Now()}
	s.simWorkers = cfg.SimWorkers
	if s.simWorkers <= 0 {
		pool := cfg.Workers
		if pool < 1 {
			pool = 1
		}
		s.simWorkers = runtime.GOMAXPROCS(0) / pool
		if s.simWorkers < 1 {
			s.simWorkers = 1
		}
	}
	s.met.gauge(mSimShards, float64(s.simWorkers))
	s.chaos = newChaos(cfg.ChaosSeed, cfg.ChaosIntensity, s.met)
	s.breaker = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, s.met)
	s.retry = newRetryBudget(cfg.RetryBudget)
	s.cache = newCompileCache(cfg.CacheEntries, s.met, s.build)
	if cfg.RecordPath != "" {
		rec, err := workload.NewTraceWriter(cfg.RecordPath)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		s.rec = rec
	}
	if cfg.DataDir != "" {
		p, err := newPersister(cfg.DataDir, s.met)
		if err != nil {
			if s.rec != nil {
				s.rec.Close()
			}
			return nil, err
		}
		s.persist = p
		if s.chaos != nil {
			p.failWrite = s.chaos.diskFault
		}
	}
	var idPrefix string
	if cfg.Cluster != nil {
		cn, err := newClusterNode(*cfg.Cluster, 4*cfg.CacheEntries, s.met)
		if err != nil {
			if s.persist != nil {
				s.persist.close()
			}
			if s.rec != nil {
				s.rec.Close()
			}
			return nil, err
		}
		s.clu = cn
		// Namespace job IDs by node ("job-<node>-<n>") so any member can
		// route a status poll to the node running the job.
		idPrefix = cfg.Cluster.Self + "-"
	}
	s.jobs = newJobPool(jobPoolConfig{
		workers:    cfg.Workers,
		queueDepth: cfg.QueueDepth,
		maxJobs:    cfg.RetainedJobs,
		idPrefix:   idPrefix,
		timeout:    cfg.SimTimeout,
		met:        s.met,
		run:        s.runJob,
		journal:    s.journalJob,
		onResult:   s.breaker.record,
	})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/compile", s.instrument("compile", s.handleCompile))
	s.mux.HandleFunc("GET /v1/layouts/{id}", s.instrument("layouts", s.handleLayoutRecord))
	s.mux.HandleFunc("POST /v1/layouts/{id}/offsets", s.instrument("offsets", s.handleOffsets))
	s.mux.HandleFunc("POST /v1/simulate", s.instrument("simulate", s.handleSimulate))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("jobs", s.handleJob))
	s.mux.HandleFunc("GET /v1/cluster/status", s.instrument("cluster", s.handleClusterStatus))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.handler = s.withMiddleware(s.mux)
	if s.persist != nil {
		if err := s.recoverState(); err != nil {
			s.persist.close()
			if s.rec != nil {
				s.rec.Close()
			}
			return nil, err
		}
	}
	if s.clu != nil {
		// Gossip starts after recovery so the first load snapshot peers
		// see already reflects the re-enqueued backlog.
		s.clu.startGossip(s.selfLoad)
	}
	return s, nil
}

// Handler returns the HTTP surface (the mux behind the middleware
// chain: panic recovery, chaos injection, retry budget, deadlines).
func (s *Server) Handler() http.Handler { return s.handler }

// Drain stops accepting simulation jobs and waits for every accepted job
// to finish (or ctx to expire). Call after http.Server.Shutdown so no
// new submissions race the drain.
func (s *Server) Drain(ctx context.Context) error { return s.jobs.drain(ctx) }

// Close compacts and closes the durability journals (no-op without a
// data dir). Call after Drain; the journals then hold a terminal record
// for every retained job and a snapshot of the resident layout catalog.
func (s *Server) Close() error {
	if s.clu != nil {
		s.clu.stopGossip()
	}
	if s.rec != nil {
		if err := s.rec.Close(); err != nil {
			s.met.inc(mTraceErrors)
		}
	}
	if s.persist == nil {
		return nil
	}
	if err := s.persist.snapshotLayouts(s.cache.has); err != nil {
		s.met.inc(mJournalErrors)
	}
	if err := s.persist.compactJobs(s.jobs.records()); err != nil {
		s.met.inc(mJournalErrors)
	}
	return s.persist.close()
}

// journalJob is the pool's persistence hook; without a data dir it
// accepts everything.
func (s *Server) journalJob(rec jobRecord) error {
	if s.persist == nil {
		return nil
	}
	return s.persist.appendJob(rec)
}

// recoverState replays the journals: every journaled layout is
// recompiled (content addressing makes the recomputed ID a checksum of
// the replay), terminal jobs are restored as pollable records, and
// accepted-but-unfinished jobs are re-enqueued. Finishes by compacting
// both journals so restart cost stays proportional to live state.
func (s *Server) recoverState() error {
	recs, err := s.persist.loadLayouts()
	if err != nil {
		return fmt.Errorf("service: layout journal replay: %w", err)
	}
	s.persist.setReplaying(true)
	recovered := 0
	for _, rec := range recs {
		cfg := rec.Config.Apply(s.cfg.Platform)
		if err := cfg.Validate(); err != nil {
			s.met.inc(mRecoverySkipped)
			continue
		}
		ent, _, err := s.cache.get(context.Background(), rec.Source, cfg)
		if err != nil || ent.ID != rec.ID {
			// Unreplayable (base platform drifted, source rejected by a
			// newer compiler): content addressing means the record is
			// stale, not the catalog corrupt. Skip and count.
			s.met.inc(mRecoverySkipped)
			continue
		}
		recovered++
	}
	s.persist.setReplaying(false)
	s.met.add(mLayoutsRecovered, int64(recovered))

	jrecs, err := s.persist.loadJobs()
	if err != nil {
		return fmt.Errorf("service: job journal replay: %w", err)
	}
	type ledger struct {
		accept   *jobRecord
		terminal *jobRecord
	}
	byID := map[string]*ledger{}
	var order []string
	for i := range jrecs {
		rec := &jrecs[i]
		switch rec.Op {
		case jobOpAccept:
			if byID[rec.ID] == nil {
				byID[rec.ID] = &ledger{accept: rec}
				order = append(order, rec.ID)
			}
		case jobOpDone:
			if l := byID[rec.ID]; l != nil {
				l.terminal = rec
			}
		}
	}
	rerun := 0
	for _, id := range order {
		l := byID[id]
		j := &job{id: id, layoutID: l.accept.Layout}
		if l.accept.Req != nil {
			j.req = *l.accept.Req
		}
		if l.terminal != nil {
			j.state, j.errMsg = l.terminal.State, l.terminal.Err
			j.doneAt = time.Now()
			s.jobs.restore(j)
			continue
		}
		ent, ok := s.cache.lookup(j.layoutID)
		if !ok {
			// The job's layout did not survive replay (skipped record or
			// LRU pressure during recovery): terminal failure beats a
			// job stuck queued forever.
			j.state = api.JobFailed
			j.errMsg = fmt.Sprintf("layout %s not recovered after restart", j.layoutID)
			j.doneAt = time.Now()
			s.jobs.restore(j)
			s.met.inc(mRecoverySkipped)
			continue
		}
		j.ent = ent
		s.jobs.resubmit(j)
		rerun++
	}
	s.met.add(mJobsRecovered, int64(rerun))

	if err := s.persist.snapshotLayouts(s.cache.has); err != nil {
		s.met.inc(mJournalErrors)
	}
	if err := s.persist.compactJobs(s.jobs.records()); err != nil {
		s.met.inc(mJournalErrors)
	}
	return nil
}

// Metrics exposes the counter set (tests and floptd logging).
func (s *Server) Metrics() *metrics { return s.met }

// ---- handlers ----

// instrument wraps a handler with the request counter and the per-route
// latency histogram. Requests declaring an SLO class (the workload
// subsystem's api.HeaderSLOClass) additionally feed a per-class
// histogram, so a spec's slo_class is observable on /metrics — on the
// executing node, since cluster forwards propagate the header.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.met.inc(mHTTPRequests)
		h(w, r)
		us := time.Since(start).Microseconds()
		s.met.observe(route, us)
		if class := sloClass(r); class != "" {
			s.met.observeSLO(class, us)
		}
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// fail writes the v1 error envelope for status with no retry hint.
func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.failEnvelope(w, status, 0, fmt.Sprintf(format, args...))
}

// failEnvelope is the single place an error response is rendered: every
// failure, whatever its origin, leaves as the api.Error envelope
// {error, code, retry_after_s} (the retry hint is mirrored into the
// Retry-After header when positive).
func (s *Server) failEnvelope(w http.ResponseWriter, status, retryAfter int, msg string) {
	s.met.inc(mHTTPErrors)
	if retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprint(retryAfter))
	}
	s.writeJSON(w, status, api.Error{Message: msg, Code: api.CodeForStatus(status), RetryAfterS: retryAfter})
}

// decode parses the JSON body into v under the body-size cap.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(v); err != nil {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.met.inc(mCompileRequests)
	var req api.CompileRequest
	if !s.decode(w, r, &req) {
		s.met.inc(mCompileErrors)
		return
	}
	source := req.Source
	switch {
	case req.Source != "" && req.Workload != "":
		s.met.inc(mCompileErrors)
		s.fail(w, http.StatusBadRequest, "set exactly one of source and workload")
		return
	case req.Workload != "":
		wl, ok := workloads.ByName(req.Workload)
		if !ok {
			s.met.inc(mCompileErrors)
			s.fail(w, http.StatusBadRequest, "unknown workload %q (have %v)", req.Workload, workloads.Names())
			return
		}
		source = wl.Source
	case req.Source == "":
		s.met.inc(mCompileErrors)
		s.fail(w, http.StatusBadRequest, "set exactly one of source and workload")
		return
	}
	cfg := req.Config.Apply(s.cfg.Platform)
	if err := cfg.Validate(); err != nil {
		s.met.inc(mCompileErrors)
		s.fail(w, http.StatusBadRequest, "invalid config: %v", err)
		return
	}

	// Cluster routing: a non-owner forwards the compile to the layout's
	// ring owner (the cluster-wide singleflight), unless the request
	// already crossed the cluster once or the owner is unreachable.
	if s.clusterEnabled() {
		if _, fromPeer := forwarded(r); !fromPeer && s.forwardCompile(propagateHeaders(r.Context(), r), w, source, req.Config, cfg) {
			return
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.CompileWait)
	defer cancel()
	ent, cached, err := s.cache.get(ctx, source, cfg)
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// The build keeps running; resubmitting the same program later
		// joins or hits it.
		s.met.inc(mCompileErrors)
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusServiceUnavailable, "compilation still in progress, retry")
		return
	case errors.Is(err, flopt.ErrBadProgram), errors.Is(err, flopt.ErrBadConfig):
		s.met.inc(mCompileErrors)
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	case errors.Is(err, errJournal):
		// Accepted must mean durable: a layout whose record cannot be
		// journaled is not cached and not served.
		s.met.inc(mCompileErrors)
		s.failErr(w, unavailablef(1, "compile not durable: %v", err))
		return
	default:
		// Optimizer rejections (e.g. degenerate hierarchies) are request
		// problems too: the same submission will always fail.
		s.met.inc(mCompileErrors)
		s.fail(w, http.StatusUnprocessableEntity, "optimization failed: %v", err)
		return
	}
	s.maybeSnapshot()

	resp := api.CompileResponse{
		LayoutID: ent.ID,
		Cached:   cached,
		Pattern:  ent.Result.Pattern.String(),
		Arrays:   make(map[string]api.ArrayInfo, len(ent.Program.Arrays)),
		Node:     s.nodeID(),
	}
	for _, a := range ent.Program.Arrays {
		l := ent.Result.Layouts[a.Name]
		tr := ent.Result.Transforms[a.Name]
		resp.Arrays[a.Name] = api.ArrayInfo{
			Dims:      a.Dims,
			Layout:    l.Name(),
			FileElems: l.SizeElems(),
			Optimized: tr != nil && tr.Optimized(),
		}
	}
	resp.Optimized, resp.TotalArrays = ent.Result.OptimizedCount()
	s.recordLayout(r, kindCompile, ent)
	s.writeJSON(w, http.StatusOK, resp)
}

// build is the cache's compile function: parse + optimize, plus the
// array index the offset path needs. The layout record is journaled
// before the entry can enter the cache — a journal failure fails the
// build, so every ID a client ever sees survives a restart.
func (s *Server) build(source string, cfg sim.Config) (*compiled, error) {
	p, err := flopt.Compile("program", source)
	if err != nil {
		return nil, err
	}
	res, err := flopt.Optimize(p, cfg)
	if err != nil {
		return nil, err
	}
	ent := &compiled{Source: source, Program: p, Result: res, Cfg: cfg,
		arrays: make(map[string]*poly.Array, len(p.Arrays))}
	for _, a := range p.Arrays {
		ent.arrays[a.Name] = a
	}
	if s.persist != nil {
		rec := api.LayoutRecord{ID: layoutID(source, cfg), Source: source, Config: api.FromConfig(cfg)}
		if err := s.persist.appendLayout(rec); err != nil {
			return nil, err
		}
	}
	return ent, nil
}

// maybeSnapshot compacts the layout journal once the WAL outgrows the
// catalog it describes (4× the LRU capacity, at least 64 records).
func (s *Server) maybeSnapshot() {
	if s.persist == nil {
		return
	}
	threshold := 4 * s.cfg.CacheEntries
	if threshold < 64 {
		threshold = 64
	}
	if s.persist.walSize() < threshold {
		return
	}
	if err := s.persist.snapshotLayouts(s.cache.has); err != nil {
		s.met.inc(mJournalErrors)
	}
}

func (s *Server) handleOffsets(w http.ResponseWriter, r *http.Request) {
	s.met.inc(mOffsetsRequests)
	id := r.PathValue("id")
	ent, filled, err := s.lookupOrFill(r.Context(), id)
	if err != nil {
		s.met.inc(mOffsetsErrors)
		s.failErr(w, err)
		return
	}
	var req api.OffsetsRequest
	if !s.decode(w, r, &req) {
		s.met.inc(mOffsetsErrors)
		return
	}
	l, a, ok := ent.layoutFor(req.Array)
	if !ok {
		s.met.inc(mOffsetsErrors)
		s.fail(w, http.StatusBadRequest, "layout %s has no array %q", id, req.Array)
		return
	}
	if len(req.Queries) == 0 {
		s.met.inc(mOffsetsErrors)
		s.fail(w, http.StatusBadRequest, "empty query batch")
		return
	}
	resp := api.OffsetsResponse{LayoutID: id, Array: req.Array, FileElems: l.SizeElems(),
		Results: make([]api.OffsetResult, len(req.Queries)), Filled: filled}
	budget := s.cfg.WalkBudget
	var queries, segs, strided, walked int64
	for i, q := range req.Queries {
		// The per-request deadline aborts oversized batches between
		// queries instead of pinning a worker past it.
		if err := r.Context().Err(); err != nil {
			s.met.inc(mOffsetsErrors)
			s.met.add(mOffsetsQueries, queries)
			s.failErr(w, unavailablef(1, "request deadline exceeded after %d of %d queries", i, len(req.Queries)))
			return
		}
		res, used, err := resolveQuery(l, a, q, budget)
		if err != nil {
			s.met.inc(mOffsetsErrors)
			s.met.add(mOffsetsQueries, queries)
			s.fail(w, http.StatusBadRequest, "query %d: %v", i, err)
			return
		}
		budget -= used
		walked += used
		queries++
		segs += int64(len(res.Segs))
		if res.Strided {
			strided++
		}
		resp.Results[i] = res
	}
	s.met.add(mOffsetsQueries, queries)
	s.met.add(mOffsetsSegments, segs)
	s.met.add(mOffsetsStrided, strided)
	s.met.add(mOffsetsWalked, walked)
	s.recordLayout(r, kindOffsets, ent)
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	// Shed before any work while the breaker is open: the expensive
	// pipeline is protected, the cheap offsets path keeps flowing.
	if !s.breaker.allow() {
		s.met.inc(mShedRequests)
		s.failErr(w, unavailablef(s.jobs.retryAfterSeconds(),
			"simulate circuit open: recent jobs failed, shedding until a probe succeeds"))
		return
	}
	var req api.SimulateRequest
	if !s.decode(w, r, &req) {
		return
	}
	// Cluster placement: a first-touch submission goes to the
	// least-loaded member (gossiped backlog, ties toward self); a
	// peer-forwarded one runs here unconditionally.
	if s.clusterEnabled() {
		if _, fromPeer := forwarded(r); !fromPeer && s.forwardSimulate(w, r, &req) {
			return
		}
	}
	ent, _, err := s.lookupOrFill(r.Context(), req.LayoutID)
	if err != nil {
		s.failErr(w, err)
		return
	}
	// Config.Validate covers the numeric fields; the policy is resolved
	// later (machine construction), so reject unknown names here instead
	// of failing the job after acceptance.
	switch req.Policy {
	case "", "lru", "demote", "karma":
	default:
		s.fail(w, http.StatusBadRequest, "unknown policy %q (want lru, demote or karma)", req.Policy)
		return
	}
	cfg := ent.Cfg
	if req.Policy != "" {
		cfg.Policy = req.Policy
	}
	cfg.FaultIntensity, cfg.FaultSeed = req.Faults, req.Seed
	if err := cfg.Validate(); err != nil {
		s.fail(w, http.StatusBadRequest, "invalid simulate config: %v", err)
		return
	}
	id, err := s.jobs.submit(ent, req)
	switch {
	case errors.Is(err, errQueueFull):
		s.met.inc(mJobsRejected)
		s.failErr(w, overloadf(s.jobs.retryAfterSeconds(),
			"simulate queue full (depth %d), retry", s.cfg.QueueDepth))
		return
	case errors.Is(err, errDraining):
		s.fail(w, http.StatusServiceUnavailable, "shutting down, not accepting jobs")
		return
	case errors.Is(err, errJournal):
		// The accept record could not be persisted, so the job was not
		// accepted: acceptance is the durability promise.
		s.failErr(w, unavailablef(1, "job not durable: %v", err))
		return
	case err != nil:
		s.failErr(w, err)
		return
	}
	s.met.inc(mJobsSubmitted)
	s.recordLayout(r, kindSimulate, ent)
	w.Header().Set("Location", "/v1/jobs/"+id)
	s.writeJSON(w, http.StatusAccepted, api.JobResponse{JobID: id, State: api.JobQueued, Node: s.nodeID()})
}

// runJob executes one simulation job through the public Run API.
func (s *Server) runJob(ctx context.Context, j *job) (*api.SimReport, error) {
	cfg := j.ent.Cfg
	if j.req.Policy != "" {
		cfg.Policy = j.req.Policy
	}
	opts := []flopt.RunOption{flopt.WithSimWorkers(s.simWorkers)}
	if j.req.Optimized == nil || *j.req.Optimized {
		opts = append(opts, flopt.WithResult(j.ent.Result))
	}
	if j.req.Faults > 0 {
		opts = append(opts, flopt.WithFaults(j.req.Faults, j.req.Seed))
	}
	rep, err := flopt.Run(ctx, j.ent.Program, cfg, opts...)
	if err != nil {
		return nil, err
	}
	return &api.SimReport{
		ExecTimeUS:       rep.ExecTimeUS,
		Accesses:         rep.Accesses,
		DiskReads:        rep.DiskReads,
		IOMissPct:        100 * rep.IOMissRate(),
		StorageMissPct:   100 * rep.StorageMissRate(),
		Policy:           rep.PolicyName,
		Retries:          rep.Retries,
		Timeouts:         rep.Timeouts,
		DegradedReads:    rep.DegradedReads,
		FailedOverBlocks: rep.FailedOverBlocks,
	}, nil
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.status(id)
	if !ok {
		// Cluster mode: the node that runs a job is embedded in its ID
		// ("job-<node>-<n>"), so any member can serve the poll by proxy.
		if s.clusterEnabled() {
			if _, fromPeer := forwarded(r); !fromPeer && s.proxyJobStatus(w, r, id) {
				return
			}
		}
		s.fail(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	s.writeJSON(w, http.StatusOK, api.JobResponse{JobID: j.id, State: j.state, Report: j.report, Error: j.errMsg, Node: s.nodeID()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":           "ok",
		"version":          version.Version,
		"uptime_s":         int64(time.Since(s.start).Seconds()),
		"queue_depth":      s.jobs.depth(),
		"layouts_resident": s.cache.resident(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.writeExposition(w)
}
