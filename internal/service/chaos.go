package service

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// Chaos harness: a seed-driven fault-injection layer that makes floptd's
// failure handling testable on demand. It follows the internal/fault
// seeding discipline — all randomness flows from one math/rand source
// derived from a configured seed, so a drill replays the same fault
// decision sequence for the same request arrival order — and injects
// four fault classes scaled by one intensity knob in [0, 1]:
//
//	delayed requests    held 1–25 ms before the handler runs
//	erroring requests   answered 500 without reaching the handler
//	dropped requests    connection aborted mid-request (client sees EOF)
//	disk-write faults   journal appends fail (wired into the persister)
//
// /healthz and /metrics are exempt so a drill can always observe the
// daemon it is tormenting. Forced restarts — the remaining fault class —
// are the drill script's job (scripts/chaos_smoke.sh kills -9 and
// restarts the daemon under this middleware's traffic faults).

// chaos fault-class probabilities at intensity 1.
const (
	chaosDropP  = 0.04
	chaosErrorP = 0.12
	chaosDelayP = 0.25
	chaosDiskP  = 0.10
	// chaosMaxDelay bounds the injected per-request latency.
	chaosMaxDelay = 25 * time.Millisecond
)

// chaosAction is one per-request fault decision.
type chaosAction int

const (
	chaosNone chaosAction = iota
	chaosDrop
	chaosError
	chaosDelay
)

// chaos injects deterministic faults into the request and journal paths.
type chaos struct {
	mu        sync.Mutex
	rng       *rand.Rand
	intensity float64
	met       *metrics
}

// newChaos returns the injector, or nil when intensity ≤ 0 (chaos off).
func newChaos(seed int64, intensity float64, met *metrics) *chaos {
	if intensity <= 0 {
		return nil
	}
	if intensity > 1 {
		intensity = 1
	}
	return &chaos{rng: rand.New(rand.NewSource(seed)), intensity: intensity, met: met}
}

// decide draws the next request fault from the seeded stream. The action
// partition mirrors fault.Generate's single-source discipline: one draw
// per request keeps the decision sequence a pure function of the seed
// and the request order.
func (c *chaos) decide() (chaosAction, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	u := c.rng.Float64()
	switch i := c.intensity; {
	case u < chaosDropP*i:
		return chaosDrop, 0
	case u < (chaosDropP+chaosErrorP)*i:
		return chaosError, 0
	case u < (chaosDropP+chaosErrorP+chaosDelayP)*i:
		d := time.Duration(1+c.rng.Int63n(int64(chaosMaxDelay/time.Millisecond))) * time.Millisecond
		return chaosDelay, d
	default:
		return chaosNone, 0
	}
}

// diskFault is the persister's failWrite hook: a seeded coin per journal
// append, failing chaosDiskP·intensity of them.
func (c *chaos) diskFault() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng.Float64() < chaosDiskP*c.intensity {
		c.met.inc(mChaosDiskFaults)
		return fmt.Errorf("chaos: injected disk-write fault")
	}
	return nil
}

// middleware applies the per-request fault decision ahead of the router.
func (c *chaos) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz", "/metrics": // the drill's observation channel stays clear
			next.ServeHTTP(w, r)
			return
		}
		action, delay := c.decide()
		switch action {
		case chaosDrop:
			c.met.inc(mChaosDrops)
			panic(http.ErrAbortHandler) // aborts the connection; recoverWare re-panics it
		case chaosError:
			c.met.inc(mChaosErrors)
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"chaos: injected fault"}`, http.StatusInternalServerError)
			return
		case chaosDelay:
			c.met.inc(mChaosDelays)
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}
