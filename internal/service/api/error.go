package api

// Error codes: the machine-readable classification carried by every
// error envelope. Each code corresponds to exactly one HTTP status, so
// clients can branch on Code without re-deriving semantics from the
// status line.
const (
	CodeBadRequest    = "bad_request"   // 400: malformed or semantically invalid; retrying unchanged always fails
	CodeNotFound      = "not_found"     // 404: the referenced layout or job does not exist here
	CodeUnprocessable = "unprocessable" // 422: well-formed but uncompilable under this platform
	CodeOverload      = "overload"      // 429: shedding load; honor RetryAfterS
	CodeUnavailable   = "unavailable"   // 503: transient server-side condition; a later retry may succeed
	CodeInternal      = "internal"      // 500: a bug (recovered panic, impossible state)
)

// Error is the single JSON error envelope every v1 route answers
// failures with: a human-readable message, a machine-readable code, and
// the server's retry hint in seconds (0 when retrying is pointless or
// immediate).
type Error struct {
	Message     string `json:"error"`
	Code        string `json:"code,omitempty"`
	RetryAfterS int    `json:"retry_after_s,omitempty"`
}

// Error implements the error interface so an envelope decoded by a
// client can be returned (and wrapped) directly.
func (e *Error) Error() string { return e.Message }

// CodeForStatus maps an HTTP status to its envelope code (the inverse
// of the server's kind→status mapping; unknown statuses are internal).
func CodeForStatus(status int) string {
	switch status {
	case 400:
		return CodeBadRequest
	case 404:
		return CodeNotFound
	case 422:
		return CodeUnprocessable
	case 429:
		return CodeOverload
	case 503:
		return CodeUnavailable
	default:
		return CodeInternal
	}
}
