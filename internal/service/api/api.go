// Package api declares the floptd v1 wire contract: every request and
// response body the daemon speaks, plus the single JSON error envelope.
// The server (internal/service), the Go client (internal/service/client),
// the load generator, and the cluster peer paths all compile against
// these one set of types — no handler or client declares its own copy.
//
// The contract is versioned by the V1 path prefix; adding a field is a
// compatible change (all structs tolerate unknown fields on decode),
// renaming or retyping one is not.
package api

import "flopt/internal/sim"

// V1 is the versioned path prefix every service route lives under
// (e.g. "/"+V1+"/compile").
const V1 = "v1"

// Workload headers: optional request metadata the workload subsystem
// (internal/workload) attaches so traffic is classifiable end to end.
const (
	// HeaderSLOClass labels the request's SLO class; the service tracks a
	// latency histogram per class and records the class into -record
	// traces. Cluster forwards propagate it, so the executing node's
	// histograms see the class the client declared.
	HeaderSLOClass = "X-Flopt-Slo-Class"
	// HeaderClient names the logical workload client issuing the request
	// (a spec's client id); recorded into traces.
	HeaderClient = "X-Flopt-Client"
	// HeaderNoRecord, when set to any non-empty value, excludes the
	// request from -record traces. The load generator marks its setup
	// compiles with it so a recorded trace holds exactly the spec's
	// events and replays compare count-for-count.
	HeaderNoRecord = "X-Flopt-No-Record"
)

// Job states, in lifecycle order. A job ID returned by a simulate
// submission is guaranteed to reach JobDone or JobFailed, across drains
// and (with a data dir) crashes.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// PlatformConfig is the per-request platform override set; zero fields
// keep the serving node's base platform value. It doubles as the
// journaled configuration of a compiled layout: captured from a full
// sim.Config it reproduces every compile-relevant field.
type PlatformConfig struct {
	ComputeNodes       int    `json:"compute_nodes,omitempty"`
	IONodes            int    `json:"io_nodes,omitempty"`
	StorageNodes       int    `json:"storage_nodes,omitempty"`
	ThreadsPerCompute  int    `json:"threads_per_compute,omitempty"`
	BlockElems         int64  `json:"block_elems,omitempty"`
	IOCacheBlocks      int    `json:"io_cache_blocks,omitempty"`
	StorageCacheBlocks int    `json:"storage_cache_blocks,omitempty"`
	Policy             string `json:"policy,omitempty"`
}

// Apply overlays the non-zero override fields onto cfg.
func (o *PlatformConfig) Apply(cfg sim.Config) sim.Config {
	if o == nil {
		return cfg
	}
	if o.ComputeNodes > 0 {
		cfg.ComputeNodes = o.ComputeNodes
	}
	if o.IONodes > 0 {
		cfg.IONodes = o.IONodes
	}
	if o.StorageNodes > 0 {
		cfg.StorageNodes = o.StorageNodes
	}
	if o.ThreadsPerCompute > 0 {
		cfg.ThreadsPerCompute = o.ThreadsPerCompute
	}
	if o.BlockElems > 0 {
		cfg.BlockElems = o.BlockElems
	}
	if o.IOCacheBlocks > 0 {
		cfg.IOCacheBlocks = o.IOCacheBlocks
	}
	if o.StorageCacheBlocks > 0 {
		cfg.StorageCacheBlocks = o.StorageCacheBlocks
	}
	if o.Policy != "" {
		cfg.Policy = o.Policy
	}
	return cfg
}

// FromConfig captures cfg's layout-relevant fields as a full override
// set, so applying it over any base platform reproduces the
// compile-relevant configuration (and therefore the content-addressed
// layout ID).
func FromConfig(cfg sim.Config) *PlatformConfig {
	return &PlatformConfig{
		ComputeNodes:       cfg.ComputeNodes,
		IONodes:            cfg.IONodes,
		StorageNodes:       cfg.StorageNodes,
		ThreadsPerCompute:  cfg.ThreadsPerCompute,
		BlockElems:         cfg.BlockElems,
		IOCacheBlocks:      cfg.IOCacheBlocks,
		StorageCacheBlocks: cfg.StorageCacheBlocks,
		Policy:             cfg.Policy,
	}
}

// CompileRequest submits one program for layout compilation. Exactly one
// of Source (a mini-language program) and Workload (a built-in benchmark
// name) must be set.
type CompileRequest struct {
	Source   string          `json:"source,omitempty"`
	Workload string          `json:"workload,omitempty"`
	Config   *PlatformConfig `json:"config,omitempty"`
}

// ArrayInfo describes one array of a compiled layout set.
type ArrayInfo struct {
	Dims      []int64 `json:"dims"`
	Layout    string  `json:"layout"`
	FileElems int64   `json:"file_elems"`
	Optimized bool    `json:"optimized"`
}

// CompileResponse is the result of a compile (or dedup): the stable
// content-addressed layout ID and the per-array layout summary. Node, in
// cluster mode, names the node that owns (built) the layout.
type CompileResponse struct {
	LayoutID    string               `json:"layout_id"`
	Cached      bool                 `json:"cached"`
	Pattern     string               `json:"pattern"`
	Arrays      map[string]ArrayInfo `json:"arrays"`
	Optimized   int                  `json:"optimized"`
	TotalArrays int                  `json:"total_arrays"`
	Node        string               `json:"node,omitempty"`
}

// OffsetQuery is one batch item: the file offsets of the index walk
// start, start+dir, …, start+(count-1)·dir. Count defaults to 1 (a point
// query, dir optional); every point of the walk must lie inside the
// array.
type OffsetQuery struct {
	Start []int64 `json:"start"`
	Dir   []int64 `json:"dir,omitempty"`
	Count int64   `json:"count,omitempty"`
}

// OffsetsRequest is a batch of offset queries against one array of a
// compiled layout.
type OffsetsRequest struct {
	Array   string        `json:"array"`
	Queries []OffsetQuery `json:"queries"`
}

// Seg is an affine offset segment: offsets k = 0 … count-1 are
// start + k·stride.
type Seg struct {
	Start  int64 `json:"start"`
	Stride int64 `json:"stride"`
	Count  int64 `json:"count"`
}

// OffsetResult is the answer to one query: the walk decomposed into
// maximal affine segments. Strided reports whether the layout's
// closed-form Strider path produced them (O(segments)); false means the
// per-element fallback walked and merged (O(count), charged against the
// request's walk budget).
type OffsetResult struct {
	Segs    []Seg `json:"segs"`
	Strided bool  `json:"strided"`
}

// OffsetsResponse answers a batch. LayoutID always echoes the layout the
// batch resolved against — on the resident fast path and on the
// miss/fill path alike. Filled reports that this node materialized the
// layout on demand (a cluster peer fill) to serve the request.
type OffsetsResponse struct {
	LayoutID  string         `json:"layout_id"`
	Array     string         `json:"array"`
	FileElems int64          `json:"file_elems"`
	Results   []OffsetResult `json:"results"`
	Filled    bool           `json:"filled,omitempty"`
}

// SimulateRequest enqueues one asynchronous simulation of a compiled
// layout.
type SimulateRequest struct {
	LayoutID string `json:"layout_id"`
	// Optimized selects the compiled layouts (default true); false runs
	// the row-major default execution for comparison.
	Optimized *bool   `json:"optimized,omitempty"`
	Policy    string  `json:"policy,omitempty"`
	Faults    float64 `json:"faults,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
}

// SimReport is the job result: the execution report projected to its
// serving-relevant fields.
type SimReport struct {
	ExecTimeUS       int64   `json:"exec_time_us"`
	Accesses         int64   `json:"accesses"`
	DiskReads        int64   `json:"disk_reads"`
	IOMissPct        float64 `json:"io_miss_pct"`
	StorageMissPct   float64 `json:"storage_miss_pct"`
	Policy           string  `json:"policy"`
	Retries          int64   `json:"retries,omitempty"`
	Timeouts         int64   `json:"timeouts,omitempty"`
	DegradedReads    int64   `json:"degraded_reads,omitempty"`
	FailedOverBlocks int64   `json:"failed_over_blocks,omitempty"`
}

// JobResponse reports one job's state (submission and polling share it).
// Node, in cluster mode, names the node executing the job; poll any
// cluster node and the request is proxied there.
type JobResponse struct {
	JobID  string     `json:"job_id"`
	State  string     `json:"state"`
	Report *SimReport `json:"report,omitempty"`
	Error  string     `json:"error,omitempty"`
	Node   string     `json:"node,omitempty"`
}

// LayoutRecord is the portable form of a compiled layout: its inputs.
// Content addressing makes it verifiable — recompiling Source under
// Config applied to the same base platform must reproduce ID — which is
// what lets cluster peers fill their caches from each other and the
// durability journal replay compiles after a restart, both without
// trusting the record.
type LayoutRecord struct {
	ID     string          `json:"id"`
	Source string          `json:"source"`
	Config *PlatformConfig `json:"config,omitempty"`
}

// NodeStatus is one cluster member as seen by the answering node.
type NodeStatus struct {
	ID   string `json:"id"`
	URL  string `json:"url,omitempty"`
	Self bool   `json:"self,omitempty"`
	// Healthy reports reachability: always true for the answering node;
	// for peers, false once the per-peer circuit breaker opened or the
	// gossiped load snapshot went stale.
	Healthy bool `json:"healthy"`
	// RingShare is the fraction of the layout-ID hash space this node
	// owns under the consistent-hash ring.
	RingShare float64 `json:"ring_share"`
	// Load snapshot: simulate queue depth, running jobs, and the
	// job-latency EWMA the admission layer maintains. For peers these are
	// the last gossiped values.
	QueueDepth      int     `json:"queue_depth"`
	RunningJobs     int     `json:"running_jobs"`
	JobEWMAUS       float64 `json:"job_ewma_us"`
	LayoutsResident int     `json:"layouts_resident"`
}

// ClusterStatusResponse is the answering node's view of the cluster:
// its own identity plus one entry per roster member (itself included),
// sorted by node ID. A single-node daemon answers with one self entry.
type ClusterStatusResponse struct {
	Self  string       `json:"self"`
	Nodes []NodeStatus `json:"nodes"`
}
