package service

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"flopt/internal/service/api"
)

// TestConcurrentCompileSingleflight is the singleflight proof the
// acceptance criteria name: N identical programs submitted concurrently
// compile exactly once, observed through the obs-backed counters.
func TestConcurrentCompileSingleflight(t *testing.T) {
	s, ts := newTestServer(t, nil)
	const clients = 24
	ids := make([]string, clients)
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			resp := compileTestProg(t, ts)
			ids[c] = resp.LayoutID
		}(c)
	}
	wg.Wait()
	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Fatalf("divergent layout IDs: %q vs %q", id, ids[0])
		}
	}
	if builds := s.Metrics().counter(mCompileBuilds); builds != 1 {
		t.Errorf("compile builds = %d, want exactly 1 for %d concurrent identical submissions", builds, clients)
	}
	if reqs := s.Metrics().counter(mCompileRequests); reqs != clients {
		t.Errorf("compile requests = %d, want %d", reqs, clients)
	}
	joined := s.Metrics().counter(mCompileJoined)
	hits := s.Metrics().counter(mCompileCacheHits)
	if joined+hits != clients-1 {
		t.Errorf("joined (%d) + cache hits (%d) = %d, want %d", joined, hits, joined+hits, clients-1)
	}
}

// TestParallelMixedClients drives compile, offset-query, simulate and
// health traffic concurrently; under -race this is the service's
// concurrent-safety proof.
func TestParallelMixedClients(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.QueueDepth = 256 })
	comp := compileTestProg(t, ts)
	offURL := ts.URL + "/v1/layouts/" + comp.LayoutID + "/offsets"

	const perKind = 8
	var wg sync.WaitGroup
	fail := make(chan string, perKind*4)
	wg.Add(4 * perKind)
	for c := 0; c < perKind; c++ {
		go func() { // compilers: alternate identical and distinct platforms
			defer wg.Done()
			for i := 0; i < 4; i++ {
				req := api.CompileRequest{Source: testProg}
				if i%2 == 1 {
					req.Config = &api.PlatformConfig{IOCacheBlocks: 32 + i}
				}
				if code, body := postJSON(t, ts.URL+"/v1/compile", req, nil); code != http.StatusOK {
					fail <- "compile: " + body
					return
				}
			}
		}()
		go func(c int) { // offset queriers on the hot path
			defer wg.Done()
			for i := 0; i < 16; i++ {
				req := api.OffsetsRequest{Array: "A", Queries: []api.OffsetQuery{
					{Start: []int64{int64(c % 64), 0}, Dir: []int64{0, 1}, Count: 64},
				}}
				if code, body := postJSON(t, offURL, req, nil); code != http.StatusOK {
					fail <- "offsets: " + body
					return
				}
			}
		}(c)
		go func() { // simulate submitters (queue sized to accept all)
			defer wg.Done()
			var sub api.JobResponse
			if code, body := postJSON(t, ts.URL+"/v1/simulate",
				api.SimulateRequest{LayoutID: comp.LayoutID}, &sub); code != http.StatusAccepted {
				fail <- "simulate: " + body
				return
			}
			if j := waitJob(t, ts, sub.JobID); j.State != api.JobDone {
				fail <- "job: " + j.Error
			}
		}()
		go func() { // health/metrics pollers
			defer wg.Done()
			for i := 0; i < 8; i++ {
				for _, path := range []string{"/healthz", "/metrics"} {
					resp, err := http.Get(ts.URL + path)
					if err != nil {
						fail <- err.Error()
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						fail <- path
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
}

// TestConcurrentEvictionAndQueries keeps the compile LRU tiny while
// queries and compilations race, proving evicted entries stay usable by
// in-flight readers (entries are immutable) and evicted IDs answer 404
// rather than corrupting state.
func TestConcurrentEvictionAndQueries(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.CacheEntries = 2 })
	comp := compileTestProg(t, ts)
	offURL := ts.URL + "/v1/layouts/" + comp.LayoutID + "/offsets"

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // churn the cache with distinct platforms
		defer wg.Done()
		for i := 0; i < 12; i++ {
			req := api.CompileRequest{Source: testProg, Config: &api.PlatformConfig{IOCacheBlocks: 16 + i}}
			postJSON(t, ts.URL+"/v1/compile", req, nil)
		}
	}()
	go func() { // hammer the original ID; 200 and 404 are both legal
		defer wg.Done()
		for i := 0; i < 32; i++ {
			req := api.OffsetsRequest{Array: "A", Queries: []api.OffsetQuery{{Start: []int64{0, 0}, Dir: []int64{0, 1}, Count: 8}}}
			code, body := postJSON(t, offURL, req, nil)
			if code != http.StatusOK && code != http.StatusNotFound {
				t.Errorf("offsets under eviction: %d: %s", code, body)
				return
			}
		}
	}()
	wg.Wait()

	// Recompiling the evicted program restores the same content-derived ID.
	again := compileTestProg(t, ts)
	if again.LayoutID != comp.LayoutID {
		t.Errorf("recompiled ID %q differs from original %q", again.LayoutID, comp.LayoutID)
	}
}

// TestServerDrainCompletesAcceptedJobs exercises the full server drain:
// jobs accepted before Drain complete, submissions after it are refused.
func TestServerDrainCompletesAcceptedJobs(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.QueueDepth = 64 })
	comp := compileTestProg(t, ts)
	var ids []string
	for i := 0; i < 6; i++ {
		var sub api.JobResponse
		code, body := postJSON(t, ts.URL+"/v1/simulate", api.SimulateRequest{LayoutID: comp.LayoutID}, &sub)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d: %s", i, code, body)
		}
		ids = append(ids, sub.JobID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		j, ok := s.jobs.status(id)
		if !ok || j.state != api.JobDone {
			t.Errorf("job %s: state %q after drain", id, j.state)
		}
	}
	if code, _ := postJSON(t, ts.URL+"/v1/simulate", api.SimulateRequest{LayoutID: comp.LayoutID}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit: status %d, want 503", code)
	}
}
