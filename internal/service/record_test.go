package service

import (
	"context"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"flopt/internal/service/api"
	"flopt/internal/workload"
)

// recordSpec is the round-trip test traffic: two SLO classes, all three
// request kinds, small programs so the simulate jobs stay fast under
// -race.
func recordSpec() *workload.Spec {
	return &workload.Spec{
		Version:   workload.SpecVersion,
		Name:      "record-test",
		Seed:      11,
		DurationS: 1,
		RateRPS:   40,
		Clients: []workload.Client{
			{
				ID:           "gold-client",
				RateFraction: 0.5,
				SLOClass:     "gold",
				Arrival:      workload.Arrival{Process: workload.ProcessPoisson},
				Mix: []workload.MixEntry{
					{Program: "cc-ver-1", Kind: workload.KindOffsets, Weight: 3},
					{Program: "cc-ver-1", Kind: workload.KindCompile, Weight: 1},
				},
			},
			{
				ID:           "batch-client",
				RateFraction: 0.5,
				SLOClass:     "batch",
				Arrival:      workload.Arrival{Process: workload.ProcessOnOff, OnS: 0.3, OffS: 0.2},
				Mix: []workload.MixEntry{
					{Program: "s3asim", Kind: workload.KindOffsets, Weight: 6},
					{Program: "s3asim", Kind: workload.KindSimulate, Weight: 1},
				},
			},
		},
	}
}

// sameRequest reports whether a trace record and an event describe the
// same request (times differ by construction: one is modeled, one is
// wall clock).
func sameRequest(r workload.Record, e workload.Event) bool {
	return r.Kind == e.Kind && r.Client == e.Client && r.SLO == e.SLO && r.Program == e.Program
}

// TestRecordReplayRoundTrip pins the acceptance criterion end to end:
// a spec run against a recording daemon produces a trace holding
// exactly the issued event sequence; replaying that trace against a
// second recording daemon reproduces the same sequence bit-identically
// (same requests, same order, same per-class counts).
func TestRecordReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rec1 := filepath.Join(dir, "run1.jsonl")
	rec2 := filepath.Join(dir, "run2.jsonl")
	ctx := context.Background()

	evs, err := recordSpec().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) < 10 {
		t.Fatalf("spec expanded to only %d events", len(evs))
	}

	_, ts1 := newTestServer(t, func(cfg *Config) { cfg.RecordPath = rec1 })
	res1, err := RunSpecLoad(ctx, SpecLoadOptions{BaseURL: ts1.URL, Events: evs})
	if err != nil {
		t.Fatalf("spec run: %v", err)
	}
	if res1.Errors != 0 {
		t.Fatalf("spec run: %d errors", res1.Errors)
	}
	if res1.Events != int64(len(evs)) {
		t.Fatalf("spec run issued %d events, want %d", res1.Events, len(evs))
	}

	recs1, err := workload.ReadTraceFile(rec1)
	if err != nil {
		t.Fatal(err)
	}
	// The trace holds exactly the issued events in order — the setup
	// compiles were excluded by api.HeaderNoRecord, so lengths match.
	if len(recs1) != len(evs) {
		t.Fatalf("trace has %d records, want %d (no-record setup leaked in?)", len(recs1), len(evs))
	}
	for i := range recs1 {
		if !sameRequest(recs1[i], evs[i]) {
			t.Fatalf("trace record %d = %+v does not match issued event %+v", i, recs1[i], evs[i])
		}
	}

	// Replay the recorded trace against a fresh recording daemon: the
	// second trace must reproduce the first request-for-request.
	_, ts2 := newTestServer(t, func(cfg *Config) { cfg.RecordPath = rec2 })
	res2, err := RunSpecLoad(ctx, SpecLoadOptions{BaseURL: ts2.URL, Events: workload.Events(recs1)})
	if err != nil {
		t.Fatalf("replay run: %v", err)
	}
	if res2.Errors != 0 {
		t.Fatalf("replay run: %d errors", res2.Errors)
	}
	recs2, err := workload.ReadTraceFile(rec2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != len(recs1) {
		t.Fatalf("replay trace has %d records, want %d", len(recs2), len(recs1))
	}
	for i := range recs2 {
		if recs2[i].Seq != recs1[i].Seq || !sameRequest(recs2[i], workload.Events(recs1)[i]) {
			t.Fatalf("replay record %d = %+v diverges from original %+v", i, recs2[i], recs1[i])
		}
	}

	// Per-class counts agree across the spec, the record, and the replay.
	want := workload.ClassCounts(evs)
	for name, counts := range map[string]map[string]int64{
		"recorded": workload.ClassCounts(workload.Events(recs1)),
		"replayed": workload.ClassCounts(workload.Events(recs2)),
	} {
		for class, n := range want {
			if counts[class] != n {
				t.Errorf("%s class %q count %d, want %d", name, class, counts[class], n)
			}
		}
	}
	for _, class := range []string{"gold", "batch"} {
		cs := res1.Classes[class]
		if cs == nil || cs.Requests != want[class] {
			t.Errorf("client-side class %q stats %+v, want %d requests", class, cs, want[class])
		}
	}
}

// TestRecordMetricsAndExposition: recording and SLO classification are
// observable — trace counters count, and per-class latency histograms
// render as their own Prometheus family.
func TestRecordMetricsAndExposition(t *testing.T) {
	rec := filepath.Join(t.TempDir(), "trace.jsonl")
	s, ts := newTestServer(t, func(cfg *Config) { cfg.RecordPath = rec })

	evs, err := recordSpec().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSpecLoad(context.Background(), SpecLoadOptions{BaseURL: ts.URL, Events: evs}); err != nil {
		t.Fatal(err)
	}
	if got := s.met.counter(mTraceRecords); got != int64(len(evs)) {
		t.Errorf("trace_records_total = %d, want %d", got, len(evs))
	}
	var sb strings.Builder
	s.met.writeExposition(&sb)
	out := sb.String()
	for _, needle := range []string{
		`floptd_slo_latency_us_bucket{slo_class="gold",le="+Inf"}`,
		`floptd_slo_latency_us_count{slo_class="batch"}`,
		"floptd_trace_records_total",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("exposition missing %q", needle)
		}
	}
	// The per-route family is untouched by the SLO series.
	if !strings.Contains(out, `floptd_latency_us_bucket{route="offsets"`) {
		t.Error("per-route latency family disappeared")
	}
	if strings.Contains(out, `floptd_latency_us_bucket{route="slo_`) {
		t.Error("SLO histograms leaked into the per-route family")
	}
}

// TestSLOClassSanitized: a malformed class header lands in "other"
// instead of minting an arbitrary metric name.
func TestSLOClassSanitized(t *testing.T) {
	s, ts := newTestServer(t, nil)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set(api.HeaderSLOClass, "Not A Valid Class!")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	snap := s.met.snapshot()
	if h, ok := snap.Histograms[sloHistPrefix+"other"]; !ok || h.Count != 1 {
		t.Errorf("malformed class not folded into %q: %+v", sloHistPrefix+"other", snap.Histograms)
	}
}

// TestClusterPropagatesWorkloadHeaders: a compile carrying SLO and
// client headers is recorded with them on whichever node executed it —
// forwarded requests included, which is only possible if the peer call
// propagated the headers.
func TestClusterPropagatesWorkloadHeaders(t *testing.T) {
	dir := t.TempDir()
	recPath := func(i int) string { return filepath.Join(dir, "node"+string(rune('a'+i))+".jsonl") }
	servers, https := newTestCluster(t, 3, func(i int, cfg *Config) {
		cfg.RecordPath = recPath(i)
	})

	// One compile per entry node: at least two are non-owners and must
	// forward to the ring owner, whose trace then carries the headers.
	for i := range https {
		req, _ := http.NewRequest(http.MethodPost, https[i].URL+"/v1/compile",
			strings.NewReader(`{"workload":"cc-ver-1"}`))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(api.HeaderSLOClass, "gold")
		req.Header.Set(api.HeaderClient, "spec-client")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compile via node %d: status %d", i, resp.StatusCode)
		}
	}
	if fwd := sumCounter(servers, mClusterForwardCompile); fwd == 0 {
		t.Fatal("no compile was forwarded — the propagation path was not exercised")
	}
	var total int
	for i := range servers {
		recs, err := workload.ReadTraceFile(recPath(i))
		if err != nil {
			t.Fatalf("node %d trace: %v", i, err)
		}
		for _, r := range recs {
			if r.SLO != "gold" || r.Client != "spec-client" || r.Program != "cc-ver-1" {
				t.Errorf("node %d recorded %+v without the propagated headers", i, r)
			}
		}
		total += len(recs)
	}
	if total != 3 {
		t.Errorf("cluster recorded %d requests, want 3", total)
	}
}
