package trace

import (
	"fmt"
	"sync"

	"flopt/internal/layout"
	"flopt/internal/linalg"
	"flopt/internal/parallel"
	"flopt/internal/poly"
)

// This file implements closed-form run compression of the innermost loop:
// instead of evaluating every reference at every iteration, the generator
// decomposes each reference's innermost-loop walk into affine segments
// (layout.Strider), advances from block boundary to block boundary in
// O(blocks touched), and emits run-compressed Access entries whose
// expansion is bit-identical to the per-element walker's output.

// prepStride decides whether nest n's innermost loop can be emitted in
// closed form and, if so, fills each refInfo's strider/dir. The span
// emitter needs (a) a non-innermost parallel loop, so whole spans belong
// to one thread and shard partitioning stays above the span level, and
// (b) every reference strideable under its layout — mixing walked and
// strided references would interleave wrongly with stream coalescing.
func prepStride(n *poly.LoopNest, plan *parallel.Plan, infos []refInfo) bool {
	d := n.Depth()
	if d == 0 || plan.U == d-1 {
		return false
	}
	step := n.Loops[d-1].Step
	if step <= 0 {
		step = 1
	}
	for ri := range infos {
		inf := &infos[ri]
		str, ok := inf.lay.(layout.Strider)
		if !ok {
			return false
		}
		rank := inf.ref.Array.Rank()
		dir := make(linalg.Vec, rank)
		for dim := 0; dim < rank; dim++ {
			dir[dim] = inf.ref.Q.At(dim, d-1) * step
		}
		if !str.CanStride(dir) {
			return false
		}
		inf.strider, inf.dir = str, dir
	}
	return true
}

// refCursor tracks one reference's position inside its segment list while
// the span emitter sweeps the innermost iterations k = 0 … count-1.
type refCursor struct {
	segIdx  int
	segBase int64 // k of the current segment's first iteration
	blk     int64 // block at the current k
	nextK   int64 // first k at which blk changes (or the segment ends)
}

// blockQuantum is a maximal group of adjacent references that touch the
// same (file, block) at one iteration; the walker would coalesce the group
// into `elems` consecutive element touches of that block.
type blockQuantum struct {
	file  int32
	blk   int64
	elems int32
}

// emitSpan emits the whole innermost loop at the outer iteration iv in
// closed form. Correctness of the two shortcuts it takes:
//
//   - Bounds checking only the span endpoints suffices: along the span the
//     data index moves by the constant vector dir per iteration, so every
//     coordinate is monotone — if both endpoints lie inside the array box,
//     every interior point does too. (On a violation the walker reports the
//     first offending iteration; here it may be an interior point while we
//     report an endpoint, but generation fails either way and the streams
//     are discarded.)
//
//   - push quanta may be emitted at any granularity: the walker's stream is
//     the RLE of the per-iteration touch sequence (ref 0 … ref m-1 at k,
//     then k+1, …), and push computes exactly the run-compressed RLE of
//     whatever touch sequence its quanta expand to. Emitting one quantum
//     per (group, iteration-interval) expands to precisely the walker's
//     sequence, so the compressed stream's expansion is bit-identical.
func (g *shardGen) emitSpan(iv linalg.Vec) {
	m := len(g.infos)
	if m == 0 {
		return
	}
	depth := g.nest.Depth() - 1
	lo, hi := g.nest.Bounds(depth, iv[:depth])
	if lo > hi {
		return
	}
	step := g.nest.Loops[depth].Step
	if step <= 0 {
		step = 1
	}
	count := (hi-lo)/step + 1
	b := g.blockElems

	// Endpoint bounds checks first (the hi end before segment decomposition
	// — AppendSegs assumes an in-array walk), then decompose from lo.
	if count > 1 {
		iv[depth] = lo + (count-1)*step
		for ri := range g.infos {
			inf := &g.infos[ri]
			inf.ref.EvalInto(iv, g.dsts[ri])
			if !inf.ref.Array.Contains(g.dsts[ri]) {
				g.err = fmt.Errorf("trace: nest %d ref %s accesses %v outside %v at iteration %v",
					g.ni, inf.ref, g.dsts[ri], inf.ref.Array.Dims, iv)
				return
			}
		}
	}
	iv[depth] = lo
	for ri := range g.infos {
		inf := &g.infos[ri]
		dst := g.dsts[ri]
		inf.ref.EvalInto(iv, dst)
		if !inf.ref.Array.Contains(dst) {
			g.err = fmt.Errorf("trace: nest %d ref %s accesses %v outside %v at iteration %v",
				g.ni, inf.ref, dst, inf.ref.Array.Dims, iv)
			return
		}
		g.segs[ri] = inf.strider.AppendSegs(g.segs[ri][:0], dst, inf.dir, count)
		seg := g.segs[ri][0]
		g.curs[ri] = refCursor{blk: seg.Start / b, nextK: nextBlockChange(seg, 0, seg.Start/b, b)}
	}

	th := g.plan.ThreadOf(iv[g.plan.U])
	stream := g.streams[th]
	if stream == nil {
		stream = g.newStream()
	}
	for k := int64(0); k < count; {
		kNext := count
		for ri := range g.curs {
			if n := g.curs[ri].nextK; n < kNext {
				kNext = n
			}
		}
		span := kNext - k
		if m == 1 {
			stream = push(stream, g.infos[0].file, g.curs[0].blk, int32(span))
		} else {
			// Group adjacent references on the same (file, block); blocks
			// are constant over [k, kNext), so the walker's touch sequence
			// there is the group pattern repeated span times.
			ng := 0
			for ri := 0; ri < m; {
				f, blk := g.infos[ri].file, g.curs[ri].blk
				n := 1
				for ri+n < m && g.infos[ri+n].file == f && g.curs[ri+n].blk == blk {
					n++
				}
				g.groups[ng] = blockQuantum{file: f, blk: blk, elems: int32(n)}
				ng++
				ri += n
			}
			if ng == 1 {
				stream = push(stream, g.groups[0].file, g.groups[0].blk, int32(span)*g.groups[0].elems)
			} else {
				stream = g.pushGroups(stream, ng, span)
			}
		}
		k = kNext
		if k >= count {
			break
		}
		for ri := range g.curs {
			cur := &g.curs[ri]
			if cur.nextK > k {
				continue
			}
			seg := g.segs[ri][cur.segIdx]
			if k >= cur.segBase+seg.Count {
				cur.segBase += seg.Count
				cur.segIdx++
				seg = g.segs[ri][cur.segIdx]
			}
			cur.blk = (seg.Start + (k-cur.segBase)*seg.Stride) / b
			cur.nextK = nextBlockChange(seg, cur.segBase, cur.blk, b)
		}
	}
	g.streams[th] = stream
}

// pushGroups emits span repetitions of the current group pattern
// g.groups[:ng]. The first three repetitions go through push; if the
// second and third appended byte-identical entry windows — and the third
// left the second untouched, i.e. nothing merged across the repetition
// boundary — then by induction every further repetition appends that same
// window with the same final entry, so the remaining span-3 repetitions
// are bulk-copied instead of re-deriving the RLE push by push. Any
// boundary merge or window drift fails the comparison and the loop falls
// back to per-repetition pushes, so the output is always exactly push's.
func (g *shardGen) pushGroups(stream []Access, ng int, span int64) []Access {
	rep := int64(0)
	if span >= 5 {
		for ; rep < 2; rep++ {
			for gi := 0; gi < ng; gi++ {
				q := g.groups[gi]
				stream = push(stream, q.file, q.blk, q.elems)
			}
		}
		base1 := len(stream)
		for gi := 0; gi < ng; gi++ {
			q := g.groups[gi]
			stream = push(stream, q.file, q.blk, q.elems)
		}
		g.win = append(g.win[:0], stream[base1:]...)
		base2 := len(stream)
		for gi := 0; gi < ng; gi++ {
			q := g.groups[gi]
			stream = push(stream, q.file, q.blk, q.elems)
		}
		rep = 4
		if w := g.win; len(w) > 0 && len(stream)-base2 == len(w) &&
			windowsEqual(stream[base1:base2], w) && windowsEqual(stream[base2:], w) {
			for ; rep < span; rep++ {
				stream = append(stream, w...)
			}
			return stream
		}
	}
	for ; rep < span; rep++ {
		for gi := 0; gi < ng; gi++ {
			q := g.groups[gi]
			stream = push(stream, q.file, q.blk, q.elems)
		}
	}
	return stream
}

func windowsEqual(a, b []Access) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// nextBlockChange returns the first iteration k at which the reference
// walking seg (whose first iteration is segBase) leaves block blk, clamped
// to the segment end. File offsets are non-negative, and within the
// segment blk·b ≤ offset ≤ max(Start, current offset), so both floor
// divisions have non-negative operands.
func nextBlockChange(seg layout.Seg, segBase, blk, b int64) int64 {
	end := segBase + seg.Count
	var k int64
	switch {
	case seg.Stride > 0:
		k = segBase + ((blk+1)*b-1-seg.Start)/seg.Stride + 1
	case seg.Stride < 0:
		k = segBase + (seg.Start-blk*b)/(-seg.Stride) + 1
	default:
		return end
	}
	if k > end {
		k = end
	}
	return k
}

// push appends a quantum of e consecutive element touches of (f, b) to the
// run-compressed stream s, preserving the invariant that s is exactly the
// run-compressed RLE of the touch sequence pushed so far.
func push(s []Access, f int32, b int64, e int32) []Access {
	if n := len(s); n > 0 {
		last := &s[n-1]
		if last.File == f {
			end := last.Block + int64(last.Run)
			switch {
			case b == end:
				// Another touch of the run's final block.
				if last.Run == 0 {
					last.Elems += e
					return s
				}
				// The final block now differs from the rest of the run:
				// split it off as its own entry.
				last.Run--
				return append(s, Access{File: f, Block: b, Elems: last.Elems + e})
			case b == end+1 && e == last.Elems:
				last.Run++
				return s
			}
		}
	}
	return append(s, Access{File: f, Block: b, Elems: e})
}

// newStream returns an empty stream buffer, preferring a pooled one.
func (g *shardGen) newStream() []Access {
	if g.pool != nil {
		if buf := g.pool.Get(); buf != nil {
			return buf
		}
	}
	return make([]Access, 0, g.prealloc)
}

// ExpandStream returns the run-expanded, one-entry-per-block form of a
// compressed stream — the exact output of the per-element walker.
// Entries with Run = 0 pass through unchanged.
func ExpandStream(s []Access) []Access {
	if len(s) == 0 {
		return nil
	}
	n := 0
	for _, a := range s {
		n += int(a.Run) + 1
	}
	out := make([]Access, 0, n)
	for _, a := range s {
		for r := int32(0); r <= a.Run; r++ {
			out = append(out, Access{File: a.File, Block: a.Block + int64(r), Elems: a.Elems})
		}
	}
	return out
}

// BufferPool recycles per-thread stream buffers across trace generations.
// It is safe for concurrent use. The zero value is ready.
type BufferPool struct {
	mu   sync.Mutex
	bufs [][]Access
}

// Get pops a recycled buffer (length 0) or returns nil when empty.
func (p *BufferPool) Get() []Access {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.bufs); n > 0 {
		buf := p.bufs[n-1]
		p.bufs[n-1] = nil
		p.bufs = p.bufs[:n-1]
		return buf
	}
	return nil
}

// Put recycles every stream buffer of traces and clears the slices. The
// caller must guarantee no reader still holds the streams.
func (p *BufferPool) Put(traces []*NestTrace) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, nt := range traces {
		if nt == nil {
			continue
		}
		for i, s := range nt.Streams {
			if cap(s) > 0 {
				p.bufs = append(p.bufs, s[:0])
			}
			nt.Streams[i] = nil
		}
	}
}
