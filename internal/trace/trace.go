// Package trace turns a parallelized program plus a set of file layouts
// into per-thread block-access streams — the input of the storage
// simulator. Consecutive accesses by one thread to the same block are
// coalesced (one cache/network transaction moves a whole block).
package trace

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"flopt/internal/layout"
	"flopt/internal/linalg"
	"flopt/internal/parallel"
	"flopt/internal/poly"
)

// Access is one block-granular read/write request. Elems counts how many
// element touches were coalesced into it — the simulator charges
// element-proportional compute cost from it, keeping CPU time independent
// of the file layout.
//
// Run compresses a maximal sequence of consecutive-block requests with
// uniform Elems: the entry stands for the Run+1 blocks Block, Block+1, …,
// Block+Run, each touched Elems times, in increasing order. Run = 0 (the
// zero value) is a plain single-block request, so uncompressed streams
// remain valid. ExpandStream recovers the one-entry-per-block form.
type Access struct {
	File  int32
	Block int64
	Elems int32
	Run   int32
}

// FileTable assigns stable small integer ids to the program's arrays (one
// file per array, as in the paper) and records their layouts.
type FileTable struct {
	Names   []string
	Layouts []layout.Layout
	index   map[string]int32
}

// NewFileTable builds the table for program p with the given layouts
// (keyed by array name; every array needs one).
func NewFileTable(p *poly.Program, layouts map[string]layout.Layout) (*FileTable, error) {
	ft := &FileTable{index: make(map[string]int32, len(p.Arrays))}
	names := make([]string, 0, len(p.Arrays))
	for _, a := range p.Arrays {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	for _, n := range names {
		l, ok := layouts[n]
		if !ok {
			return nil, fmt.Errorf("trace: no layout for array %s", n)
		}
		ft.index[n] = int32(len(ft.Names))
		ft.Names = append(ft.Names, n)
		ft.Layouts = append(ft.Layouts, l)
	}
	return ft, nil
}

// ID returns the file id of an array name; it panics on unknown names.
func (ft *FileTable) ID(name string) int32 {
	id, ok := ft.index[name]
	if !ok {
		panic(fmt.Sprintf("trace: unknown array %q", name))
	}
	return id
}

// Blocks returns the file length in blocks for file id under blockElems.
func (ft *FileTable) Blocks(id int32, blockElems int64) int64 {
	return (ft.Layouts[id].SizeElems() + blockElems - 1) / blockElems
}

// NestTrace holds the per-thread access streams of one loop nest. Threads
// with no work have empty streams.
type NestTrace struct {
	Streams [][]Access
}

// TotalAccesses counts the block transactions across all streams, i.e.
// the run-expanded length: a compressed entry contributes Run+1.
func (nt *NestTrace) TotalAccesses() int64 {
	var n int64
	for _, s := range nt.Streams {
		n += int64(len(s))
		for _, a := range s {
			n += int64(a.Run)
		}
	}
	return n
}

// MinElems returns the smallest per-access element count across all
// streams, or 0 for a trace with no accesses. The simulator's sharded
// engine derives its epoch length from it: every access costs at least
// the element-proportional CPU charge of MinElems elements, which bounds
// how far ahead of each other the per-node event loops may run.
func (nt *NestTrace) MinElems() int32 {
	var m int32
	for _, s := range nt.Streams {
		for _, a := range s {
			if m == 0 || a.Elems < m {
				m = a.Elems
			}
		}
	}
	return m
}

// TotalElems sums the element touches across all streams; it is invariant
// under layout changes (only the grouping into blocks varies).
func (nt *NestTrace) TotalElems() int64 {
	var n int64
	for _, s := range nt.Streams {
		for _, a := range s {
			n += int64(a.Elems) * int64(a.Run+1)
		}
	}
	return n
}

// refInfo is the resolved per-reference state of one nest (shared,
// read-only across shard workers). strider/dir are the closed-form
// innermost-walk capability, filled once by prepStride before the shard
// workers start when every reference of the nest supports it.
type refInfo struct {
	ref  *poly.Reference
	file int32
	lay  layout.Layout

	strider layout.Strider
	dir     linalg.Vec // per-innermost-iteration data index delta
}

// Generate produces the access streams of every nest of p, in program
// order, under the given plans and layouts, using one trace-generation
// worker per available CPU. See GenerateWorkers for the output guarantee.
func Generate(p *poly.Program, plans map[*poly.LoopNest]*parallel.Plan,
	ft *FileTable, blockElems int64, threads int) ([]*NestTrace, error) {
	return GenerateWorkers(p, plans, ft, blockElems, threads, runtime.GOMAXPROCS(0))
}

// GenerateWorkers is Generate with an explicit worker count (1 = serial).
// The iteration space of each nest is partitioned along the parallelized
// loop u by the plan's thread blocks, and each worker emits the streams of
// its own subset of threads independently — streams are per-thread, so the
// partition is race-free by construction and the output is bit-identical
// for every worker count.
func GenerateWorkers(p *poly.Program, plans map[*poly.LoopNest]*parallel.Plan,
	ft *FileTable, blockElems int64, threads, workers int) ([]*NestTrace, error) {
	return generateWorkers(p, plans, ft, blockElems, threads, workers, nil, false)
}

// GenerateWorkersPool is GenerateWorkers with stream buffers drawn from
// pool. The caller owns the returned traces; recycling them with pool.Put
// once no reader holds them lets repeated generations (e.g. experiment
// cells) reuse the large per-thread allocations.
func GenerateWorkersPool(p *poly.Program, plans map[*poly.LoopNest]*parallel.Plan,
	ft *FileTable, blockElems int64, threads, workers int, pool *BufferPool) ([]*NestTrace, error) {
	return generateWorkers(p, plans, ft, blockElems, threads, workers, pool, false)
}

// generateWorkers is the shared implementation. forceWalk disables the
// closed-form span emitter so tests can compare it against the per-element
// walker; the two paths produce bit-identical streams by construction.
func generateWorkers(p *poly.Program, plans map[*poly.LoopNest]*parallel.Plan,
	ft *FileTable, blockElems int64, threads, workers int, pool *BufferPool, forceWalk bool) ([]*NestTrace, error) {
	if blockElems < 1 {
		return nil, fmt.Errorf("trace: blockElems must be ≥ 1")
	}
	if workers < 1 {
		workers = 1
	}
	out := make([]*NestTrace, 0, len(p.Nests))
	for ni, n := range p.Nests {
		plan := plans[n]
		if plan == nil {
			return nil, fmt.Errorf("trace: nest %d has no plan", ni)
		}
		nt := &NestTrace{Streams: make([][]Access, threads)}
		infos := make([]refInfo, len(n.Refs))
		for ri, r := range n.Refs {
			id := ft.ID(r.Array.Name)
			infos[ri] = refInfo{ref: r, file: id, lay: ft.Layouts[id]}
		}
		canStride := !forceWalk && prepStride(n, plan, infos)
		// Preallocate each thread's stream from a TotalElems-based
		// estimate: the element-touch count is trip·refs, split across
		// threads; coalescing shrinks it further, so a quarter of the
		// upper bound avoids most growth reallocations without
		// overcommitting memory on scattered access patterns.
		est := n.TripCount() * int64(len(n.Refs)) / int64(threads) / 4
		if est < 16 {
			est = 16
		}
		if est > 1<<20 {
			est = 1 << 20
		}

		shards := workers
		if shards > threads {
			shards = threads
		}
		if shards <= 1 {
			g := &shardGen{
				nest: n, ni: ni, plan: plan, infos: infos, streams: nt.Streams,
				blockElems: blockElems, shard: 0, shards: 1, prealloc: int(est),
				canStride: canStride, pool: pool,
			}
			g.run()
			if g.err != nil {
				return nil, g.err
			}
		} else {
			gens := make([]*shardGen, shards)
			var wg sync.WaitGroup
			wg.Add(shards)
			for w := 0; w < shards; w++ {
				g := &shardGen{
					nest: n, ni: ni, plan: plan, infos: infos, streams: nt.Streams,
					blockElems: blockElems, shard: w, shards: shards, prealloc: int(est),
					canStride: canStride, pool: pool,
				}
				gens[w] = g
				go func() {
					defer wg.Done()
					g.run()
				}()
			}
			wg.Wait()
			for _, g := range gens {
				if g.err != nil {
					return nil, g.err
				}
			}
		}
		out = append(out, nt)
	}
	return out, nil
}

// shardGen walks the iteration space of one nest restricted to the threads
// t with t ≡ shard (mod shards) and appends their accesses to streams[t].
// Each thread's stream is written by exactly one shard, and within a shard
// iterations are visited in lexicographic order, so the per-thread
// subsequences match the serial generation exactly.
type shardGen struct {
	nest       *poly.LoopNest
	ni         int
	plan       *parallel.Plan
	infos      []refInfo
	streams    [][]Access
	blockElems int64
	shard      int
	shards     int
	prealloc   int
	canStride  bool
	pool       *BufferPool
	dsts       []linalg.Vec
	segs       [][]layout.Seg
	curs       []refCursor
	groups     []blockQuantum
	win        []Access
	err        error
}

func (g *shardGen) run() {
	// A panic inside a shard goroutine (e.g. an iteration value outside
	// the plan's rectangular bounds) would kill the whole process;
	// surface it as a generation error instead.
	defer func() {
		if p := recover(); p != nil {
			g.err = fmt.Errorf("trace: nest %d generation panicked: %v", g.ni, p)
		}
	}()
	// Per-worker scratch vectors, reused across every iteration.
	g.dsts = make([]linalg.Vec, len(g.infos))
	for ri, inf := range g.infos {
		g.dsts[ri] = make(linalg.Vec, inf.ref.Array.Rank())
	}
	if g.canStride {
		g.segs = make([][]layout.Seg, len(g.infos))
		g.curs = make([]refCursor, len(g.infos))
		g.groups = make([]blockQuantum, len(g.infos))
	}
	iv := make(linalg.Vec, g.nest.Depth())
	g.walk(0, iv)
}

func (g *shardGen) walk(depth int, iv linalg.Vec) {
	if g.err != nil {
		return
	}
	if g.canStride && depth == g.nest.Depth()-1 {
		g.emitSpan(iv)
		return
	}
	if depth == g.nest.Depth() {
		g.emit(iv)
		return
	}
	l := g.nest.Loops[depth]
	lo, hi := g.nest.Bounds(depth, iv[:depth])
	step := l.Step
	if step <= 0 {
		step = 1
	}
	if depth == g.plan.U && g.shards > 1 {
		// Partition point: only descend into iterations whose thread
		// block belongs to this shard.
		for v := lo; v <= hi; v += step {
			if g.plan.ThreadOf(v)%g.shards != g.shard {
				continue
			}
			iv[depth] = v
			g.walk(depth+1, iv)
		}
		return
	}
	for v := lo; v <= hi; v += step {
		iv[depth] = v
		g.walk(depth+1, iv)
	}
}

func (g *shardGen) emit(iv linalg.Vec) {
	th := g.plan.ThreadOf(iv[g.plan.U])
	stream := g.streams[th]
	for ri := range g.infos {
		inf := &g.infos[ri]
		dst := g.dsts[ri]
		inf.ref.EvalInto(iv, dst)
		if !inf.ref.Array.Contains(dst) {
			g.err = fmt.Errorf("trace: nest %d ref %s accesses %v outside %v at iteration %v",
				g.ni, inf.ref, dst, inf.ref.Array.Dims, iv)
			return
		}
		blk := inf.lay.Offset(dst) / g.blockElems
		if ln := len(stream); ln > 0 && stream[ln-1].File == inf.file && stream[ln-1].Block == blk {
			stream[ln-1].Elems++ // coalesce consecutive same-block accesses
			continue
		}
		if stream == nil {
			stream = g.newStream()
		}
		stream = append(stream, Access{File: inf.file, Block: blk, Elems: 1})
	}
	g.streams[th] = stream
}
