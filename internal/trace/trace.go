// Package trace turns a parallelized program plus a set of file layouts
// into per-thread block-access streams — the input of the storage
// simulator. Consecutive accesses by one thread to the same block are
// coalesced (one cache/network transaction moves a whole block).
package trace

import (
	"fmt"
	"sort"

	"flopt/internal/layout"
	"flopt/internal/linalg"
	"flopt/internal/parallel"
	"flopt/internal/poly"
)

// Access is one block-granular read/write request. Elems counts how many
// element touches were coalesced into it — the simulator charges
// element-proportional compute cost from it, keeping CPU time independent
// of the file layout.
type Access struct {
	File  int32
	Block int64
	Elems int32
}

// FileTable assigns stable small integer ids to the program's arrays (one
// file per array, as in the paper) and records their layouts.
type FileTable struct {
	Names   []string
	Layouts []layout.Layout
	index   map[string]int32
}

// NewFileTable builds the table for program p with the given layouts
// (keyed by array name; every array needs one).
func NewFileTable(p *poly.Program, layouts map[string]layout.Layout) (*FileTable, error) {
	ft := &FileTable{index: make(map[string]int32, len(p.Arrays))}
	names := make([]string, 0, len(p.Arrays))
	for _, a := range p.Arrays {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	for _, n := range names {
		l, ok := layouts[n]
		if !ok {
			return nil, fmt.Errorf("trace: no layout for array %s", n)
		}
		ft.index[n] = int32(len(ft.Names))
		ft.Names = append(ft.Names, n)
		ft.Layouts = append(ft.Layouts, l)
	}
	return ft, nil
}

// ID returns the file id of an array name; it panics on unknown names.
func (ft *FileTable) ID(name string) int32 {
	id, ok := ft.index[name]
	if !ok {
		panic(fmt.Sprintf("trace: unknown array %q", name))
	}
	return id
}

// Blocks returns the file length in blocks for file id under blockElems.
func (ft *FileTable) Blocks(id int32, blockElems int64) int64 {
	return (ft.Layouts[id].SizeElems() + blockElems - 1) / blockElems
}

// NestTrace holds the per-thread access streams of one loop nest. Threads
// with no work have empty streams.
type NestTrace struct {
	Streams [][]Access
}

// TotalAccesses sums stream lengths.
func (nt *NestTrace) TotalAccesses() int64 {
	var n int64
	for _, s := range nt.Streams {
		n += int64(len(s))
	}
	return n
}

// TotalElems sums the element touches across all streams; it is invariant
// under layout changes (only the grouping into blocks varies).
func (nt *NestTrace) TotalElems() int64 {
	var n int64
	for _, s := range nt.Streams {
		for _, a := range s {
			n += int64(a.Elems)
		}
	}
	return n
}

// Generate produces the access streams of every nest of p, in program
// order, under the given plans and layouts.
func Generate(p *poly.Program, plans map[*poly.LoopNest]*parallel.Plan,
	ft *FileTable, blockElems int64, threads int) ([]*NestTrace, error) {
	if blockElems < 1 {
		return nil, fmt.Errorf("trace: blockElems must be ≥ 1")
	}
	var out []*NestTrace
	for ni, n := range p.Nests {
		plan := plans[n]
		if plan == nil {
			return nil, fmt.Errorf("trace: nest %d has no plan", ni)
		}
		nt := &NestTrace{Streams: make([][]Access, threads)}
		// Per-ref scratch and resolved file/layout.
		type refInfo struct {
			ref  *poly.Reference
			file int32
			lay  layout.Layout
			dst  linalg.Vec
		}
		infos := make([]refInfo, len(n.Refs))
		for ri, r := range n.Refs {
			id := ft.ID(r.Array.Name)
			infos[ri] = refInfo{ref: r, file: id, lay: ft.Layouts[id], dst: make(linalg.Vec, r.Array.Rank())}
		}
		var genErr error
		n.ForEach(func(iv linalg.Vec) {
			if genErr != nil {
				return
			}
			th := plan.ThreadOf(iv[plan.U])
			stream := nt.Streams[th]
			for ri := range infos {
				inf := &infos[ri]
				inf.ref.EvalInto(iv, inf.dst)
				if !inf.ref.Array.Contains(inf.dst) {
					genErr = fmt.Errorf("trace: nest %d ref %s accesses %v outside %v at iteration %v",
						ni, inf.ref, inf.dst, inf.ref.Array.Dims, iv)
					return
				}
				blk := inf.lay.Offset(inf.dst) / blockElems
				if ln := len(stream); ln > 0 && stream[ln-1].File == inf.file && stream[ln-1].Block == blk {
					stream[ln-1].Elems++ // coalesce consecutive same-block accesses
					continue
				}
				stream = append(stream, Access{File: inf.file, Block: blk, Elems: 1})
			}
			nt.Streams[th] = stream
		})
		if genErr != nil {
			return nil, genErr
		}
		out = append(out, nt)
	}
	return out, nil
}
