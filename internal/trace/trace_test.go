package trace

import (
	"reflect"
	"testing"

	"flopt/internal/lang"
	"flopt/internal/layout"
	"flopt/internal/parallel"
	"flopt/internal/poly"
)

func setup(t *testing.T, src string, threads int) (*poly.Program, map[*poly.LoopNest]*parallel.Plan, *FileTable) {
	t.Helper()
	p, err := lang.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	plans := make(map[*poly.LoopNest]*parallel.Plan)
	for _, n := range p.Nests {
		plan, err := parallel.NewPlan(n, threads, 1)
		if err != nil {
			t.Fatal(err)
		}
		plans[n] = plan
	}
	ft, err := NewFileTable(p, layout.DefaultLayouts(p))
	if err != nil {
		t.Fatal(err)
	}
	return p, plans, ft
}

const rowSrc = `
array A[16][16];
parallel(i) for i = 0 to 15 { for j = 0 to 15 { read A[i][j]; } }
`

func TestGenerateRowMajorCoalesces(t *testing.T) {
	p, plans, ft := setup(t, rowSrc, 4)
	traces, err := Generate(p, plans, ft, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 {
		t.Fatalf("nests = %d", len(traces))
	}
	nt := traces[0]
	// Each thread reads 4 rows of 16 elements = 64 elements = 8 blocks
	// after coalescing (block = 8 elements, rows are contiguous) — and the
	// 8 consecutive blocks compress into a single run entry.
	for th, s := range nt.Streams {
		if got := len(ExpandStream(s)); got != 8 {
			t.Errorf("thread %d expanded stream length = %d, want 8", th, got)
		}
		if len(s) != 1 {
			t.Errorf("thread %d compressed stream length = %d, want 1 run entry", th, len(s))
		}
	}
	if nt.TotalAccesses() != 32 {
		t.Errorf("total = %d, want 32", nt.TotalAccesses())
	}
	// Thread 1 owns rows 4..7 ⇒ blocks 8..15 of file 0.
	want := int64(8)
	for _, a := range ExpandStream(nt.Streams[1]) {
		if a.File != 0 || a.Block != want {
			t.Errorf("thread 1 access = %+v, want block %d", a, want)
		}
		want++
	}
}

func TestGenerateColumnAccessDoesNotCoalesce(t *testing.T) {
	src := `
array B[16][16];
parallel(i) for i = 0 to 15 { for j = 0 to 15 { read B[j][i]; } }
`
	p, plans, ft := setup(t, src, 4)
	traces, err := Generate(p, plans, ft, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Column access under row-major: every element is a fresh block
	// (stride 16 > block 8): 4 columns × 16 rows = 64 accesses per thread.
	for th, s := range traces[0].Streams {
		if len(s) != 64 {
			t.Errorf("thread %d stream = %d accesses, want 64", th, len(s))
		}
	}
}

func TestGenerateMultiRefOrder(t *testing.T) {
	src := `
array A[4][4];
array B[4][4];
parallel(i) for i = 0 to 3 { for j = 0 to 3 { read A[i][j]; write B[i][j]; } }
`
	p, plans, ft := setup(t, src, 1)
	traces, err := Generate(p, plans, ft, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := traces[0].Streams[0]
	// Per iteration the A access then the B access; A and B blocks
	// alternate (different files prevent coalescing).
	if len(s) < 2 || s[0].File == s[1].File {
		t.Fatalf("stream = %v", s[:2])
	}
	aID, bID := ft.ID("A"), ft.ID("B")
	if s[0].File != aID || s[1].File != bID {
		t.Errorf("first accesses = %+v, %+v", s[0], s[1])
	}
}

func TestGenerateOptimizedLayoutChangesBlocks(t *testing.T) {
	src := `
array B[32][32];
parallel(i) for i = 0 to 31 { for j = 0 to 31 { read B[j][i]; } }
`
	p, err := lang.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	h := layout.Hierarchy{Levels: []layout.Level{
		{Name: "SC1", CapacityElems: 64, Fanout: 2},
		{Name: "SC2", CapacityElems: 256, Fanout: 2},
	}}
	res, err := layout.Optimize(p, layout.Options{Hierarchy: h, BlockElems: 8})
	if err != nil {
		t.Fatal(err)
	}
	ft, err := NewFileTable(p, res.Layouts)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := Generate(p, res.Plans, ft, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Optimized layout makes each thread's column sweep contiguous:
	// 8 columns × 32 rows = 256 elements = 32 blocks per thread.
	for th, s := range traces[0].Streams {
		if got := len(ExpandStream(s)); got != 32 {
			t.Errorf("thread %d accesses = %d, want 32", th, got)
		}
	}
}

func TestGenerateOutOfBounds(t *testing.T) {
	src := `
array A[4][4];
parallel(i) for i = 0 to 4 { for j = 0 to 3 { read A[i][j]; } }
`
	p, plans, ft := setup(t, src, 2)
	if _, err := Generate(p, plans, ft, 4, 2); err == nil {
		t.Error("out-of-bounds access not reported")
	}
}

func TestGenerateBadArgs(t *testing.T) {
	p, plans, ft := setup(t, rowSrc, 2)
	if _, err := Generate(p, plans, ft, 0, 2); err == nil {
		t.Error("blockElems 0 accepted")
	}
	if _, err := Generate(p, map[*poly.LoopNest]*parallel.Plan{}, ft, 4, 2); err == nil {
		t.Error("missing plan accepted")
	}
	_ = plans
}

// TestGenerateWorkersDeterministic proves the parallel trace generator is
// bit-identical to the serial walk for every worker count: the iteration
// space is partitioned along the parallelized loop by thread blocks, so
// each per-thread stream is produced by exactly one worker in the same
// lexicographic order the serial generator visits.
func TestGenerateWorkersDeterministic(t *testing.T) {
	src := `
array A[32][32];
array B[32][32];
parallel(i) for i = 0 to 31 { for j = 0 to 31 { read A[i][j]; write B[j][i]; } }
parallel(j) for i = 0 to 31 { for j = 0 to 31 { read B[i][j]; } }
`
	p, plans, ft := setup(t, src, 8)
	for _, blockElems := range []int64{1, 3, 8, 64} {
		ref, err := GenerateWorkers(p, plans, ft, blockElems, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8, 16} {
			got, err := GenerateWorkers(p, plans, ft, blockElems, 8, workers)
			if err != nil {
				t.Fatalf("blk=%d workers=%d: %v", blockElems, workers, err)
			}
			if len(got) != len(ref) {
				t.Fatalf("blk=%d workers=%d: %d nests, want %d", blockElems, workers, len(got), len(ref))
			}
			for ni := range ref {
				if !reflect.DeepEqual(got[ni].Streams, ref[ni].Streams) {
					t.Errorf("blk=%d workers=%d nest %d: streams differ from serial generation", blockElems, workers, ni)
				}
			}
			// The per-element walker must agree with the compressed fast path
			// after run expansion, at every block size and worker count.
			walked, err := generateWorkers(p, plans, ft, blockElems, 8, workers, nil, true)
			if err != nil {
				t.Fatalf("blk=%d workers=%d walker: %v", blockElems, workers, err)
			}
			for ni := range ref {
				for th := range ref[ni].Streams {
					if !reflect.DeepEqual(ExpandStream(ref[ni].Streams[th]), walked[ni].Streams[th]) {
						t.Errorf("blk=%d workers=%d nest %d thread %d: expanded fast path differs from walker",
							blockElems, workers, ni, th)
					}
				}
			}
		}
	}
}

// TestGenerateWorkersOutOfBounds checks error propagation from shard
// workers (no panic escapes the goroutines).
func TestGenerateWorkersOutOfBounds(t *testing.T) {
	src := `
array A[4][4];
parallel(i) for i = 0 to 4 { for j = 0 to 3 { read A[i][j]; } }
`
	p, plans, ft := setup(t, src, 2)
	for _, workers := range []int{1, 2, 4} {
		if _, err := GenerateWorkers(p, plans, ft, 4, 2, workers); err == nil {
			t.Errorf("workers=%d: out-of-bounds access not reported", workers)
		}
	}
}

func TestFileTable(t *testing.T) {
	p, _, ft := setup(t, `
array Z[8];
array A[8];
for i = 0 to 7 { read A[i]; read Z[i]; }
`, 1)
	_ = p
	// Deterministic (sorted) ids.
	if ft.ID("A") != 0 || ft.ID("Z") != 1 {
		t.Errorf("ids: A=%d Z=%d", ft.ID("A"), ft.ID("Z"))
	}
	if ft.Blocks(0, 3) != 3 { // 8 elements / 3 per block → 3 blocks
		t.Errorf("Blocks = %d", ft.Blocks(0, 3))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown name should panic")
			}
		}()
		ft.ID("nope")
	}()
}

func TestNewFileTableMissingLayout(t *testing.T) {
	p, err := lang.Parse("t", rowSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileTable(p, map[string]layout.Layout{}); err == nil {
		t.Error("missing layout accepted")
	}
}

func TestElemsCounting(t *testing.T) {
	// A single-ref row scan coalesces whole blocks into one access each;
	// the Elems counter must preserve the total element-touch count.
	src := `
array A[4][16];
parallel(i) for i = 0 to 3 {
    for j = 0 to 15 {
        read A[i][j];
    }
}
`
	p, plans, ft := setup(t, src, 2)
	traces, err := Generate(p, plans, ft, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	nt := traces[0]
	var elems int64
	for _, s := range nt.Streams {
		for _, a := range s {
			if a.Elems < 1 {
				t.Fatalf("access with Elems = %d", a.Elems)
			}
			elems += int64(a.Elems) * int64(a.Run+1)
		}
	}
	// Total element touches = 4×16 = 64 regardless of coalescing.
	if elems != 64 {
		t.Errorf("total elems = %d, want 64", elems)
	}
	if nt.TotalElems() != 64 {
		t.Errorf("TotalElems = %d", nt.TotalElems())
	}
	// Row scan with 8-element blocks: 16 elements per row = 2 blocks,
	// so each thread's 2 rows expand to 4 accesses of 8 coalesced elements
	// — compressed into one 4-block run entry.
	for th, s := range nt.Streams {
		if len(s) != 1 {
			t.Errorf("thread %d compressed accesses = %d, want 1", th, len(s))
		}
		ex := ExpandStream(s)
		if len(ex) != 4 {
			t.Errorf("thread %d accesses = %d, want 4", th, len(ex))
		}
		for _, a := range ex {
			if a.Elems != 8 {
				t.Errorf("thread %d access elems = %d, want 8", th, a.Elems)
			}
		}
	}
}
