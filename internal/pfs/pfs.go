// Package pfs is a functional (data-bearing) model of the PVFS-style
// parallel file system underneath the simulator: files hold real bytes,
// striped block-by-block across storage nodes. Where internal/sim answers
// "how long does this access take", pfs answers "is the data actually
// where the layout function says it is" — it is the end-to-end
// verification layer for file layouts, and the substrate for the §4.3
// import/export passes on real buffers.
package pfs

import (
	"encoding/binary"
	"fmt"
	"math"

	"flopt/internal/layout"
	"flopt/internal/linalg"
	"flopt/internal/storage/stripe"
)

// FS is a parallel file system instance: a set of storage nodes holding
// stripes of every file.
type FS struct {
	striping   stripe.Striping
	blockBytes int64
	files      map[string]*File
}

// New creates a file system over storageNodes nodes with the given stripe
// (block) size in bytes.
func New(storageNodes int, blockBytes int64) (*FS, error) {
	if blockBytes < 1 {
		return nil, fmt.Errorf("pfs: block size must be positive")
	}
	return &FS{
		striping:   stripe.New(storageNodes),
		blockBytes: blockBytes,
		files:      map[string]*File{},
	}, nil
}

// BlockBytes returns the stripe unit.
func (fs *FS) BlockBytes() int64 { return fs.blockBytes }

// File is one striped file. Stripes live on per-node block lists, exactly
// as a PVFS file would be distributed.
type File struct {
	fs   *FS
	name string
	size int64
	// nodes[s] holds this file's blocks on storage node s, in local order.
	nodes [][][]byte
}

// Create makes (or truncates) a file of the given byte size.
func (fs *FS) Create(name string, size int64) (*File, error) {
	if size < 0 {
		return nil, fmt.Errorf("pfs: negative file size")
	}
	f := &File{fs: fs, name: name, size: size, nodes: make([][][]byte, fs.striping.Nodes())}
	blocks := (size + fs.blockBytes - 1) / fs.blockBytes
	for b := int64(0); b < blocks; b++ {
		s := fs.striping.NodeOf(b)
		f.nodes[s] = append(f.nodes[s], make([]byte, fs.blockBytes))
	}
	fs.files[name] = f
	return f, nil
}

// Open returns an existing file.
func (fs *FS) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("pfs: no such file %q", name)
	}
	return f, nil
}

// Remove deletes a file.
func (fs *FS) Remove(name string) error {
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("pfs: no such file %q", name)
	}
	delete(fs.files, name)
	return nil
}

// Size returns the file size in bytes.
func (f *File) Size() int64 { return f.size }

// Name returns the file name.
func (f *File) Name() string { return f.name }

// block returns the backing slice of file block b.
func (f *File) block(b int64) ([]byte, error) {
	s := f.fs.striping.NodeOf(b)
	local := f.fs.striping.LocalIndex(b)
	if local >= int64(len(f.nodes[s])) {
		return nil, fmt.Errorf("pfs: block %d beyond end of %q", b, f.name)
	}
	return f.nodes[s][local], nil
}

// NodeOfOffset reports which storage node holds the byte at off.
func (f *File) NodeOfOffset(off int64) int {
	return f.fs.striping.NodeOf(off / f.fs.blockBytes)
}

// ReadAt fills p from the file starting at byte offset off, crossing
// stripe boundaries as needed.
func (f *File) ReadAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > f.size {
		return fmt.Errorf("pfs: read [%d, %d) outside file %q of %d bytes", off, off+int64(len(p)), f.name, f.size)
	}
	for n := 0; n < len(p); {
		b := (off + int64(n)) / f.fs.blockBytes
		in := (off + int64(n)) % f.fs.blockBytes
		blk, err := f.block(b)
		if err != nil {
			return err
		}
		n += copy(p[n:], blk[in:])
	}
	return nil
}

// WriteAt stores p into the file starting at byte offset off.
func (f *File) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > f.size {
		return fmt.Errorf("pfs: write [%d, %d) outside file %q of %d bytes", off, off+int64(len(p)), f.name, f.size)
	}
	for n := 0; n < len(p); {
		b := (off + int64(n)) / f.fs.blockBytes
		in := (off + int64(n)) % f.fs.blockBytes
		blk, err := f.block(b)
		if err != nil {
			return err
		}
		n += copy(blk[in:], p[n:])
	}
	return nil
}

const elemBytes = 8 // float64 elements, as in the out-of-core benchmarks

// ArrayFile is a disk-resident array stored under a file layout: element
// (i₁, …) lives at byte offset 8·layout.Offset(i).
type ArrayFile struct {
	file   *File
	layout layout.Layout
	dims   []int64
}

// CreateArray creates the file backing an array under the given layout.
func (fs *FS) CreateArray(name string, dims []int64, l layout.Layout) (*ArrayFile, error) {
	f, err := fs.Create(name, l.SizeElems()*elemBytes)
	if err != nil {
		return nil, err
	}
	return &ArrayFile{file: f, layout: l, dims: append([]int64(nil), dims...)}, nil
}

// Layout returns the array's layout.
func (a *ArrayFile) Layout() layout.Layout { return a.layout }

// Dims returns the array extents.
func (a *ArrayFile) Dims() []int64 { return append([]int64(nil), a.dims...) }

// Set stores v at index idx.
func (a *ArrayFile) Set(idx linalg.Vec, v float64) error {
	var buf [elemBytes]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	return a.file.WriteAt(buf[:], a.layout.Offset(idx)*elemBytes)
}

// Get loads the element at index idx.
func (a *ArrayFile) Get(idx linalg.Vec) (float64, error) {
	var buf [elemBytes]byte
	if err := a.file.ReadAt(buf[:], a.layout.Offset(idx)*elemBytes); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

// Import performs the §4.3 input conversion: it takes the array contents
// in canonical row-major element order and stores them under the file's
// layout.
func (a *ArrayFile) Import(canonical []float64) error {
	want := int64(1)
	for _, d := range a.dims {
		want *= d
	}
	if int64(len(canonical)) != want {
		return fmt.Errorf("pfs: canonical buffer has %d elements, array needs %d", len(canonical), want)
	}
	idx := make(linalg.Vec, len(a.dims))
	var err error
	forEachIndex(a.dims, idx, func(lin int64) {
		if err == nil {
			err = a.Set(idx, canonical[lin])
		}
	})
	return err
}

// Export performs the §4.3 output conversion: it reads the whole array
// back into canonical row-major order.
func (a *ArrayFile) Export() ([]float64, error) {
	size := int64(1)
	for _, d := range a.dims {
		size *= d
	}
	out := make([]float64, size)
	idx := make(linalg.Vec, len(a.dims))
	var err error
	forEachIndex(a.dims, idx, func(lin int64) {
		if err == nil {
			out[lin], err = a.Get(idx)
		}
	})
	return out, err
}

// forEachIndex enumerates the box [0,dims) in row-major order.
func forEachIndex(dims []int64, idx linalg.Vec, f func(lin int64)) {
	var rec func(k int, lin int64)
	rec = func(k int, lin int64) {
		if k == len(dims) {
			f(lin)
			return
		}
		for v := int64(0); v < dims[k]; v++ {
			idx[k] = v
			rec(k+1, lin*dims[k]+v)
		}
	}
	rec(0, 0)
}
