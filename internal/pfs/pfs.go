// Package pfs is a functional (data-bearing) model of the PVFS-style
// parallel file system underneath the simulator: files hold real bytes,
// striped block-by-block across storage nodes, optionally with stripe
// replicas on the following nodes (chained declustering). Where
// internal/sim answers "how long does this access take", pfs answers "is
// the data actually where the layout function says it is" — it is the
// end-to-end verification layer for file layouts, for the §4.3
// import/export passes on real buffers, and for degraded-mode reads:
// with replication, a read through a failed storage node reconstructs
// byte-identical data from the surviving copy.
package pfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"flopt/internal/layout"
	"flopt/internal/linalg"
	"flopt/internal/obs"
	"flopt/internal/storage/stripe"
)

// Typed sentinel errors; every error returned by the package wraps one of
// these (match with errors.Is).
var (
	// ErrNotFound: the named file does not exist.
	ErrNotFound = errors.New("pfs: file not found")
	// ErrOutOfRange: a read or write touches bytes outside the file.
	ErrOutOfRange = errors.New("pfs: offset out of range")
	// ErrUnavailable: every node holding a copy of the block has failed.
	ErrUnavailable = errors.New("pfs: block unavailable")
	// ErrBadConfig: invalid file system geometry.
	ErrBadConfig = errors.New("pfs: invalid configuration")
)

// FS is a parallel file system instance: a set of storage nodes holding
// stripes (and stripe replicas) of every file.
type FS struct {
	striping   stripe.Striping
	blockBytes int64
	replicas   int
	files      map[string]*File
	// failed[s] marks storage node s unreadable (see FailNode). Writes
	// still reach every copy, modeling the resynchronization journal a
	// real deployment replays on recovery.
	failed []bool
	// degradedReads counts block reads served by a non-primary copy.
	degradedReads int64
	// obs receives node-outage and degraded-read events (Nop by default).
	obs obs.Observer
}

// SetObserver routes the file system's structured events (node down/up,
// degraded reads) to o; nil restores the no-op default. The pfs layer has
// no virtual clock, so its events carry TimeUS 0 and are ordered by Seq.
func (fs *FS) SetObserver(o obs.Observer) {
	if o == nil {
		o = obs.Nop{}
	}
	fs.obs = o
}

// New creates an unreplicated file system over storageNodes nodes with
// the given stripe (block) size in bytes.
func New(storageNodes int, blockBytes int64) (*FS, error) {
	return NewReplicated(storageNodes, blockBytes, 1)
}

// NewReplicated creates a file system keeping `replicas` copies of every
// block: copy r of block b lives on the r-th node after b's primary
// (chained declustering). replicas must be in [1, storageNodes].
func NewReplicated(storageNodes int, blockBytes int64, replicas int) (*FS, error) {
	if blockBytes < 1 {
		return nil, fmt.Errorf("%w: block size %d must be positive", ErrBadConfig, blockBytes)
	}
	if storageNodes < 1 {
		return nil, fmt.Errorf("%w: need at least one storage node, got %d", ErrBadConfig, storageNodes)
	}
	if replicas < 1 || replicas > storageNodes {
		return nil, fmt.Errorf("%w: replicas %d outside [1, %d]", ErrBadConfig, replicas, storageNodes)
	}
	return &FS{
		striping:   stripe.New(storageNodes),
		blockBytes: blockBytes,
		replicas:   replicas,
		files:      map[string]*File{},
		failed:     make([]bool, storageNodes),
		obs:        obs.Nop{},
	}, nil
}

// BlockBytes returns the stripe unit.
func (fs *FS) BlockBytes() int64 { return fs.blockBytes }

// Replicas returns the number of copies kept per block.
func (fs *FS) Replicas() int { return fs.replicas }

// FailNode marks storage node s unreadable: subsequent reads of blocks
// whose primary copy lives there are served degraded from a replica.
func (fs *FS) FailNode(s int) error {
	if s < 0 || s >= fs.striping.Nodes() {
		return fmt.Errorf("%w: no storage node %d", ErrBadConfig, s)
	}
	fs.failed[s] = true
	fs.obs.Event(obs.Event{Kind: obs.EvNodeDown, Node: s, Thread: -1, File: -1})
	return nil
}

// ReviveNode returns a failed node to service. Its copies are immediately
// consistent: writes during the outage reached every copy (the journal
// model), so no explicit resync pass is needed.
func (fs *FS) ReviveNode(s int) error {
	if s < 0 || s >= fs.striping.Nodes() {
		return fmt.Errorf("%w: no storage node %d", ErrBadConfig, s)
	}
	fs.failed[s] = false
	fs.obs.Event(obs.Event{Kind: obs.EvNodeUp, Node: s, Thread: -1, File: -1})
	return nil
}

// DegradedReads returns how many block reads were served by a replica
// because the primary's node had failed.
func (fs *FS) DegradedReads() int64 { return fs.degradedReads }

// NodeBlocks returns how many block copies (primaries plus replicas,
// across all files) each storage node currently holds — the placement
// balance view of the data-bearing layer.
func (fs *FS) NodeBlocks() []int64 {
	out := make([]int64, fs.striping.Nodes())
	for _, f := range fs.files {
		for s, blocks := range f.nodes {
			out[s] += int64(len(blocks))
		}
	}
	return out
}

// File is one striped file. Each node holds that node's copies of the
// file's blocks, keyed by global block index — primaries and replicas
// alike, exactly as a chained-declustered PVFS file would be distributed.
type File struct {
	fs   *FS
	name string
	size int64
	// nodes[s] maps global block index → storage node s's copy.
	nodes []map[int64][]byte
}

// Create makes (or truncates) a file of the given byte size.
func (fs *FS) Create(name string, size int64) (*File, error) {
	if size < 0 {
		return nil, fmt.Errorf("%w: negative size %d for %q", ErrBadConfig, size, name)
	}
	f := &File{fs: fs, name: name, size: size, nodes: make([]map[int64][]byte, fs.striping.Nodes())}
	for s := range f.nodes {
		f.nodes[s] = map[int64][]byte{}
	}
	blocks := (size + fs.blockBytes - 1) / fs.blockBytes
	for b := int64(0); b < blocks; b++ {
		for r := 0; r < fs.replicas; r++ {
			s := fs.striping.ReplicaOf(b, r)
			f.nodes[s][b] = make([]byte, fs.blockBytes)
		}
	}
	fs.files[name] = f
	return f, nil
}

// Open returns an existing file.
func (fs *FS) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return f, nil
}

// Remove deletes a file.
func (fs *FS) Remove(name string) error {
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(fs.files, name)
	return nil
}

// Size returns the file size in bytes.
func (f *File) Size() int64 { return f.size }

// Name returns the file name.
func (f *File) Name() string { return f.name }

// readBlock returns a readable copy of file block b: the primary when its
// node is up, otherwise the first surviving replica (a degraded read).
func (f *File) readBlock(b int64) ([]byte, error) {
	for r := 0; r < f.fs.replicas; r++ {
		s := f.fs.striping.ReplicaOf(b, r)
		if f.fs.failed[s] {
			continue
		}
		blk, ok := f.nodes[s][b]
		if !ok {
			break
		}
		if r > 0 {
			f.fs.degradedReads++
			f.fs.obs.Event(obs.Event{Kind: obs.EvDegradedRead, Node: s, Thread: -1, File: -1, Detail: f.name})
		}
		return blk, nil
	}
	if _, ok := f.nodes[f.fs.striping.NodeOf(b)][b]; !ok {
		return nil, fmt.Errorf("%w: block %d beyond end of %q", ErrOutOfRange, b, f.name)
	}
	return nil, fmt.Errorf("%w: all %d copies of block %d of %q are on failed nodes",
		ErrUnavailable, f.fs.replicas, b, f.name)
}

// writeBlock visits every copy of block b, failed nodes included (the
// journal model: a recovering node replays writes it missed, so copies
// never diverge).
func (f *File) writeBlock(b int64, visit func(blk []byte)) error {
	found := false
	for r := 0; r < f.fs.replicas; r++ {
		s := f.fs.striping.ReplicaOf(b, r)
		if blk, ok := f.nodes[s][b]; ok {
			visit(blk)
			found = true
		}
	}
	if !found {
		return fmt.Errorf("%w: block %d beyond end of %q", ErrOutOfRange, b, f.name)
	}
	return nil
}

// NodeOfOffset reports which storage node holds the primary copy of the
// byte at off.
func (f *File) NodeOfOffset(off int64) int {
	return f.fs.striping.NodeOf(off / f.fs.blockBytes)
}

// ReadAt fills p from the file starting at byte offset off, crossing
// stripe boundaries as needed. Reads through failed nodes return
// byte-identical data from replicas; if every copy of a needed block is
// unreachable, the error wraps ErrUnavailable.
func (f *File) ReadAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > f.size {
		return fmt.Errorf("%w: read [%d, %d) outside file %q of %d bytes",
			ErrOutOfRange, off, off+int64(len(p)), f.name, f.size)
	}
	for n := 0; n < len(p); {
		b := (off + int64(n)) / f.fs.blockBytes
		in := (off + int64(n)) % f.fs.blockBytes
		blk, err := f.readBlock(b)
		if err != nil {
			return err
		}
		n += copy(p[n:], blk[in:])
	}
	return nil
}

// WriteAt stores p into the file starting at byte offset off, updating
// every replica.
func (f *File) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > f.size {
		return fmt.Errorf("%w: write [%d, %d) outside file %q of %d bytes",
			ErrOutOfRange, off, off+int64(len(p)), f.name, f.size)
	}
	for n := 0; n < len(p); {
		b := (off + int64(n)) / f.fs.blockBytes
		in := (off + int64(n)) % f.fs.blockBytes
		var wrote int
		err := f.writeBlock(b, func(blk []byte) {
			wrote = copy(blk[in:], p[n:])
		})
		if err != nil {
			return err
		}
		n += wrote
	}
	return nil
}

const elemBytes = 8 // float64 elements, as in the out-of-core benchmarks

// ArrayFile is a disk-resident array stored under a file layout: element
// (i₁, …) lives at byte offset 8·layout.Offset(i).
type ArrayFile struct {
	file   *File
	layout layout.Layout
	dims   []int64
}

// CreateArray creates the file backing an array under the given layout.
func (fs *FS) CreateArray(name string, dims []int64, l layout.Layout) (*ArrayFile, error) {
	f, err := fs.Create(name, l.SizeElems()*elemBytes)
	if err != nil {
		return nil, err
	}
	return &ArrayFile{file: f, layout: l, dims: append([]int64(nil), dims...)}, nil
}

// Layout returns the array's layout.
func (a *ArrayFile) Layout() layout.Layout { return a.layout }

// Dims returns the array extents.
func (a *ArrayFile) Dims() []int64 { return append([]int64(nil), a.dims...) }

// Set stores v at index idx.
func (a *ArrayFile) Set(idx linalg.Vec, v float64) error {
	var buf [elemBytes]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	return a.file.WriteAt(buf[:], a.layout.Offset(idx)*elemBytes)
}

// Get loads the element at index idx.
func (a *ArrayFile) Get(idx linalg.Vec) (float64, error) {
	var buf [elemBytes]byte
	if err := a.file.ReadAt(buf[:], a.layout.Offset(idx)*elemBytes); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

// Import performs the §4.3 input conversion: it takes the array contents
// in canonical row-major element order and stores them under the file's
// layout.
func (a *ArrayFile) Import(canonical []float64) error {
	want := int64(1)
	for _, d := range a.dims {
		want *= d
	}
	if int64(len(canonical)) != want {
		return fmt.Errorf("pfs: canonical buffer has %d elements, array needs %d", len(canonical), want)
	}
	idx := make(linalg.Vec, len(a.dims))
	var err error
	forEachIndex(a.dims, idx, func(lin int64) {
		if err == nil {
			err = a.Set(idx, canonical[lin])
		}
	})
	return err
}

// Export performs the §4.3 output conversion: it reads the whole array
// back into canonical row-major order.
func (a *ArrayFile) Export() ([]float64, error) {
	size := int64(1)
	for _, d := range a.dims {
		size *= d
	}
	out := make([]float64, size)
	idx := make(linalg.Vec, len(a.dims))
	var err error
	forEachIndex(a.dims, idx, func(lin int64) {
		if err == nil {
			out[lin], err = a.Get(idx)
		}
	})
	return out, err
}

// forEachIndex enumerates the box [0,dims) in row-major order.
func forEachIndex(dims []int64, idx linalg.Vec, f func(lin int64)) {
	var rec func(k int, lin int64)
	rec = func(k int, lin int64) {
		if k == len(dims) {
			f(lin)
			return
		}
		for v := int64(0); v < dims[k]; v++ {
			idx[k] = v
			rec(k+1, lin*dims[k]+v)
		}
	}
	rec(0, 0)
}
