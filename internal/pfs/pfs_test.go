package pfs

import (
	"testing"

	"flopt/internal/lang"
	"flopt/internal/layout"
	"flopt/internal/linalg"
	"flopt/internal/poly"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	fs, err := New(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestCreateOpenRemove(t *testing.T) {
	fs := newFS(t)
	f, err := fs.Create("a", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 1000 || f.Name() != "a" {
		t.Errorf("size=%d name=%s", f.Size(), f.Name())
	}
	if _, err := fs.Open("a"); err != nil {
		t.Error(err)
	}
	if _, err := fs.Open("b"); err == nil {
		t.Error("opened nonexistent file")
	}
	if err := fs.Remove("a"); err != nil {
		t.Error(err)
	}
	if err := fs.Remove("a"); err == nil {
		t.Error("removed twice")
	}
}

func TestReadWriteAcrossStripes(t *testing.T) {
	fs := newFS(t)
	f, err := fs.Create("x", 300)
	if err != nil {
		t.Fatal(err)
	}
	// A write spanning several 64-byte stripes.
	data := make([]byte, 200)
	for i := range data {
		data[i] = byte(i)
	}
	if err := f.WriteAt(data, 30); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 200)
	if err := f.ReadAt(got, 30); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d: got %d want %d", i, got[i], data[i])
		}
	}
}

func TestBoundsChecks(t *testing.T) {
	fs := newFS(t)
	f, _ := fs.Create("x", 100)
	if err := f.ReadAt(make([]byte, 10), 95); err == nil {
		t.Error("read past end accepted")
	}
	if err := f.WriteAt(make([]byte, 10), -1); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := fs.Create("y", -1); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := New(2, 0); err == nil {
		t.Error("zero block size accepted")
	}
}

func TestStripingDistribution(t *testing.T) {
	fs := newFS(t)
	f, _ := fs.Create("x", 64*8) // 8 blocks over 4 nodes
	for b := int64(0); b < 8; b++ {
		if got, want := f.NodeOfOffset(b*64), int(b%4); got != want {
			t.Errorf("block %d on node %d, want %d", b, got, want)
		}
	}
}

func TestArrayFileRoundTrip(t *testing.T) {
	fs := newFS(t)
	a := &poly.Array{Name: "A", Dims: []int64{16, 16}}
	af, err := fs.CreateArray("A", a.Dims, layout.RowMajor(a))
	if err != nil {
		t.Fatal(err)
	}
	if err := af.Set(linalg.Vec{3, 5}, 42.5); err != nil {
		t.Fatal(err)
	}
	v, err := af.Get(linalg.Vec{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if v != 42.5 {
		t.Errorf("got %f", v)
	}
	if v, _ := af.Get(linalg.Vec{3, 6}); v != 0 {
		t.Errorf("neighbor disturbed: %f", v)
	}
}

// The decisive end-to-end property: data imported into an optimized
// layout and exported back is bit-identical — the layout is a true
// bijection over real storage, not just over offsets.
func TestImportExportUnderOptimizedLayout(t *testing.T) {
	src := `
array B[32][32];
parallel(i) for i = 0 to 31 { for j = 0 to 31 { read B[j][i]; } }
`
	p, err := lang.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	h := layout.Hierarchy{Levels: []layout.Level{
		{Name: "SC1", CapacityElems: 64, Fanout: 2},
		{Name: "SC2", CapacityElems: 256, Fanout: 2},
	}}
	res, err := layout.Optimize(p, layout.Options{Hierarchy: h, BlockElems: 8})
	if err != nil {
		t.Fatal(err)
	}
	ol := res.Layouts["B"]
	if ol.Name() != "inter-node" {
		t.Fatal("B should be optimized")
	}
	fs := newFS(t)
	af, err := fs.CreateArray("B", []int64{32, 32}, ol)
	if err != nil {
		t.Fatal(err)
	}
	canonical := make([]float64, 32*32)
	for i := range canonical {
		canonical[i] = float64(i) * 1.5
	}
	if err := af.Import(canonical); err != nil {
		t.Fatal(err)
	}
	// Spot-check direct indexed access agrees with the canonical values.
	if v, _ := af.Get(linalg.Vec{2, 3}); v != canonical[2*32+3] {
		t.Errorf("B[2][3] = %f, want %f", v, canonical[2*32+3])
	}
	back, err := af.Export()
	if err != nil {
		t.Fatal(err)
	}
	for i := range canonical {
		if back[i] != canonical[i] {
			t.Fatalf("element %d changed: %f != %f", i, back[i], canonical[i])
		}
	}
}

func TestImportSizeMismatch(t *testing.T) {
	fs := newFS(t)
	a := &poly.Array{Name: "A", Dims: []int64{4, 4}}
	af, _ := fs.CreateArray("A", a.Dims, layout.RowMajor(a))
	if err := af.Import(make([]float64, 3)); err == nil {
		t.Error("short import accepted")
	}
	if got := af.Dims(); len(got) != 2 || got[0] != 4 {
		t.Errorf("dims = %v", got)
	}
	if af.Layout().Name() != "row-major" {
		t.Error("layout accessor wrong")
	}
}

// Cross-validate with a remap plan: importing through RemapPlan.Apply and
// writing raw bytes equals element-wise Import.
func TestImportMatchesRemapApply(t *testing.T) {
	a := &poly.Array{Name: "A", Dims: []int64{8, 8}}
	cm := layout.ColMajor(a)
	plan, err := layout.NewRemapPlan(layout.RowMajor(a), cm, a.Dims, "A", 4)
	if err != nil {
		t.Fatal(err)
	}
	canonical := make([]float64, 64)
	for i := range canonical {
		canonical[i] = float64(i * i)
	}
	remapped, err := plan.Apply(canonical, a.Dims)
	if err != nil {
		t.Fatal(err)
	}
	fs := newFS(t)
	af, _ := fs.CreateArray("A", a.Dims, cm)
	if err := af.Import(canonical); err != nil {
		t.Fatal(err)
	}
	idx := make(linalg.Vec, 2)
	forEachIndex(a.Dims, idx, func(lin int64) {
		v, _ := af.Get(idx)
		if v != remapped[cm.Offset(idx)] {
			t.Fatalf("mismatch at %v", idx)
		}
	})
}
