package pfs

import (
	"bytes"
	"errors"
	"testing"

	"flopt/internal/lang"
	"flopt/internal/layout"
	"flopt/internal/linalg"
	"flopt/internal/poly"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	fs, err := New(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestCreateOpenRemove(t *testing.T) {
	fs := newFS(t)
	f, err := fs.Create("a", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 1000 || f.Name() != "a" {
		t.Errorf("size=%d name=%s", f.Size(), f.Name())
	}
	if _, err := fs.Open("a"); err != nil {
		t.Error(err)
	}
	if _, err := fs.Open("b"); err == nil {
		t.Error("opened nonexistent file")
	}
	if err := fs.Remove("a"); err != nil {
		t.Error(err)
	}
	if err := fs.Remove("a"); err == nil {
		t.Error("removed twice")
	}
}

func TestReadWriteAcrossStripes(t *testing.T) {
	fs := newFS(t)
	f, err := fs.Create("x", 300)
	if err != nil {
		t.Fatal(err)
	}
	// A write spanning several 64-byte stripes.
	data := make([]byte, 200)
	for i := range data {
		data[i] = byte(i)
	}
	if err := f.WriteAt(data, 30); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 200)
	if err := f.ReadAt(got, 30); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d: got %d want %d", i, got[i], data[i])
		}
	}
}

func TestBoundsChecks(t *testing.T) {
	fs := newFS(t)
	f, _ := fs.Create("x", 100)
	if err := f.ReadAt(make([]byte, 10), 95); err == nil {
		t.Error("read past end accepted")
	}
	if err := f.WriteAt(make([]byte, 10), -1); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := fs.Create("y", -1); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := New(2, 0); err == nil {
		t.Error("zero block size accepted")
	}
}

func TestSentinelErrors(t *testing.T) {
	fs := newFS(t)
	if _, err := fs.Open("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Open(ghost) = %v, want ErrNotFound", err)
	}
	if err := fs.Remove("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Remove(ghost) = %v, want ErrNotFound", err)
	}
	f, _ := fs.Create("x", 100)
	// Reads past EOF, negative offsets, and writes out of range all wrap
	// ErrOutOfRange with context.
	if err := f.ReadAt(make([]byte, 10), 95); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read past EOF = %v, want ErrOutOfRange", err)
	}
	if err := f.ReadAt(make([]byte, 1), -1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("negative read = %v, want ErrOutOfRange", err)
	}
	if err := f.WriteAt(make([]byte, 200), 0); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("oversized write = %v, want ErrOutOfRange", err)
	}
	if _, err := fs.Create("y", -1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative size = %v, want ErrBadConfig", err)
	}
	if _, err := NewReplicated(2, 64, 3); !errors.Is(err, ErrBadConfig) {
		t.Error("replicas > nodes accepted")
	}
	if _, err := NewReplicated(2, 64, 0); !errors.Is(err, ErrBadConfig) {
		t.Error("zero replicas accepted")
	}
	if err := fs.FailNode(99); !errors.Is(err, ErrBadConfig) {
		t.Error("failing an unknown node accepted")
	}
}

// TestDegradedReadByteIdentical is the acceptance-criteria round trip:
// with stripe replication, reads through a failed storage node return
// exactly the bytes the healthy path returns.
func TestDegradedReadByteIdentical(t *testing.T) {
	fs, err := NewReplicated(4, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("x", 1000)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	healthy := make([]byte, 1000)
	if err := f.ReadAt(healthy, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(healthy, data) {
		t.Fatal("healthy read differs from written data")
	}
	if fs.DegradedReads() != 0 {
		t.Fatalf("healthy reads counted as degraded: %d", fs.DegradedReads())
	}
	// Fail each node in turn; every byte must still read back identically.
	for s := 0; s < 4; s++ {
		if err := fs.FailNode(s); err != nil {
			t.Fatal(err)
		}
		degraded := make([]byte, 1000)
		if err := f.ReadAt(degraded, 0); err != nil {
			t.Fatalf("node %d failed: %v", s, err)
		}
		if !bytes.Equal(degraded, healthy) {
			t.Fatalf("node %d failed: degraded read differs from healthy read", s)
		}
		if err := fs.ReviveNode(s); err != nil {
			t.Fatal(err)
		}
	}
	if fs.DegradedReads() == 0 {
		t.Error("degraded reads not counted")
	}
}

func TestWritesDuringOutageSurviveRevival(t *testing.T) {
	fs, _ := NewReplicated(3, 32, 2)
	f, _ := fs.Create("x", 300)
	if err := fs.FailNode(0); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 300)
	for i := range data {
		data[i] = byte(255 - i%251)
	}
	if err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("write during outage: %v", err)
	}
	if err := fs.ReviveNode(0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 300)
	if err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("journaled writes lost on revival")
	}
}

func TestAllCopiesDownIsUnavailable(t *testing.T) {
	fs, _ := NewReplicated(3, 32, 2)
	f, _ := fs.Create("x", 300)
	// Block 0's copies live on nodes 0 and 1; failing both starves it.
	fs.FailNode(0)
	fs.FailNode(1)
	err := f.ReadAt(make([]byte, 10), 0)
	if !errors.Is(err, ErrUnavailable) {
		t.Errorf("read with all copies down = %v, want ErrUnavailable", err)
	}
	// Unreplicated file systems degrade to unavailable on a single
	// failure.
	fs1, _ := New(2, 32)
	f1, _ := fs1.Create("y", 100)
	fs1.FailNode(0)
	if err := f1.ReadAt(make([]byte, 10), 0); !errors.Is(err, ErrUnavailable) {
		t.Errorf("unreplicated read through failed node = %v, want ErrUnavailable", err)
	}
}

// TestArrayRoundTripUnderFailedNode drives the degraded path end to end
// through an optimized array layout: import, fail a node, export — the
// canonical data must survive bit-identically.
func TestArrayRoundTripUnderFailedNode(t *testing.T) {
	fs, err := NewReplicated(4, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := &poly.Array{Name: "A", Dims: []int64{16, 16}}
	af, err := fs.CreateArray("A", a.Dims, layout.ColMajor(a))
	if err != nil {
		t.Fatal(err)
	}
	canonical := make([]float64, 256)
	for i := range canonical {
		canonical[i] = float64(i)*0.5 - 3
	}
	if err := af.Import(canonical); err != nil {
		t.Fatal(err)
	}
	if err := fs.FailNode(2); err != nil {
		t.Fatal(err)
	}
	back, err := af.Export()
	if err != nil {
		t.Fatal(err)
	}
	for i := range canonical {
		if back[i] != canonical[i] {
			t.Fatalf("element %d changed under degraded export: %v != %v", i, back[i], canonical[i])
		}
	}
	if fs.DegradedReads() == 0 {
		t.Error("export through failed node performed no degraded reads")
	}
}

func TestStripingDistribution(t *testing.T) {
	fs := newFS(t)
	f, _ := fs.Create("x", 64*8) // 8 blocks over 4 nodes
	for b := int64(0); b < 8; b++ {
		if got, want := f.NodeOfOffset(b*64), int(b%4); got != want {
			t.Errorf("block %d on node %d, want %d", b, got, want)
		}
	}
}

func TestArrayFileRoundTrip(t *testing.T) {
	fs := newFS(t)
	a := &poly.Array{Name: "A", Dims: []int64{16, 16}}
	af, err := fs.CreateArray("A", a.Dims, layout.RowMajor(a))
	if err != nil {
		t.Fatal(err)
	}
	if err := af.Set(linalg.Vec{3, 5}, 42.5); err != nil {
		t.Fatal(err)
	}
	v, err := af.Get(linalg.Vec{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if v != 42.5 {
		t.Errorf("got %f", v)
	}
	if v, _ := af.Get(linalg.Vec{3, 6}); v != 0 {
		t.Errorf("neighbor disturbed: %f", v)
	}
}

// The decisive end-to-end property: data imported into an optimized
// layout and exported back is bit-identical — the layout is a true
// bijection over real storage, not just over offsets.
func TestImportExportUnderOptimizedLayout(t *testing.T) {
	src := `
array B[32][32];
parallel(i) for i = 0 to 31 { for j = 0 to 31 { read B[j][i]; } }
`
	p, err := lang.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	h := layout.Hierarchy{Levels: []layout.Level{
		{Name: "SC1", CapacityElems: 64, Fanout: 2},
		{Name: "SC2", CapacityElems: 256, Fanout: 2},
	}}
	res, err := layout.Optimize(p, layout.Options{Hierarchy: h, BlockElems: 8})
	if err != nil {
		t.Fatal(err)
	}
	ol := res.Layouts["B"]
	if ol.Name() != "inter-node" {
		t.Fatal("B should be optimized")
	}
	fs := newFS(t)
	af, err := fs.CreateArray("B", []int64{32, 32}, ol)
	if err != nil {
		t.Fatal(err)
	}
	canonical := make([]float64, 32*32)
	for i := range canonical {
		canonical[i] = float64(i) * 1.5
	}
	if err := af.Import(canonical); err != nil {
		t.Fatal(err)
	}
	// Spot-check direct indexed access agrees with the canonical values.
	if v, _ := af.Get(linalg.Vec{2, 3}); v != canonical[2*32+3] {
		t.Errorf("B[2][3] = %f, want %f", v, canonical[2*32+3])
	}
	back, err := af.Export()
	if err != nil {
		t.Fatal(err)
	}
	for i := range canonical {
		if back[i] != canonical[i] {
			t.Fatalf("element %d changed: %f != %f", i, back[i], canonical[i])
		}
	}
}

func TestImportSizeMismatch(t *testing.T) {
	fs := newFS(t)
	a := &poly.Array{Name: "A", Dims: []int64{4, 4}}
	af, _ := fs.CreateArray("A", a.Dims, layout.RowMajor(a))
	if err := af.Import(make([]float64, 3)); err == nil {
		t.Error("short import accepted")
	}
	if got := af.Dims(); len(got) != 2 || got[0] != 4 {
		t.Errorf("dims = %v", got)
	}
	if af.Layout().Name() != "row-major" {
		t.Error("layout accessor wrong")
	}
}

// Cross-validate with a remap plan: importing through RemapPlan.Apply and
// writing raw bytes equals element-wise Import.
func TestImportMatchesRemapApply(t *testing.T) {
	a := &poly.Array{Name: "A", Dims: []int64{8, 8}}
	cm := layout.ColMajor(a)
	plan, err := layout.NewRemapPlan(layout.RowMajor(a), cm, a.Dims, "A", 4)
	if err != nil {
		t.Fatal(err)
	}
	canonical := make([]float64, 64)
	for i := range canonical {
		canonical[i] = float64(i * i)
	}
	remapped, err := plan.Apply(canonical, a.Dims)
	if err != nil {
		t.Fatal(err)
	}
	fs := newFS(t)
	af, _ := fs.CreateArray("A", a.Dims, cm)
	if err := af.Import(canonical); err != nil {
		t.Fatal(err)
	}
	idx := make(linalg.Vec, 2)
	forEachIndex(a.Dims, idx, func(lin int64) {
		v, _ := af.Get(idx)
		if v != remapped[cm.Offset(idx)] {
			t.Fatalf("mismatch at %v", idx)
		}
	})
}
