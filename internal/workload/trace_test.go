package workload

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTrace(t *testing.T, recs int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	w, err := NewTraceWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []string{KindCompile, KindOffsets, KindSimulate}
	for i := 0; i < recs; i++ {
		if err := w.Append(kinds[i%3], "c1", "gold", "swim"); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTraceRoundTrip(t *testing.T) {
	path := writeTrace(t, 9)
	recs, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 9 {
		t.Fatalf("got %d records, want 9", len(recs))
	}
	for i, r := range recs {
		if r.V != TraceVersion {
			t.Fatalf("record %d: version %d", i, r.V)
		}
		if r.Seq != int64(i) {
			t.Fatalf("record %d: seq %d", i, r.Seq)
		}
		if i > 0 && r.TimeUS < recs[i-1].TimeUS {
			t.Fatalf("record %d: time went backwards", i)
		}
		if r.Client != "c1" || r.SLO != "gold" || r.Program != "swim" {
			t.Fatalf("record %d: fields wrong: %+v", i, r)
		}
	}
	evs := Events(recs)
	if len(evs) != 9 {
		t.Fatalf("Events: got %d, want 9", len(evs))
	}
	for i, e := range evs {
		if e.Seq != int64(i) {
			t.Fatalf("event %d: seq %d", i, e.Seq)
		}
		if e.Kind != recs[i].Kind || e.Program != recs[i].Program || e.SLO != "gold" {
			t.Fatalf("event %d: fields wrong: %+v", i, e)
		}
	}
}

// TestTraceTornTail: a truncated final line is skipped, not an error —
// the crash-tolerance contract shared with the service journals.
func TestTraceTornTail(t *testing.T) {
	path := writeTrace(t, 5)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record mid-line.
	torn := data[:len(data)-10]
	tornPath := filepath.Join(t.TempDir(), "torn.jsonl")
	if err := os.WriteFile(tornPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTraceFile(tornPath)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records after tear, want 4", len(recs))
	}
}

// TestTraceMidFileCorruption: a bad line with more records after it is
// corruption, not a torn tail.
func TestTraceMidFileCorruption(t *testing.T) {
	path := writeTrace(t, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines[1] = "{garbage\n"
	badPath := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(badPath, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTraceFile(badPath); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestTraceVersionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v9.jsonl")
	line := `{"v":9,"seq":0,"t_us":0,"kind":"offsets","slo":"default","program":"swim"}` + "\n"
	if err := os.WriteFile(path, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadTraceFile(path)
	if err == nil || !strings.Contains(err.Error(), "version 9 unsupported") {
		t.Fatalf("want version rejection, got %v", err)
	}
}

func TestTraceMissingFieldsRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	line := `{"v":1,"seq":0,"t_us":0,"kind":"offsets","slo":"default","program":""}` + "\n"
	if err := os.WriteFile(path, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTraceFile(path); err == nil {
		t.Fatal("record without program accepted")
	}
}

func TestTraceEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("empty file decoded %d records", len(recs))
	}
}

func TestTraceDefaultsSLO(t *testing.T) {
	path := filepath.Join(t.TempDir(), "noslo.jsonl")
	w, err := NewTraceWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(KindOffsets, "c1", "", "swim"); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 1 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].SLO != "default" {
		t.Fatalf("empty SLO not defaulted: %+v", recs)
	}
}
