package workload

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// TraceVersion is the trace record schema version this build reads and
// writes. A reader rejects records from a different version rather than
// guessing at their fields.
const TraceVersion = 1

// Record is one accepted request as written to a trace file. Records
// capture the workload-level request identity — kind, program, client
// and SLO class — not the raw HTTP body: layout IDs are content
// addressed, so replaying the same program on any node reproduces the
// same layout, which is what lets one trace replay through both the
// live service and the offline harness.
type Record struct {
	V       int    `json:"v"`
	Seq     int64  `json:"seq"`
	TimeUS  int64  `json:"t_us"`
	Kind    string `json:"kind"`
	Client  string `json:"client,omitempty"`
	SLO     string `json:"slo"`
	Program string `json:"program"`
}

// TraceWriter appends trace records to a file using the journal
// discipline from internal/service/persist.go: every record is one
// complete JSON line issued as a single write(2), so a crash can only
// tear the final line — which ReadTrace tolerates.
type TraceWriter struct {
	mu    sync.Mutex
	f     *os.File
	seq   int64
	start time.Time
}

// NewTraceWriter opens (truncating) a trace file at path.
func NewTraceWriter(path string) (*TraceWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("workload: open trace: %w", err)
	}
	return &TraceWriter{f: f, start: time.Now()}, nil
}

// Append records one accepted request. Seq and TimeUS (µs since the
// writer opened) are stamped here, under the lock, so the trace's
// sequence numbers reflect the service's accept order.
func (w *TraceWriter) Append(kind, client, slo, program string) error {
	if slo == "" {
		slo = "default"
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	rec := Record{
		V:       TraceVersion,
		Seq:     w.seq,
		TimeUS:  time.Since(w.start).Microseconds(),
		Kind:    kind,
		Client:  client,
		SLO:     slo,
		Program: program,
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("workload: trace encode: %w", err)
	}
	line = append(line, '\n')
	if _, err := w.f.Write(line); err != nil {
		return fmt.Errorf("workload: trace write: %w", err)
	}
	w.seq++
	return nil
}

// Count returns the number of records appended so far.
func (w *TraceWriter) Count() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Close flushes and closes the trace file.
func (w *TraceWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// ReadTrace decodes a trace stream. A torn final line (no trailing
// newline, or invalid JSON) is skipped — the crash-tolerance contract —
// but an invalid line in the middle of the stream is corruption and an
// error, as is any record with the wrong schema version or an empty
// program/kind.
func ReadTrace(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	var recs []Record
	lineNo := 0
	for {
		line, err := br.ReadBytes('\n')
		atEOF := err == io.EOF
		if err != nil && !atEOF {
			return nil, fmt.Errorf("workload: read trace: %w", err)
		}
		lineNo++
		torn := atEOF && len(line) > 0 // no trailing newline: candidate torn tail
		if len(bytes.TrimSpace(line)) > 0 {
			var rec Record
			if jerr := json.Unmarshal(line, &rec); jerr != nil {
				if torn {
					return recs, nil
				}
				return nil, fmt.Errorf("workload: trace line %d: %w", lineNo, jerr)
			}
			if rec.V != TraceVersion {
				return nil, fmt.Errorf("workload: trace line %d: version %d unsupported (this build reads v%d)",
					lineNo, rec.V, TraceVersion)
			}
			if rec.Program == "" || rec.Kind == "" {
				return nil, fmt.Errorf("workload: trace line %d: missing program or kind", lineNo)
			}
			recs = append(recs, rec)
		}
		if atEOF {
			return recs, nil
		}
	}
}

// ReadTraceFile reads and decodes a trace file.
func ReadTraceFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	recs, err := ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", path, err)
	}
	return recs, nil
}

// Events converts trace records into the event stream the load
// generator and exp.WorkloadSweep consume, re-sequencing from 0 so a
// trace slice replays cleanly.
func Events(recs []Record) []Event {
	evs := make([]Event, len(recs))
	for i, r := range recs {
		slo := r.SLO
		if slo == "" {
			slo = "default"
		}
		evs[i] = Event{
			Seq:     int64(i),
			TimeUS:  r.TimeUS,
			Client:  r.Client,
			SLO:     slo,
			Kind:    r.Kind,
			Program: r.Program,
		}
	}
	return evs
}
