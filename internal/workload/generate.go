package workload

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"
)

// clientSeed derives the per-client RNG seed: the spec seed folded with
// an FNV-1a hash of the client ID. Each client owns an independent
// stream, so the expansion partitions per client — the worker count can
// only change which goroutine computes a stream, never its contents.
func clientSeed(specSeed int64, id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return specSeed ^ int64(h.Sum64())
}

// mixSeedSalt separates the mix-choice RNG from the arrival-time RNG so
// adding a mix entry cannot perturb arrival times (and vice versa).
const mixSeedSalt = 0x6d69785f73616c74 // "mix_salt"

// window is one constant-rate stretch of a client's arrival process:
// Poisson arrivals at rate req/s over [startS, endS).
type window struct {
	startS, endS float64
	rate         float64
}

// windows flattens the arrival process over [0, durS) into
// constant-rate windows. Onoff scales the on-rate so the long-run
// average matches the client's nominal rate.
func (a *Arrival) windows(rate, durS float64) []window {
	switch a.Process {
	case ProcessOnOff:
		onRate := rate * (a.OnS + a.OffS) / a.OnS
		var ws []window
		for t := 0.0; t < durS; t += a.OnS + a.OffS {
			end := t + a.OnS
			if end > durS {
				end = durS
			}
			ws = append(ws, window{t, end, onRate})
		}
		return ws
	case ProcessDiurnal:
		var ws []window
		t, i := 0.0, 0
		for t < durS {
			p := a.Periods[i%len(a.Periods)]
			end := t + p.DurS
			if end > durS {
				end = durS
			}
			if p.RateMult > 0 {
				ws = append(ws, window{t, end, rate * p.RateMult})
			}
			t = end
			i++
		}
		return ws
	default: // ProcessPoisson
		return []window{{0, durS, rate}}
	}
}

// phaseMix returns the mix active at time tS for the client.
func (c *Client) phaseMix(tS float64) []MixEntry {
	if len(c.Phases) == 0 {
		return c.Mix
	}
	mix := c.Phases[0].Mix
	for _, ph := range c.Phases {
		if ph.StartS > tS {
			break
		}
		mix = ph.Mix
	}
	return mix
}

// pickMix draws one weighted entry from mix using r.
func pickMix(mix []MixEntry, r *rand.Rand) MixEntry {
	var total float64
	for _, m := range mix {
		total += m.Weight
	}
	x := r.Float64() * total
	for _, m := range mix {
		x -= m.Weight
		if x < 0 {
			return m
		}
	}
	return mix[len(mix)-1] // float round-off
}

// clientEvents expands one client's full sub-stream (Seq unassigned).
// Two independent RNGs: timeRNG drives arrival times, mixRNG drives
// mix choices.
func (s *Spec) clientEvents(c *Client) []Event {
	timeRNG := rand.New(rand.NewSource(clientSeed(s.seed(), c.ID)))
	mixRNG := rand.New(rand.NewSource(clientSeed(s.seed()^mixSeedSalt, c.ID)))
	slo := c.SLOClass
	if slo == "" {
		slo = "default"
	}
	rate := s.RateRPS * c.RateFraction
	limit := s.maxEvents()
	var evs []Event
	for _, w := range c.Arrival.windows(rate, s.DurationS) {
		t := w.startS
		for {
			t += timeRNG.ExpFloat64() / w.rate
			if t >= w.endS || int64(len(evs)) >= limit {
				break
			}
			m := pickMix(c.phaseMix(t), mixRNG)
			evs = append(evs, Event{
				TimeUS:  int64(t * 1e6),
				Client:  c.ID,
				SLO:     slo,
				Kind:    m.Kind,
				Program: m.Program,
			})
		}
	}
	return evs
}

// Generate expands a validated spec into its totally-ordered event
// stream. The order is (TimeUS, client index, intra-client index) and
// Seq is the position in that order — a full total order, so replays
// issue requests in exactly this sequence.
func (s *Spec) Generate() ([]Event, error) {
	return s.GenerateWorkers(1)
}

// GenerateWorkers is Generate with an explicit worker count for the
// per-client expansion fan-out. The result is bit-identical for every
// workers value ≥ 1 — pinned by test — because each client's stream is
// a pure function of (spec seed, client ID) and the merge key is total.
func (s *Spec) GenerateWorkers(workers int) ([]Event, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}
	perClient := make([][]Event, len(s.Clients))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range s.Clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			perClient[i] = s.clientEvents(&s.Clients[i])
			<-sem
		}(i)
	}
	wg.Wait()

	type tagged struct {
		ev            Event
		client, intra int
	}
	var n int64
	for _, evs := range perClient {
		n += int64(len(evs))
	}
	if n > s.maxEvents() {
		// Validated specs stay under the cap in expectation; a pathological
		// draw can still exceed it, so truncate after the merge below.
		n = s.maxEvents()
	}
	all := make([]tagged, 0, n)
	for ci, evs := range perClient {
		for ii, ev := range evs {
			all = append(all, tagged{ev, ci, ii})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].ev.TimeUS != all[b].ev.TimeUS {
			return all[a].ev.TimeUS < all[b].ev.TimeUS
		}
		if all[a].client != all[b].client {
			return all[a].client < all[b].client
		}
		return all[a].intra < all[b].intra
	})
	if int64(len(all)) > n {
		all = all[:n]
	}
	out := make([]Event, len(all))
	for i, t := range all {
		out[i] = t.ev
		out[i].Seq = int64(i)
	}
	return out, nil
}

// EncodeEvents renders an event stream as deterministic JSONL — one
// canonical line per event. Tests compare expansions byte for byte with
// it; it is also the -dump format.
func EncodeEvents(evs []Event) []byte {
	var b strings.Builder
	for _, e := range evs {
		fmt.Fprintf(&b, `{"seq":%d,"t_us":%d,"client":%q,"slo":%q,"kind":%q,"program":%q}`+"\n",
			e.Seq, e.TimeUS, e.Client, e.SLO, e.Kind, e.Program)
	}
	return []byte(b.String())
}

// ClassCounts tallies events per SLO class — the invariant the smoke
// script and the replay tests compare across record/replay runs.
func ClassCounts(evs []Event) map[string]int64 {
	m := map[string]int64{}
	for _, e := range evs {
		m[e.SLO]++
	}
	return m
}

// KindCounts tallies events per request kind.
func KindCounts(evs []Event) map[string]int64 {
	m := map[string]int64{}
	for _, e := range evs {
		m[e.Kind]++
	}
	return m
}

// Programs returns the distinct program names in evs, sorted.
func Programs(evs []Event) []string {
	seen := map[string]bool{}
	for _, e := range evs {
		seen[e.Program] = true
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
