package workload

import "testing"

// FuzzParseSpec: the spec parser and validator must never panic on
// arbitrary input — they either return a spec or an error. The seed
// corpus covers the grammar's shapes; `go test -fuzz=FuzzParseSpec
// ./internal/workload` explores from there.
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"version":1,"duration_s":1,"rate_rps":10,"clients":[{"id":"a","rate_fraction":1,"arrival":{"process":"poisson"},"mix":[{"program":"swim","kind":"offsets","weight":1}]}]}`))
	f.Add([]byte(`{"version":1,"duration_s":2,"rate_rps":5,"clients":[{"id":"b","rate_fraction":1,"slo_class":"gold","arrival":{"process":"onoff","on_s":0.5,"off_s":0.5},"mix":[{"program":"bt","kind":"compile","weight":2}]}]}`))
	f.Add([]byte(`{"version":1,"duration_s":3,"rate_rps":5,"clients":[{"id":"c","rate_fraction":1,"arrival":{"process":"diurnal","periods":[{"dur_s":1,"rate_mult":2},{"dur_s":1,"rate_mult":0}]},"phases":[{"start_s":0,"mix":[{"program":"sp","kind":"simulate","weight":1}]}]}]}`))
	f.Add([]byte(`{"version":-1,"duration_s":-1e308,"rate_rps":1e308,"clients":[{"id":"","rate_fraction":0}]}`))
	f.Add([]byte(`{"version":1,"duration_s":1,"rate_rps":1,"max_events":-9223372036854775808,"clients":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return
		}
		// Validate must classify without panicking; if it accepts, the
		// spec must expand without panicking too.
		if err := s.Validate(); err != nil {
			return
		}
		if _, err := s.Generate(); err != nil {
			t.Fatalf("validated spec failed to generate: %v", err)
		}
	})
}
