package workload

import (
	"path/filepath"
	"strings"
	"testing"
)

// validSpec returns a spec that passes Validate; tests mutate one field
// at a time to pin each rejection.
func validSpec() *Spec {
	return &Spec{
		Version:   SpecVersion,
		Name:      "test",
		Seed:      7,
		DurationS: 2,
		RateRPS:   100,
		Clients: []Client{
			{
				ID:           "batch",
				RateFraction: 0.75,
				SLOClass:     "batch",
				Arrival:      Arrival{Process: ProcessPoisson},
				Mix: []MixEntry{
					{Program: "swim", Kind: KindOffsets, Weight: 3},
					{Program: "mgrid", Kind: KindSimulate, Weight: 1},
				},
			},
			{
				ID:           "interactive",
				RateFraction: 0.25,
				Arrival:      Arrival{Process: ProcessOnOff, OnS: 0.5, OffS: 0.5},
				Mix:          []MixEntry{{Program: "bt", Kind: KindCompile, Weight: 1}},
			},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestValidateRejects is the rejection table: every malformed variant
// must fail with a message naming the problem.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantSub string
	}{
		{"wrong version", func(s *Spec) { s.Version = 2 }, "version 2 unsupported"},
		{"zero version", func(s *Spec) { s.Version = 0 }, "version 0 unsupported"},
		{"zero duration", func(s *Spec) { s.DurationS = 0 }, "duration_s"},
		{"negative duration", func(s *Spec) { s.DurationS = -1 }, "duration_s"},
		{"zero rate", func(s *Spec) { s.RateRPS = 0 }, "rate_rps"},
		{"negative max events", func(s *Spec) { s.MaxEvents = -1 }, "max_events"},
		{"volume over cap", func(s *Spec) { s.RateRPS = 1000; s.MaxEvents = 100 }, "exceeds max_events"},
		{"no clients", func(s *Spec) { s.Clients = nil }, "at least one client"},
		{"empty client id", func(s *Spec) { s.Clients[0].ID = "" }, "id"},
		{"bad client id charset", func(s *Spec) { s.Clients[0].ID = "Bad Client!" }, "a-z0-9_-"},
		{"overlong client id", func(s *Spec) { s.Clients[0].ID = strings.Repeat("x", 33) }, "a-z0-9_-"},
		{"duplicate client id", func(s *Spec) { s.Clients[1].ID = "batch" }, "duplicate client"},
		{"zero fraction", func(s *Spec) { s.Clients[0].RateFraction = 0 }, "rate_fraction"},
		{"fractions do not sum", func(s *Spec) { s.Clients[0].RateFraction = 0.5 }, "sum to"},
		{"bad slo charset", func(s *Spec) { s.Clients[0].SLOClass = "Gold Tier" }, "slo_class"},
		{"missing arrival", func(s *Spec) { s.Clients[0].Arrival = Arrival{} }, "arrival process not set"},
		{"unknown arrival", func(s *Spec) { s.Clients[0].Arrival.Process = "weibull" }, "unknown arrival process"},
		{"poisson with on_s", func(s *Spec) { s.Clients[0].Arrival.OnS = 1 }, "poisson arrival takes no"},
		{"onoff without off_s", func(s *Spec) { s.Clients[1].Arrival.OffS = 0 }, "onoff arrival needs"},
		{"onoff with periods", func(s *Spec) {
			s.Clients[1].Arrival.Periods = []Period{{DurS: 1, RateMult: 1}}
		}, "onoff arrival takes no periods"},
		{"diurnal without periods", func(s *Spec) {
			s.Clients[0].Arrival = Arrival{Process: ProcessDiurnal}
		}, "needs at least one period"},
		{"diurnal zero-length period", func(s *Spec) {
			s.Clients[0].Arrival = Arrival{Process: ProcessDiurnal, Periods: []Period{{DurS: 0, RateMult: 1}}}
		}, "dur_s"},
		{"diurnal negative mult", func(s *Spec) {
			s.Clients[0].Arrival = Arrival{Process: ProcessDiurnal, Periods: []Period{{DurS: 1, RateMult: -1}}}
		}, "rate_mult"},
		{"diurnal all-zero mults", func(s *Spec) {
			s.Clients[0].Arrival = Arrival{Process: ProcessDiurnal, Periods: []Period{{DurS: 1, RateMult: 0}}}
		}, "rate_mult > 0"},
		{"no mix", func(s *Spec) { s.Clients[0].Mix = nil }, "exactly one of mix and phases"},
		{"both mix and phases", func(s *Spec) {
			s.Clients[0].Phases = []Phase{{StartS: 0, Mix: s.Clients[0].Mix}}
		}, "exactly one of mix and phases"},
		{"empty mix", func(s *Spec) { s.Clients[0].Mix = []MixEntry{} }, "exactly one of mix and phases"},
		{"unknown program", func(s *Spec) { s.Clients[0].Mix[0].Program = "nosuch" }, "unknown program"},
		{"unknown kind", func(s *Spec) { s.Clients[0].Mix[0].Kind = "delete" }, "unknown kind"},
		{"zero weight", func(s *Spec) { s.Clients[0].Mix[0].Weight = 0 }, "weight"},
		{"first phase not at zero", func(s *Spec) {
			mix := s.Clients[0].Mix
			s.Clients[0].Mix = nil
			s.Clients[0].Phases = []Phase{{StartS: 1, Mix: mix}}
		}, "first phase must start at 0"},
		{"phases out of order", func(s *Spec) {
			mix := s.Clients[0].Mix
			s.Clients[0].Mix = nil
			s.Clients[0].Phases = []Phase{{StartS: 0, Mix: mix}, {StartS: 0, Mix: mix}}
		}, "not after previous"},
		{"phase with empty mix", func(s *Spec) {
			mix := s.Clients[0].Mix
			s.Clients[0].Mix = nil
			s.Clients[0].Phases = []Phase{{StartS: 0, Mix: mix}, {StartS: 1, Mix: nil}}
		}, "mix must not be empty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate accepted a spec with %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestParseSpecStrict(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"version":1,"duration_s":1,"rate_rps":1,"clients":[],"typo_field":3}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseSpec([]byte(`{"version":1} {"version":1}`)); err == nil {
		t.Fatal("trailing document accepted")
	}
	if _, err := ParseSpec([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
	s, err := ParseSpec([]byte(`{"version":1,"duration_s":1,"rate_rps":1,"clients":[]}`))
	if err != nil {
		t.Fatalf("minimal spec rejected: %v", err)
	}
	if s.Version != 1 || s.DurationS != 1 {
		t.Fatalf("parsed fields wrong: %+v", s)
	}
}

func TestSingleClientSpec(t *testing.T) {
	s := SingleClientSpec("swim")
	if err := s.Validate(); err != nil {
		t.Fatalf("preset spec invalid: %v", err)
	}
	if err := SingleClientSpec("nosuch").Validate(); err == nil {
		t.Fatal("preset spec with unknown program validated")
	}
	evs, err := s.Generate()
	if err != nil {
		t.Fatalf("preset generate: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("preset spec expanded to zero events")
	}
	for _, e := range evs {
		if e.Program != "swim" || e.Kind != KindOffsets || e.SLO != "default" {
			t.Fatalf("preset event wrong: %+v", e)
		}
	}
}

// TestExampleSpecs keeps the shipped example specs loadable: each must
// parse, validate, and expand to a non-trivial stream.
func TestExampleSpecs(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "specs", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("found %d example specs, want ≥ 3", len(paths))
	}
	for _, path := range paths {
		spec, err := LoadSpecFile(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		evs, err := spec.Generate()
		if err != nil {
			t.Errorf("%s: generate: %v", path, err)
			continue
		}
		if len(evs) < 10 {
			t.Errorf("%s expanded to only %d events", path, len(evs))
		}
	}
}
