package workload

import (
	"bytes"
	"math"
	"testing"
)

// driftSpec exercises every arrival process plus a phased mix shift.
func driftSpec() *Spec {
	return &Spec{
		Version:   SpecVersion,
		Name:      "drift",
		Seed:      42,
		DurationS: 4,
		RateRPS:   200,
		Clients: []Client{
			{
				ID:           "steady",
				RateFraction: 0.5,
				SLOClass:     "interactive",
				Arrival:      Arrival{Process: ProcessPoisson},
				Phases: []Phase{
					{StartS: 0, Mix: []MixEntry{{Program: "swim", Kind: KindOffsets, Weight: 1}}},
					{StartS: 2, Mix: []MixEntry{{Program: "mgrid", Kind: KindOffsets, Weight: 1}}},
				},
			},
			{
				ID:           "bursty",
				RateFraction: 0.3,
				SLOClass:     "batch",
				Arrival:      Arrival{Process: ProcessOnOff, OnS: 0.5, OffS: 1.0},
				Mix:          []MixEntry{{Program: "bt", Kind: KindSimulate, Weight: 1}},
			},
			{
				ID:           "cyclic",
				RateFraction: 0.2,
				Arrival: Arrival{Process: ProcessDiurnal, Periods: []Period{
					{DurS: 1, RateMult: 2}, {DurS: 1, RateMult: 0.5},
				}},
				Mix: []MixEntry{
					{Program: "applu", Kind: KindCompile, Weight: 1},
					{Program: "sp", Kind: KindOffsets, Weight: 2},
				},
			},
		},
	}
}

// TestGenerateDeterministicAcrossWorkers pins the acceptance criterion:
// a fixed-seed expansion is byte-identical at any worker count.
func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	s := driftSpec()
	base, err := s.GenerateWorkers(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) == 0 {
		t.Fatal("spec expanded to zero events")
	}
	want := EncodeEvents(base)
	for _, workers := range []int{2, 4, 8} {
		evs, err := s.GenerateWorkers(workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := EncodeEvents(evs); !bytes.Equal(got, want) {
			t.Fatalf("expansion at workers=%d differs from workers=1", workers)
		}
	}
	// And fully repeatable: a second expansion matches the first.
	again, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeEvents(again), want) {
		t.Fatal("repeat expansion differs")
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	a := driftSpec()
	b := driftSpec()
	b.Seed = 43
	evA, _ := a.Generate()
	evB, _ := b.Generate()
	if bytes.Equal(EncodeEvents(evA), EncodeEvents(evB)) {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestGenerateOrderAndSeq: events come out in nondecreasing time order
// with dense sequence numbers.
func TestGenerateOrderAndSeq(t *testing.T) {
	evs, err := driftSpec().Generate()
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range evs {
		if e.Seq != int64(i) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if i > 0 && e.TimeUS < evs[i-1].TimeUS {
			t.Fatalf("event %d time %d before predecessor %d", i, e.TimeUS, evs[i-1].TimeUS)
		}
		if e.TimeUS < 0 || e.TimeUS >= int64(4e6) {
			t.Fatalf("event %d time %d outside run window", i, e.TimeUS)
		}
	}
}

// TestGenerateRates: each client's event volume should approximate its
// rate share (the draw is deterministic, so this cannot flake — the
// bounds just document that the processes hit their nominal rates).
func TestGenerateRates(t *testing.T) {
	s := driftSpec()
	s.DurationS = 20
	s.RateRPS = 500
	evs, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	byClient := map[string]float64{}
	for _, e := range evs {
		byClient[e.Client]++
	}
	total := s.DurationS * s.RateRPS
	for _, c := range s.Clients {
		want := total * c.RateFraction
		// The diurnal process scales the rate by rate_mult directly (no
		// normalization), so its long-run average is rate × the
		// duration-weighted mean multiplier.
		if c.Arrival.Process == ProcessDiurnal {
			var durSum, weighted float64
			for _, p := range c.Arrival.Periods {
				durSum += p.DurS
				weighted += p.DurS * p.RateMult
			}
			want *= weighted / durSum
		}
		got := byClient[c.ID]
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("client %s: %v events, want ≈%v", c.ID, got, want)
		}
	}
}

// TestGenerateOnOffGaps: the bursty client must emit nothing during off
// windows.
func TestGenerateOnOffGaps(t *testing.T) {
	evs, err := driftSpec().Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evs {
		if e.Client != "bursty" {
			continue
		}
		// Cycle is 1.5 s: on [0, 0.5), off [0.5, 1.5).
		phase := math.Mod(float64(e.TimeUS)/1e6, 1.5)
		if phase >= 0.5 {
			t.Fatalf("bursty event at t=%dµs falls in an off window", e.TimeUS)
		}
	}
}

// TestGeneratePhaseDrift: the steady client's program must switch from
// swim to mgrid at the 2 s phase boundary.
func TestGeneratePhaseDrift(t *testing.T) {
	evs, err := driftSpec().Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evs {
		if e.Client != "steady" {
			continue
		}
		want := "swim"
		if e.TimeUS >= int64(2e6) {
			want = "mgrid"
		}
		if e.Program != want {
			t.Fatalf("steady event at t=%dµs runs %s, want %s", e.TimeUS, e.Program, want)
		}
	}
}

func TestGenerateDefaultsSLO(t *testing.T) {
	evs, err := driftSpec().Generate()
	if err != nil {
		t.Fatal(err)
	}
	counts := ClassCounts(evs)
	for _, class := range []string{"interactive", "batch", "default"} {
		if counts[class] == 0 {
			t.Errorf("no events in class %q: %v", class, counts)
		}
	}
}

func TestGenerateRejectsInvalid(t *testing.T) {
	s := driftSpec()
	s.Version = 99
	if _, err := s.Generate(); err == nil {
		t.Fatal("Generate accepted an invalid spec")
	}
}

func TestGenerateMaxEventsCap(t *testing.T) {
	s := driftSpec()
	s.MaxEvents = 50
	s.DurationS = 0.05 // keep expected volume under the cap so Validate passes
	evs, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(evs)) > 50 {
		t.Fatalf("cap 50 exceeded: %d events", len(evs))
	}
}
