package sim

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"time"

	"flopt/internal/obs"
	"flopt/internal/storage/cache"
	"flopt/internal/trace"
)

// This file implements the node-sharded epoch engine: one simulation
// executed across a worker pool, byte-identical to the serial scheduler
// at any worker count.
//
// The serial engine is exactly "serve block requests in strictly
// increasing packed (clock, thread) key order" — root batching is an
// equivalence-preserving optimization of that order. Every request walks
// the same station sequence: its thread's I/O-node cache, then (on a
// miss) its block's storage-node cache, disk queue and stream table.
// State is only shared within a station, so the serial outcome is fully
// determined by giving each station its operations in global key order;
// two requests on different nodes may otherwise run in any order.
//
// The epoch scheduler exploits the guaranteed minimum per-request latency
//
//	epoch = 1000·(NetCIUS + CacheSvcUS) + CPUPerElemNS·minElems
//
// (every access charges at least the client→I/O round trip, one cache
// service and the CPU cost of its elements): a request issued at time c
// completes no earlier than c+epoch, so once the earliest pending issue
// time is T, the set of requests issued in [T, T+epoch) is already fully
// known — at most one per thread, all sitting in the run heap. Each epoch
// therefore: (1) pops that set in key order, resolving per-request
// routing — including fault failover, which depends only on the issue
// time; (2) runs the I/O-cache stage of all requests in parallel, each
// worker owning disjoint I/O nodes and applying its per-node request list
// in key order; (3) runs the storage stage the same way over disjoint
// storage nodes; (4) merges serially in key order: advancing thread
// clocks, re-inserting heap keys, replaying buffered observer traffic and
// running the eviction-storm sampler. Per-station operation order thus
// equals the serial engine's everywhere, which makes every report field —
// and the metrics snapshot — byte-identical.
//
// Two features break the "storage stage touches one node" invariant:
// readahead (prefetches land on other nodes' caches and disks) and fault
// injection (the shared transient-error RNG must draw in global key
// order, and reconstruction reads a replica disk). In those modes the
// storage stage runs on the merge goroutine — still epoch-structured and
// key-ordered, so still byte-identical — while the I/O stage keeps its
// parallelism. This is where the epoch-barrier design earns its keep: the
// degraded path crosses node boundaries, and correctness comes from the
// barrier order, not from node ownership.
//
// Shard diagnostics (worker count, epochs, imbalance, barrier wait) are
// published as sim_shard_* gauges in the metrics snapshot. They are the
// one intentional difference against a serial run's snapshot — execution
// telemetry, not simulation output — and the barrier-wait gauge is wall
// clock, hence nondeterministic.

// shardStats collects the sharded engine's diagnostics for the metrics
// snapshot.
type shardStats struct {
	shards      int
	epochs      int64
	opsByWorker []int64
	serialOps   int64
	// barrierWaitNS is the wall-clock time the merge goroutine spent
	// waiting on phase barriers (the only nondeterministic metric).
	barrierWaitNS int64
}

// publish writes the diagnostics as sim_shard_* gauges. The prefix marks
// them as execution telemetry excluded from the byte-identity contract.
func (s *shardStats) publish(reg *obs.Registry) {
	reg.Gauge("sim_shard_workers").Set(float64(s.shards))
	reg.Gauge("sim_shard_epochs").Set(float64(s.epochs))
	reg.Gauge("sim_shard_serial_ops").Set(float64(s.serialOps))
	reg.Gauge("sim_shard_barrier_wait_us").Set(float64(s.barrierWaitNS) / 1000)
	var max, total int64
	for _, n := range s.opsByWorker {
		total += n
		if n > max {
			max = n
		}
	}
	imbalance := 1.0
	if total > 0 {
		imbalance = float64(max) * float64(len(s.opsByWorker)) / float64(total)
	}
	reg.Gauge("sim_shard_imbalance").Set(imbalance)
}

// obsItem is one buffered observer call, recorded by a phase worker and
// replayed at merge time in global key order.
type obsItem struct {
	kind int8 // obsItemDisk, obsItemRetry, obsItemEvent
	seq  bool
	node int32
	ns   int64
	ev   obs.Event
}

const (
	obsItemDisk int8 = iota
	obsItemRetry
	obsItemEvent
)

// shardReq is one in-flight request of the current epoch; reqs[t] is
// thread t's slot (an epoch holds at most one request per thread).
type shardReq struct {
	t     int32
	file  int32
	elems int32
	io    int32
	st    int32 // effective storage node, after any failover
	down  bool  // the block's owning node was unreachable at issue time
	block int64
	now   int64 // issue time (ns)
	lat   int64 // accumulated latency (ns)
	stage cache.StageIO
	level cache.HitLevel
	// evDelta counts the cache evictions this request performed across
	// both stages (storm-detector replay).
	evDelta int64
	// rec buffers observer traffic (disk service times, retry waits,
	// degraded-mode events) for key-ordered replay at merge.
	rec []obsItem
}

// shardedRun is the per-run state of the epoch engine.
type shardedRun struct {
	m       *Machine
	ctx     context.Context
	traces  []*trace.NestTrace
	smgr    cache.StagedManager
	workers int
	// serialB: the storage stage runs on the merge goroutine because it
	// crosses node boundaries (fault injection or readahead enabled).
	serialB bool

	threads  int
	idBits   uint
	idMask   int64
	maxClock int64
	baseNS   int64 // per-access latency floor excluding the CPU charge

	reqs  []shardReq
	batch []int32   // thread ids of the current epoch, in key order
	perIO [][]int32 // per-I/O-node request lists, in key order
	perST [][]int32 // per-storage-node request lists, in key order

	// cur[s] is the request a phase-B worker is serving on storage node s
	// (the disk service hook's recorder target); serialCur replaces it
	// when the storage stage is serialized, where reconstruction and
	// readahead may touch any node's disk.
	cur       []*shardReq
	serialCur *shardReq

	// evTotal mirrors the hierarchy-wide eviction count (IOStats +
	// StorageStats) for the storm detector.
	evTotal int64

	stats *shardStats
	pool  *shardPool
}

// newShardedRun decides whether this run executes on the epoch engine and
// builds its state; nil selects the serial scheduler. Ineligible: a
// worker count ≤ 1 after capping by node, thread and CPU counts (on a
// single-CPU host the barrier pool could only slow the run down, so
// any requested shard count degrades to serial), a policy without staged
// reads, or a degenerate config with a zero per-access latency floor (no
// lookahead window exists).
func (m *Machine) newShardedRun(ctx context.Context, traces []*trace.NestTrace) *shardedRun {
	if m.workers <= 1 {
		return nil
	}
	smgr, ok := m.mgr.(cache.StagedManager)
	if !ok {
		return nil
	}
	threads := m.cfg.Threads()
	if threads < 2 {
		return nil
	}
	w := m.workers
	if nodes := max(m.cfg.IONodes, m.cfg.StorageNodes); w > nodes {
		w = nodes
	}
	if w > threads {
		w = threads
	}
	if g := runtime.GOMAXPROCS(0); w > g {
		w = g
	}
	if w < 2 {
		return nil
	}
	base := 1000 * (m.cfg.NetCIUS + m.cfg.CacheSvcUS)
	for _, nt := range traces {
		empty := true
		for _, s := range nt.Streams {
			if len(s) > 0 {
				empty = false
				break
			}
		}
		// Every non-empty nest needs a positive epoch length, or the
		// epoch loop could not make progress.
		if !empty && base+m.cfg.CPUPerElemNS*int64(nt.MinElems()) <= 0 {
			return nil
		}
	}
	idBits := uint(bits.Len(uint(threads)))
	sr := &shardedRun{
		m: m, ctx: ctx, traces: traces, smgr: smgr, workers: w,
		serialB:  m.faults != nil || m.cfg.ReadaheadBlocks > 0,
		threads:  threads,
		idBits:   idBits,
		idMask:   int64(1)<<idBits - 1,
		maxClock: int64(1) << (62 - idBits),
		baseNS:   base,
		reqs:     make([]shardReq, threads),
		batch:    make([]int32, 0, threads),
		perIO:    make([][]int32, m.cfg.IONodes),
		perST:    make([][]int32, m.cfg.StorageNodes),
		cur:      make([]*shardReq, m.cfg.StorageNodes),
		stats:    &shardStats{shards: w, opsByWorker: make([]int64, w)},
	}
	for t := range sr.reqs {
		sr.reqs[t].t = int32(t)
	}
	return sr
}

// run executes the traces on the epoch engine. The structure mirrors the
// serial RunContext: same nest barriers, same heap, same events, same
// report assembly — only the order in which independent stations advance
// differs, which the epoch argument shows is unobservable.
func (sr *shardedRun) run() (*Report, error) {
	m := sr.m
	m.shardStats = sr.stats
	threads := sr.threads
	clock := make([]int64, threads)
	pos := make([]int, threads)
	sub := make([]int32, threads)
	keys := make([]int64, 0, threads)
	var accesses int64
	idBits, idMask, maxClock := sr.idBits, sr.idMask, sr.maxClock

	if m.obsOn {
		// Disk service hooks record into the current request's buffer for
		// key-ordered replay; SetObserver restores the serial hooks.
		sr.installHooks()
		defer m.SetObserver(m.userObs)
		sr.evTotal = m.mgr.IOStats().Evictions + m.mgr.StorageStats().Evictions
	}
	sr.pool = newShardPool(sr.workers)
	defer sr.pool.stop()

	if m.obsOn {
		m.obs.Event(obs.Event{Kind: obs.EvRunStart, Node: -1, Thread: -1, File: -1,
			Detail: fmt.Sprintf("nests=%d threads=%d policy=%s", len(sr.traces), threads, m.mgr.Name())})
	}
	for ni, nt := range sr.traces {
		if len(nt.Streams) != threads {
			return nil, fmt.Errorf("sim: nest %d trace has %d streams, platform has %d threads",
				ni, len(nt.Streams), threads)
		}
		var barrier int64
		for _, c := range clock {
			if c > barrier {
				barrier = c
			}
		}
		if m.obsOn {
			m.obs.Event(obs.Event{TimeUS: barrier / 1000, Kind: obs.EvNestStart,
				Node: -1, Thread: -1, File: -1, Detail: fmt.Sprintf("nest=%d", ni)})
		}
		if barrier >= maxClock {
			return nil, fmt.Errorf("sim: virtual clock %d ns overflows the scheduler key space", barrier)
		}
		// The per-nest epoch length uses the nest's own element floor —
		// positive for any nest with work (see newShardedRun).
		epochNS := sr.baseNS + m.cfg.CPUPerElemNS*int64(nt.MinElems())
		h := runHeap{keys: keys[:0]}
		for t := 0; t < threads; t++ {
			clock[t] = barrier
			pos[t] = 0
			sub[t] = 0
			if len(nt.Streams[t]) > 0 {
				h.keys = append(h.keys, barrier<<idBits|int64(t))
			}
		}
		h.init()
		for len(h.keys) > 0 {
			// Bounded-latency cancellation: one poll per epoch, so an
			// aborted job stops within one epoch of virtual time instead
			// of one ctxCheckEvery-sized access batch.
			if cerr := sr.ctx.Err(); cerr != nil {
				return nil, fmt.Errorf("sim: run aborted after %d accesses: %w", accesses, cerr)
			}
			sr.stats.epochs++

			// Collect the epoch [T, T+epoch): every pending request with
			// an issue time below the bound — at most one per thread, all
			// already in the heap by the lookahead argument.
			T := h.keys[0] >> idBits
			end := T + epochNS
			if end > maxClock {
				end = maxClock
			}
			limKey := end << idBits
			sr.batch = sr.batch[:0]
			for i := range sr.perIO {
				sr.perIO[i] = sr.perIO[i][:0]
			}
			if !sr.serialB {
				for i := range sr.perST {
					sr.perST[i] = sr.perST[i][:0]
				}
			}
			for len(h.keys) > 0 && h.keys[0] < limKey {
				key := h.keys[0]
				h.pop()
				t := int32(key & idMask)
				a := nt.Streams[t][pos[t]]
				r := &sr.reqs[t]
				r.now = key >> idBits
				r.file, r.block, r.elems = a.File, a.Block+int64(sub[t]), a.Elems
				r.io = int32(m.ioOf[t])
				st := m.striper.NodeOf(r.block)
				r.down = false
				if m.faults != nil && m.cfg.StorageNodes > 1 && m.faults.NodeDownAt(st, r.now) {
					r.down = true
					st = m.striper.ReplicaOf(r.block, 1)
				}
				r.st = int32(st)
				r.lat = m.cfg.CPUPerElemNS*int64(r.elems) + sr.baseNS
				r.evDelta = 0
				sr.batch = append(sr.batch, t)
				sr.perIO[r.io] = append(sr.perIO[r.io], t)
				if !sr.serialB {
					sr.perST[st] = append(sr.perST[st], t)
				}
			}

			// Phase A: the I/O-cache stage; workers own disjoint I/O nodes.
			sr.pool.run(sr.ioPhase)
			// Phase B: the storage stage; workers own disjoint storage
			// nodes, unless faults or readahead cross them.
			if sr.serialB {
				sr.serialStorage()
			} else {
				sr.pool.run(sr.stPhase)
			}

			// Merge in key order: clocks, heap, counters, observer replay.
			for _, t := range sr.batch {
				r := &sr.reqs[t]
				c := r.now + r.lat
				accesses++
				if m.obsOn {
					for i := range r.rec {
						it := &r.rec[i]
						switch it.kind {
						case obsItemDisk:
							m.obs.DiskService(int(it.node), it.ns, it.seq)
						case obsItemRetry:
							m.obs.RetryWait(int(it.node), it.ns)
						default:
							m.obs.Event(it.ev)
						}
					}
					r.rec = r.rec[:0]
					m.obs.BlockAccess(int(t), r.file, obs.Level(r.level), r.lat)
					sr.evTotal += r.evDelta
					if accesses&(evictionSampleEvery-1) == 0 {
						if d := sr.evTotal - m.lastEvictions; d >= evictionStormThreshold {
							m.obs.Event(obs.Event{TimeUS: c / 1000, Kind: obs.EvEvictionStorm,
								Node: -1, Thread: -1, File: -1,
								Detail: fmt.Sprintf("evictions=%d window=%d", d, evictionSampleEvery)})
						}
						m.lastEvictions = sr.evTotal
					}
				}
				if c >= maxClock {
					return nil, fmt.Errorf("sim: virtual clock %d ns overflows the scheduler key space", c)
				}
				s := sub[t] + 1
				p := pos[t]
				if s > nt.Streams[t][p].Run {
					s = 0
					p++
				}
				clock[t], pos[t], sub[t] = c, p, s
				if p < len(nt.Streams[t]) {
					h.push(c<<idBits | int64(t))
				}
			}
		}
	}
	sr.stats.barrierWaitNS = sr.pool.waitNS
	return m.buildReport(clock, accesses), nil
}

// ioPhase runs the I/O-cache stage of the current epoch for the I/O
// nodes owned by worker w, each node's requests in key order.
func (sr *shardedRun) ioPhase(w int) {
	for i := w; i < len(sr.perIO); i += sr.workers {
		for _, t := range sr.perIO[i] {
			r := &sr.reqs[t]
			r.stage = sr.smgr.ReadIO(int(r.io), int(r.st), cache.BlockID{File: r.file, Block: r.block})
			r.evDelta += r.stage.Evictions
			if r.stage.HitIO {
				r.level = cache.HitIO
			}
			sr.stats.opsByWorker[w]++
		}
	}
}

// stPhase runs the storage stage for the storage nodes owned by worker w
// (healthy, readahead-off mode: every touched station belongs to node s).
func (sr *shardedRun) stPhase(w int) {
	for s := w; s < len(sr.perST); s += sr.workers {
		for _, t := range sr.perST[s] {
			r := &sr.reqs[t]
			if r.stage.HitIO {
				continue
			}
			sr.cur[s] = r
			r.evDelta += sr.storageStage(r)
			sr.stats.opsByWorker[w]++
		}
	}
}

// serialStorage runs the storage stage of the whole epoch on the merge
// goroutine in key order — the fault/readahead mode, where a request may
// touch other nodes' disks and caches and the transient-error RNG must
// draw in global order. Observer calls made inside the stage (failover,
// timeout, reconstruct events, retry waits) are buffered per request.
func (sr *shardedRun) serialStorage() {
	m := sr.m
	var saved obs.Observer
	if m.obsOn {
		saved = m.obs
		m.obs = shardRecorder{sr}
	}
	for _, t := range sr.batch {
		r := &sr.reqs[t]
		if r.stage.HitIO {
			continue
		}
		sr.serialCur = r
		if m.obsOn {
			// The stats delta also captures prefetch-insert evictions,
			// which the stage result alone cannot see.
			before := m.mgr.StorageStats().Evictions
			sr.storageStage(r)
			r.evDelta += m.mgr.StorageStats().Evictions - before
		} else {
			sr.storageStage(r)
		}
		sr.stats.serialOps++
	}
	sr.serialCur = nil
	if m.obsOn {
		m.obs = saved
	}
}

// storageStage performs the storage half of one non-HitIO request —
// failover accounting, storage-cache lookup, device read, stream
// detection and readahead — mirroring serve/serveFaulty line for line.
// It returns the evictions performed by the ReadStorage call.
func (sr *shardedRun) storageStage(r *shardReq) int64 {
	m := sr.m
	st := int(r.st)
	if r.down {
		m.failedOver++
		r.lat += 1000 * m.cfg.NetISUS
		if m.obsOn {
			m.obs.Event(obs.Event{TimeUS: r.now / 1000, Kind: obs.EvFailover,
				Node: st, Thread: int(r.t), File: r.file})
		}
	}
	var ev int64
	hit := false
	if !r.stage.SkipStorage {
		res := sr.smgr.ReadStorage(st, cache.BlockID{File: r.file, Block: r.block}, r.stage)
		hit, ev = res.Hit, res.Evictions
	}
	if hit {
		r.level = cache.HitStorage
		r.lat += 1000 * (m.cfg.NetISUS + m.cfg.CacheSvcUS)
	} else {
		r.level = cache.HitDisk
		r.lat += 1000 * (m.cfg.NetISUS + m.cfg.CacheSvcUS)
		arrive := r.now + r.lat
		local := m.striper.LocalIndex(r.block)
		if m.faults != nil {
			r.lat += m.diskReadFaulty(arrive, st, r.file, r.block)
		} else {
			done := m.disks[st].Read(arrive, r.file, local)
			r.lat += done - arrive
		}
		tab := &m.streams[st]
		if tab.take(packStreamKey(r.file, local)) {
			m.readahead(r.now, r.file, r.block)
		}
		tab.insert(packStreamKey(r.file, local+1))
	}
	if r.stage.Demoted {
		r.lat += 1000 * m.cfg.NetISUS
	}
	return ev
}

// installHooks redirects each disk's service hook into the current
// request's observer buffer.
func (sr *shardedRun) installHooks() {
	for i, d := range sr.m.disks {
		node := i
		d.SetServiceHook(func(svc int64, seq bool) {
			r := sr.cur[node]
			if sr.serialB {
				r = sr.serialCur
			}
			r.rec = append(r.rec, obsItem{kind: obsItemDisk, node: int32(node), ns: svc, seq: seq})
		})
	}
}

// shardRecorder is the observer installed during a serialized storage
// phase: degraded-mode events and retry waits land in the current
// request's buffer for key-ordered replay at merge. BlockAccess and
// DiskService never arrive here (the former is only emitted at merge,
// the latter goes through the disk hooks).
type shardRecorder struct{ sr *shardedRun }

func (shardRecorder) BlockAccess(int, int32, obs.Level, int64) {}
func (shardRecorder) DiskService(int, int64, bool)             {}

func (r shardRecorder) RetryWait(node int, waitNS int64) {
	c := r.sr.serialCur
	c.rec = append(c.rec, obsItem{kind: obsItemRetry, node: int32(node), ns: waitNS})
}

func (r shardRecorder) Event(e obs.Event) {
	c := r.sr.serialCur
	c.rec = append(c.rec, obsItem{kind: obsItemEvent, ev: e})
}

// shardPool is a condvar-based phase-barrier worker pool. The merge
// goroutine publishes a job by bumping the generation counter under the
// mutex and broadcasting; workers run the job and count themselves done,
// the last one waking the merge goroutine. Parking (rather than
// spinning) keeps the pool well-behaved when GOMAXPROCS exceeds the
// physical core count and under the race detector's instrumentation;
// the mutex carries the happens-before edges between the job write, the
// workers' shard writes and the merge goroutine's reads.
type shardPool struct {
	workers int
	job     func(w int)
	mu      sync.Mutex
	cond    *sync.Cond
	gen     int
	done    int
	quit    bool
	wg      sync.WaitGroup
	// waitNS accumulates the merge goroutine's wall-clock wait per phase
	// (diagnostics only).
	waitNS int64
}

func newShardPool(n int) *shardPool {
	p := &shardPool{workers: n}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(n)
	for w := 0; w < n; w++ {
		go p.worker(w)
	}
	return p
}

func (p *shardPool) worker(w int) {
	defer p.wg.Done()
	last := 0
	for {
		p.mu.Lock()
		for p.gen == last {
			p.cond.Wait()
		}
		last = p.gen
		quit := p.quit
		job := p.job
		p.mu.Unlock()
		if quit {
			return
		}
		job(w)
		p.mu.Lock()
		p.done++
		if p.done == p.workers {
			p.cond.Broadcast()
		}
		p.mu.Unlock()
	}
}

// run executes job(w) on every worker and waits for all of them.
func (p *shardPool) run(job func(int)) {
	start := time.Now()
	p.mu.Lock()
	p.job = job
	p.done = 0
	p.gen++
	p.cond.Broadcast()
	for p.done < p.workers {
		p.cond.Wait()
	}
	p.mu.Unlock()
	p.waitNS += time.Since(start).Nanoseconds()
}

// stop releases the workers and waits for them to exit.
func (p *shardPool) stop() {
	p.mu.Lock()
	p.quit = true
	p.gen++
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}
