package sim

import (
	"flopt/internal/obs"
	"flopt/internal/storage/cache"
)

// serve routes one block request issued by thread t at the given virtual
// time (ns) and returns its latency in nanoseconds. Run entries are served
// block by block from the scheduler loop; striping sends consecutive
// blocks of a run to different storage nodes, so there is no cross-block
// cache transaction to batch below this level.
func (m *Machine) serve(now int64, t int, file int32, block int64, elems int32) int64 {
	if m.faults != nil {
		return m.serveFaulty(now, t, file, block, elems)
	}
	io := m.ioOf[t]
	st := m.striper.NodeOf(block)
	out := m.mgr.Read(io, st, cache.BlockID{File: file, Block: block})

	lat := m.cfg.CPUPerElemNS*int64(elems) + 1000*(m.cfg.NetCIUS+m.cfg.CacheSvcUS)
	switch out.Level {
	case cache.HitIO:
		// done
	case cache.HitStorage:
		lat += 1000 * (m.cfg.NetISUS + m.cfg.CacheSvcUS)
	case cache.HitDisk:
		lat += 1000 * (m.cfg.NetISUS + m.cfg.CacheSvcUS)
		arrive := now + lat
		local := m.striper.LocalIndex(block)
		done := m.disks[st].Read(arrive, file, local)
		lat += done - arrive
		// Server-side multi-stream detection: a demand read continuing
		// any in-flight sequential stream of this file on this node arms
		// readahead, as real per-flow readahead does.
		tab := &m.streams[st]
		if tab.take(packStreamKey(file, local)) {
			m.readahead(now, file, block)
		}
		tab.insert(packStreamKey(file, local+1))
	}
	if out.Demoted {
		lat += 1000 * m.cfg.NetISUS
	}
	if m.obsOn {
		m.obs.BlockAccess(t, file, obs.Level(out.Level), lat)
	}
	return lat
}

// packStreamKey packs one expected stream continuation (file, next local
// block index) into a single map key. The cache layer's packBlockID guard
// has already bounds-checked file and the global block index on this
// request, and the local index never exceeds the global one.
func packStreamKey(file int32, next int64) uint64 {
	return uint64(uint32(file))<<streamKeyFileShift | uint64(next)
}

const streamKeyFileShift = 40

// maxStreams bounds the per-node stream table (ample for one stream per
// thread per file).
const maxStreams = 4096

// streamTable is the per-storage-node stream detector: a set of expected
// continuations plus a FIFO insertion ring for bounded expiry. When the
// table is full the oldest live stream is dropped — replacing the old
// clear-the-whole-map expiry, which reallocated the map and forgot every
// in-flight stream at once. Matched (taken) streams leave tombstones in
// the ring that are skipped lazily and dropped on compaction.
type streamTable struct {
	set  map[uint64]struct{}
	fifo []uint64
	head int
}

// take removes key from the table, reporting whether it was present.
func (s *streamTable) take(key uint64) bool {
	if _, ok := s.set[key]; ok {
		delete(s.set, key)
		return true
	}
	return false
}

// insert adds key unless already tracked, expiring the oldest live stream
// once the table is at capacity.
func (s *streamTable) insert(key uint64) {
	if _, ok := s.set[key]; ok {
		return
	}
	if len(s.set) >= maxStreams {
		for {
			old := s.fifo[s.head]
			s.head++
			if _, live := s.set[old]; live {
				delete(s.set, old)
				break
			}
		}
	}
	if len(s.fifo)-s.head >= 2*maxStreams || (s.head > 0 && s.head >= len(s.fifo)/2) {
		s.compact()
	}
	s.set[key] = struct{}{}
	s.fifo = append(s.fifo, key)
}

// compact drops tombstones and the consumed ring prefix in place.
func (s *streamTable) compact() {
	live := s.fifo[:0]
	for _, k := range s.fifo[s.head:] {
		if _, ok := s.set[k]; ok {
			live = append(live, k)
		}
	}
	s.fifo = live
	s.head = 0
}

// reset empties the table, keeping the map and ring storage.
func (s *streamTable) reset() {
	clear(s.set)
	s.fifo = s.fifo[:0]
	s.head = 0
}

// readahead pulls the next sequential blocks of the file into the storage
// caches after a demand disk read (when enabled). Each prefetched block
// pays its transfer time on the disk that owns its stripe — delaying
// queued demand reads, which is the realistic cost of speculation — but
// adds nothing to the requester's latency. Under fault injection,
// unreachable nodes are skipped (nobody speculates into a dead node) and
// fail-slow scaling applies.
func (m *Machine) readahead(now int64, file int32, block int64) {
	if m.cfg.ReadaheadBlocks <= 0 {
		return
	}
	pf, ok := m.mgr.(cache.Prefetcher)
	if !ok {
		return // policy does not accept readahead fills (e.g. KARMA)
	}
	for r := 1; r <= m.cfg.ReadaheadBlocks; r++ {
		next := block + int64(r)
		if int(file) < len(m.fileBlocks) && next >= m.fileBlocks[file] {
			break // end of file
		}
		st := m.striper.NodeOf(next)
		if m.faults != nil && m.faults.NodeDownAt(st, now) {
			continue
		}
		blk := cache.BlockID{File: file, Block: next}
		if pf.PrefetchStorage(st, blk) {
			scale := 1.0
			if m.faults != nil {
				scale = m.faults.SlowFactorAt(st, now)
			}
			m.disks[st].ReadScaled(0, file, m.striper.LocalIndex(next), scale)
			m.prefetches++
		}
	}
}
