package sim

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"flopt/internal/obs"
	"flopt/internal/storage/cache"
	"flopt/internal/trace"
)

// runHeap is a concrete binary min-heap over the active threads, ordered
// by (virtual time, thread id). It replaces container/heap on the
// scheduler hot path: each element packs that pair into a single int64 —
// time in the high bits, id in the low idBits — so the strict total order
// becomes one integer comparison, with no interface dispatch and no
// indirection through the clock slice. Any valid heap under a strict total
// order yields the same root sequence, so scheduling is bit-identical to
// the previous container/heap implementation.
type runHeap struct {
	keys []int64
}

func (h *runHeap) down(i int) {
	n := len(h.keys)
	for {
		j := 2*i + 1
		if j >= n {
			return
		}
		if r := j + 1; r < n && h.keys[r] < h.keys[j] {
			j = r
		}
		if h.keys[j] >= h.keys[i] {
			return
		}
		h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
		i = j
	}
}

func (h *runHeap) init() {
	for i := len(h.keys)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

// fix restores the heap after the root's key increased (times only move
// forward, so sifting down is sufficient).
func (h *runHeap) fix() { h.down(0) }

func (h *runHeap) pop() {
	n := len(h.keys) - 1
	h.keys[0] = h.keys[n]
	h.keys = h.keys[:n]
	h.down(0)
}

// push inserts a new key, sifting it up to its heap position. The serial
// scheduler never pushes mid-nest (the root is updated in place); the
// sharded epoch scheduler re-inserts every merged thread through here.
func (h *runHeap) push(k int64) {
	h.keys = append(h.keys, k)
	i := len(h.keys) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.keys[p] <= h.keys[i] {
			break
		}
		h.keys[p], h.keys[i] = h.keys[i], h.keys[p]
		i = p
	}
}

// limit returns the packed (time, id) bound the root thread must stay
// within to keep its heap position: the smaller of its up-to-two children.
// With no children the bound is unreachable and the root runs its stream
// to completion.
func (h *runHeap) limit() int64 {
	lim := int64(math.MaxInt64)
	if len(h.keys) > 1 {
		lim = h.keys[1]
		if len(h.keys) > 2 && h.keys[2] < lim {
			lim = h.keys[2]
		}
	}
	return lim
}

// Run executes the given nest traces in program order with a barrier
// between nests and returns the report. The machine's caches keep their
// contents across nests (and across Run calls; use Reset for a cold
// start). Internal clocks run in nanoseconds; the report converts to
// microseconds.
func (m *Machine) Run(traces []*trace.NestTrace) (*Report, error) {
	return m.RunContext(context.Background(), traces)
}

// Eviction-storm detection: every evictionSampleEvery accesses the run
// loop samples the hierarchy-wide eviction count; a window in which most
// accesses evicted a block (≥ the threshold) emits an EvEvictionStorm
// event — the thrashing signature of a working set far beyond capacity.
const (
	evictionSampleEvery    = 4096
	evictionStormThreshold = 3 * evictionSampleEvery / 4
)

// ctxCheckEvery paces context-cancellation polling in the inner loop (a
// power of two; the check is a mask test plus one predictable call). The
// sharded engine polls once per epoch instead, bounding abort latency by
// the epoch length rather than the access count.
const ctxCheckEvery = 8192

// RunContext is Run with cooperative cancellation: the inner loop polls
// ctx every ctxCheckEvery accesses and aborts with ctx's error, leaving
// the machine's caches and clocks mid-run (Reset before reuse).
//
// When the machine has intra-cell workers configured (SetWorkers > 1) and
// the run is eligible, the node-sharded epoch engine executes it instead;
// its reports are byte-identical to this serial loop (see sharded.go).
func (m *Machine) RunContext(ctx context.Context, traces []*trace.NestTrace) (*Report, error) {
	if sr := m.newShardedRun(ctx, traces); sr != nil {
		return sr.run()
	}
	m.shardStats = nil
	threads := m.cfg.Threads()
	clock := make([]int64, threads) // ns
	// pos/sub and the heap's id slice are reused across nests (hot-path
	// allocation trim: one allocation each per Run, not per nest). pos[t]
	// indexes thread t's stream entry, sub[t] the block within its run.
	pos := make([]int, threads)
	sub := make([]int32, threads)
	keys := make([]int64, 0, threads)
	var accesses int64

	// Heap keys pack (clock, thread) into one int64: clock in the high
	// bits, the thread id in the low idBits. The packing is order-preserving
	// while clocks stay below maxClock (2^57 ns ≈ 4.5 virtual years at 16
	// threads); the scheduler errors out rather than let a key wrap.
	idBits := uint(bits.Len(uint(threads)))
	idMask := int64(1)<<idBits - 1
	maxClock := int64(1) << (62 - idBits)

	if m.obsOn {
		m.obs.Event(obs.Event{Kind: obs.EvRunStart, Node: -1, Thread: -1, File: -1,
			Detail: fmt.Sprintf("nests=%d threads=%d policy=%s", len(traces), threads, m.mgr.Name())})
	}
	for ni, nt := range traces {
		if len(nt.Streams) != threads {
			return nil, fmt.Errorf("sim: nest %d trace has %d streams, platform has %d threads",
				ni, len(nt.Streams), threads)
		}
		// Barrier: all threads start the nest at the same time.
		var barrier int64
		for _, c := range clock {
			if c > barrier {
				barrier = c
			}
		}
		if m.obsOn {
			m.obs.Event(obs.Event{TimeUS: barrier / 1000, Kind: obs.EvNestStart,
				Node: -1, Thread: -1, File: -1, Detail: fmt.Sprintf("nest=%d", ni)})
		}
		if barrier >= maxClock {
			return nil, fmt.Errorf("sim: virtual clock %d ns overflows the scheduler key space", barrier)
		}
		h := runHeap{keys: keys[:0]}
		for t := 0; t < threads; t++ {
			clock[t] = barrier
			pos[t] = 0
			sub[t] = 0
			if len(nt.Streams[t]) > 0 {
				h.keys = append(h.keys, barrier<<idBits|int64(t))
			}
		}
		h.init()
		// Scheduler with root batching: the root thread keeps serving
		// blocks — walking run entries block by block — for as long as its
		// packed key stays at or below the smaller of its heap children,
		// which is exactly the condition under which a per-block heap fix
		// would have left it at the root. Interleaving, stats and clocks are
		// therefore identical to serving one block per heap operation.
		for len(h.keys) > 0 {
			t := int(h.keys[0] & idMask)
			lim := h.limit()
			stream := nt.Streams[t]
			p, s := pos[t], sub[t]
			c := clock[t]
			for {
				a := stream[p]
				c += m.serve(c, t, a.File, a.Block+int64(s), a.Elems)
				accesses++
				if accesses&(ctxCheckEvery-1) == 0 {
					if err := ctx.Err(); err != nil {
						return nil, fmt.Errorf("sim: run aborted after %d accesses: %w", accesses, err)
					}
				}
				if m.obsOn && accesses&(evictionSampleEvery-1) == 0 {
					m.sampleEvictions(c)
				}
				s++
				if s > a.Run {
					s = 0
					p++
					if p >= len(stream) {
						if c >= maxClock {
							return nil, fmt.Errorf("sim: virtual clock %d ns overflows the scheduler key space", c)
						}
						clock[t], pos[t], sub[t] = c, p, s
						h.pop()
						break
					}
				}
				if key := c<<idBits | int64(t); key > lim {
					if c >= maxClock {
						return nil, fmt.Errorf("sim: virtual clock %d ns overflows the scheduler key space", c)
					}
					clock[t], pos[t], sub[t] = c, p, s
					h.keys[0] = key
					h.fix()
					break
				}
			}
		}
	}
	return m.buildReport(clock, accesses), nil
}

// sampleEvictions runs the eviction-storm detector at virtual time nowNS.
func (m *Machine) sampleEvictions(nowNS int64) {
	ev := m.mgr.IOStats().Evictions + m.mgr.StorageStats().Evictions
	if d := ev - m.lastEvictions; d >= evictionStormThreshold {
		m.obs.Event(obs.Event{TimeUS: nowNS / 1000, Kind: obs.EvEvictionStorm,
			Node: -1, Thread: -1, File: -1,
			Detail: fmt.Sprintf("evictions=%d window=%d", d, evictionSampleEvery)})
	}
	m.lastEvictions = ev
}

// buildReport assembles the end-of-run report from the machine state and
// the final thread clocks (ns), emits the run-end event and snapshots
// metrics. Shared by the serial loop and the sharded epoch engine — both
// drive the machine into the same final state, so the report content is
// engine-independent.
func (m *Machine) buildReport(clock []int64, accesses int64) *Report {
	threadUS := make([]int64, len(clock))
	for t, c := range clock {
		threadUS[t] = c / 1000
	}
	rep := &Report{
		Config:       m.cfg,
		ThreadTimeUS: threadUS,
		IO:           m.mgr.IOStats(),
		Storage:      m.mgr.StorageStats(),
		Accesses:     accesses,
		PolicyName:   m.mgr.Name(),
	}
	for _, c := range threadUS {
		if c > rep.ExecTimeUS {
			rep.ExecTimeUS = c
		}
	}
	for _, d := range m.disks {
		rep.DiskReads += d.Reads()
		rep.DiskSeqReads += d.SeqReads()
		rep.DiskBusyUS += d.BusyNS() / 1000
	}
	if dl, ok := m.mgr.(*cache.DemoteLRU); ok {
		rep.Demotions = dl.Demotions()
	}
	rep.Prefetches = m.prefetches
	rep.Retries, rep.Timeouts = m.retries, m.timeouts
	rep.DegradedReads, rep.FailedOverBlocks = m.degradedReads, m.failedOver
	if m.obsOn {
		m.obs.Event(obs.Event{TimeUS: rep.ExecTimeUS, Kind: obs.EvRunEnd,
			Node: -1, Thread: -1, File: -1,
			Detail: fmt.Sprintf("accesses=%d disk_reads=%d", accesses, rep.DiskReads)})
	}
	if m.metrics != nil {
		m.finishMetrics(rep)
	}
	return rep
}
