package sim

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"flopt/internal/obs"
	"flopt/internal/storage/cache"
	"flopt/internal/trace"
)

// shardWork is the identity-test workload: two nests over two arrays with
// a column scan (cache-hostile, heavy disk traffic) followed by a row
// scan (sequential runs, stream-table and readahead traffic), so every
// station of the engine — both cache levels, the disks, the stream
// detectors — sees sustained load.
const shardWork = `
array A[64][64];
array B[64][64];
parallel(i) for i = 0 to 63 { for j = 0 to 63 { read A[j][i]; read B[i][j]; } }
parallel(j) for j = 0 to 63 { for i = 0 to 63 { read A[j][i]; } }
`

// forceMultiCPU lifts GOMAXPROCS to 4 for the duration of the test so
// the sharded engine engages even on single-CPU CI hosts (newShardedRun
// caps the worker count by GOMAXPROCS and falls back to serial below 2).
func forceMultiCPU(t *testing.T) {
	t.Helper()
	if old := runtime.GOMAXPROCS(0); old < 4 {
		runtime.GOMAXPROCS(4)
		t.Cleanup(func() { runtime.GOMAXPROCS(old) })
	}
}

// runShardCase simulates the traces cold on a fresh machine with the
// given shard count, mirroring the full flopt.Run wiring (file blocks,
// file names, KARMA hints, metrics).
func runShardCase(t *testing.T, cfg Config, ft *trace.FileTable, traces []*trace.NestTrace, workers int) *Report {
	t.Helper()
	var hints []cache.RangeHint
	if cfg.Policy == "karma" {
		hints = GenerateHints(cfg, ft, traces)
	}
	m, err := NewMachine(cfg, hints)
	if err != nil {
		t.Fatal(err)
	}
	fileBlocks := make([]int64, len(ft.Names))
	for f := range fileBlocks {
		fileBlocks[f] = ft.Blocks(int32(f), cfg.BlockElems)
	}
	m.SetFileBlocks(fileBlocks)
	m.SetFileNames(ft.Names)
	m.SetWorkers(workers)
	rep, err := m.Run(traces)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return rep
}

// stripShardGauges removes the sim_shard_* diagnostics from a report's
// metric snapshot — the one documented exclusion from the byte-identity
// contract (DESIGN.md §13): they describe the execution, not the
// simulation, and the barrier-wait gauge is wall-clock.
func stripShardGauges(rep *Report) {
	if rep.Metrics == nil {
		return
	}
	for k := range rep.Metrics.Gauges {
		if strings.HasPrefix(k, "sim_shard_") {
			delete(rep.Metrics.Gauges, k)
		}
	}
}

// TestShardedSimulationIdentical pins the tentpole contract: for every
// policy, fault seed and readahead mode, the sharded engine's report —
// including the full metrics snapshot — is byte-identical to the serial
// engine's at shard counts 1, 2, 4 and 8.
func TestShardedSimulationIdentical(t *testing.T) {
	forceMultiCPU(t)
	variants := []struct {
		name      string
		faults    float64
		seed      int64
		readahead int
	}{
		{name: "healthy"},
		{name: "faults-seed42", faults: 0.6, seed: 42},
		{name: "faults-seed7", faults: 0.35, seed: 7},
		{name: "readahead", readahead: 2},
	}
	for _, policy := range cache.Names() {
		for _, v := range variants {
			t.Run(policy+"/"+v.name, func(t *testing.T) {
				cfg := smallConfig()
				cfg.Policy = policy
				cfg.FaultIntensity, cfg.FaultSeed = v.faults, v.seed
				cfg.ReadaheadBlocks = v.readahead
				cfg.Metrics = true
				ft, traces := buildTraces(t, shardWork, cfg, false)

				serial := runShardCase(t, cfg, ft, traces, 0)
				if serial.DiskReads == 0 {
					t.Fatal("workload produced no disk traffic; test is vacuous")
				}
				serialJSON, err := json.Marshal(serial.Metrics)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 2, 4, 8} {
					sharded := runShardCase(t, cfg, ft, traces, workers)
					if workers > 1 && sharded.Metrics.Gauges["sim_shard_workers"] == 0 {
						t.Errorf("workers=%d: sharded engine did not engage", workers)
					}
					stripShardGauges(sharded)
					if !reflect.DeepEqual(serial, sharded) {
						t.Errorf("workers=%d: report differs from serial\nserial:  %+v\nsharded: %+v",
							workers, serial, sharded)
					}
					gotJSON, err := json.Marshal(sharded.Metrics)
					if err != nil {
						t.Fatal(err)
					}
					if string(gotJSON) != string(serialJSON) {
						t.Errorf("workers=%d: metrics JSONL differs from serial", workers)
					}
				}
			})
		}
	}
}

// TestShardedKarmaHintsIdentical pins that the KARMA hint generation the
// sharded path runs on is the same as the serial path's (hints derive
// from the traces, which are engine-independent) and that KARMA reports
// stay identical across shard counts when hints are supplied.
func TestShardedKarmaHintsIdentical(t *testing.T) {
	cfg := smallConfig()
	cfg.Policy = "karma"
	ft, traces := buildTraces(t, shardWork, cfg, false)
	h1 := GenerateHints(cfg, ft, traces)
	h2 := GenerateHints(cfg, ft, traces)
	if !reflect.DeepEqual(h1, h2) {
		t.Fatal("KARMA hint generation is nondeterministic")
	}
}

// TestShardedFallbackSerial pins the fallback conditions: worker counts
// ≤ 1 and single-thread platforms must run the serial engine (no
// sim_shard_* gauges in the snapshot).
func TestShardedFallbackSerial(t *testing.T) {
	cfg := smallConfig()
	cfg.Metrics = true
	ft, traces := buildTraces(t, colScan, cfg, false)
	rep := runShardCase(t, cfg, ft, traces, 1)
	for k := range rep.Metrics.Gauges {
		if strings.HasPrefix(k, "sim_shard_") {
			t.Errorf("serial run published shard gauge %s", k)
		}
	}
}

// countdownCtx reports itself canceled starting from the (after+1)-th
// Err poll, counting how often the engine checks.
type countdownCtx struct {
	context.Context
	polls atomic.Int64
	after int64
}

func (c *countdownCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// countingObserver counts BlockAccess deliveries (= merged accesses).
type countingObserver struct{ n int64 }

func (c *countingObserver) BlockAccess(int, int32, obs.Level, int64) { c.n++ }
func (c *countingObserver) DiskService(int, int64, bool)             {}
func (c *countingObserver) RetryWait(int, int64)                     {}
func (c *countingObserver) Event(obs.Event)                          {}

// TestShardedAbortWithinEpoch pins the satellite's abort-latency bound:
// the sharded engine polls ctx once per epoch, and an epoch serves at
// most one access per thread, so a cancellation delivered on the N-th
// poll aborts after at most (N-1) epochs ≈ (N-1)·threads accesses —
// independent of the trace length.
func TestShardedAbortWithinEpoch(t *testing.T) {
	forceMultiCPU(t)
	cfg := smallConfig()
	ft, traces := buildTraces(t, shardWork, cfg, false)
	if total := traces[0].TotalAccesses(); total < 1000 {
		t.Fatalf("trace too short (%d accesses) to distinguish epoch-bounded abort", total)
	}
	m, err := NewMachine(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	fileBlocks := make([]int64, len(ft.Names))
	for f := range fileBlocks {
		fileBlocks[f] = ft.Blocks(int32(f), cfg.BlockElems)
	}
	m.SetFileBlocks(fileBlocks)
	var obsCount countingObserver
	m.SetObserver(&obsCount)
	m.SetWorkers(4)

	const allowedPolls = 5
	ctx := &countdownCtx{Context: context.Background(), after: allowedPolls}
	_, err = m.RunContext(ctx, traces)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	threads := int64(cfg.Threads())
	if limit := allowedPolls * threads; obsCount.n > limit {
		t.Errorf("run served %d accesses after cancellation budget; epoch bound allows ≤ %d",
			obsCount.n, limit)
	}
	if obsCount.n == 0 {
		t.Error("run aborted before serving anything; poll pacing is broken")
	}
}
