package sim

import (
	"flopt/internal/storage/cache"
	"flopt/internal/trace"
)

// GenerateHints derives KARMA range hints from the compiler's knowledge of
// the access streams: each file is cut into cfg.HintRangesPerFile equal
// block ranges and the expected per-I/O-cache access frequency of every
// range is counted exactly. This plays the role of KARMA's application
// hints; the paper notes that the optimized layout "enables KARMA to
// generate more accurate hints" — here that manifests as per-range
// frequencies concentrated on few I/O nodes instead of smeared across all.
func GenerateHints(cfg Config, ft *trace.FileTable, traces []*trace.NestTrace) []cache.RangeHint {
	ranges := cfg.HintRangesPerFile
	if ranges < 1 {
		ranges = 1
	}
	// Per file: block count and range width.
	nFiles := len(ft.Names)
	width := make([]int64, nFiles)
	blocks := make([]int64, nFiles)
	for f := 0; f < nFiles; f++ {
		blocks[f] = ft.Blocks(int32(f), cfg.BlockElems)
		w := (blocks[f] + int64(ranges) - 1) / int64(ranges)
		if w < 1 {
			w = 1
		}
		width[f] = w
	}
	// freq[file][range][io]
	freq := make([][][]float64, nFiles)
	for f := range freq {
		nr := int((blocks[f] + width[f] - 1) / width[f])
		freq[f] = make([][]float64, nr)
		for r := range freq[f] {
			freq[f][r] = make([]float64, cfg.IONodes)
		}
	}
	for _, nt := range traces {
		for t, stream := range nt.Streams {
			io := cfg.IONodeOf(t)
			for _, acc := range stream {
				// Count every block of a compressed run. A run may cross
				// range boundaries, so split it into per-range pieces and
				// add each piece's block count in one step.
				w := width[acc.File]
				fr := freq[acc.File]
				b, last := acc.Block, acc.Block+int64(acc.Run)
				for b <= last {
					r := b / w
					end := (r + 1) * w // first block of the next range
					if end > last+1 {
						end = last + 1
					}
					fr[r][io] += float64(end - b)
					b = end
				}
			}
		}
	}
	var hints []cache.RangeHint
	for f := 0; f < nFiles; f++ {
		for r := range freq[f] {
			start := int64(r) * width[f]
			end := start + width[f]
			if end > blocks[f] {
				end = blocks[f]
			}
			hints = append(hints, cache.RangeHint{
				File:      int32(f),
				Start:     start,
				End:       end,
				FreqPerIO: freq[f][r],
			})
		}
	}
	return hints
}
