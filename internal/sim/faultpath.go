package sim

import (
	"fmt"

	"flopt/internal/obs"
	"flopt/internal/storage/cache"
)

// serveFaulty is serve's degraded-mode twin: outage-aware failover
// routing to the replica stripe, transient-error retries with capped
// exponential backoff, and replica reconstruction once the request
// deadline expires. Every injected delay lands on the calling thread's
// virtual clock, so fault runs replay bit-identically from the same seed.
func (m *Machine) serveFaulty(now int64, t int, file int32, block int64, elems int32) int64 {
	io := m.ioOf[t]
	st := m.striper.NodeOf(block)
	// Failover routing: requests owned by an unreachable storage node go
	// to the node holding the replica stripe (chained declustering). On a
	// single-node platform there is nowhere to fail over to.
	down := m.cfg.StorageNodes > 1 && m.faults.NodeDownAt(st, now)
	if down {
		st = m.striper.ReplicaOf(block, 1)
	}
	out := m.mgr.Read(io, st, cache.BlockID{File: file, Block: block})

	lat := m.cfg.CPUPerElemNS*int64(elems) + 1000*(m.cfg.NetCIUS+m.cfg.CacheSvcUS)
	if down && out.Level != cache.HitIO {
		// The redirect only costs (and counts) when the request actually
		// leaves the I/O node.
		m.failedOver++
		lat += 1000 * m.cfg.NetISUS
		if m.obsOn {
			m.obs.Event(obs.Event{TimeUS: now / 1000, Kind: obs.EvFailover,
				Node: st, Thread: t, File: file})
		}
	}
	switch out.Level {
	case cache.HitIO:
		// done
	case cache.HitStorage:
		lat += 1000 * (m.cfg.NetISUS + m.cfg.CacheSvcUS)
	case cache.HitDisk:
		lat += 1000 * (m.cfg.NetISUS + m.cfg.CacheSvcUS)
		arrive := now + lat
		lat += m.diskReadFaulty(arrive, st, file, block)
		local := m.striper.LocalIndex(block)
		tab := &m.streams[st]
		if tab.take(packStreamKey(file, local)) {
			m.readahead(now, file, block)
		}
		tab.insert(packStreamKey(file, local+1))
	}
	if out.Demoted {
		lat += 1000 * m.cfg.NetISUS
	}
	if m.obsOn {
		m.obs.BlockAccess(t, file, obs.Level(out.Level), lat)
	}
	return lat
}

// diskReadFaulty performs the device read of a demand miss on storage
// node st under fault injection — fail-slow scaling plus transient read
// errors — and returns the latency beyond arrive. A failed attempt pays
// its full (possibly degraded) service time, then backs off; when the
// retry budget or the request deadline runs out, the read is served by
// replica reconstruction instead.
func (m *Machine) diskReadFaulty(arrive int64, st int, file int32, block int64) int64 {
	local := m.striper.LocalIndex(block)
	rate := m.faults.TransientErrorRate
	deadline := arrive + m.timeoutNS
	at := arrive
	backoff := m.backoffNS
	for attempt := 0; ; attempt++ {
		done, _ := m.disks[st].ReadScaled(at, file, local, m.faults.SlowFactorAt(st, at))
		if rate <= 0 || m.rng.Float64() >= rate {
			return done - arrive
		}
		if attempt >= m.maxRetries || done+backoff > deadline {
			m.timeouts++
			if m.obsOn {
				m.obs.Event(obs.Event{TimeUS: done / 1000, Kind: obs.EvTimeout,
					Node: st, Thread: -1, File: file,
					Detail: fmt.Sprintf("attempts=%d", attempt+1)})
			}
			return m.reconstruct(done, st, file, local, block) - arrive
		}
		m.retries++
		if m.obsOn {
			m.obs.RetryWait(st, backoff)
		}
		at = done + backoff
		if backoff < 8*m.backoffNS {
			backoff *= 2
		}
	}
}

// reconstruct serves a read whose primary attempts exhausted their retry
// budget from the block's other stripe copy — a degraded read. When the
// platform has no second copy (single storage node, or the request
// already failed over to the replica and back), the cost of one more
// positioned read on the surviving copy models parity reconstruction.
// Reconstruction always succeeds: it is the path of last resort, which is
// what guarantees the simulator terminates under any schedule.
func (m *Machine) reconstruct(at int64, st int, file int32, local, block int64) (doneNS int64) {
	m.degradedReads++
	rep := m.striper.ReplicaOf(block, 1)
	if rep == st {
		rep = m.striper.NodeOf(block)
	}
	if m.obsOn {
		m.obs.Event(obs.Event{TimeUS: at / 1000, Kind: obs.EvReconstruct,
			Node: rep, Thread: -1, File: file})
	}
	done, _ := m.disks[rep].ReadScaled(at, file, local, m.faults.SlowFactorAt(rep, at))
	return done
}
