package sim

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"flopt/internal/obs"
)

// bigScan is large enough (128·128 = 16384 accesses) to cross the
// context-poll interval at least once.
const bigScan = `
array B[128][128];
parallel(i) for i = 0 to 127 { for j = 0 to 127 { read B[j][i]; } }
`

func TestMetricsSnapshotConsistency(t *testing.T) {
	cfg := smallConfig()
	cfg.Metrics = true
	ft, traces := buildTraces(t, colScan, cfg, false)
	m, err := NewMachine(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.SetFileNames(ft.Names)
	blocks := make([]int64, len(ft.Names))
	for id := range ft.Names {
		blocks[id] = ft.Blocks(int32(id), cfg.BlockElems)
	}
	m.SetFileBlocks(blocks)
	rep, err := m.Run(traces)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Metrics
	if s == nil {
		t.Fatal("Config.Metrics set but Report.Metrics is nil")
	}
	if s.Totals.Accesses != rep.Accesses {
		t.Errorf("metrics totals %d accesses, report %d", s.Totals.Accesses, rep.Accesses)
	}
	if s.Totals.ServedIO != rep.IO.Hits {
		t.Errorf("metrics ServedIO %d, report IO hits %d", s.Totals.ServedIO, rep.IO.Hits)
	}
	if s.Totals.ServedStorage != rep.Storage.Hits {
		t.Errorf("metrics ServedStorage %d, report storage hits %d", s.Totals.ServedStorage, rep.Storage.Hits)
	}
	// Readahead is off, so every served-by-disk request is one device read.
	if s.Totals.ServedDisk != rep.DiskReads {
		t.Errorf("metrics ServedDisk %d, report disk reads %d", s.Totals.ServedDisk, rep.DiskReads)
	}
	if _, ok := s.Arrays["B"]; !ok {
		t.Errorf("per-array breakdown missing array B: %v", s.Arrays)
	}
	if len(s.Threads) != cfg.Threads() {
		t.Errorf("got %d thread breakdowns, want %d", len(s.Threads), cfg.Threads())
	}
	if len(s.Nodes) != cfg.StorageNodes {
		t.Fatalf("got %d node snapshots, want %d", len(s.Nodes), cfg.StorageNodes)
	}
	var nodeReads, primaries int64
	for _, n := range s.Nodes {
		nodeReads += n.Reads
		primaries += n.PrimaryBlocks
	}
	if nodeReads != rep.DiskReads {
		t.Errorf("node snapshots sum %d reads, report %d", nodeReads, rep.DiskReads)
	}
	var wantBlocks int64
	for _, b := range blocks {
		wantBlocks += b
	}
	if primaries != wantBlocks {
		t.Errorf("primary blocks sum %d, files hold %d", primaries, wantBlocks)
	}
	if len(s.IOCaches) != cfg.IONodes || len(s.StoreCaches) != cfg.StorageNodes {
		t.Errorf("per-cache stats: %d io, %d storage; want %d, %d",
			len(s.IOCaches), len(s.StoreCaches), cfg.IONodes, cfg.StorageNodes)
	}
	if h := s.LatencyUS[obs.HistRequestLatency]; h.Count != rep.Accesses {
		t.Errorf("request histogram holds %d samples, want %d", h.Count, rep.Accesses)
	}
	if s.Events.ByKind[obs.EvRunStart] != 1 || s.Events.ByKind[obs.EvRunEnd] != 1 {
		t.Errorf("run lifecycle events missing: %v", s.Events.ByKind)
	}
	if s.Events.ByKind[obs.EvNestStart] != int64(len(traces)) {
		t.Errorf("got %d nest.start events, want %d", s.Events.ByKind[obs.EvNestStart], len(traces))
	}
}

func TestMetricsOffByDefault(t *testing.T) {
	cfg := smallConfig()
	_, traces := buildTraces(t, colScan, cfg, false)
	rep, err := Simulate(cfg, traces, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics != nil {
		t.Error("Report.Metrics should be nil when Config.Metrics is off")
	}
}

// TestMetricsDoNotPerturbTiming: attaching the observer must not change
// the simulated execution — observation, not intervention.
func TestMetricsDoNotPerturbTiming(t *testing.T) {
	base := smallConfig()
	_, traces := buildTraces(t, colScan, base, false)
	plain, err := Simulate(base, traces, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Metrics = true
	observed, err := Simulate(cfg, traces, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.ExecTimeUS != observed.ExecTimeUS || plain.DiskReads != observed.DiskReads {
		t.Errorf("metrics changed the run: exec %d vs %d, disk reads %d vs %d",
			plain.ExecTimeUS, observed.ExecTimeUS, plain.DiskReads, observed.DiskReads)
	}
}

// TestMetricsFaultReplayIdentical: snapshots of two machines replaying the
// same fault seed are byte-identical — the determinism contract the
// parallel harness depends on.
func TestMetricsFaultReplayIdentical(t *testing.T) {
	cfg := smallConfig()
	cfg.Metrics = true
	cfg.FaultIntensity = 0.6
	cfg.FaultSeed = 11
	ft, traces := buildTraces(t, colScan, cfg, false)
	snap := func() []byte {
		m, err := NewMachine(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		m.SetFileNames(ft.Names)
		rep, err := m.Run(traces)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep.Metrics)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := snap(), snap()
	if string(a) != string(b) {
		t.Error("metric snapshots differ across identical replays")
	}
}

func TestRunContextCanceled(t *testing.T) {
	cfg := smallConfig()
	_, traces := buildTraces(t, bigScan, cfg, false)
	m, err := NewMachine(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.RunContext(ctx, traces); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on canceled context returned %v, want context.Canceled", err)
	}
}

func TestConfigValidateWrapsErrBadConfig(t *testing.T) {
	c := DefaultConfig()
	c.ComputeNodes = 0
	if err := c.Validate(); !errors.Is(err, ErrBadConfig) {
		t.Errorf("Validate error %v does not wrap ErrBadConfig", err)
	}
	c = DefaultConfig()
	c.FaultIntensity = 2
	if err := c.Validate(); !errors.Is(err, ErrBadConfig) {
		t.Errorf("fault-intensity error %v does not wrap ErrBadConfig", err)
	}
}
