package sim

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"flopt/internal/fault"
	"flopt/internal/obs"
	"flopt/internal/storage/cache"
	"flopt/internal/storage/disk"
	"flopt/internal/storage/stripe"
	"flopt/internal/trace"
)

// Report summarizes one simulated execution.
type Report struct {
	Config Config
	// ExecTimeUS is the application execution time: the barrier time
	// after the last nest (max over threads).
	ExecTimeUS int64
	// ThreadTimeUS holds each thread's final virtual time.
	ThreadTimeUS []int64
	// IO and Storage are the aggregated cache statistics per level.
	IO, Storage cache.Stats
	// DiskReads and DiskSeqReads count device-level block reads.
	DiskReads, DiskSeqReads int64
	// DiskBusyUS is the summed device service time across disks.
	DiskBusyUS int64
	// Accesses is the total number of block requests issued.
	Accesses int64
	// Demotions counts DEMOTE-LRU downward transfers.
	Demotions int64
	// Prefetches counts storage-node readahead fills.
	Prefetches int64
	// PolicyName records the cache policy used.
	PolicyName string

	// Degraded-mode statistics (all zero on a healthy platform).
	// Retries counts re-issued disk read attempts after transient errors.
	Retries int64
	// Timeouts counts requests whose retry budget or deadline expired.
	Timeouts int64
	// DegradedReads counts reads served by replica reconstruction after a
	// timeout.
	DegradedReads int64
	// FailedOverBlocks counts requests rerouted to the replica stripe
	// because the owning storage node was unreachable.
	FailedOverBlocks int64

	// Metrics is the observability snapshot of the run — per-layer hit
	// breakdowns keyed by array and thread, per-node device metrics,
	// latency histograms, and the event summary. Nil unless Config.Metrics
	// was set (or a Metrics observer was attached via SetObserver paths
	// that enable it).
	Metrics *obs.Snapshot
}

// IOMissRate and StorageMissRate expose the Table 2/3 metrics.
func (r *Report) IOMissRate() float64      { return r.IO.MissRate() }
func (r *Report) StorageMissRate() float64 { return r.Storage.MissRate() }

// Machine is an instantiated platform ready to run traces.
type Machine struct {
	cfg     Config
	striper stripe.Striping
	disks   []*disk.Disk
	mgr     cache.Manager
	// ioOf[t] caches the thread→I/O node routing.
	ioOf []int
	// fileBlocks bounds storage-node readahead per file (optional; see
	// SetFileBlocks). Readahead past the recorded end is suppressed.
	fileBlocks []int64
	// streams[s] tracks, per file, the set of "expected next" local block
	// indices of in-flight sequential streams on storage node s — a
	// multi-stream readahead detector (one file serves one stream per
	// client thread, so a single last-position would never fire).
	streams []streamTable
	// prefetches counts readahead fills performed.
	prefetches int64

	// faults is the resolved fault schedule; nil on a healthy platform.
	faults *fault.Schedule
	// rng drives the transient-error stream. serve runs serially inside
	// Run, so a single seeded source replays identically regardless of
	// how many runs execute concurrently on other Machines.
	rng *rand.Rand
	// Effective degraded-mode retry policy (ns), resolved from cfg with
	// the package defaults filling zero fields.
	maxRetries           int
	backoffNS, timeoutNS int64
	// Degraded-mode counters (see Report).
	retries, timeouts, degradedReads, failedOver int64

	// obs is the effective observer (machine-owned metrics teed with any
	// user observer); obsOn caches whether it is non-Nop so the healthy
	// hot path pays a single predictable branch per request.
	obs   obs.Observer
	obsOn bool
	// userObs is the observer registered via SetObserver, kept so the tee
	// can be rebuilt.
	userObs obs.Observer
	// metrics is the machine-owned collector behind Config.Metrics; its
	// snapshot lands on Report.Metrics.
	metrics *obs.Metrics
	// fileNames labels file ids with array names in metric snapshots.
	fileNames []string
	// lastEvictions is the hierarchy-wide eviction count at the previous
	// storm-detector sample (see evictionSampleEvery).
	lastEvictions int64
}

// SetFileBlocks records each file's length in blocks so readahead stops at
// end of file. Without it, readahead is unbounded (phantom blocks may
// pollute the storage caches).
func (m *Machine) SetFileBlocks(blocks []int64) {
	m.fileBlocks = append([]int64(nil), blocks...)
}

// NewMachine builds the platform. For the "karma" policy, hints must be
// supplied (see GenerateHints); other policies ignore them.
func NewMachine(cfg Config, hints []cache.RangeHint) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == "" {
		cfg.Policy = "lru"
	}
	mgr, err := cache.NewByName(cfg.Policy, cfg.IONodes, cfg.StorageNodes,
		cfg.IOCacheBlocks, cfg.StorageCacheBlocks, hints)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:     cfg,
		striper: stripe.New(cfg.StorageNodes),
		mgr:     mgr,
		ioOf:    make([]int, cfg.Threads()),
	}
	for i := 0; i < cfg.StorageNodes; i++ {
		m.disks = append(m.disks, disk.New(cfg.Disk))
		m.streams = append(m.streams, streamTable{set: make(map[uint64]struct{})})
	}
	for t := range m.ioOf {
		m.ioOf[t] = cfg.IONodeOf(t)
	}
	if plan := cfg.FaultPlan(); !plan.Healthy() {
		if err := plan.Validate(cfg.StorageNodes); err != nil {
			return nil, err
		}
		m.faults = plan
		m.rng = rand.New(rand.NewSource(cfg.FaultSeed))
		m.maxRetries = cfg.MaxRetries
		if m.maxRetries == 0 {
			m.maxRetries = DefaultMaxRetries
		}
		m.backoffNS = 1000 * cfg.RetryBackoffUS
		if m.backoffNS == 0 {
			m.backoffNS = 1000 * DefaultRetryBackoffUS
		}
		m.timeoutNS = 1000 * cfg.RequestTimeoutUS
		if m.timeoutNS == 0 {
			m.timeoutNS = 1000 * DefaultRequestTimeoutUS
		}
	}
	if cfg.Metrics {
		m.metrics = obs.NewMetrics()
	}
	m.SetObserver(nil)
	return m, nil
}

// SetObserver registers o to receive the machine's profiling callbacks
// and structured events, teed with the machine-owned metrics collector
// when Config.Metrics is set; nil detaches the user observer. Observers
// are driven serially by this machine's virtual clock, so they need no
// locking and their output is bit-identical across host worker counts.
func (m *Machine) SetObserver(o obs.Observer) {
	m.userObs = o
	var eff obs.Observer
	if m.metrics != nil {
		eff = obs.Tee(m.metrics, o)
	} else {
		eff = obs.Tee(o)
	}
	m.obs = eff
	_, nop := eff.(obs.Nop)
	m.obsOn = !nop
	for i, d := range m.disks {
		if !m.obsOn {
			d.SetServiceHook(nil)
			continue
		}
		node := i
		d.SetServiceHook(func(serviceNS int64, sequential bool) {
			m.obs.DiskService(node, serviceNS, sequential)
		})
	}
}

// Metrics returns the machine-owned metrics collector, or nil when
// Config.Metrics is off. It keeps accumulating across Run calls.
func (m *Machine) Metrics() *obs.Metrics { return m.metrics }

// SetFileNames labels file ids with array names in metric snapshots;
// unlabeled files appear as "file<N>".
func (m *Machine) SetFileNames(names []string) {
	m.fileNames = append(m.fileNames[:0], names...)
	if m.metrics != nil {
		m.metrics.SetArrayNames(m.fileNames)
	}
}

// runHeap is a concrete binary min-heap over the active threads, ordered
// by (virtual time, thread id). It replaces container/heap on the
// scheduler hot path: each element packs that pair into a single int64 —
// time in the high bits, id in the low idBits — so the strict total order
// becomes one integer comparison, with no interface dispatch and no
// indirection through the clock slice. Any valid heap under a strict total
// order yields the same root sequence, so scheduling is bit-identical to
// the previous container/heap implementation.
type runHeap struct {
	keys []int64
}

func (h *runHeap) down(i int) {
	n := len(h.keys)
	for {
		j := 2*i + 1
		if j >= n {
			return
		}
		if r := j + 1; r < n && h.keys[r] < h.keys[j] {
			j = r
		}
		if h.keys[j] >= h.keys[i] {
			return
		}
		h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
		i = j
	}
}

func (h *runHeap) init() {
	for i := len(h.keys)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

// fix restores the heap after the root's key increased (times only move
// forward, so sifting down is sufficient).
func (h *runHeap) fix() { h.down(0) }

func (h *runHeap) pop() {
	n := len(h.keys) - 1
	h.keys[0] = h.keys[n]
	h.keys = h.keys[:n]
	h.down(0)
}

// limit returns the packed (time, id) bound the root thread must stay
// within to keep its heap position: the smaller of its up-to-two children.
// With no children the bound is unreachable and the root runs its stream
// to completion.
func (h *runHeap) limit() int64 {
	lim := int64(math.MaxInt64)
	if len(h.keys) > 1 {
		lim = h.keys[1]
		if len(h.keys) > 2 && h.keys[2] < lim {
			lim = h.keys[2]
		}
	}
	return lim
}

// Run executes the given nest traces in program order with a barrier
// between nests and returns the report. The machine's caches keep their
// contents across nests (and across Run calls; use Reset for a cold
// start). Internal clocks run in nanoseconds; the report converts to
// microseconds.
func (m *Machine) Run(traces []*trace.NestTrace) (*Report, error) {
	return m.RunContext(context.Background(), traces)
}

// Eviction-storm detection: every evictionSampleEvery accesses the run
// loop samples the hierarchy-wide eviction count; a window in which most
// accesses evicted a block (≥ the threshold) emits an EvEvictionStorm
// event — the thrashing signature of a working set far beyond capacity.
const (
	evictionSampleEvery    = 4096
	evictionStormThreshold = 3 * evictionSampleEvery / 4
)

// ctxCheckEvery paces context-cancellation polling in the inner loop (a
// power of two; the check is a mask test plus one predictable call).
const ctxCheckEvery = 8192

// RunContext is Run with cooperative cancellation: the inner loop polls
// ctx every ctxCheckEvery accesses and aborts with ctx's error, leaving
// the machine's caches and clocks mid-run (Reset before reuse).
func (m *Machine) RunContext(ctx context.Context, traces []*trace.NestTrace) (*Report, error) {
	threads := m.cfg.Threads()
	clock := make([]int64, threads) // ns
	// pos/sub and the heap's id slice are reused across nests (hot-path
	// allocation trim: one allocation each per Run, not per nest). pos[t]
	// indexes thread t's stream entry, sub[t] the block within its run.
	pos := make([]int, threads)
	sub := make([]int32, threads)
	keys := make([]int64, 0, threads)
	var accesses int64

	// Heap keys pack (clock, thread) into one int64: clock in the high
	// bits, the thread id in the low idBits. The packing is order-preserving
	// while clocks stay below maxClock (2^57 ns ≈ 4.5 virtual years at 16
	// threads); the scheduler errors out rather than let a key wrap.
	idBits := uint(bits.Len(uint(threads)))
	idMask := int64(1)<<idBits - 1
	maxClock := int64(1) << (62 - idBits)

	if m.obsOn {
		m.obs.Event(obs.Event{Kind: obs.EvRunStart, Node: -1, Thread: -1, File: -1,
			Detail: fmt.Sprintf("nests=%d threads=%d policy=%s", len(traces), threads, m.mgr.Name())})
	}
	for ni, nt := range traces {
		if len(nt.Streams) != threads {
			return nil, fmt.Errorf("sim: nest %d trace has %d streams, platform has %d threads",
				ni, len(nt.Streams), threads)
		}
		// Barrier: all threads start the nest at the same time.
		var barrier int64
		for _, c := range clock {
			if c > barrier {
				barrier = c
			}
		}
		if m.obsOn {
			m.obs.Event(obs.Event{TimeUS: barrier / 1000, Kind: obs.EvNestStart,
				Node: -1, Thread: -1, File: -1, Detail: fmt.Sprintf("nest=%d", ni)})
		}
		if barrier >= maxClock {
			return nil, fmt.Errorf("sim: virtual clock %d ns overflows the scheduler key space", barrier)
		}
		h := runHeap{keys: keys[:0]}
		for t := 0; t < threads; t++ {
			clock[t] = barrier
			pos[t] = 0
			sub[t] = 0
			if len(nt.Streams[t]) > 0 {
				h.keys = append(h.keys, barrier<<idBits|int64(t))
			}
		}
		h.init()
		// Scheduler with root batching: the root thread keeps serving
		// blocks — walking run entries block by block — for as long as its
		// packed key stays at or below the smaller of its heap children,
		// which is exactly the condition under which a per-block heap fix
		// would have left it at the root. Interleaving, stats and clocks are
		// therefore identical to serving one block per heap operation.
		for len(h.keys) > 0 {
			t := int(h.keys[0] & idMask)
			lim := h.limit()
			stream := nt.Streams[t]
			p, s := pos[t], sub[t]
			c := clock[t]
			for {
				a := stream[p]
				c += m.serve(c, t, a.File, a.Block+int64(s), a.Elems)
				accesses++
				if accesses&(ctxCheckEvery-1) == 0 {
					if err := ctx.Err(); err != nil {
						return nil, fmt.Errorf("sim: run aborted after %d accesses: %w", accesses, err)
					}
				}
				if m.obsOn && accesses&(evictionSampleEvery-1) == 0 {
					m.sampleEvictions(c)
				}
				s++
				if s > a.Run {
					s = 0
					p++
					if p >= len(stream) {
						if c >= maxClock {
							return nil, fmt.Errorf("sim: virtual clock %d ns overflows the scheduler key space", c)
						}
						clock[t], pos[t], sub[t] = c, p, s
						h.pop()
						break
					}
				}
				if key := c<<idBits | int64(t); key > lim {
					if c >= maxClock {
						return nil, fmt.Errorf("sim: virtual clock %d ns overflows the scheduler key space", c)
					}
					clock[t], pos[t], sub[t] = c, p, s
					h.keys[0] = key
					h.fix()
					break
				}
			}
		}
	}

	threadUS := make([]int64, threads)
	for t, c := range clock {
		threadUS[t] = c / 1000
	}
	rep := &Report{
		Config:       m.cfg,
		ThreadTimeUS: threadUS,
		IO:           m.mgr.IOStats(),
		Storage:      m.mgr.StorageStats(),
		Accesses:     accesses,
		PolicyName:   m.mgr.Name(),
	}
	for _, c := range threadUS {
		if c > rep.ExecTimeUS {
			rep.ExecTimeUS = c
		}
	}
	for _, d := range m.disks {
		rep.DiskReads += d.Reads()
		rep.DiskSeqReads += d.SeqReads()
		rep.DiskBusyUS += d.BusyNS() / 1000
	}
	if dl, ok := m.mgr.(*cache.DemoteLRU); ok {
		rep.Demotions = dl.Demotions()
	}
	rep.Prefetches = m.prefetches
	rep.Retries, rep.Timeouts = m.retries, m.timeouts
	rep.DegradedReads, rep.FailedOverBlocks = m.degradedReads, m.failedOver
	if m.obsOn {
		m.obs.Event(obs.Event{TimeUS: rep.ExecTimeUS, Kind: obs.EvRunEnd,
			Node: -1, Thread: -1, File: -1,
			Detail: fmt.Sprintf("accesses=%d disk_reads=%d", accesses, rep.DiskReads)})
	}
	if m.metrics != nil {
		m.finishMetrics(rep)
	}
	return rep, nil
}

// sampleEvictions runs the eviction-storm detector at virtual time nowNS.
func (m *Machine) sampleEvictions(nowNS int64) {
	ev := m.mgr.IOStats().Evictions + m.mgr.StorageStats().Evictions
	if d := ev - m.lastEvictions; d >= evictionStormThreshold {
		m.obs.Event(obs.Event{TimeUS: nowNS / 1000, Kind: obs.EvEvictionStorm,
			Node: -1, Thread: -1, File: -1,
			Detail: fmt.Sprintf("evictions=%d window=%d", d, evictionSampleEvery)})
	}
	m.lastEvictions = ev
}

// finishMetrics folds the machine's end-of-run state into the metrics
// collector and snapshots it onto the report.
func (m *Machine) finishMetrics(rep *Report) {
	m.metrics.SetArrayNames(m.fileNames)
	if len(m.fileBlocks) > 0 {
		primaries := make([]int64, m.cfg.StorageNodes)
		for _, nb := range m.fileBlocks {
			for i, c := range m.striper.Spread(nb) {
				primaries[i] += c
			}
		}
		m.metrics.SetNodePrimaryBlocks(primaries)
	}
	if nsr, ok := m.mgr.(cache.NodeStatsReporter); ok {
		m.metrics.SetCacheNodeStats(toCacheNodeStats(nsr.IONodeStats()), toCacheNodeStats(nsr.StorageNodeStats()))
	}
	// Registry counters mirror the machine's cumulative counters; Add the
	// delta so repeated Runs on one machine stay consistent.
	reg := m.metrics.Registry()
	for _, c := range []struct {
		name string
		val  int64
	}{
		{"prefetches", m.prefetches},
		{"retries", m.retries},
		{"timeouts", m.timeouts},
		{"degraded_reads", m.degradedReads},
		{"failed_over_blocks", m.failedOver},
		{"demotions", rep.Demotions},
	} {
		ctr := reg.Counter(c.name)
		ctr.Add(c.val - ctr.Value())
	}
	reg.Gauge("exec_time_us").Set(float64(rep.ExecTimeUS))
	rep.Metrics = m.metrics.Snapshot()
}

// toCacheNodeStats mirrors cache.Stats into the obs package's dependency-
// free counter form.
func toCacheNodeStats(in []cache.Stats) []obs.CacheNodeStats {
	out := make([]obs.CacheNodeStats, len(in))
	for i, s := range in {
		out[i] = obs.CacheNodeStats{Accesses: s.Accesses, Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions}
	}
	return out
}

// serve routes one block request issued by thread t at the given virtual
// time (ns) and returns its latency in nanoseconds. Run entries are served
// block by block from the scheduler loop; striping sends consecutive
// blocks of a run to different storage nodes, so there is no cross-block
// cache transaction to batch below this level.
func (m *Machine) serve(now int64, t int, file int32, block int64, elems int32) int64 {
	if m.faults != nil {
		return m.serveFaulty(now, t, file, block, elems)
	}
	io := m.ioOf[t]
	st := m.striper.NodeOf(block)
	out := m.mgr.Read(io, st, cache.BlockID{File: file, Block: block})

	lat := m.cfg.CPUPerElemNS*int64(elems) + 1000*(m.cfg.NetCIUS+m.cfg.CacheSvcUS)
	switch out.Level {
	case cache.HitIO:
		// done
	case cache.HitStorage:
		lat += 1000 * (m.cfg.NetISUS + m.cfg.CacheSvcUS)
	case cache.HitDisk:
		lat += 1000 * (m.cfg.NetISUS + m.cfg.CacheSvcUS)
		arrive := now + lat
		local := m.striper.LocalIndex(block)
		done := m.disks[st].Read(arrive, file, local)
		lat += done - arrive
		// Server-side multi-stream detection: a demand read continuing
		// any in-flight sequential stream of this file on this node arms
		// readahead, as real per-flow readahead does.
		tab := &m.streams[st]
		if tab.take(packStreamKey(file, local)) {
			m.readahead(now, file, block)
		}
		tab.insert(packStreamKey(file, local+1))
	}
	if out.Demoted {
		lat += 1000 * m.cfg.NetISUS
	}
	if m.obsOn {
		m.obs.BlockAccess(t, file, obs.Level(out.Level), lat)
	}
	return lat
}

// serveFaulty is serve's degraded-mode twin: outage-aware failover
// routing to the replica stripe, transient-error retries with capped
// exponential backoff, and replica reconstruction once the request
// deadline expires. Every injected delay lands on the calling thread's
// virtual clock, so fault runs replay bit-identically from the same seed.
func (m *Machine) serveFaulty(now int64, t int, file int32, block int64, elems int32) int64 {
	io := m.ioOf[t]
	st := m.striper.NodeOf(block)
	// Failover routing: requests owned by an unreachable storage node go
	// to the node holding the replica stripe (chained declustering). On a
	// single-node platform there is nowhere to fail over to.
	down := m.cfg.StorageNodes > 1 && m.faults.NodeDownAt(st, now)
	if down {
		st = m.striper.ReplicaOf(block, 1)
	}
	out := m.mgr.Read(io, st, cache.BlockID{File: file, Block: block})

	lat := m.cfg.CPUPerElemNS*int64(elems) + 1000*(m.cfg.NetCIUS+m.cfg.CacheSvcUS)
	if down && out.Level != cache.HitIO {
		// The redirect only costs (and counts) when the request actually
		// leaves the I/O node.
		m.failedOver++
		lat += 1000 * m.cfg.NetISUS
		if m.obsOn {
			m.obs.Event(obs.Event{TimeUS: now / 1000, Kind: obs.EvFailover,
				Node: st, Thread: t, File: file})
		}
	}
	switch out.Level {
	case cache.HitIO:
		// done
	case cache.HitStorage:
		lat += 1000 * (m.cfg.NetISUS + m.cfg.CacheSvcUS)
	case cache.HitDisk:
		lat += 1000 * (m.cfg.NetISUS + m.cfg.CacheSvcUS)
		arrive := now + lat
		lat += m.diskReadFaulty(arrive, st, file, block)
		local := m.striper.LocalIndex(block)
		tab := &m.streams[st]
		if tab.take(packStreamKey(file, local)) {
			m.readahead(now, file, block)
		}
		tab.insert(packStreamKey(file, local+1))
	}
	if out.Demoted {
		lat += 1000 * m.cfg.NetISUS
	}
	if m.obsOn {
		m.obs.BlockAccess(t, file, obs.Level(out.Level), lat)
	}
	return lat
}

// diskReadFaulty performs the device read of a demand miss on storage
// node st under fault injection — fail-slow scaling plus transient read
// errors — and returns the latency beyond arrive. A failed attempt pays
// its full (possibly degraded) service time, then backs off; when the
// retry budget or the request deadline runs out, the read is served by
// replica reconstruction instead.
func (m *Machine) diskReadFaulty(arrive int64, st int, file int32, block int64) int64 {
	local := m.striper.LocalIndex(block)
	rate := m.faults.TransientErrorRate
	deadline := arrive + m.timeoutNS
	at := arrive
	backoff := m.backoffNS
	for attempt := 0; ; attempt++ {
		done, _ := m.disks[st].ReadScaled(at, file, local, m.faults.SlowFactorAt(st, at))
		if rate <= 0 || m.rng.Float64() >= rate {
			return done - arrive
		}
		if attempt >= m.maxRetries || done+backoff > deadline {
			m.timeouts++
			if m.obsOn {
				m.obs.Event(obs.Event{TimeUS: done / 1000, Kind: obs.EvTimeout,
					Node: st, Thread: -1, File: file,
					Detail: fmt.Sprintf("attempts=%d", attempt+1)})
			}
			return m.reconstruct(done, st, file, local, block) - arrive
		}
		m.retries++
		if m.obsOn {
			m.obs.RetryWait(st, backoff)
		}
		at = done + backoff
		if backoff < 8*m.backoffNS {
			backoff *= 2
		}
	}
}

// reconstruct serves a read whose primary attempts exhausted their retry
// budget from the block's other stripe copy — a degraded read. When the
// platform has no second copy (single storage node, or the request
// already failed over to the replica and back), the cost of one more
// positioned read on the surviving copy models parity reconstruction.
// Reconstruction always succeeds: it is the path of last resort, which is
// what guarantees the simulator terminates under any schedule.
func (m *Machine) reconstruct(at int64, st int, file int32, local, block int64) (doneNS int64) {
	m.degradedReads++
	rep := m.striper.ReplicaOf(block, 1)
	if rep == st {
		rep = m.striper.NodeOf(block)
	}
	if m.obsOn {
		m.obs.Event(obs.Event{TimeUS: at / 1000, Kind: obs.EvReconstruct,
			Node: rep, Thread: -1, File: file})
	}
	done, _ := m.disks[rep].ReadScaled(at, file, local, m.faults.SlowFactorAt(rep, at))
	return done
}

// packStreamKey packs one expected stream continuation (file, next local
// block index) into a single map key. The cache layer's packBlockID guard
// has already bounds-checked file and the global block index on this
// request, and the local index never exceeds the global one.
func packStreamKey(file int32, next int64) uint64 {
	return uint64(uint32(file))<<streamKeyFileShift | uint64(next)
}

const streamKeyFileShift = 40

// maxStreams bounds the per-node stream table (ample for one stream per
// thread per file).
const maxStreams = 4096

// streamTable is the per-storage-node stream detector: a set of expected
// continuations plus a FIFO insertion ring for bounded expiry. When the
// table is full the oldest live stream is dropped — replacing the old
// clear-the-whole-map expiry, which reallocated the map and forgot every
// in-flight stream at once. Matched (taken) streams leave tombstones in
// the ring that are skipped lazily and dropped on compaction.
type streamTable struct {
	set  map[uint64]struct{}
	fifo []uint64
	head int
}

// take removes key from the table, reporting whether it was present.
func (s *streamTable) take(key uint64) bool {
	if _, ok := s.set[key]; ok {
		delete(s.set, key)
		return true
	}
	return false
}

// insert adds key unless already tracked, expiring the oldest live stream
// once the table is at capacity.
func (s *streamTable) insert(key uint64) {
	if _, ok := s.set[key]; ok {
		return
	}
	if len(s.set) >= maxStreams {
		for {
			old := s.fifo[s.head]
			s.head++
			if _, live := s.set[old]; live {
				delete(s.set, old)
				break
			}
		}
	}
	if len(s.fifo)-s.head >= 2*maxStreams || (s.head > 0 && s.head >= len(s.fifo)/2) {
		s.compact()
	}
	s.set[key] = struct{}{}
	s.fifo = append(s.fifo, key)
}

// compact drops tombstones and the consumed ring prefix in place.
func (s *streamTable) compact() {
	live := s.fifo[:0]
	for _, k := range s.fifo[s.head:] {
		if _, ok := s.set[k]; ok {
			live = append(live, k)
		}
	}
	s.fifo = live
	s.head = 0
}

// reset empties the table, keeping the map and ring storage.
func (s *streamTable) reset() {
	clear(s.set)
	s.fifo = s.fifo[:0]
	s.head = 0
}

// readahead pulls the next sequential blocks of the file into the storage
// caches after a demand disk read (when enabled). Each prefetched block
// pays its transfer time on the disk that owns its stripe — delaying
// queued demand reads, which is the realistic cost of speculation — but
// adds nothing to the requester's latency. Under fault injection,
// unreachable nodes are skipped (nobody speculates into a dead node) and
// fail-slow scaling applies.
func (m *Machine) readahead(now int64, file int32, block int64) {
	if m.cfg.ReadaheadBlocks <= 0 {
		return
	}
	pf, ok := m.mgr.(cache.Prefetcher)
	if !ok {
		return // policy does not accept readahead fills (e.g. KARMA)
	}
	for r := 1; r <= m.cfg.ReadaheadBlocks; r++ {
		next := block + int64(r)
		if int(file) < len(m.fileBlocks) && next >= m.fileBlocks[file] {
			break // end of file
		}
		st := m.striper.NodeOf(next)
		if m.faults != nil && m.faults.NodeDownAt(st, now) {
			continue
		}
		blk := cache.BlockID{File: file, Block: next}
		if pf.PrefetchStorage(st, blk) {
			scale := 1.0
			if m.faults != nil {
				scale = m.faults.SlowFactorAt(st, now)
			}
			m.disks[st].ReadScaled(0, file, m.striper.LocalIndex(next), scale)
			m.prefetches++
		}
	}
}

// Reset clears all caches, disks and counters for a fresh cold run. The
// transient-error stream is reseeded, so a Reset machine replays the same
// faults the next Run.
func (m *Machine) Reset() {
	m.mgr.Reset()
	for i, d := range m.disks {
		d.Reset()
		m.streams[i].reset()
	}
	m.prefetches = 0
	if m.faults != nil {
		m.rng = rand.New(rand.NewSource(m.cfg.FaultSeed))
	}
	m.retries, m.timeouts, m.degradedReads, m.failedOver = 0, 0, 0, 0
	m.lastEvictions = 0
}

// Simulate is the one-shot convenience wrapper: build a machine, run the
// traces cold, return the report.
func Simulate(cfg Config, traces []*trace.NestTrace, hints []cache.RangeHint) (*Report, error) {
	m, err := NewMachine(cfg, hints)
	if err != nil {
		return nil, err
	}
	return m.Run(traces)
}
