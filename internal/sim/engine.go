package sim

import (
	"math/rand"

	"flopt/internal/fault"
	"flopt/internal/obs"
	"flopt/internal/storage/cache"
	"flopt/internal/storage/disk"
	"flopt/internal/storage/stripe"
	"flopt/internal/trace"
)

// Report summarizes one simulated execution.
type Report struct {
	Config Config
	// ExecTimeUS is the application execution time: the barrier time
	// after the last nest (max over threads).
	ExecTimeUS int64
	// ThreadTimeUS holds each thread's final virtual time.
	ThreadTimeUS []int64
	// IO and Storage are the aggregated cache statistics per level.
	IO, Storage cache.Stats
	// DiskReads and DiskSeqReads count device-level block reads.
	DiskReads, DiskSeqReads int64
	// DiskBusyUS is the summed device service time across disks.
	DiskBusyUS int64
	// Accesses is the total number of block requests issued.
	Accesses int64
	// Demotions counts DEMOTE-LRU downward transfers.
	Demotions int64
	// Prefetches counts storage-node readahead fills.
	Prefetches int64
	// PolicyName records the cache policy used.
	PolicyName string

	// Degraded-mode statistics (all zero on a healthy platform).
	// Retries counts re-issued disk read attempts after transient errors.
	Retries int64
	// Timeouts counts requests whose retry budget or deadline expired.
	Timeouts int64
	// DegradedReads counts reads served by replica reconstruction after a
	// timeout.
	DegradedReads int64
	// FailedOverBlocks counts requests rerouted to the replica stripe
	// because the owning storage node was unreachable.
	FailedOverBlocks int64

	// Metrics is the observability snapshot of the run — per-layer hit
	// breakdowns keyed by array and thread, per-node device metrics,
	// latency histograms, and the event summary. Nil unless Config.Metrics
	// was set (or a Metrics observer was attached via SetObserver paths
	// that enable it).
	Metrics *obs.Snapshot
}

// IOMissRate and StorageMissRate expose the Table 2/3 metrics.
func (r *Report) IOMissRate() float64      { return r.IO.MissRate() }
func (r *Report) StorageMissRate() float64 { return r.Storage.MissRate() }

// Machine is an instantiated platform ready to run traces.
type Machine struct {
	cfg     Config
	striper stripe.Striping
	disks   []*disk.Disk
	mgr     cache.Manager
	// ioOf[t] caches the thread→I/O node routing.
	ioOf []int
	// fileBlocks bounds storage-node readahead per file (optional; see
	// SetFileBlocks). Readahead past the recorded end is suppressed.
	fileBlocks []int64
	// streams[s] tracks, per file, the set of "expected next" local block
	// indices of in-flight sequential streams on storage node s — a
	// multi-stream readahead detector (one file serves one stream per
	// client thread, so a single last-position would never fire).
	streams []streamTable
	// prefetches counts readahead fills performed.
	prefetches int64

	// workers is the intra-cell shard count requested via SetWorkers;
	// values ≤ 1 select the serial engine. The sharded engine additionally
	// falls back to serial when the run is ineligible (see newShardedRun).
	workers int
	// shardStats carries the last sharded run's diagnostics into
	// finishMetrics; nil after a serial run.
	shardStats *shardStats

	// faults is the resolved fault schedule; nil on a healthy platform.
	faults *fault.Schedule
	// rng drives the transient-error stream. serve runs serially inside
	// Run, so a single seeded source replays identically regardless of
	// how many runs execute concurrently on other Machines.
	rng *rand.Rand
	// Effective degraded-mode retry policy (ns), resolved from cfg with
	// the package defaults filling zero fields.
	maxRetries           int
	backoffNS, timeoutNS int64
	// Degraded-mode counters (see Report).
	retries, timeouts, degradedReads, failedOver int64

	// obs is the effective observer (machine-owned metrics teed with any
	// user observer); obsOn caches whether it is non-Nop so the healthy
	// hot path pays a single predictable branch per request.
	obs   obs.Observer
	obsOn bool
	// userObs is the observer registered via SetObserver, kept so the tee
	// can be rebuilt.
	userObs obs.Observer
	// metrics is the machine-owned collector behind Config.Metrics; its
	// snapshot lands on Report.Metrics.
	metrics *obs.Metrics
	// fileNames labels file ids with array names in metric snapshots.
	fileNames []string
	// lastEvictions is the hierarchy-wide eviction count at the previous
	// storm-detector sample (see evictionSampleEvery).
	lastEvictions int64
}

// SetFileBlocks records each file's length in blocks so readahead stops at
// end of file. Without it, readahead is unbounded (phantom blocks may
// pollute the storage caches).
func (m *Machine) SetFileBlocks(blocks []int64) {
	m.fileBlocks = append([]int64(nil), blocks...)
}

// SetWorkers sets the intra-cell shard count for subsequent runs: the
// simulation itself is partitioned by I/O and storage node across up to n
// concurrent workers (capped by the platform's node counts). n ≤ 1 — the
// default — runs the serial engine. Reports are byte-identical at every
// worker count; see sharded.go for the epoch scheduler and its
// determinism argument.
func (m *Machine) SetWorkers(n int) { m.workers = n }

// NewMachine builds the platform. For the "karma" policy, hints must be
// supplied (see GenerateHints); other policies ignore them.
func NewMachine(cfg Config, hints []cache.RangeHint) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == "" {
		cfg.Policy = "lru"
	}
	mgr, err := cache.NewByName(cfg.Policy, cfg.IONodes, cfg.StorageNodes,
		cfg.IOCacheBlocks, cfg.StorageCacheBlocks, hints)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:     cfg,
		striper: stripe.New(cfg.StorageNodes),
		mgr:     mgr,
		ioOf:    make([]int, cfg.Threads()),
	}
	for i := 0; i < cfg.StorageNodes; i++ {
		m.disks = append(m.disks, disk.New(cfg.Disk))
		m.streams = append(m.streams, streamTable{set: make(map[uint64]struct{})})
	}
	for t := range m.ioOf {
		m.ioOf[t] = cfg.IONodeOf(t)
	}
	if plan := cfg.FaultPlan(); !plan.Healthy() {
		if err := plan.Validate(cfg.StorageNodes); err != nil {
			return nil, err
		}
		m.faults = plan
		m.rng = rand.New(rand.NewSource(cfg.FaultSeed))
		m.maxRetries = cfg.MaxRetries
		if m.maxRetries == 0 {
			m.maxRetries = DefaultMaxRetries
		}
		m.backoffNS = 1000 * cfg.RetryBackoffUS
		if m.backoffNS == 0 {
			m.backoffNS = 1000 * DefaultRetryBackoffUS
		}
		m.timeoutNS = 1000 * cfg.RequestTimeoutUS
		if m.timeoutNS == 0 {
			m.timeoutNS = 1000 * DefaultRequestTimeoutUS
		}
	}
	if cfg.Metrics {
		m.metrics = obs.NewMetrics()
	}
	m.SetObserver(nil)
	return m, nil
}

// SetObserver registers o to receive the machine's profiling callbacks
// and structured events, teed with the machine-owned metrics collector
// when Config.Metrics is set; nil detaches the user observer. Observers
// are driven serially by this machine's virtual clock, so they need no
// locking and their output is bit-identical across host worker counts.
func (m *Machine) SetObserver(o obs.Observer) {
	m.userObs = o
	var eff obs.Observer
	if m.metrics != nil {
		eff = obs.Tee(m.metrics, o)
	} else {
		eff = obs.Tee(o)
	}
	m.obs = eff
	_, nop := eff.(obs.Nop)
	m.obsOn = !nop
	for i, d := range m.disks {
		if !m.obsOn {
			d.SetServiceHook(nil)
			continue
		}
		node := i
		d.SetServiceHook(func(serviceNS int64, sequential bool) {
			m.obs.DiskService(node, serviceNS, sequential)
		})
	}
}

// Metrics returns the machine-owned metrics collector, or nil when
// Config.Metrics is off. It keeps accumulating across Run calls.
func (m *Machine) Metrics() *obs.Metrics { return m.metrics }

// SetFileNames labels file ids with array names in metric snapshots;
// unlabeled files appear as "file<N>".
func (m *Machine) SetFileNames(names []string) {
	m.fileNames = append(m.fileNames[:0], names...)
	if m.metrics != nil {
		m.metrics.SetArrayNames(m.fileNames)
	}
}

// finishMetrics folds the machine's end-of-run state into the metrics
// collector and snapshots it onto the report.
func (m *Machine) finishMetrics(rep *Report) {
	m.metrics.SetArrayNames(m.fileNames)
	if len(m.fileBlocks) > 0 {
		primaries := make([]int64, m.cfg.StorageNodes)
		for _, nb := range m.fileBlocks {
			for i, c := range m.striper.Spread(nb) {
				primaries[i] += c
			}
		}
		m.metrics.SetNodePrimaryBlocks(primaries)
	}
	if nsr, ok := m.mgr.(cache.NodeStatsReporter); ok {
		m.metrics.SetCacheNodeStats(toCacheNodeStats(nsr.IONodeStats()), toCacheNodeStats(nsr.StorageNodeStats()))
	}
	// Registry counters mirror the machine's cumulative counters; Add the
	// delta so repeated Runs on one machine stay consistent.
	reg := m.metrics.Registry()
	for _, c := range []struct {
		name string
		val  int64
	}{
		{"prefetches", m.prefetches},
		{"retries", m.retries},
		{"timeouts", m.timeouts},
		{"degraded_reads", m.degradedReads},
		{"failed_over_blocks", m.failedOver},
		{"demotions", rep.Demotions},
	} {
		ctr := reg.Counter(c.name)
		ctr.Add(c.val - ctr.Value())
	}
	reg.Gauge("exec_time_us").Set(float64(rep.ExecTimeUS))
	if m.shardStats != nil {
		m.shardStats.publish(reg)
	}
	rep.Metrics = m.metrics.Snapshot()
}

// toCacheNodeStats mirrors cache.Stats into the obs package's dependency-
// free counter form.
func toCacheNodeStats(in []cache.Stats) []obs.CacheNodeStats {
	out := make([]obs.CacheNodeStats, len(in))
	for i, s := range in {
		out[i] = obs.CacheNodeStats{Accesses: s.Accesses, Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions}
	}
	return out
}

// Reset clears all caches, disks and counters for a fresh cold run. The
// transient-error stream is reseeded, so a Reset machine replays the same
// faults the next Run.
func (m *Machine) Reset() {
	m.mgr.Reset()
	for i, d := range m.disks {
		d.Reset()
		m.streams[i].reset()
	}
	m.prefetches = 0
	if m.faults != nil {
		m.rng = rand.New(rand.NewSource(m.cfg.FaultSeed))
	}
	m.retries, m.timeouts, m.degradedReads, m.failedOver = 0, 0, 0, 0
	m.lastEvictions = 0
}

// Simulate is the one-shot convenience wrapper: build a machine, run the
// traces cold, return the report.
func Simulate(cfg Config, traces []*trace.NestTrace, hints []cache.RangeHint) (*Report, error) {
	m, err := NewMachine(cfg, hints)
	if err != nil {
		return nil, err
	}
	return m.Run(traces)
}
