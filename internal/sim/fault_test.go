package sim

import (
	"reflect"
	"testing"

	"flopt/internal/fault"
	"flopt/internal/storage/cache"
	"flopt/internal/trace"
)

// faultConfig is smallConfig with deterministic fault injection enabled.
func faultConfig(intensity float64, seed int64) Config {
	c := smallConfig()
	c.FaultIntensity = intensity
	c.FaultSeed = seed
	return c
}

// reportsEqual compares the fields that must replay bit-identically.
func reportsEqual(a, b *Report) bool {
	if a.ExecTimeUS != b.ExecTimeUS || a.Accesses != b.Accesses ||
		a.IO != b.IO || a.Storage != b.Storage ||
		a.DiskReads != b.DiskReads || a.DiskSeqReads != b.DiskSeqReads ||
		a.DiskBusyUS != b.DiskBusyUS || a.Prefetches != b.Prefetches ||
		a.Retries != b.Retries || a.Timeouts != b.Timeouts ||
		a.DegradedReads != b.DegradedReads || a.FailedOverBlocks != b.FailedOverBlocks {
		return false
	}
	for i := range a.ThreadTimeUS {
		if a.ThreadTimeUS[i] != b.ThreadTimeUS[i] {
			return false
		}
	}
	return true
}

// expandTraces splits every compressed run entry into per-block accesses —
// the exact streams the per-element walker would have produced.
func expandTraces(traces []*trace.NestTrace) []*trace.NestTrace {
	out := make([]*trace.NestTrace, len(traces))
	for ni, nt := range traces {
		e := &trace.NestTrace{Streams: make([][]trace.Access, len(nt.Streams))}
		for th, s := range nt.Streams {
			e.Streams[th] = trace.ExpandStream(s)
		}
		out[ni] = e
	}
	return out
}

// TestRunCompressedSimulationIdentical is the end-to-end identity gate for
// run compression: simulating the compressed streams must replay
// bit-identically to simulating their expanded (walker-equivalent) form,
// for every cache policy, with and without fault injection, on both the
// default and the optimized layout.
func TestRunCompressedSimulationIdentical(t *testing.T) {
	// Nest 1 (single-ref row scan) produces runs under the default layout;
	// nest 2 (two interleaved refs) exercises the grouped multi-ref
	// emitter; nest 3 (column scan) produces runs once the layout is
	// optimized.
	const runScan = `
array A[64][64];
array B[64][64];
parallel(i) for i = 0 to 63 { for j = 0 to 63 { read A[i][j]; } }
parallel(i) for i = 0 to 63 { for j = 0 to 63 { read A[i][j]; read B[i][j]; } }
parallel(i) for i = 0 to 63 { for j = 0 to 63 { read B[j][i]; } }
`
	for _, optimized := range []bool{false, true} {
		base := smallConfig()
		ft, traces := buildTraces(t, runScan, base, optimized)
		expanded := expandTraces(traces)
		compressedSomething := false
		for ni := range traces {
			for th := range traces[ni].Streams {
				if len(traces[ni].Streams[th]) < len(expanded[ni].Streams[th]) {
					compressedSomething = true
				}
			}
		}
		if !compressedSomething {
			t.Fatalf("optimized=%v: no stream contains a run; identity test is vacuous", optimized)
		}
		for _, policy := range []string{"lru", "demote", "karma", "mq"} {
			for _, fc := range []struct {
				intensity float64
				seed      int64
			}{{0, 0}, {0.8, 12345}, {1, 99}} {
				cfg := faultConfig(fc.intensity, fc.seed)
				cfg.Policy = policy
				var hints, hintsExp []cache.RangeHint
				if policy == "karma" {
					hints = GenerateHints(cfg, ft, traces)
					hintsExp = GenerateHints(cfg, ft, expanded)
					if !reflect.DeepEqual(hints, hintsExp) {
						t.Fatalf("%s f=%.1f: hints differ between compressed and expanded traces", policy, fc.intensity)
					}
				}
				r1, err := Simulate(cfg, traces, hints)
				if err != nil {
					t.Fatalf("%s f=%.1f compressed: %v", policy, fc.intensity, err)
				}
				r2, err := Simulate(cfg, expanded, hintsExp)
				if err != nil {
					t.Fatalf("%s f=%.1f expanded: %v", policy, fc.intensity, err)
				}
				if !reportsEqual(r1, r2) {
					t.Errorf("optimized=%v policy=%s f=%.1f seed=%d: compressed and expanded runs diverge:\n%+v\n%+v",
						optimized, policy, fc.intensity, fc.seed, r1, r2)
				}
			}
		}
	}
}

func TestFaultReplayBitIdentical(t *testing.T) {
	cfg := faultConfig(0.8, 12345)
	_, traces := buildTraces(t, colScan, cfg, false)
	r1, err := Simulate(cfg, traces, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(cfg, traces, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reportsEqual(r1, r2) {
		t.Errorf("same fault seed produced different reports:\n%+v\n%+v", r1, r2)
	}
	// A different seed must (at this intensity) produce a different run —
	// otherwise the seed is not actually threaded through.
	r3, err := Simulate(faultConfig(0.8, 54321), traces, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reportsEqual(r1, r3) {
		t.Error("different fault seeds replayed identically")
	}
}

func TestFaultResetReplays(t *testing.T) {
	cfg := faultConfig(0.8, 7)
	_, traces := buildTraces(t, colScan, cfg, false)
	m, err := NewMachine(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := m.Run(traces)
	if err != nil {
		t.Fatal(err)
	}
	m.Reset()
	r2, err := m.Run(traces)
	if err != nil {
		t.Fatal(err)
	}
	if !reportsEqual(r1, r2) {
		t.Error("Reset machine did not replay the fault run")
	}
}

func TestFaultsSlowTheRun(t *testing.T) {
	cfg := smallConfig()
	_, traces := buildTraces(t, colScan, cfg, false)
	healthy, err := Simulate(cfg, traces, nil)
	if err != nil {
		t.Fatal(err)
	}
	degraded, err := Simulate(faultConfig(1, 99), traces, nil)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.ExecTimeUS <= healthy.ExecTimeUS {
		t.Errorf("full-intensity faults did not slow the run: %d vs %d µs",
			degraded.ExecTimeUS, healthy.ExecTimeUS)
	}
	if degraded.Accesses != healthy.Accesses {
		t.Errorf("faults changed the access count: %d vs %d", degraded.Accesses, healthy.Accesses)
	}
}

func TestFailoverOnNodeOutage(t *testing.T) {
	cfg := smallConfig() // 2 storage nodes
	cfg.FaultSchedule = &fault.Schedule{
		Nodes: []fault.NodeOutage{
			{Windows: []fault.Window{{StartNS: 0, EndNS: fault.NeverNS - 1}}},
		},
	}
	_, traces := buildTraces(t, colScan, cfg, false)
	rep, err := Simulate(cfg, traces, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedOverBlocks == 0 {
		t.Error("permanent node outage produced no failover")
	}
	// Every request owned by node 0 that left the I/O layer must have
	// been rerouted — the dead node's disk services nothing.
	if rep.Retries != 0 || rep.DegradedReads != 0 {
		t.Errorf("outage-only schedule produced retries=%d degraded=%d",
			rep.Retries, rep.DegradedReads)
	}
}

func TestTransientErrorsRetryAndDegrade(t *testing.T) {
	cfg := smallConfig()
	// Retry-heavy regime: every attempt fails, so every disk-path read
	// burns its retry budget and is served degraded. The run must still
	// terminate, with latency charged, not spin.
	cfg.FaultSchedule = &fault.Schedule{TransientErrorRate: 0.999}
	cfg.MaxRetries = 2
	_, traces := buildTraces(t, colScan, cfg, false)
	rep, err := Simulate(cfg, traces, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries == 0 || rep.Timeouts == 0 || rep.DegradedReads == 0 {
		t.Errorf("rate≈1 run: retries=%d timeouts=%d degraded=%d, all should be positive",
			rep.Retries, rep.Timeouts, rep.DegradedReads)
	}
	if rep.DegradedReads != rep.Timeouts {
		t.Errorf("every timeout must be served degraded: timeouts=%d degraded=%d",
			rep.Timeouts, rep.DegradedReads)
	}
	healthy, err := Simulate(smallConfig(), traces, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExecTimeUS <= healthy.ExecTimeUS {
		t.Error("retry storms did not cost virtual time")
	}
}

func TestFailSlowWindowCharged(t *testing.T) {
	cfg := smallConfig()
	cfg.FaultSchedule = &fault.Schedule{
		Disks: []fault.DiskFault{{
			SlowWindows: []fault.Window{{StartNS: 0, EndNS: fault.NeverNS - 1}},
			SlowFactor:  10,
			FailStopNS:  fault.NeverNS,
		}},
	}
	_, traces := buildTraces(t, colScan, cfg, false)
	slow, err := Simulate(cfg, traces, nil)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := Simulate(smallConfig(), traces, nil)
	if err != nil {
		t.Fatal(err)
	}
	if slow.ExecTimeUS <= healthy.ExecTimeUS {
		t.Errorf("10x fail-slow disk did not slow the run: %d vs %d µs",
			slow.ExecTimeUS, healthy.ExecTimeUS)
	}
	if slow.DiskBusyUS <= healthy.DiskBusyUS {
		t.Error("fail-slow service time not charged to the device")
	}
}

// TestNoPanicUnderAnySchedule sweeps seeds and intensities — including a
// single-storage-node platform with nowhere to fail over to — asserting
// the simulator always terminates with a sane report. The race tier runs
// this under -race.
func TestNoPanicUnderAnySchedule(t *testing.T) {
	for _, nodes := range []int{1, 2} {
		base := smallConfig()
		base.StorageNodes = nodes
		_, traces := buildTraces(t, colScan, base, false)
		for seed := int64(0); seed < 6; seed++ {
			for _, intensity := range []float64{0.2, 0.6, 1} {
				cfg := base
				cfg.FaultIntensity = intensity
				cfg.FaultSeed = seed
				rep, err := Simulate(cfg, traces, nil)
				if err != nil {
					t.Fatalf("nodes=%d seed=%d intensity=%v: %v", nodes, seed, intensity, err)
				}
				if rep.ExecTimeUS <= 0 || rep.Accesses <= 0 {
					t.Fatalf("nodes=%d seed=%d intensity=%v: degenerate report %+v",
						nodes, seed, intensity, rep)
				}
			}
		}
	}
}

// TestFaultPoliciesAndReadahead drives the degraded path through every
// cache policy and with readahead armed: speculation must skip dead nodes
// and the run must stay deterministic.
func TestFaultPoliciesAndReadahead(t *testing.T) {
	cfg := faultConfig(0.7, 3)
	cfg.ReadaheadBlocks = 2
	ft, traces := buildTraces(t, colScan, cfg, false)
	for _, pol := range []string{"lru", "demote", "karma"} {
		c := cfg
		c.Policy = pol
		r1, err := Simulate(c, traces, GenerateHints(c, ft, traces))
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		r2, err := Simulate(c, traces, GenerateHints(c, ft, traces))
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if !reportsEqual(r1, r2) {
			t.Errorf("%s: fault replay diverged", pol)
		}
	}
}

func TestHealthyPathUnchangedByFaultFields(t *testing.T) {
	// Intensity 0 with a seed set must behave exactly like the seedless
	// healthy platform: the fault machinery must not even be armed.
	cfg := smallConfig()
	_, traces := buildTraces(t, colScan, cfg, false)
	healthy, err := Simulate(cfg, traces, nil)
	if err != nil {
		t.Fatal(err)
	}
	seeded := cfg
	seeded.FaultSeed = 42
	r, err := Simulate(seeded, traces, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reportsEqual(healthy, r) {
		t.Error("fault seed with zero intensity changed the healthy run")
	}
	if r.Retries != 0 || r.Timeouts != 0 || r.DegradedReads != 0 || r.FailedOverBlocks != 0 {
		t.Errorf("healthy run reported degraded activity: %+v", r)
	}
}

func TestConfigValidateFaultFields(t *testing.T) {
	base := smallConfig()
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"intensity > 1", func(c *Config) { c.FaultIntensity = 1.5 }},
		{"negative intensity", func(c *Config) { c.FaultIntensity = -0.1 }},
		{"negative retries", func(c *Config) { c.MaxRetries = -1 }},
		{"negative backoff", func(c *Config) { c.RetryBackoffUS = -5 }},
		{"negative timeout", func(c *Config) { c.RequestTimeoutUS = -5 }},
		{"oversized schedule", func(c *Config) {
			c.FaultSchedule = &fault.Schedule{Nodes: make([]fault.NodeOutage, 99)}
		}},
		{"zero RPM", func(c *Config) { c.Disk.RPM = 0 }},
		{"zero seek", func(c *Config) { c.Disk.AvgSeekNS = 0 }},
		{"negative transfer", func(c *Config) { c.Disk.TransferNSPerBlock = -1 }},
	} {
		c := base
		tc.mutate(&c)
		if c.Validate() == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base config rejected: %v", err)
	}
}

// TestFaultStreamMismatchStillErrors keeps the error path intact with the
// fault machinery armed.
func TestFaultStreamMismatchStillErrors(t *testing.T) {
	cfg := faultConfig(0.5, 1)
	nt := &trace.NestTrace{Streams: make([][]trace.Access, 3)}
	if _, err := Simulate(cfg, []*trace.NestTrace{nt}, nil); err == nil {
		t.Error("stream/thread mismatch accepted under faults")
	}
}
