// Package sim is the evaluation platform of the reproduction: a
// deterministic, trace-driven discrete-event simulator of the three-tier
// cluster of Fig. 1 — compute nodes running threads, I/O nodes with storage
// caches, and storage nodes with caches and disks behind a PVFS-style
// striped file system. It substitutes for the paper's physical Linux
// cluster (see DESIGN.md §2).
package sim

import (
	"errors"
	"fmt"

	"flopt/internal/fault"
	"flopt/internal/layout"
	"flopt/internal/parallel"
	"flopt/internal/storage/disk"
)

// ErrBadConfig is the sentinel wrapped by every Validate error: match
// configuration problems with errors.Is(err, sim.ErrBadConfig) instead of
// string inspection.
var ErrBadConfig = errors.New("sim: invalid configuration")

// Config describes one platform instance. Capacities are in blocks; the
// block is both the cache management unit and the stripe unit (Table 1).
type Config struct {
	ComputeNodes int
	IONodes      int
	StorageNodes int
	// ThreadsPerCompute is 1 in the paper's default execution.
	ThreadsPerCompute int

	// BlockElems is the data block size in array elements.
	BlockElems int64
	// IOCacheBlocks / StorageCacheBlocks are per-cache capacities.
	IOCacheBlocks      int
	StorageCacheBlocks int

	Disk disk.Params

	// Per-hop latencies in microseconds.
	NetCIUS    int64 // compute node ↔ I/O node, per block
	NetISUS    int64 // I/O node ↔ storage node, per block
	CacheSvcUS int64 // cache lookup/service
	// CPUPerElemNS is the compute cost charged per array element touched,
	// modeling the computation interleaved with I/O. It is independent of
	// the file layout (the same elements are touched regardless of how
	// they are packed into blocks).
	CPUPerElemNS int64

	// Policy is the cache-hierarchy management scheme: "lru" (inclusive,
	// the default), "demote", or "karma".
	Policy string
	// ReadaheadBlocks enables storage-node readahead: each demand disk
	// read also pulls the next N sequential blocks of the file into the
	// storage cache (0 = off, the paper's base platform). The paper notes
	// the optimized layouts "can also help improve the effectiveness of
	// hardware I/O prefetching"; see exp.Prefetch.
	ReadaheadBlocks int
	// HintRangesPerFile controls KARMA hint granularity.
	HintRangesPerFile int

	// Mapping assigns threads to compute nodes (Fig. 7(b)); nil means the
	// identity mapping.
	Mapping *parallel.Mapping

	// FaultIntensity in [0, 1] enables deterministic fault injection: a
	// fault schedule (fail-slow and fail-stop disks, storage-node
	// outages, transient read errors) is generated from FaultSeed at this
	// intensity. 0 is the healthy platform.
	FaultIntensity float64
	// FaultSeed seeds both the schedule generation and the per-run
	// transient-error stream; identical seeds replay bit-identical runs.
	FaultSeed int64
	// FaultSchedule, when non-nil, is used verbatim instead of generating
	// one from (FaultSeed, FaultIntensity).
	FaultSchedule *fault.Schedule

	// MaxRetries bounds the retry attempts after a transient disk read
	// error (0 means the DefaultMaxRetries policy; negative is invalid).
	MaxRetries int
	// RetryBackoffUS is the base of the capped exponential backoff
	// between retries (0 means DefaultRetryBackoffUS).
	RetryBackoffUS int64
	// RequestTimeoutUS is the per-request deadline; when it expires the
	// read is served degraded from the replica stripe (0 means
	// DefaultRequestTimeoutUS).
	RequestTimeoutUS int64

	// Metrics attaches a machine-owned obs.Metrics collector to every run:
	// per-layer hit breakdowns keyed by array and thread, device service
	// histograms, and the structured event stream, snapshotted onto
	// Report.Metrics. Off by default — the healthy hot path then pays only
	// a single predictable branch per request.
	Metrics bool
}

// Default degraded-mode retry policy, applied where the corresponding
// Config field is zero: up to 4 retries, 500 µs base backoff (doubling,
// capped at 8× the base), 50 ms request deadline — a deadline a few times
// the positioned service time of the default disk, so a healthy queue
// never trips it.
const (
	DefaultMaxRetries       = 4
	DefaultRetryBackoffUS   = int64(500)
	DefaultRequestTimeoutUS = int64(50_000)
)

// FaultPlan resolves the effective fault schedule: the explicit
// FaultSchedule if set, a generated one if FaultIntensity > 0, nil when
// healthy.
func (c Config) FaultPlan() *fault.Schedule {
	if c.FaultSchedule != nil {
		return c.FaultSchedule
	}
	if c.FaultIntensity > 0 {
		return fault.Generate(c.FaultSeed, c.StorageNodes, c.FaultIntensity)
	}
	return nil
}

// DefaultConfig mirrors Table 1 at the simulator's element scale: the
// (64, 16, 4) node configuration, one thread per compute node, a
// storage cache twice the I/O cache, and caches small relative to the
// out-of-core working sets of the workloads.
func DefaultConfig() Config {
	return Config{
		ComputeNodes:       64,
		IONodes:            16,
		StorageNodes:       4,
		ThreadsPerCompute:  1,
		BlockElems:         64,
		IOCacheBlocks:      64,
		StorageCacheBlocks: 128,
		Disk:               disk.DefaultParams(),
		// Moving one 128 kB block over a shared gigabit-class link costs
		// on the order of a millisecond; these hop costs set the cache-hit
		// service time and keep the disk-miss penalty ratio in the range a
		// PVFS deployment actually sees (~an order of magnitude).
		NetCIUS:           800,
		NetISUS:           800,
		CacheSvcUS:        100,
		CPUPerElemNS:      400,
		Policy:            "lru",
		HintRangesPerFile: 64,
	}
}

// Threads returns the total thread count.
func (c Config) Threads() int { return c.ComputeNodes * c.ThreadsPerCompute }

// Validate checks the configuration for structural consistency. Every
// error it returns wraps ErrBadConfig.
func (c Config) Validate() error {
	if c.ComputeNodes < 1 || c.IONodes < 1 || c.StorageNodes < 1 {
		return fmt.Errorf("%w: node counts must be positive: (%d, %d, %d)",
			ErrBadConfig, c.ComputeNodes, c.IONodes, c.StorageNodes)
	}
	if c.ComputeNodes%c.IONodes != 0 {
		return fmt.Errorf("%w: compute nodes (%d) must be a multiple of I/O nodes (%d)",
			ErrBadConfig, c.ComputeNodes, c.IONodes)
	}
	if c.ThreadsPerCompute < 1 {
		return fmt.Errorf("%w: threads per compute node must be ≥ 1", ErrBadConfig)
	}
	if c.BlockElems < 1 {
		return fmt.Errorf("%w: block size must be ≥ 1 element", ErrBadConfig)
	}
	if c.IOCacheBlocks < 0 || c.StorageCacheBlocks < 0 {
		return fmt.Errorf("%w: cache capacities must be non-negative", ErrBadConfig)
	}
	if err := c.Disk.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if c.FaultIntensity < 0 || c.FaultIntensity > 1 {
		return fmt.Errorf("%w: fault intensity %v outside [0, 1]", ErrBadConfig, c.FaultIntensity)
	}
	if err := c.FaultSchedule.Validate(c.StorageNodes); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("%w: negative retry limit %d", ErrBadConfig, c.MaxRetries)
	}
	if c.RetryBackoffUS < 0 || c.RequestTimeoutUS < 0 {
		return fmt.Errorf("%w: negative retry backoff (%d µs) or request timeout (%d µs)",
			ErrBadConfig, c.RetryBackoffUS, c.RequestTimeoutUS)
	}
	if c.Mapping != nil {
		if c.Mapping.Len() != c.Threads() {
			return fmt.Errorf("%w: mapping covers %d threads, platform has %d",
				ErrBadConfig, c.Mapping.Len(), c.Threads())
		}
		if err := c.Mapping.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
	}
	return nil
}

// IONodeOf returns the I/O node serving thread t: compute nodes are
// assigned to I/O nodes in contiguous groups (the pset organization of
// §2), and threads to compute nodes by the configured mapping.
func (c Config) IONodeOf(t int) int {
	slot := t
	if c.Mapping != nil {
		slot = c.Mapping.Node(t) // mapping permutes threads across slots
	}
	node := slot / c.ThreadsPerCompute
	return node / (c.ComputeNodes / c.IONodes)
}

// LayoutHierarchy converts the platform's cache topology into the
// optimizer's hierarchy description. Only the I/O and storage layers carry
// caches (as in the paper's evaluation); pass targetIO/targetStorage to
// restrict the optimization to a single layer (Fig. 7(f)).
func (c Config) LayoutHierarchy(targetIO, targetStorage bool) (layout.Hierarchy, error) {
	if !targetIO && !targetStorage {
		return layout.Hierarchy{}, fmt.Errorf("sim: at least one layer must be targeted")
	}
	threadsPerIO := c.Threads() / c.IONodes
	// Files are striped round-robin across every storage node, so the
	// storage layer behaves as one aggregated cache shared by all I/O
	// nodes rather than a per-subtree parent (the tree of Fig. 6(c) is
	// the special case of one storage node).
	aggStorage := int64(c.StorageCacheBlocks) * c.BlockElems * int64(c.StorageNodes)
	ioCap := int64(c.IOCacheBlocks) * c.BlockElems
	var levels []layout.Level
	switch {
	case targetIO && targetStorage:
		levels = []layout.Level{
			{Name: "io", CapacityElems: ioCap, Fanout: threadsPerIO},
			{Name: "storage", CapacityElems: aggStorage, Fanout: c.IONodes},
		}
	case targetIO:
		// A structural top level with fanout covering the remaining
		// threads keeps the pattern aware of all threads while the chunk
		// sizing and interleaving target the I/O layer only.
		levels = []layout.Level{
			{Name: "io", CapacityElems: ioCap, Fanout: threadsPerIO},
			{Name: "rest", CapacityElems: ioCap * int64(c.IONodes), Fanout: c.IONodes},
		}
	default: // storage only
		levels = []layout.Level{
			{Name: "storage", CapacityElems: aggStorage, Fanout: c.Threads()},
		}
	}
	return layout.Hierarchy{Levels: levels}, nil
}
