package sim

import (
	"testing"

	"flopt/internal/lang"
	"flopt/internal/layout"
	"flopt/internal/parallel"
	"flopt/internal/poly"
	"flopt/internal/trace"
)

// smallConfig is a 8-thread platform for fast tests.
func smallConfig() Config {
	c := DefaultConfig()
	c.ComputeNodes = 8
	c.IONodes = 4
	c.StorageNodes = 2
	c.BlockElems = 8
	c.IOCacheBlocks = 8
	c.StorageCacheBlocks = 16
	return c
}

func buildTraces(t *testing.T, src string, cfg Config, optimized bool) (*trace.FileTable, []*trace.NestTrace) {
	t.Helper()
	p, err := lang.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	plans := make(map[*poly.LoopNest]*parallel.Plan)
	var layouts map[string]layout.Layout
	if optimized {
		h, err := cfg.LayoutHierarchy(true, true)
		if err != nil {
			t.Fatal(err)
		}
		res, err := layout.Optimize(p, layout.Options{Hierarchy: h, BlockElems: cfg.BlockElems})
		if err != nil {
			t.Fatal(err)
		}
		layouts = res.Layouts
		plans = res.Plans
	} else {
		layouts = layout.DefaultLayouts(p)
		for _, n := range p.Nests {
			plan, err := parallel.NewPlan(n, cfg.Threads(), 1)
			if err != nil {
				t.Fatal(err)
			}
			plans[n] = plan
		}
	}
	ft, err := trace.NewFileTable(p, layouts)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := trace.Generate(p, plans, ft, cfg.BlockElems, cfg.Threads())
	if err != nil {
		t.Fatal(err)
	}
	return ft, traces
}

const colScan = `
array B[64][64];
parallel(i) for i = 0 to 63 { for j = 0 to 63 { read B[j][i]; } }
`

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	c := DefaultConfig()
	c.IONodes = 5 // 64 % 5 != 0
	if c.Validate() == nil {
		t.Error("non-divisible io nodes accepted")
	}
	c = DefaultConfig()
	c.ComputeNodes = 0
	if c.Validate() == nil {
		t.Error("zero compute nodes accepted")
	}
	c = DefaultConfig()
	m := parallel.IdentityMapping(8) // wrong size
	c.Mapping = &m
	if c.Validate() == nil {
		t.Error("mis-sized mapping accepted")
	}
}

func TestIONodeRouting(t *testing.T) {
	c := smallConfig() // 8 threads, 4 io nodes → 2 threads per io node
	want := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for th, w := range want {
		if got := c.IONodeOf(th); got != w {
			t.Errorf("IONodeOf(%d) = %d, want %d", th, got, w)
		}
	}
	m := parallel.PermutedMapping("II", 8, 42)
	c.Mapping = &m
	// Routing must follow the permutation.
	for th := 0; th < 8; th++ {
		if got, want := c.IONodeOf(th), m.Node(th)/2; got != want {
			t.Errorf("mapped IONodeOf(%d) = %d, want %d", th, got, want)
		}
	}
}

func TestLayoutHierarchy(t *testing.T) {
	c := smallConfig()
	h, err := c.LayoutHierarchy(true, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Levels) != 2 || h.Threads() != 8 {
		t.Fatalf("hierarchy = %+v", h)
	}
	if h.Levels[0].Fanout != 2 || h.Levels[1].Fanout != 4 {
		t.Errorf("fanouts = %d, %d", h.Levels[0].Fanout, h.Levels[1].Fanout)
	}
	if h.Levels[0].CapacityElems != int64(c.IOCacheBlocks)*c.BlockElems {
		t.Error("capacity conversion wrong")
	}
	for _, tc := range []struct{ io, st bool }{{true, false}, {false, true}} {
		h, err := c.LayoutHierarchy(tc.io, tc.st)
		if err != nil {
			t.Fatal(err)
		}
		if h.Threads() != 8 {
			t.Errorf("single-layer hierarchy covers %d threads", h.Threads())
		}
	}
	if _, err := c.LayoutHierarchy(false, false); err == nil {
		t.Error("no-layer hierarchy accepted")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := smallConfig()
	_, traces := buildTraces(t, colScan, cfg, false)
	r1, err := Simulate(cfg, traces, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(cfg, traces, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExecTimeUS != r2.ExecTimeUS || r1.IO != r2.IO || r1.Storage != r2.Storage {
		t.Error("simulation is not deterministic")
	}
	if r1.ExecTimeUS <= 0 || r1.Accesses <= 0 {
		t.Errorf("degenerate report: %+v", r1)
	}
}

func TestOptimizedLayoutBeatsDefault(t *testing.T) {
	cfg := smallConfig()
	_, defTraces := buildTraces(t, colScan, cfg, false)
	_, optTraces := buildTraces(t, colScan, cfg, true)
	defRep, err := Simulate(cfg, defTraces, nil)
	if err != nil {
		t.Fatal(err)
	}
	optRep, err := Simulate(cfg, optTraces, nil)
	if err != nil {
		t.Fatal(err)
	}
	if optRep.ExecTimeUS >= defRep.ExecTimeUS {
		t.Errorf("optimized (%d µs) should beat default (%d µs) on a column scan",
			optRep.ExecTimeUS, defRep.ExecTimeUS)
	}
	if optRep.Accesses >= defRep.Accesses {
		t.Errorf("optimized should coalesce more: %d vs %d accesses",
			optRep.Accesses, defRep.Accesses)
	}
}

func TestBarrierBetweenNests(t *testing.T) {
	src := `
array A[64][64];
parallel(i) for i = 0 to 63 { for j = 0 to 63 { read A[i][j]; } }
parallel(i) for i = 0 to 63 { for j = 0 to 63 { read A[i][j]; } }
`
	cfg := smallConfig()
	// Size the caches so a thread's working set fits and the second nest
	// can reuse it.
	cfg.IOCacheBlocks = 256
	cfg.StorageCacheBlocks = 512
	_, traces := buildTraces(t, src, cfg, false)
	if len(traces) != 2 {
		t.Fatalf("nest traces = %d", len(traces))
	}
	rep, err := Simulate(cfg, traces, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The second pass should hit caches warmed by the first; total
	// execution must still exceed the single-nest time.
	single, err := Simulate(cfg, traces[:1], nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExecTimeUS <= single.ExecTimeUS {
		t.Error("two nests cannot be faster than one")
	}
	if rep.IO.Hits <= single.IO.Hits {
		t.Error("second pass should add cache hits")
	}
}

func TestPolicies(t *testing.T) {
	cfg := smallConfig()
	ft, traces := buildTraces(t, colScan, cfg, false)
	for _, pol := range []string{"lru", "demote", "karma"} {
		c := cfg
		c.Policy = pol
		rep, err := Simulate(c, traces, GenerateHints(c, ft, traces))
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if rep.ExecTimeUS <= 0 {
			t.Errorf("%s: no time elapsed", pol)
		}
		if rep.PolicyName == "" {
			t.Errorf("%s: no policy name", pol)
		}
	}
}

func TestMachineResetAndWarmth(t *testing.T) {
	cfg := smallConfig()
	_, traces := buildTraces(t, colScan, cfg, false)
	m, err := NewMachine(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := m.Run(traces)
	if err != nil {
		t.Fatal(err)
	}
	m.Reset()
	r2, err := m.Run(traces)
	if err != nil {
		t.Fatal(err)
	}
	if r1.IO.Hits != r2.IO.Hits {
		t.Error("reset did not restore cold state")
	}
}

func TestReportMetrics(t *testing.T) {
	cfg := smallConfig()
	_, traces := buildTraces(t, colScan, cfg, false)
	rep, err := Simulate(cfg, traces, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.IOMissRate() <= 0 || rep.IOMissRate() > 1 {
		t.Errorf("io miss rate = %f", rep.IOMissRate())
	}
	if rep.DiskReads != rep.Storage.Misses {
		t.Errorf("disk reads (%d) should equal storage misses (%d)", rep.DiskReads, rep.Storage.Misses)
	}
	if len(rep.ThreadTimeUS) != cfg.Threads() {
		t.Error("thread times missing")
	}
	max := int64(0)
	for _, v := range rep.ThreadTimeUS {
		if v > max {
			max = v
		}
	}
	if rep.ExecTimeUS != max {
		t.Error("exec time is not the max thread time")
	}
}

func TestStreamCountMismatch(t *testing.T) {
	cfg := smallConfig()
	nt := &trace.NestTrace{Streams: make([][]trace.Access, 3)}
	if _, err := Simulate(cfg, []*trace.NestTrace{nt}, nil); err == nil {
		t.Error("stream/thread mismatch accepted")
	}
}

func TestGenerateHints(t *testing.T) {
	cfg := smallConfig()
	cfg.HintRangesPerFile = 4
	ft, traces := buildTraces(t, colScan, cfg, false)
	hints := GenerateHints(cfg, ft, traces)
	if len(hints) == 0 {
		t.Fatal("no hints")
	}
	var total float64
	covered := int64(0)
	for _, h := range hints {
		if h.End <= h.Start {
			t.Errorf("empty range hint %+v", h)
		}
		covered += h.Blocks()
		total += h.TotalFreq()
	}
	if covered != ft.Blocks(0, cfg.BlockElems) {
		t.Errorf("hints cover %d blocks, file has %d", covered, ft.Blocks(0, cfg.BlockElems))
	}
	var accs int64
	for _, nt := range traces {
		accs += nt.TotalAccesses()
	}
	if int64(total) != accs {
		t.Errorf("hint frequency mass %f ≠ accesses %d", total, accs)
	}
}

func TestReadaheadArmsOnStreams(t *testing.T) {
	cfg := smallConfig()
	cfg.ReadaheadBlocks = 2
	// A single-thread sequential scan: blocks 0,1,2,… of one file. The
	// second consecutive miss arms readahead.
	nt := &trace.NestTrace{Streams: make([][]trace.Access, cfg.Threads())}
	for b := int64(0); b < 32; b++ {
		nt.Streams[0] = append(nt.Streams[0], trace.Access{File: 0, Block: b, Elems: 1})
	}
	m, err := NewMachine(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.SetFileBlocks([]int64{32})
	rep, err := m.Run([]*trace.NestTrace{nt})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Prefetches == 0 {
		t.Error("sequential stream did not arm readahead")
	}
	// Prefetched blocks must convert later demand misses into storage
	// hits: with readahead the storage level sees hits it cannot get cold.
	if rep.Storage.Hits == 0 {
		t.Error("prefetched blocks never hit")
	}
	// Readahead never runs past end of file.
	if rep.Prefetches > 32 {
		t.Errorf("prefetches = %d beyond file size", rep.Prefetches)
	}
}

func TestReadaheadOffByDefault(t *testing.T) {
	cfg := smallConfig()
	_, traces := buildTraces(t, colScan, cfg, false)
	rep, err := Simulate(cfg, traces, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Prefetches != 0 {
		t.Errorf("prefetches = %d with readahead disabled", rep.Prefetches)
	}
}

func TestReadaheadKarmaIgnores(t *testing.T) {
	cfg := smallConfig()
	cfg.Policy = "karma"
	cfg.ReadaheadBlocks = 4
	ft, traces := buildTraces(t, colScan, cfg, false)
	m, err := NewMachine(cfg, GenerateHints(cfg, ft, traces))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(traces)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Prefetches != 0 {
		t.Errorf("KARMA accepted %d readahead fills", rep.Prefetches)
	}
}
