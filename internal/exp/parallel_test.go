package exp

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"flopt/internal/sim"
	"flopt/internal/trace"
)

// assertTablesIdentical compares two tables cell-for-cell with exact
// float equality — the parallel harness must be bit-identical to serial.
func assertTablesIdentical(t *testing.T, serial, par *Table) {
	t.Helper()
	if len(serial.Rows) != len(par.Rows) {
		t.Fatalf("row count: serial %d, parallel %d", len(serial.Rows), len(par.Rows))
	}
	for i := range serial.Rows {
		if serial.Rows[i].App != par.Rows[i].App {
			t.Fatalf("row %d app: serial %q, parallel %q", i, serial.Rows[i].App, par.Rows[i].App)
		}
		for c := range serial.Rows[i].Values {
			sv, pv := serial.Rows[i].Values[c], par.Rows[i].Values[c]
			if sv != pv {
				t.Errorf("cell (%s, col %d): serial %v, parallel %v", serial.Rows[i].App, c, sv, pv)
			}
		}
	}
	for c := range serial.Average {
		if serial.Average[c] != par.Average[c] {
			t.Errorf("average col %d: serial %v, parallel %v", c, serial.Average[c], par.Average[c])
		}
	}
}

// TestParallelSerialIdenticalTables proves the determinism guarantee: a
// table generated with Parallel=1 and Parallel=8 is cell-for-cell
// identical. Short mode restricts the grid to four applications; the full
// run regenerates Table 2 both ways.
func TestParallelSerialIdenticalTables(t *testing.T) {
	apps := Apps()
	if testing.Short() {
		apps = apps[:4]
	}
	cfg := sim.DefaultConfig()
	build := func(par int) *Table {
		r := NewRunner()
		r.Parallel = par
		tab := &Table{Columns: []string{"io-miss%", "st-miss%", "exec(s)"}}
		err := buildRows(context.Background(), r, tab, apps, func(app string) ([]float64, error) {
			rep, err := r.Run(app, cfg, SchemeDefault)
			if err != nil {
				return nil, err
			}
			return []float64{
				100 * rep.IOMissRate(), 100 * rep.StorageMissRate(), float64(rep.ExecTimeUS) / 1e6,
			}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		tab.FillAverages()
		return tab
	}
	assertTablesIdentical(t, build(1), build(8))
}

// TestFaultReplayAcrossWorkerCounts extends the determinism guarantee to
// fault injection (ISSUE 2 satellite): with a fixed fault seed, the table
// of execution times and degraded-mode counters is cell-for-cell identical
// whether built serially or with 8 workers, and rebuilding with the same
// runner replays the same values. The fault rng lives in the per-run
// Machine, so worker scheduling can never perturb it.
func TestFaultReplayAcrossWorkerCounts(t *testing.T) {
	apps := Apps()[:3]
	cfg := sim.DefaultConfig()
	cfg.FaultIntensity = 0.8
	cfg.FaultSeed = 42
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	build := func(r *Runner) *Table {
		tab := &Table{Columns: []string{"exec(s)", "exec-inter(s)", "retries", "timeouts", "degraded", "failover"}}
		err := buildRows(context.Background(), r, tab, apps, func(app string) ([]float64, error) {
			rep, err := r.Run(app, cfg, SchemeDefault)
			if err != nil {
				return nil, err
			}
			// The optimized layout emits the longest compressed runs, so it
			// also pins run-aware fault replay across worker counts.
			repI, err := r.Run(app, cfg, SchemeInter)
			if err != nil {
				return nil, err
			}
			return []float64{
				float64(rep.ExecTimeUS) / 1e6,
				float64(repI.ExecTimeUS) / 1e6,
				float64(rep.Retries), float64(rep.Timeouts),
				float64(rep.DegradedReads), float64(rep.FailedOverBlocks),
			}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		tab.FillAverages()
		return tab
	}
	serial := NewRunner()
	serial.Parallel = 1
	par := NewRunner()
	par.Parallel = 8
	ref := build(serial)
	assertTablesIdentical(t, ref, build(par))
	// Same runner, second build: the prep cache is warm now, yet the
	// fault replay must still be bit-identical.
	assertTablesIdentical(t, ref, build(par))
}

// TestFaultSweepShape smoke-tests the fault-sweep experiment on a reduced
// app set via the row builder: each intensity column is filled and the
// degraded-mode counters at full intensity are non-zero for at least one
// app (the sweep would be vacuous on an always-healthy platform).
func TestFaultSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep runs each app at four intensities")
	}
	r := NewRunner()
	cfg := sim.DefaultConfig()
	cfg.FaultSeed = 7
	tab, err := FaultSweep(context.Background(), r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(Apps()) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(Apps()))
	}
	var anyDegraded bool
	for _, row := range tab.Rows {
		if len(row.Values) != len(tab.Columns) {
			t.Fatalf("%s: %d values for %d columns", row.App, len(row.Values), len(tab.Columns))
		}
		// Columns beyond the four improvement figures are the
		// degraded-mode rates at intensity 1.
		for _, v := range row.Values[4:] {
			if v > 0 {
				anyDegraded = true
			}
		}
	}
	if !anyDegraded {
		t.Error("no app recorded any degraded-mode activity at intensity 1")
	}
}

// TestRunnerConcurrentRuns exercises Runner.Run from many goroutines at
// once (the -race companion of the worker pool): every concurrent repeat
// of the same (app, scheme) cell must report the same execution time, and
// the singleflight cache must hold one preparation per key.
func TestRunnerConcurrentRuns(t *testing.T) {
	r := NewRunner()
	cfg := sim.DefaultConfig()
	apps := []string{"swim", "qio"}
	schemes := []Scheme{SchemeDefault, SchemeInter}

	var mu sync.Mutex
	got := map[string][]int64{}
	var wg sync.WaitGroup
	for round := 0; round < 2; round++ {
		for _, app := range apps {
			for _, s := range schemes {
				wg.Add(1)
				go func(app string, s Scheme) {
					defer wg.Done()
					rep, err := r.Run(app, cfg, s)
					if err != nil {
						t.Errorf("%s/%s: %v", app, s, err)
						return
					}
					key := app + "/" + string(s)
					mu.Lock()
					got[key] = append(got[key], rep.ExecTimeUS)
					mu.Unlock()
				}(app, s)
			}
		}
	}
	wg.Wait()
	for key, times := range got {
		for _, exec := range times {
			if exec != times[0] {
				t.Errorf("%s: divergent concurrent results %v", key, times)
			}
		}
	}
	if n := r.cachedPreps(); n != len(apps)*len(schemes) {
		t.Errorf("cached preps = %d, want %d (one per key, shared by singleflight)", n, len(apps)*len(schemes))
	}
}

// TestPrepLRUEviction checks the bounded prep cache evicts the least
// recently used completed entry — not a recently touched one, and never an
// in-flight one.
func TestPrepLRUEviction(t *testing.T) {
	r := NewRunner()
	key := func(i int) prepKey { return prepKey{app: fmt.Sprintf("a%d", i)} }
	for i := 0; i < maxPreps; i++ {
		r.seq++
		r.preps[key(i)] = &prepCall{finished: true, lastUse: r.seq}
	}
	// Touch the oldest entry so a1 becomes the LRU victim.
	r.seq++
	r.preps[key(0)].lastUse = r.seq

	r.mu.Lock()
	r.evictLocked()
	r.mu.Unlock()
	if len(r.preps) != maxPreps-1 {
		t.Fatalf("preps = %d after eviction, want %d", len(r.preps), maxPreps-1)
	}
	if _, ok := r.preps[key(1)]; ok {
		t.Error("least recently used entry a1 survived eviction")
	}
	if _, ok := r.preps[key(0)]; !ok {
		t.Error("recently touched entry a0 was evicted")
	}

	// In-flight preparations are never evicted: mark everything
	// unfinished and check eviction leaves the cache alone.
	for _, c := range r.preps {
		c.finished = false
	}
	r.preps[key(1)] = &prepCall{finished: false, lastUse: 0}
	r.mu.Lock()
	r.evictLocked()
	r.mu.Unlock()
	if len(r.preps) != maxPreps {
		t.Errorf("in-flight entries were evicted: preps = %d, want %d", len(r.preps), maxPreps)
	}
}

// TestPrepRecycleDeferredToRelease checks the buffer-pool safety contract:
// evicting a preparation that a simulation still references must not
// recycle its stream buffers; the recycle happens at the final release.
func TestPrepRecycleDeferredToRelease(t *testing.T) {
	r := NewRunner()
	nt := &trace.NestTrace{Streams: [][]trace.Access{make([]trace.Access, 4, 8)}}
	victim := &prepCall{finished: true, refs: 1, lastUse: 0,
		pr: &prep{traces: []*trace.NestTrace{nt}}}
	r.preps[prepKey{app: "victim"}] = victim
	for i := 1; i < maxPreps; i++ {
		r.preps[prepKey{app: fmt.Sprintf("a%d", i)}] = &prepCall{finished: true, lastUse: uint64(i)}
	}

	r.mu.Lock()
	r.evictLocked()
	r.mu.Unlock()
	if _, ok := r.preps[prepKey{app: "victim"}]; ok {
		t.Fatal("LRU victim survived eviction")
	}
	if !victim.evicted {
		t.Fatal("evicted flag not set")
	}
	if victim.pr == nil || nt.Streams[0] == nil {
		t.Fatal("stream buffers recycled while still referenced")
	}

	r.release(victim)
	if victim.pr != nil {
		t.Error("final release of an evicted prep did not recycle it")
	}
	if nt.Streams[0] != nil {
		t.Error("stream buffer not returned to the pool")
	}
	if buf := r.pool.Get(); buf == nil || cap(buf) != 8 {
		t.Errorf("pool did not receive the recycled buffer (got %v)", buf)
	}
}

// TestWorkersResolution pins the Parallel-field semantics the flags rely
// on: 0 = GOMAXPROCS default, explicit values pass through.
func TestWorkersResolution(t *testing.T) {
	r := NewRunner()
	if r.workers() < 1 {
		t.Errorf("default workers = %d, want ≥ 1", r.workers())
	}
	r.Parallel = 1
	if r.workers() != 1 {
		t.Errorf("workers = %d with Parallel=1", r.workers())
	}
	r.Parallel = 7
	if r.workers() != 7 {
		t.Errorf("workers = %d with Parallel=7", r.workers())
	}
}

// TestForEachIndexError checks the pool reports the lowest failing index's
// error regardless of worker count.
func TestForEachIndexError(t *testing.T) {
	for _, par := range []int{1, 4} {
		err := ForEachIndex(context.Background(), par, 8, func(i int) error {
			if i >= 3 {
				return fmt.Errorf("fail-%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail-3" {
			t.Errorf("par=%d: err = %v, want fail-3", par, err)
		}
	}
	if err := ForEachIndex(context.Background(), 4, 0, func(int) error { return nil }); err != nil {
		t.Errorf("empty range: %v", err)
	}
}
