package exp

import (
	"context"
	"fmt"
	"strings"

	"flopt/internal/parallel"
	"flopt/internal/sim"
	"flopt/internal/workloads"
)

// Apps returns the evaluated application names (Table 2 order).
func Apps() []string { return workloads.Names() }

// Table1 renders the platform parameters (paper Table 1).
func Table1(cfg sim.Config) string {
	var b strings.Builder
	b.WriteString("=== Table 1: major system parameters (simulated platform) ===\n")
	rows := [][2]string{
		{"Number of compute nodes", fmt.Sprintf("%d", cfg.ComputeNodes)},
		{"Number of I/O nodes", fmt.Sprintf("%d", cfg.IONodes)},
		{"Number of storage nodes", fmt.Sprintf("%d", cfg.StorageNodes)},
		{"Threads per compute node", fmt.Sprintf("%d", cfg.ThreadsPerCompute)},
		{"Data striping", fmt.Sprintf("round-robin over all %d storage nodes", cfg.StorageNodes)},
		{"Stripe/data block size", fmt.Sprintf("%d elements", cfg.BlockElems)},
		{"I/O node cache capacity", fmt.Sprintf("%d blocks", cfg.IOCacheBlocks)},
		{"Storage node cache capacity", fmt.Sprintf("%d blocks", cfg.StorageCacheBlocks)},
		{"Disk", fmt.Sprintf("%d RPM, %.1f ms avg seek, %.2f ms/block transfer",
			cfg.Disk.RPM, float64(cfg.Disk.AvgSeekNS)/1e6, float64(cfg.Disk.TransferNSPerBlock)/1e6)},
		{"Cache policy", cfg.Policy},
	}
	w := 0
	for _, r := range rows {
		if len(r[0]) > w {
			w = len(r[0])
		}
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s  %s\n", w, r[0], r[1])
	}
	return b.String()
}

// Table2 runs the default execution of every application and reports the
// I/O cache miss rate, storage cache miss rate, and execution time
// (paper Table 2).
func Table2(ctx context.Context, r *Runner, cfg sim.Config) (*Table, error) {
	t := &Table{
		Title:   "Table 2: default execution (row-major layouts, LRU inclusive)",
		Columns: []string{"io-miss%", "st-miss%", "exec(s)"},
		Formats: []string{"%.1f", "%.1f", "%.2f"},
	}
	err := buildRows(ctx, r, t, Apps(), func(app string) ([]float64, error) {
		rep, err := r.RunContext(ctx, app, cfg, SchemeDefault)
		if err != nil {
			return nil, err
		}
		return []float64{
			100 * rep.IOMissRate(), 100 * rep.StorageMissRate(), float64(rep.ExecTimeUS) / 1e6,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Table3 reports the cache miss rates after the inter-node optimization,
// normalized to the default execution (paper Table 3).
func Table3(ctx context.Context, r *Runner, cfg sim.Config) (*Table, error) {
	t := &Table{
		Title:   "Table 3: cache misses after optimization (normalized to Table 2)",
		Columns: []string{"io", "storage"},
		Note:    "miss-count ratio optimized/default; < 1 is better",
	}
	err := buildRows(ctx, r, t, Apps(), func(app string) ([]float64, error) {
		def, err := r.RunContext(ctx, app, cfg, SchemeDefault)
		if err != nil {
			return nil, err
		}
		opt, err := r.RunContext(ctx, app, cfg, SchemeInter)
		if err != nil {
			return nil, err
		}
		return []float64{
			ratio(float64(opt.IO.Misses), float64(def.IO.Misses)),
			ratio(float64(opt.Storage.Misses), float64(def.Storage.Misses)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Fig7a reports execution times of the inter-node optimization normalized
// to the default execution, per application plus the average (paper
// Fig. 7(a); the paper's headline 23.7 % improvement is 1 − average).
func Fig7a(ctx context.Context, r *Runner, cfg sim.Config) (*Table, error) {
	t := &Table{
		Title:   "Fig 7(a): normalized execution time (inter-node / default)",
		Columns: []string{"normalized"},
	}
	err := buildRows(ctx, r, t, Apps(), func(app string) ([]float64, error) {
		n, err := normalizedExec(ctx, r, cfg, app, SchemeInter)
		if err != nil {
			return nil, err
		}
		return []float64{n}, nil
	})
	if err != nil {
		return nil, err
	}
	t.FillAverages()
	return t, nil
}

// Fig7b evaluates the four thread-to-compute-node mappings (paper
// Fig. 7(b)): for each mapping, the optimized execution normalized to the
// default execution under the same mapping.
func Fig7b(ctx context.Context, r *Runner, cfg sim.Config) (*Table, error) {
	mappings := standardMappings(cfg)
	t := &Table{
		Title: "Fig 7(b): normalized execution time under thread mappings I-IV",
	}
	for _, m := range mappings {
		t.Columns = append(t.Columns, m.Name)
	}
	err := buildRows(ctx, r, t, Apps(), func(app string) ([]float64, error) {
		// All mappings normalize against the default execution (which
		// uses the default thread placement), so the columns isolate the
		// optimized run's sensitivity to thread placement.
		def, err := r.RunContext(ctx, app, cfg, SchemeDefault)
		if err != nil {
			return nil, err
		}
		vals := make([]float64, 0, len(mappings))
		for i := range mappings {
			c := cfg
			c.Mapping = &mappings[i]
			rep, err := r.RunContext(ctx, app, c, SchemeInter)
			if err != nil {
				return nil, err
			}
			vals = append(vals, ratio(float64(rep.ExecTimeUS), float64(def.ExecTimeUS)))
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	t.FillAverages()
	return t, nil
}

// Fig7c sweeps the cache capacities (paper Fig. 7(c)): both layers scaled
// by ¼, ½, 1, 2, 4. Values are average improvement percentages.
func Fig7c(ctx context.Context, r *Runner, cfg sim.Config) (*Table, error) {
	scales := []struct {
		label string
		num   int
		den   int
	}{{"x1/4", 1, 4}, {"x1/2", 1, 2}, {"x1", 1, 1}, {"x2", 2, 1}, {"x4", 4, 1}}
	t := &Table{
		Title: "Fig 7(c): improvement (%) vs cache capacity scale",
		Note:  "improvement = 100·(1 − optimized/default) averaged over apps",
	}
	for _, s := range scales {
		t.Columns = append(t.Columns, s.label)
	}
	t.Formats = repeatFormat("%.1f", len(scales))
	err := buildRows(ctx, r, t, Apps(), func(app string) ([]float64, error) {
		vals := make([]float64, 0, len(scales))
		for _, s := range scales {
			c := cfg
			c.IOCacheBlocks = cfg.IOCacheBlocks * s.num / s.den
			c.StorageCacheBlocks = cfg.StorageCacheBlocks * s.num / s.den
			if c.IOCacheBlocks < 1 {
				c.IOCacheBlocks = 1
			}
			if c.StorageCacheBlocks < 1 {
				c.StorageCacheBlocks = 1
			}
			n, err := normalizedExec(ctx, r, c, app, SchemeInter)
			if err != nil {
				return nil, err
			}
			vals = append(vals, 100*(1-n))
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	t.FillAverages()
	return t, nil
}

// Fig7d sweeps the node counts (paper Fig. 7(d)). Each configuration is
// (compute, I/O, storage); per-cache capacities stay fixed, so fewer
// caches mean more sharing.
func Fig7d(ctx context.Context, r *Runner, cfg sim.Config) (*Table, error) {
	configs := []struct {
		label       string
		io, storage int
	}{
		{"(64,32,8)", 32, 8},
		{"(64,16,4)", 16, 4},
		{"(64,8,4)", 8, 4},
		{"(64,8,2)", 8, 2},
	}
	t := &Table{
		Title: "Fig 7(d): improvement (%) vs node counts (compute, io, storage)",
		Note:  "per-cache capacities fixed; fewer caches = more sharing",
	}
	for _, c := range configs {
		t.Columns = append(t.Columns, c.label)
	}
	t.Formats = repeatFormat("%.1f", len(configs))
	err := buildRows(ctx, r, t, Apps(), func(app string) ([]float64, error) {
		vals := make([]float64, 0, len(configs))
		for _, nc := range configs {
			c := cfg
			c.IONodes, c.StorageNodes = nc.io, nc.storage
			n, err := normalizedExec(ctx, r, c, app, SchemeInter)
			if err != nil {
				return nil, err
			}
			vals = append(vals, 100*(1-n))
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	t.FillAverages()
	return t, nil
}

// Fig7e sweeps the data block size (paper Fig. 7(e)).
func Fig7e(ctx context.Context, r *Runner, cfg sim.Config) (*Table, error) {
	factors := []struct {
		label string
		mul   int64
		div   int64
	}{{"x1/4", 1, 4}, {"x1/2", 1, 2}, {"x1", 1, 1}, {"x2", 2, 1}, {"x4", 4, 1}}
	t := &Table{
		Title: "Fig 7(e): improvement (%) vs data block size",
		Note:  "block is both the cache unit and the stripe unit; cache byte capacity held constant",
	}
	for _, f := range factors {
		t.Columns = append(t.Columns, f.label)
	}
	t.Formats = repeatFormat("%.1f", len(factors))
	err := buildRows(ctx, r, t, Apps(), func(app string) ([]float64, error) {
		vals := make([]float64, 0, len(factors))
		for _, f := range factors {
			c := cfg
			c.BlockElems = cfg.BlockElems * f.mul / f.div
			if c.BlockElems < 1 {
				c.BlockElems = 1
			}
			// The paper's caches are sized in bytes (Table 1); hold the
			// byte capacity constant by scaling the block counts
			// inversely with the block size.
			c.IOCacheBlocks = int(int64(cfg.IOCacheBlocks) * cfg.BlockElems / c.BlockElems)
			c.StorageCacheBlocks = int(int64(cfg.StorageCacheBlocks) * cfg.BlockElems / c.BlockElems)
			// The disk transfer time scales with the block size.
			c.Disk.TransferNSPerBlock = cfg.Disk.TransferNSPerBlock * c.BlockElems / cfg.BlockElems
			n, err := normalizedExec(ctx, r, c, app, SchemeInter)
			if err != nil {
				return nil, err
			}
			vals = append(vals, 100*(1-n))
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	t.FillAverages()
	return t, nil
}

// Fig7f compares targeting only the I/O layer, only the storage layer, and
// both (paper Fig. 7(f); paper averages: 9.1 %, 13.0 %, 23.7 %).
func Fig7f(ctx context.Context, r *Runner, cfg sim.Config) (*Table, error) {
	t := &Table{
		Title:   "Fig 7(f): normalized execution time by targeted layer(s)",
		Columns: []string{"io-only", "storage-only", "both"},
	}
	err := buildRows(ctx, r, t, Apps(), func(app string) ([]float64, error) {
		return schemeColumns(ctx, r, cfg, app, []Scheme{SchemeInterIO, SchemeInterStorage, SchemeInter})
	})
	if err != nil {
		return nil, err
	}
	t.FillAverages()
	return t, nil
}

// Fig7g compares the two prior schemes with the inter-node optimization
// (paper Fig. 7(g); paper averages: computation mapping 7.6 %, dimension
// reindexing 7.1 %, inter-node 23.7 %).
func Fig7g(ctx context.Context, r *Runner, cfg sim.Config) (*Table, error) {
	t := &Table{
		Title:   "Fig 7(g): normalized execution time vs prior schemes",
		Columns: []string{"compmap[26]", "reindex[27]", "inter"},
	}
	err := buildRows(ctx, r, t, Apps(), func(app string) ([]float64, error) {
		return schemeColumns(ctx, r, cfg, app, []Scheme{SchemeCompMap, SchemeReindex, SchemeInter})
	})
	if err != nil {
		return nil, err
	}
	t.FillAverages()
	return t, nil
}

// Fig7h evaluates the optimization under the exclusive cache management
// policies (paper Fig. 7(h); paper averages: LRU 23.7 %, KARMA 30.1 %,
// DEMOTE-LRU 28.6 %). Each column normalizes the optimized run against
// the default run under the same policy.
func Fig7h(ctx context.Context, r *Runner, cfg sim.Config) (*Table, error) {
	t := &Table{
		Title:   "Fig 7(h): normalized execution time under cache policies",
		Columns: []string{"LRU", "KARMA", "DEMOTE-LRU"},
	}
	err := buildRows(ctx, r, t, Apps(), func(app string) ([]float64, error) {
		vals := make([]float64, 0, 3)
		for _, pol := range []string{"lru", "karma", "demote"} {
			c := cfg
			c.Policy = pol
			n, err := normalizedExec(ctx, r, c, app, SchemeInter)
			if err != nil {
				return nil, err
			}
			vals = append(vals, n)
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	t.FillAverages()
	return t, nil
}

// OptStats reports the static optimization coverage of §5.1: per app, the
// number of disk-resident arrays and how many received optimized layouts.
func OptStats(ctx context.Context, r *Runner, cfg sim.Config) (*Table, error) {
	t := &Table{
		Title:   "§5.1: arrays optimized per application (paper average ≈ 72%)",
		Columns: []string{"arrays", "optimized", "fraction"},
		Formats: []string{"%.0f", "%.0f", "%.2f"},
	}
	err := buildRows(ctx, r, t, Apps(), func(app string) ([]float64, error) {
		res, err := r.OptResult(app, cfg)
		if err != nil {
			return nil, err
		}
		opt, total := res.OptimizedCount()
		return []float64{
			float64(total), float64(opt), float64(opt) / float64(total),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var optT, allT int
	for _, row := range t.Rows {
		allT += int(row.Values[0])
		optT += int(row.Values[1])
	}
	t.Note = fmt.Sprintf("overall: %d/%d = %.1f%%", optT, allT, 100*float64(optT)/float64(allT))
	return t, nil
}

// Ablations quantifies the two design choices DESIGN.md calls out: the
// Eq. 5 weighted conflict resolution and the hierarchy-aware Step II
// interleaving, each replaced by its naive alternative.
func Ablations(ctx context.Context, r *Runner, cfg sim.Config) (*Table, error) {
	t := &Table{
		Title:   "Ablations: normalized execution time of design variants",
		Columns: []string{"inter", "unweighted-eq5", "flat-pattern"},
		Note:    "unweighted-eq5: first-reference conflict order; flat-pattern: per-thread slabs, no capacity-aware nesting",
	}
	err := buildRows(ctx, r, t, Apps(), func(app string) ([]float64, error) {
		return schemeColumns(ctx, r, cfg, app, []Scheme{SchemeInter, SchemeInterUnweighted, SchemeInterFlat})
	})
	if err != nil {
		return nil, err
	}
	t.FillAverages()
	return t, nil
}

// Prefetch evaluates the paper's §4.2 remark that the optimized layouts
// "can also help improve the effectiveness of hardware I/O prefetching":
// storage-node readahead (2 blocks) is toggled for both the default and
// the optimized execution. Columns: improvement without readahead,
// improvement with readahead, and the speedup readahead itself gives the
// optimized run.
func Prefetch(ctx context.Context, r *Runner, cfg sim.Config) (*Table, error) {
	t := &Table{
		Title:   "Prefetching: inter-node improvement without/with storage readahead",
		Columns: []string{"improv-noRA%", "improv-RA2%", "RA-gain-opt%"},
		Formats: repeatFormat("%.1f", 3),
		Note: "RA-gain-opt = readahead speedup of the optimized run itself; at the simulator's " +
			"cache scale speculation rarely survives the demand churn, so readahead mostly hurts " +
			"the scattered default layout (widening the improvement) rather than boosting the optimized one",
	}
	err := buildRows(ctx, r, t, Apps(), func(app string) ([]float64, error) {
		noRA := cfg
		noRA.ReadaheadBlocks = 0
		withRA := cfg
		withRA.ReadaheadBlocks = 2

		defNo, err := r.RunContext(ctx, app, noRA, SchemeDefault)
		if err != nil {
			return nil, err
		}
		optNo, err := r.RunContext(ctx, app, noRA, SchemeInter)
		if err != nil {
			return nil, err
		}
		defRA, err := r.RunContext(ctx, app, withRA, SchemeDefault)
		if err != nil {
			return nil, err
		}
		optRA, err := r.RunContext(ctx, app, withRA, SchemeInter)
		if err != nil {
			return nil, err
		}
		return []float64{
			100 * (1 - ratio(float64(optNo.ExecTimeUS), float64(defNo.ExecTimeUS))),
			100 * (1 - ratio(float64(optRA.ExecTimeUS), float64(defRA.ExecTimeUS))),
			100 * (1 - ratio(float64(optRA.ExecTimeUS), float64(optNo.ExecTimeUS))),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.FillAverages()
	return t, nil
}

// FaultSweep asks the robustness question the healthy-cluster tables
// cannot: do the Table 2/3 wins survive a degraded storage hierarchy?
// For each fault intensity, the default and inter-node-optimized
// executions run under the same seeded fault schedule (cfg.FaultSeed) —
// fail-slow and fail-stop disks, storage-node outages, transient read
// errors — with failover, retries and degraded reads enabled. The first
// columns report the optimized improvement at each intensity; the last
// columns detail the fully degraded (intensity 1) optimized run: storage
// miss rate and degraded-mode operations per thousand block requests.
func FaultSweep(ctx context.Context, r *Runner, cfg sim.Config) (*Table, error) {
	intensities := []float64{0, 0.3, 0.6, 1}
	t := &Table{
		Title: fmt.Sprintf("Fault sweep: inter-node improvement (%%) vs fault intensity (seed %d)", cfg.FaultSeed),
		Note: "improvement = 100·(1 − optimized/default) under the same fault schedule; " +
			"@1 columns describe the optimized run at full intensity " +
			"(retry/degr/failover per 1000 block requests)",
	}
	for _, f := range intensities {
		t.Columns = append(t.Columns, fmt.Sprintf("f=%g", f))
	}
	t.Columns = append(t.Columns, "stMiss@1%", "retry/1k@1", "degr/1k@1", "fo/1k@1")
	t.Formats = repeatFormat("%.1f", len(t.Columns))
	err := buildRows(ctx, r, t, Apps(), func(app string) ([]float64, error) {
		vals := make([]float64, 0, len(t.Columns))
		var worst *sim.Report
		for _, f := range intensities {
			c := cfg
			c.FaultIntensity = f
			def, err := r.RunContext(ctx, app, c, SchemeDefault)
			if err != nil {
				return nil, err
			}
			opt, err := r.RunContext(ctx, app, c, SchemeInter)
			if err != nil {
				return nil, err
			}
			vals = append(vals, 100*(1-ratio(float64(opt.ExecTimeUS), float64(def.ExecTimeUS))))
			worst = opt
		}
		perK := func(n int64) float64 {
			if worst.Accesses == 0 {
				return 0
			}
			return 1000 * float64(n) / float64(worst.Accesses)
		}
		vals = append(vals,
			100*worst.StorageMissRate(),
			perK(worst.Retries),
			perK(worst.DegradedReads),
			perK(worst.FailedOverBlocks))
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	t.FillAverages()
	return t, nil
}

// --- helpers ---

func standardMappings(cfg sim.Config) []parallel.Mapping {
	return parallel.StandardMappings(cfg.Threads())
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	return a / b
}

// normalizedExec returns exec(scheme)/exec(default) for one app. Both runs
// use the same cfg (policy, mapping, capacities).
func normalizedExec(ctx context.Context, r *Runner, cfg sim.Config, app string, scheme Scheme) (float64, error) {
	def, err := r.RunContext(ctx, app, cfg, SchemeDefault)
	if err != nil {
		return 0, err
	}
	rep, err := r.RunContext(ctx, app, cfg, scheme)
	if err != nil {
		return 0, err
	}
	return ratio(float64(rep.ExecTimeUS), float64(def.ExecTimeUS)), nil
}

// schemeColumns returns one normalized execution time per scheme for app.
func schemeColumns(ctx context.Context, r *Runner, cfg sim.Config, app string, schemes []Scheme) ([]float64, error) {
	vals := make([]float64, 0, len(schemes))
	for _, s := range schemes {
		n, err := normalizedExec(ctx, r, cfg, app, s)
		if err != nil {
			return nil, err
		}
		vals = append(vals, n)
	}
	return vals, nil
}

func repeatFormat(f string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = f
	}
	return out
}
