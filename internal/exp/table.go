package exp

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: one row per application (plus an
// optional aggregate row), one column per reported quantity.
type Table struct {
	Title   string
	Columns []string // not counting the leading application column
	Rows    []Row
	// Average, when non-nil, is appended as an aggregate row.
	Average []float64
	// Format strings per column (defaults to %.3f).
	Formats []string
	// Note is printed under the table.
	Note string
}

// Row is one application's values.
type Row struct {
	App    string
	Values []float64
}

// ColumnAverage computes the mean of column c over the rows.
func (t *Table) ColumnAverage(c int) float64 {
	if len(t.Rows) == 0 {
		return 0
	}
	var s float64
	for _, r := range t.Rows {
		s += r.Values[c]
	}
	return s / float64(len(t.Rows))
}

// FillAverages sets Average to the per-column means.
func (t *Table) FillAverages() {
	t.Average = make([]float64, len(t.Columns))
	for c := range t.Columns {
		t.Average[c] = t.ColumnAverage(c)
	}
}

func (t *Table) format(c int, v float64) string {
	f := "%.3f"
	if c < len(t.Formats) && t.Formats[c] != "" {
		f = t.Formats[c]
	}
	return fmt.Sprintf(f, v)
}

// Render produces an aligned text table.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", t.Title)
	appW := len("application")
	for _, r := range t.Rows {
		if len(r.App) > appW {
			appW = len(r.App)
		}
	}
	colW := make([]int, len(t.Columns))
	for c, name := range t.Columns {
		colW[c] = len(name)
		for _, r := range t.Rows {
			if w := len(t.format(c, r.Values[c])); w > colW[c] {
				colW[c] = w
			}
		}
		if t.Average != nil {
			if w := len(t.format(c, t.Average[c])); w > colW[c] {
				colW[c] = w
			}
		}
	}
	fmt.Fprintf(&b, "%-*s", appW, "application")
	for c, name := range t.Columns {
		fmt.Fprintf(&b, "  %*s", colW[c], name)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", appW))
	for c := range t.Columns {
		b.WriteString("  " + strings.Repeat("-", colW[c]))
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", appW, r.App)
		for c := range t.Columns {
			fmt.Fprintf(&b, "  %*s", colW[c], t.format(c, r.Values[c]))
		}
		b.WriteString("\n")
	}
	if t.Average != nil {
		fmt.Fprintf(&b, "%-*s", appW, "average")
		for c := range t.Columns {
			fmt.Fprintf(&b, "  %*s", colW[c], t.format(c, t.Average[c]))
		}
		b.WriteString("\n")
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}
