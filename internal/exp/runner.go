// Package exp is the evaluation harness: it reruns every table and figure
// of the paper's §5 on the simulated platform and renders the same rows
// and series the paper reports. See EXPERIMENTS.md for paper-vs-measured.
package exp

import (
	"context"
	"fmt"
	"sync"

	"flopt/internal/baseline"
	"flopt/internal/layout"
	"flopt/internal/obs"
	"flopt/internal/parallel"
	"flopt/internal/poly"
	"flopt/internal/sim"
	"flopt/internal/storage/cache"
	"flopt/internal/trace"
	"flopt/internal/workloads"
)

// Scheme selects how file layouts (and, for the computation-mapping
// baseline, thread placement) are chosen.
type Scheme string

const (
	// SchemeDefault: row-major files, identity thread mapping — the
	// paper's "default execution".
	SchemeDefault Scheme = "default"
	// SchemeInter: the paper's inter-node file layout optimization
	// targeting both cache layers.
	SchemeInter Scheme = "inter"
	// SchemeInterIO / SchemeInterStorage: single-layer targeting
	// (Fig. 7(f)).
	SchemeInterIO      Scheme = "inter-io"
	SchemeInterStorage Scheme = "inter-storage"
	// SchemeReindex: the dimension-reindexing baseline [27].
	SchemeReindex Scheme = "reindex"
	// SchemeCompMap: the computation-mapping baseline [26] (row-major
	// files, sharing-clustered thread placement).
	SchemeCompMap Scheme = "compmap"
	// SchemeInterUnweighted / SchemeInterFlat: ablations of the two design
	// choices DESIGN.md calls out — Eq. 5 weighted conflict resolution and
	// the hierarchy-aware Step II pattern.
	SchemeInterUnweighted Scheme = "inter-unweighted"
	SchemeInterFlat       Scheme = "inter-flat"
)

// Schemes lists all selectable schemes.
func Schemes() []Scheme {
	return []Scheme{SchemeDefault, SchemeInter, SchemeInterIO, SchemeInterStorage,
		SchemeReindex, SchemeCompMap, SchemeInterUnweighted, SchemeInterFlat}
}

// prepKey identifies a cached preparation (layout choice + traces).
type prepKey struct {
	app     string
	scheme  Scheme
	block   int64
	compute int
	tpc     int
	io      int
	storage int
	capIO   int
	capST   int
}

func keyFor(app string, cfg sim.Config, scheme Scheme) prepKey {
	k := prepKey{
		app: app, scheme: scheme, block: cfg.BlockElems,
		compute: cfg.ComputeNodes, tpc: cfg.ThreadsPerCompute,
		io: cfg.IONodes, storage: cfg.StorageNodes,
	}
	// Layout choice depends on cache capacities only for the schemes that
	// consult them; keying on them always would just reduce reuse.
	switch scheme {
	case SchemeInter, SchemeInterIO, SchemeInterStorage, SchemeReindex,
		SchemeInterUnweighted, SchemeInterFlat:
		k.capIO, k.capST = cfg.IOCacheBlocks, cfg.StorageCacheBlocks
	}
	return k
}

// prep bundles everything needed to simulate one (app, scheme, platform).
type prep struct {
	ft      *trace.FileTable
	traces  []*trace.NestTrace
	mapping *parallel.Mapping // only for SchemeCompMap
	optRes  *layout.Result    // only for inter schemes
}

// progCall is a singleflight slot for one parsed program: the first
// goroutine to request an app computes it, later ones wait on done.
type progCall struct {
	done chan struct{}
	p    *poly.Program
	err  error
}

// prepCall is a singleflight slot for one preparation. lastUse is the
// runner's recency clock value at the most recent request, driving LRU
// eviction; finished flags that done is closed. refs counts callers that
// obtained the prep and have not yet released it, and evicted marks a call
// removed from the cache whose stream buffers should be recycled into the
// runner's pool once the last user releases it (all guarded by Runner.mu).
type prepCall struct {
	done     chan struct{}
	pr       *prep
	err      error
	lastUse  uint64
	finished bool
	refs     int
	evicted  bool
}

// Runner caches parsed programs and generated traces across experiment
// sweeps (a cache-capacity sweep, for instance, reuses the same traces).
// The prep cache is bounded: traces are large, and an unbounded cache
// would exhaust memory over a long multi-figure run.
//
// A Runner is safe for concurrent use: the caches are singleflight-guarded,
// so two workers preparing the same (app, scheme, platform) key share one
// preparation instead of duplicating it.
type Runner struct {
	mu    sync.Mutex
	progs map[string]*progCall
	preps map[prepKey]*prepCall
	seq   uint64 // recency clock for LRU eviction
	// pool recycles per-thread Access stream buffers across preparations:
	// an evicted prep's streams return to the pool (once unreferenced) and
	// the next trace generation draws from it instead of allocating.
	pool trace.BufferPool

	// Parallel bounds the worker pool used by the table builders and by
	// trace generation; 0 means runtime.GOMAXPROCS(0), 1 restores the
	// fully serial path.
	Parallel int
	// SimWorkers shards each cell's simulation across up to this many
	// intra-cell workers (sim.Machine.SetWorkers); reports stay
	// byte-identical at every value. 0 — the default — keeps cells serial:
	// the harness already parallelizes across cells, and intra-cell shards
	// only help when cells outnumber CPUs the other way around. The
	// effective count is capped so cells × shards never oversubscribes the
	// host (see simWorkers).
	SimWorkers int
	// Verbose enables progress lines on stdout.
	Verbose bool
	// CollectMetrics attaches the simulator's metrics collector to every
	// cell; snapshots are recorded per cell key (see WriteMetricsJSONL).
	CollectMetrics bool

	// cells holds the per-cell metric snapshots, keyed deterministically
	// (guarded by mu).
	cells map[string]*obs.Snapshot
}

// maxPreps bounds the trace cache; beyond it the least recently used
// completed preparation is evicted (sweeps touch preparations in clusters,
// so mid-sweep reuse survives while cross-sweep buildup does not).
const maxPreps = 40

// NewRunner returns an empty runner.
func NewRunner() *Runner {
	return &Runner{progs: map[string]*progCall{}, preps: map[prepKey]*prepCall{}}
}

func (r *Runner) program(app string) (*poly.Program, error) {
	r.mu.Lock()
	if c, ok := r.progs[app]; ok {
		r.mu.Unlock()
		<-c.done
		return c.p, c.err
	}
	c := &progCall{done: make(chan struct{})}
	r.progs[app] = c
	r.mu.Unlock()

	c.p, c.err = loadProgram(app)
	close(c.done)
	return c.p, c.err
}

func loadProgram(app string) (*poly.Program, error) {
	w, ok := workloads.ByName(app)
	if !ok {
		return nil, fmt.Errorf("exp: unknown workload %q", app)
	}
	return w.Program()
}

// defaultPlans builds the standard parallelization of p for cfg.
func defaultPlans(p *poly.Program, cfg sim.Config) (map[*poly.LoopNest]*parallel.Plan, error) {
	plans := make(map[*poly.LoopNest]*parallel.Plan, len(p.Nests))
	for _, n := range p.Nests {
		plan, err := parallel.NewPlan(n, cfg.Threads(), 1)
		if err != nil {
			return nil, err
		}
		plans[n] = plan
	}
	return plans, nil
}

// evictLocked makes room for one more preparation by dropping the least
// recently used completed entries. In-flight preparations are never evicted
// (waiters deduplicate against them); if all entries are in flight the
// cache temporarily overflows instead. An evicted prep's stream buffers are
// recycled into the pool immediately when unreferenced, else deferred to
// the last release. Caller holds r.mu.
func (r *Runner) evictLocked() {
	for len(r.preps) >= maxPreps {
		var victim prepKey
		var victimCall *prepCall
		for k, c := range r.preps {
			if !c.finished {
				continue
			}
			if victimCall == nil || c.lastUse < victimCall.lastUse {
				victim, victimCall = k, c
			}
		}
		if victimCall == nil {
			return
		}
		delete(r.preps, victim)
		victimCall.evicted = true
		if victimCall.refs == 0 {
			r.recycleLocked(victimCall)
		}
	}
}

// recycleLocked returns c's stream buffers to the pool. Caller holds r.mu
// and guarantees c is evicted with no remaining references.
func (r *Runner) recycleLocked(c *prepCall) {
	if c.pr != nil {
		r.pool.Put(c.pr.traces)
		c.pr = nil
	}
}

// release drops one reference to c, recycling its buffers if it was the
// last reference to an evicted prep.
func (r *Runner) release(c *prepCall) {
	r.mu.Lock()
	c.refs--
	if c.refs == 0 && c.evicted {
		r.recycleLocked(c)
	}
	r.mu.Unlock()
}

// prepare resolves layouts and traces for (app, cfg, scheme), caching the
// result with singleflight semantics and LRU-bounded capacity. The caller
// must invoke the returned release function once it no longer reads the
// prep's traces; a prep is only recycled after eviction AND release of
// every reference, so in-flight simulations never lose their streams.
func (r *Runner) prepare(app string, cfg sim.Config, scheme Scheme) (*prep, func(), error) {
	key := keyFor(app, cfg, scheme)
	r.mu.Lock()
	r.seq++
	if c, ok := r.preps[key]; ok {
		c.lastUse = r.seq
		c.refs++
		r.mu.Unlock()
		<-c.done
		if c.err != nil {
			r.release(c)
			return nil, nil, c.err
		}
		return c.pr, func() { r.release(c) }, nil
	}
	c := &prepCall{done: make(chan struct{}), lastUse: r.seq, refs: 1}
	r.evictLocked()
	r.preps[key] = c
	r.mu.Unlock()

	c.pr, c.err = r.buildPrep(app, cfg, scheme)

	r.mu.Lock()
	c.finished = true
	if c.err != nil {
		// Failed preparations are not worth a cache slot; the error is
		// still delivered to every waiter through the call itself.
		if r.preps[key] == c {
			delete(r.preps, key)
		}
		c.evicted = true
		c.refs--
	}
	r.mu.Unlock()
	close(c.done)
	if c.err != nil {
		return nil, nil, c.err
	}
	return c.pr, func() { r.release(c) }, nil
}

// buildPrep does the actual preparation work (layout choice + traces).
func (r *Runner) buildPrep(app string, cfg sim.Config, scheme Scheme) (*prep, error) {
	p, err := r.program(app)
	if err != nil {
		return nil, err
	}
	pr := &prep{}
	var layouts map[string]layout.Layout
	var plans map[*poly.LoopNest]*parallel.Plan

	switch scheme {
	case SchemeDefault, SchemeCompMap:
		layouts = layout.DefaultLayouts(p)
		if plans, err = defaultPlans(p, cfg); err != nil {
			return nil, err
		}
	case SchemeInter, SchemeInterIO, SchemeInterStorage, SchemeInterUnweighted, SchemeInterFlat:
		h, err := cfg.LayoutHierarchy(scheme != SchemeInterStorage, scheme != SchemeInterIO)
		if err != nil {
			return nil, err
		}
		res, err := layout.Optimize(p, layout.Options{
			Hierarchy:     h,
			BlockElems:    cfg.BlockElems,
			UnweightedEq5: scheme == SchemeInterUnweighted,
			FlatPattern:   scheme == SchemeInterFlat,
		})
		if err != nil {
			return nil, err
		}
		layouts, plans = res.Layouts, res.Plans
		pr.optRes = res
	case SchemeReindex:
		if layouts, err = baseline.Reindex(p, cfg); err != nil {
			return nil, err
		}
		if plans, err = defaultPlans(p, cfg); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("exp: unknown scheme %q", scheme)
	}

	pr.ft, err = trace.NewFileTable(p, layouts)
	if err != nil {
		return nil, err
	}
	pr.traces, err = trace.GenerateWorkersPool(p, plans, pr.ft, cfg.BlockElems, cfg.Threads(), r.workers(), &r.pool)
	if err != nil {
		return nil, err
	}
	if scheme == SchemeCompMap {
		m, err := baseline.ComputationMapping(cfg, pr.traces)
		if err != nil {
			return nil, err
		}
		pr.mapping = &m
	}
	return pr, nil
}

// cachedPreps returns the number of resident preparations (tests only).
func (r *Runner) cachedPreps() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.preps)
}

// Run simulates app under cfg with the given scheme and returns the
// report. The cache policy and thread mapping come from cfg (except that
// SchemeCompMap installs its own computed mapping). Run is safe for
// concurrent use; each call simulates on its own Machine.
func (r *Runner) Run(app string, cfg sim.Config, scheme Scheme) (*sim.Report, error) {
	return r.RunContext(context.Background(), app, cfg, scheme)
}

// RunContext is Run with cooperative cancellation: a canceled ctx aborts
// the simulation in flight with an error wrapping ctx.Err().
func (r *Runner) RunContext(ctx context.Context, app string, cfg sim.Config, scheme Scheme) (*sim.Report, error) {
	pr, release, err := r.prepare(app, cfg, scheme)
	if err != nil {
		return nil, err
	}
	defer release()
	if scheme == SchemeCompMap {
		cfg.Mapping = pr.mapping
	}
	if r.CollectMetrics {
		cfg.Metrics = true
	}
	var hints []cache.RangeHint
	if cfg.Policy == "karma" {
		hints = sim.GenerateHints(cfg, pr.ft, pr.traces)
	}
	machine, err := sim.NewMachine(cfg, hints)
	if err != nil {
		return nil, fmt.Errorf("exp: %s/%s: %w", app, scheme, err)
	}
	fileBlocks := make([]int64, len(pr.ft.Names))
	for f := range fileBlocks {
		fileBlocks[f] = pr.ft.Blocks(int32(f), cfg.BlockElems)
	}
	machine.SetFileBlocks(fileBlocks)
	machine.SetFileNames(pr.ft.Names)
	machine.SetWorkers(r.simWorkers())
	rep, err := machine.RunContext(ctx, pr.traces)
	if err != nil {
		return nil, fmt.Errorf("exp: %s/%s: %w", app, scheme, err)
	}
	if rep.Metrics != nil {
		r.recordCell(cellKey(app, cfg, scheme), rep.Metrics)
	}
	if r.Verbose {
		fmt.Printf("  %-9s %-13s policy=%-6s exec=%8.3fs ioMiss=%5.1f%% stMiss=%5.1f%%\n",
			app, scheme, cfg.Policy, float64(rep.ExecTimeUS)/1e6,
			100*rep.IOMissRate(), 100*rep.StorageMissRate())
	}
	return rep, nil
}

// OptResult returns the optimizer output for app under cfg (inter scheme),
// for the static statistics of §5.1.
func (r *Runner) OptResult(app string, cfg sim.Config) (*layout.Result, error) {
	pr, release, err := r.prepare(app, cfg, SchemeInter)
	if err != nil {
		return nil, err
	}
	// Only the optimizer result escapes; recycling touches pr.traces alone.
	release()
	return pr.optRes, nil
}
