package exp

import (
	"context"
	"fmt"
	"sort"

	"flopt/internal/sim"
	"flopt/internal/workload"
)

// classTally accumulates one SLO class's share of an event stream.
type classTally struct {
	events, compile, offsets, simulate float64
	// simPrograms counts simulate events per program; the class's modeled
	// execution time is the count-weighted sum of per-program runs.
	simPrograms map[string]float64
}

// WorkloadSweep is the offline analogue of the service load generator: it
// takes the same event stream (a spec expansion or a recorded trace) and
// reports, per SLO class, the request mix plus the modeled execution time
// its simulate events would cost under the default and the optimized file
// layouts. Where the service measures request latency, this measures what
// the layout optimization is worth to each class of traffic.
//
// Each distinct simulated program runs exactly once per scheme regardless
// of how many events name it; results land in index-addressed slots and
// are aggregated in sorted order, so the table is bit-identical at every
// r.Parallel value and for a trace recorded from the same spec.
func WorkloadSweep(ctx context.Context, r *Runner, cfg sim.Config, events []workload.Event) (*Table, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("exp: workload sweep needs at least one event")
	}
	classes := map[string]*classTally{}
	progSet := map[string]bool{}
	for _, ev := range events {
		ct := classes[ev.SLO]
		if ct == nil {
			ct = &classTally{simPrograms: map[string]float64{}}
			classes[ev.SLO] = ct
		}
		ct.events++
		switch ev.Kind {
		case workload.KindCompile:
			ct.compile++
		case workload.KindOffsets:
			ct.offsets++
		case workload.KindSimulate:
			ct.simulate++
			ct.simPrograms[ev.Program]++
			progSet[ev.Program] = true
		default:
			return nil, fmt.Errorf("exp: event %d: unknown kind %q", ev.Seq, ev.Kind)
		}
	}
	names := make([]string, 0, len(classes))
	for c := range classes {
		names = append(names, c)
	}
	sort.Strings(names)
	progs := make([]string, 0, len(progSet))
	for p := range progSet {
		progs = append(progs, p)
	}
	sort.Strings(progs)

	// One simulation per (program, scheme); the worker pool fills fixed
	// slots so aggregation order never depends on scheduling.
	execDef := make([]float64, len(progs))
	execOpt := make([]float64, len(progs))
	err := ForEachIndex(ctx, r.workers(), 2*len(progs), func(i int) error {
		prog, out, scheme := progs[i/2], execDef, SchemeDefault
		if i%2 == 1 {
			out, scheme = execOpt, SchemeInter
		}
		rep, err := r.RunContext(ctx, prog, cfg, scheme)
		if err != nil {
			return err
		}
		out[i/2] = float64(rep.ExecTimeUS) / 1e6
		return nil
	})
	if err != nil {
		return nil, err
	}
	progIdx := make(map[string]int, len(progs))
	for i, p := range progs {
		progIdx[p] = i
	}

	t := &Table{
		Title: fmt.Sprintf("Workload sweep: %d events, %d SLO classes, %d simulated programs",
			len(events), len(names), len(progs)),
		Columns: []string{"events", "compile", "offsets", "simulate", "sim-s-def", "sim-s-opt", "improv-%"},
		Formats: []string{"%.0f", "%.0f", "%.0f", "%.0f", "%.3f", "%.3f", "%.1f"},
		Note: "rows are SLO classes; sim-s-* sums each class's simulate events' " +
			"modeled exec time under the default vs. optimized layouts",
	}
	for _, name := range names {
		ct := classes[name]
		simProgs := make([]string, 0, len(ct.simPrograms))
		for p := range ct.simPrograms {
			simProgs = append(simProgs, p)
		}
		sort.Strings(simProgs)
		var def, opt float64
		for _, p := range simProgs {
			n := ct.simPrograms[p]
			def += n * execDef[progIdx[p]]
			opt += n * execOpt[progIdx[p]]
		}
		improv := 0.0
		if def > 0 {
			improv = 100 * (def - opt) / def
		}
		t.Rows = append(t.Rows, Row{App: name, Values: []float64{
			ct.events, ct.compile, ct.offsets, ct.simulate, def, opt, improv,
		}})
	}
	return t, nil
}
