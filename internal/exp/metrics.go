package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"flopt/internal/obs"
	"flopt/internal/sim"
)

// cellKey names one experiment cell deterministically: the workload, the
// scheme and every config knob that distinguishes cells within the
// harness's sweeps. Two cells with the same key are the same simulation,
// so later snapshots overwrite earlier ones instead of accumulating.
func cellKey(app string, cfg sim.Config, scheme Scheme) string {
	mapping := "identity"
	if cfg.Mapping != nil {
		mapping = cfg.Mapping.Name
	}
	return fmt.Sprintf("%s|%s|policy=%s|nodes=%d/%d/%d|cache=%d/%d|blk=%d|ra=%d|map=%s|faults=%g@%d",
		app, scheme, cfg.Policy,
		cfg.ComputeNodes, cfg.IONodes, cfg.StorageNodes,
		cfg.IOCacheBlocks, cfg.StorageCacheBlocks,
		cfg.BlockElems, cfg.ReadaheadBlocks,
		mapping, cfg.FaultIntensity, cfg.FaultSeed)
}

// recordCell stores the snapshot for one cell key, replacing any earlier
// snapshot for the same key.
func (r *Runner) recordCell(key string, snap *obs.Snapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cells == nil {
		r.cells = map[string]*obs.Snapshot{}
	}
	r.cells[key] = snap
}

// MetricCells returns the number of recorded cell snapshots.
func (r *Runner) MetricCells() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cells)
}

// WriteMetricsJSONL writes every recorded cell snapshot as one JSON object
// per line, sorted by cell key. The output is deterministic for a given
// set of cells — independent of worker count and of the order in which the
// cells were simulated — so it can be diffed across runs.
func (r *Runner) WriteMetricsJSONL(w io.Writer) error {
	r.mu.Lock()
	keys := make([]string, 0, len(r.cells))
	for k := range r.cells {
		keys = append(keys, k)
	}
	snaps := make([]*obs.Snapshot, len(keys))
	sort.Strings(keys)
	for i, k := range keys {
		snaps[i] = r.cells[k]
	}
	r.mu.Unlock()

	enc := json.NewEncoder(w)
	for i, k := range keys {
		line := struct {
			Cell    string        `json:"cell"`
			Metrics *obs.Snapshot `json:"metrics"`
		}{Cell: k, Metrics: snaps[i]}
		if err := enc.Encode(line); err != nil {
			return fmt.Errorf("exp: writing metrics line %d: %w", i, err)
		}
	}
	return nil
}
