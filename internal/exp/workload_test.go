package exp

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"flopt/internal/workload"
)

// sweepSpec mixes two SLO classes over two small programs, with simulate
// events in both classes so the sim columns are non-trivial.
func sweepSpec() *workload.Spec {
	return &workload.Spec{
		Version:   workload.SpecVersion,
		Name:      "sweep-test",
		Seed:      7,
		DurationS: 1,
		RateRPS:   30,
		Clients: []workload.Client{
			{
				ID:           "gold-client",
				RateFraction: 0.5,
				SLOClass:     "gold",
				Arrival:      workload.Arrival{Process: workload.ProcessPoisson},
				Mix: []workload.MixEntry{
					{Program: "cc-ver-1", Kind: workload.KindOffsets, Weight: 2},
					{Program: "cc-ver-1", Kind: workload.KindSimulate, Weight: 1},
				},
			},
			{
				ID:           "batch-client",
				RateFraction: 0.5,
				SLOClass:     "batch",
				Arrival:      workload.Arrival{Process: workload.ProcessOnOff, OnS: 0.3, OffS: 0.2},
				Mix: []workload.MixEntry{
					{Program: "s3asim", Kind: workload.KindSimulate, Weight: 1},
					{Program: "s3asim", Kind: workload.KindCompile, Weight: 1},
				},
			},
		},
	}
}

// TestWorkloadSweepDeterministicAcrossParallel pins the acceptance
// criterion's offline half: the rendered table is byte-identical at every
// worker count.
func TestWorkloadSweepDeterministicAcrossParallel(t *testing.T) {
	evs, err := sweepSpec().Generate()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var ref string
	for _, par := range []int{1, 4, 8} {
		r := NewRunner()
		r.Parallel = par
		tab, err := WorkloadSweep(ctx, r, fastConfig(), evs)
		if err != nil {
			t.Fatalf("parallel %d: %v", par, err)
		}
		out := tab.Render()
		if par == 1 {
			ref = out
			continue
		}
		if out != ref {
			t.Errorf("parallel %d diverges from serial:\n%s\nvs\n%s", par, out, ref)
		}
	}
	if !strings.Contains(ref, "gold") || !strings.Contains(ref, "batch") {
		t.Errorf("sweep table missing SLO class rows:\n%s", ref)
	}
}

// TestWorkloadSweepSpecVsTrace: an event stream written through the trace
// layer and read back produces the identical table — a recorded trace
// replays bit-identically through the offline harness.
func TestWorkloadSweepSpecVsTrace(t *testing.T) {
	evs, err := sweepSpec().Generate()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tw, err := workload.NewTraceWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if err := tw.Append(ev.Kind, ev.Client, ev.SLO, ev.Program); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := workload.ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	replayed := workload.Events(recs)
	if len(replayed) != len(evs) {
		t.Fatalf("trace replays %d events, want %d", len(replayed), len(evs))
	}

	r := NewRunner()
	ctx := context.Background()
	fromSpec, err := WorkloadSweep(ctx, r, fastConfig(), evs)
	if err != nil {
		t.Fatal(err)
	}
	fromTrace, err := WorkloadSweep(ctx, r, fastConfig(), replayed)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fromTrace.Render(), fromSpec.Render(); got != want {
		t.Errorf("trace sweep diverges from spec sweep:\n%s\nvs\n%s", got, want)
	}
	wantCounts := workload.ClassCounts(evs)
	for class, n := range workload.ClassCounts(replayed) {
		if wantCounts[class] != n {
			t.Errorf("class %q: trace count %d, spec count %d", class, n, wantCounts[class])
		}
	}
}

func TestWorkloadSweepRejectsBadInput(t *testing.T) {
	r := NewRunner()
	ctx := context.Background()
	if _, err := WorkloadSweep(ctx, r, fastConfig(), nil); err == nil {
		t.Error("empty event stream accepted")
	}
	bad := []workload.Event{{Kind: "bogus", Client: "c", SLO: "default", Program: "swim"}}
	if _, err := WorkloadSweep(ctx, r, fastConfig(), bad); err == nil {
		t.Error("unknown event kind accepted")
	}
}
