package exp

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// workers resolves the runner's effective worker count: Parallel when set,
// otherwise one worker per available CPU.
func (r *Runner) workers() int {
	if r.Parallel > 0 {
		return r.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// simWorkers resolves the effective intra-cell shard count so that the
// two parallelism axes compose: cell workers × intra-cell shards never
// exceeds the host's CPUs. SimWorkers ≤ 0 disables sharding.
func (r *Runner) simWorkers() int {
	if r.SimWorkers <= 0 {
		return 1
	}
	cap := runtime.GOMAXPROCS(0) / r.workers()
	if cap < 1 {
		cap = 1
	}
	if r.SimWorkers < cap {
		return r.SimWorkers
	}
	return cap
}

// ForEachIndex evaluates fn(0) … fn(n-1) on up to par workers. The serial
// path (par ≤ 1) stops at the first error, exactly like the pre-parallel
// harness; the parallel path lets in-flight work finish and then returns
// the error of the lowest failing index, so the reported error does not
// depend on goroutine scheduling. A canceled ctx stops workers from
// picking up new indices; in-flight cells abort through their own ctx
// polling, and the cancellation error is reported when no cell failed
// first. Exported for reuse outside the harness (the service load
// generator fans its client workers out through it).
func ForEachIndex(ctx context.Context, par, n int, fn func(i int) error) error {
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// buildRows fills t with one row per app, dispatching the row computations
// to the runner's worker pool. Rows land in apps order regardless of which
// worker finishes first, so the emitted table is deterministic.
func buildRows(ctx context.Context, r *Runner, t *Table, apps []string, row func(app string) ([]float64, error)) error {
	rows := make([]Row, len(apps))
	err := ForEachIndex(ctx, r.workers(), len(apps), func(i int) error {
		vals, err := row(apps[i])
		if err != nil {
			return err
		}
		rows[i] = Row{App: apps[i], Values: vals}
		return nil
	})
	if err != nil {
		return err
	}
	t.Rows = rows
	return nil
}
