package exp

import (
	"context"
	"strings"
	"testing"

	"flopt/internal/sim"
)

// fastConfig shrinks the platform so experiment tests stay quick; the
// shapes (who wins) are scale-independent.
func fastConfig() sim.Config {
	c := sim.DefaultConfig()
	return c
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows: []Row{
			{App: "x", Values: []float64{1, 2}},
			{App: "longer-name", Values: []float64{3, 4}},
		},
		Formats: []string{"%.0f", "%.1f"},
		Note:    "hello",
	}
	tab.FillAverages()
	out := tab.Render()
	for _, want := range []string{"demo", "longer-name", "average", "hello", "2.0", "3.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if tab.Average[0] != 2 || tab.Average[1] != 3 {
		t.Errorf("averages = %v", tab.Average)
	}
}

func TestTable1Render(t *testing.T) {
	out := Table1(fastConfig())
	for _, want := range []string{"compute nodes", "64", "I/O nodes", "16", "storage nodes"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}

func TestSchemes(t *testing.T) {
	if len(Schemes()) != 8 {
		t.Errorf("schemes = %v", Schemes())
	}
	if len(Apps()) != 16 {
		t.Errorf("apps = %d", len(Apps()))
	}
}

func TestRunnerUnknownWorkload(t *testing.T) {
	r := NewRunner()
	if _, err := r.Run("nonesuch", fastConfig(), SchemeDefault); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := r.Run("swim", fastConfig(), Scheme("bogus")); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestRunnerCachesPreparations(t *testing.T) {
	r := NewRunner()
	cfg := fastConfig()
	if _, err := r.Run("cc-ver-1", cfg, SchemeDefault); err != nil {
		t.Fatal(err)
	}
	n := len(r.preps)
	if _, err := r.Run("cc-ver-1", cfg, SchemeDefault); err != nil {
		t.Fatal(err)
	}
	if len(r.preps) != n {
		t.Error("second run did not reuse the cached preparation")
	}
	// A capacity change must NOT invalidate default-scheme traces…
	cfg2 := cfg
	cfg2.IOCacheBlocks *= 2
	if _, err := r.Run("cc-ver-1", cfg2, SchemeDefault); err != nil {
		t.Fatal(err)
	}
	if len(r.preps) != n {
		t.Error("capacity change should reuse default traces")
	}
	// …but it must invalidate inter-scheme layouts (they depend on it).
	if _, err := r.Run("cc-ver-1", cfg, SchemeInter); err != nil {
		t.Fatal(err)
	}
	n2 := len(r.preps)
	if _, err := r.Run("cc-ver-1", cfg2, SchemeInter); err != nil {
		t.Fatal(err)
	}
	if len(r.preps) != n2+1 {
		t.Error("capacity change should re-prepare inter layouts")
	}
}

func TestOptStatsShape(t *testing.T) {
	r := NewRunner()
	tab, err := OptStats(context.Background(), r, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 16 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var opt, total float64
	for _, row := range tab.Rows {
		total += row.Values[0]
		opt += row.Values[1]
		if row.Values[2] < 0 || row.Values[2] > 1 {
			t.Errorf("%s fraction = %f", row.App, row.Values[2])
		}
	}
	if frac := opt / total; frac < 0.55 || frac > 0.92 {
		t.Errorf("overall optimized fraction = %.2f, want near 0.72", frac)
	}
}

// The headline result: Fig 7(a) group structure. Group 1 ≈ 1.0; every
// group-3 app beats every group-2 app; overall mean in the paper's
// improvement ballpark.
func TestFig7aGroupStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("full 16-app simulation in -short mode")
	}
	r := NewRunner()
	tab, err := Fig7a(context.Background(), r, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	norm := map[string]float64{}
	for _, row := range tab.Rows {
		norm[row.App] = row.Values[0]
	}
	for _, app := range []string{"cc-ver-1", "s3asim", "twer"} {
		if v := norm[app]; v < 0.95 || v > 1.06 {
			t.Errorf("group-1 app %s = %.3f, want ≈ 1.0", app, v)
		}
	}
	group2 := []string{"bt", "cc-ver-2", "astro", "wupwise", "contour", "mgrid"}
	group3 := []string{"swim", "afores", "sar", "hf", "qio", "applu", "sp"}
	worst3 := 0.0
	for _, app := range group3 {
		if norm[app] > worst3 {
			worst3 = norm[app]
		}
	}
	for _, app := range group2 {
		if norm[app] <= worst3 {
			t.Errorf("group-2 app %s (%.3f) should improve less than every group-3 app (max %.3f)",
				app, norm[app], worst3)
		}
		if norm[app] >= 1.0 {
			t.Errorf("group-2 app %s shows no improvement: %.3f", app, norm[app])
		}
	}
	if avg := tab.Average[0]; avg < 0.55 || avg > 0.85 {
		t.Errorf("average normalized exec = %.3f, want in the paper's ballpark (0.763)", avg)
	}
}
