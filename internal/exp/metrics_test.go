package exp

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"flopt/internal/sim"
)

// TestMetricSnapshotsAcrossWorkerCounts extends the determinism guarantee
// to the observability layer: with metrics collection on, the JSONL dump
// of every cell snapshot is byte-identical whether the table was built
// with 1, 4 or 8 workers. The collectors are machine-owned and driven by
// the virtual clock, so worker scheduling must never leak into them.
func TestMetricSnapshotsAcrossWorkerCounts(t *testing.T) {
	apps := Apps()[:3]
	cfg := sim.DefaultConfig()
	build := func(par int) []byte {
		r := NewRunner()
		r.Parallel = par
		r.CollectMetrics = true
		tab := &Table{Columns: []string{"exec(s)"}}
		err := buildRows(context.Background(), r, tab, apps, func(app string) ([]float64, error) {
			rep, err := r.Run(app, cfg, SchemeDefault)
			if err != nil {
				return nil, err
			}
			return []float64{float64(rep.ExecTimeUS) / 1e6}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if n := r.MetricCells(); n != len(apps) {
			t.Fatalf("par=%d: %d cell snapshots, want %d", par, n, len(apps))
		}
		var buf bytes.Buffer
		if err := r.WriteMetricsJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := build(1)
	if len(ref) == 0 {
		t.Fatal("serial build produced no metrics output")
	}
	for _, par := range []int{4, 8} {
		if got := build(par); !bytes.Equal(ref, got) {
			t.Errorf("metrics JSONL with %d workers differs from serial output", par)
		}
	}
	// Every cell line carries the app and the full config fingerprint.
	for _, app := range apps {
		if !bytes.Contains(ref, []byte(`"cell":"`+app+`|default|policy=lru`)) {
			t.Errorf("no cell line for %s in output", app)
		}
	}
}

// TestRunnerMetricsOffByDefault: without CollectMetrics the runner keeps
// no snapshots and reports carry none.
func TestRunnerMetricsOffByDefault(t *testing.T) {
	r := NewRunner()
	rep, err := r.Run("swim", sim.DefaultConfig(), SchemeDefault)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics != nil {
		t.Error("Report.Metrics set without CollectMetrics")
	}
	if n := r.MetricCells(); n != 0 {
		t.Errorf("%d cell snapshots recorded without CollectMetrics", n)
	}
	var buf bytes.Buffer
	if err := r.WriteMetricsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty runner wrote %q", buf.String())
	}
}

// TestCellKeyDistinguishesConfigs: the sweeps vary policy, capacities,
// block size, mapping and fault settings — each must land in its own cell.
func TestCellKeyDistinguishesConfigs(t *testing.T) {
	cfg := sim.DefaultConfig()
	base := cellKey("swim", cfg, SchemeDefault)
	if !strings.Contains(base, "swim|default") || !strings.Contains(base, "map=identity") {
		t.Errorf("base key = %q", base)
	}
	seen := map[string]string{base: "base"}
	variants := map[string]sim.Config{}
	c := cfg
	c.Policy = "karma"
	variants["policy"] = c
	c = cfg
	c.IOCacheBlocks *= 2
	variants["io-cache"] = c
	c = cfg
	c.BlockElems *= 2
	variants["block"] = c
	c = cfg
	c.ReadaheadBlocks = 2
	variants["readahead"] = c
	c = cfg
	c.FaultIntensity, c.FaultSeed = 0.5, 42
	variants["faults"] = c
	for name, vc := range variants {
		k := cellKey("swim", vc, SchemeDefault)
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %q collides with %q: %s", name, prev, k)
		}
		seen[k] = name
	}
	if k := cellKey("swim", cfg, SchemeInter); seen[k] != "" {
		t.Error("scheme change did not change the cell key")
	}
}

// TestBuildRowsCanceled: a canceled context aborts the table build with
// context.Canceled regardless of worker count.
func TestBuildRowsCanceled(t *testing.T) {
	cfg := sim.DefaultConfig()
	for _, par := range []int{1, 4} {
		r := NewRunner()
		r.Parallel = par
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		tab := &Table{Columns: []string{"exec(s)"}}
		err := buildRows(ctx, r, tab, Apps()[:4], func(app string) ([]float64, error) {
			rep, err := r.RunContext(ctx, app, cfg, SchemeDefault)
			if err != nil {
				return nil, err
			}
			return []float64{float64(rep.ExecTimeUS)}, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("par=%d: err = %v, want context.Canceled", par, err)
		}
		if len(tab.Rows) != 0 {
			t.Errorf("par=%d: canceled build still produced %d rows", par, len(tab.Rows))
		}
	}
}
