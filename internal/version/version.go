// Package version carries the single release identity shared by every
// flopt binary (floptc, flvis, runsim, exptab, floptd). The minor number
// tracks the PR sequence growing the repository.
package version

import (
	"fmt"
	"runtime"
)

// Version is the release identifier of this source tree.
const Version = "0.7.0"

// String returns the full banner a CLI prints for -version:
// name, release, and the Go toolchain/platform it was built with.
func String(binary string) string {
	return fmt.Sprintf("%s %s (%s %s/%s)", binary, Version,
		runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
