// Package baseline reimplements the two prior compiler-guided schemes the
// paper compares against in Fig. 7(g):
//
//   - Reindex: the profile-guided file layout optimization of Kandemir,
//     Son & Karakoy [FAST'08] — dimension reindexing. For every
//     disk-resident array all dimension permutations are tried and the
//     one with the best simulated execution time is kept (the paper's own
//     methodology: "using profiling, we exhaustively tried all possible
//     dimension reindexings ... and selected the one that generated the
//     best execution time").
//
//   - ComputationMapping: the computation-remapping scheme of Kandemir,
//     Muralidhara, Karakoy & Son [HPDC'10] — iterations are clustered so
//     that threads sharing data end up behind the same storage caches.
//     File layouts stay row-major; what changes is the thread-to-node
//     placement.
package baseline

import (
	"fmt"
	"sort"

	"flopt/internal/layout"
	"flopt/internal/parallel"
	"flopt/internal/poly"
	"flopt/internal/sim"
	"flopt/internal/trace"
)

// permutations returns all permutations of [0, n) in lexicographic order.
func permutations(n int) [][]int {
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			p := make([]int, n)
			copy(p, cur)
			out = append(out, p)
			return
		}
		for i := k; i < n; i++ {
			cur[k], cur[i] = cur[i], cur[k]
			rec(k + 1)
			cur[k], cur[i] = cur[i], cur[k]
		}
	}
	rec(0)
	sort.Slice(out, func(a, b int) bool {
		for i := range out[a] {
			if out[a][i] != out[b][i] {
				return out[a][i] < out[b][i]
			}
		}
		return false
	})
	return out
}

// Reindex runs the [27] baseline on program p under platform cfg: a
// profile-driven coordinate descent that, array by array, tries every
// dimension permutation (holding the other arrays at their current best)
// and keeps the fastest. Returns the chosen layouts.
func Reindex(p *poly.Program, cfg sim.Config) (map[string]layout.Layout, error) {
	plans := make(map[*poly.LoopNest]*parallel.Plan, len(p.Nests))
	for _, n := range p.Nests {
		plan, err := parallel.NewPlan(n, cfg.Threads(), 1)
		if err != nil {
			return nil, err
		}
		plans[n] = plan
	}
	best := layout.DefaultLayouts(p)
	measure := func(ls map[string]layout.Layout) (int64, error) {
		ft, err := trace.NewFileTable(p, ls)
		if err != nil {
			return 0, err
		}
		traces, err := trace.Generate(p, plans, ft, cfg.BlockElems, cfg.Threads())
		if err != nil {
			return 0, err
		}
		rep, err := sim.Simulate(cfg, traces, nil)
		if err != nil {
			return 0, err
		}
		return rep.ExecTimeUS, nil
	}
	bestTime, err := measure(best)
	if err != nil {
		return nil, err
	}
	for _, a := range p.Arrays {
		if a.Rank() < 2 {
			continue // nothing to reindex
		}
		for _, perm := range permutations(a.Rank()) {
			cand := layout.Permuted(a, perm)
			if cand.Name() == best[a.Name].Name() {
				continue
			}
			trial := make(map[string]layout.Layout, len(best))
			for k, v := range best {
				trial[k] = v
			}
			trial[a.Name] = cand
			t, err := measure(trial)
			if err != nil {
				return nil, err
			}
			if t < bestTime {
				bestTime = t
				best = trial
			}
		}
	}
	return best, nil
}

// ComputationMapping runs the [26] baseline: given the default-layout
// traces of a program, it computes the pairwise data sharing between
// threads and greedily packs the threads that share the most blocks onto
// the same I/O node, returning the resulting thread-to-compute-node
// mapping. File layouts are untouched.
func ComputationMapping(cfg sim.Config, traces []*trace.NestTrace) (parallel.Mapping, error) {
	threads := cfg.Threads()
	if threads%cfg.IONodes != 0 {
		return parallel.Mapping{}, fmt.Errorf("baseline: %d threads not divisible by %d I/O nodes", threads, cfg.IONodes)
	}
	group := threads / cfg.IONodes

	// Footprints: the set of blocks each thread touches.
	type blockKey struct {
		file  int32
		block int64
	}
	foot := make([]map[blockKey]struct{}, threads)
	for t := range foot {
		foot[t] = make(map[blockKey]struct{})
	}
	for _, nt := range traces {
		for t, stream := range nt.Streams {
			for _, acc := range stream {
				for b := acc.Block; b <= acc.Block+int64(acc.Run); b++ {
					foot[t][blockKey{acc.File, b}] = struct{}{}
				}
			}
		}
	}
	// Pairwise shared-block counts.
	share := make([][]int, threads)
	for i := range share {
		share[i] = make([]int, threads)
	}
	for i := 0; i < threads; i++ {
		for j := i + 1; j < threads; j++ {
			small, large := foot[i], foot[j]
			if len(small) > len(large) {
				small, large = large, small
			}
			n := 0
			for b := range small {
				if _, ok := large[b]; ok {
					n++
				}
			}
			share[i][j], share[j][i] = n, n
		}
	}

	// Greedy clustering: seed each I/O-node group with the unassigned
	// thread having the largest total sharing, then add its best partners.
	assigned := make([]bool, threads)
	perm := make([]int, threads) // perm[thread] = compute-node slot
	slot := 0
	totalShare := func(t int) int {
		s := 0
		for u := 0; u < threads; u++ {
			if !assigned[u] && u != t {
				s += share[t][u]
			}
		}
		return s
	}
	for slot < threads {
		seed := -1
		bestScore := -1
		for t := 0; t < threads; t++ {
			if assigned[t] {
				continue
			}
			if s := totalShare(t); s > bestScore {
				bestScore, seed = s, t
			}
		}
		cluster := []int{seed}
		assigned[seed] = true
		for len(cluster) < group {
			bestT, bestS := -1, -1
			for t := 0; t < threads; t++ {
				if assigned[t] {
					continue
				}
				s := 0
				for _, c := range cluster {
					s += share[c][t]
				}
				if s > bestS || (s == bestS && bestT < 0) {
					bestS, bestT = s, t
				}
			}
			cluster = append(cluster, bestT)
			assigned[bestT] = true
		}
		for _, t := range cluster {
			perm[t] = slot
			slot++
		}
	}
	// Keep the clustering only if it beats the identity placement on its
	// own objective — the summed sharing co-located within I/O-node
	// groups. (The iterative scheme of [26] likewise starts from the
	// default distribution and only applies beneficial re-clusterings.)
	coLocated := func(perm []int) int {
		s := 0
		for i := 0; i < threads; i++ {
			for j := i + 1; j < threads; j++ {
				if perm[i]/group == perm[j]/group {
					s += share[i][j]
				}
			}
		}
		return s
	}
	identity := make([]int, threads)
	for i := range identity {
		identity[i] = i
	}
	if coLocated(perm) <= coLocated(identity) {
		return parallel.MappingFromPerm("computation-mapping", identity)
	}
	return parallel.MappingFromPerm("computation-mapping", perm)
}
