package baseline

import (
	"testing"

	"flopt/internal/lang"
	"flopt/internal/layout"
	"flopt/internal/parallel"
	"flopt/internal/poly"
	"flopt/internal/sim"
	"flopt/internal/trace"
)

func testConfig() sim.Config {
	c := sim.DefaultConfig()
	c.ComputeNodes = 8
	c.IONodes = 4
	c.StorageNodes = 2
	c.BlockElems = 8
	c.IOCacheBlocks = 8
	c.StorageCacheBlocks = 16
	return c
}

func TestPermutations(t *testing.T) {
	ps := permutations(3)
	if len(ps) != 6 {
		t.Fatalf("got %d permutations, want 6", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		key := ""
		for _, v := range p {
			key += string(rune('0' + v))
		}
		if seen[key] {
			t.Fatalf("duplicate permutation %v", p)
		}
		seen[key] = true
	}
	if len(permutations(1)) != 1 {
		t.Error("permutations(1) wrong")
	}
}

func TestReindexFixesTransposedAccess(t *testing.T) {
	// A purely transposed access: reindexing should flip B to
	// column-major and beat row-major.
	src := `
array B[64][64];
parallel(i) for i = 0 to 63 { for j = 0 to 63 { read B[j][i]; } }
`
	p, err := lang.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	best, err := Reindex(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if best["B"].Name() == "row-major" {
		t.Errorf("reindexing kept row-major for a transposed access, layout = %s", best["B"].Name())
	}
}

func TestReindexKeepsGoodLayout(t *testing.T) {
	src := `
array A[64][64];
parallel(i) for i = 0 to 63 { for j = 0 to 63 { read A[i][j]; } }
`
	p, err := lang.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	best, err := Reindex(p, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if best["A"].Name() != "row-major" {
		t.Errorf("reindexing should keep row-major for row access, got %s", best["A"].Name())
	}
}

func TestReindexSkips1D(t *testing.T) {
	src := `
array V[512];
parallel(i) for i = 0 to 511 { read V[i]; }
`
	p, err := lang.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	best, err := Reindex(p, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if best["V"].Name() != "row-major" {
		t.Error("1-D array should be untouched")
	}
}

// defaultTraces builds default-layout traces for a source program.
func defaultTraces(t *testing.T, src string, cfg sim.Config) []*trace.NestTrace {
	t.Helper()
	p, err := lang.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	plans := make(map[*poly.LoopNest]*parallel.Plan)
	for _, n := range p.Nests {
		plan, err := parallel.NewPlan(n, cfg.Threads(), 1)
		if err != nil {
			t.Fatal(err)
		}
		plans[n] = plan
	}
	ft, err := trace.NewFileTable(p, layout.DefaultLayouts(p))
	if err != nil {
		t.Fatal(err)
	}
	traces, err := trace.Generate(p, plans, ft, cfg.BlockElems, cfg.Threads())
	if err != nil {
		t.Fatal(err)
	}
	return traces
}

func TestComputationMappingClustersSharers(t *testing.T) {
	// Halo pattern: thread t shares row boundaries with threads t±1.
	// The clustering should co-locate consecutive threads — which the
	// identity already does — so the mapping must be a valid permutation
	// that keeps sharing pairs together at least as well as random.
	src := `
array A[64][64];
parallel(i) for i = 0 to 62 { for j = 0 to 63 { read A[i][j]; read A[i+1][j]; } }
`
	cfg := testConfig()
	traces := defaultTraces(t, src, cfg)
	m, err := ComputationMapping(cfg, traces)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Measure co-location quality: count sharing pairs (t, t+1) placed in
	// the same I/O-node group.
	group := cfg.Threads() / cfg.IONodes
	together := 0
	for th := 0; th+1 < cfg.Threads(); th++ {
		if m.Node(th)/group == m.Node(th+1)/group {
			together++
		}
	}
	// 8 threads in 4 groups of 2: at most 4 adjacent pairs co-located;
	// the greedy must find at least 3.
	if together < 3 {
		t.Errorf("only %d sharing pairs co-located", together)
	}
}

func TestComputationMappingPermutation(t *testing.T) {
	src := `
array A[64][64];
parallel(i) for i = 0 to 63 { for j = 0 to 63 { read A[i][j]; } }
`
	cfg := testConfig()
	m, err := ComputationMapping(cfg, defaultTraces(t, src, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != cfg.Threads() {
		t.Errorf("mapping covers %d threads", m.Len())
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}

func TestComputationMappingIndivisible(t *testing.T) {
	cfg := testConfig()
	cfg.ComputeNodes = 6
	cfg.IONodes = 4
	if _, err := ComputationMapping(cfg, nil); err == nil {
		t.Error("indivisible thread/io ratio accepted")
	}
}
