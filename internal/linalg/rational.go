package linalg

import "fmt"

// Rat is an exact rational number with int64 numerator and denominator.
// The denominator is kept positive and the fraction reduced.
type Rat struct {
	N, D int64
}

// R returns the reduced rational n/d. It panics if d == 0.
func R(n, d int64) Rat {
	if d == 0 {
		panic("linalg: rational with zero denominator")
	}
	if d < 0 {
		n, d = -n, -d
	}
	if g := GCD(n, d); g > 1 {
		n, d = n/g, d/g
	}
	return Rat{N: n, D: d}
}

// RI returns the rational representing integer n.
func RI(n int64) Rat { return Rat{N: n, D: 1} }

// Add returns a+b.
func (a Rat) Add(b Rat) Rat { return R(a.N*b.D+b.N*a.D, a.D*b.D) }

// Sub returns a-b.
func (a Rat) Sub(b Rat) Rat { return R(a.N*b.D-b.N*a.D, a.D*b.D) }

// Mul returns a·b.
func (a Rat) Mul(b Rat) Rat { return R(a.N*b.N, a.D*b.D) }

// Div returns a/b; it panics if b is zero.
func (a Rat) Div(b Rat) Rat {
	if b.N == 0 {
		panic("linalg: rational division by zero")
	}
	return R(a.N*b.D, a.D*b.N)
}

// Neg returns -a.
func (a Rat) Neg() Rat { return Rat{N: -a.N, D: a.D} }

// IsZero reports whether a == 0.
func (a Rat) IsZero() bool { return a.N == 0 }

// IsInt reports whether a is an integer.
func (a Rat) IsInt() bool { return a.D == 1 }

// Cmp returns -1, 0, or +1 as a is less than, equal to, or greater than b.
func (a Rat) Cmp(b Rat) int {
	l, r := a.N*b.D, b.N*a.D
	switch {
	case l < r:
		return -1
	case l > r:
		return 1
	default:
		return 0
	}
}

// String renders a as "n" or "n/d".
func (a Rat) String() string {
	if a.D == 1 {
		return fmt.Sprintf("%d", a.N)
	}
	return fmt.Sprintf("%d/%d", a.N, a.D)
}

// RatMat is a dense matrix of rationals, used for exact elimination where
// fraction-free techniques are inconvenient.
type RatMat struct {
	R, C int
	a    []Rat
}

// NewRatMat returns an R×C zero rational matrix.
func NewRatMat(r, c int) *RatMat {
	m := &RatMat{R: r, C: c, a: make([]Rat, r*c)}
	for i := range m.a {
		m.a[i] = RI(0)
	}
	return m
}

// RatFromMat converts an integer matrix into a rational matrix.
func RatFromMat(m *Mat) *RatMat {
	r := NewRatMat(m.R, m.C)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			r.Set(i, j, RI(m.At(i, j)))
		}
	}
	return r
}

// At returns element (i, j).
func (m *RatMat) At(i, j int) Rat { return m.a[i*m.C+j] }

// Set assigns element (i, j).
func (m *RatMat) Set(i, j int, v Rat) { m.a[i*m.C+j] = v }

func (m *RatMat) swapRows(i, j int) {
	if i == j {
		return
	}
	for c := 0; c < m.C; c++ {
		m.a[i*m.C+c], m.a[j*m.C+c] = m.a[j*m.C+c], m.a[i*m.C+c]
	}
}

// InverseUnimodular returns the inverse of a unimodular integer matrix as an
// integer matrix. It panics if m is not square, and returns ok=false if m is
// singular or the inverse is not integral (i.e. m was not unimodular).
func (m *Mat) InverseUnimodular() (*Mat, bool) {
	if m.R != m.C {
		panic("linalg: InverseUnimodular on non-square matrix")
	}
	n := m.R
	// Gauss-Jordan on [m | I] with exact rationals.
	w := NewRatMat(n, 2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w.Set(i, j, RI(m.At(i, j)))
		}
		w.Set(i, n+i, RI(1))
	}
	for col := 0; col < n; col++ {
		piv := -1
		for i := col; i < n; i++ {
			if !w.At(i, col).IsZero() {
				piv = i
				break
			}
		}
		if piv < 0 {
			return nil, false
		}
		w.swapRows(piv, col)
		p := w.At(col, col)
		for j := 0; j < 2*n; j++ {
			w.Set(col, j, w.At(col, j).Div(p))
		}
		for i := 0; i < n; i++ {
			if i == col || w.At(i, col).IsZero() {
				continue
			}
			f := w.At(i, col)
			for j := 0; j < 2*n; j++ {
				w.Set(i, j, w.At(i, j).Sub(f.Mul(w.At(col, j))))
			}
		}
	}
	inv := NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := w.At(i, n+j)
			if !v.IsInt() {
				return nil, false
			}
			inv.Set(i, j, v.N)
		}
	}
	return inv, true
}
