package linalg

import "fmt"

// CompleteToUnimodular extends a primitive row vector w (gcd of components
// equal to 1) to a full unimodular matrix whose row `row` equals w. The
// remaining rows form a basis of a complementary lattice, so the result maps
// Z^n onto Z^n bijectively. It returns ok=false when w is zero or not
// primitive.
//
// The construction reduces w to a scaled unit vector by a sequence of
// elementary (unimodular) column operations while accumulating the inverse
// operations applied from the left; if w·C₁⋯C_k = e₁ then the accumulated
// matrix A = C_k⁻¹⋯C₁⁻¹ satisfies e₁·A = w, i.e. A has first row w and
// |det A| = 1.
func CompleteToUnimodular(w Vec, row int) (*Mat, bool) {
	n := len(w)
	if n == 0 || row < 0 || row >= n {
		return nil, false
	}
	if w.IsZero() || ContentOf(w) != 1 {
		return nil, false
	}
	v := w.Clone()
	acc := Identity(n)
	for j := 1; j < n; j++ {
		a, b := v[0], v[j]
		if b == 0 {
			continue
		}
		g, x, y := ExtGCD(a, b)
		// Column operation C on columns (0, j):
		//   col0' = x·col0 + y·colj,  colj' = (-b/g)·col0 + (a/g)·colj
		// reduces (a, b) to (g, 0). Its inverse, applied to rows of acc:
		//   row0' = (a/g)·row0 + (b/g)·rowj,  rowj' = -y·row0 + x·rowj.
		v[0], v[j] = g, 0
		ag, bg := a/g, b/g
		for c := 0; c < n; c++ {
			r0, rj := acc.At(0, c), acc.At(j, c)
			acc.Set(0, c, ag*r0+bg*rj)
			acc.Set(j, c, -y*r0+x*rj)
		}
	}
	if v[0] == -1 {
		// w was primitive so the accumulated gcd is ±1; fold the sign into
		// the first column operation (negate column 0, i.e. negate row 0 of
		// the inverse accumulator).
		for c := 0; c < n; c++ {
			acc.Set(0, c, -acc.At(0, c))
		}
		v[0] = 1
	}
	if v[0] != 1 {
		return nil, false
	}
	if row != 0 {
		acc.swapRows(0, row)
	}
	if !acc.Row(row).Equal(w) {
		panic(fmt.Sprintf("linalg: unimodular completion lost target row: got %v want %v", acc.Row(row), w))
	}
	return acc, true
}

// HermiteNormalForm returns H = U·A where U is unimodular and H is in row
// Hermite normal form: pivot entries positive, entries above each pivot
// reduced to [0, pivot), zero rows at the bottom. It returns (H, U).
func HermiteNormalForm(a *Mat) (*Mat, *Mat) {
	h := a.Clone()
	u := Identity(a.R)
	row := 0
	for col := 0; col < h.C && row < h.R; col++ {
		// Clear the column below `row` with row operations driven by gcds.
		for i := row + 1; i < h.R; i++ {
			if h.At(i, col) == 0 {
				continue
			}
			p, q := h.At(row, col), h.At(i, col)
			g, x, y := ExtGCD(p, q)
			// rows (row, i) ← unimodular combination giving (g, 0) in col.
			pg, qg := p/g, q/g
			combineRows(h, row, i, x, y, -qg, pg)
			combineRows(u, row, i, x, y, -qg, pg)
		}
		if h.At(row, col) == 0 {
			continue
		}
		if h.At(row, col) < 0 {
			negateRow(h, row)
			negateRow(u, row)
		}
		// Reduce entries above the pivot into [0, pivot).
		p := h.At(row, col)
		for i := 0; i < row; i++ {
			q := h.At(i, col)
			f := floorDiv(q, p)
			if f != 0 {
				addRow(h, i, row, -f)
				addRow(u, i, row, -f)
			}
		}
		row++
	}
	return h, u
}

// combineRows applies the 2×2 unimodular transform
// (rowA, rowB) ← (x·rowA + y·rowB, z·rowA + t·rowB) to matrix m.
func combineRows(m *Mat, a, b int, x, y, z, t int64) {
	for c := 0; c < m.C; c++ {
		ra, rb := m.At(a, c), m.At(b, c)
		m.Set(a, c, x*ra+y*rb)
		m.Set(b, c, z*ra+t*rb)
	}
}

func negateRow(m *Mat, r int) {
	for c := 0; c < m.C; c++ {
		m.Set(r, c, -m.At(r, c))
	}
}

func addRow(m *Mat, dst, src int, f int64) {
	for c := 0; c < m.C; c++ {
		m.Set(dst, c, m.At(dst, c)+f*m.At(src, c))
	}
}

// floorDiv returns ⌊a/b⌋ for b > 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
