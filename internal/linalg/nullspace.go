package linalg

// RightNullspace returns an integer basis of the right nullspace
// {x : A·x = 0} of A. Each basis vector is primitive (content 1, first
// nonzero component positive). The basis has dim = C - rank(A) vectors;
// an empty slice means the nullspace is trivial.
func RightNullspace(a *Mat) []Vec {
	rref, pivots := ratRREF(a)
	isPivot := make([]bool, a.C)
	for _, p := range pivots {
		isPivot[p] = true
	}
	var basis []Vec
	for free := 0; free < a.C; free++ {
		if isPivot[free] {
			continue
		}
		// Solve with x[free] = 1 and all other free variables 0. Each pivot
		// variable is determined by its RREF row.
		x := make([]Rat, a.C)
		for i := range x {
			x[i] = RI(0)
		}
		x[free] = RI(1)
		for row, p := range pivots {
			x[p] = rref.At(row, free).Neg()
		}
		basis = append(basis, ratVecToPrimitive(x))
	}
	return basis
}

// LeftNullspace returns an integer basis of the left nullspace
// {w : w·A = 0} of A (i.e. the right nullspace of Aᵀ).
func LeftNullspace(a *Mat) []Vec {
	return RightNullspace(a.Transpose())
}

// ratRREF reduces a to reduced row-echelon form over the rationals and
// returns the RREF together with the pivot column of each nonzero row.
func ratRREF(a *Mat) (*RatMat, []int) {
	w := RatFromMat(a)
	var pivots []int
	row := 0
	for col := 0; col < w.C && row < w.R; col++ {
		piv := -1
		for i := row; i < w.R; i++ {
			if !w.At(i, col).IsZero() {
				piv = i
				break
			}
		}
		if piv < 0 {
			continue
		}
		w.swapRows(piv, row)
		p := w.At(row, col)
		for j := 0; j < w.C; j++ {
			w.Set(row, j, w.At(row, j).Div(p))
		}
		for i := 0; i < w.R; i++ {
			if i == row || w.At(i, col).IsZero() {
				continue
			}
			f := w.At(i, col)
			for j := 0; j < w.C; j++ {
				w.Set(i, j, w.At(i, j).Sub(f.Mul(w.At(row, j))))
			}
		}
		pivots = append(pivots, col)
		row++
	}
	return w, pivots
}

// ratVecToPrimitive clears denominators of a rational vector and reduces the
// result to a primitive integer vector.
func ratVecToPrimitive(x []Rat) Vec {
	lcm := int64(1)
	for _, v := range x {
		if v.IsZero() {
			continue
		}
		g := GCD(lcm, v.D)
		lcm = lcm / g * v.D
	}
	out := make(Vec, len(x))
	for i, v := range x {
		out[i] = v.N * (lcm / v.D)
	}
	return Primitive(out)
}

// Rank returns the rank of a over the rationals.
func Rank(a *Mat) int {
	_, pivots := ratRREF(a)
	return len(pivots)
}
