package linalg

// SmithNormalForm computes the Smith normal form of an integer matrix:
// unimodular U (r×r) and V (c×c) with U·A·V = S, where S is diagonal with
// non-negative entries d₁ | d₂ | … (each diagonal entry divides the next).
// The SNF underpins lattice reasoning about the transformed data spaces:
// the diagonal entries are the invariant factors of the lattice map A.
func SmithNormalForm(a *Mat) (s, u, v *Mat) {
	s = a.Clone()
	u = Identity(a.R)
	v = Identity(a.C)

	n := a.R
	if a.C < n {
		n = a.C
	}
	for k := 0; k < n; k++ {
		if !snfPivot(s, u, v, k) {
			break // remaining block is zero
		}
		// Eliminate row and column k below/right of the pivot; pivoting
		// may reintroduce entries, so iterate to a fixed point.
		for !snfRowColClear(s, u, v, k) {
			if !snfPivot(s, u, v, k) {
				break
			}
		}
		// Enforce the divisibility chain: if s[k][k] ∤ s[i][j] for some
		// i, j > k, add row i to row k and restart elimination at k.
		if fixDivisibility(s, u, v, k) {
			k-- // redo this pivot
			continue
		}
	}
	// Normalize signs.
	for k := 0; k < n; k++ {
		if s.At(k, k) < 0 {
			negateRow(s, k)
			negateRow(u, k)
		}
	}
	return s, u, v
}

// snfPivot moves a nonzero entry of the trailing block into position
// (k, k), preferring the smallest magnitude. Returns false if the block
// is entirely zero.
func snfPivot(s, u, v *Mat, k int) bool {
	bi, bj := -1, -1
	var best int64
	for i := k; i < s.R; i++ {
		for j := k; j < s.C; j++ {
			x := s.At(i, j)
			if x == 0 {
				continue
			}
			if x < 0 {
				x = -x
			}
			if bi < 0 || x < best {
				bi, bj, best = i, j, x
			}
		}
	}
	if bi < 0 {
		return false
	}
	if bi != k {
		s.swapRows(bi, k)
		u.swapRows(bi, k)
	}
	if bj != k {
		swapCols(s, bj, k)
		swapCols(v, bj, k)
	}
	return true
}

// snfRowColClear reduces column k below the pivot and row k right of the
// pivot. Entries divisible by the pivot are eliminated by plain
// subtraction (pivot untouched); otherwise a Euclidean combination
// strictly shrinks |pivot|, guaranteeing termination of the outer loop.
// Returns true when both the column and the row are fully cleared.
func snfRowColClear(s, u, v *Mat, k int) bool {
	for i := k + 1; i < s.R; i++ {
		q := s.At(i, k)
		if q == 0 {
			continue
		}
		p := s.At(k, k)
		if q%p == 0 {
			addRow(s, i, k, -q/p)
			addRow(u, i, k, -q/p)
			continue
		}
		g, x, y := ExtGCD(p, q)
		pg, qg := p/g, q/g
		combineRows(s, k, i, x, y, -qg, pg)
		combineRows(u, k, i, x, y, -qg, pg)
	}
	for j := k + 1; j < s.C; j++ {
		q := s.At(k, j)
		if q == 0 {
			continue
		}
		p := s.At(k, k)
		if q%p == 0 {
			addCol(s, j, k, -q/p)
			addCol(v, j, k, -q/p)
			continue
		}
		g, x, y := ExtGCD(p, q)
		pg, qg := p/g, q/g
		combineCols(s, k, j, x, y, -qg, pg)
		combineCols(v, k, j, x, y, -qg, pg)
	}
	// Non-divisible combinations may have dirtied the other line again.
	for i := k + 1; i < s.R; i++ {
		if s.At(i, k) != 0 {
			return false
		}
	}
	for j := k + 1; j < s.C; j++ {
		if s.At(k, j) != 0 {
			return false
		}
	}
	return true
}

// addCol adds f times column src to column dst.
func addCol(m *Mat, dst, src int, f int64) {
	for r := 0; r < m.R; r++ {
		m.Set(r, dst, m.At(r, dst)+f*m.At(r, src))
	}
}

// fixDivisibility checks d_k | s[i][j] for the trailing block; when it
// fails, row i is added to row k (preparing a re-pivot) and true returned.
func fixDivisibility(s, u, v *Mat, k int) bool {
	d := s.At(k, k)
	if d == 0 {
		return false
	}
	for i := k + 1; i < s.R; i++ {
		for j := k + 1; j < s.C; j++ {
			if s.At(i, j)%d != 0 {
				addRow(s, k, i, 1)
				addRow(u, k, i, 1)
				return true
			}
		}
	}
	return false
}

// combineCols applies the 2×2 unimodular transform
// (colA, colB) ← (x·colA + y·colB, z·colA + t·colB) to matrix m.
func combineCols(m *Mat, a, b int, x, y, z, t int64) {
	for r := 0; r < m.R; r++ {
		ca, cb := m.At(r, a), m.At(r, b)
		m.Set(r, a, x*ca+y*cb)
		m.Set(r, b, z*ca+t*cb)
	}
}

func swapCols(m *Mat, a, b int) {
	if a == b {
		return
	}
	for r := 0; r < m.R; r++ {
		va, vb := m.At(r, a), m.At(r, b)
		m.Set(r, a, vb)
		m.Set(r, b, va)
	}
}
