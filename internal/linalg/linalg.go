// Package linalg provides exact integer and rational linear algebra for the
// polyhedral analyses used by the file-layout optimizer.
//
// All matrices are small (array and loop dimensionalities are rarely above
// four), so the package favours clarity and exactness over asymptotic
// performance: arithmetic is done in int64 with gcd-based reduction, and
// eliminations are fraction-free (Bareiss) so intermediate values stay
// integral.
package linalg

import (
	"fmt"
	"strings"
)

// Vec is an integer vector.
type Vec []int64

// Mat is a dense integer matrix in row-major order.
type Mat struct {
	R, C int
	a    []int64
}

// NewMat returns an R×C zero matrix.
func NewMat(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: invalid matrix shape %d×%d", r, c))
	}
	return &Mat{R: r, C: c, a: make([]int64, r*c)}
}

// MatFromRows builds a matrix from row slices. All rows must have equal
// length; an empty row set yields a 0×0 matrix.
func MatFromRows(rows [][]int64) *Mat {
	if len(rows) == 0 {
		return NewMat(0, 0)
	}
	c := len(rows[0])
	m := NewMat(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d entries, want %d", i, len(row), c))
		}
		copy(m.a[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) int64 { return m.a[i*m.C+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v int64) { m.a[i*m.C+j] = v }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	n := NewMat(m.R, m.C)
	copy(n.a, m.a)
	return n
}

// Row returns a copy of row i.
func (m *Mat) Row(i int) Vec {
	r := make(Vec, m.C)
	copy(r, m.a[i*m.C:(i+1)*m.C])
	return r
}

// Col returns a copy of column j.
func (m *Mat) Col(j int) Vec {
	c := make(Vec, m.R)
	for i := 0; i < m.R; i++ {
		c[i] = m.At(i, j)
	}
	return c
}

// SetRow overwrites row i with v.
func (m *Mat) SetRow(i int, v Vec) {
	if len(v) != m.C {
		panic("linalg: SetRow length mismatch")
	}
	copy(m.a[i*m.C:(i+1)*m.C], v)
}

// Equal reports whether m and n have the same shape and entries.
func (m *Mat) Equal(n *Mat) bool {
	if m.R != n.R || m.C != n.C {
		return false
	}
	for i := range m.a {
		if m.a[i] != n.a[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether every entry of m is zero.
func (m *Mat) IsZero() bool {
	for _, v := range m.a {
		if v != 0 {
			return false
		}
	}
	return true
}

// Mul returns the matrix product m·n.
func (m *Mat) Mul(n *Mat) *Mat {
	if m.C != n.R {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %d×%d · %d×%d", m.R, m.C, n.R, n.C))
	}
	p := NewMat(m.R, n.C)
	for i := 0; i < m.R; i++ {
		for k := 0; k < m.C; k++ {
			mik := m.At(i, k)
			if mik == 0 {
				continue
			}
			for j := 0; j < n.C; j++ {
				p.a[i*p.C+j] += mik * n.At(k, j)
			}
		}
	}
	return p
}

// MulVec returns the matrix-vector product m·v.
func (m *Mat) MulVec(v Vec) Vec {
	if m.C != len(v) {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %d×%d · %d", m.R, m.C, len(v)))
	}
	r := make(Vec, m.R)
	for i := 0; i < m.R; i++ {
		var s int64
		for j := 0; j < m.C; j++ {
			s += m.At(i, j) * v[j]
		}
		r[i] = s
	}
	return r
}

// VecMul returns the vector-matrix product v·m (v treated as a row vector).
func VecMul(v Vec, m *Mat) Vec {
	if len(v) != m.R {
		panic(fmt.Sprintf("linalg: VecMul shape mismatch %d · %d×%d", len(v), m.R, m.C))
	}
	r := make(Vec, m.C)
	for j := 0; j < m.C; j++ {
		var s int64
		for i := 0; i < m.R; i++ {
			s += v[i] * m.At(i, j)
		}
		r[j] = s
	}
	return r
}

// Transpose returns mᵀ.
func (m *Mat) Transpose() *Mat {
	t := NewMat(m.C, m.R)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// HCat returns the horizontal concatenation [m | n].
func (m *Mat) HCat(n *Mat) *Mat {
	if m.R != n.R {
		panic("linalg: HCat row mismatch")
	}
	p := NewMat(m.R, m.C+n.C)
	for i := 0; i < m.R; i++ {
		copy(p.a[i*p.C:], m.a[i*m.C:(i+1)*m.C])
		copy(p.a[i*p.C+m.C:], n.a[i*n.C:(i+1)*n.C])
	}
	return p
}

// String renders the matrix in a bracketed human-readable form.
func (m *Mat) String() string {
	var b strings.Builder
	b.WriteString("[")
	for i := 0; i < m.R; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.C; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%d", m.At(i, j))
		}
	}
	b.WriteString("]")
	return b.String()
}

// String renders the vector as (v1, v2, …).
func (v Vec) String() string {
	var b strings.Builder
	b.WriteString("(")
	for i, x := range v {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", x)
	}
	b.WriteString(")")
	return b.String()
}

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	w := make(Vec, len(v))
	copy(w, v)
	return w
}

// Equal reports element-wise equality of equal-length vectors.
func (v Vec) Equal(w Vec) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether every component of v is zero.
func (v Vec) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// Dot returns the inner product of v and w.
func (v Vec) Dot(w Vec) int64 {
	if len(v) != len(w) {
		panic("linalg: Dot length mismatch")
	}
	var s int64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Neg returns -v.
func (v Vec) Neg() Vec {
	w := make(Vec, len(v))
	for i, x := range v {
		w[i] = -x
	}
	return w
}

// GCD returns the non-negative greatest common divisor of a and b, with
// GCD(0, 0) = 0.
func GCD(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// ExtGCD returns (g, x, y) such that a·x + b·y = g = gcd(a, b), g ≥ 0 unless
// both inputs are zero.
func ExtGCD(a, b int64) (g, x, y int64) {
	if b == 0 {
		switch {
		case a > 0:
			return a, 1, 0
		case a < 0:
			return -a, -1, 0
		default:
			return 0, 0, 0
		}
	}
	g, x1, y1 := ExtGCD(b, a%b)
	return g, y1, x1 - (a/b)*y1
}

// ContentOf returns the gcd of all components of v (0 for the zero vector).
func ContentOf(v Vec) int64 {
	var g int64
	for _, x := range v {
		g = GCD(g, x)
	}
	return g
}

// Primitive divides v by the gcd of its components, producing a primitive
// vector pointing in the same direction. The zero vector is returned
// unchanged. The sign is normalized so the first nonzero component is
// positive.
func Primitive(v Vec) Vec {
	g := ContentOf(v)
	w := v.Clone()
	if g == 0 {
		return w
	}
	for i := range w {
		w[i] /= g
	}
	for _, x := range w {
		if x != 0 {
			if x < 0 {
				for i := range w {
					w[i] = -w[i]
				}
			}
			break
		}
	}
	return w
}

// Det returns the determinant of a square matrix using fraction-free
// Bareiss elimination.
func (m *Mat) Det() int64 {
	if m.R != m.C {
		panic("linalg: Det on non-square matrix")
	}
	n := m.R
	if n == 0 {
		return 1
	}
	w := m.Clone()
	sign := int64(1)
	var prev int64 = 1
	for k := 0; k < n-1; k++ {
		if w.At(k, k) == 0 {
			swapped := false
			for i := k + 1; i < n; i++ {
				if w.At(i, k) != 0 {
					w.swapRows(i, k)
					sign = -sign
					swapped = true
					break
				}
			}
			if !swapped {
				return 0
			}
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < n; j++ {
				v := w.At(i, j)*w.At(k, k) - w.At(i, k)*w.At(k, j)
				w.Set(i, j, v/prev)
			}
			w.Set(i, k, 0)
		}
		prev = w.At(k, k)
	}
	return sign * w.At(n-1, n-1)
}

func (m *Mat) swapRows(i, j int) {
	if i == j {
		return
	}
	for c := 0; c < m.C; c++ {
		m.a[i*m.C+c], m.a[j*m.C+c] = m.a[j*m.C+c], m.a[i*m.C+c]
	}
}

// IsUnimodular reports whether m is square with determinant ±1.
func (m *Mat) IsUnimodular() bool {
	if m.R != m.C {
		return false
	}
	d := m.Det()
	return d == 1 || d == -1
}
