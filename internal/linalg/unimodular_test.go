package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompleteToUnimodularBasic(t *testing.T) {
	cases := []Vec{
		{1, 0},
		{0, 1},
		{1, 1},
		{2, 3},
		{3, -2},
		{1, 0, 0},
		{0, 0, 1},
		{2, 3, 5},
		{6, 10, 15},
		{1, -1, 1, -1},
	}
	for _, w := range cases {
		for row := 0; row < len(w); row++ {
			d, ok := CompleteToUnimodular(w, row)
			if !ok {
				t.Fatalf("CompleteToUnimodular(%v, %d) failed", w, row)
			}
			if !d.IsUnimodular() {
				t.Errorf("result not unimodular for %v: det=%d", w, d.Det())
			}
			if !d.Row(row).Equal(w) {
				t.Errorf("row %d = %v, want %v", row, d.Row(row), w)
			}
		}
	}
}

func TestCompleteToUnimodularRejects(t *testing.T) {
	if _, ok := CompleteToUnimodular(Vec{0, 0}, 0); ok {
		t.Error("zero vector accepted")
	}
	if _, ok := CompleteToUnimodular(Vec{2, 4}, 0); ok {
		t.Error("non-primitive vector accepted")
	}
	if _, ok := CompleteToUnimodular(Vec{1, 2}, 5); ok {
		t.Error("out-of-range row accepted")
	}
	if _, ok := CompleteToUnimodular(Vec{}, 0); ok {
		t.Error("empty vector accepted")
	}
}

func TestCompleteToUnimodularQuick(t *testing.T) {
	f := func(a, b, c int16, rowSeed uint8) bool {
		w := Primitive(Vec{int64(a), int64(b), int64(c)})
		if w.IsZero() {
			return true // nothing to complete
		}
		row := int(rowSeed) % 3
		d, ok := CompleteToUnimodular(w, row)
		if !ok {
			return false
		}
		return d.IsUnimodular() && d.Row(row).Equal(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHermiteNormalForm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		r, c := 1+rng.Intn(4), 1+rng.Intn(4)
		a := NewMat(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				a.Set(i, j, int64(rng.Intn(11)-5))
			}
		}
		h, u := HermiteNormalForm(a)
		if !u.IsUnimodular() {
			t.Fatalf("trial %d: U not unimodular (det %d)", trial, u.Det())
		}
		if !u.Mul(a).Equal(h) {
			t.Fatalf("trial %d: U·A ≠ H", trial)
		}
		checkHNFShape(t, h)
	}
}

// checkHNFShape verifies the echelon structure: pivots strictly move right,
// pivots are positive, entries above a pivot lie in [0, pivot), zero rows
// trail.
func checkHNFShape(t *testing.T, h *Mat) {
	t.Helper()
	prevPivot := -1
	seenZeroRow := false
	for i := 0; i < h.R; i++ {
		p := -1
		for j := 0; j < h.C; j++ {
			if h.At(i, j) != 0 {
				p = j
				break
			}
		}
		if p < 0 {
			seenZeroRow = true
			continue
		}
		if seenZeroRow {
			t.Fatalf("nonzero row after zero row in %v", h)
		}
		if p <= prevPivot {
			t.Fatalf("pivot columns not strictly increasing in %v", h)
		}
		if h.At(i, p) <= 0 {
			t.Fatalf("pivot not positive in %v", h)
		}
		for k := 0; k < i; k++ {
			if v := h.At(k, p); v < 0 || v >= h.At(i, p) {
				t.Fatalf("entry above pivot not reduced in %v", h)
			}
		}
		prevPivot = p
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 3}, {-7, 2, -4}, {6, 3, 2}, {-6, 3, -2}, {0, 5, 0}, {1, 5, 0}, {-1, 5, -1},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// The completed matrix must be a bijection of the lattice: for random small
// integer vectors x, D⁻¹(D·x) = x.
func TestCompletionIsLatticeBijection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(3)
		w := make(Vec, n)
		for i := range w {
			w[i] = int64(rng.Intn(9) - 4)
		}
		w = Primitive(w)
		if w.IsZero() {
			continue
		}
		d, ok := CompleteToUnimodular(w, rng.Intn(n))
		if !ok {
			t.Fatalf("completion failed for %v", w)
		}
		inv, ok := d.InverseUnimodular()
		if !ok {
			t.Fatalf("inverse failed for unimodular %v", d)
		}
		x := make(Vec, n)
		for i := range x {
			x[i] = int64(rng.Intn(21) - 10)
		}
		if got := inv.MulVec(d.MulVec(x)); !got.Equal(x) {
			t.Fatalf("D⁻¹D x = %v, want %v", got, x)
		}
	}
}
