package linalg

import (
	"math/rand"
	"testing"
)

func checkSNF(t *testing.T, a *Mat) {
	t.Helper()
	s, u, v := SmithNormalForm(a)
	if !u.IsUnimodular() {
		t.Fatalf("U not unimodular for %v: det %d", a, u.Det())
	}
	if !v.IsUnimodular() {
		t.Fatalf("V not unimodular for %v: det %d", a, v.Det())
	}
	if !u.Mul(a).Mul(v).Equal(s) {
		t.Fatalf("U·A·V ≠ S for %v:\nU=%v\nV=%v\nS=%v\nUAV=%v", a, u, v, s, u.Mul(a).Mul(v))
	}
	// S diagonal with non-negative divisibility chain.
	n := s.R
	if s.C < n {
		n = s.C
	}
	for i := 0; i < s.R; i++ {
		for j := 0; j < s.C; j++ {
			if i != j && s.At(i, j) != 0 {
				t.Fatalf("S not diagonal for %v: S=%v", a, s)
			}
		}
	}
	for k := 0; k < n; k++ {
		d := s.At(k, k)
		if d < 0 {
			t.Fatalf("negative invariant factor in %v", s)
		}
		if k+1 < n {
			next := s.At(k+1, k+1)
			if d == 0 && next != 0 {
				t.Fatalf("zero before nonzero in chain: %v", s)
			}
			if d != 0 && next%d != 0 {
				t.Fatalf("divisibility chain broken (%d ∤ %d) in %v", d, next, s)
			}
		}
	}
}

func TestSmithKnownCases(t *testing.T) {
	cases := []struct {
		a    *Mat
		diag []int64
	}{
		{Identity(3), []int64{1, 1, 1}},
		{MatFromRows([][]int64{{2, 0}, {0, 3}}), []int64{1, 6}},
		{MatFromRows([][]int64{{2, 4, 4}, {-6, 6, 12}, {10, 4, 16}}), []int64{2, 2, 156}},
		{MatFromRows([][]int64{{0, 0}, {0, 0}}), []int64{0, 0}},
		{MatFromRows([][]int64{{6, 4}, {2, 8}}), []int64{2, 20}},
	}
	for i, c := range cases {
		checkSNF(t, c.a)
		s, _, _ := SmithNormalForm(c.a)
		for k, want := range c.diag {
			if got := s.At(k, k); got != want {
				t.Errorf("case %d: d%d = %d, want %d (S=%v)", i, k, got, want, s)
			}
		}
	}
}

func TestSmithRectangular(t *testing.T) {
	checkSNF(t, MatFromRows([][]int64{{1, 2, 3}}))
	checkSNF(t, MatFromRows([][]int64{{2}, {4}, {6}}))
	checkSNF(t, MatFromRows([][]int64{{1, 0, 0}, {0, 2, 0}}))
}

func TestSmithRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		r, c := 1+rng.Intn(4), 1+rng.Intn(4)
		a := NewMat(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				a.Set(i, j, int64(rng.Intn(13)-6))
			}
		}
		checkSNF(t, a)
	}
}

// The product of the first k invariant factors equals the gcd of all k×k
// minors — checked here for k = min dimension via |det| on square inputs.
func TestSmithDeterminantInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(3)
		a := NewMat(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, int64(rng.Intn(9)-4))
			}
		}
		s, _, _ := SmithNormalForm(a)
		prod := int64(1)
		for k := 0; k < n; k++ {
			prod *= s.At(k, k)
		}
		det := a.Det()
		if det < 0 {
			det = -det
		}
		if prod != det {
			t.Fatalf("Πdᵢ = %d but |det| = %d for %v (S=%v)", prod, det, a, s)
		}
	}
}
