package linalg

import (
	"math/rand"
	"testing"
)

func TestRightNullspaceSimple(t *testing.T) {
	// A = [1 1] has nullspace spanned by (1, -1).
	a := MatFromRows([][]int64{{1, 1}})
	ns := RightNullspace(a)
	if len(ns) != 1 {
		t.Fatalf("nullspace dim = %d, want 1", len(ns))
	}
	if !a.MulVec(ns[0]).IsZero() {
		t.Errorf("A·x = %v, want 0", a.MulVec(ns[0]))
	}
}

func TestRightNullspaceFullRank(t *testing.T) {
	if ns := RightNullspace(Identity(3)); len(ns) != 0 {
		t.Errorf("identity has nontrivial nullspace: %v", ns)
	}
}

func TestRightNullspaceZeroMatrix(t *testing.T) {
	ns := RightNullspace(NewMat(2, 3))
	if len(ns) != 3 {
		t.Fatalf("nullspace dim = %d, want 3", len(ns))
	}
}

func TestLeftNullspace(t *testing.T) {
	// Rows (1,2,3) and (2,4,6) are dependent: left nullspace spanned by (2,-1).
	a := MatFromRows([][]int64{{1, 2, 3}, {2, 4, 6}})
	ns := LeftNullspace(a)
	if len(ns) != 1 {
		t.Fatalf("left nullspace dim = %d, want 1", len(ns))
	}
	if !VecMul(ns[0], a).IsZero() {
		t.Errorf("w·A = %v, want 0", VecMul(ns[0], a))
	}
}

func TestNullspaceVectorsArePrimitive(t *testing.T) {
	a := MatFromRows([][]int64{{2, 4, 8}})
	for _, v := range RightNullspace(a) {
		if ContentOf(v) != 1 {
			t.Errorf("basis vector %v is not primitive", v)
		}
	}
}

func TestNullspaceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		r, c := 1+rng.Intn(4), 1+rng.Intn(5)
		a := NewMat(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				a.Set(i, j, int64(rng.Intn(9)-4))
			}
		}
		ns := RightNullspace(a)
		if len(ns) != c-Rank(a) {
			t.Fatalf("trial %d: dim(null) = %d, want %d for %v", trial, len(ns), c-Rank(a), a)
		}
		for _, v := range ns {
			if !a.MulVec(v).IsZero() {
				t.Fatalf("trial %d: A·x ≠ 0 for A=%v x=%v", trial, a, v)
			}
			if v.IsZero() {
				t.Fatalf("trial %d: zero basis vector", trial)
			}
		}
		// Basis vectors must be linearly independent: stack them and check rank.
		if len(ns) > 1 {
			b := NewMat(len(ns), c)
			for i, v := range ns {
				b.SetRow(i, v)
			}
			if Rank(b) != len(ns) {
				t.Fatalf("trial %d: dependent basis %v", trial, ns)
			}
		}
	}
}

func TestRatArithmetic(t *testing.T) {
	a, b := R(1, 2), R(1, 3)
	if got := a.Add(b); got != R(5, 6) {
		t.Errorf("1/2 + 1/3 = %v", got)
	}
	if got := a.Sub(b); got != R(1, 6) {
		t.Errorf("1/2 - 1/3 = %v", got)
	}
	if got := a.Mul(b); got != R(1, 6) {
		t.Errorf("1/2 · 1/3 = %v", got)
	}
	if got := a.Div(b); got != R(3, 2) {
		t.Errorf("(1/2)/(1/3) = %v", got)
	}
	if R(-2, -4) != R(1, 2) {
		t.Error("sign normalization failed")
	}
	if R(2, 4).String() != "1/2" || RI(3).String() != "3" {
		t.Error("Rat.String wrong")
	}
	if R(1, 2).Cmp(R(2, 3)) != -1 || R(1, 2).Cmp(R(1, 2)) != 0 || R(3, 4).Cmp(R(1, 2)) != 1 {
		t.Error("Cmp wrong")
	}
	if !RI(4).IsInt() || R(1, 2).IsInt() {
		t.Error("IsInt wrong")
	}
}

func TestRatZeroDenominatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero denominator")
		}
	}()
	R(1, 0)
}
