package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatBasics(t *testing.T) {
	m := MatFromRows([][]int64{{1, 2}, {3, 4}})
	if m.R != 2 || m.C != 2 {
		t.Fatalf("shape = %d×%d, want 2×2", m.R, m.C)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %d, want 3", m.At(1, 0))
	}
	m.Set(1, 0, 7)
	if m.At(1, 0) != 7 {
		t.Errorf("Set failed: At(1,0) = %d, want 7", m.At(1, 0))
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Error("Clone aliases original storage")
	}
	if !m.Row(0).Equal(Vec{1, 2}) {
		t.Errorf("Row(0) = %v", m.Row(0))
	}
	if !m.Col(1).Equal(Vec{2, 4}) {
		t.Errorf("Col(1) = %v", m.Col(1))
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	m := MatFromRows([][]int64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	if !id.Mul(m).Equal(m) || !m.Mul(id).Equal(m) {
		t.Error("identity is not multiplicative neutral")
	}
	if id.Det() != 1 {
		t.Errorf("det(I) = %d, want 1", id.Det())
	}
}

func TestMul(t *testing.T) {
	a := MatFromRows([][]int64{{1, 2}, {3, 4}})
	b := MatFromRows([][]int64{{5, 6}, {7, 8}})
	want := MatFromRows([][]int64{{19, 22}, {43, 50}})
	if got := a.Mul(b); !got.Equal(want) {
		t.Errorf("a·b = %v, want %v", got, want)
	}
}

func TestMulVecAndVecMul(t *testing.T) {
	a := MatFromRows([][]int64{{1, 0, 2}, {0, 3, 0}})
	v := Vec{1, 2, 3}
	if got := a.MulVec(v); !got.Equal(Vec{7, 6}) {
		t.Errorf("A·v = %v, want (7, 6)", got)
	}
	w := Vec{1, 2}
	if got := VecMul(w, a); !got.Equal(Vec{1, 6, 2}) {
		t.Errorf("w·A = %v, want (1, 6, 2)", got)
	}
}

func TestTranspose(t *testing.T) {
	a := MatFromRows([][]int64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.R != 3 || at.C != 2 || at.At(2, 1) != 6 {
		t.Errorf("transpose wrong: %v", at)
	}
	if !at.Transpose().Equal(a) {
		t.Error("double transpose is not identity")
	}
}

func TestHCat(t *testing.T) {
	a := MatFromRows([][]int64{{1}, {2}})
	b := MatFromRows([][]int64{{3, 4}, {5, 6}})
	got := a.HCat(b)
	want := MatFromRows([][]int64{{1, 3, 4}, {2, 5, 6}})
	if !got.Equal(want) {
		t.Errorf("HCat = %v, want %v", got, want)
	}
}

func TestDet(t *testing.T) {
	cases := []struct {
		m    *Mat
		want int64
	}{
		{MatFromRows([][]int64{{5}}), 5},
		{MatFromRows([][]int64{{1, 2}, {3, 4}}), -2},
		{MatFromRows([][]int64{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}}), 24},
		{MatFromRows([][]int64{{0, 1}, {1, 0}}), -1},
		{MatFromRows([][]int64{{1, 2}, {2, 4}}), 0},
		{MatFromRows([][]int64{{0, 2, 1}, {1, 0, 0}, {3, 1, 1}}), -1},
	}
	for i, c := range cases {
		if got := c.m.Det(); got != c.want {
			t.Errorf("case %d: det = %d, want %d", i, got, c.want)
		}
	}
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{12, 18, 6}, {-12, 18, 6}, {12, -18, 6}, {0, 5, 5}, {5, 0, 5}, {0, 0, 0}, {7, 13, 1},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestExtGCDProperty(t *testing.T) {
	f := func(a, b int32) bool {
		g, x, y := ExtGCD(int64(a), int64(b))
		if g != GCD(int64(a), int64(b)) {
			return false
		}
		return int64(a)*x+int64(b)*y == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrimitive(t *testing.T) {
	cases := []struct{ in, want Vec }{
		{Vec{2, 4, 6}, Vec{1, 2, 3}},
		{Vec{-2, 4}, Vec{1, -2}},
		{Vec{0, 0}, Vec{0, 0}},
		{Vec{0, -3, 6}, Vec{0, 1, -2}},
		{Vec{7}, Vec{1}},
	}
	for i, c := range cases {
		if got := Primitive(c.in); !got.Equal(c.want) {
			t.Errorf("case %d: Primitive(%v) = %v, want %v", i, c.in, got, c.want)
		}
	}
}

func TestVecOps(t *testing.T) {
	v := Vec{1, -2, 3}
	if v.Dot(Vec{4, 5, 6}) != 12 {
		t.Errorf("Dot = %d, want 12", v.Dot(Vec{4, 5, 6}))
	}
	if !v.Neg().Equal(Vec{-1, 2, -3}) {
		t.Errorf("Neg = %v", v.Neg())
	}
	if !(Vec{0, 0}).IsZero() || v.IsZero() {
		t.Error("IsZero wrong")
	}
}

func TestRank(t *testing.T) {
	cases := []struct {
		m    *Mat
		want int
	}{
		{Identity(3), 3},
		{MatFromRows([][]int64{{1, 2}, {2, 4}}), 1},
		{NewMat(2, 3), 0},
		{MatFromRows([][]int64{{1, 0, 0}, {0, 1, 0}}), 2},
	}
	for i, c := range cases {
		if got := Rank(c.m); got != c.want {
			t.Errorf("case %d: rank = %d, want %d", i, got, c.want)
		}
	}
}

func TestIsUnimodular(t *testing.T) {
	if !Identity(4).IsUnimodular() {
		t.Error("I should be unimodular")
	}
	if MatFromRows([][]int64{{2, 0}, {0, 1}}).IsUnimodular() {
		t.Error("det 2 matrix reported unimodular")
	}
	if !MatFromRows([][]int64{{1, 1}, {0, 1}}).IsUnimodular() {
		t.Error("shear should be unimodular")
	}
}

// randomUnimodular builds a random unimodular matrix from elementary ops.
func randomUnimodular(rng *rand.Rand, n int) *Mat {
	m := Identity(n)
	for k := 0; k < 12; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		f := int64(rng.Intn(5) - 2)
		addRow(m, i, j, f)
	}
	return m
}

func TestInverseUnimodular(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(4)
		m := randomUnimodular(rng, n)
		inv, ok := m.InverseUnimodular()
		if !ok {
			t.Fatalf("trial %d: inverse of unimodular %v failed", trial, m)
		}
		if !m.Mul(inv).Equal(Identity(n)) || !inv.Mul(m).Equal(Identity(n)) {
			t.Fatalf("trial %d: m·m⁻¹ ≠ I for %v", trial, m)
		}
	}
}

func TestInverseSingular(t *testing.T) {
	if _, ok := MatFromRows([][]int64{{1, 2}, {2, 4}}).InverseUnimodular(); ok {
		t.Error("singular matrix reported invertible")
	}
	if _, ok := MatFromRows([][]int64{{2, 0}, {0, 1}}).InverseUnimodular(); ok {
		t.Error("non-unimodular matrix should not have integer inverse")
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on shape mismatch")
		}
	}()
	NewMat(2, 3).Mul(NewMat(2, 3))
}

func TestStringForms(t *testing.T) {
	m := MatFromRows([][]int64{{1, 2}, {3, 4}})
	if m.String() != "[1 2; 3 4]" {
		t.Errorf("Mat.String = %q", m.String())
	}
	if (Vec{1, -2}).String() != "(1, -2)" {
		t.Errorf("Vec.String = %q", Vec{1, -2}.String())
	}
}
