package obs

import (
	"fmt"
	"sort"
)

// Counter is a monotonically increasing integer metric.
type Counter struct{ n int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds d (d may be any sign; counters used as plain accumulators).
func (c *Counter) Add(d int64) { c.n += d }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Gauge is a point-in-time float metric.
type Gauge struct{ v float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram accumulates int64 observations into fixed buckets (upper
// bounds, ascending) plus an implicit overflow bucket, tracking count,
// sum, min and max. The unit is whatever the caller observes — the
// simulator's latency histograms observe microseconds.
type Histogram struct {
	bounds   []int64 // ascending upper bounds (inclusive)
	counts   []int64 // len(bounds)+1; last is overflow
	count    int64
	sum      int64
	min, max int64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds ...int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// DefaultLatencyBucketsUS are the latency buckets (µs) used for the
// simulator's service-time histograms: they straddle the platform's
// cache-hit times (~1–2 ms), positioned disk reads (~6–9 ms), and the
// degraded-mode deadline (50 ms).
func DefaultLatencyBucketsUS() []int64 {
	return []int64{100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000}
}

// Observe adds one observation.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the observation total.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an approximation of the q-quantile (q in [0, 1]) of
// the observations: the rank is located in the cumulative bucket counts
// and the value interpolated linearly within the bucket. The overflow
// bucket reports the observed max (the only bound it has). Empty
// histograms report 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.count-1))
	var cum int64
	for i, n := range h.counts {
		if n == 0 {
			continue
		}
		if rank < cum+n {
			if i >= len(h.bounds) {
				return h.max
			}
			lo := h.min
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			if hi < lo {
				return hi
			}
			frac := (float64(rank-cum) + 0.5) / float64(n)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += n
	}
	return h.max
}

// HistBucket is one non-empty histogram bucket: N observations at most Le
// (Le == -1 marks the overflow bucket).
type HistBucket struct {
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

// HistogramSnapshot is the JSON-ready state of a histogram; empty buckets
// are omitted to keep exports compact.
type HistogramSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Min     int64        `json:"min"`
	Max     int64        `json:"max"`
	Mean    float64      `json:"mean"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max, Mean: h.Mean()}
	for i, n := range h.counts {
		if n == 0 {
			continue
		}
		le := int64(-1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, HistBucket{Le: le, N: n})
	}
	return s
}

// Registry is a named collection of counters, gauges and histograms with
// get-or-create accessors. Like everything in obs it is single-owner:
// one registry per machine, no locking.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.hists[name] = h
	}
	return h
}

// RegistrySnapshot is the JSON-ready registry state. encoding/json
// marshals map keys in sorted order, so serialized snapshots are
// deterministic.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric in the registry.
func (r *Registry) Snapshot() RegistrySnapshot {
	var s RegistrySnapshot
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}
