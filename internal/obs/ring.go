package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// Kind classifies a structured run event.
type Kind string

// Event kinds emitted by the simulator and the pfs layer. Lifecycle
// events frame a run; fault.* and cache.* events explain degraded-mode
// behavior; pfs.* events track the data-bearing file system.
const (
	EvRunStart      Kind = "run.start"
	EvRunEnd        Kind = "run.end"
	EvNestStart     Kind = "nest.start"
	EvFailover      Kind = "fault.failover"
	EvTimeout       Kind = "fault.timeout"
	EvReconstruct   Kind = "fault.reconstruct"
	EvEvictionStorm Kind = "cache.eviction-storm"
	EvNodeDown      Kind = "pfs.node-down"
	EvNodeUp        Kind = "pfs.node-up"
	EvDegradedRead  Kind = "pfs.degraded-read"
)

// Event is one structured run event. TimeUS is the simulator's virtual
// clock (µs); Node, Thread and File are -1 when not applicable, so a zero
// id is never ambiguous in exports. Seq is stamped by the ring.
type Event struct {
	Seq    int64  `json:"seq"`
	TimeUS int64  `json:"time_us"`
	Kind   Kind   `json:"kind"`
	Node   int    `json:"node"`
	Thread int    `json:"thread"`
	File   int32  `json:"file"`
	Detail string `json:"detail,omitempty"`
}

// Ring is a bounded event sink: the most recent capacity events are kept,
// older ones are dropped (counted, never silently). Appending never
// allocates once the buffer has grown to capacity.
type Ring struct {
	buf   []Event
	cap   int
	total int64
}

// DefaultRingCapacity bounds the event buffer of a metrics observer:
// lifecycle events are per-nest and degraded-mode events are per-incident,
// so 4096 comfortably holds a full run while bounding a fault storm.
const DefaultRingCapacity = 4096

// NewRing returns an empty ring holding at most capacity events
// (capacity < 1 falls back to DefaultRingCapacity).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = DefaultRingCapacity
	}
	return &Ring{cap: capacity}
}

// Append stamps e.Seq with the running event number and stores it,
// dropping the oldest event when full.
func (r *Ring) Append(e Event) {
	e.Seq = r.total
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.total%int64(r.cap)] = e
	}
	r.total++
}

// Len returns the number of retained events.
func (r *Ring) Len() int { return len(r.buf) }

// Total returns the number of events ever appended.
func (r *Ring) Total() int64 { return r.total }

// Dropped returns how many events were displaced by capacity pressure.
func (r *Ring) Dropped() int64 { return r.total - int64(len(r.buf)) }

// Events returns the retained events oldest-first.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	if r.total > int64(len(r.buf)) {
		start := int(r.total % int64(r.cap))
		out = append(out, r.buf[start:]...)
		out = append(out, r.buf[:start]...)
		return out
	}
	return append(out, r.buf...)
}

// WriteJSONL writes the retained events oldest-first, one JSON object per
// line. The encoding is deterministic (fixed field order), so identical
// runs export byte-identical streams — the property the golden-file test
// pins down.
func (r *Ring) WriteJSONL(w io.Writer) error {
	return WriteEventsJSONL(w, r.Events())
}

// WriteEventsJSONL writes the given events as JSONL.
func WriteEventsJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}
