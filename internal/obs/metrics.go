package obs

import "fmt"

// KeyedStats accumulates the per-layer service breakdown for one key — an
// array (file) or a thread.
type KeyedStats struct {
	Accesses      int64
	ServedIO      int64
	ServedStorage int64
	ServedDisk    int64
	LatencySumNS  int64
}

func (k *KeyedStats) record(level Level, latencyNS int64) {
	k.Accesses++
	k.LatencySumNS += latencyNS
	switch level {
	case LevelIO:
		k.ServedIO++
	case LevelStorage:
		k.ServedStorage++
	default:
		k.ServedDisk++
	}
}

// LayerBreakdown is the JSON-ready form of KeyedStats with the derived
// hit ratios the paper's tables are built from:
//
//   - IOHitPct: fraction of all requests served by the I/O-node cache.
//   - StorageHitPct: hit ratio *at* the storage layer — of the requests
//     that missed the I/O layer and reached it.
//   - DiskPct: fraction of all requests that went to a device.
type LayerBreakdown struct {
	Accesses      int64   `json:"accesses"`
	ServedIO      int64   `json:"served_io"`
	ServedStorage int64   `json:"served_storage"`
	ServedDisk    int64   `json:"served_disk"`
	IOHitPct      float64 `json:"io_hit_pct"`
	StorageHitPct float64 `json:"storage_hit_pct"`
	DiskPct       float64 `json:"disk_pct"`
	AvgLatencyUS  float64 `json:"avg_latency_us"`
}

func (k *KeyedStats) breakdown() LayerBreakdown {
	b := LayerBreakdown{
		Accesses:      k.Accesses,
		ServedIO:      k.ServedIO,
		ServedStorage: k.ServedStorage,
		ServedDisk:    k.ServedDisk,
	}
	if k.Accesses > 0 {
		b.IOHitPct = 100 * float64(k.ServedIO) / float64(k.Accesses)
		b.DiskPct = 100 * float64(k.ServedDisk) / float64(k.Accesses)
		b.AvgLatencyUS = float64(k.LatencySumNS) / 1000 / float64(k.Accesses)
	}
	if below := k.Accesses - k.ServedIO; below > 0 {
		b.StorageHitPct = 100 * float64(k.ServedStorage) / float64(below)
	}
	return b
}

// NodeStats accumulates device-level metrics for one storage node.
type NodeStats struct {
	Reads          int64
	SeqReads       int64
	ServiceSumNS   int64
	RetryWaits     int64
	RetryWaitSumNS int64
}

// NodeSnapshot is the JSON-ready per-storage-node state.
type NodeSnapshot struct {
	Node          int     `json:"node"`
	Reads         int64   `json:"reads"`
	SeqReads      int64   `json:"seq_reads"`
	AvgServiceUS  float64 `json:"avg_service_us"`
	RetryWaits    int64   `json:"retry_waits"`
	RetryWaitUS   int64   `json:"retry_wait_us"`
	PrimaryBlocks int64   `json:"primary_blocks,omitempty"`
}

// CacheNodeStats is a per-cache-instance counter set, mirrored from the
// storage layer's cache statistics without importing it (obs stays
// zero-dependency).
type CacheNodeStats struct {
	Accesses  int64 `json:"accesses"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// EventSummary summarizes the event stream for snapshots.
type EventSummary struct {
	Total   int64          `json:"total"`
	Dropped int64          `json:"dropped"`
	ByKind  map[Kind]int64 `json:"by_kind,omitempty"`
}

// Snapshot is the complete, JSON-ready state of a Metrics observer at the
// end of a run: the per-layer breakdown overall, per array, and per
// thread; per-storage-node device metrics; latency histograms; the
// registry; and the event summary. Serializing a Snapshot is
// deterministic (struct field order plus sorted map keys), which is what
// the cross-worker-count determinism tests compare.
type Snapshot struct {
	Totals      LayerBreakdown               `json:"totals"`
	Arrays      map[string]LayerBreakdown    `json:"arrays,omitempty"`
	Threads     []LayerBreakdown             `json:"threads,omitempty"`
	Nodes       []NodeSnapshot               `json:"nodes,omitempty"`
	IOCaches    []CacheNodeStats             `json:"io_caches,omitempty"`
	StoreCaches []CacheNodeStats             `json:"storage_caches,omitempty"`
	LatencyUS   map[string]HistogramSnapshot `json:"latency_us,omitempty"`
	Counters    map[string]int64             `json:"counters,omitempty"`
	Gauges      map[string]float64           `json:"gauges,omitempty"`
	Events      EventSummary                 `json:"events"`
	EventsTail  []Event                      `json:"-"`
}

// Histogram names in Snapshot.LatencyUS.
const (
	HistRequestLatency = "request"
	HistDiskService    = "disk_service"
	HistRetryWait      = "retry_wait"
)

// Metrics is the standard Observer: it accumulates everything a run
// report needs to explain per-layer behavior. Construct with NewMetrics,
// attach to one machine, Snapshot at the end. Not goroutine-safe.
type Metrics struct {
	reg     *Registry
	ring    *Ring
	byKind  map[Kind]int64
	arrays  []KeyedStats // indexed by file id, grown on demand
	threads []KeyedStats // indexed by thread id, grown on demand
	nodes   []NodeStats  // indexed by storage node, grown on demand
	totals  KeyedStats

	reqHist   *Histogram
	diskHist  *Histogram
	retryHist *Histogram

	names         []string // file id → array name (SetArrayNames)
	primaryBlocks []int64  // per storage node (SetNodePrimaryBlocks)
	ioCaches      []CacheNodeStats
	storeCaches   []CacheNodeStats
}

// NewMetrics returns an empty metrics observer with the default latency
// buckets and event-ring capacity.
func NewMetrics() *Metrics {
	reg := NewRegistry()
	return &Metrics{
		reg:       reg,
		ring:      NewRing(DefaultRingCapacity),
		byKind:    map[Kind]int64{},
		reqHist:   reg.Histogram(HistRequestLatency, DefaultLatencyBucketsUS()...),
		diskHist:  reg.Histogram(HistDiskService, DefaultLatencyBucketsUS()...),
		retryHist: reg.Histogram(HistRetryWait, DefaultLatencyBucketsUS()...),
	}
}

// Registry exposes the underlying registry for custom metrics.
func (m *Metrics) Registry() *Registry { return m.reg }

// Ring exposes the event sink (for JSONL export of the full stream).
func (m *Metrics) Ring() *Ring { return m.ring }

// SetArrayNames maps file ids to array names for the snapshot; unnamed
// files appear as "file<N>".
func (m *Metrics) SetArrayNames(names []string) {
	m.names = append(m.names[:0], names...)
}

// SetNodePrimaryBlocks records each storage node's primary-copy block
// count (stripe balance) for the snapshot.
func (m *Metrics) SetNodePrimaryBlocks(blocks []int64) {
	m.primaryBlocks = append(m.primaryBlocks[:0], blocks...)
}

// SetCacheNodeStats records the per-cache-instance counters of both
// layers for the snapshot.
func (m *Metrics) SetCacheNodeStats(io, storage []CacheNodeStats) {
	m.ioCaches = append(m.ioCaches[:0], io...)
	m.storeCaches = append(m.storeCaches[:0], storage...)
}

func growKeyed(s []KeyedStats, i int) []KeyedStats {
	for len(s) <= i {
		s = append(s, KeyedStats{})
	}
	return s
}

// BlockAccess implements Observer.
func (m *Metrics) BlockAccess(thread int, file int32, level Level, latencyNS int64) {
	m.totals.record(level, latencyNS)
	if int(file) >= len(m.arrays) {
		m.arrays = growKeyed(m.arrays, int(file))
	}
	m.arrays[file].record(level, latencyNS)
	if thread >= len(m.threads) {
		m.threads = growKeyed(m.threads, thread)
	}
	m.threads[thread].record(level, latencyNS)
	m.reqHist.Observe(latencyNS / 1000)
}

// DiskService implements Observer.
func (m *Metrics) DiskService(node int, serviceNS int64, sequential bool) {
	for len(m.nodes) <= node {
		m.nodes = append(m.nodes, NodeStats{})
	}
	n := &m.nodes[node]
	n.Reads++
	n.ServiceSumNS += serviceNS
	if sequential {
		n.SeqReads++
	}
	m.diskHist.Observe(serviceNS / 1000)
}

// RetryWait implements Observer.
func (m *Metrics) RetryWait(node int, waitNS int64) {
	for len(m.nodes) <= node {
		m.nodes = append(m.nodes, NodeStats{})
	}
	n := &m.nodes[node]
	n.RetryWaits++
	n.RetryWaitSumNS += waitNS
	m.retryHist.Observe(waitNS / 1000)
}

// Event implements Observer.
func (m *Metrics) Event(e Event) {
	m.ring.Append(e)
	m.byKind[e.Kind]++
}

var _ Observer = (*Metrics)(nil)

// ArrayName returns the snapshot key for file id f.
func (m *Metrics) ArrayName(f int) string {
	if f < len(m.names) && m.names[f] != "" {
		return m.names[f]
	}
	return fmt.Sprintf("file%d", f)
}

// Snapshot captures the observer state. The receiver keeps accumulating;
// snapshots are cheap deep copies of the derived form.
func (m *Metrics) Snapshot() *Snapshot {
	s := &Snapshot{
		Totals: m.totals.breakdown(),
		Events: EventSummary{Total: m.ring.Total(), Dropped: m.ring.Dropped()},
	}
	if len(m.arrays) > 0 {
		s.Arrays = make(map[string]LayerBreakdown, len(m.arrays))
		for f := range m.arrays {
			if m.arrays[f].Accesses == 0 {
				continue
			}
			s.Arrays[m.ArrayName(f)] = m.arrays[f].breakdown()
		}
	}
	if len(m.threads) > 0 {
		s.Threads = make([]LayerBreakdown, len(m.threads))
		for t := range m.threads {
			s.Threads[t] = m.threads[t].breakdown()
		}
	}
	for i := range m.nodes {
		n := &m.nodes[i]
		ns := NodeSnapshot{
			Node:        i,
			Reads:       n.Reads,
			SeqReads:    n.SeqReads,
			RetryWaits:  n.RetryWaits,
			RetryWaitUS: n.RetryWaitSumNS / 1000,
		}
		if n.Reads > 0 {
			ns.AvgServiceUS = float64(n.ServiceSumNS) / 1000 / float64(n.Reads)
		}
		if i < len(m.primaryBlocks) {
			ns.PrimaryBlocks = m.primaryBlocks[i]
		}
		s.Nodes = append(s.Nodes, ns)
	}
	s.IOCaches = append([]CacheNodeStats(nil), m.ioCaches...)
	s.StoreCaches = append([]CacheNodeStats(nil), m.storeCaches...)
	reg := m.reg.Snapshot()
	s.LatencyUS = reg.Histograms
	s.Counters = reg.Counters
	s.Gauges = reg.Gauges
	if len(m.byKind) > 0 {
		s.Events.ByKind = make(map[Kind]int64, len(m.byKind))
		for k, n := range m.byKind {
			s.Events.ByKind[k] = n
		}
	}
	s.EventsTail = m.ring.Events()
	return s
}
