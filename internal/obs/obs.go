// Package obs is the observability layer of the reproduction: a
// zero-dependency, allocation-lean metrics registry (counters, gauges,
// histograms with latency buckets), a bounded structured-event ring with
// JSONL export, and the Observer hook surface the simulator and storage
// layers report into.
//
// The paper's evaluation (§5, Fig. 7) is entirely about *where* in the
// compute-node → I/O-node → storage-node → disk hierarchy each access
// hits; this package is what lets a run explain *why* a layout wins
// rather than only that it does: per-layer hit ratios keyed by array and
// by thread, disk service-time and retry-wait histograms, and lifecycle /
// degraded-mode events (fail-over, reconstruction, eviction storms).
//
// Everything here is deterministic: observers are driven by the
// simulator's virtual clock, never the wall clock, so snapshots and event
// streams are bit-identical across host worker counts. Nothing in the
// package is goroutine-safe — each simulated machine owns its observer,
// exactly like the machine owns its caches and disks.
package obs

// Level identifies the storage layer that satisfied a block request,
// mirroring the simulator's hit levels (I/O-node cache, storage-node
// cache, disk) in the same order.
type Level int

const (
	// LevelIO: served by the I/O-node cache.
	LevelIO Level = iota
	// LevelStorage: served by the storage-node cache.
	LevelStorage
	// LevelDisk: both cache layers missed; the block came from a device.
	LevelDisk
	numLevels
)

func (l Level) String() string {
	switch l {
	case LevelIO:
		return "io"
	case LevelStorage:
		return "storage"
	case LevelDisk:
		return "disk"
	default:
		return "invalid"
	}
}

// Observer is the pluggable profiling hook surface. The simulator calls it
// from its request hot path, so implementations must be cheap and must not
// block; the no-op default keeps the healthy path branch-predictable.
// Observers are driven serially by one machine and need no locking.
type Observer interface {
	// BlockAccess records one block request issued by a thread against a
	// file (array), the layer that served it, and its end-to-end latency.
	BlockAccess(thread int, file int32, level Level, latencyNS int64)
	// DiskService records one device read on a storage node: the service
	// time charged and whether the sequential fast path was taken.
	DiskService(node int, serviceNS int64, sequential bool)
	// RetryWait records a degraded-mode backoff wait before a retry
	// against a storage node.
	RetryWait(node int, waitNS int64)
	// Event records a structured run event (lifecycle or degraded-mode).
	Event(e Event)
}

// Nop is the no-op Observer; it is the default everywhere an observer is
// accepted, so instrumented code never needs a nil check.
type Nop struct{}

func (Nop) BlockAccess(int, int32, Level, int64) {}
func (Nop) DiskService(int, int64, bool)         {}
func (Nop) RetryWait(int, int64)                 {}
func (Nop) Event(Event)                          {}

var _ Observer = Nop{}

// Tee fans every callback out to each observer in order. Nil and Nop
// entries are dropped; a tee of zero or one useful observers collapses to
// Nop or the single observer, so the hot path never pays for an empty
// fan-out.
func Tee(obs ...Observer) Observer {
	var t tee
	for _, o := range obs {
		if o == nil {
			continue
		}
		if _, ok := o.(Nop); ok {
			continue
		}
		t = append(t, o)
	}
	switch len(t) {
	case 0:
		return Nop{}
	case 1:
		return t[0]
	}
	return t
}

type tee []Observer

func (t tee) BlockAccess(thread int, file int32, level Level, latencyNS int64) {
	for _, o := range t {
		o.BlockAccess(thread, file, level, latencyNS)
	}
}

func (t tee) DiskService(node int, serviceNS int64, sequential bool) {
	for _, o := range t {
		o.DiskService(node, serviceNS, sequential)
	}
}

func (t tee) RetryWait(node int, waitNS int64) {
	for _, o := range t {
		o.RetryWait(node, waitNS)
	}
}

func (t tee) Event(e Event) {
	for _, o := range t {
		o.Event(e)
	}
}
