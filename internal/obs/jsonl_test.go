package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestEventJSONLGolden pins the JSONL event-export encoding to a golden
// file: field order, -1 sentinels for inapplicable ids, omitted empty
// Detail, one canonical JSON object per line. Any encoding change must be
// deliberate (rerun with -update) because downstream consumers parse this.
func TestEventJSONLGolden(t *testing.T) {
	r := NewRing(8)
	r.Append(Event{TimeUS: 0, Kind: EvRunStart, Node: -1, Thread: -1, File: -1})
	r.Append(Event{TimeUS: 0, Kind: EvNestStart, Node: -1, Thread: -1, File: -1, Detail: "nest 0"})
	r.Append(Event{TimeUS: 120_500, Kind: EvFailover, Node: 2, Thread: 17, File: 1})
	r.Append(Event{TimeUS: 180_000, Kind: EvTimeout, Node: 2, Thread: -1, File: 1})
	r.Append(Event{TimeUS: 186_400, Kind: EvReconstruct, Node: 3, Thread: -1, File: 1})
	r.Append(Event{TimeUS: 200_000, Kind: EvEvictionStorm, Node: 0, Thread: -1, File: -1, Detail: "3071 evictions in 4096 accesses"})
	r.Append(Event{TimeUS: 954_321, Kind: EvRunEnd, Node: -1, Thread: -1, File: -1})

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "events.golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSONL export drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
