package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reads")
	c.Inc()
	c.Add(4)
	if got := r.Counter("reads").Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("fill")
	g.Set(0.75)
	if got := r.Gauge("fill").Value(); got != 0.75 {
		t.Errorf("gauge = %v, want 0.75", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 5126 || s.Min != 5 || s.Max != 5000 {
		t.Errorf("count/sum/min/max = %d/%d/%d/%d", s.Count, s.Sum, s.Min, s.Max)
	}
	// 5,10 ≤ 10; 11,100 ≤ 100; none ≤ 1000; 5000 overflows (le = -1).
	want := []HistBucket{{Le: 10, N: 2}, {Le: 100, N: 2}, {Le: -1, N: 1}}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Errorf("buckets = %+v, want %+v", s.Buckets, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile not 0")
	}
	// 100 uniform observations in (0, 100]: quantiles should land near
	// the true values within one bucket's resolution.
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	for _, tc := range []struct {
		q      float64
		lo, hi int64
	}{
		{0, 0, 11}, {0.5, 40, 60}, {0.9, 80, 100}, {1, 90, 100},
	} {
		got := h.Quantile(tc.q)
		if got < tc.lo || got > tc.hi {
			t.Errorf("Quantile(%g) = %d, want in [%d, %d]", tc.q, got, tc.lo, tc.hi)
		}
	}
	// Observations past the last bound surface the max.
	h2 := NewHistogram(10)
	h2.Observe(5000)
	if got := h2.Quantile(0.99); got != 5000 {
		t.Errorf("overflow quantile = %d, want 5000", got)
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for unsorted bounds")
		}
	}()
	NewHistogram(100, 10)
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Append(Event{Kind: EvNestStart, TimeUS: int64(i)})
	}
	if r.Total() != 10 || r.Len() != 4 || r.Dropped() != 6 {
		t.Fatalf("total/len/dropped = %d/%d/%d", r.Total(), r.Len(), r.Dropped())
	}
	evs := r.Events()
	for i, e := range evs {
		wantSeq := int64(6 + i) // oldest retained is the 7th append
		if e.Seq != wantSeq || e.TimeUS != wantSeq {
			t.Errorf("event %d: seq/time = %d/%d, want %d", i, e.Seq, e.TimeUS, wantSeq)
		}
	}
}

func TestTeeCollapses(t *testing.T) {
	if _, ok := Tee().(Nop); !ok {
		t.Error("empty Tee is not Nop")
	}
	if _, ok := Tee(nil, Nop{}).(Nop); !ok {
		t.Error("Tee of nil and Nop is not Nop")
	}
	m := NewMetrics()
	if Tee(nil, m) != Observer(m) {
		t.Error("single-observer Tee did not collapse")
	}
	m2 := NewMetrics()
	tee := Tee(m, m2)
	tee.BlockAccess(0, 0, LevelDisk, 1000)
	tee.Event(Event{Kind: EvRunStart, Node: -1, Thread: -1, File: -1})
	for i, mm := range []*Metrics{m, m2} {
		if mm.totals.Accesses != 1 || mm.ring.Total() != 1 {
			t.Errorf("observer %d missed the fan-out", i)
		}
	}
}

func TestMetricsBreakdown(t *testing.T) {
	m := NewMetrics()
	m.SetArrayNames([]string{"A", "B"})
	// Array 0: 2 IO hits, 1 storage hit, 1 disk. Array 1: 1 disk.
	m.BlockAccess(0, 0, LevelIO, 1000_000)
	m.BlockAccess(1, 0, LevelIO, 1000_000)
	m.BlockAccess(0, 0, LevelStorage, 2000_000)
	m.BlockAccess(1, 0, LevelDisk, 8000_000)
	m.BlockAccess(2, 1, LevelDisk, 9000_000)
	m.DiskService(3, 6_000_000, false)
	m.DiskService(3, 1_280_000, true)
	m.RetryWait(1, 500_000)

	s := m.Snapshot()
	if s.Totals.Accesses != 5 || s.Totals.ServedIO != 2 || s.Totals.ServedStorage != 1 || s.Totals.ServedDisk != 2 {
		t.Errorf("totals = %+v", s.Totals)
	}
	a := s.Arrays["A"]
	if a.Accesses != 4 || a.IOHitPct != 50 {
		t.Errorf("array A = %+v", a)
	}
	// Of the 2 A-requests that reached the storage layer, 1 hit: 50 %.
	if a.StorageHitPct != 50 {
		t.Errorf("array A storage hit = %v, want 50", a.StorageHitPct)
	}
	if got := s.Arrays["B"].DiskPct; got != 100 {
		t.Errorf("array B disk pct = %v, want 100", got)
	}
	if len(s.Threads) != 3 || s.Threads[2].Accesses != 1 {
		t.Errorf("threads = %+v", s.Threads)
	}
	if len(s.Nodes) != 4 {
		t.Fatalf("nodes = %+v", s.Nodes)
	}
	n3 := s.Nodes[3]
	if n3.Reads != 2 || n3.SeqReads != 1 || n3.AvgServiceUS != 3640 {
		t.Errorf("node 3 = %+v", n3)
	}
	if s.Nodes[1].RetryWaits != 1 || s.Nodes[1].RetryWaitUS != 500 {
		t.Errorf("node 1 = %+v", s.Nodes[1])
	}
	if s.LatencyUS[HistDiskService].Count != 2 || s.LatencyUS[HistRetryWait].Count != 1 {
		t.Errorf("latency histograms = %+v", s.LatencyUS)
	}
}

// TestSnapshotJSONDeterministic feeds two metrics instances identical
// observations in the same order and checks the serialized snapshots are
// byte-identical — the property the cross-worker determinism tests build on.
func TestSnapshotJSONDeterministic(t *testing.T) {
	feed := func() *Metrics {
		m := NewMetrics()
		m.SetArrayNames([]string{"u", "v", "w"})
		for i := 0; i < 100; i++ {
			m.BlockAccess(i%7, int32(i%3), Level(i%3), int64(1000*i))
			if i%5 == 0 {
				m.DiskService(i%4, int64(2000*i), i%2 == 0)
			}
			if i%11 == 0 {
				m.Event(Event{TimeUS: int64(i), Kind: EvFailover, Node: i % 4, Thread: i % 7, File: int32(i % 3)})
			}
		}
		m.SetNodePrimaryBlocks([]int64{25, 25, 25, 24})
		return m
	}
	a, err := json.Marshal(feed().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(feed().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("identical observation streams serialized differently")
	}
}
