// Package fault is the deterministic fault-injection subsystem of the
// evaluation platform. A Schedule describes, in virtual time, everything
// that can go wrong underneath the cache hierarchy: individual disks that
// fail slow (their service time inflated over a window) or fail stop
// (permanently dead after an instant), whole storage nodes that drop off
// the network for a window, and a transient block-read error rate.
//
// Schedules are plain data: given the same Schedule and the same request
// sequence, the simulator's degraded-mode behaviour is bit-identical,
// which is what lets a fault run replay exactly under any `-parallel`
// worker count. The Generate constructor derives a Schedule from a
// math/rand seed so experiments can sweep fault intensity with one knob
// while staying reproducible.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Window is a half-open interval [StartNS, EndNS) of virtual time.
type Window struct {
	StartNS, EndNS int64
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t int64) bool { return t >= w.StartNS && t < w.EndNS }

// DiskFault describes the failure behaviour of one disk (one per storage
// node in the simulated platform).
type DiskFault struct {
	// SlowWindows are the fail-slow intervals, sorted and non-overlapping.
	// While inside one, the disk's service time is multiplied by
	// SlowFactor.
	SlowWindows []Window
	// SlowFactor ≥ 1 scales the service time during SlowWindows.
	SlowFactor float64
	// FailStopNS is the instant the disk dies permanently; NeverNS means
	// the disk never fail-stops.
	FailStopNS int64
}

// NodeOutage describes one storage node's network outages: during any of
// the windows the node (its cache and its disk) is unreachable.
type NodeOutage struct {
	// Windows are sorted, non-overlapping outage intervals.
	Windows []Window
}

// NeverNS is a FailStopNS value meaning "never".
const NeverNS = int64(math.MaxInt64)

// Schedule is a complete fault plan for one platform instance. The zero
// value (and a nil *Schedule) is a healthy cluster.
type Schedule struct {
	// Disks[s] is the fault behaviour of storage node s's disk; a missing
	// or zero entry is a healthy disk.
	Disks []DiskFault
	// Nodes[s] is storage node s's outage plan.
	Nodes []NodeOutage
	// TransientErrorRate is the probability, per disk block read attempt,
	// of a retryable read error (media error, dropped request).
	TransientErrorRate float64
}

// Healthy reports whether the schedule injects no faults at all.
func (s *Schedule) Healthy() bool {
	if s == nil {
		return true
	}
	for _, d := range s.Disks {
		if len(d.SlowWindows) > 0 || (d.FailStopNS != 0 && d.FailStopNS != NeverNS) {
			return false
		}
	}
	for _, n := range s.Nodes {
		if len(n.Windows) > 0 {
			return false
		}
	}
	return s.TransientErrorRate == 0
}

// inWindows reports whether t falls inside any of the sorted windows.
func inWindows(ws []Window, t int64) bool {
	i := sort.Search(len(ws), func(i int) bool { return ws[i].EndNS > t })
	return i < len(ws) && ws[i].Contains(t)
}

// SlowFactorAt returns the service-time multiplier of disk s at time t
// (1 when healthy or s is out of range).
func (s *Schedule) SlowFactorAt(disk int, t int64) float64 {
	if s == nil || disk < 0 || disk >= len(s.Disks) {
		return 1
	}
	d := &s.Disks[disk]
	if d.SlowFactor > 1 && inWindows(d.SlowWindows, t) {
		return d.SlowFactor
	}
	return 1
}

// DiskDeadAt reports whether disk s has fail-stopped by time t.
func (s *Schedule) DiskDeadAt(disk int, t int64) bool {
	if s == nil || disk < 0 || disk >= len(s.Disks) {
		return false
	}
	fs := s.Disks[disk].FailStopNS
	return fs != 0 && fs != NeverNS && t >= fs
}

// NodeDownAt reports whether storage node s is unreachable at time t,
// either through a network outage or because its disk has fail-stopped.
func (s *Schedule) NodeDownAt(node int, t int64) bool {
	if s == nil {
		return false
	}
	if node >= 0 && node < len(s.Nodes) && inWindows(s.Nodes[node].Windows, t) {
		return true
	}
	return s.DiskDeadAt(node, t)
}

// Validate checks structural consistency for a platform of `nodes` storage
// nodes.
func (s *Schedule) Validate(nodes int) error {
	if s == nil {
		return nil
	}
	if len(s.Disks) > nodes {
		return fmt.Errorf("fault: schedule covers %d disks, platform has %d", len(s.Disks), nodes)
	}
	if len(s.Nodes) > nodes {
		return fmt.Errorf("fault: schedule covers %d nodes, platform has %d", len(s.Nodes), nodes)
	}
	if s.TransientErrorRate < 0 || s.TransientErrorRate >= 1 {
		return fmt.Errorf("fault: transient error rate %v outside [0, 1)", s.TransientErrorRate)
	}
	for i, d := range s.Disks {
		if len(d.SlowWindows) > 0 && d.SlowFactor < 1 {
			return fmt.Errorf("fault: disk %d slow factor %v < 1", i, d.SlowFactor)
		}
		if d.FailStopNS < 0 {
			return fmt.Errorf("fault: disk %d fail-stop at negative time %d", i, d.FailStopNS)
		}
		if err := validWindows(d.SlowWindows); err != nil {
			return fmt.Errorf("fault: disk %d slow windows: %w", i, err)
		}
	}
	for i, n := range s.Nodes {
		if err := validWindows(n.Windows); err != nil {
			return fmt.Errorf("fault: node %d outage windows: %w", i, err)
		}
	}
	return nil
}

func validWindows(ws []Window) error {
	for i, w := range ws {
		if w.StartNS < 0 || w.EndNS <= w.StartNS {
			return fmt.Errorf("window %d [%d, %d) is empty or negative", i, w.StartNS, w.EndNS)
		}
		if i > 0 && w.StartNS < ws[i-1].EndNS {
			return fmt.Errorf("window %d starts at %d inside previous window ending %d",
				i, w.StartNS, ws[i-1].EndNS)
		}
	}
	return nil
}

// Generation parameters: windows are laid out over a fixed virtual horizon
// long enough to cover any evaluated run; durations and periods scale with
// intensity.
const (
	// horizonNS is the virtual span faults are generated over (10 min —
	// the evaluated runs finish well inside it).
	horizonNS = int64(600e9)
	// basePeriodNS is the mean spacing between fault episodes on a
	// faulted component at intensity 1.
	basePeriodNS = int64(20e9)
)

// Generate derives a Schedule for a platform with `nodes` storage nodes
// from a seed and an intensity in [0, 1]. Intensity 0 returns a healthy
// schedule; intensity 1 is a badly degraded cluster: most disks carry
// fail-slow windows, node outages recur, one disk fail-stops early, and
// transient errors occur on ~2% of reads. The same (seed, nodes,
// intensity) always yields a deeply equal Schedule.
//
// At most one component is ever fail-stopped: single-replica failover
// stays exercised without collapsing the whole cluster, and a run's
// degraded fraction scales smoothly with intensity.
func Generate(seed int64, nodes int, intensity float64) *Schedule {
	if intensity <= 0 || nodes <= 0 {
		return &Schedule{}
	}
	if intensity > 1 {
		intensity = 1
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{
		Disks:              make([]DiskFault, nodes),
		Nodes:              make([]NodeOutage, nodes),
		TransientErrorRate: 0.02 * intensity,
	}
	for i := range s.Disks {
		s.Disks[i].FailStopNS = NeverNS
		// A disk is fail-slow with probability scaling to ~80% at
		// intensity 1; its episodes recur across the horizon.
		if rng.Float64() < 0.8*intensity {
			f := &s.Disks[i]
			f.SlowFactor = 2 + 6*rng.Float64()*intensity // 2x .. 8x
			f.SlowWindows = genWindows(rng, intensity)
		}
		if rng.Float64() < 0.6*intensity {
			s.Nodes[i].Windows = genWindows(rng, 0.5*intensity)
		}
	}
	// One early permanent failure on a deterministic victim when the
	// intensity is high enough to ask for it.
	if nodes > 1 && rng.Float64() < intensity {
		victim := rng.Intn(nodes)
		// Fail between 0.5 s and 5 s of virtual time: early enough to
		// matter for runs of any length.
		s.Disks[victim].FailStopNS = int64(0.5e9 + 4.5e9*rng.Float64())
	}
	return s
}

// genWindows lays out recurring fault episodes over the horizon: period
// shrinks and duty cycle grows with intensity.
func genWindows(rng *rand.Rand, intensity float64) []Window {
	period := int64(float64(basePeriodNS) * (2 - intensity)) // 20s..40s mean
	duty := 0.1 + 0.4*intensity                              // fraction of period faulted
	var ws []Window
	t := int64(rng.Float64() * float64(period))
	for t < horizonNS {
		dur := int64(duty * float64(period) * (0.5 + rng.Float64()))
		if dur < 1 {
			dur = 1
		}
		ws = append(ws, Window{StartNS: t, EndNS: t + dur})
		gap := int64(float64(period) * (0.5 + rng.Float64()))
		t += dur + gap
	}
	return ws
}
