package fault

import (
	"reflect"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, intensity := range []float64{0, 0.3, 0.7, 1} {
		a := Generate(42, 4, intensity)
		b := Generate(42, 4, intensity)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("intensity %v: same seed produced different schedules", intensity)
		}
		if err := a.Validate(4); err != nil {
			t.Errorf("intensity %v: generated schedule invalid: %v", intensity, err)
		}
	}
	if reflect.DeepEqual(Generate(1, 4, 1), Generate(2, 4, 1)) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestGenerateIntensityZeroIsHealthy(t *testing.T) {
	if !Generate(7, 4, 0).Healthy() {
		t.Error("intensity 0 schedule is not healthy")
	}
	if Generate(7, 4, 1).Healthy() {
		t.Error("intensity 1 schedule reports healthy")
	}
	var nilSched *Schedule
	if !nilSched.Healthy() {
		t.Error("nil schedule is not healthy")
	}
}

func TestWindowLookup(t *testing.T) {
	s := &Schedule{
		Disks: []DiskFault{
			{SlowWindows: []Window{{10, 20}, {30, 40}}, SlowFactor: 4, FailStopNS: NeverNS},
			{FailStopNS: 25},
		},
		Nodes: []NodeOutage{{}, {Windows: []Window{{100, 200}}}},
	}
	if err := s.Validate(4); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		t    int64
		want float64
	}{{9, 1}, {10, 4}, {19, 4}, {20, 1}, {35, 4}, {40, 1}} {
		if got := s.SlowFactorAt(0, tc.t); got != tc.want {
			t.Errorf("SlowFactorAt(0, %d) = %v, want %v", tc.t, got, tc.want)
		}
	}
	if s.DiskDeadAt(1, 24) || !s.DiskDeadAt(1, 25) {
		t.Error("fail-stop boundary wrong")
	}
	if s.DiskDeadAt(0, 1<<60) {
		t.Error("NeverNS disk died")
	}
	// A fail-stopped disk takes its node down too.
	if !s.NodeDownAt(1, 30) {
		t.Error("dead disk's node not down")
	}
	if s.NodeDownAt(1, 99) && !s.DiskDeadAt(1, 99) {
		t.Error("unexpected outage")
	}
	if !s.NodeDownAt(1, 150) || s.NodeDownAt(0, 150) {
		t.Error("outage window lookup wrong")
	}
	// Out-of-range components are healthy, not a panic.
	if s.SlowFactorAt(9, 15) != 1 || s.NodeDownAt(9, 150) || s.DiskDeadAt(-1, 0) {
		t.Error("out-of-range component reported faulted")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name  string
		s     *Schedule
		nodes int
	}{
		{"too many disks", &Schedule{Disks: make([]DiskFault, 5)}, 4},
		{"too many nodes", &Schedule{Nodes: make([]NodeOutage, 5)}, 4},
		{"bad rate", &Schedule{TransientErrorRate: 1.5}, 4},
		{"negative rate", &Schedule{TransientErrorRate: -0.1}, 4},
		{"slow factor < 1", &Schedule{Disks: []DiskFault{
			{SlowWindows: []Window{{0, 10}}, SlowFactor: 0.5}}}, 4},
		{"negative fail-stop", &Schedule{Disks: []DiskFault{{FailStopNS: -3}}}, 4},
		{"empty window", &Schedule{Nodes: []NodeOutage{
			{Windows: []Window{{5, 5}}}}}, 4},
		{"overlapping windows", &Schedule{Nodes: []NodeOutage{
			{Windows: []Window{{0, 10}, {5, 15}}}}}, 4},
	}
	for _, tc := range cases {
		if err := tc.s.Validate(tc.nodes); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	var nilSched *Schedule
	if err := nilSched.Validate(4); err != nil {
		t.Errorf("nil schedule rejected: %v", err)
	}
}

func TestGenerateWindowsSortedWithinHorizon(t *testing.T) {
	s := Generate(99, 8, 1)
	check := func(ws []Window, what string) {
		for i, w := range ws {
			if w.EndNS <= w.StartNS {
				t.Fatalf("%s window %d empty: %+v", what, i, w)
			}
			if i > 0 && w.StartNS < ws[i-1].EndNS {
				t.Fatalf("%s windows overlap at %d", what, i)
			}
			if w.StartNS >= horizonNS {
				t.Fatalf("%s window %d past horizon", what, i)
			}
		}
	}
	for i := range s.Disks {
		check(s.Disks[i].SlowWindows, "slow")
	}
	for i := range s.Nodes {
		check(s.Nodes[i].Windows, "outage")
	}
}
