package lang

import (
	"fmt"
	"strings"

	"flopt/internal/poly"
)

// Print renders a poly.Program back into mini-language source. Loop
// iterators are printed with their declared names; affine expressions are
// rewritten over those names. The output parses back to an equivalent
// program (see TestRoundTrip).
func Print(p *poly.Program) string {
	var b strings.Builder
	for _, a := range p.Arrays {
		fmt.Fprintf(&b, "array %s", a.Name)
		for _, d := range a.Dims {
			fmt.Fprintf(&b, "[%d]", d)
		}
		b.WriteString(";\n")
	}
	for _, n := range p.Nests {
		b.WriteString("\n")
		printNest(&b, n)
	}
	return b.String()
}

func printNest(b *strings.Builder, n *poly.LoopNest) {
	names := iteratorNames(n)
	fmt.Fprintf(b, "parallel(%s) ", names[n.ParallelLoop])
	for k, l := range n.Loops {
		indent := strings.Repeat("    ", k)
		if k > 0 {
			b.WriteString(indent)
		}
		fmt.Fprintf(b, "for %s = %s to %s", names[k],
			affineString(l.Lower, names[:k]), affineString(l.Upper, names[:k]))
		if l.Step > 1 {
			fmt.Fprintf(b, " step %d", l.Step)
		}
		b.WriteString(" {\n")
	}
	body := strings.Repeat("    ", len(n.Loops))
	for _, r := range n.Refs {
		b.WriteString(body)
		if r.Write {
			b.WriteString("write ")
		} else {
			b.WriteString("read ")
		}
		b.WriteString(r.Array.Name)
		for d := 0; d < r.Q.R; d++ {
			fmt.Fprintf(b, "[%s]", affineString(poly.Affine{Coeffs: r.Q.Row(d), Const: r.Offset[d]}, names))
		}
		b.WriteString(";\n")
	}
	for k := len(n.Loops) - 1; k >= 0; k-- {
		b.WriteString(strings.Repeat("    ", k))
		b.WriteString("}\n")
	}
}

// iteratorNames returns loop names, generating i1, i2, … where missing and
// de-duplicating collisions.
func iteratorNames(n *poly.LoopNest) []string {
	names := make([]string, n.Depth())
	seen := map[string]bool{}
	for k, l := range n.Loops {
		name := l.Name
		if name == "" {
			name = fmt.Sprintf("i%d", k+1)
		}
		for seen[name] {
			name += "_"
		}
		seen[name] = true
		names[k] = name
	}
	return names
}

func affineString(a poly.Affine, names []string) string {
	var parts []string
	for k, c := range a.Coeffs {
		if c == 0 {
			continue
		}
		name := fmt.Sprintf("i%d", k+1)
		if k < len(names) {
			name = names[k]
		}
		switch {
		case c == 1:
			parts = append(parts, "+"+name)
		case c == -1:
			parts = append(parts, "-"+name)
		case c > 0:
			parts = append(parts, fmt.Sprintf("+%d*%s", c, name))
		default:
			parts = append(parts, fmt.Sprintf("-%d*%s", -c, name))
		}
	}
	if a.Const > 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("+%d", a.Const))
	} else if a.Const < 0 {
		parts = append(parts, fmt.Sprintf("-%d", -a.Const))
	}
	s := strings.Join(parts, "")
	return strings.TrimPrefix(s, "+")
}
