// Package lang implements the affine loop-nest mini-language that serves as
// the compiler front end of the reproduction. A program declares
// disk-resident arrays and parallelized loop nests whose bodies contain
// read/write references with affine subscripts, mirroring the program
// representation the paper's SUIF pass consumed:
//
//	array A[1024][1024];
//	array B[1024][1024];
//
//	parallel(i) for i = 0 to 1023 {
//	    for j = 0 to 1023 {
//	        read A[i][j];
//	        write B[j][i];
//	    }
//	}
//
// Subscripts and loop bounds are affine expressions over the enclosing
// iterators (e.g. `A[i+1][2*j-1]`). Line comments start with `//` or `#`.
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokLBrack  // [
	tokRBrack  // ]
	tokLBrace  // {
	tokRBrace  // }
	tokLParen  // (
	tokRParen  // )
	tokSemi    // ;
	tokAssign  // =
	tokPlus    // +
	tokMinus   // -
	tokStar    // *
	tokKeyword // array, parallel, for, to, step, read, write
)

var keywords = map[string]bool{
	"array": true, "parallel": true, "for": true, "to": true,
	"step": true, "read": true, "write": true,
}

type token struct {
	kind tokKind
	text string
	val  int64
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokInt:
		return fmt.Sprintf("%d", t.val)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer turns source text into a token stream.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (lx *lexer) errorf(line, col int, format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (lx *lexer) peekByte() (byte, bool) {
	if lx.pos >= len(lx.src) {
		return 0, false
	}
	return lx.src[lx.pos], true
}

func (lx *lexer) advance() byte {
	b := lx.src[lx.pos]
	lx.pos++
	if b == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return b
}

func (lx *lexer) skipSpaceAndComments() {
	for {
		b, ok := lx.peekByte()
		if !ok {
			return
		}
		switch {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			lx.advance()
		case b == '#':
			lx.skipLine()
		case b == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			lx.skipLine()
		default:
			return
		}
	}
}

func (lx *lexer) skipLine() {
	for {
		b, ok := lx.peekByte()
		if !ok || b == '\n' {
			return
		}
		lx.advance()
	}
}

// next returns the next token.
func (lx *lexer) next() (token, error) {
	lx.skipSpaceAndComments()
	line, col := lx.line, lx.col
	b, ok := lx.peekByte()
	if !ok {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	switch {
	case b == '[':
		lx.advance()
		return token{kind: tokLBrack, text: "[", line: line, col: col}, nil
	case b == ']':
		lx.advance()
		return token{kind: tokRBrack, text: "]", line: line, col: col}, nil
	case b == '{':
		lx.advance()
		return token{kind: tokLBrace, text: "{", line: line, col: col}, nil
	case b == '}':
		lx.advance()
		return token{kind: tokRBrace, text: "}", line: line, col: col}, nil
	case b == '(':
		lx.advance()
		return token{kind: tokLParen, text: "(", line: line, col: col}, nil
	case b == ')':
		lx.advance()
		return token{kind: tokRParen, text: ")", line: line, col: col}, nil
	case b == ';':
		lx.advance()
		return token{kind: tokSemi, text: ";", line: line, col: col}, nil
	case b == '=':
		lx.advance()
		return token{kind: tokAssign, text: "=", line: line, col: col}, nil
	case b == '+':
		lx.advance()
		return token{kind: tokPlus, text: "+", line: line, col: col}, nil
	case b == '-':
		lx.advance()
		return token{kind: tokMinus, text: "-", line: line, col: col}, nil
	case b == '*':
		lx.advance()
		return token{kind: tokStar, text: "*", line: line, col: col}, nil
	case b >= '0' && b <= '9':
		start := lx.pos
		for {
			c, ok := lx.peekByte()
			if !ok || c < '0' || c > '9' {
				break
			}
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		var v int64
		for _, d := range text {
			v = v*10 + int64(d-'0')
			if v < 0 {
				return token{}, lx.errorf(line, col, "integer literal %s overflows", text)
			}
		}
		return token{kind: tokInt, text: text, val: v, line: line, col: col}, nil
	case isIdentStart(rune(b)):
		start := lx.pos
		for {
			c, ok := lx.peekByte()
			if !ok || !isIdentPart(rune(c)) {
				break
			}
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		kind := tokIdent
		if keywords[strings.ToLower(text)] {
			kind = tokKeyword
			text = strings.ToLower(text)
		}
		return token{kind: kind, text: text, line: line, col: col}, nil
	default:
		return token{}, lx.errorf(line, col, "unexpected character %q", b)
	}
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }
