package lang

import (
	"strings"
	"testing"

	"flopt/internal/linalg"
)

const matmulSrc = `
// Out-of-core matrix multiply (paper Fig. 3).
array W[64][64];
array X[64][64];
array Y[64][64];

parallel(i) for i = 0 to 63 {
    for j = 0 to 63 {
        for k = 0 to 63 {
            write W[i][j];
            read X[i][k];
            read Y[k][j];
        }
    }
}
`

func TestParseMatmul(t *testing.T) {
	p, err := Parse("matmul", matmulSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Arrays) != 3 || len(p.Nests) != 1 {
		t.Fatalf("arrays=%d nests=%d", len(p.Arrays), len(p.Nests))
	}
	n := p.Nests[0]
	if n.Depth() != 3 || n.ParallelLoop != 0 {
		t.Fatalf("depth=%d parallel=%d", n.Depth(), n.ParallelLoop)
	}
	if len(n.Refs) != 3 {
		t.Fatalf("refs=%d", len(n.Refs))
	}
	wantY := linalg.MatFromRows([][]int64{{0, 0, 1}, {0, 1, 0}})
	if !n.Refs[2].Q.Equal(wantY) {
		t.Errorf("Y access matrix = %v, want %v", n.Refs[2].Q, wantY)
	}
	if !n.Refs[0].Write || n.Refs[1].Write {
		t.Error("read/write flags wrong")
	}
	if n.TripCount() != 64*64*64 {
		t.Errorf("trip count = %d", n.TripCount())
	}
}

func TestParseAffineSubscripts(t *testing.T) {
	src := `
array A[16][16];
parallel(i) for i = 0 to 7 {
    for j = 1 to 8 {
        read A[i+j][2*j-1];
        write A[-i+7][3];
    }
}
`
	p, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	r0 := p.Nests[0].Refs[0]
	if !r0.Q.Equal(linalg.MatFromRows([][]int64{{1, 1}, {0, 2}})) {
		t.Errorf("Q = %v", r0.Q)
	}
	if !r0.Offset.Equal(linalg.Vec{0, -1}) {
		t.Errorf("offset = %v", r0.Offset)
	}
	r1 := p.Nests[0].Refs[1]
	if !r1.Q.Equal(linalg.MatFromRows([][]int64{{-1, 0}, {0, 0}})) {
		t.Errorf("Q = %v", r1.Q)
	}
	if !r1.Offset.Equal(linalg.Vec{7, 3}) {
		t.Errorf("offset = %v", r1.Offset)
	}
}

func TestParseAffineBoundsAndStep(t *testing.T) {
	src := `
array A[32];
parallel(i) for i = 0 to 15 {
    for j = i to 2*i+3 step 2 {
        read A[j];
    }
}
`
	p, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	l := p.Nests[0].Loops[1]
	if !l.Lower.Coeffs.Equal(linalg.Vec{1}) || l.Lower.Const != 0 {
		t.Errorf("lower = %v", l.Lower)
	}
	if !l.Upper.Coeffs.Equal(linalg.Vec{2}) || l.Upper.Const != 3 {
		t.Errorf("upper = %v", l.Upper)
	}
	if l.Step != 2 {
		t.Errorf("step = %d", l.Step)
	}
}

func TestParseMultipleNests(t *testing.T) {
	src := `
array A[8][8];
parallel(i) for i = 0 to 7 { for j = 0 to 7 { read A[i][j]; } }
parallel(j) for i = 0 to 7 { for j = 0 to 7 { write A[j][i]; } }
`
	p, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nests) != 2 {
		t.Fatalf("nests = %d", len(p.Nests))
	}
	if p.Nests[0].ParallelLoop != 0 || p.Nests[1].ParallelLoop != 1 {
		t.Errorf("parallel loops = %d, %d", p.Nests[0].ParallelLoop, p.Nests[1].ParallelLoop)
	}
}

func TestParseDefaultsToOutermostParallel(t *testing.T) {
	src := `
array A[8];
for i = 0 to 7 { read A[i]; }
`
	p, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Nests[0].ParallelLoop != 0 {
		t.Errorf("parallel = %d, want 0", p.Nests[0].ParallelLoop)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"undeclared array", `for i = 0 to 3 { read A[i]; }`, "undeclared array"},
		{"redeclared array", "array A[4];\narray A[4];\nfor i = 0 to 3 { read A[i]; }", "redeclared"},
		{"rank mismatch", "array A[4][4];\nfor i = 0 to 3 { read A[i]; }", "rank"},
		{"unknown iterator", "array A[4];\nfor i = 0 to 3 { read A[k]; }", "unknown iterator"},
		{"bad parallel name", "array A[4];\nparallel(z) for i = 0 to 3 { read A[i]; }", "not a loop"},
		{"no nests", "array A[4];", "no loop nests"},
		{"empty body", "array A[4];\nfor i = 0 to 3 { }", "no array references"},
		{"shadowed iterator", "array A[4];\nfor i = 0 to 3 { for i = 0 to 1 { read A[i]; } }", "shadows"},
		{"zero extent", "array A[0];\nfor i = 0 to 3 { read A[i]; }", "positive"},
		{"bad step", "array A[4];\nfor i = 0 to 3 step 0 { read A[i]; }", "step"},
		{"stray token", "array A[4]; @", "unexpected character"},
		{"missing semi", "array A[4]\nfor i = 0 to 3 { read A[i]; }", "expected ';'"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse("t", c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestCommentsAndCase(t *testing.T) {
	src := `
# hash comment
array A[4]; // trailing comment
FOR i = 0 TO 3 { READ A[i]; }
`
	if _, err := Parse("t", src); err != nil {
		t.Fatalf("keywords should be case-insensitive: %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	srcs := []string{matmulSrc, `
array A[16][16];
array B[16][16];
parallel(j) for i = 0 to 15 {
    for j = i to 15 step 2 {
        read A[i+j][2*j-1];
        write B[-i+7][0];
    }
}
`}
	for _, src := range srcs {
		p1, err := Parse("rt", src)
		if err != nil {
			t.Fatal(err)
		}
		printed := Print(p1)
		p2, err := Parse("rt", printed)
		if err != nil {
			t.Fatalf("re-parse of printed program failed: %v\n%s", err, printed)
		}
		if len(p1.Nests) != len(p2.Nests) || len(p1.Arrays) != len(p2.Arrays) {
			t.Fatalf("structure changed on round trip:\n%s", printed)
		}
		for ni := range p1.Nests {
			n1, n2 := p1.Nests[ni], p2.Nests[ni]
			if n1.Depth() != n2.Depth() || n1.ParallelLoop != n2.ParallelLoop || len(n1.Refs) != len(n2.Refs) {
				t.Fatalf("nest %d changed on round trip:\n%s", ni, printed)
			}
			for ri := range n1.Refs {
				if !n1.Refs[ri].Q.Equal(n2.Refs[ri].Q) || !n1.Refs[ri].Offset.Equal(n2.Refs[ri].Offset) {
					t.Errorf("ref %d/%d changed: %v vs %v", ni, ri, n1.Refs[ri], n2.Refs[ri])
				}
			}
			for li := range n1.Loops {
				l1, l2 := n1.Loops[li], n2.Loops[li]
				if l1.Lower.Const != l2.Lower.Const || l1.Upper.Const != l2.Upper.Const || l1.Step != l2.Step {
					t.Errorf("loop %d/%d changed", ni, li)
				}
			}
		}
	}
}

func TestLexerPositions(t *testing.T) {
	_, err := Parse("t", "array A[4];\n  !")
	if err == nil || !strings.Contains(err.Error(), "2:3") {
		t.Errorf("error should carry position 2:3, got %v", err)
	}
}

func TestImperfectNestDistribution(t *testing.T) {
	// Statements at two levels plus two sibling inner loops: distribution
	// must produce four perfect nests in source order.
	src := `
array A[8];
array B[8][8];
array C[8][8];
parallel(i) for i = 0 to 7 {
    read A[i];
    for j = 0 to 7 { read B[i][j]; }
    for k = 0 to 7 { write C[i][k]; }
    write A[i];
}
`
	p, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nests) != 4 {
		t.Fatalf("nests = %d, want 4", len(p.Nests))
	}
	wantDepth := []int{1, 2, 2, 1}
	wantArray := []string{"A", "B", "C", "A"}
	for i, n := range p.Nests {
		if n.Depth() != wantDepth[i] {
			t.Errorf("nest %d depth = %d, want %d", i, n.Depth(), wantDepth[i])
		}
		if n.Refs[0].Array.Name != wantArray[i] {
			t.Errorf("nest %d array = %s, want %s", i, n.Refs[0].Array.Name, wantArray[i])
		}
		// Every distributed nest contains the parallel iterator i (loop 0).
		if n.ParallelLoop != 0 {
			t.Errorf("nest %d parallel loop = %d", i, n.ParallelLoop)
		}
	}
}

func TestImperfectNestParallelOnInner(t *testing.T) {
	// parallel(j): the statement-only outer run does not contain j and
	// falls back to its outermost loop; the (i, j) nest keeps j.
	src := `
array A[8];
array B[8][8];
parallel(j) for i = 0 to 7 {
    read A[i];
    for j = 0 to 7 { read B[i][j]; }
}
`
	p, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nests) != 2 {
		t.Fatalf("nests = %d", len(p.Nests))
	}
	if p.Nests[0].ParallelLoop != 0 {
		t.Errorf("statement nest parallel = %d, want 0", p.Nests[0].ParallelLoop)
	}
	if p.Nests[1].ParallelLoop != 1 {
		t.Errorf("inner nest parallel = %d, want 1 (loop j)", p.Nests[1].ParallelLoop)
	}
}

func TestImperfectNestUnknownParallel(t *testing.T) {
	src := `
array A[8];
parallel(z) for i = 0 to 7 { read A[i]; }
`
	if _, err := Parse("t", src); err == nil {
		t.Error("unknown parallel iterator accepted")
	}
}

func TestImperfectNestSiblingIteratorReuse(t *testing.T) {
	// Sibling loops may reuse an iterator name (they do not nest).
	src := `
array B[8][8];
parallel(i) for i = 0 to 7 {
    for j = 0 to 7 { read B[i][j]; }
    for j = 0 to 7 { write B[j][i]; }
}
`
	p, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nests) != 2 {
		t.Fatalf("nests = %d", len(p.Nests))
	}
}
