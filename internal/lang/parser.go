package lang

import (
	"errors"
	"fmt"

	"flopt/internal/linalg"
	"flopt/internal/poly"
)

// ErrBadProgram is the sentinel wrapped by every Parse error — syntax
// errors, semantic validation failures, empty programs. Match with
// errors.Is instead of string inspection.
var ErrBadProgram = errors.New("lang: invalid program")

// Parse compiles mini-language source into a validated poly.Program.
// name becomes the Program's name. Every error wraps ErrBadProgram.
func Parse(name, src string) (*poly.Program, error) {
	prog, err := parse(name, src)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadProgram, err)
	}
	return prog, nil
}

func parse(name, src string) (*poly.Program, error) {
	p := &parser{lx: newLexer(src), prog: &poly.Program{Name: name}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	for p.tok.kind != tokEOF {
		switch {
		case p.isKeyword("array"):
			if err := p.parseArrayDecl(); err != nil {
				return nil, err
			}
		case p.isKeyword("parallel") || p.isKeyword("for"):
			if err := p.parseNest(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("expected 'array', 'parallel' or 'for', found %s", p.tok)
		}
	}
	if len(p.prog.Nests) == 0 {
		return nil, fmt.Errorf("%s: program has no loop nests", name)
	}
	if err := p.prog.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %v", name, err)
	}
	return p.prog, nil
}

type parser struct {
	lx   *lexer
	tok  token
	prog *poly.Program
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", p.tok.line, p.tok.col, fmt.Sprintf(format, args...))
}

func (p *parser) isKeyword(kw string) bool {
	return p.tok.kind == tokKeyword && p.tok.text == kw
}

func (p *parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.errf("expected %q, found %s", kw, p.tok)
	}
	return p.advance()
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	if p.tok.kind != kind {
		return token{}, p.errf("expected %s, found %s", what, p.tok)
	}
	t := p.tok
	return t, p.advance()
}

// parseArrayDecl handles: array IDENT ("[" INT "]")+ ";"
func (p *parser) parseArrayDecl() error {
	if err := p.expectKeyword("array"); err != nil {
		return err
	}
	nameTok, err := p.expect(tokIdent, "array name")
	if err != nil {
		return err
	}
	if p.prog.Array(nameTok.text) != nil {
		return fmt.Errorf("%d:%d: array %q redeclared", nameTok.line, nameTok.col, nameTok.text)
	}
	var dims []int64
	for p.tok.kind == tokLBrack {
		if err := p.advance(); err != nil {
			return err
		}
		sz, err := p.expect(tokInt, "array extent")
		if err != nil {
			return err
		}
		if sz.val <= 0 {
			return fmt.Errorf("%d:%d: array extent must be positive", sz.line, sz.col)
		}
		dims = append(dims, sz.val)
		if _, err := p.expect(tokRBrack, "']'"); err != nil {
			return err
		}
	}
	if len(dims) == 0 {
		return p.errf("array %q needs at least one dimension", nameTok.text)
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return err
	}
	p.prog.Arrays = append(p.prog.Arrays, &poly.Array{Name: nameTok.text, Dims: dims})
	return nil
}

// nestBuilder accumulates one perfect loop nest during normalization.
type nestBuilder struct {
	iterators []string // outermost first
	loops     []poly.Loop
	parallel  string // iterator named in parallel(...), "" for default
	refs      []*refSyntax
}

// loopNode is the parse tree of one (possibly imperfect) loop: its body
// interleaves statements and nested loops in source order.
type loopNode struct {
	loop poly.Loop
	name string
	body []bodyItem
}

// bodyItem is one body element: exactly one of stmt or child is set.
type bodyItem struct {
	stmt  *refSyntax
	child *loopNode
}

// refSyntax is an unresolved reference: subscripts as affine expressions
// over named iterators.
type refSyntax struct {
	array string
	subs  []affineSyntax
	write bool
	line  int
	col   int
}

// affineSyntax is a parsed affine expression: iterator coefficients by name
// plus a constant.
type affineSyntax struct {
	coeffs map[string]int64
	c      int64
}

// parseNest handles: ["parallel" "(" IDENT ")"] loop. Imperfect nests —
// statements alongside nested loops, or several sibling loops — are
// normalized by loop distribution: each maximal run of statements becomes
// its own perfect nest under its chain of enclosing loops, in source
// order. (Distribution reorders cross-level statement interleavings; the
// optimizer's input model assumes the loops are parallelizable, so this
// is the standard normalization an out-of-core compiler applies.)
func (p *parser) parseNest() error {
	parallel := ""
	if p.isKeyword("parallel") {
		if err := p.advance(); err != nil {
			return err
		}
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return err
		}
		it, err := p.expect(tokIdent, "parallel iterator name")
		if err != nil {
			return err
		}
		parallel = it.text
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return err
		}
	}
	root, err := p.parseLoop(nil)
	if err != nil {
		return err
	}
	found := false
	count := 0
	var walk func(n *loopNode, chainNames []string, chain []poly.Loop) error
	walk = func(n *loopNode, chainNames []string, chain []poly.Loop) error {
		chainNames = append(chainNames, n.name)
		chain = append(chain, n.loop)
		if n.name == parallel {
			found = true
		}
		var run []*refSyntax
		flush := func() error {
			if len(run) == 0 {
				return nil
			}
			nb := &nestBuilder{
				iterators: append([]string(nil), chainNames...),
				loops:     append([]poly.Loop(nil), chain...),
				refs:      run,
			}
			// The distributed nest keeps the requested parallel iterator
			// when its chain contains it; otherwise it parallelizes on
			// its outermost loop.
			for _, it := range chainNames {
				if it == parallel {
					nb.parallel = parallel
				}
			}
			run = nil
			count++
			return p.finishNest(nb)
		}
		for _, item := range n.body {
			if item.stmt != nil {
				run = append(run, item.stmt)
				continue
			}
			if err := flush(); err != nil {
				return err
			}
			if err := walk(item.child, chainNames, chain); err != nil {
				return err
			}
		}
		return flush()
	}
	if err := walk(root, nil, nil); err != nil {
		return err
	}
	if parallel != "" && !found {
		return fmt.Errorf("parallel iterator %q is not a loop of the nest", parallel)
	}
	if count == 0 {
		return fmt.Errorf("loop nest over %q has no array references", root.name)
	}
	return nil
}

// parseLoop handles: "for" IDENT "=" expr "to" expr ["step" INT] "{" body "}"
// where body is any interleaving of statements and nested loops. enclosing
// lists the iterators of the enclosing loops, outermost first.
func (p *parser) parseLoop(enclosing []string) (*loopNode, error) {
	if err := p.expectKeyword("for"); err != nil {
		return nil, err
	}
	it, err := p.expect(tokIdent, "iterator name")
	if err != nil {
		return nil, err
	}
	for _, existing := range enclosing {
		if existing == it.text {
			return nil, fmt.Errorf("%d:%d: iterator %q shadows an enclosing iterator", it.line, it.col, it.text)
		}
	}
	if _, err := p.expect(tokAssign, "'='"); err != nil {
		return nil, err
	}
	lower, err := p.parseAffine(enclosing)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("to"); err != nil {
		return nil, err
	}
	upper, err := p.parseAffine(enclosing)
	if err != nil {
		return nil, err
	}
	step := int64(1)
	if p.isKeyword("step") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		s, err := p.expect(tokInt, "step value")
		if err != nil {
			return nil, err
		}
		if s.val < 1 {
			return nil, fmt.Errorf("%d:%d: step must be ≥ 1", s.line, s.col)
		}
		step = s.val
	}
	node := &loopNode{
		name: it.text,
		loop: poly.Loop{
			Name:  it.text,
			Lower: lower.toAffine(enclosing),
			Upper: upper.toAffine(enclosing),
			Step:  step,
		},
	}
	inner := append(append([]string(nil), enclosing...), it.text)

	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	for p.tok.kind != tokRBrace {
		if p.isKeyword("for") {
			child, err := p.parseLoop(inner)
			if err != nil {
				return nil, err
			}
			node.body = append(node.body, bodyItem{child: child})
			continue
		}
		stmt, err := p.parseStmt(inner)
		if err != nil {
			return nil, err
		}
		node.body = append(node.body, bodyItem{stmt: stmt})
	}
	if _, err := p.expect(tokRBrace, "'}'"); err != nil {
		return nil, err
	}
	return node, nil
}

// parseStmt handles: ("read"|"write") IDENT ("[" expr "]")+ ";"
func (p *parser) parseStmt(iterators []string) (*refSyntax, error) {
	var write bool
	switch {
	case p.isKeyword("read"):
		write = false
	case p.isKeyword("write"):
		write = true
	default:
		return nil, p.errf("expected 'read', 'write', 'for' or '}', found %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	nameTok, err := p.expect(tokIdent, "array name")
	if err != nil {
		return nil, err
	}
	rs := &refSyntax{array: nameTok.text, write: write, line: nameTok.line, col: nameTok.col}
	for p.tok.kind == tokLBrack {
		if err := p.advance(); err != nil {
			return nil, err
		}
		sub, err := p.parseAffine(iterators)
		if err != nil {
			return nil, err
		}
		rs.subs = append(rs.subs, sub)
		if _, err := p.expect(tokRBrack, "']'"); err != nil {
			return nil, err
		}
	}
	if len(rs.subs) == 0 {
		return nil, fmt.Errorf("%d:%d: reference to %q has no subscripts", nameTok.line, nameTok.col, nameTok.text)
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return rs, nil
}

// parseAffine handles: ["+"|"-"] term (("+"|"-") term)* where
// term := INT ["*" IDENT] | IDENT.
func (p *parser) parseAffine(iterators []string) (affineSyntax, error) {
	known := make(map[string]bool, len(iterators))
	for _, it := range iterators {
		known[it] = true
	}
	a := affineSyntax{coeffs: map[string]int64{}}
	sign := int64(1)
	switch p.tok.kind {
	case tokMinus:
		sign = -1
		if err := p.advance(); err != nil {
			return a, err
		}
	case tokPlus:
		if err := p.advance(); err != nil {
			return a, err
		}
	}
	for {
		switch p.tok.kind {
		case tokInt:
			v := sign * p.tok.val
			if err := p.advance(); err != nil {
				return a, err
			}
			if p.tok.kind == tokStar {
				if err := p.advance(); err != nil {
					return a, err
				}
				id, err := p.expect(tokIdent, "iterator after '*'")
				if err != nil {
					return a, err
				}
				if !known[id.text] {
					return a, fmt.Errorf("%d:%d: unknown iterator %q", id.line, id.col, id.text)
				}
				a.coeffs[id.text] += v
			} else {
				a.c += v
			}
		case tokIdent:
			if !known[p.tok.text] {
				return a, p.errf("unknown iterator %q", p.tok.text)
			}
			a.coeffs[p.tok.text] += sign
			if err := p.advance(); err != nil {
				return a, err
			}
		default:
			return a, p.errf("expected integer or iterator, found %s", p.tok)
		}
		switch p.tok.kind {
		case tokPlus:
			sign = 1
		case tokMinus:
			sign = -1
		default:
			return a, nil
		}
		if err := p.advance(); err != nil {
			return a, err
		}
	}
}

// toAffine lowers the by-name expression to a poly.Affine over the given
// (enclosing) iterator list.
func (a affineSyntax) toAffine(iterators []string) poly.Affine {
	coeffs := make(linalg.Vec, len(iterators))
	for k, it := range iterators {
		coeffs[k] = a.coeffs[it]
	}
	return poly.Affine{Coeffs: coeffs, Const: a.c}
}

// finishNest resolves references against declared arrays and appends the
// completed nest to the program.
func (p *parser) finishNest(nb *nestBuilder) error {
	if len(nb.refs) == 0 {
		return fmt.Errorf("loop nest over %v has no array references", nb.iterators)
	}
	parallel := 0
	if nb.parallel != "" {
		parallel = -1
		for k, it := range nb.iterators {
			if it == nb.parallel {
				parallel = k
				break
			}
		}
		if parallel < 0 {
			return fmt.Errorf("internal: parallel iterator %q missing from chain %v", nb.parallel, nb.iterators)
		}
	}
	nest := &poly.LoopNest{Loops: nb.loops, ParallelLoop: parallel}
	for _, rs := range nb.refs {
		arr := p.prog.Array(rs.array)
		if arr == nil {
			return fmt.Errorf("%d:%d: reference to undeclared array %q", rs.line, rs.col, rs.array)
		}
		if len(rs.subs) != arr.Rank() {
			return fmt.Errorf("%d:%d: %q has rank %d but reference has %d subscripts",
				rs.line, rs.col, rs.array, arr.Rank(), len(rs.subs))
		}
		q := linalg.NewMat(arr.Rank(), len(nb.iterators))
		offset := make(linalg.Vec, arr.Rank())
		for d, sub := range rs.subs {
			for k, it := range nb.iterators {
				q.Set(d, k, sub.coeffs[it])
			}
			offset[d] = sub.c
		}
		nest.Refs = append(nest.Refs, &poly.Reference{Array: arr, Q: q, Offset: offset, Write: rs.write})
	}
	p.prog.Nests = append(p.prog.Nests, nest)
	return nil
}
