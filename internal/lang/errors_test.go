package lang

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestParseErrorsWrapSentinel asserts the contract the HTTP service's 400
// mapping depends on: every malformed program — truncated, structurally
// broken, or semantically wrong — returns an error wrapping ErrBadProgram
// and never panics.
func TestParseErrorsWrapSentinel(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty source", ""},
		{"only whitespace", "  \n\t\n"},
		{"unclosed brace", "array A[4];\nfor i = 0 to 3 { read A[i];"},
		{"stray close brace", "array A[4];\nfor i = 0 to 3 { read A[i]; } }"},
		{"truncated declaration", "array A["},
		{"truncated bounds", "array A[4];\nfor i = 0 to"},
		{"truncated subscript", "array A[4];\nfor i = 0 to 3 { read A[i"},
		{"missing subscripts", "array A[4];\nfor i = 0 to 3 { read A; }"},
		{"star without iterator", "array A[4];\nfor i = 0 to 3 { read A[2*]; }"},
		{"iterator times iterator", "array A[16];\nfor i = 0 to 3 { for j = 0 to 3 { read A[i*j]; } }"},
		{"negative extent", "array A[-4];\nfor i = 0 to 3 { read A[i]; }"},
		{"extent overflow", "array A[99999999999999999999];\nfor i = 0 to 3 { read A[i]; }"},
		{"keyword as array", "array for[4];\nfor i = 0 to 3 { read for[i]; }"},
		{"parallel without nest", "array A[4];\nparallel(i)"},
		{"double parallel", "array A[4];\nparallel(i) parallel(i) for i = 0 to 3 { read A[i]; }"},
		{"garbage", "{{{{;;;;]]]]"},
		{"binary noise", "\x00\x01\x02 array \x7f"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := Parse("t", c.src)
			if err == nil {
				t.Fatalf("no error for %q (got program %+v)", c.src, p)
			}
			if !errors.Is(err, ErrBadProgram) {
				t.Errorf("error %q does not wrap ErrBadProgram", err)
			}
		})
	}
}

// TestParseErrorPositions checks errors carry line:col positions so the
// service can return actionable 400 bodies.
func TestParseErrorPositions(t *testing.T) {
	src := "array A[4];\narray A[4];\nfor i = 0 to 3 { read A[i]; }"
	_, err := Parse("t", src)
	if err == nil {
		t.Fatal("redeclaration accepted")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error %q lacks a line-2 position", err)
	}
}

// TestParseDeepNestingNoOverflow guards the recursive-descent parser
// against stack overflow on adversarial nesting depth.
func TestParseDeepNestingNoOverflow(t *testing.T) {
	var b strings.Builder
	b.WriteString("array A[4];\n")
	const depth = 2000
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&b, "for i%d = 0 to 3 {\n", i)
	}
	b.WriteString("read A[i0];\n")
	b.WriteString(strings.Repeat("}\n", depth))
	// Either a parse (deep nests are legal) or a clean error is fine;
	// the test exists to prove we don't crash the process.
	if _, err := Parse("t", b.String()); err != nil && !errors.Is(err, ErrBadProgram) {
		t.Errorf("deep nest error %q does not wrap ErrBadProgram", err)
	}
}
