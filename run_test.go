package flopt

import (
	"context"
	"errors"
	"testing"

	"flopt/internal/obs"
)

// bigTestSrc crosses the simulator's context-poll interval (16384
// accesses) so cancellation tests actually reach a poll.
const bigTestSrc = `
array B[128][128];
parallel(i) for i = 0 to 127 { for j = 0 to 127 { read B[j][i]; } }
`

// TestRunMatchesDeprecatedWrappers: the deprecated entry points are thin
// wrappers over Run, so both paths must produce identical reports.
func TestRunMatchesDeprecatedWrappers(t *testing.T) {
	p, err := Compile("t", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallTestConfig()
	res, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	oldDef, err := RunDefault(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	newDef, err := Run(ctx, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if oldDef.ExecTimeUS != newDef.ExecTimeUS || oldDef.DiskReads != newDef.DiskReads {
		t.Errorf("RunDefault (%d µs, %d reads) != Run (%d µs, %d reads)",
			oldDef.ExecTimeUS, oldDef.DiskReads, newDef.ExecTimeUS, newDef.DiskReads)
	}

	oldOpt, err := RunOptimized(p, cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	newOpt, err := Run(ctx, p, cfg, WithResult(res))
	if err != nil {
		t.Fatal(err)
	}
	if oldOpt.ExecTimeUS != newOpt.ExecTimeUS {
		t.Errorf("RunOptimized %d µs != Run(WithResult) %d µs", oldOpt.ExecTimeUS, newOpt.ExecTimeUS)
	}
}

func TestSentinelErrors(t *testing.T) {
	if _, err := Compile("bad", "not a program"); !errors.Is(err, ErrBadProgram) {
		t.Errorf("Compile error %v does not wrap ErrBadProgram", err)
	}
	p, err := Compile("t", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallTestConfig()
	cfg.IONodes = 3 // 8 % 3 != 0
	if _, err := Run(context.Background(), p, cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("Run config error %v does not wrap ErrBadConfig", err)
	}
	// WithFaults feeds the intensity through config validation too.
	if _, err := Run(context.Background(), p, smallTestConfig(), WithFaults(1.5, 1)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("out-of-range fault intensity error %v does not wrap ErrBadConfig", err)
	}
}

func TestRunWithMetrics(t *testing.T) {
	p, err := Compile("t", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), p, smallTestConfig(), WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics == nil {
		t.Fatal("WithMetrics did not populate Report.Metrics")
	}
	if rep.Metrics.Totals.Accesses != rep.Accesses {
		t.Errorf("metrics cover %d accesses, report %d", rep.Metrics.Totals.Accesses, rep.Accesses)
	}
	if _, ok := rep.Metrics.Arrays["B"]; !ok {
		t.Errorf("array breakdown not keyed by name: %v", rep.Metrics.Arrays)
	}
	// Without the option, no collector is attached.
	plain, err := Run(context.Background(), p, smallTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Metrics != nil {
		t.Error("Report.Metrics set without WithMetrics")
	}
}

// countingObserver tallies callbacks to prove WithObserver reaches the
// machine's hot path.
type countingObserver struct {
	accesses, diskReads, events int
}

func (c *countingObserver) BlockAccess(int, int32, obs.Level, int64) { c.accesses++ }
func (c *countingObserver) DiskService(int, int64, bool)             { c.diskReads++ }
func (c *countingObserver) RetryWait(int, int64)                     {}
func (c *countingObserver) Event(obs.Event)                          { c.events++ }

func TestRunWithObserver(t *testing.T) {
	p, err := Compile("t", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	var co countingObserver
	rep, err := Run(context.Background(), p, smallTestConfig(), WithObserver(&co))
	if err != nil {
		t.Fatal(err)
	}
	if int64(co.accesses) != rep.Accesses {
		t.Errorf("observer saw %d accesses, report has %d", co.accesses, rep.Accesses)
	}
	if int64(co.diskReads) != rep.DiskReads {
		t.Errorf("observer saw %d disk reads, report has %d", co.diskReads, rep.DiskReads)
	}
	if co.events == 0 {
		t.Error("observer saw no lifecycle events")
	}
}

func TestRunCanceled(t *testing.T) {
	p, err := Compile("t", bigTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, p, smallTestConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on canceled context returned %v, want context.Canceled", err)
	}
}

func TestRunWithFaultsDeterministic(t *testing.T) {
	p, err := Compile("t", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallTestConfig()
	a, err := Run(context.Background(), p, cfg, WithFaults(0.5, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), p, cfg, WithFaults(0.5, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecTimeUS != b.ExecTimeUS || a.Retries != b.Retries || a.Timeouts != b.Timeouts {
		t.Errorf("identical fault seeds diverged: (%d, %d, %d) vs (%d, %d, %d)",
			a.ExecTimeUS, a.Retries, a.Timeouts, b.ExecTimeUS, b.Retries, b.Timeouts)
	}
	if a.Retries == 0 && a.Timeouts == 0 && a.FailedOverBlocks == 0 && a.DegradedReads == 0 {
		t.Error("WithFaults(0.5, 7) injected no observable faults")
	}
}
