// Command exptab regenerates the paper's tables and figures on the
// simulated platform.
//
// Usage:
//
//	exptab -exp all
//	exptab -exp table2,fig7a -v
//	exptab -exp fig7c -io-cache 128 -storage-cache 256
//	exptab -exp all -parallel 8      # 8 experiment/trace workers
//	exptab -exp all -parallel 1      # fully serial (reference path)
//	exptab -exp faults -seed 42      # fault sweep: wins vs fault intensity
//	exptab -exp table2 -faults 0.5   # base tables on a degraded cluster
//	exptab -exp table2 -metrics-out cells.jsonl   # per-cell metric snapshots
//	exptab -exp table2 -cpuprofile cpu.prof -memprofile mem.prof
//	exptab -exp workload -spec examples/specs/bursty.json   # per-SLO-class sweep
//	exptab -exp workload -replay trace.jsonl    # same, from a recorded trace
//
// Experiments: table1, table2, table3, fig7a … fig7h, optstats,
// ablations, prefetch, faults, workload, all. The workload experiment
// needs an event stream (-spec or -replay) and is therefore not part of
// "all". The emitted tables — and the -metrics-out snapshots — are
// bit-identical for every -parallel value, with or without fault
// injection; only wall-clock changes. ^C cancels the in-flight cells
// promptly instead of waiting out the grid.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"flopt/internal/exp"
	"flopt/internal/sim"
	"flopt/internal/version"
	"flopt/internal/workload"
)

// expFn builds one table; every builder takes the run context first so ^C
// propagates into the experiment cells.
type expFn func(context.Context, *exp.Runner, sim.Config) (*exp.Table, error)

var builders = map[string]expFn{
	"table2":    exp.Table2,
	"table3":    exp.Table3,
	"fig7a":     exp.Fig7a,
	"fig7b":     exp.Fig7b,
	"fig7c":     exp.Fig7c,
	"fig7d":     exp.Fig7d,
	"fig7e":     exp.Fig7e,
	"fig7f":     exp.Fig7f,
	"fig7g":     exp.Fig7g,
	"fig7h":     exp.Fig7h,
	"optstats":  exp.OptStats,
	"ablations": exp.Ablations,
	"prefetch":  exp.Prefetch,
	"faults":    exp.FaultSweep,
}

var order = []string{"table1", "table2", "table3", "fig7a", "fig7b", "fig7c",
	"fig7d", "fig7e", "fig7f", "fig7g", "fig7h", "optstats", "ablations", "prefetch", "faults",
	"workload"}

// selectExperiments expands and validates the -exp list against the known
// builder names (plus table1, which has no runner, and workload, which
// takes its input from -spec/-replay and is excluded from "all").
func selectExperiments(list string) (map[string]bool, error) {
	want := map[string]bool{}
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(strings.ToLower(name))
		if name == "" {
			continue
		}
		if name == "all" {
			for _, n := range order {
				if n == "workload" {
					continue // needs -spec/-replay input
				}
				want[n] = true
			}
			continue
		}
		if name != "table1" && name != "workload" {
			if _, ok := builders[name]; !ok {
				return nil, fmt.Errorf("unknown experiment %q (want one of %s, all)",
					name, strings.Join(order, ", "))
			}
		}
		want[name] = true
	}
	return want, nil
}

// loadEvents resolves the workload experiment's event stream from exactly
// one of a spec file (expanded deterministically) or a recorded trace.
func loadEvents(specPath, replayPath string) ([]workload.Event, error) {
	switch {
	case specPath != "" && replayPath != "":
		return nil, fmt.Errorf("-spec and -replay are mutually exclusive")
	case specPath != "":
		spec, err := workload.LoadSpecFile(specPath)
		if err != nil {
			return nil, err
		}
		return spec.Generate()
	case replayPath != "":
		recs, err := workload.ReadTraceFile(replayPath)
		if err != nil {
			return nil, err
		}
		if len(recs) == 0 {
			return nil, fmt.Errorf("trace %s holds no records", replayPath)
		}
		return workload.Events(recs), nil
	default:
		return nil, fmt.Errorf("-exp workload needs -spec <file> or -replay <trace>")
	}
}

// validateSeed rejects an explicit -seed that cannot influence anything:
// it matters only with -faults > 0, or for the faults experiment (which
// sweeps intensities itself from the seed).
func validateSeed(seedSet bool, faults float64, want map[string]bool) error {
	if seedSet && faults <= 0 && !want["faults"] {
		return fmt.Errorf("-seed has no effect without -faults > 0 (or -exp faults)")
	}
	return nil
}

func main() {
	var (
		expList    = flag.String("exp", "all", "comma-separated experiments: table1,table2,table3,fig7a..fig7h,optstats,ablations,prefetch,faults,all")
		verbose    = flag.Bool("v", false, "print per-run progress and per-table wall-clock")
		policy     = flag.String("policy", "lru", "cache policy for the base experiments: lru, demote, karma")
		ioCache    = flag.Int("io-cache", 0, "override I/O cache blocks")
		stCache    = flag.Int("storage-cache", 0, "override storage cache blocks")
		blockSize  = flag.Int64("block", 0, "override block size in elements")
		parallelN  = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for experiment cells and trace generation (1 = serial)")
		simW       = flag.Int("sim-workers", 0, "intra-cell simulation shard count per experiment cell (0 = off; capped so cells × shards stays within -parallel's CPU budget; reports are byte-identical at every value)")
		faults     = flag.Float64("faults", 0, "fault-injection intensity in [0,1] applied to the base experiments (0 = healthy; the faults experiment sweeps intensities itself)")
		seed       = flag.Int64("seed", 0, "fault-injection seed; identical seeds replay bit-identical fault runs")
		specPath   = flag.String("spec", "", "workload spec JSON driving -exp workload")
		replayPath = flag.String("replay", "", "recorded trace JSONL driving -exp workload")
		metricsOut = flag.String("metrics-out", "", "write one JSONL metric snapshot per experiment cell to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the experiment run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile (after the experiments) to this file")
		showVer    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version.String("exptab"))
		return
	}

	if *parallelN < 1 {
		fmt.Fprintln(os.Stderr, "exptab: -parallel must be ≥ 1")
		os.Exit(1)
	}
	// Cap the scheduler to the requested CPU budget — cell workers times
	// intra-cell shards — so -parallel 1 (without -sim-workers) restores a
	// fully serial process even for code that sizes itself off GOMAXPROCS,
	// while -parallel 1 -sim-workers N keeps N CPUs for the sharded engine
	// (which itself caps by GOMAXPROCS).
	if budget := *parallelN * max(1, *simW); budget < runtime.GOMAXPROCS(0) {
		runtime.GOMAXPROCS(budget)
	}

	want, err := selectExperiments(*expList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "exptab:", err)
		os.Exit(1)
	}
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := validateSeed(set["seed"], *faults, want); err != nil {
		fmt.Fprintln(os.Stderr, "exptab:", err)
		os.Exit(1)
	}
	if (*specPath != "" || *replayPath != "") && !want["workload"] {
		fmt.Fprintln(os.Stderr, "exptab: -spec/-replay only drive -exp workload")
		os.Exit(1)
	}
	var events []workload.Event
	if want["workload"] {
		var err error
		if events, err = loadEvents(*specPath, *replayPath); err != nil {
			fmt.Fprintln(os.Stderr, "exptab:", err)
			os.Exit(1)
		}
	}

	cfg := sim.DefaultConfig()
	cfg.Policy = *policy
	if *ioCache > 0 {
		cfg.IOCacheBlocks = *ioCache
	}
	if *stCache > 0 {
		cfg.StorageCacheBlocks = *stCache
	}
	if *blockSize > 0 {
		cfg.BlockElems = *blockSize
	}
	cfg.FaultIntensity = *faults
	cfg.FaultSeed = *seed
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "exptab:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "exptab:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "exptab:", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "exptab:", err)
			}
			f.Close()
		}()
	}

	runner := exp.NewRunner()
	runner.Verbose = *verbose
	runner.Parallel = *parallelN
	runner.SimWorkers = *simW
	runner.CollectMetrics = *metricsOut != ""

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	total := time.Now()
	for _, name := range order {
		if !want[name] {
			continue
		}
		start := time.Now()
		if name == "table1" {
			fmt.Println(exp.Table1(cfg))
			continue
		}
		build := builders[name]
		if name == "workload" {
			build = func(ctx context.Context, r *exp.Runner, cfg sim.Config) (*exp.Table, error) {
				return exp.WorkloadSweep(ctx, r, cfg, events)
			}
		}
		t, err := build(ctx, runner, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(t.Render())
		if *verbose {
			fmt.Printf("[%s took %v with %d workers]\n\n", name, time.Since(start).Round(time.Millisecond), *parallelN)
		}
	}
	if *verbose {
		fmt.Printf("[all requested experiments took %v]\n", time.Since(total).Round(time.Millisecond))
	}

	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "exptab:", err)
			os.Exit(1)
		}
		werr := runner.WriteMetricsJSONL(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "exptab:", werr)
			os.Exit(1)
		}
		fmt.Printf("wrote %d cell snapshots to %s\n", runner.MetricCells(), *metricsOut)
	}
}
