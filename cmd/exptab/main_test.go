package main

import (
	"os"
	"path/filepath"
	"testing"

	"flopt/internal/workload"
)

func TestSelectExperiments(t *testing.T) {
	want, err := selectExperiments("table2, FIG7A")
	if err != nil {
		t.Fatal(err)
	}
	if !want["table2"] || !want["fig7a"] || len(want) != 2 {
		t.Errorf("selection = %v", want)
	}
	all, err := selectExperiments("all")
	if err != nil {
		t.Fatal(err)
	}
	// "all" covers everything except workload, which needs -spec/-replay.
	if len(all) != len(order)-1 {
		t.Errorf("all selects %d of %d experiments", len(all), len(order))
	}
	if all["workload"] {
		t.Error("all must not select the workload experiment")
	}
	wl, err := selectExperiments("workload")
	if err != nil {
		t.Fatalf("workload rejected: %v", err)
	}
	if !wl["workload"] || len(wl) != 1 {
		t.Errorf("workload selection = %v", wl)
	}
	if _, err := selectExperiments("table2,nonesuch"); err == nil {
		t.Error("unknown experiment accepted")
	}
	// Every name in order except the special cases must have a builder,
	// and vice versa.
	for _, name := range order {
		if name == "table1" || name == "workload" {
			continue
		}
		if _, ok := builders[name]; !ok {
			t.Errorf("ordered experiment %q has no builder", name)
		}
	}
	if len(builders) != len(order)-2 {
		t.Errorf("%d builders for %d ordered experiments", len(builders), len(order))
	}
}

func TestValidateSeed(t *testing.T) {
	if err := validateSeed(true, 0, map[string]bool{"table2": true}); err == nil {
		t.Error("orphan -seed accepted")
	}
	if err := validateSeed(true, 0.5, map[string]bool{"table2": true}); err != nil {
		t.Errorf("seed with faults rejected: %v", err)
	}
	if err := validateSeed(true, 0, map[string]bool{"faults": true}); err != nil {
		t.Errorf("seed with -exp faults rejected: %v", err)
	}
	if err := validateSeed(false, 0, map[string]bool{"table2": true}); err != nil {
		t.Errorf("default seed rejected: %v", err)
	}
}

func TestLoadEvents(t *testing.T) {
	if _, err := loadEvents("", ""); err == nil {
		t.Error("no input accepted")
	}
	if _, err := loadEvents("a.json", "b.jsonl"); err == nil {
		t.Error("both inputs accepted")
	}

	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(spec, []byte(`{
		"version": 1, "seed": 3, "duration_s": 1, "rate_rps": 20,
		"clients": [{"id": "c", "rate_fraction": 1,
			"arrival": {"process": "poisson"},
			"mix": [{"program": "swim", "kind": "offsets", "weight": 1}]}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	evs, err := loadEvents(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("spec expanded to no events")
	}

	trace := filepath.Join(dir, "trace.jsonl")
	tw, err := workload.NewTraceWriter(trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if err := tw.Append(ev.Kind, ev.Client, ev.SLO, ev.Program); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	replayed, err := loadEvents("", trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(evs) {
		t.Errorf("trace replays %d events, want %d", len(replayed), len(evs))
	}

	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadEvents("", empty); err == nil {
		t.Error("empty trace accepted")
	}
}
