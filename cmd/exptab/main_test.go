package main

import "testing"

func TestSelectExperiments(t *testing.T) {
	want, err := selectExperiments("table2, FIG7A")
	if err != nil {
		t.Fatal(err)
	}
	if !want["table2"] || !want["fig7a"] || len(want) != 2 {
		t.Errorf("selection = %v", want)
	}
	all, err := selectExperiments("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(order) {
		t.Errorf("all selects %d of %d experiments", len(all), len(order))
	}
	if _, err := selectExperiments("table2,nonesuch"); err == nil {
		t.Error("unknown experiment accepted")
	}
	// Every name in order except table1 must have a builder, and vice versa.
	for _, name := range order {
		if name == "table1" {
			continue
		}
		if _, ok := builders[name]; !ok {
			t.Errorf("ordered experiment %q has no builder", name)
		}
	}
	if len(builders) != len(order)-1 {
		t.Errorf("%d builders for %d ordered experiments", len(builders), len(order))
	}
}

func TestValidateSeed(t *testing.T) {
	if err := validateSeed(true, 0, map[string]bool{"table2": true}); err == nil {
		t.Error("orphan -seed accepted")
	}
	if err := validateSeed(true, 0.5, map[string]bool{"table2": true}); err != nil {
		t.Errorf("seed with faults rejected: %v", err)
	}
	if err := validateSeed(true, 0, map[string]bool{"faults": true}); err != nil {
		t.Errorf("seed with -exp faults rejected: %v", err)
	}
	if err := validateSeed(false, 0, map[string]bool{"table2": true}); err != nil {
		t.Errorf("default seed rejected: %v", err)
	}
}
