// Command floptd is the layout-compilation and offset-query daemon: it
// serves the offline optimizer's pipeline over HTTP. POST /v1/compile
// deduplicates identical programs into content-addressed layout IDs,
// POST /v1/layouts/{id}/offsets answers batch element→offset queries
// through the closed-form Strider path, POST /v1/simulate runs
// simulations asynchronously on a bounded worker pool, and /healthz +
// /metrics expose liveness and the obs-backed counter set. SIGTERM (or
// ^C) drains gracefully: in-flight requests finish, accepted simulate
// jobs run to completion, then the process exits.
//
// With -data-dir set the daemon is crash-safe: compiled layouts and
// accepted simulate jobs are journaled (snapshot + write-ahead log) and
// recovered on restart — every accepted job reaches a terminal state and
// every compiled layout keeps its ID, even across kill -9. Overload
// degrades gracefully: a circuit breaker sheds /v1/simulate after
// consecutive job failures while cheap routes keep flowing, declared
// retries draw from a token budget, Retry-After tracks queue depth, and
// -request-timeout bounds each request. -chaos enables seeded fault
// injection (delays, 500s, dropped connections, journal disk faults) for
// recovery drills; scripts/chaos_smoke.sh runs one end to end.
//
// With -peers and -node-id the daemon joins a static-membership
// cluster: layout IDs route to owner nodes over a consistent-hash ring
// (one compile cluster-wide per program), offset-query misses fill from
// peers with content-address verification, simulate jobs place onto the
// least-loaded member, and GET /v1/cluster/status reports the roster.
// Dead peers degrade to local compute behind per-peer circuit breakers;
// scripts/cluster_smoke.sh drills a 3-node cluster end to end.
//
// Usage:
//
//	floptd                               # serve on :8080
//	floptd -addr 127.0.0.1:9090 -workers 4 -queue 128
//	floptd -data-dir /var/lib/flopt -request-timeout 30s
//	floptd -data-dir /tmp/drill -chaos 0.2 -chaos-seed 42
//	floptd -addr :8081 -node-id a -peers 'a=http://h1:8081,b=http://h2:8082'
//	floptd -version
//	floptd -loadgen -target http://127.0.0.1:8080 -duration 10s
//	floptd -record /tmp/trace.jsonl                  # serve + record traffic
//	floptd -loadgen -spec examples/specs/bursty.json # drive a workload spec
//	floptd -loadgen -replay /tmp/trace.jsonl         # replay a recorded trace
//	floptd -loadgen -program mgrid                   # one-client preset spec
//
// The -loadgen mode turns the same binary into the measurement client
// scripts/loadtest_service.sh uses: it compiles one workload, hammers
// the offsets hot path from keep-alive connections (round-robin over
// comma-separated -target URLs in cluster mode), and prints the
// RPS/latency quantiles as JSON. With -spec, -replay or -program it
// instead issues a deterministic event stream from the internal/workload
// subsystem — multi-client arrival processes, SLO classes, request mixes
// — and reports per-class counts and latency quantiles. Serving with
// -record writes every served request as one line of a schema-versioned
// JSONL trace that -replay (and exptab -replay) reproduce bit-identically.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flopt/internal/cluster"
	"flopt/internal/service"
	"flopt/internal/version"
	"flopt/internal/workload"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// countSet counts how many of the given mode flags are set.
func countSet(flags ...bool) int {
	n := 0
	for _, f := range flags {
		if f {
			n++
		}
	}
	return n
}

// runSpecEvents expands a validated spec and issues its event stream.
func runSpecEvents(ctx context.Context, spec *workload.Spec, target string, pace float64) (*service.SpecLoadResult, error) {
	evs, err := spec.Generate()
	if err != nil {
		return nil, err
	}
	return service.RunSpecLoad(ctx, service.SpecLoadOptions{BaseURL: target, Events: evs, Pace: pace})
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("floptd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", service.DefaultServerConfig().Workers, "simulate worker-pool width")
		simWorkers   = fs.Int("sim-workers", 0, "intra-cell shard count per simulation job (0 = auto: GOMAXPROCS/workers; reports are byte-identical at every value)")
		queue        = fs.Int("queue", service.DefaultServerConfig().QueueDepth, "simulate queue depth (full queue answers 429)")
		cacheEntries = fs.Int("cache", service.DefaultServerConfig().CacheEntries, "compiled-layout LRU capacity")
		drainWait    = fs.Duration("drain-timeout", 2*time.Minute, "graceful-drain budget after SIGTERM")
		dataDir      = fs.String("data-dir", "", "durability directory for the layout and job journals; empty keeps all state in memory")
		reqTimeout   = fs.Duration("request-timeout", service.DefaultServerConfig().RequestTimeout, "per-request deadline (context) and connection read timeout; 0 disables the per-request deadline")
		chaosIntens  = fs.Float64("chaos", 0, "chaos fault-injection intensity in [0,1]: delayed/erroring/dropped requests and journal disk faults; 0 disables")
		chaosSeed    = fs.Int64("chaos-seed", 1, "seed for the deterministic chaos decision stream")
		showVersion  = fs.Bool("version", false, "print version and exit")

		peers       = fs.String("peers", "", "cluster roster as comma-separated id=url pairs (every member, self included); empty runs single-node")
		nodeID      = fs.String("node-id", "", "this node's roster ID (required with -peers)")
		gossipEvery = fs.Duration("gossip-interval", time.Second, "cluster: load-gossip refresh interval")
		peerTimeout = fs.Duration("peer-timeout", 2*time.Second, "cluster: per-peer call deadline")

		loadgen     = fs.Bool("loadgen", false, "run as load-generation client instead of serving")
		target      = fs.String("target", "http://127.0.0.1:8080", "loadgen: daemon base URL, or comma-separated URLs to spread load across a cluster")
		duration    = fs.Duration("duration", 10*time.Second, "loadgen: measurement window")
		concurrency = fs.Int("concurrency", 32, "loadgen: concurrent client workers")
		batch       = fs.Int("batch", 4, "loadgen: offset queries per request")
		count       = fs.Int64("count", 512, "loadgen: run length per offset query")
		workloadArg = fs.String("workload", "swim", "loadgen: workload compiled and queried by the hammer mode")

		record   = fs.String("record", "", "serve: write every served compile/offsets/simulate request to this JSONL workload trace")
		specPath = fs.String("spec", "", "loadgen: expand and run a declarative workload spec (JSON; see examples/specs/)")
		replay   = fs.String("replay", "", "loadgen: replay a trace recorded with -record")
		pace     = fs.Float64("pace", 0, "loadgen: replay speed for -spec/-replay on the modeled timeline (1 = real time, 2 = twice as fast); 0 issues back to back")
		program  = fs.String("program", "", "loadgen: run a steady one-client spec over this named workload program (spec mode, any internal/workloads name)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, version.String("floptd"))
		return 0
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *loadgen {
		var res any
		var err error
		switch {
		case countSet(*specPath != "", *replay != "", *program != "") > 1:
			fmt.Fprintln(stderr, "floptd: set at most one of -spec, -replay and -program")
			return 2
		case *specPath != "":
			var spec *workload.Spec
			if spec, err = workload.LoadSpecFile(*specPath); err == nil {
				res, err = runSpecEvents(ctx, spec, *target, *pace)
			}
		case *program != "":
			// The preset is a trivial one-client spec under the hood, so
			// any named workloads program gets the full spec machinery.
			spec := workload.SingleClientSpec(*program)
			if err = spec.Validate(); err == nil {
				res, err = runSpecEvents(ctx, spec, *target, *pace)
			}
		case *replay != "":
			var recs []workload.Record
			if recs, err = workload.ReadTraceFile(*replay); err == nil {
				res, err = service.RunSpecLoad(ctx, service.SpecLoadOptions{
					BaseURL: *target,
					Events:  workload.Events(recs),
					Pace:    *pace,
				})
			}
		default:
			res, err = service.RunLoad(ctx, service.LoadOptions{
				BaseURL:     *target,
				Workload:    *workloadArg,
				Duration:    *duration,
				Concurrency: *concurrency,
				Batch:       *batch,
				Count:       *count,
			})
		}
		if err != nil {
			fmt.Fprintln(stderr, "floptd:", err)
			return 1
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(res)
		return 0
	}

	cfg := service.DefaultServerConfig()
	cfg.Workers, cfg.QueueDepth, cfg.CacheEntries = *workers, *queue, *cacheEntries
	cfg.SimWorkers = *simWorkers
	cfg.DataDir = *dataDir
	cfg.RecordPath = *record
	cfg.RequestTimeout = *reqTimeout
	cfg.ChaosIntensity, cfg.ChaosSeed = *chaosIntens, *chaosSeed
	if cfg.Workers < 1 || cfg.QueueDepth < 1 || cfg.CacheEntries < 1 {
		fmt.Fprintln(stderr, "floptd: -workers, -queue and -cache must be ≥ 1")
		return 2
	}
	if *chaosIntens < 0 || *chaosIntens > 1 {
		fmt.Fprintln(stderr, "floptd: -chaos must be in [0, 1]")
		return 2
	}
	if *reqTimeout < 0 {
		fmt.Fprintln(stderr, "floptd: -request-timeout must be ≥ 0")
		return 2
	}
	switch {
	case *peers != "" && *nodeID == "":
		fmt.Fprintln(stderr, "floptd: -peers requires -node-id")
		return 2
	case *peers == "" && *nodeID != "":
		fmt.Fprintln(stderr, "floptd: -node-id requires -peers")
		return 2
	case *peers != "":
		roster, err := cluster.ParseRoster(*peers)
		if err != nil {
			fmt.Fprintln(stderr, "floptd:", err)
			return 2
		}
		if *gossipEvery <= 0 || *peerTimeout <= 0 {
			fmt.Fprintln(stderr, "floptd: -gossip-interval and -peer-timeout must be > 0")
			return 2
		}
		cfg.Cluster = &service.ClusterConfig{
			Self:           *nodeID,
			Roster:         roster,
			GossipInterval: *gossipEvery,
			PeerTimeout:    *peerTimeout,
		}
	}
	srv, err := service.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "floptd:", err)
		return 1
	}
	// Slowloris defense: bound how long a connection may dribble its
	// headers and body, and how long an idle keep-alive socket is kept.
	// The per-request handler deadline is the -request-timeout context
	// plumbed by the service middleware.
	readTimeout := *reqTimeout
	if readTimeout <= 0 {
		readTimeout = 30 * time.Second
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       readTimeout,
		IdleTimeout:       120 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "floptd:", err)
		return 1
	}
	mode := "single-node"
	if cfg.Cluster != nil {
		mode = fmt.Sprintf("cluster node %s of %d", cfg.Cluster.Self, len(cfg.Cluster.Roster))
	}
	fmt.Fprintf(stdout, "floptd: %s listening on %s (%s workers=%d queue=%d cache=%d data-dir=%q chaos=%g)\n",
		version.Version, ln.Addr(), mode, cfg.Workers, cfg.QueueDepth, cfg.CacheEntries, cfg.DataDir, cfg.ChaosIntensity)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "floptd:", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting out the drain
	fmt.Fprintln(stdout, "floptd: shutdown signal received, draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		fmt.Fprintln(stderr, "floptd: http shutdown:", err)
		return 1
	}
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintln(stderr, "floptd:", err)
		return 1
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintln(stderr, "floptd: journal close:", err)
		return 1
	}
	fmt.Fprintln(stdout, "floptd: drained, exiting")
	return 0
}
