package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunVersion(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-version"}, &out, &errOut); code != 0 {
		t.Fatalf("run -version = %d", code)
	}
	if !strings.HasPrefix(out.String(), "floptd ") {
		t.Errorf("version banner = %q", out.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"zero workers", []string{"-workers", "0"}},
		{"zero queue", []string{"-queue", "0"}},
		{"zero cache", []string{"-cache", "0"}},
		{"negative chaos", []string{"-chaos", "-0.1"}},
		{"chaos above one", []string{"-chaos", "1.5"}},
		{"negative request timeout", []string{"-request-timeout", "-1s"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if code := run(tc.args, &out, &errOut); code != 2 {
				t.Fatalf("run(%v) = %d, want 2", tc.args, code)
			}
			if !strings.Contains(errOut.String(), "must be") {
				t.Errorf("stderr = %q", errOut.String())
			}
		})
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag: run = %d, want 2", code)
	}
}

func TestRunClusterFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"peers without node-id", []string{"-peers", "a=http://h:1,b=http://h:2"}, "-node-id"},
		{"node-id without peers", []string{"-node-id", "a"}, "-peers"},
		{"bad roster", []string{"-node-id", "a", "-peers", "garbage"}, "id=url"},
		{"duplicate ids", []string{"-node-id", "a", "-peers", "a=http://h:1,a=http://h:2"}, "duplicate"},
		{"self not in roster", []string{"-node-id", "z", "-peers", "a=http://h:1,b=http://h:2", "-addr", "127.0.0.1:0"}, "not in roster"},
		{"zero gossip", []string{"-node-id", "a", "-peers", "a=http://h:1", "-gossip-interval", "0s"}, "gossip-interval"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			code := run(tc.args, &out, &errOut)
			if code == 0 {
				t.Fatalf("run(%v) = 0, want failure", tc.args)
			}
			if !strings.Contains(errOut.String(), tc.want) {
				t.Errorf("stderr = %q, want mention of %q", errOut.String(), tc.want)
			}
		})
	}
}

// TestRunLoadgenBadTarget exercises the loadgen entry point's error path
// without a live daemon: an unreachable target fails cleanly.
func TestRunLoadgenBadTarget(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-loadgen", "-target", "http://127.0.0.1:1", "-duration", "1s"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("run = %d, want 1 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "floptd:") {
		t.Errorf("stderr = %q", errOut.String())
	}
}
