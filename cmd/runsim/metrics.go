package main

import (
	"fmt"
	"io"
	"sort"

	"flopt"
)

// printMetrics renders the snapshot's per-layer breakdowns in the report's
// plain-text style: totals, then each array, then the storage nodes and
// cache instances, then the event summary.
func printMetrics(w io.Writer, m *flopt.Metrics) {
	fmt.Fprintf(w, "\n--- metrics ---\n")
	fmt.Fprintf(w, "%-14s %10s %8s %8s %8s %7s %7s %9s\n",
		"array", "accesses", "io", "storage", "disk", "ioHit%", "stHit%", "avg-us")
	row := func(name string, b flopt.LayerBreakdown) {
		fmt.Fprintf(w, "%-14s %10d %8d %8d %8d %7.1f %7.1f %9.1f\n",
			name, b.Accesses, b.ServedIO, b.ServedStorage, b.ServedDisk,
			b.IOHitPct, b.StorageHitPct, b.AvgLatencyUS)
	}
	row("(total)", m.Totals)
	names := make([]string, 0, len(m.Arrays))
	for name := range m.Arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		row(name, m.Arrays[name])
	}

	if len(m.Nodes) > 0 {
		fmt.Fprintf(w, "\n%-6s %10s %10s %10s %10s\n", "node", "reads", "seq", "avg-svc-us", "primary")
		for _, n := range m.Nodes {
			fmt.Fprintf(w, "%-6d %10d %10d %10.1f %10d\n",
				n.Node, n.Reads, n.SeqReads, n.AvgServiceUS, n.PrimaryBlocks)
		}
	}
	cacheLine := func(label string, cs []flopt.CacheNodeStats) {
		var acc, hits, evict int64
		for _, c := range cs {
			acc += c.Accesses
			hits += c.Hits
			evict += c.Evictions
		}
		missPct := 0.0
		if acc > 0 {
			missPct = 100 * float64(acc-hits) / float64(acc)
		}
		fmt.Fprintf(w, "%-14s %d instances, %d accesses, %.1f%% miss, %d evictions\n",
			label, len(cs), acc, missPct, evict)
	}
	fmt.Fprintln(w)
	if len(m.IOCaches) > 0 {
		cacheLine("io caches", m.IOCaches)
	}
	if len(m.StoreCaches) > 0 {
		cacheLine("storage caches", m.StoreCaches)
	}
	if h, ok := m.LatencyUS[flopt.HistRequestLatency]; ok {
		fmt.Fprintf(w, "request latency  count %d, mean %.1f us, max %d us\n", h.Count, h.Mean, h.Max)
	}
	fmt.Fprintf(w, "events           %d recorded, %d dropped\n", m.Events.Total, m.Events.Dropped)
	kinds := make([]string, 0, len(m.Events.ByKind))
	for k := range m.Events.ByKind {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-22s %d\n", k, m.Events.ByKind[flopt.EventKind(k)])
	}
}
