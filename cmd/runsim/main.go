// Command runsim executes one workload on the simulated storage platform
// and prints the execution report.
//
// Usage:
//
//	runsim -workload swim                        # default layouts
//	runsim -workload swim -scheme inter          # optimized layouts
//	runsim -workload swim -scheme inter -policy demote
//	runsim -src program.fl -scheme inter
//	runsim -workload swim -faults 0.5 -seed 42   # degraded cluster (deterministic)
//	runsim -workload swim -metrics               # per-layer / per-array breakdown
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"

	"flopt"
	"flopt/internal/exp"
	"flopt/internal/sim"
	"flopt/internal/version"
)

func main() {
	var (
		workload  = flag.String("workload", "", "built-in benchmark name")
		src       = flag.String("src", "", "mini-language source file")
		scheme    = flag.String("scheme", "default", "layout scheme: default, inter, inter-io, inter-storage, reindex, compmap")
		policy    = flag.String("policy", "lru", "cache policy: lru, demote, karma")
		ioCache   = flag.Int("io-cache", 0, "override I/O cache blocks")
		stCache   = flag.Int("storage-cache", 0, "override storage cache blocks")
		block     = flag.Int64("block", 0, "override block size in elements")
		parallelN = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for trace generation (1 = serial)")
		simW      = flag.Int("sim-workers", runtime.GOMAXPROCS(0), "intra-cell simulation shard count (1 = serial engine; reports are byte-identical at every value)")
		faults    = flag.Float64("faults", 0, "fault-injection intensity in [0,1] (0 = healthy platform)")
		seed      = flag.Int64("seed", 0, "fault-injection seed; identical seeds replay bit-identical runs")
		metrics   = flag.Bool("metrics", false, "collect and print the per-layer/per-array/per-node metrics breakdown")
		showVer   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version.String("runsim"))
		return
	}

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := validateFlags(runFlags{
		workload: *workload, src: *src, scheme: *scheme, policy: *policy,
		parallel: *parallelN, faults: *faults, seedSet: set["seed"],
	}); err != nil {
		fmt.Fprintln(os.Stderr, "runsim:", err)
		fmt.Fprintln(os.Stderr, "usage: runsim -workload <name> | -src <file> [-scheme s] [-policy p] [-metrics]")
		os.Exit(2)
	}
	// Cap the scheduler to the wider of the two parallelism axes (trace
	// generation runs before the simulation, never alongside it): -parallel
	// 1 -sim-workers 1 restores a fully serial process, while the sharded
	// engine keeps its CPUs by default (it caps itself by GOMAXPROCS).
	if budget := max(*parallelN, *simW); budget < runtime.GOMAXPROCS(0) {
		runtime.GOMAXPROCS(budget)
	}

	cfg := sim.DefaultConfig()
	cfg.Policy = *policy
	if *ioCache > 0 {
		cfg.IOCacheBlocks = *ioCache
	}
	if *stCache > 0 {
		cfg.StorageCacheBlocks = *stCache
	}
	if *block > 0 {
		cfg.BlockElems = *block
	}
	cfg.FaultIntensity = *faults
	cfg.FaultSeed = *seed
	cfg.Metrics = *metrics
	if err := cfg.Validate(); err != nil {
		fail(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var rep *sim.Report
	switch {
	case *workload != "":
		runner := exp.NewRunner()
		runner.Parallel = *parallelN
		runner.SimWorkers = *simW
		var err error
		rep, err = runner.RunContext(ctx, *workload, cfg, exp.Scheme(*scheme))
		if err != nil {
			fail(err)
		}
	case *src != "":
		text, err := os.ReadFile(*src)
		if err != nil {
			fail(err)
		}
		p, err := flopt.Compile(*src, string(text))
		if err != nil {
			fail(err)
		}
		opts := []flopt.RunOption{flopt.WithSimWorkers(*simW)}
		if *scheme == "inter" {
			res, oerr := flopt.Optimize(p, cfg)
			if oerr != nil {
				fail(oerr)
			}
			opts = append(opts, flopt.WithResult(res))
		}
		rep, err = flopt.Run(ctx, p, cfg, opts...)
		if err != nil {
			fail(err)
		}
	}

	fmt.Printf("policy            %s\n", rep.PolicyName)
	fmt.Printf("execution time    %.3f s\n", float64(rep.ExecTimeUS)/1e6)
	fmt.Printf("block requests    %d\n", rep.Accesses)
	fmt.Printf("io cache          %d accesses, %.1f%% miss\n", rep.IO.Accesses, 100*rep.IOMissRate())
	fmt.Printf("storage cache     %d accesses, %.1f%% miss\n", rep.Storage.Accesses, 100*rep.StorageMissRate())
	fmt.Printf("disk reads        %d (%d sequential), busy %.3f s\n",
		rep.DiskReads, rep.DiskSeqReads, float64(rep.DiskBusyUS)/1e6)
	if rep.Demotions > 0 {
		fmt.Printf("demotions         %d\n", rep.Demotions)
	}
	if *faults > 0 {
		fmt.Printf("fault injection   intensity %.2f, seed %d\n", *faults, *seed)
		fmt.Printf("degraded mode     %d retries, %d timeouts, %d degraded reads, %d failed-over blocks\n",
			rep.Retries, rep.Timeouts, rep.DegradedReads, rep.FailedOverBlocks)
	}
	if *metrics {
		if rep.Metrics == nil {
			fail(fmt.Errorf("metrics requested but no snapshot collected"))
		}
		printMetrics(os.Stdout, rep.Metrics)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "runsim:", err)
	os.Exit(1)
}
