package main

import (
	"fmt"

	"flopt/internal/exp"
)

// runFlags carries the flag combinations that need cross-flag validation;
// keeping it a plain struct makes the rules unit-testable without parsing
// a real flag.FlagSet.
type runFlags struct {
	workload string
	src      string
	scheme   string
	policy   string
	parallel int
	faults   float64
	seedSet  bool // -seed was given explicitly
}

// validateFlags enforces the flag-combination rules before any simulation
// work starts: exactly one input source, a known scheme for that source, a
// known policy, and no orphan flags (-seed only means something when fault
// injection is on).
func validateFlags(f runFlags) error {
	if (f.workload == "") == (f.src == "") {
		return fmt.Errorf("exactly one of -workload or -src is required")
	}
	if f.parallel < 1 {
		return fmt.Errorf("-parallel must be ≥ 1, got %d", f.parallel)
	}
	if f.seedSet && f.faults <= 0 {
		return fmt.Errorf("-seed has no effect without -faults > 0")
	}
	switch f.policy {
	case "lru", "demote", "karma":
	default:
		return fmt.Errorf("unknown policy %q (want lru, demote or karma)", f.policy)
	}
	if f.src != "" {
		// The -src path runs outside the experiment runner, which is the
		// only place the baseline schemes are prepared.
		if f.scheme != "default" && f.scheme != "inter" {
			return fmt.Errorf("scheme %q requires -workload (it needs the experiment runner)", f.scheme)
		}
		return nil
	}
	for _, s := range exp.Schemes() {
		if f.scheme == string(s) {
			return nil
		}
	}
	return fmt.Errorf("unknown scheme %q (want one of %v)", f.scheme, exp.Schemes())
}
