package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	ok := runFlags{workload: "swim", scheme: "default", policy: "lru", parallel: 1}
	cases := []struct {
		name    string
		mutate  func(*runFlags)
		wantErr string // substring; "" means valid
	}{
		{"workload default", func(f *runFlags) {}, ""},
		{"workload inter", func(f *runFlags) { f.scheme = "inter" }, ""},
		{"workload compmap", func(f *runFlags) { f.scheme = "compmap" }, ""},
		{"src inter", func(f *runFlags) { f.workload = ""; f.src = "p.fl"; f.scheme = "inter" }, ""},
		{"seed with faults", func(f *runFlags) { f.seedSet = true; f.faults = 0.5 }, ""},
		{"neither input", func(f *runFlags) { f.workload = "" }, "exactly one of"},
		{"both inputs", func(f *runFlags) { f.src = "p.fl" }, "exactly one of"},
		{"zero parallel", func(f *runFlags) { f.parallel = 0 }, "-parallel"},
		{"orphan seed", func(f *runFlags) { f.seedSet = true }, "-seed has no effect"},
		{"bad policy", func(f *runFlags) { f.policy = "mru" }, "unknown policy"},
		{"bad scheme", func(f *runFlags) { f.scheme = "bogus" }, "unknown scheme"},
		{"src needs runner scheme", func(f *runFlags) { f.workload = ""; f.src = "p.fl"; f.scheme = "compmap" }, "requires -workload"},
	}
	for _, tc := range cases {
		f := ok
		tc.mutate(&f)
		err := validateFlags(f)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}
