package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunWorkloadMap smoke-tests the renderer end to end: both the
// default and optimized maps print, and the optimized map actually uses
// more than one owner glyph (the interleaving the tool exists to show).
func TestRunWorkloadMap(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-workload", "swim", "-width", "32"}, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"default (row-major):", "optimized (", "legend:"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	// The optimized section must show at least two distinct owners.
	optPart := got[strings.Index(got, "optimized ("):]
	owners := map[rune]bool{}
	for _, line := range strings.Split(optPart, "\n")[1:] {
		if strings.HasPrefix(line, "legend:") {
			break
		}
		for _, ch := range line {
			if ch != '.' {
				owners[ch] = true
			}
		}
	}
	if len(owners) < 2 {
		t.Errorf("optimized map shows %d distinct owners, want ≥ 2:\n%s", len(owners), optPart)
	}
}

// TestRunByIONode checks the -by io projection and explicit -array
// selection work together.
func TestRunByIONode(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-workload", "swim", "-array", "UU", "-by", "io"}, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "array UU[") {
		t.Errorf("output not about UU:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
		want string
	}{
		{"no input", nil, 2, "usage:"},
		{"unknown workload", []string{"-workload", "nonesuch"}, 1, "nonesuch"},
		{"unknown array", []string{"-workload", "swim", "-array", "ZZ"}, 1, `no array "ZZ"`},
		{"missing file", []string{"-src", "no-such-file.fl"}, 1, "no-such-file.fl"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if code := run(tc.args, &out, &errOut); code != tc.code {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.code, errOut.String())
			}
			if !strings.Contains(errOut.String(), tc.want) {
				t.Errorf("stderr %q missing %q", errOut.String(), tc.want)
			}
		})
	}
}

func TestRunVersion(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-version"}, &out, &errOut); code != 0 {
		t.Fatalf("run -version = %d", code)
	}
	if !strings.HasPrefix(out.String(), "flvis ") {
		t.Errorf("version banner = %q", out.String())
	}
}
