// Command flvis renders a file layout as an ASCII map: one character per
// data block showing which thread (or I/O node) owns the data stored
// there. Comparing the default row-major map against the optimized one
// makes the inter-node interleaving visible at a glance.
//
// Usage:
//
//	flvis -workload swim -array UU
//	flvis -src program.fl -array B -by io
package main

import (
	"flag"
	"fmt"
	"os"

	"flopt"
	"flopt/internal/layout"
	"flopt/internal/linalg"
	"flopt/internal/poly"
)

const glyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

func main() {
	var (
		workload = flag.String("workload", "", "built-in benchmark name")
		src      = flag.String("src", "", "mini-language source file")
		array    = flag.String("array", "", "array to visualize (default: first)")
		by       = flag.String("by", "thread", "color blocks by 'thread' or 'io' node")
		width    = flag.Int("width", 64, "blocks per output line")
	)
	flag.Parse()

	var (
		p   *flopt.Program
		err error
	)
	switch {
	case *workload != "":
		w, werr := flopt.WorkloadByName(*workload)
		if werr != nil {
			fail(werr)
		}
		p, err = w.Program()
	case *src != "":
		text, rerr := os.ReadFile(*src)
		if rerr != nil {
			fail(rerr)
		}
		p, err = flopt.Compile(*src, string(text))
	default:
		fmt.Fprintln(os.Stderr, "usage: flvis -workload <name> | -src <file> [-array A] [-by thread|io]")
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}

	cfg := flopt.DefaultConfig()
	res, err := flopt.Optimize(p, cfg)
	if err != nil {
		fail(err)
	}

	a := p.Arrays[0]
	if *array != "" {
		if a = p.Array(*array); a == nil {
			fail(fmt.Errorf("no array %q in program (have %v)", *array, arrayNames(p)))
		}
	}
	tr := res.Transforms[a.Name]
	fmt.Printf("array %s — %s\n\n", a, tr)

	fmt.Println("default (row-major):")
	render(a, tr, layout.RowMajor(a), cfg, *by, *width)
	fmt.Printf("\noptimized (%s):\n", res.Layouts[a.Name].Name())
	render(a, tr, res.Layouts[a.Name], cfg, *by, *width)
	fmt.Printf("\nlegend: one character per %d-element block; '%s' = %s id (mod %d), '.' = hole\n",
		cfg.BlockElems, "0-9a-zA-Z", *by, len(glyphs))
}

// render prints the block-ownership map of array a under layout l. A
// block's owner is the thread owning the majority of its elements (per
// the Step I partition); '.' marks blocks holding no data (holes).
func render(a *poly.Array, tr *layout.Transform, l layout.Layout, cfg flopt.Config, by string, width int) {
	blocks := (l.SizeElems() + cfg.BlockElems - 1) / cfg.BlockElems
	counts := make([]map[int]int, blocks)
	idx := make(linalg.Vec, a.Rank())
	var walk func(k int)
	walk = func(k int) {
		if k == a.Rank() {
			blk := l.Offset(idx) / cfg.BlockElems
			th := ownerOf(tr, idx)
			if counts[blk] == nil {
				counts[blk] = map[int]int{}
			}
			counts[blk][th]++
			return
		}
		for v := int64(0); v < a.Dims[k]; v++ {
			idx[k] = v
			walk(k + 1)
		}
	}
	walk(0)
	line := make([]byte, 0, width)
	for b := int64(0); b < blocks; b++ {
		ch := byte('.')
		if m := counts[b]; m != nil {
			best, bestN := 0, -1
			for th, n := range m {
				if n > bestN || (n == bestN && th < best) {
					best, bestN = th, n
				}
			}
			if by == "io" {
				best = cfg.IONodeOf(best)
			}
			ch = glyphs[best%len(glyphs)]
		}
		line = append(line, ch)
		if len(line) == width {
			fmt.Println(string(line))
			line = line[:0]
		}
	}
	if len(line) > 0 {
		fmt.Println(string(line))
	}
}

// ownerOf returns the thread owning element idx under the transform's
// partition (0 when the array is unpartitioned).
func ownerOf(tr *layout.Transform, idx linalg.Vec) int {
	if tr == nil || !tr.Optimized() {
		return 0
	}
	return tr.ThreadOf(idx)
}

func arrayNames(p *flopt.Program) []string {
	var out []string
	for _, a := range p.Arrays {
		out = append(out, a.Name)
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "flvis:", err)
	os.Exit(1)
}
