// Command flvis renders a file layout as an ASCII map: one character per
// data block showing which thread (or I/O node) owns the data stored
// there. Comparing the default row-major map against the optimized one
// makes the inter-node interleaving visible at a glance.
//
// Usage:
//
//	flvis -workload swim -array UU
//	flvis -src program.fl -array B -by io
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"flopt"
	"flopt/internal/layout"
	"flopt/internal/linalg"
	"flopt/internal/poly"
	"flopt/internal/version"
)

const glyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("flvis", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload    = fs.String("workload", "", "built-in benchmark name")
		src         = fs.String("src", "", "mini-language source file")
		array       = fs.String("array", "", "array to visualize (default: first)")
		by          = fs.String("by", "thread", "color blocks by 'thread' or 'io' node")
		width       = fs.Int("width", 64, "blocks per output line")
		showVersion = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, version.String("flvis"))
		return 0
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "flvis:", err)
		return 1
	}

	var (
		p   *flopt.Program
		err error
	)
	switch {
	case *workload != "":
		w, werr := flopt.WorkloadByName(*workload)
		if werr != nil {
			return fail(werr)
		}
		p, err = w.Program()
	case *src != "":
		text, rerr := os.ReadFile(*src)
		if rerr != nil {
			return fail(rerr)
		}
		p, err = flopt.Compile(*src, string(text))
	default:
		fmt.Fprintln(stderr, "usage: flvis -workload <name> | -src <file> [-array A] [-by thread|io]")
		return 2
	}
	if err != nil {
		return fail(err)
	}

	cfg := flopt.DefaultConfig()
	res, err := flopt.Optimize(p, cfg)
	if err != nil {
		return fail(err)
	}

	a := p.Arrays[0]
	if *array != "" {
		if a = p.Array(*array); a == nil {
			return fail(fmt.Errorf("no array %q in program (have %v)", *array, arrayNames(p)))
		}
	}
	tr := res.Transforms[a.Name]
	fmt.Fprintf(stdout, "array %s — %s\n\n", a, tr)

	fmt.Fprintln(stdout, "default (row-major):")
	render(stdout, a, tr, layout.RowMajor(a), cfg, *by, *width)
	fmt.Fprintf(stdout, "\noptimized (%s):\n", res.Layouts[a.Name].Name())
	render(stdout, a, tr, res.Layouts[a.Name], cfg, *by, *width)
	fmt.Fprintf(stdout, "\nlegend: one character per %d-element block; '%s' = %s id (mod %d), '.' = hole\n",
		cfg.BlockElems, "0-9a-zA-Z", *by, len(glyphs))
	return 0
}

// render prints the block-ownership map of array a under layout l. A
// block's owner is the thread owning the majority of its elements (per
// the Step I partition); '.' marks blocks holding no data (holes).
func render(w io.Writer, a *poly.Array, tr *layout.Transform, l layout.Layout, cfg flopt.Config, by string, width int) {
	blocks := (l.SizeElems() + cfg.BlockElems - 1) / cfg.BlockElems
	counts := make([]map[int]int, blocks)
	idx := make(linalg.Vec, a.Rank())
	var walk func(k int)
	walk = func(k int) {
		if k == a.Rank() {
			blk := l.Offset(idx) / cfg.BlockElems
			th := ownerOf(tr, idx)
			if counts[blk] == nil {
				counts[blk] = map[int]int{}
			}
			counts[blk][th]++
			return
		}
		for v := int64(0); v < a.Dims[k]; v++ {
			idx[k] = v
			walk(k + 1)
		}
	}
	walk(0)
	line := make([]byte, 0, width)
	for b := int64(0); b < blocks; b++ {
		ch := byte('.')
		if m := counts[b]; m != nil {
			best, bestN := 0, -1
			for th, n := range m {
				if n > bestN || (n == bestN && th < best) {
					best, bestN = th, n
				}
			}
			if by == "io" {
				best = cfg.IONodeOf(best)
			}
			ch = glyphs[best%len(glyphs)]
		}
		line = append(line, ch)
		if len(line) == width {
			fmt.Fprintln(w, string(line))
			line = line[:0]
		}
	}
	if len(line) > 0 {
		fmt.Fprintln(w, string(line))
	}
}

// ownerOf returns the thread owning element idx under the transform's
// partition (0 when the array is unpartitioned).
func ownerOf(tr *layout.Transform, idx linalg.Vec) int {
	if tr == nil || !tr.Optimized() {
		return 0
	}
	return tr.ThreadOf(idx)
}

func arrayNames(p *flopt.Program) []string {
	var out []string
	for _, a := range p.Arrays {
		out = append(out, a.Name)
	}
	return out
}
