package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunWorkload smoke-tests the full driver path: compile a built-in
// benchmark, optimize it, and check the report's load-bearing lines.
func TestRunWorkload(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-workload", "swim"}, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"program swim:", "pattern:", "optimized", "layout="} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunSourceFileEmit compiles a source file from disk and checks the
// -emit path prints a transformed program that still parses as the
// mini-language (round-trip property).
func TestRunSourceFileEmit(t *testing.T) {
	src := `array A[64][64];
parallel(i) for i = 0 to 63 {
  for j = 0 to 63 {
    read A[j][i];
  }
}
`
	path := filepath.Join(t.TempDir(), "prog.fl")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-emit", path}, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "transformed program") {
		t.Fatalf("-emit printed no transformed program:\n%s", got)
	}
	if !strings.Contains(got, "array A[") {
		t.Errorf("transformed program lacks array declaration:\n%s", got)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
		want string // substring of stderr
	}{
		{"no input", nil, 2, "usage:"},
		{"unknown workload", []string{"-workload", "nonesuch"}, 1, "nonesuch"},
		{"missing file", []string{"no-such-file.fl"}, 1, "no-such-file.fl"},
		{"bad config", []string{"-compute", "0", "-workload", "swim"}, 1, "node counts must be positive"},
		{"bad flag", []string{"-nope"}, 2, "flag"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if code := run(tc.args, &out, &errOut); code != tc.code {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.code, errOut.String())
			}
			if !strings.Contains(errOut.String(), tc.want) {
				t.Errorf("stderr %q missing %q", errOut.String(), tc.want)
			}
		})
	}
}

func TestRunVersion(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-version"}, &out, &errOut); code != 0 {
		t.Fatalf("run -version = %d", code)
	}
	if !strings.HasPrefix(out.String(), "floptc ") {
		t.Errorf("version banner = %q", out.String())
	}
}
