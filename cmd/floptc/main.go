// Command floptc is the compiler driver: it parses a mini-language file,
// runs the inter-node file layout optimization against a storage-cache
// hierarchy, and prints the chosen data transformations, the compiled
// layout pattern, and the transformed program.
//
// Usage:
//
//	floptc program.fl
//	floptc -compute 64 -io 16 -storage 4 -block 64 -io-cache 64 -storage-cache 128 program.fl
//	floptc -workload swim          # compile one of the built-in benchmarks
//	floptc -emit program.fl        # also print the transformed program
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"flopt"
	"flopt/internal/lang"
	"flopt/internal/layout"
	"flopt/internal/poly"
	"flopt/internal/version"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("floptc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		computeN    = fs.Int("compute", 64, "compute nodes")
		ioN         = fs.Int("io", 16, "I/O nodes")
		storageN    = fs.Int("storage", 4, "storage nodes")
		block       = fs.Int64("block", 64, "data block size in elements")
		ioCache     = fs.Int("io-cache", 64, "I/O cache capacity in blocks")
		stCache     = fs.Int("storage-cache", 128, "storage cache capacity in blocks")
		workload    = fs.String("workload", "", "compile a built-in benchmark instead of a file")
		emit        = fs.Bool("emit", false, "print the transformed program")
		showVersion = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, version.String("floptc"))
		return 0
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "floptc:", err)
		return 1
	}

	var (
		p   *flopt.Program
		err error
	)
	switch {
	case *workload != "":
		w, werr := flopt.WorkloadByName(*workload)
		if werr != nil {
			return fail(werr)
		}
		p, err = w.Program()
	case fs.NArg() == 1:
		src, rerr := os.ReadFile(fs.Arg(0))
		if rerr != nil {
			return fail(rerr)
		}
		p, err = flopt.Compile(fs.Arg(0), string(src))
	default:
		fmt.Fprintln(stderr, "usage: floptc [flags] program.fl  (or -workload <name>)")
		return 2
	}
	if err != nil {
		return fail(err)
	}

	cfg := flopt.DefaultConfig()
	cfg.ComputeNodes, cfg.IONodes, cfg.StorageNodes = *computeN, *ioN, *storageN
	cfg.BlockElems = *block
	cfg.IOCacheBlocks, cfg.StorageCacheBlocks = *ioCache, *stCache
	if err := cfg.Validate(); err != nil {
		return fail(err)
	}

	res, err := flopt.Optimize(p, cfg)
	if err != nil {
		return fail(err)
	}

	fmt.Fprintf(stdout, "program %s: %d arrays, %d loop nests, %d threads\n",
		p.Name, len(p.Arrays), len(p.Nests), cfg.Threads())
	fmt.Fprintf(stdout, "pattern: %s\n\n", res.Pattern)
	for _, a := range p.Arrays {
		tr := res.Transforms[a.Name]
		fmt.Fprintf(stdout, "  %-10s %s\n", a.String(), tr)
		fmt.Fprintf(stdout, "  %-10s layout=%s fileElems=%d\n", "", res.Layouts[a.Name].Name(), res.Layouts[a.Name].SizeElems())
	}
	opt, total := res.OptimizedCount()
	fmt.Fprintf(stdout, "\noptimized %d/%d arrays (%.0f%%)\n", opt, total, 100*float64(opt)/float64(total))

	if *emit {
		fmt.Fprintln(stdout, "\n// transformed program (array index functions updated):")
		fmt.Fprint(stdout, lang.Print(transformedProgram(p, res)))
	}
	return 0
}

// transformedProgram rewrites every reference to an optimized array into
// the transformed data space (Q' = D·Q, q' = D·q) and resizes the declared
// arrays to the transformed bounds' bounding box.
func transformedProgram(p *flopt.Program, res *layout.Result) *flopt.Program {
	out := &poly.Program{Name: p.Name + "_opt"}
	arrays := map[string]*poly.Array{}
	for _, a := range p.Arrays {
		na := &poly.Array{Name: a.Name, Dims: append([]int64(nil), a.Dims...)}
		arrays[a.Name] = na
		out.Arrays = append(out.Arrays, na)
	}
	for _, n := range p.Nests {
		nn := &poly.LoopNest{Loops: n.Loops, ParallelLoop: n.ParallelLoop}
		for _, r := range n.Refs {
			tr := res.Transforms[r.Array.Name]
			nr := &poly.Reference{Array: arrays[r.Array.Name], Q: r.Q, Offset: r.Offset, Write: r.Write}
			if tr != nil && tr.Optimized() {
				t2 := layout.TransformedRef(r, tr.D)
				nr.Q, nr.Offset = t2.Q, t2.Offset
			}
			nn.Refs = append(nn.Refs, nr)
		}
		out.Nests = append(out.Nests, nn)
	}
	return out
}
