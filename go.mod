module flopt

go 1.22
