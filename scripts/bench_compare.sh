#!/usr/bin/env bash
# bench_compare.sh — rerun the headline harness benchmarks and diff the
# fresh numbers against the most recent entry recorded in
# BENCH_harness.json. Prints a per-benchmark table of recorded vs fresh
# ns/op with the ratio, and exits non-zero when any benchmark regressed
# beyond the tolerance (fresh > tolerance × recorded). -benchtime=1x runs
# carry noise, so the default tolerance is generous; tighten it with
# BENCH_TOLERANCE for dedicated runners.
#
# Usage: scripts/bench_compare.sh [extra go test args…]
#   BENCH_SECTION=intra_cell_parallel  which BENCH_harness.json entry to diff
#   BENCH_TOLERANCE=1.30               allowed fresh/recorded ratio
set -euo pipefail
cd "$(dirname "$0")/.."

section=${BENCH_SECTION:-intra_cell_parallel}
tolerance=${BENCH_TOLERANCE:-1.30}

fresh=$(./scripts/bench_harness.sh "$@")

# rec_value KEY — pull "KEY": N out of the chosen section's object in
# BENCH_harness.json; fresh_value KEY reads the flat harness output.
# awk keeps this jq-free.
rec_value() {
	awk -v sec="\"$section\":" -v key="\"$1\":" '
		index($0, sec) { insec = 1; next }
		insec && /\}/ { exit }
		insec && index($0, key) {
			v = $0
			sub(/^[^:]*:[[:space:]]*/, "", v)
			sub(/[,[:space:]].*$/, "", v)
			print v
			exit
		}' BENCH_harness.json
}
fresh_value() {
	printf '%s\n' "$fresh" | awk -v key="\"$1\":" '
		index($0, key) {
			v = $0
			sub(/^[^:]*:[[:space:]]*/, "", v)
			sub(/[,[:space:]].*$/, "", v)
			print v
			exit
		}'
}

status=0
printf '%-46s %14s %14s %7s\n' "benchmark ($section vs fresh)" "recorded" "fresh" "ratio"
for key in BenchmarkTable2Default_ns_per_op \
	BenchmarkSimulatorThroughput_ns_per_op \
	BenchmarkSimulatorThroughputMetrics_ns_per_op; do
	rec=$(rec_value "$key")
	new=$(fresh_value "$key")
	if [ -z "$rec" ] || [ -z "$new" ]; then
		echo "bench_compare: missing $key (section $section)" >&2
		status=1
		continue
	fi
	ratio=$(awk -v n="$new" -v r="$rec" 'BEGIN {printf "%.3f", n / r}')
	flag=$(awk -v q="$ratio" -v t="$tolerance" 'BEGIN {print (q > t) ? "REGRESSED" : "ok"}')
	printf '%-46s %14s %14s %7s %s\n' "${key%_ns_per_op}" "$rec" "$new" "$ratio" "$flag"
	if [ "$flag" = REGRESSED ]; then
		status=1
	fi
done
exit $status
