#!/usr/bin/env bash
# chaos_smoke.sh — crash-recovery drill for floptd: boot the daemon with
# durability journals and seeded fault injection enabled, drive compile
# and simulate traffic through the chaos middleware (delays, 500s,
# dropped connections, journal disk faults), then kill -9 the process
# mid-flight and restart it on the same data directory. Asserts the two
# recovery invariants the journals promise:
#
#   1. zero accepted-job loss — every job ID the daemon answered 202 for
#      reaches a terminal state on the restarted process;
#   2. zero compiled-layout loss — re-submitting each workload returns
#      cached:true with the identical content-addressed ID (replay
#      verified by ID equality).
#
# The fault stream is seeded (-chaos-seed), so a failing drill replays
# the same fault decisions on the same request order. Exits non-zero on
# any failure.
#
# Usage: scripts/chaos_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'kill -9 "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/floptd" ./cmd/floptd

addr=127.0.0.1:18473
base="http://$addr"
datadir="$workdir/data"

start_daemon() { # args: extra flags
	"$workdir/floptd" -addr "$addr" -data-dir "$datadir" -workers 2 -queue 64 "$@" \
		>>"$workdir/out.log" 2>>"$workdir/err.log" &
	pid=$!
	for i in $(seq 1 50); do
		if curl -sf "$base/healthz" >/dev/null 2>&1; then return 0; fi
		if ! kill -0 "$pid" 2>/dev/null; then
			echo "chaos_smoke: daemon died during startup" >&2
			cat "$workdir/err.log" >&2
			exit 1
		fi
		sleep 0.1
	done
	echo "chaos_smoke: daemon never became healthy" >&2
	exit 1
}

fail() { echo "chaos_smoke: $1" >&2; exit 1; }

# rpost retries a POST through the fault stream: injected 500s, dropped
# connections and shed requests are the drill's weather, not failures.
rpost() { # args: url body
	local out
	for i in $(seq 1 60); do
		if out=$(curl -sf -X POST "$1" -d "$2" 2>/dev/null); then
			printf '%s' "$out"
			return 0
		fi
		sleep 0.1
	done
	return 1
}

start_daemon -chaos 0.15 -chaos-seed 42

# Compile three workloads under chaos, recording their layout IDs.
: >"$workdir/layouts.set"
for wl in swim mgrid bt; do
	comp=$(rpost "$base/v1/compile" "{\"workload\":\"$wl\"}") \
		|| fail "compile $wl never succeeded under chaos"
	id=$(printf '%s' "$comp" | sed -n 's/.*"layout_id":"\([^"]*\)".*/\1/p')
	[ -n "$id" ] || fail "compile $wl returned no layout_id: $comp"
	printf '%s %s\n' "$wl" "$id" >>"$workdir/layouts.set"
done

# Background load on the offsets hot path while jobs queue up; its exit
# status is irrelevant (chaos may error its measurement requests).
"$workdir/floptd" -loadgen -target "$base" -duration 15s -concurrency 8 \
	>/dev/null 2>&1 || true &
loadpid=$!

# Submit simulate jobs round-robin over the three layouts, recording
# only the IDs the daemon actually accepted (answered 202 with a job_id).
: >"$workdir/jobs.set"
while read -r wl id; do
	for n in 1 2 3 4; do
		if job=$(curl -sf -X POST "$base/v1/simulate" -d "{\"layout_id\":\"$id\"}" 2>/dev/null); then
			jid=$(printf '%s' "$job" | sed -n 's/.*"job_id":"\([^"]*\)".*/\1/p')
			[ -n "$jid" ] && printf '%s\n' "$jid" >>"$workdir/jobs.set"
		fi
	done
done <"$workdir/layouts.set"
accepted=$(wc -l <"$workdir/jobs.set")
[ "$accepted" -ge 5 ] || fail "only $accepted jobs accepted under chaos, want ≥ 5"

# Crash while jobs are in flight: no drain, no journal compaction —
# recovery must work from whatever the WAL holds at the instant of death.
sleep 0.5
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
kill "$loadpid" 2>/dev/null || true
wait "$loadpid" 2>/dev/null || true

start_daemon -chaos 0

# Invariant 1: every accepted job ID reaches a terminal state on the
# restarted daemon (recovered terminal records answer immediately;
# accepted-but-unfinished jobs were re-enqueued and re-run).
for i in $(seq 1 600); do
	pending=0
	while read -r jid; do
		st=$(curl -sf "$base/v1/jobs/$jid") || fail "job $jid unknown after restart (accepted-job loss)"
		state=$(printf '%s' "$st" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
		case "$state" in
		done|failed) ;;
		*) pending=$((pending + 1)) ;;
		esac
	done <"$workdir/jobs.set"
	[ "$pending" -eq 0 ] && break
	sleep 0.2
done
[ "$pending" -eq 0 ] || fail "$pending accepted jobs never reached a terminal state after restart"

# Invariant 2: the layout catalog survived — identical submissions hit
# the recovered cache with identical content-addressed IDs.
while read -r wl id; do
	comp=$(rpost "$base/v1/compile" "{\"workload\":\"$wl\"}") || fail "recompile $wl failed after restart"
	printf '%s' "$comp" | grep -q '"cached":true' || fail "$wl not cached after restart: $comp"
	rid=$(printf '%s' "$comp" | sed -n 's/.*"layout_id":"\([^"]*\)".*/\1/p')
	[ "$rid" = "$id" ] || fail "$wl recovered under ID $rid, journaled as $id"
done <"$workdir/layouts.set"

metrics=$(curl -sf "$base/metrics")
unique=$(awk '{print $2}' "$workdir/layouts.set" | sort -u | wc -l)
recovered=$(printf '%s' "$metrics" | sed -n 's/^floptd_layouts_recovered_total \([0-9]*\)$/\1/p')
[ -n "$recovered" ] || fail "metrics missing floptd_layouts_recovered_total"
[ "$recovered" -ge "$unique" ] || fail "recovered $recovered layouts, journaled at least $unique"
if printf '%s' "$metrics" | grep -qE '^floptd_recovery_skipped_total [1-9]'; then
	fail "recovery skipped records: $(printf '%s' "$metrics" | grep '^floptd_recovery_skipped_total')"
fi

# Clean exit still works after the crash-recovery cycle.
kill -TERM "$pid"
wait "$pid" || fail "daemon exited non-zero after SIGTERM"
grep -q 'drained, exiting' "$workdir/out.log" || fail "no completed-drain banner after recovery"

echo "chaos_smoke: OK ($accepted accepted jobs terminal, $unique layouts recovered across kill -9)"
