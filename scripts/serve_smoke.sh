#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the floptd daemon: boot it on
# an ephemeral port, drive one compile → offsets → simulate round trip,
# check /healthz and /metrics answer sensibly, then SIGTERM it and assert
# the graceful-drain lines appear. Exits non-zero on any failure.
#
# Usage: scripts/serve_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/floptd" ./cmd/floptd

addr=127.0.0.1:18472
"$workdir/floptd" -addr "$addr" -workers 2 -queue 16 >"$workdir/out.log" 2>"$workdir/err.log" &
pid=$!

base="http://$addr"
for i in $(seq 1 50); do
	if curl -sf "$base/healthz" >/dev/null 2>&1; then break; fi
	if ! kill -0 "$pid" 2>/dev/null; then
		echo "serve_smoke: daemon died during startup" >&2
		cat "$workdir/err.log" >&2
		exit 1
	fi
	sleep 0.1
done

fail() { echo "serve_smoke: $1" >&2; exit 1; }

# Compile a built-in workload; re-compiling must hit the cache.
comp=$(curl -sf -X POST "$base/v1/compile" -d '{"workload":"swim"}')
id=$(printf '%s' "$comp" | sed -n 's/.*"layout_id":"\([^"]*\)".*/\1/p')
[ -n "$id" ] || fail "compile returned no layout_id: $comp"
comp2=$(curl -sf -X POST "$base/v1/compile" -d '{"workload":"swim"}')
printf '%s' "$comp2" | grep -q '"cached":true' || fail "second compile not cached: $comp2"

# Offsets hot path: a strided run over the first array in the response.
array=$(printf '%s' "$comp" | sed -n 's/.*"arrays":{"\([^"]*\)".*/\1/p')
[ -n "$array" ] || fail "compile response names no arrays: $comp"
offs=$(curl -sf -X POST "$base/v1/layouts/$id/offsets" \
	-d "{\"array\":\"$array\",\"queries\":[{\"start\":[0,0],\"dir\":[0,1],\"count\":16}]}")
printf '%s' "$offs" | grep -q '"segs"' || fail "offsets returned no segments: $offs"

# Async simulation: submit, poll until done.
job=$(curl -sf -X POST "$base/v1/simulate" -d "{\"layout_id\":\"$id\"}")
jid=$(printf '%s' "$job" | sed -n 's/.*"job_id":"\([^"]*\)".*/\1/p')
[ -n "$jid" ] || fail "simulate returned no job_id: $job"
state=""
for i in $(seq 1 600); do
	st=$(curl -sf "$base/v1/jobs/$jid")
	state=$(printf '%s' "$st" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
	case "$state" in
	done) break ;;
	failed) fail "job failed: $st" ;;
	esac
	sleep 0.2
done
[ "$state" = done ] || fail "job never finished (last state: $state)"
printf '%s' "$st" | grep -q '"exec_time_us"' || fail "job report missing exec_time_us: $st"

# Observability endpoints.
curl -sf "$base/healthz" | grep -q '"status":"ok"' || fail "healthz not ok"
metrics=$(curl -sf "$base/metrics")
printf '%s' "$metrics" | grep -q '^floptd_compile_builds_total 1$' || fail "metrics: want exactly one compile build"
printf '%s' "$metrics" | grep -q '^floptd_compile_cache_hits_total' || fail "metrics: cache-hit counter missing"
printf '%s' "$metrics" | grep -q '^floptd_jobs_completed_total 1$' || fail "metrics: want one completed job"

# Graceful shutdown: SIGTERM, then assert the drain lines were printed.
kill -TERM "$pid"
wait "$pid" || fail "daemon exited non-zero after SIGTERM"
grep -q 'shutdown signal received, draining' "$workdir/out.log" || fail "no drain banner in output"
grep -q 'drained, exiting' "$workdir/out.log" || fail "daemon did not report a completed drain"

echo "serve_smoke: OK (compile/offsets/simulate/healthz/metrics/drain)"
