#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end smoke test of floptd cluster mode: boot
# a 3-node static-roster cluster on ephemeral ports, compile through
# node A (routed to the ring owner), query offsets through B and C
# (asserting peer cache fills), read /v1/cluster/status, run a simulate
# job and poll it from a node that does not own it, then kill -9 one
# node and assert the survivors keep serving compile and offsets with
# zero 5xx. Exits non-zero on any failure.
#
# Usage: scripts/cluster_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=()
trap 'for p in "${pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done; rm -rf "$workdir"' EXIT

go build -o "$workdir/floptd" ./cmd/floptd

porta=18481
portb=18482
portc=18483
roster="a=http://127.0.0.1:$porta,b=http://127.0.0.1:$portb,c=http://127.0.0.1:$portc"

for n in a b c; do
	port_var="port$n"
	"$workdir/floptd" -addr "127.0.0.1:${!port_var}" -workers 2 \
		-node-id "$n" -peers "$roster" -gossip-interval 200ms \
		>"$workdir/$n.log" 2>&1 &
	pids+=($!)
	disown $! # keep bash job control from reporting the kill -9 below
done

basea="http://127.0.0.1:$porta"
baseb="http://127.0.0.1:$portb"
basec="http://127.0.0.1:$portc"

fail() { echo "cluster_smoke: $1" >&2; for n in a b c; do echo "--- $n.log"; tail -5 "$workdir/$n.log"; done >&2; exit 1; }

for base in "$basea" "$baseb" "$basec"; do
	up=0
	for i in $(seq 1 50); do
		if curl -sf "$base/healthz" >/dev/null 2>&1; then up=1; break; fi
		sleep 0.1
	done
	[ "$up" = 1 ] || fail "node at $base never came up"
done

# Compile through A: the routing layer forwards to the ring owner, whose
# response names itself.
comp=$(curl -sf -X POST "$basea/v1/compile" -d '{"workload":"swim"}')
id=$(printf '%s' "$comp" | sed -n 's/.*"layout_id":"\([^"]*\)".*/\1/p')
owner=$(printf '%s' "$comp" | sed -n 's/.*"node":"\([^"]*\)".*/\1/p')
[ -n "$id" ] || fail "compile returned no layout_id: $comp"
[ -n "$owner" ] || fail "compile response names no node: $comp"
array=$(printf '%s' "$comp" | sed -n 's/.*"arrays":{"\([^"]*\)".*/\1/p')
[ -n "$array" ] || fail "compile response names no arrays: $comp"

# Exactly one authoritative build across the cluster, wherever it ran.
builds=0
for base in "$basea" "$baseb" "$basec"; do
	b=$(curl -sf "$base/metrics" | sed -n 's/^floptd_compile_builds_total \([0-9]*\)$/\1/p')
	builds=$((builds + ${b:-0}))
done
[ "$builds" = 1 ] || fail "compile_builds_total sums to $builds across nodes, want 1"

# Offsets through every node: non-owners must fill from the owner and
# flag it. The owner (and A, which cached the record when forwarding)
# may serve resident — so count fills across the cluster instead of
# asserting per-node.
q="{\"array\":\"$array\",\"queries\":[{\"start\":[0,0],\"dir\":[0,1],\"count\":16}]}"
for base in "$basea" "$baseb" "$basec"; do
	offs=$(curl -sf -X POST "$base/v1/layouts/$id/offsets" -d "$q")
	printf '%s' "$offs" | grep -q '"segs"' || fail "offsets via $base returned no segments: $offs"
	printf '%s' "$offs" | grep -q "\"layout_id\":\"$id\"" || fail "offsets via $base does not echo layout_id: $offs"
done
fills=0
for base in "$basea" "$baseb" "$basec"; do
	f=$(curl -sf "$base/metrics" | sed -n 's/^floptd_cluster_peer_fills_total \([0-9]*\)$/\1/p')
	fills=$((fills + ${f:-0}))
done
[ "$fills" -ge 1 ] || fail "no peer cache fill happened (fills=$fills)"
# Fills never inflate the authoritative build count.
builds=0
for base in "$basea" "$baseb" "$basec"; do
	b=$(curl -sf "$base/metrics" | sed -n 's/^floptd_compile_builds_total \([0-9]*\)$/\1/p')
	builds=$((builds + ${b:-0}))
done
[ "$builds" = 1 ] || fail "fills inflated compile_builds_total to $builds"

# Cluster status from B: three members, all healthy once gossip settles.
healthy=0
for i in $(seq 1 50); do
	st=$(curl -sf "$baseb/v1/cluster/status")
	healthy=$(printf '%s' "$st" | grep -o '"healthy":true' | wc -l)
	[ "$healthy" = 3 ] && break
	sleep 0.2
done
[ "$healthy" = 3 ] || fail "cluster status never showed 3 healthy nodes: $st"

# Simulate via C; poll the job from A (proxied if it ran elsewhere).
job=$(curl -sf -X POST "$basec/v1/simulate" -d "{\"layout_id\":\"$id\"}")
jid=$(printf '%s' "$job" | sed -n 's/.*"job_id":"\([^"]*\)".*/\1/p')
[ -n "$jid" ] || fail "simulate returned no job_id: $job"
state=""
for i in $(seq 1 600); do
	st=$(curl -sf "$basea/v1/jobs/$jid")
	state=$(printf '%s' "$st" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
	case "$state" in
	done) break ;;
	failed) fail "job failed: $st" ;;
	esac
	sleep 0.2
done
[ "$state" = done ] || fail "job never finished via cross-node poll (last state: $state)"

# Kill one node the hard way; survivors must keep serving with no 5xx.
# Kill a non-owner of the compiled layout so the resident copy survives;
# then also compile a fresh workload, which may be owned by the dead
# node — the survivor must fall back to local compute.
case "$owner" in
a) victim=1; vbase=$baseb; s1=$basea; s2=$basec ;;
*) victim=0; vbase=$basea; s1=$baseb; s2=$basec ;;
esac
kill -9 "${pids[$victim]}"
wait "${pids[$victim]}" 2>/dev/null || true

for base in "$s1" "$s2"; do
	code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$base/v1/layouts/$id/offsets" -d "$q")
	[ "$code" = 200 ] || fail "offsets via survivor $base answered $code after node death"
	code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$base/v1/compile" -d '{"workload":"mgrid"}')
	[ "$code" = 200 ] || fail "compile via survivor $base answered $code after node death"
done

# Degraded is visible: the survivors' status marks the dead node
# unhealthy once its load snapshot goes stale.
unhealthy=0
for i in $(seq 1 50); do
	st=$(curl -sf "$s1/v1/cluster/status")
	if printf '%s' "$st" | grep -q '"healthy":false'; then unhealthy=1; break; fi
	sleep 0.2
done
[ "$unhealthy" = 1 ] || fail "survivor status never marked the dead node unhealthy: $st"

echo "cluster_smoke: OK (routing/singleflight/fill/status/proxy-poll/node-death degradation)"
