#!/usr/bin/env bash
# workload_smoke.sh — end-to-end smoke test of the workload subsystem:
# boot floptd with -record, drive a two-class spec through the loadgen,
# SIGTERM-drain, then replay the recorded trace against a second
# recording daemon and assert the second trace reproduces the first
# request-for-request (modulo wall-clock timestamps) with identical
# per-SLO-class counts. Also checks the per-class Prometheus family, the
# -program preset mode, and that exptab's offline workload sweep renders
# the identical table from the spec and from the recorded trace.
# Exits non-zero on any failure.
#
# Usage: scripts/workload_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pid=""
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/floptd" ./cmd/floptd
go build -o "$workdir/exptab" ./cmd/exptab

fail() { echo "workload_smoke: $1" >&2; [ -f "$workdir/err.log" ] && tail -5 "$workdir/err.log" >&2; exit 1; }

# A small two-class spec: bursty gold traffic over cc-ver-1, steady batch
# traffic over s3asim with a sprinkle of simulate jobs (small programs so
# the drain stays quick).
cat >"$workdir/spec.json" <<'EOF'
{
  "version": 1,
  "name": "smoke",
  "seed": 5,
  "duration_s": 2,
  "rate_rps": 40,
  "clients": [
    {
      "id": "gold-client",
      "rate_fraction": 0.5,
      "slo_class": "gold",
      "arrival": {"process": "onoff", "on_s": 0.4, "off_s": 0.3},
      "mix": [
        {"program": "cc-ver-1", "kind": "offsets", "weight": 5},
        {"program": "cc-ver-1", "kind": "compile", "weight": 1}
      ]
    },
    {
      "id": "batch-client",
      "rate_fraction": 0.5,
      "slo_class": "batch",
      "arrival": {"process": "poisson"},
      "mix": [
        {"program": "s3asim", "kind": "offsets", "weight": 6},
        {"program": "s3asim", "kind": "simulate", "weight": 1}
      ]
    }
  ]
}
EOF

addr=127.0.0.1:18491
base="http://$addr"

boot() { # boot <record-path>
	"$workdir/floptd" -addr "$addr" -workers 2 -record "$1" \
		>"$workdir/out.log" 2>"$workdir/err.log" &
	pid=$!
	for i in $(seq 1 50); do
		if curl -sf "$base/healthz" >/dev/null 2>&1; then return 0; fi
		kill -0 "$pid" 2>/dev/null || fail "daemon died during startup"
		sleep 0.1
	done
	fail "daemon at $base never came up"
}

drain() {
	kill -TERM "$pid"
	wait "$pid" || fail "daemon exited non-zero after SIGTERM"
	grep -q 'drained, exiting' "$workdir/out.log" || fail "daemon did not report a completed drain"
	pid=""
}

# requests_per_class extracts the per-class request counts from a loadgen
# result JSON (encoding/json sorts map keys, so the order is stable).
requests_per_class() { sed -n 's/^ *"requests": \([0-9]*\),*$/\1/p' "$1"; }

# strip_clock drops the wall-clock timestamp from trace records so two
# recordings of the same request sequence compare equal.
strip_clock() { sed 's/"t_us":[0-9]*/"t_us":0/' "$1"; }

# Run 1: drive the spec against a recording daemon.
boot "$workdir/run1.jsonl"
"$workdir/floptd" -loadgen -spec "$workdir/spec.json" -target "$base" \
	>"$workdir/out1.json" || fail "spec loadgen failed"
grep -q '"errors": 0,' "$workdir/out1.json" || fail "spec run reported errors: $(cat "$workdir/out1.json")"
events=$(sed -n 's/^ *"events": \([0-9]*\),*$/\1/p' "$workdir/out1.json")
[ "${events:-0}" -ge 10 ] || fail "spec run issued only ${events:-0} events"

# The per-SLO-class latency family is exposed while the daemon serves.
metrics=$(curl -sf "$base/metrics")
printf '%s' "$metrics" | grep -q 'floptd_slo_latency_us_count{slo_class="gold"}' || fail "metrics missing gold SLO family"
printf '%s' "$metrics" | grep -q 'floptd_slo_latency_us_count{slo_class="batch"}' || fail "metrics missing batch SLO family"
drain

# The trace holds exactly the issued events (setup compiles are no-record).
lines=$(wc -l <"$workdir/run1.jsonl")
[ "$lines" = "$events" ] || fail "trace has $lines records, loadgen issued $events events"

# Run 2: replay the recorded trace against a fresh recording daemon.
boot "$workdir/run2.jsonl"
"$workdir/floptd" -loadgen -replay "$workdir/run1.jsonl" -target "$base" \
	>"$workdir/out2.json" || fail "replay loadgen failed"
grep -q '"errors": 0,' "$workdir/out2.json" || fail "replay reported errors: $(cat "$workdir/out2.json")"

# The second trace reproduces the first request-for-request.
if ! diff <(strip_clock "$workdir/run1.jsonl") <(strip_clock "$workdir/run2.jsonl") >/dev/null; then
	fail "replayed trace diverges from the recorded one"
fi
# Per-SLO-class counts agree between the spec run and the replay.
if ! diff <(requests_per_class "$workdir/out1.json") <(requests_per_class "$workdir/out2.json") >/dev/null; then
	fail "per-class request counts differ between spec run and replay"
fi

# The -program preset drives a one-client spec over any named program.
"$workdir/floptd" -loadgen -program mgrid -target "$base" \
	>"$workdir/preset.json" || fail "-program preset failed"
grep -q '"errors": 0,' "$workdir/preset.json" || fail "preset run reported errors"
drain

# Offline: exptab renders the identical workload sweep from the spec and
# from the recorded trace.
"$workdir/exptab" -exp workload -spec "$workdir/spec.json" >"$workdir/sweep_spec.txt" \
	|| fail "exptab -spec failed"
"$workdir/exptab" -exp workload -replay "$workdir/run1.jsonl" >"$workdir/sweep_trace.txt" \
	|| fail "exptab -replay failed"
diff "$workdir/sweep_spec.txt" "$workdir/sweep_trace.txt" >/dev/null \
	|| fail "exptab sweep differs between spec and recorded trace"
grep -q 'Workload sweep' "$workdir/sweep_spec.txt" || fail "sweep table missing title"
grep -q '^gold' "$workdir/sweep_spec.txt" || fail "sweep table missing gold row"
grep -q '^batch' "$workdir/sweep_spec.txt" || fail "sweep table missing batch row"

echo "workload_smoke: OK (spec/record/replay/per-class metrics/preset/exptab sweep)"
