#!/usr/bin/env bash
# loadtest_service.sh — measure the floptd offsets hot path: boot the
# daemon on an ephemeral port, warm it with one compile, then drive it
# from the built-in load generator (floptd -loadgen) over keep-alive
# connections and print the RPS / latency-quantile JSON on stdout.
#
# Usage: scripts/loadtest_service.sh [duration] [concurrency]
#
# The checked-in BENCH_service.json records one entry per service PR;
# rerun this script on your machine and splice the output in to extend
# the trajectory. Budget: ≥ 10k RPS with p99 < 25 ms on a single core.
set -euo pipefail
cd "$(dirname "$0")/.."

duration=${1:-10s}
concurrency=${2:-8}

workdir=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/floptd" ./cmd/floptd

addr=127.0.0.1:18474
"$workdir/floptd" -addr "$addr" -workers 2 >"$workdir/out.log" 2>&1 &
pid=$!
for i in $(seq 1 50); do
	curl -sf "http://$addr/healthz" >/dev/null 2>&1 && break
	sleep 0.1
done

res=$("$workdir/floptd" -loadgen -target "http://$addr" \
	-duration "$duration" -concurrency "$concurrency" -batch 4 -count 512)

kill -TERM "$pid"
wait "$pid" || true

cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
go_version=$(go env GOVERSION)
date_utc=$(date -u +%Y-%m-%dT%H:%M:%SZ)

# Merge run metadata into the loadgen JSON (the result object has no
# nested objects, so splicing before the closing brace is safe).
printf '%s\n' "$res" | sed '$d'
cat <<EOF
  ,"duration_requested": "$duration",
  "concurrency": $concurrency,
  "cores": $cores,
  "go": "$go_version",
  "date_utc": "$date_utc"
}
EOF
