#!/usr/bin/env bash
# loadtest_service.sh — measure the floptd offsets hot path: boot the
# daemon on an ephemeral port, warm it with one compile, then drive it
# from the built-in load generator (floptd -loadgen) over keep-alive
# connections and print the RPS / latency-quantile JSON on stdout.
#
# Usage: scripts/loadtest_service.sh [-cluster] [duration] [concurrency]
#
# With -cluster the script boots a 3-node static-roster cluster instead
# of one daemon and hands the load generator all three URLs; workers
# round-robin across the nodes, so the measured RPS is the aggregate
# the cluster serves (peer cache fills happen during warmup, before the
# measured window).
#
# The checked-in BENCH_service.json records one entry per service PR;
# rerun this script on your machine and splice the output in to extend
# the trajectory. Budget: ≥ 10k RPS with p99 < 25 ms on a single core.
set -euo pipefail
cd "$(dirname "$0")/.."

cluster=0
if [ "${1:-}" = "-cluster" ]; then
	cluster=1
	shift
fi
duration=${1:-10s}
concurrency=${2:-8}

workdir=$(mktemp -d)
pids=()
trap 'for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done; rm -rf "$workdir"' EXIT

go build -o "$workdir/floptd" ./cmd/floptd

if [ "$cluster" = 1 ]; then
	porta=18475
	portb=18476
	portc=18477
	roster="a=http://127.0.0.1:$porta,b=http://127.0.0.1:$portb,c=http://127.0.0.1:$portc"
	for n in a b c; do
		port_var="port$n"
		"$workdir/floptd" -addr "127.0.0.1:${!port_var}" -workers 2 \
			-node-id "$n" -peers "$roster" >"$workdir/$n.log" 2>&1 &
		pids+=($!)
	done
	targets="http://127.0.0.1:$porta,http://127.0.0.1:$portb,http://127.0.0.1:$portc"
	waiton="$porta $portb $portc"
	nodes=3
else
	addr=127.0.0.1:18474
	"$workdir/floptd" -addr "$addr" -workers 2 >"$workdir/out.log" 2>&1 &
	pids+=($!)
	targets="http://$addr"
	waiton=18474
	nodes=1
fi

for port in $waiton; do
	for i in $(seq 1 50); do
		curl -sf "http://127.0.0.1:$port/healthz" >/dev/null 2>&1 && break
		sleep 0.1
	done
done

res=$("$workdir/floptd" -loadgen -target "$targets" \
	-duration "$duration" -concurrency "$concurrency" -batch 4 -count 512)

for p in "${pids[@]}"; do kill -TERM "$p" 2>/dev/null || true; done
for p in "${pids[@]}"; do wait "$p" 2>/dev/null || true; done
pids=()

cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
go_version=$(go env GOVERSION)
date_utc=$(date -u +%Y-%m-%dT%H:%M:%SZ)

# Merge run metadata into the loadgen JSON (the result object has no
# nested objects, so splicing before the closing brace is safe).
printf '%s\n' "$res" | sed '$d'
cat <<EOF
  ,"duration_requested": "$duration",
  "concurrency": $concurrency,
  "nodes": $nodes,
  "cores": $cores,
  "go": "$go_version",
  "date_utc": "$date_utc"
}
EOF
