#!/usr/bin/env bash
# bench_harness.sh — measure the headline harness benchmarks
# (BenchmarkTable2Default, BenchmarkSimulatorThroughput, its
# metrics-enabled twin, and the BenchmarkSingleCellSharded shard-count
# sweep) and print their best-of-3 wall-clock as a JSON fragment on
# stdout, including the observability overhead ratio (metrics-enabled /
# plain simulator throughput; budget ≤ 1.02 for the no-op path, the
# enabled collector costs a few percent more) and the best intra-cell
# shard speedup (serial shards=1 over the fastest of shards 2/4/8; ~1.0
# on a single-CPU host where the engine degrades to serial, ≥ 1.7
# expected on 4+ cores).
#
# Usage: scripts/bench_harness.sh [extra go test args…]
#
# The checked-in BENCH_harness.json records one before/after pair per perf
# PR; rerun this script on your machine and splice the output in to extend
# the trajectory.
set -euo pipefail
cd "$(dirname "$0")/.."

out=$(go test -run '^$' \
	-bench '^(BenchmarkTable2Default|BenchmarkSimulatorThroughput(Metrics)?|BenchmarkSingleCellSharded)$' \
	-benchtime=1x -count=3 "$@" .)
printf '%s\n' "$out" >&2

best() {
	printf '%s\n' "$out" | awk -v name="$1" '$1 ~ ("^" name "(-[0-9]+)?$") {print $3}' | sort -n | head -1
}

table2=$(best 'BenchmarkTable2Default')
simthr=$(best 'BenchmarkSimulatorThroughput')
simmet=$(best 'BenchmarkSimulatorThroughputMetrics')
shard1=$(best 'BenchmarkSingleCellSharded/1')
shard2=$(best 'BenchmarkSingleCellSharded/2')
shard4=$(best 'BenchmarkSingleCellSharded/4')
shard8=$(best 'BenchmarkSingleCellSharded/8')
overhead=$(awk -v m="$simmet" -v p="$simthr" 'BEGIN {printf "%.3f", m / p}')
speedup=$(awk -v s1="$shard1" -v s2="$shard2" -v s4="$shard4" -v s8="$shard8" \
	'BEGIN {b = s2; if (s4 < b) b = s4; if (s8 < b) b = s8; printf "%.2f", s1 / b}')
cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

cat <<EOF
{
  "gomaxprocs": $cores,
  "BenchmarkTable2Default_ns_per_op": $table2,
  "BenchmarkSimulatorThroughput_ns_per_op": $simthr,
  "BenchmarkSimulatorThroughputMetrics_ns_per_op": $simmet,
  "metrics_overhead_ratio": $overhead,
  "BenchmarkSingleCellSharded_ns_per_op": {"1": $shard1, "2": $shard2, "4": $shard4, "8": $shard8},
  "shard_speedup_best": $speedup
}
EOF
