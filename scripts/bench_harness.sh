#!/usr/bin/env bash
# bench_harness.sh — measure the two headline harness benchmarks
# (BenchmarkTable2Default, BenchmarkSimulatorThroughput) and print their
# best-of-3 wall-clock as a JSON fragment on stdout.
#
# Usage: scripts/bench_harness.sh [extra go test args…]
#
# The checked-in BENCH_harness.json records one before/after pair per perf
# PR; rerun this script on your machine and splice the output in to extend
# the trajectory.
set -euo pipefail
cd "$(dirname "$0")/.."

out=$(go test -run '^$' -bench '^(BenchmarkTable2Default|BenchmarkSimulatorThroughput)$' \
	-benchtime=1x -count=3 "$@" .)
printf '%s\n' "$out" >&2

best() {
	printf '%s\n' "$out" | awk -v name="$1" '$1 ~ name {print $3}' | sort -n | head -1
}

table2=$(best '^BenchmarkTable2Default')
simthr=$(best '^BenchmarkSimulatorThroughput')
cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

cat <<EOF
{
  "gomaxprocs": $cores,
  "BenchmarkTable2Default_ns_per_op": $table2,
  "BenchmarkSimulatorThroughput_ns_per_op": $simthr
}
EOF
