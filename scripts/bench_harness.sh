#!/usr/bin/env bash
# bench_harness.sh — measure the headline harness benchmarks
# (BenchmarkTable2Default, BenchmarkSimulatorThroughput, and its
# metrics-enabled twin) and print their best-of-3 wall-clock as a JSON
# fragment on stdout, including the observability overhead ratio
# (metrics-enabled / plain simulator throughput; budget ≤ 1.02 for the
# no-op path, the enabled collector costs a few percent more).
#
# Usage: scripts/bench_harness.sh [extra go test args…]
#
# The checked-in BENCH_harness.json records one before/after pair per perf
# PR; rerun this script on your machine and splice the output in to extend
# the trajectory.
set -euo pipefail
cd "$(dirname "$0")/.."

out=$(go test -run '^$' \
	-bench '^(BenchmarkTable2Default|BenchmarkSimulatorThroughput|BenchmarkSimulatorThroughputMetrics)$' \
	-benchtime=1x -count=3 "$@" .)
printf '%s\n' "$out" >&2

best() {
	printf '%s\n' "$out" | awk -v name="$1" '$1 ~ ("^" name "(-[0-9]+)?$") {print $3}' | sort -n | head -1
}

table2=$(best 'BenchmarkTable2Default')
simthr=$(best 'BenchmarkSimulatorThroughput')
simmet=$(best 'BenchmarkSimulatorThroughputMetrics')
overhead=$(awk -v m="$simmet" -v p="$simthr" 'BEGIN {printf "%.3f", m / p}')
cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

cat <<EOF
{
  "gomaxprocs": $cores,
  "BenchmarkTable2Default_ns_per_op": $table2,
  "BenchmarkSimulatorThroughput_ns_per_op": $simthr,
  "BenchmarkSimulatorThroughputMetrics_ns_per_op": $simmet,
  "metrics_overhead_ratio": $overhead
}
EOF
