package flopt

import (
	"context"
	"runtime"

	"flopt/internal/lang"
	"flopt/internal/layout"
	"flopt/internal/obs"
	"flopt/internal/parallel"
	"flopt/internal/poly"
	"flopt/internal/sim"
	"flopt/internal/storage/cache"
	"flopt/internal/trace"
)

// Typed sentinel errors. Every compilation error returned by Compile
// wraps ErrBadProgram; every configuration error returned by the Run
// family wraps ErrBadConfig. Match with errors.Is.
var (
	ErrBadProgram = lang.ErrBadProgram
	ErrBadConfig  = sim.ErrBadConfig
)

// Observer is the pluggable profiling hook surface of the simulator: it
// receives every block access (with the layer that served it and its
// latency), every device read, every degraded-mode retry wait, and the
// structured event stream. See internal/obs for the contract; obs.Nop is
// the no-op default.
type Observer = obs.Observer

// Metrics is the observability snapshot of one run: per-layer hit
// breakdowns overall, per array and per thread; per-storage-node device
// metrics; latency histograms; and the event summary. Report.Metrics
// carries one when metrics collection is enabled.
type Metrics = obs.Snapshot

// LayerBreakdown is one per-layer service breakdown within a Metrics
// snapshot (overall, per array, or per thread).
type LayerBreakdown = obs.LayerBreakdown

// CacheNodeStats is the per-cache-instance counter set within a Metrics
// snapshot.
type CacheNodeStats = obs.CacheNodeStats

// EventKind classifies the simulator's structured events.
type EventKind = obs.Kind

// Histogram names in Metrics.LatencyUS.
const (
	HistRequestLatency = obs.HistRequestLatency
	HistDiskService    = obs.HistDiskService
	HistRetryWait      = obs.HistRetryWait
)

// RunOption configures a Run call; see WithLayouts, WithResult,
// WithObserver, WithFaults and WithMetrics.
type RunOption func(*runOptions)

type runOptions struct {
	layouts    map[string]Layout
	res        *Result
	observer   Observer
	faults     bool
	intensity  float64
	seed       int64
	metrics    bool
	simWorkers int
	simSet     bool
}

// WithLayouts simulates under an arbitrary layout per array (keyed by
// array name). It takes precedence over the layouts carried by
// WithResult; without either, the default row-major layouts are used.
func WithLayouts(layouts map[string]Layout) RunOption {
	return func(o *runOptions) { o.layouts = layouts }
}

// WithResult simulates the optimizer's output: res's layouts (unless
// WithLayouts overrides them) and its parallelization plans. A nil res is
// ignored.
func WithResult(res *Result) RunOption {
	return func(o *runOptions) { o.res = res }
}

// WithObserver attaches o to the simulated machine for the duration of
// the run. The observer is driven serially by the machine's virtual
// clock, so it needs no locking and sees a deterministic stream.
func WithObserver(o Observer) RunOption {
	return func(opts *runOptions) { opts.observer = o }
}

// WithFaults enables deterministic fault injection at the given intensity
// in [0, 1], seeded so identical seeds replay bit-identical runs. It
// overrides cfg.FaultIntensity and cfg.FaultSeed.
func WithFaults(intensity float64, seed int64) RunOption {
	return func(o *runOptions) { o.faults = true; o.intensity = intensity; o.seed = seed }
}

// WithMetrics attaches the machine-owned metrics collector and delivers
// its snapshot on Report.Metrics, equivalent to setting cfg.Metrics.
func WithMetrics() RunOption {
	return func(o *runOptions) { o.metrics = true }
}

// WithSimWorkers sets the intra-cell shard count: the simulation itself is
// partitioned by storage and I/O node across up to n concurrent workers,
// with a deterministic epoch merge that keeps reports byte-identical to
// the serial engine at every worker count. n ≤ 1 forces the serial
// engine. Without this option Run uses runtime.GOMAXPROCS(0) workers
// (which on a single-CPU host falls back to serial).
func WithSimWorkers(n int) RunOption {
	return func(o *runOptions) { o.simWorkers = n; o.simSet = true }
}

// Run simulates program p on the platform described by cfg and returns
// the execution report. By default it is the paper's "default execution":
// row-major layouts, fresh parallelization plans, no fault injection, no
// metrics. Options select the optimized layouts (WithResult), arbitrary
// layouts (WithLayouts), profiling (WithObserver, WithMetrics) and fault
// injection (WithFaults). For cfg.Policy == "karma" the KARMA hints are
// generated automatically from the traces.
//
// ctx cancels a run in flight: the simulator polls it periodically and
// aborts with an error wrapping ctx.Err(). Configuration errors wrap
// ErrBadConfig.
func Run(ctx context.Context, p *Program, cfg Config, opts ...RunOption) (*Report, error) {
	var o runOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.faults {
		cfg.FaultIntensity, cfg.FaultSeed = o.intensity, o.seed
	}
	if o.metrics {
		cfg.Metrics = true
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	layouts := o.layouts
	if layouts == nil && o.res != nil {
		layouts = o.res.Layouts
	}
	if layouts == nil {
		layouts = layout.DefaultLayouts(p)
	}
	plans := map[*poly.LoopNest]*parallel.Plan{}
	if o.res != nil {
		plans = o.res.Plans
	} else {
		for _, n := range p.Nests {
			plan, err := parallel.NewPlan(n, cfg.Threads(), 1)
			if err != nil {
				return nil, err
			}
			plans[n] = plan
		}
	}

	ft, err := trace.NewFileTable(p, layouts)
	if err != nil {
		return nil, err
	}
	traces, err := trace.Generate(p, plans, ft, cfg.BlockElems, cfg.Threads())
	if err != nil {
		return nil, err
	}
	var hints []cache.RangeHint
	if cfg.Policy == "karma" {
		hints = sim.GenerateHints(cfg, ft, traces)
	}
	machine, err := sim.NewMachine(cfg, hints)
	if err != nil {
		return nil, err
	}
	fileBlocks := make([]int64, len(ft.Names))
	for f := range fileBlocks {
		fileBlocks[f] = ft.Blocks(int32(f), cfg.BlockElems)
	}
	machine.SetFileBlocks(fileBlocks)
	machine.SetFileNames(ft.Names)
	if o.observer != nil {
		machine.SetObserver(o.observer)
	}
	workers := o.simWorkers
	if !o.simSet {
		workers = runtime.GOMAXPROCS(0)
	}
	machine.SetWorkers(workers)
	return machine.RunContext(ctx, traces)
}
